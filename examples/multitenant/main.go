// Multi-tenant: manage several microservices with one Amoeba runtime on a
// shared serverless pool. Each service gets its own controller and
// engine; the contention monitor is shared — so one tenant's load shows
// up in the others' switching decisions, and the co-tenant safety check
// can veto a switch-in that would overload the pool.
package main

import (
	"fmt"

	"amoeba"
)

// diurnal builds a day-shaped trace peaking at the profile's peak QPS.
func diurnal(prof amoeba.Benchmark, trough amoeba.Fraction, day amoeba.Seconds, seed uint64) amoeba.Trace {
	peak := amoeba.QPS(prof.PeakQPS)
	return amoeba.DiurnalTrace(peak, amoeba.QPS(prof.PeakQPS*trough.Raw()), day, seed)
}

func main() {
	const day = amoeba.Seconds(3600)
	float, _ := amoeba.BenchmarkByName("float")
	dd, _ := amoeba.BenchmarkByName("dd")
	stor, _ := amoeba.BenchmarkByName("cloud_stor")

	// Stagger the peaks: float peaks in the morning, dd in the evening —
	// so the pool sees different contention when each considers
	// switching.
	sc := amoeba.Scenario{
		Variant: amoeba.Amoeba,
		Services: []amoeba.ServiceSpec{
			{Profile: float, Trace: diurnal(float, amoeba.Fraction(0.2), day, 1)},
			{Profile: dd, Trace: diurnal(dd, amoeba.Fraction(0.2), day, 2)},
			{Profile: stor, Trace: diurnal(stor, amoeba.Fraction(0.25), day, 3)},
		},
		Background: amoeba.BackgroundTenants(day, 99),
		Duration:   day,
		Seed:       7,
	}

	fmt.Println("running float + dd + cloud_stor under one Amoeba runtime for a day...")
	res := amoeba.Run(sc)

	fmt.Printf("\n%-12s %8s %9s %8s %10s %10s %8s\n",
		"service", "queries", "p95/qos", "qos_met", "to_svless", "to_iaas", "blocked")
	for _, spec := range sc.Services {
		sr := res.Services[spec.Profile.Name]
		fmt.Printf("%-12s %8d %8.1f%% %8t %10d %10d %8d\n",
			spec.Profile.Name,
			sr.Collector.Count(),
			100*sr.Collector.P95()/spec.Profile.QoSTarget,
			sr.Collector.QoSMet(),
			sr.Timeline.SwitchCount(amoeba.BackendServerless),
			sr.Timeline.SwitchCount(amoeba.BackendIaaS),
			sr.BlockedSwitches)
	}

	fmt.Printf("\nshared-pool meter overhead: %.1f core-seconds over the day\n", res.MeterCPUSeconds)
	fmt.Println("background tenants (always serverless):")
	for name, coll := range res.Background {
		fmt.Printf("  %-16s %7d queries, p95 %.0fms\n", name, coll.Count(), coll.P95()*1000)
	}
}
