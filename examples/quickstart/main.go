// Quickstart: run the dd benchmark under Amoeba for one virtual day and
// compare its resource usage against the pure IaaS deployment (Nameko),
// all through the public API.
package main

import (
	"fmt"

	"amoeba"
)

func main() {
	prof, err := amoeba.BenchmarkByName("dd")
	if err != nil {
		panic(err)
	}
	opts := amoeba.DefaultScenarioOptions()

	fmt.Printf("simulating %s (peak %.0f QPS, QoS %.0fms p95) for one day...\n",
		prof.Name, prof.PeakQPS, prof.QoSTarget*1000)

	am := amoeba.Run(amoeba.NewScenario(amoeba.Amoeba, prof, opts)).Services[prof.Name]
	nk := amoeba.Run(amoeba.NewScenario(amoeba.Nameko, prof, opts)).Services[prof.Name]

	fmt.Printf("\n%-22s %12s %12s\n", "", "amoeba", "nameko")
	fmt.Printf("%-22s %12d %12d\n", "queries", am.Collector.Count(), nk.Collector.Count())
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "p95 / QoS target",
		100*am.Collector.P95()/prof.QoSTarget, 100*nk.Collector.P95()/prof.QoSTarget)
	fmt.Printf("%-22s %12t %12t\n", "QoS met", am.Collector.QoSMet(), nk.Collector.QoSMet())
	fmt.Printf("%-22s %12.0f %12.0f\n", "CPU usage (core-s)", am.TotalUsage().CPU, nk.TotalUsage().CPU)
	fmt.Printf("%-22s %12.0f %12.0f\n", "mem usage (GB-s)", am.TotalUsage().MemMB/1024, nk.TotalUsage().MemMB/1024)

	cpuSaved := 1 - am.TotalUsage().CPU/nk.TotalUsage().CPU
	memSaved := 1 - am.TotalUsage().MemMB/nk.TotalUsage().MemMB
	fmt.Printf("\nAmoeba saved %.1f%% CPU and %.1f%% memory while meeting the same QoS target.\n",
		100*cpuSaved, 100*memSaved)
	fmt.Printf("deploy-mode switches: %d to serverless, %d back to IaaS\n",
		am.Timeline.SwitchCount(amoeba.BackendServerless),
		am.Timeline.SwitchCount(amoeba.BackendIaaS))
}
