// Trace replay: drive a benchmark with a load series replayed from CSV —
// the way a production trace (the paper uses Didi ride requests) enters a
// scenario. The example embeds a small bursty series; point -trace at any
// "time_seconds,qps" file to replay your own.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"amoeba"
)

// embeddedTrace is a compressed day with an unusual double-burst
// afternoon — the kind of shape a synthetic diurnal generator would never
// produce, which is the point of replay.
const embeddedTrace = `# time_s,qps
0,14
300,12
600,18
900,30
1200,62
1350,75
1500,40
1800,22
2100,70
2250,78
2400,35
2700,20
3000,15
3300,13
3600,14
`

func main() {
	var (
		tracePath = flag.String("trace", "", "CSV file with time_seconds,qps rows (default: embedded demo trace)")
		benchName = flag.String("bench", "dd", "benchmark to drive")
	)
	flag.Parse()

	var src io.Reader = strings.NewReader(embeddedTrace)
	name := "embedded demo trace"
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
		name = *tracePath
	}
	tr, err := amoeba.LoadTraceCSV(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prof, err := amoeba.BenchmarkByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("replaying %s against %s (trace peak %.0f QPS)\n", name, prof.Name, tr.Peak())
	sc := amoeba.Scenario{
		Variant:    amoeba.Amoeba,
		Services:   []amoeba.ServiceSpec{{Profile: prof, Trace: tr}},
		Background: amoeba.BackgroundTenants(amoeba.Seconds(3600), 7),
		Duration:   3600,
		Seed:       7,
	}
	sr := amoeba.Run(sc).Services[prof.Name]

	fmt.Printf("\nqueries: %d, p95: %.0fms (target %.0fms), QoS met: %v\n",
		sr.Collector.Count(), sr.Collector.P95()*1000, prof.QoSTarget*1000, sr.Collector.QoSMet())
	fmt.Println("switch events (the bursts should push it to IaaS and back):")
	for _, sw := range sr.Timeline.Switches {
		fmt.Printf("  t=%5.0fs  ->%-10s  at load %.1f QPS\n", sw.At, sw.To, sw.LoadQPS)
	}
}
