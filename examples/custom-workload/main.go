// Custom workload: define a microservice that is not part of the
// FunctionBench suite — a thumbnail-resizing service with mixed CPU and
// network demand — and let Amoeba manage it. Demonstrates that the
// public Benchmark type is an open profile, not a closed enum.
package main

import (
	"fmt"

	"amoeba"
)

func main() {
	thumb := amoeba.Benchmark{
		Name:     "thumbnail",
		ExecTime: 0.120, // 120 ms of decode + resize + encode
		ExecCV:   0.18,
		// p95 within 350 ms end to end.
		QoSTarget: 0.350,
		// Each in-flight query: most of a core, a modest working set,
		// and the image transfer on the NIC.
		Demand: amoeba.ResourceVector{CPU: 0.7, MemMB: 190, DiskMBs: 10, NetMbs: 250},
		// Sensitive to CPU contention, somewhat to network.
		Sensitivity:    amoeba.Sensitivity{CPU: 0.7, IO: 0.05, Net: 0.4},
		MemSensitivity: 0.5,
		PeakQPS:        45,
		Overheads: amoeba.Overheads{
			Processing:  0.010,
			CodeLoadHot: 0.008,
			ResultPost:  0.012, // posting the thumbnail back
		},
		VMCores: 4,
		VMMemMB: 8 * 1024,
	}
	if err := thumb.Validate(); err != nil {
		panic(err)
	}
	if thumb.Demand.MemMB > amoeba.ContainerMemMB {
		panic("working set exceeds the serverless container size")
	}

	opts := amoeba.DefaultScenarioOptions()
	fmt.Printf("simulating custom service %q (peak %.0f QPS, QoS %.0fms) under Amoeba...\n",
		thumb.Name, thumb.PeakQPS, thumb.QoSTarget*1000)
	fmt.Println("(first run profiles the service's latency surfaces — Fig. 9 style)")

	am := amoeba.Run(amoeba.NewScenario(amoeba.Amoeba, thumb, opts)).Services[thumb.Name]
	nk := amoeba.Run(amoeba.NewScenario(amoeba.Nameko, thumb, opts)).Services[thumb.Name]

	fmt.Printf("\np95 latency: %.0fms (target %.0fms) — QoS met: %v\n",
		am.Collector.P95()*1000, thumb.QoSTarget*1000, am.Collector.QoSMet())
	fmt.Printf("switches: %d to serverless, %d to IaaS\n",
		am.Timeline.SwitchCount(amoeba.BackendServerless),
		am.Timeline.SwitchCount(amoeba.BackendIaaS))
	fmt.Printf("CPU saved vs always-on IaaS: %.1f%%\n",
		100*(1-am.TotalUsage().CPU/nk.TotalUsage().CPU))
	fmt.Printf("memory saved vs always-on IaaS: %.1f%%\n",
		100*(1-am.TotalUsage().MemMB/nk.TotalUsage().MemMB))
}
