// Diurnal switching: visualise how Amoeba moves a service between the
// IaaS and serverless deployments as its load follows a day-night cycle —
// the behaviour of the paper's Fig. 12 — as an ASCII timeline.
package main

import (
	"fmt"
	"strings"

	"amoeba"
)

func main() {
	prof, err := amoeba.BenchmarkByName("float")
	if err != nil {
		panic(err)
	}
	opts := amoeba.DefaultScenarioOptions()
	opts.Seed = 42

	fmt.Printf("one diurnal day of %s under Amoeba (peak %.0f QPS, trough %.0f QPS)\n\n",
		prof.Name, prof.PeakQPS, prof.PeakQPS*opts.TroughFraction.Raw())
	sr := amoeba.Run(amoeba.NewScenario(amoeba.Amoeba, prof, opts)).Services[prof.Name]

	// Render the timeline: one column per snapshot, load on top, the
	// active deployment mode underneath.
	const cols = 72
	snaps := sr.Timeline.Snapshots
	if len(snaps) == 0 {
		panic("no snapshots recorded")
	}
	step := len(snaps) / cols
	if step == 0 {
		step = 1
	}
	var loads []float64
	var modes []amoeba.Backend
	maxLoad := 0.0
	for i := 0; i < len(snaps); i += step {
		loads = append(loads, snaps[i].LoadQPS)
		modes = append(modes, snaps[i].Mode)
		if snaps[i].LoadQPS > maxLoad {
			maxLoad = snaps[i].LoadQPS
		}
	}

	const rows = 8
	for r := rows; r >= 1; r-- {
		line := make([]byte, len(loads))
		for c, l := range loads {
			if l/maxLoad*rows >= float64(r)-0.5 {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Printf("%5.0f |%s\n", maxLoad*float64(r)/rows, string(line))
	}
	fmt.Printf("      +%s\n", strings.Repeat("-", len(loads)))
	modeLine := make([]byte, len(modes))
	for c, m := range modes {
		if m == amoeba.BackendServerless {
			modeLine[c] = 's' // serverless
		} else {
			modeLine[c] = 'I' // IaaS
		}
	}
	fmt.Printf("mode:  %s\n", string(modeLine))
	fmt.Println("       (I = IaaS, s = serverless)")

	fmt.Println("\nswitch events:")
	for _, sw := range sr.Timeline.Switches {
		fmt.Printf("  t=%5.0fs  ->%-10s  at load %.1f QPS\n", sw.At, sw.To, sw.LoadQPS)
	}
	fmt.Printf("\nQoS met: %v (p95 = %.0fms, target %.0fms)\n",
		sr.Collector.QoSMet(), sr.Collector.P95()*1000, prof.QoSTarget*1000)
}
