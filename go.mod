module amoeba

go 1.22
