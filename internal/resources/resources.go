// Package resources defines the multi-dimensional resource algebra shared
// by every platform model: CPU cores, memory, disk-IO bandwidth, and
// network bandwidth — the four shared resources the paper's contention
// analysis covers (§II-D, Fig. 5).
package resources

import (
	"fmt"
	"math"
)

// Kind identifies one shared-resource dimension.
type Kind int

const (
	CPU     Kind = iota // cores
	Memory              // MB resident
	DiskIO              // MB/s of disk bandwidth
	Network             // Mb/s of NIC bandwidth
	NumKinds
)

var kindNames = [NumKinds]string{"cpu", "memory", "disk_io", "network"}

func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists all resource dimensions in canonical order.
func Kinds() []Kind { return []Kind{CPU, Memory, DiskIO, Network} }

// Vector is a demand or capacity across all resource dimensions. Units:
// CPU in cores, Memory in MB, DiskIO in MB/s, Network in Mb/s.
type Vector struct {
	CPU     float64
	MemMB   float64
	DiskMBs float64
	NetMbs  float64
}

// Get returns the component for kind k. It panics on an invalid kind.
func (v Vector) Get(k Kind) float64 {
	switch k {
	case CPU:
		return v.CPU
	case Memory:
		return v.MemMB
	case DiskIO:
		return v.DiskMBs
	case Network:
		return v.NetMbs
	}
	panic(fmt.Sprintf("resources: invalid kind %d", int(k)))
}

// Set returns a copy of v with the component for kind k replaced.
// It panics on an invalid kind.
func (v Vector) Set(k Kind, val float64) Vector {
	switch k {
	case CPU:
		v.CPU = val
	case Memory:
		v.MemMB = val
	case DiskIO:
		v.DiskMBs = val
	case Network:
		v.NetMbs = val
	default:
		panic(fmt.Sprintf("resources: invalid kind %d", int(k)))
	}
	return v
}

// Add returns v + o component-wise.
func (v Vector) Add(o Vector) Vector {
	return Vector{v.CPU + o.CPU, v.MemMB + o.MemMB, v.DiskMBs + o.DiskMBs, v.NetMbs + o.NetMbs}
}

// Sub returns v - o component-wise.
func (v Vector) Sub(o Vector) Vector {
	return Vector{v.CPU - o.CPU, v.MemMB - o.MemMB, v.DiskMBs - o.DiskMBs, v.NetMbs - o.NetMbs}
}

// Scale returns v * f component-wise.
func (v Vector) Scale(f float64) Vector {
	return Vector{v.CPU * f, v.MemMB * f, v.DiskMBs * f, v.NetMbs * f}
}

// Max returns the component-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	return Vector{
		math.Max(v.CPU, o.CPU), math.Max(v.MemMB, o.MemMB),
		math.Max(v.DiskMBs, o.DiskMBs), math.Max(v.NetMbs, o.NetMbs),
	}
}

// Fits reports whether v <= cap in every dimension.
func (v Vector) Fits(cap Vector) bool {
	return v.CPU <= cap.CPU && v.MemMB <= cap.MemMB &&
		v.DiskMBs <= cap.DiskMBs && v.NetMbs <= cap.NetMbs
}

// IsZero reports whether all components are zero.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// NonNegative reports whether all components are >= 0.
func (v Vector) NonNegative() bool {
	return v.CPU >= 0 && v.MemMB >= 0 && v.DiskMBs >= 0 && v.NetMbs >= 0
}

// DivideBy returns per-dimension ratios v_i / cap_i (pressure against a
// capacity). Dimensions with zero capacity yield 0 when the demand is also
// zero and +Inf otherwise.
func (v Vector) DivideBy(cap Vector) Vector {
	div := func(a, b float64) float64 {
		if b == 0 {
			if a == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return a / b
	}
	return Vector{
		div(v.CPU, cap.CPU), div(v.MemMB, cap.MemMB),
		div(v.DiskMBs, cap.DiskMBs), div(v.NetMbs, cap.NetMbs),
	}
}

func (v Vector) String() string {
	return fmt.Sprintf("{cpu:%.2f mem:%.0fMB io:%.1fMB/s net:%.1fMb/s}",
		v.CPU, v.MemMB, v.DiskMBs, v.NetMbs)
}
