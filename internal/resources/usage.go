package resources

import "fmt"

// Usage integrates an allocation Vector over virtual time, producing
// resource-time totals (core-seconds, MB-seconds, ...). The paper's Fig. 11
// and Fig. 14 compare exactly these integrals, normalised to the pure
// IaaS deployment.
type Usage struct {
	last      float64 // time of last update
	current   Vector  // allocation since last update
	integral  Vector  // accumulated resource-time
	peak      Vector  // peak instantaneous allocation
	started   bool
	startTime float64
}

// NewUsage returns an accumulator starting at time t with zero allocation.
func NewUsage(t float64) *Usage {
	return &Usage{last: t, startTime: t, started: true}
}

// Record advances the integral to time t and sets the allocation that
// holds from t onward. It panics if t moves backwards — the simulator
// clock is monotone, so a regression means corrupted bookkeeping.
func (u *Usage) Record(t float64, alloc Vector) {
	if !u.started {
		u.last, u.startTime, u.started = t, t, true
	}
	if t < u.last {
		panic(fmt.Sprintf("resources: Usage.Record time went backwards: %v < %v", t, u.last))
	}
	dt := t - u.last
	u.integral = u.integral.Add(u.current.Scale(dt))
	u.current = alloc
	u.peak = u.peak.Max(alloc)
	u.last = t
}

// Adjust adds delta to the current allocation at time t. Convenient for
// platforms that track container/VM arrivals and departures incrementally.
// Floating-point residue from repeated add/remove cycles (within -1e-9)
// is snapped to zero; genuinely negative allocations panic.
func (u *Usage) Adjust(t float64, delta Vector) {
	next := u.current.Add(delta)
	for _, k := range Kinds() {
		if v := next.Get(k); v < 0 && v > -1e-9 {
			next = next.Set(k, 0)
		}
	}
	u.Record(t, next)
	if !u.current.NonNegative() {
		panic(fmt.Sprintf("resources: allocation went negative: %v", u.current))
	}
}

// Current returns the allocation in force now.
func (u *Usage) Current() Vector { return u.current }

// Peak returns the peak instantaneous allocation seen so far.
func (u *Usage) Peak() Vector { return u.peak }

// TotalAt finalises the integral at time t and returns resource-time
// totals. The accumulator remains usable afterwards.
func (u *Usage) TotalAt(t float64) Vector {
	u.Record(t, u.current)
	return u.integral
}

// MeanAt returns the time-averaged allocation over [start, t].
func (u *Usage) MeanAt(t float64) Vector {
	total := u.TotalAt(t)
	span := t - u.startTime
	if span <= 0 {
		return Vector{}
	}
	return total.Scale(1 / span)
}
