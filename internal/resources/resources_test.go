package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func vec(c, m, d, n float64) Vector { return Vector{CPU: c, MemMB: m, DiskMBs: d, NetMbs: n} }

func TestKindString(t *testing.T) {
	want := map[Kind]string{CPU: "cpu", Memory: "memory", DiskIO: "disk_io", Network: "network"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(Kinds()) != int(NumKinds) {
		t.Errorf("Kinds() has %d entries, want %d", len(Kinds()), NumKinds)
	}
}

func TestVectorGetSetRoundTrip(t *testing.T) {
	v := Vector{}
	for i, k := range Kinds() {
		v = v.Set(k, float64(i+1))
	}
	for i, k := range Kinds() {
		if got := v.Get(k); got != float64(i+1) {
			t.Errorf("Get(%v) = %v, want %v", k, got, i+1)
		}
	}
}

func TestVectorArithmetic(t *testing.T) {
	a, b := vec(1, 2, 3, 4), vec(10, 20, 30, 40)
	if got := a.Add(b); got != vec(11, 22, 33, 44) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != vec(9, 18, 27, 36) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != vec(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Max(vec(0, 5, 2, 100)); got != vec(1, 5, 3, 100) {
		t.Errorf("Max = %v", got)
	}
}

func TestVectorFits(t *testing.T) {
	cap := vec(40, 256000, 2000, 25000)
	if !vec(1, 256, 10, 5).Fits(cap) {
		t.Error("small demand should fit")
	}
	if vec(41, 0, 0, 0).Fits(cap) {
		t.Error("over-CPU demand should not fit")
	}
	if !cap.Fits(cap) {
		t.Error("capacity must fit itself (boundary inclusive)")
	}
}

func TestVectorDivideBy(t *testing.T) {
	p := vec(20, 128000, 500, 12500).DivideBy(vec(40, 256000, 2000, 25000))
	want := vec(0.5, 0.5, 0.25, 0.5)
	if p != want {
		t.Errorf("DivideBy = %v, want %v", p, want)
	}
	z := vec(0, 0, 0, 0).DivideBy(Vector{})
	if z != (Vector{}) {
		t.Errorf("0/0 should be 0, got %v", z)
	}
	inf := vec(1, 0, 0, 0).DivideBy(Vector{})
	if !math.IsInf(inf.CPU, 1) {
		t.Errorf("x/0 should be +Inf, got %v", inf.CPU)
	}
}

func TestVectorAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	gen := func(a, b, c, d uint8) Vector {
		return vec(float64(a), float64(b), float64(c), float64(d))
	}
	// Add is commutative.
	if err := quick.Check(func(a1, a2, a3, a4, b1, b2, b3, b4 uint8) bool {
		x, y := gen(a1, a2, a3, a4), gen(b1, b2, b3, b4)
		return x.Add(y) == y.Add(x)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Sub then Add restores.
	if err := quick.Check(func(a1, a2, a3, a4, b1, b2, b3, b4 uint8) bool {
		x, y := gen(a1, a2, a3, a4), gen(b1, b2, b3, b4)
		return x.Add(y).Sub(y) == x
	}, cfg); err != nil {
		t.Error(err)
	}
	// Scale distributes over Add.
	if err := quick.Check(func(a1, a2, a3, a4, b1, b2, b3, b4 uint8, f uint8) bool {
		x, y := gen(a1, a2, a3, a4), gen(b1, b2, b3, b4)
		s := float64(f)
		return x.Add(y).Scale(s) == x.Scale(s).Add(y.Scale(s))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestUsageIntegration(t *testing.T) {
	u := NewUsage(0)
	u.Record(0, vec(4, 1024, 0, 0)) // 4 cores from t=0
	u.Record(10, vec(2, 512, 0, 0)) // drop to 2 cores at t=10
	total := u.TotalAt(20)
	// 4*10 + 2*10 = 60 core-seconds; 1024*10 + 512*10 = 15360 MB-s.
	if total.CPU != 60 {
		t.Errorf("CPU integral = %v, want 60", total.CPU)
	}
	if total.MemMB != 15360 {
		t.Errorf("Mem integral = %v, want 15360", total.MemMB)
	}
	mean := u.MeanAt(20)
	if mean.CPU != 3 {
		t.Errorf("mean CPU = %v, want 3", mean.CPU)
	}
	if u.Peak().CPU != 4 {
		t.Errorf("peak CPU = %v, want 4", u.Peak().CPU)
	}
}

func TestUsageAdjust(t *testing.T) {
	u := NewUsage(0)
	u.Adjust(0, vec(1, 256, 0, 0))
	u.Adjust(5, vec(1, 256, 0, 0))
	u.Adjust(10, vec(-1, -256, 0, 0))
	total := u.TotalAt(20)
	// 1 core for 5s, 2 cores for 5s, 1 core for 10s = 25 core-seconds.
	if total.CPU != 25 {
		t.Errorf("CPU integral = %v, want 25", total.CPU)
	}
	if u.Current() != vec(1, 256, 0, 0) {
		t.Errorf("current = %v", u.Current())
	}
}

func TestUsageBackwardsTimePanics(t *testing.T) {
	u := NewUsage(10)
	defer func() {
		if recover() == nil {
			t.Error("Record with earlier time did not panic")
		}
	}()
	u.Record(5, Vector{})
}

func TestUsageNegativeAllocationPanics(t *testing.T) {
	u := NewUsage(0)
	defer func() {
		if recover() == nil {
			t.Error("Adjust below zero did not panic")
		}
	}()
	u.Adjust(1, vec(-1, 0, 0, 0))
}

func TestUsageIdempotentTotal(t *testing.T) {
	u := NewUsage(0)
	u.Record(0, vec(2, 0, 0, 0))
	a := u.TotalAt(10)
	b := u.TotalAt(10)
	if a != b {
		t.Errorf("TotalAt not idempotent: %v then %v", a, b)
	}
}
