package stats

import (
	"math"
	"testing"

	"amoeba/internal/sim"
)

func TestP2AgainstExactUniform(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := NewP2Quantile(p)
		exact := NewSample(0)
		for i := 0; i < 100000; i++ {
			v := rng.Float64() * 100
			q.Add(v)
			exact.Add(v)
		}
		want := exact.Quantile(p)
		got := q.Value()
		if math.Abs(got-want) > 1.5 { // 1.5 of a 0..100 range
			t.Errorf("p=%v: P² %v vs exact %v", p, got, want)
		}
	}
}

func TestP2AgainstExactLogNormal(t *testing.T) {
	// Latency-shaped (skewed) data is the real workload.
	rng := sim.NewRNG(2)
	q := NewP2Quantile(0.95)
	exact := NewSample(0)
	for i := 0; i < 200000; i++ {
		v := rng.LogNormal(-2, 0.4) // ~latency-like, median 0.135
		q.Add(v)
		exact.Add(v)
	}
	want := exact.P95()
	got := q.Value()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("p95: P² %v vs exact %v (rel %.3f)", got, want, math.Abs(got-want)/want)
	}
}

func TestP2SmallSamples(t *testing.T) {
	q := NewP2Quantile(0.95)
	if !math.IsNaN(q.Value()) {
		t.Error("empty estimator should return NaN")
	}
	for _, v := range []float64{3, 1, 2} {
		q.Add(v)
	}
	if got := q.Value(); got < 1 || got > 3 {
		t.Errorf("small-sample value %v outside observed range", got)
	}
	if q.Count() != 3 {
		t.Errorf("Count = %d", q.Count())
	}
}

func TestP2MonotoneMarkers(t *testing.T) {
	rng := sim.NewRNG(3)
	q := NewP2Quantile(0.9)
	for i := 0; i < 50000; i++ {
		q.Add(rng.Exp(1))
		if q.n > 5 {
			for j := 1; j < 5; j++ {
				if q.heights[j] < q.heights[j-1]-1e-9 {
					t.Fatalf("marker heights not monotone at n=%d: %v", q.n, q.heights)
				}
			}
		}
	}
}

func TestP2EstimateWithinObservedRange(t *testing.T) {
	rng := sim.NewRNG(4)
	q := NewP2Quantile(0.95)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		v := rng.Normal(50, 10)
		q.Add(v)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if got := q.Value(); got < lo || got > hi {
		t.Errorf("estimate %v outside observed [%v, %v]", got, lo, hi)
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

// TestZeroAllocP2 asserts the streaming estimator's whole lifecycle —
// reset, the five-observation bootstrap (which re-sorts in place), and
// steady-state marker updates — allocates nothing, matching its O(1)
// memory claim.
//
//amoeba:alloctest stats.P2Quantile.Add stats.P2Quantile.Reset stats.P2Quantile.reinit
func TestZeroAllocP2(t *testing.T) {
	q := NewP2Quantile(0.95)
	rng := sim.NewRNG(7)
	allocs := testing.AllocsPerRun(100, func() {
		q.Reset()
		for i := 0; i < 64; i++ {
			q.Add(rng.Float64() * 100)
		}
	})
	if allocs != 0 {
		t.Errorf("P² reset+add allocates %.2f objects per 64-observation window, want 0", allocs)
	}
}
