package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile is the Jain & Chlamtac P² algorithm: a streaming estimate of
// one quantile in O(1) memory. Long multi-day simulations produce
// hundreds of millions of latencies; the exact Sample keeps them all,
// which is fine for a day but not for a month — monitors that need a
// running p95 over an unbounded stream use this instead.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	want    [5]float64 // desired positions
	inc     [5]float64 // desired-position increments
	initial [5]float64 // first five observations before the invariant holds
	ninit   int
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
// It panics if p is outside that interval.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P² quantile %v out of (0,1)", p))
	}
	q := &P2Quantile{p: p}
	q.reinit()
	return q
}

// reinit puts the estimator in its fresh state for the configured p.
//
//amoeba:noalloc
func (q *P2Quantile) reinit() {
	p := q.p
	q.n = 0
	q.ninit = 0
	q.heights = [5]float64{}
	q.pos = [5]float64{}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// Reset discards all observations, keeping the configured quantile. The
// estimator is O(1) memory, so per-window accounting can hold one and
// reset it at window boundaries without allocating. It panics on an
// estimator not created with NewP2Quantile.
//
//amoeba:noalloc
func (q *P2Quantile) Reset() {
	if q.p <= 0 || q.p >= 1 {
		//amoeba:allowalloc(cold panic path: message boxing fires only on a misused estimator)
		panic(fmt.Sprintf("stats: Reset of unconfigured P² estimator (p=%v)", q.p))
	}
	q.reinit()
}

// Add records one observation.
//
//amoeba:noalloc
func (q *P2Quantile) Add(x float64) {
	q.n++
	if q.ninit < 5 {
		q.initial[q.ninit] = x
		q.ninit++
		if q.ninit == 5 {
			sort.Float64s(q.initial[:])
			q.heights = q.initial
			q.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}

	// Locate the cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}

	// Adjust the three interior markers with the parabolic formula,
	// falling back to linear when P² would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Count returns the number of observations.
func (q *P2Quantile) Count() int { return q.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact small-sample quantile; with
// none it returns NaN.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if q.ninit < 5 {
		tmp := q.initial // stack copy; sorting must not disturb arrival order
		sort.Float64s(tmp[:q.ninit])
		idx := int(q.p * float64(q.ninit))
		if idx >= q.ninit {
			idx = q.ninit - 1
		}
		return tmp[idx]
	}
	return q.heights[2]
}
