// Package stats provides the statistical primitives the evaluation needs:
// exact quantiles and CDFs for latency distributions (Fig. 10), streaming
// mean/variance (Welford), EWMA load estimation for the controller, and
// simple histograms for reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects observations and answers quantile/CDF queries exactly.
// Observations are kept unsorted until a query arrives; queries sort
// lazily and cache until the next out-of-order Add: an append that keeps
// the data sorted (monotone streams, or adds after a query) preserves the
// cache, so alternating Add/Quantile on ordered data never re-sorts.
type Sample struct {
	data   []float64
	sorted bool
}

// NewSample returns an empty sample, optionally pre-sized.
func NewSample(capacity int) *Sample {
	return &Sample{data: make([]float64, 0, capacity), sorted: true}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.sorted && len(s.data) > 0 && v < s.data[len(s.data)-1] {
		s.sorted = false
	}
	s.data = append(s.data, v)
}

// AddAll records a batch of observations. Empty batches are a no-op (and
// keep the sort cache); singletons take the Add path.
func (s *Sample) AddAll(vs []float64) {
	switch len(vs) {
	case 0:
		return
	case 1:
		s.Add(vs[0])
		return
	}
	s.data = append(s.data, vs...)
	s.sorted = false
}

// Reset empties the sample, keeping the backing array for reuse —
// per-window accounting can recycle one sample instead of reallocating
// every window.
func (s *Sample) Reset() {
	s.data = s.data[:0]
	s.sorted = true
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.data) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.data)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. It panics on an empty sample or q outside [0,1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.data) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s.ensureSorted()
	if len(s.data) == 1 {
		return s.data[0]
	}
	pos := q * float64(len(s.data)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.data[lo]
	}
	frac := pos - float64(lo)
	return s.data[lo]*(1-frac) + s.data[hi]*frac
}

// P95 is shorthand for the 95th percentile, the paper's QoS metric.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// P99 is shorthand for the 99th percentile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Mean returns the arithmetic mean. It panics on an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.data) == 0 {
		panic("stats: Mean of empty sample")
	}
	sum := 0.0
	for _, v := range s.data {
		sum += v
	}
	return sum / float64(len(s.data))
}

// Min returns the smallest observation. It panics on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.data) == 0 {
		panic("stats: Min of empty sample")
	}
	s.ensureSorted()
	return s.data[0]
}

// Max returns the largest observation. It panics on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.data) == 0 {
		panic("stats: Max of empty sample")
	}
	s.ensureSorted()
	return s.data[len(s.data)-1]
}

// FractionBelow returns the empirical CDF at x: the fraction of
// observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.ensureSorted()
	idx := sort.SearchFloat64s(s.data, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.data))
}

// CDF returns (x, F(x)) pairs evaluated at n evenly spaced points between
// min and max, suitable for plotting Fig. 10-style curves.
func (s *Sample) CDF(n int) (xs, fs []float64) {
	if len(s.data) == 0 || n < 2 {
		return nil, nil
	}
	s.ensureSorted()
	lo, hi := s.data[0], s.data[len(s.data)-1]
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = s.FractionBelow(x)
	}
	return xs, fs
}

// Values returns a sorted copy of the observations.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.data))
	copy(out, s.data)
	return out
}

// Welford computes streaming mean and variance in one pass without storing
// observations.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 for an empty stream).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with <2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average; the controller uses it
// to estimate the instantaneous query arrival rate λ.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha tracks changes faster. It panics if alpha is out of range.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds one observation into the average and returns the new value.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.value, e.init = v, true
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average (0 before the first update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation was folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Histogram counts observations in fixed-width bins over [lo, hi);
// out-of-range observations land in clamped edge bins.
type Histogram struct {
	lo, hi float64
	bins   []int
	total  int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
// It panics on an empty range or non-positive bin count.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.total++
}

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}
