package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleQuantileKnown(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.95, 95.05}, {0.25, 25.75},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleSingleValue(t *testing.T) {
	s := NewSample(0)
	s.Add(7)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) of singleton = %v, want 7", q, got)
		}
	}
}

func TestSampleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty sample did not panic")
		}
	}()
	NewSample(0).Quantile(0.5)
}

func TestSampleQuantileOutOfRangePanics(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) did not panic")
		}
	}()
	s.Quantile(1.5)
}

func TestSampleMinMaxMean(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{5, 1, 9, 3})
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 4.5 {
		t.Errorf("Mean = %v, want 4.5", s.Mean())
	}
}

func TestSampleFractionBelow(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSampleCDFMonotone(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 500; i++ {
		s.Add(math.Sin(float64(i)) * 10)
	}
	xs, fs := s.CDF(50)
	if len(xs) != 50 || len(fs) != 50 {
		t.Fatalf("CDF lengths %d/%d", len(xs), len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, fs[i], fs[i-1])
		}
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("CDF endpoint = %v, want 1", fs[len(fs)-1])
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{3, 1, 2})
	_ = s.Quantile(0.5)
	s.Add(0)
	if s.Min() != 0 {
		t.Error("Add after query not reflected in Min")
	}
}

func TestSampleQuantileProperty(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, v := range raw {
			s.Add(float64(v))
		}
		q := float64(qRaw) / 255
		got := s.Quantile(q)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleValuesSortedCopy(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{3, 1, 2})
	vs := s.Values()
	if !sort.Float64sAreSorted(vs) {
		t.Error("Values not sorted")
	}
	vs[0] = -100
	if s.Min() == -100 {
		t.Error("Values returned internal slice, not a copy")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		w.Add(v)
	}
	if w.Count() != len(data) {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-wantVar) < 1e-4*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA reports initialized")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("first update = %v, want 10", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Errorf("second update = %v, want 15", e.Value())
	}
	e.Update(20)
	if e.Value() != 17.5 {
		t.Errorf("third update = %v, want 17.5", e.Value())
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, -1, 100} {
		h.Add(v)
	}
	counts := h.Counts()
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	// -1 clamps into bin 0, 100 clamps into bin 4.
	if counts[0] != 3 { // 0.5, 1, -1
		t.Errorf("bin 0 = %d, want 3", counts[0])
	}
	if counts[4] != 2 { // 9, 100
		t.Errorf("bin 4 = %d, want 2", counts[4])
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram bounds did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}
