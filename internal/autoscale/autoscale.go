// Package autoscale implements a Kubernetes-style horizontal VM
// autoscaler as an additional baseline (the elastic-IaaS line of related
// work, §VIII [25]): scale the VM group so that worker utilisation tracks
// a target, with a cooldown between actions.
//
// The comparison it exists for: reactive scaling also cuts idle cost
// under a diurnal load, but it pays VM boot delay *on the latency path*
// when the load ramps — whereas Amoeba absorbs ramps by switching early
// (prewarmed containers, boot started before the flip). The ablation
// bench quantifies both sides.
package autoscale

import (
	"fmt"
	"math"

	"amoeba/internal/iaas"
	"amoeba/internal/sim"
	"amoeba/internal/stats"
	"amoeba/internal/workload"
)

// Config tunes the autoscaler.
type Config struct {
	// Period between evaluations, seconds.
	Period float64
	// TargetUtil is the busy/slots ratio the scaler aims for.
	TargetUtil float64
	// UtilAlpha smooths the sampled utilisation.
	UtilAlpha float64
	// ScaleOutThreshold and ScaleInThreshold bound the dead zone: act
	// only when smoothed utilisation leaves [in, out].
	ScaleOutThreshold float64
	ScaleInThreshold  float64
	// Cooldown is the minimum time between scaling actions.
	Cooldown float64
	// MinVMs and MaxVMs clamp the group size.
	MinVMs, MaxVMs int
}

// DefaultConfig returns an HPA-flavoured configuration.
func DefaultConfig() Config {
	return Config{
		Period:            15,
		TargetUtil:        0.60,
		UtilAlpha:         0.4,
		ScaleOutThreshold: 0.75,
		ScaleInThreshold:  0.35,
		Cooldown:          60,
		MinVMs:            1,
		MaxVMs:            64,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Period <= 0 || c.Cooldown < 0 {
		return fmt.Errorf("autoscale: non-positive period")
	}
	if c.TargetUtil <= 0 || c.TargetUtil >= 1 {
		return fmt.Errorf("autoscale: target utilisation %v out of (0,1)", c.TargetUtil)
	}
	if !(c.ScaleInThreshold < c.TargetUtil && c.TargetUtil < c.ScaleOutThreshold) {
		return fmt.Errorf("autoscale: thresholds %v/%v do not bracket target %v",
			c.ScaleInThreshold, c.ScaleOutThreshold, c.TargetUtil)
	}
	if c.UtilAlpha <= 0 || c.UtilAlpha > 1 {
		return fmt.Errorf("autoscale: alpha %v out of (0,1]", c.UtilAlpha)
	}
	if c.MinVMs < 1 || c.MaxVMs < c.MinVMs {
		return fmt.Errorf("autoscale: VM bounds %d..%d malformed", c.MinVMs, c.MaxVMs)
	}
	return nil
}

// Autoscaler drives one service's VM group.
type Autoscaler struct {
	sim     *sim.Simulator
	vms     *iaas.Platform
	prof    workload.Profile
	cfg     Config
	util    *stats.EWMA
	last    float64 // time of the last scaling action
	scaling bool    // a scale-out is booting
	actions int
	stop    func()
}

// New creates an autoscaler for a service already deployed on the
// platform (typically via DeployWithVMs at MinVMs).
// It panics if the config fails validation.
func New(s *sim.Simulator, vms *iaas.Platform, prof workload.Profile, cfg Config) *Autoscaler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Autoscaler{
		sim:  s,
		vms:  vms,
		prof: prof,
		cfg:  cfg,
		util: stats.NewEWMA(cfg.UtilAlpha),
		last: -math.MaxFloat64 / 2,
	}
}

// Start begins the evaluation loop. It panics if called twice.
func (a *Autoscaler) Start() {
	if a.stop != nil {
		panic("autoscale: Start called twice")
	}
	a.stop = a.sim.Every(a.cfg.Period, a.evaluate)
}

// Stop halts the loop.
func (a *Autoscaler) Stop() {
	if a.stop != nil {
		a.stop()
		a.stop = nil
	}
}

// Actions returns the number of scaling actions taken.
func (a *Autoscaler) Actions() int { return a.actions }

// Utilization returns the smoothed utilisation estimate.
func (a *Autoscaler) Utilization() float64 { return a.util.Value() }

func (a *Autoscaler) evaluate() {
	name := a.prof.Name
	slots := a.vms.Slots(name)
	if slots == 0 {
		return
	}
	// Utilisation signal: busy workers plus the waiting queue, with the
	// queue contribution capped at one slot-worth. The backlog is an
	// integral, not a rate — feeding it in raw makes the scaler chase its
	// own history and massively overshoot; capping it turns "queue
	// exists" into "we are at least 2x over target", which is all a
	// multiplicative controller needs.
	queue := a.vms.QueueLength(name)
	if queue > slots {
		queue = slots
	}
	u := a.util.Update(float64(a.vms.Busy(name)+queue) / float64(slots))

	now := float64(a.sim.Now())
	if a.scaling || now-a.last < a.cfg.Cooldown {
		return
	}
	if u > a.cfg.ScaleInThreshold && u < a.cfg.ScaleOutThreshold {
		return // dead zone
	}
	// HPA-style multiplicative step: desired = current × u / target.
	cur := a.vms.VMs(name)
	desired := int(math.Ceil(float64(cur) * u / a.cfg.TargetUtil))
	if desired < a.cfg.MinVMs {
		desired = a.cfg.MinVMs
	}
	if desired > a.cfg.MaxVMs {
		desired = a.cfg.MaxVMs
	}
	if desired == cur {
		return
	}
	a.actions++
	a.last = now
	// The signal is stale the moment the group resizes.
	a.util = stats.NewEWMA(a.cfg.UtilAlpha)
	if desired > cur {
		a.scaling = true
		a.vms.Scale(name, desired, func() { a.scaling = false })
	} else {
		// Scale in one step at a time: conservative, like HPA's default
		// stabilisation window.
		a.vms.Scale(name, cur-1, nil)
	}
}
