package autoscale

import (
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/iaas"
	"amoeba/internal/metrics"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func rig(seed uint64, cfg Config) (*sim.Simulator, *iaas.Platform, *Autoscaler, *metrics.Collector) {
	s := sim.New(seed)
	vms := iaas.New(s, iaas.DefaultConfig())
	prof := workload.Float()
	coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
	vms.DeployWithVMs(prof, cfg.MinVMs, coll.Observe)
	a := New(s, vms, prof, cfg)
	a.Start()
	return s, vms, a, coll
}

func TestScalesOutUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	s, vms, a, _ := rig(1, cfg)
	// 1 VM = 4 slots; 40 QPS × 0.1 s needs ~4 busy workers at 100%:
	// far over the 75% threshold.
	gen := arrival.New(s, trace.Constant{QPS: 40}, func(sim.Time) { vms.Invoke("float") })
	gen.Start()
	s.Run(600)
	if vms.VMs("float") <= cfg.MinVMs {
		t.Fatalf("never scaled out: %d VMs, util %v", vms.VMs("float"), a.Utilization())
	}
	if a.Actions() == 0 {
		t.Error("no actions recorded")
	}
	// Post-scale utilisation near target.
	if u := a.Utilization(); u > cfg.ScaleOutThreshold+0.1 {
		t.Errorf("still overloaded after scaling: util %v", u)
	}
}

func TestScalesInWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	s, vms, _, _ := rig(2, cfg)
	// Load for a while, then nothing.
	gen := arrival.New(s, trace.Step{Before: 40, After: 0.5, At: 600}, func(sim.Time) { vms.Invoke("float") })
	gen.Start()
	s.Run(600)
	peakVMs := vms.VMs("float")
	if peakVMs <= cfg.MinVMs {
		t.Fatalf("setup failed: never scaled out (%d VMs)", peakVMs)
	}
	s.Run(3600)
	if got := vms.VMs("float"); got != cfg.MinVMs {
		t.Errorf("idle group still at %d VMs, want MinVMs=%d", got, cfg.MinVMs)
	}
}

func TestRespectsBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxVMs = 2
	s, vms, _, _ := rig(3, cfg)
	gen := arrival.New(s, trace.Constant{QPS: 200}, func(sim.Time) { vms.Invoke("float") })
	gen.Start()
	s.Run(400)
	if got := vms.VMs("float"); got > 2 {
		t.Errorf("scaled past MaxVMs: %d", got)
	}
}

func TestCooldownLimitsActionRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cooldown = 300
	s, vms, a, _ := rig(4, cfg)
	gen := arrival.New(s, trace.Constant{QPS: 80}, func(sim.Time) { vms.Invoke("float") })
	gen.Start()
	s.Run(600)
	// At most two actions fit in 600s with a 300s cooldown (plus boot).
	if a.Actions() > 3 {
		t.Errorf("%d actions despite 300s cooldown", a.Actions())
	}
}

func TestRampViolatesTightQoSBeforeCapacityArrives(t *testing.T) {
	// The structural weakness Amoeba avoids: a sudden ramp queues behind
	// the 30s VM boot, and float's 180ms target cannot absorb that.
	cfg := DefaultConfig()
	s, vms, _, coll := rig(5, cfg)
	gen := arrival.New(s, trace.Step{Before: 2, After: 45, At: 300}, func(sim.Time) { vms.Invoke("float") })
	gen.Start()
	s.Run(900)
	if coll.ViolationFraction() < 0.01 {
		t.Errorf("ramp produced only %.2f%% violations; boot delay should bite",
			100*coll.ViolationFraction())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.TargetUtil = 0.9
	bad.ScaleOutThreshold = 0.8 // target above out-threshold
	if bad.Validate() == nil {
		t.Error("non-bracketing thresholds accepted")
	}
	bad = DefaultConfig()
	bad.MinVMs = 0
	if bad.Validate() == nil {
		t.Error("zero MinVMs accepted")
	}
	bad = DefaultConfig()
	bad.Period = 0
	if bad.Validate() == nil {
		t.Error("zero period accepted")
	}
}

func TestStartTwicePanics(t *testing.T) {
	s := sim.New(6)
	vms := iaas.New(s, iaas.DefaultConfig())
	vms.DeployWithVMs(workload.Float(), 1, nil)
	a := New(s, vms, workload.Float(), DefaultConfig())
	a.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	a.Start()
}
