package queueing

import (
	"fmt"
	"math"
)

// MMNK is an M/M/N/K system: Poisson arrivals, N exponential servers, and
// at most K queries in the system (waiting room K−N). Arrivals that find
// the system full are rejected. Public serverless platforms impose
// exactly this kind of cap — the paper's §I "concurrent request
// threshold" that "restrict[s] the max peak load in the serverless
// platform" — so the admission analysis uses it to bound achievable
// throughput under a vendor limit.
type MMNK struct {
	Lambda float64 // offered arrival rate
	Mu     float64 // per-server service rate
	N      int     // servers
	K      int     // system capacity, K >= N
}

// Validate reports malformed systems.
func (q MMNK) Validate() error {
	if q.Lambda < 0 || q.Mu <= 0 || q.N <= 0 {
		return fmt.Errorf("queueing: invalid M/M/N/K parameters %+v", q)
	}
	if q.K < q.N {
		return fmt.Errorf("queueing: capacity K=%d below server count N=%d", q.K, q.N)
	}
	return nil
}

// probabilities returns π_0..π_K. Finite systems always have a steady
// state, even at ρ >= 1. It panics if the system parameters are malformed
// (see Validate).
func (q MMNK) probabilities() []float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	a := q.Lambda / q.Mu
	// Unnormalised terms via running products for stability.
	terms := make([]float64, q.K+1)
	terms[0] = 1
	for k := 1; k <= q.K; k++ {
		div := float64(k)
		if k > q.N {
			div = float64(q.N)
		}
		terms[k] = terms[k-1] * a / div
	}
	sum := 0.0
	for _, t := range terms {
		sum += t
	}
	for k := range terms {
		terms[k] /= sum
	}
	return terms
}

// PiK returns π_k for 0 <= k <= K (0 beyond K). It panics if k is
// negative.
func (q MMNK) PiK(k int) float64 {
	if k < 0 {
		panic("queueing: negative k")
	}
	if k > q.K {
		return 0
	}
	return q.probabilities()[k]
}

// BlockingProbability returns π_K: the fraction of arrivals rejected.
func (q MMNK) BlockingProbability() float64 {
	return q.probabilities()[q.K]
}

// Throughput returns the accepted arrival rate λ(1 − π_K).
func (q MMNK) Throughput() float64 {
	return q.Lambda * (1 - q.BlockingProbability())
}

// MeanInSystem returns E[L], the mean number of queries in the system.
func (q MMNK) MeanInSystem() float64 {
	pis := q.probabilities()
	l := 0.0
	for k, p := range pis {
		l += float64(k) * p
	}
	return l
}

// MeanResponse returns E[T] for accepted queries via Little's law:
// E[L] / throughput.
func (q MMNK) MeanResponse() float64 {
	thr := q.Throughput()
	if thr == 0 {
		return 0
	}
	return q.MeanInSystem() / thr
}

// MeanWait returns E[W] = E[T] − 1/μ for accepted queries.
func (q MMNK) MeanWait() float64 {
	w := q.MeanResponse() - 1/q.Mu
	if w < 0 {
		return 0
	}
	return w
}

// MaxThroughputUnderBlocking returns the largest offered λ whose blocking
// probability stays within maxBlock, found by bisection — the admissible
// peak under a vendor concurrency cap. It panics if maxBlock is outside
// (0,1).
func (q MMNK) MaxThroughputUnderBlocking(maxBlock float64) float64 {
	if maxBlock <= 0 || maxBlock >= 1 {
		panic(fmt.Sprintf("queueing: blocking bound %v out of (0,1)", maxBlock))
	}
	ok := func(lambda float64) bool {
		qq := q
		qq.Lambda = lambda
		return qq.BlockingProbability() <= maxBlock
	}
	lo, hi := 0.0, float64(q.N)*q.Mu*4
	if ok(hi) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ErlangB returns the Erlang-B blocking probability for an M/M/N/N loss
// system with offered load a erlangs on n servers, via the numerically
// stable recurrence B(0)=1, B(k) = aB(k-1)/(k + aB(k-1)). It panics if a
// or n is negative.
func ErlangB(a float64, n int) float64 {
	if a < 0 || n < 0 {
		panic(fmt.Sprintf("queueing: invalid Erlang-B arguments a=%v n=%d", a, n))
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// mmnkConsistent cross-checks that M/M/N/N reduces to Erlang-B; exposed
// for tests via a tiny wrapper rather than exported API.
func (q MMNK) erlangBEquivalent() float64 {
	if q.K != q.N {
		return math.NaN()
	}
	return ErlangB(q.Lambda/q.Mu, q.N)
}
