package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1KKnownValues(t *testing.T) {
	// M/M/1/K with rho=0.5, K=2: pi = {4/7, 2/7, 1/7}.
	q := MMNK{Lambda: 0.5, Mu: 1, N: 1, K: 2}
	want := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for k, w := range want {
		if got := q.PiK(k); math.Abs(got-w) > 1e-12 {
			t.Errorf("pi%d = %v, want %v", k, got, w)
		}
	}
	if got := q.BlockingProbability(); math.Abs(got-1.0/7) > 1e-12 {
		t.Errorf("blocking = %v, want 1/7", got)
	}
	if got := q.Throughput(); math.Abs(got-0.5*6/7) > 1e-12 {
		t.Errorf("throughput = %v", got)
	}
}

func TestMMNKProbabilitiesSumToOne(t *testing.T) {
	f := func(lamRaw, muRaw, nRaw, extraRaw uint8) bool {
		mu := 0.5 + float64(muRaw%40)/10
		n := int(nRaw%20) + 1
		k := n + int(extraRaw%30)
		lam := float64(lamRaw) / 255 * mu * float64(n) * 2 // may exceed capacity
		q := MMNK{Lambda: lam, Mu: mu, N: n, K: k}
		sum := 0.0
		for i := 0; i <= k; i++ {
			sum += q.PiK(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMMNKStableEvenOverloaded(t *testing.T) {
	// Finite systems have a steady state at any offered load.
	q := MMNK{Lambda: 100, Mu: 1, N: 4, K: 10}
	b := q.BlockingProbability()
	if b < 0.9 {
		t.Errorf("blocking %v at 25x overload, want near 1", b)
	}
	if thr := q.Throughput(); thr > float64(q.N)*q.Mu*1.001 {
		t.Errorf("throughput %v exceeds service capacity %v", thr, float64(q.N)*q.Mu)
	}
	if l := q.MeanInSystem(); l > float64(q.K) {
		t.Errorf("E[L] = %v exceeds capacity K=%d", l, q.K)
	}
}

func TestMMNKReducesToMMNAsKGrows(t *testing.T) {
	inf := MMN{Lambda: 7, Mu: 1, N: 10}
	fin := MMNK{Lambda: 7, Mu: 1, N: 10, K: 500}
	if b := fin.BlockingProbability(); b > 1e-9 {
		t.Errorf("blocking %v with huge K, want ~0", b)
	}
	if math.Abs(fin.MeanWait()-inf.MeanWait()) > 1e-6 {
		t.Errorf("E[W] finite %v vs infinite %v", fin.MeanWait(), inf.MeanWait())
	}
	for k := 0; k <= 20; k++ {
		if math.Abs(fin.PiK(k)-inf.PiK(k)) > 1e-9 {
			t.Errorf("pi%d differs: %v vs %v", k, fin.PiK(k), inf.PiK(k))
		}
	}
}

func TestMMNNMatchesErlangB(t *testing.T) {
	// A loss system (K=N) is exactly Erlang-B.
	for _, lam := range []float64{1, 5, 9, 15} {
		q := MMNK{Lambda: lam, Mu: 1, N: 10, K: 10}
		want := q.erlangBEquivalent()
		if got := q.BlockingProbability(); math.Abs(got-want) > 1e-12 {
			t.Errorf("lambda=%v: blocking %v vs Erlang-B %v", lam, got, want)
		}
	}
}

func TestErlangBKnownValue(t *testing.T) {
	// Classic: a=2 erlangs, n=3 servers -> B = (8/6)/(1+2+2+8/6) = 4/19.
	if got := ErlangB(2, 3); math.Abs(got-4.0/19) > 1e-12 {
		t.Errorf("ErlangB(2,3) = %v, want 4/19", got)
	}
	if ErlangB(0, 5) != 0 {
		t.Error("ErlangB with zero load != 0")
	}
	if ErlangB(5, 0) != 1 {
		t.Error("ErlangB with zero servers != 1")
	}
}

func TestMaxThroughputUnderBlocking(t *testing.T) {
	q := MMNK{Mu: 1, N: 10, K: 20}
	lam := q.MaxThroughputUnderBlocking(0.01)
	if lam <= 0 {
		t.Fatal("no admissible load")
	}
	at := MMNK{Lambda: lam, Mu: 1, N: 10, K: 20}
	if b := at.BlockingProbability(); b > 0.0101 {
		t.Errorf("blocking %v at the returned bound", b)
	}
	above := MMNK{Lambda: lam * 1.05, Mu: 1, N: 10, K: 20}
	if b := above.BlockingProbability(); b <= 0.01 {
		t.Errorf("bound not tight: blocking %v just above it", b)
	}
}

func TestMMNKValidation(t *testing.T) {
	if (MMNK{Lambda: 1, Mu: 1, N: 5, K: 3}).Validate() == nil {
		t.Error("K < N accepted")
	}
	if (MMNK{Lambda: -1, Mu: 1, N: 1, K: 1}).Validate() == nil {
		t.Error("negative lambda accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid blocking bound did not panic")
		}
	}()
	(MMNK{Lambda: 1, Mu: 1, N: 1, K: 1}).MaxThroughputUnderBlocking(0)
}

func TestMMNKMeanResponseAtLeastServiceTime(t *testing.T) {
	f := func(lamRaw uint8) bool {
		lam := 0.1 + float64(lamRaw)/255*15
		q := MMNK{Lambda: lam, Mu: 1, N: 8, K: 24}
		return q.MeanResponse() >= 1/q.Mu-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
