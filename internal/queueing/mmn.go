// Package queueing implements the M/M/N results the deployment controller
// uses as its discriminant function (§IV-A, Eq. 1–5) along with the
// container prewarm sizing rule (Eq. 7) and the monitor sample-period
// bound (Eq. 8).
//
// Model: Poisson arrivals at rate λ, N identical containers each with
// exponential service rate μ, one shared FIFO queue of infinite capacity.
package queueing

import (
	"fmt"
	"math"
)

// MMN describes an M/M/N system.
type MMN struct {
	Lambda float64 // arrival rate λ (queries/second)
	Mu     float64 // per-container service rate μ (queries/second)
	N      int     // number of containers
}

// Validate returns an error when the parameters are not a well-formed
// queueing system.
func (q MMN) Validate() error {
	if q.Lambda < 0 {
		return fmt.Errorf("queueing: negative lambda %v", q.Lambda)
	}
	if q.Mu <= 0 {
		return fmt.Errorf("queueing: non-positive mu %v", q.Mu)
	}
	if q.N <= 0 {
		return fmt.Errorf("queueing: non-positive N %d", q.N)
	}
	return nil
}

// Rho returns the utilisation ρ = λ/(Nμ).
func (q MMN) Rho() float64 { return q.Lambda / (float64(q.N) * q.Mu) }

// Stable reports whether the system has a steady state (ρ < 1).
func (q MMN) Stable() bool { return q.Rho() < 1 }

// Pi0 returns π₀, the steady-state probability of an empty system
// (Eq. 1's normalisation constant). Computed with running products to stay
// stable for large N. It panics if the system parameters are malformed
// (see Validate); validate user-supplied parameters before querying.
func (q MMN) Pi0() float64 {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0
	}
	a := q.Lambda / q.Mu // offered load n·ρ
	sum := 1.0           // k = 0 term
	term := 1.0
	for k := 1; k < q.N; k++ {
		term *= a / float64(k)
		sum += term
	}
	// (a^N / N!) / (1 - rho)
	term *= a / float64(q.N)
	sum += term / (1 - rho)
	return 1 / sum
}

// PiK returns π_k, the steady-state probability of exactly k queries in
// the system (Eq. 1). It panics if k is negative.
func (q MMN) PiK(k int) float64 {
	if k < 0 {
		panic("queueing: negative k")
	}
	pi0 := q.Pi0()
	if pi0 == 0 {
		return 0
	}
	a := q.Lambda / q.Mu
	if k < q.N {
		// (nρ)^k / k! · π₀ via running product.
		term := pi0
		for i := 1; i <= k; i++ {
			term *= a / float64(i)
		}
		return term
	}
	// k >= N: π_N · ρ^(k-N).
	piN := pi0
	for i := 1; i <= q.N; i++ {
		piN *= a / float64(i)
	}
	return piN * math.Pow(q.Rho(), float64(k-q.N))
}

// ErlangC returns the probability an arriving query must wait,
// P{W > 0} = π_N / (1 - ρ) (the complement of Eq. 2).
func (q MMN) ErlangC() float64 {
	rho := q.Rho()
	if rho >= 1 {
		return 1
	}
	return q.PiK(q.N) / (1 - rho)
}

// WaitCDF returns F_W(t) = P{W <= t}, the waiting-time distribution of
// Eq. 4: 1 - π_N/(1-ρ) · e^{-Nμ(1-ρ)t}.
func (q MMN) WaitCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0
	}
	return 1 - q.ErlangC()*math.Exp(-float64(q.N)*q.Mu*(1-rho)*t)
}

// MeanWait returns E[W] = C(N, λ/μ) / (Nμ - λ).
func (q MMN) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.ErlangC() / (float64(q.N)*q.Mu - q.Lambda)
}

// MeanResponse returns E[T] = E[W] + 1/μ.
func (q MMN) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// ResponseQuantile returns the r-quantile of the response time
// T = W + S approximated as the r-quantile of W plus the mean service
// time 1/μ — the decomposition the paper's Eq. 5 uses (T_D - 1/μ budget
// for waiting). It panics if r is outside (0,1).
func (q MMN) ResponseQuantile(r float64) float64 {
	if r <= 0 || r >= 1 {
		panic(fmt.Sprintf("queueing: quantile %v out of (0,1)", r))
	}
	if !q.Stable() {
		return math.Inf(1)
	}
	// Invert F_W(t) = r: if P{W=0} >= r the quantile of W is 0.
	c := q.ErlangC()
	if 1-c >= r {
		return 1 / q.Mu
	}
	// t = -ln((1-r)/C) / (Nμ(1-ρ)).
	t := -math.Log((1-r)/c) / (float64(q.N) * q.Mu * (1 - q.Rho()))
	return t + 1/q.Mu
}

// QoSSatisfied reports whether the r-quantile response time is within the
// target T_D.
func (q MMN) QoSSatisfied(targetTD, r float64) bool {
	return q.ResponseQuantile(r) <= targetTD
}
