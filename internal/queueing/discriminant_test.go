package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"amoeba/internal/units"
)

func TestDiscriminantBisectIsAdmissible(t *testing.T) {
	const mu, n, td, r = 2.0, 20, 1.5, 0.95
	lam := DiscriminantBisect(mu, n, td, r)
	if lam <= 0 || lam.Raw() >= float64(n)*mu {
		t.Fatalf("lambda* = %v out of (0, %v)", lam, float64(n)*mu)
	}
	// Just below the threshold: QoS holds. Just above: it fails.
	below := MMN{Lambda: lam.Raw() * 0.999, Mu: mu, N: n}
	if !below.QoSSatisfied(td, r) {
		t.Errorf("QoS violated just below lambda* (q95=%v)", below.ResponseQuantile(r))
	}
	above := MMN{Lambda: lam.Raw() * 1.01, Mu: mu, N: n}
	if above.Stable() && above.QoSSatisfied(td, r) {
		t.Errorf("QoS still satisfied above lambda* (q95=%v, target %v)",
			above.ResponseQuantile(r), td)
	}
}

func TestDiscriminantBisectGenerousTarget(t *testing.T) {
	// With a huge latency budget nearly the whole capacity is admissible
	// (the threshold approaches Nμ from below as the budget grows).
	lam := DiscriminantBisect(1, 10, 1000, 0.95)
	if math.Abs(lam.Raw()-10) > 0.01 {
		t.Errorf("lambda* = %v, want ~10 (full capacity)", lam)
	}
}

func TestDiscriminantBisectImpossibleTarget(t *testing.T) {
	// Target below the bare service time: nothing is admissible.
	if lam := DiscriminantBisect(1, 10, 0.5, 0.95); lam != 0 {
		t.Errorf("lambda* = %v, want 0", lam)
	}
}

func TestDiscriminantClosedFormAgreesRoughly(t *testing.T) {
	// The closed form evaluates Eq. 5 at the operating point; near the true
	// threshold it should agree with the bisection within ~20%.
	const mu, n, td, r = 2.0, 20, 1.5, 0.95
	lamStar := DiscriminantBisect(mu, n, td, r)
	q := MMN{Lambda: lamStar.Raw(), Mu: mu, N: n}
	cf := DiscriminantClosedForm(q, td, r)
	if cf <= 0 {
		t.Fatalf("closed form returned %v at the true threshold", cf)
	}
	if rel := math.Abs(units.Ratio(cf-lamStar, lamStar)); rel > 0.2 {
		t.Errorf("closed form %v vs bisect %v (rel err %v)", cf, lamStar, rel)
	}
}

func TestDiscriminantMonotoneInMu(t *testing.T) {
	prev := units.QPS(0)
	for _, mu := range []units.ServiceRate{0.8, 1, 1.5, 2, 3} {
		lam := DiscriminantBisect(mu, 10, 2.0, 0.95)
		if lam < prev {
			t.Fatalf("lambda* not monotone in mu: mu=%v gives %v < %v", mu, lam, prev)
		}
		prev = lam
	}
}

func TestDiscriminantBisectProperty(t *testing.T) {
	f := func(muRaw, nRaw, tdRaw uint8) bool {
		mu := 0.5 + float64(muRaw%40)/10
		n := int(nRaw%30) + 1
		td := 0.1 + float64(tdRaw%50)/10
		lam := DiscriminantBisect(units.ServiceRate(mu), n, units.Seconds(td), 0.95)
		if lam < 0 || lam.Raw() > float64(n)*mu+1e-9 {
			return false
		}
		if lam == 0 {
			return true
		}
		q := MMN{Lambda: lam.Raw() * 0.99, Mu: mu, N: n}
		return q.QoSSatisfied(td, 0.95)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinContainers(t *testing.T) {
	// lambda=5, mu=1: need at least 6 containers for stability; the QoS
	// requirement can only push it higher.
	n, err := MinContainers(5, 1, 2.0, 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n < 6 {
		t.Fatalf("MinContainers = %d, below stability bound 6", n)
	}
	q := MMN{Lambda: 5, Mu: 1, N: n}
	if !q.QoSSatisfied(2.0, 0.95) {
		t.Error("MinContainers result does not satisfy QoS")
	}
	if n > 1 {
		q2 := MMN{Lambda: 5, Mu: 1, N: n - 1}
		if q2.Stable() && q2.QoSSatisfied(2.0, 0.95) {
			t.Error("MinContainers not minimal")
		}
	}
}

func TestMinContainersInsufficientCap(t *testing.T) {
	if n, err := MinContainers(100, 1, 0.9, 0.95, 5); err != nil || n != 6 {
		t.Errorf("MinContainers over cap = %d (err %v), want maxN+1 = 6", n, err)
	}
}

func TestPrewarmCountEq7(t *testing.T) {
	cases := []struct {
		load units.QPS
		qos  units.Seconds
		want int
	}{
		{10, 0.5, 5},   // ceil(10*0.5)
		{10.1, 0.5, 6}, // strictly-greater boundary
		{0, 1, 1},      // floor of one container
		{0.3, 1, 1},
		{100, 0.1, 10},
	}
	for _, c := range cases {
		if got := PrewarmCount(c.load, c.qos); got != c.want {
			t.Errorf("PrewarmCount(%v, %v) = %d, want %d", c.load, c.qos, got, c.want)
		}
	}
}

func TestPrewarmCountSatisfiesEq7Inequality(t *testing.T) {
	f := func(loadRaw, qosRaw uint8) bool {
		load := float64(loadRaw) / 4
		qos := 0.05 + float64(qosRaw)/100
		n := PrewarmCount(units.QPS(load), units.Seconds(qos))
		if load <= 0 {
			return n == 1
		}
		// (n-1)/qos < load <= n/qos, allowing the n>=1 floor for tiny loads.
		upper := float64(n) / qos
		lower := float64(n-1) / qos
		return load <= upper+1e-9 && (load > lower-1e-9 || n == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxContainers(t *testing.T) {
	// Memory bound: 256GB platform / 256MB containers = 1000; share bound
	// 1/delta = 20 is smaller.
	if got, err := MaxContainers(0.05, 256*1024, 256); err != nil || got != 20 {
		t.Errorf("MaxContainers = %d (err %v), want 20", got, err)
	}
	// Memory bound binding.
	if got, err := MaxContainers(0.5, 1024, 256); err != nil || got != 2 {
		t.Errorf("MaxContainers = %d (err %v), want 2", got, err)
	}
}

func TestSamplePeriodEq8(t *testing.T) {
	// cold=2s, QoS=0.5s, exec=0.3s, e=0.1 -> T > 1.8/0.45 = 4s.
	got, err := SamplePeriod(2, 0.5, 0.3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Raw()-4) > 1e-9 {
		t.Errorf("SamplePeriod = %v, want 4", got)
	}
	// Cold start absorbed by the budget: floor returned.
	if got, err := SamplePeriod(0.1, 1.0, 0.2, 0.1, 2.5); err != nil || got != 2.5 {
		t.Errorf("SamplePeriod floor = %v (err %v), want 2.5", got, err)
	}
}

func TestPanicsOnInvalidArguments(t *testing.T) {
	// Internally-computed parameters keep their documented panic
	// contracts; see TestErrorsOnInvalidConfig for the user-facing ones.
	cases := map[string]func(){
		"DiscriminantBisect": func() { DiscriminantBisect(0, 1, 1, 0.95) },
		"PrewarmCount":       func() { PrewarmCount(1, 0) },
		"ResponseQuantile":   func() { (MMN{Lambda: 1, Mu: 2, N: 1}).ResponseQuantile(1) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid args did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestErrorsOnInvalidConfig(t *testing.T) {
	// Parameters that arrive from user configuration surface as errors.
	if _, err := MinContainers(1, 1, 1, 0.95, 0); err == nil {
		t.Error("MinContainers with non-positive cap returned nil error")
	}
	if _, err := MaxContainers(0, 100, 10); err == nil {
		t.Error("MaxContainers with zero delta returned nil error")
	}
	if _, err := MaxContainers(0.5, 100, 0); err == nil {
		t.Error("MaxContainers with zero container memory returned nil error")
	}
	if _, err := SamplePeriod(1, 0, 1, 0.1, 1); err == nil {
		t.Error("SamplePeriod with zero QoS target returned nil error")
	}
	if _, err := SamplePeriod(1, 1, 1, 1.5, 1); err == nil {
		t.Error("SamplePeriod with out-of-range allowed error returned nil error")
	}
}
