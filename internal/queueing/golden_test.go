package queueing

import (
	"math"
	"testing"

	"amoeba/internal/units"
)

// The golden tests below pin Eq. 5, 7 and 8 at paper-scale operating
// points (§VII: benchmark service times of 80–150 ms, QoS targets a few
// hundred ms, loads of tens of QPS), so any future change to the typed
// formulas — a dropped .Raw(), a transposed argument, a unit rescale —
// shifts a literal value and fails loudly. The values were produced by
// the audited implementation and cross-checked dimensionally in
// discriminant.go's package comment.

func TestEquationGoldenEq5(t *testing.T) {
	// An 80 ms service (μ = 12.5/s) on 8 containers, loaded at 70 QPS,
	// with a 300 ms p95 target: the closed form admits ~92.3 QPS and the
	// exact bisection ~88.3 QPS — both below the 100 QPS capacity and
	// within the ~20% agreement the controller relies on.
	op := MMN{Lambda: 70, Mu: 12.5, N: 8}
	cf := DiscriminantClosedForm(op, 0.3, 0.95)
	if math.Abs(cf.Raw()-92.3244111533) > 1e-6 {
		t.Errorf("Eq. 5 closed form = %.10f, want 92.3244111533", cf.Raw())
	}
	bi := DiscriminantBisect(12.5, 8, 0.3, 0.95)
	if math.Abs(bi.Raw()-88.298706802) > 1e-6 {
		t.Errorf("Eq. 5 bisection = %.10f, want 88.2987068020", bi.Raw())
	}
}

func TestEquationGoldenMinContainers(t *testing.T) {
	// 100 QPS of a 150 ms service with a 450 ms p95 target: stability
	// alone needs 16 containers (ρ < 1), the QoS tail pushes it to 17.
	n, err := MinContainers(100, units.ServiceRate(1.0/0.15), 0.45, 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Errorf("MinContainers = %d, want 17", n)
	}
}

func TestEquationGoldenEq7(t *testing.T) {
	// Eq. 7 at paper scale: 100 QPS under a 180 ms QoS window keeps
	// ⌈100 × 0.18⌉ = 18 requests in flight (Little's law), so 18
	// containers are prewarmed ahead of a switch.
	if got := PrewarmCount(100, 0.18); got != 18 {
		t.Errorf("Eq. 7 PrewarmCount(100 QPS, 0.18 s) = %d, want 18", got)
	}
	// A QPS×Seconds product mistakenly computed as QPS/Seconds would give
	// ceil(100/0.18) = 556 here; the pin above rules that out.
	if got := PrewarmCount(42, 0.25); got != 11 {
		t.Errorf("Eq. 7 PrewarmCount(42 QPS, 0.25 s) = %d, want 11 (= ceil 10.5)", got)
	}
}

func TestEquationGoldenEq8(t *testing.T) {
	// Eq. 8 at paper scale: a 1.2 s cold start against a 300 ms target
	// and 150 ms execution with 10% allowed error gives
	// (1.2 − 0.3 + 0.15) / (0.9 × 0.3) = 35/9 ≈ 3.889 s.
	got, err := SamplePeriod(1.2, 0.3, 0.15, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Raw()-35.0/9.0) > 1e-12 {
		t.Errorf("Eq. 8 SamplePeriod = %.12f, want %.12f (35/9)", got.Raw(), 35.0/9.0)
	}
	// Swapping coldStart and qosTarget (the two most confusable Seconds
	// arguments) would make the numerator negative and return the floor —
	// a silently different regime. Pin that the floor is NOT hit here.
	if got <= 1 {
		t.Errorf("Eq. 8 returned the floor %v; numerator should be positive", got)
	}
}
