package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"amoeba/internal/sim"
	"amoeba/internal/stats"
)

func TestMM1ReducesToTextbook(t *testing.T) {
	// For N=1 the system is M/M/1: π₀ = 1-ρ, π_k = (1-ρ)ρ^k,
	// E[W] = ρ/(μ-λ).
	q := MMN{Lambda: 0.6, Mu: 1.0, N: 1}
	rho := q.Rho()
	if math.Abs(q.Pi0()-(1-rho)) > 1e-12 {
		t.Errorf("pi0 = %v, want %v", q.Pi0(), 1-rho)
	}
	for k := 0; k <= 5; k++ {
		want := (1 - rho) * math.Pow(rho, float64(k))
		if math.Abs(q.PiK(k)-want) > 1e-12 {
			t.Errorf("pi%d = %v, want %v", k, q.PiK(k), want)
		}
	}
	if math.Abs(q.ErlangC()-rho) > 1e-12 {
		t.Errorf("ErlangC = %v, want rho=%v", q.ErlangC(), rho)
	}
	wantW := rho / (q.Mu - q.Lambda)
	if math.Abs(q.MeanWait()-wantW) > 1e-12 {
		t.Errorf("MeanWait = %v, want %v", q.MeanWait(), wantW)
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic table value: N=2, offered load a=1 (rho=0.5) -> C = 1/3.
	q := MMN{Lambda: 1, Mu: 1, N: 2}
	if math.Abs(q.ErlangC()-1.0/3.0) > 1e-12 {
		t.Errorf("ErlangC = %v, want 1/3", q.ErlangC())
	}
}

func TestPiDistributionSumsToOne(t *testing.T) {
	q := MMN{Lambda: 7, Mu: 1, N: 10}
	sum := 0.0
	for k := 0; k < 500; k++ {
		sum += q.PiK(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum pi_k = %v, want 1", sum)
	}
}

func TestWaitCDFProperties(t *testing.T) {
	q := MMN{Lambda: 8, Mu: 1, N: 10}
	if got := q.WaitCDF(0); math.Abs(got-(1-q.ErlangC())) > 1e-12 {
		t.Errorf("F_W(0) = %v, want P{W=0} = %v", got, 1-q.ErlangC())
	}
	prev := -1.0
	for _, tt := range []float64{0, 0.1, 0.5, 1, 2, 5, 10} {
		f := q.WaitCDF(tt)
		if f < prev {
			t.Fatalf("WaitCDF not monotone at t=%v", tt)
		}
		prev = f
	}
	if f := q.WaitCDF(100); math.Abs(f-1) > 1e-9 {
		t.Errorf("F_W(100) = %v, want ~1", f)
	}
	if q.WaitCDF(-1) != 0 {
		t.Error("F_W(-1) != 0")
	}
}

func TestUnstableSystem(t *testing.T) {
	q := MMN{Lambda: 20, Mu: 1, N: 10}
	if q.Stable() {
		t.Error("rho=2 reported stable")
	}
	if q.Pi0() != 0 {
		t.Errorf("pi0 of unstable system = %v", q.Pi0())
	}
	if !math.IsInf(q.MeanWait(), 1) {
		t.Errorf("MeanWait of unstable system = %v", q.MeanWait())
	}
	if !math.IsInf(q.ResponseQuantile(0.95), 1) {
		t.Error("quantile of unstable system should be +Inf")
	}
}

func TestResponseQuantileMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1, 3, 5, 7, 9, 9.5, 9.9} {
		q := MMN{Lambda: lam, Mu: 1, N: 10}
		v := q.ResponseQuantile(0.95)
		if v < prev {
			t.Fatalf("quantile not monotone in lambda at %v: %v < %v", lam, v, prev)
		}
		prev = v
	}
}

func TestResponseQuantileLowLoadIsServiceTime(t *testing.T) {
	// At very low load P{W=0} > r, so the r-quantile is just 1/mu.
	q := MMN{Lambda: 0.01, Mu: 2, N: 10}
	if got := q.ResponseQuantile(0.95); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("quantile = %v, want 0.5", got)
	}
}

// TestWaitCDFAgainstSimulation cross-validates the analytic waiting-time
// distribution against a discrete-event M/M/N simulation.
func TestWaitCDFAgainstSimulation(t *testing.T) {
	q := MMN{Lambda: 12, Mu: 1, N: 16}
	s := sim.New(99)
	rng := s.RNG()

	busy := 0
	var queue []float64 // arrival times of waiting queries
	waits := stats.NewSample(20000)

	var depart func()
	start := func(arrivedAt float64) {
		busy++
		waits.Add(float64(s.Now()) - arrivedAt)
		s.After(rng.Exp(q.Mu), depart)
	}
	depart = func() {
		busy--
		if len(queue) > 0 {
			next := queue[0]
			queue = queue[1:]
			start(next)
		}
	}
	var arrive func()
	arrive = func() {
		if waits.Len() < 20000 {
			s.After(rng.Exp(q.Lambda), arrive)
		}
		if busy < q.N {
			start(float64(s.Now()))
		} else {
			queue = append(queue, float64(s.Now()))
		}
	}
	s.After(rng.Exp(q.Lambda), arrive)
	s.Run(1e9)

	// Discard warmup.
	vals := waits.Values()
	warm := stats.NewSample(len(vals))
	warm.AddAll(vals[len(vals)/10:])

	for _, tt := range []float64{0.05, 0.2, 0.5, 1.0} {
		analytic := q.WaitCDF(tt)
		empirical := warm.FractionBelow(tt)
		if math.Abs(analytic-empirical) > 0.03 {
			t.Errorf("F_W(%v): analytic %v vs simulated %v", tt, analytic, empirical)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []MMN{
		{Lambda: -1, Mu: 1, N: 1},
		{Lambda: 1, Mu: 0, N: 1},
		{Lambda: 1, Mu: 1, N: 0},
	}
	for _, q := range bad {
		if q.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", q)
		}
	}
	if (MMN{Lambda: 1, Mu: 1, N: 1}).Validate() != nil {
		t.Error("valid system rejected")
	}
}

func TestPiKPropertyNonNegative(t *testing.T) {
	f := func(lamRaw, muRaw uint8, nRaw, kRaw uint8) bool {
		mu := float64(muRaw%20) + 1
		n := int(nRaw%20) + 1
		lam := float64(lamRaw%100) / 101 * mu * float64(n) // keep stable
		q := MMN{Lambda: lam, Mu: mu, N: n}
		p := q.PiK(int(kRaw % 40))
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
