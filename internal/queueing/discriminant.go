package queueing

import (
	"fmt"
	"math"

	"amoeba/internal/units"
)

// The functions in this file are the typed boundary of the queueing
// package: Eq. 5, 7 and 8 take and return units-typed quantities, and
// strip them explicitly (units.*.Raw) only when entering the raw M/M/N
// core below.
//
// Dimensional audit against the paper (pinned by TestEquationGolden*):
//
//	Eq. 5  λ(μ) = Nμ + ln[(1−r)(1−ρ)/π_N]/(T_D − 1/μ)
//	       [N·μ] = QPS; the log term is dimensionless over a Seconds
//	       budget, so the quotient is again a rate. Consistent.
//	Eq. 7  n = ⌈V_u · QoS_t⌉
//	       QPS × Seconds = a dimensionless in-flight count (Little's
//	       law over the QoS window). Consistent; see QPS.InWindow.
//	Eq. 8  T > (cold_start − QoS_t + t_exec) / ((1−e) · QoS_t)
//	       the quotient is a dimensionless count of QoS-target periods;
//	       it reads as seconds only because the heartbeat/probe reference
//	       rate is 1 QPS (§VI: meters probe at 1 QPS), whose implicit
//	       1-second period converts count to time. SamplePeriod keeps the
//	       paper's literal formula and documents the hidden ×1 s.

// DiscriminantClosedForm evaluates the paper's Eq. 5 literally:
//
//	λ(μ) = Nμ + ln[(1-r)(1-ρ)/π_N] / (T_D − 1/μ)
//
// with ρ and π_N computed at the *current* λ (the equation is implicit in
// λ; the paper iterates it with feedback). It returns the admissible
// arrival rate; arrivals at or below it keep the r-quantile latency within
// targetTD. Non-positive waiting budget (T_D <= 1/μ) returns 0: the
// service time alone already exceeds the target. It panics if q is not a
// well-formed M/M/N system; callers pass operating points they computed
// themselves, so that is a bug, not an input error.
func DiscriminantClosedForm(q MMN, targetTD units.Seconds, r units.Fraction) units.QPS {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	mu := units.ServiceRate(q.Mu)
	budget := targetTD - mu.ServiceTime()
	if budget <= 0 {
		return 0
	}
	if !q.Stable() {
		return 0
	}
	piN := q.PiK(q.N)
	if piN == 0 {
		// No queueing mass at all: the full capacity is admissible.
		return mu.Capacity(q.N)
	}
	arg := (1 - r.Raw()) * (1 - q.Rho()) / piN
	if arg <= 0 {
		return 0
	}
	lam := mu.Capacity(q.N) + units.QPS(math.Log(arg)/budget.Raw())
	if lam < 0 {
		return 0
	}
	return lam
}

// DiscriminantBisect returns the maximum arrival rate λ* such that the
// r-quantile response time of M/M/N(λ*, μ, N) stays within targetTD,
// found by bisection over λ in (0, Nμ). This is the authoritative
// threshold used by the controller: unlike the closed form it accounts
// for ρ's dependence on λ exactly. It panics if mu or n is non-positive —
// both are produced by the controller's own prediction pipeline, never
// taken from user input.
func DiscriminantBisect(mu units.ServiceRate, n int, targetTD units.Seconds, r units.Fraction) units.QPS {
	if mu <= 0 || n <= 0 {
		panic(fmt.Sprintf("queueing: invalid mu=%v n=%d", mu, n))
	}
	if targetTD <= mu.ServiceTime() {
		return 0 // bare service time already violates the target
	}
	ok := func(lambda units.QPS) bool {
		q := MMN{Lambda: lambda.Raw(), Mu: mu.Raw(), N: n}
		return q.Stable() && q.QoSSatisfied(targetTD.Raw(), r.Raw())
	}
	lo, hi := units.QPS(0), mu.Capacity(n)
	if ok(units.Scale(hi, 1-1e-9)) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MinContainers returns the smallest container count n such that M/M/n at
// the given λ and μ keeps the r-quantile within targetTD, capped at
// maxN. It returns maxN+1 when even maxN is insufficient, and an error
// when the search bound itself is malformed.
func MinContainers(lambda units.QPS, mu units.ServiceRate, targetTD units.Seconds,
	r units.Fraction, maxN int) (int, error) {

	if maxN <= 0 {
		return 0, fmt.Errorf("queueing: MinContainers with non-positive maxN %d", maxN)
	}
	for n := 1; n <= maxN; n++ {
		q := MMN{Lambda: lambda.Raw(), Mu: mu.Raw(), N: n}
		if q.Stable() && q.QoSSatisfied(targetTD.Raw(), r.Raw()) {
			return n, nil
		}
	}
	return maxN + 1, nil
}

// PrewarmCount implements Eq. 7: the number of prewarmed containers n such
// that (n-1)/QoS_t < V_u <= n/QoS_t, i.e. n = ceil(V_u * QoS_t), with a
// floor of 1 so a switch always warms at least one container. The
// load·target product is the dimensionless count of requests in flight
// over one QoS window (Little's law), not a time or a rate. It panics
// if qosTarget is non-positive; the target comes from a validated
// workload.Profile, so the engine's decision loop need not thread an
// error through every tick.
func PrewarmCount(load units.QPS, qosTarget units.Seconds) int {
	if qosTarget <= 0 {
		panic("queueing: PrewarmCount with non-positive QoS target")
	}
	if load <= 0 {
		return 1
	}
	n := int(math.Ceil(load.InWindow(qosTarget)))
	if n < 1 {
		n = 1
	}
	return n
}

// MaxContainers implements the paper's resource cap
// n_max = min(1/δ, M₀/M₁): the share bound (at most a fraction δ of the
// pool per tenant, expressed as its reciprocal) and the memory bound
// (platform memory M₀ over per-container memory M₁). Both δ and the
// memory sizes come straight from user configuration, so malformed
// values are reported as an error.
func MaxContainers(delta units.Fraction, platformMem, containerMem units.MegaBytes) (int, error) {
	if delta <= 0 || delta > 1 {
		return 0, fmt.Errorf("queueing: delta %v out of (0,1]", delta)
	}
	if containerMem <= 0 {
		return 0, fmt.Errorf("queueing: non-positive container memory %v", containerMem)
	}
	shareBound := 1 / delta.Raw()
	memBound := units.Ratio(platformMem, containerMem)
	n := int(math.Min(shareBound, memBound))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// SamplePeriod implements Eq. 8: the minimum monitor sample period T that
// prevents a single accidental cold start from misleading the controller:
//
//	T > (cold_start − QoS_t + t_exec) / ((1−e) · QoS_t)
//
// where e is the allowed error fraction. The returned value is the bound
// itself (callers should sample no more often). Dimensionally the
// quotient is a pure count of QoS-target periods; it converts to seconds
// through the heartbeat stream's 1 QPS reference rate (one sample per
// second, §VI), which the paper leaves implicit — the audit found no
// numeric error, only that hidden ×1 s factor, so the literal formula is
// kept. When the numerator is non-positive a cold start cannot cause a
// violation, and the floor minPeriod is returned. The QoS target and
// allowed error are scenario configuration, so malformed values are
// reported as an error.
func SamplePeriod(coldStart, qosTarget, execTime units.Seconds,
	allowedError units.Fraction, minPeriod units.Seconds) (units.Seconds, error) {

	if qosTarget <= 0 {
		return 0, fmt.Errorf("queueing: SamplePeriod with non-positive QoS target %v", qosTarget)
	}
	if allowedError <= 0 || allowedError >= 1 {
		return 0, fmt.Errorf("queueing: allowed error %v out of (0,1)", allowedError)
	}
	num := coldStart - qosTarget + execTime
	if num <= 0 {
		return minPeriod, nil
	}
	periods := units.Ratio(num, units.Scale(qosTarget, 1-allowedError.Raw()))
	t := units.Seconds(periods) // × the implicit 1 s heartbeat period
	return units.Max(t, minPeriod), nil
}
