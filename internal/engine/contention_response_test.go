package engine

import (
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/contention"
	"amoeba/internal/controller"
	"amoeba/internal/iaas"
	"amoeba/internal/meters"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/surfaces"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// TestSwitchOutOnContentionSpike is the paper's core claim in miniature:
// "there is not a fixed load at which to switch" (§II-D). The service's
// own load never changes; only the ambient contention does — and the
// engine must still retreat to IaaS when the pool becomes hostile, then
// return once it clears.
func TestSwitchOutOnContentionSpike(t *testing.T) {
	r := newRig(t, 11, func(c *Config) { c.MinDwell = 30 })
	gen := arrival.New(r.sim, trace.Constant{QPS: 6}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()

	// Crush the pool's CPU from t=600 to t=1500: pressure ~0.95 makes the
	// flat test curves report heavy contention and the surfaces predict a
	// μ too small for even 6 QPS under the tight float QoS.
	cap := serverless.DefaultConfig().Node.Capacity()
	spike := resources.Vector{CPU: 0.95 * cap.CPU}
	r.sim.At(600, func() { r.pool.InjectDemand(spike) })
	r.sim.At(1500, func() { r.pool.InjectDemand(spike.Scale(-1)) })

	r.sim.Run(2400)

	var sawOut, sawReturn bool
	for _, sw := range r.eng.Timeline.Switches {
		if sw.To == metrics.BackendIaaS && sw.At > 600 && sw.At < 1500 {
			sawOut = true
		}
		if sawOut && sw.To == metrics.BackendServerless && sw.At > 1500 {
			sawReturn = true
		}
	}
	if !sawOut {
		t.Fatalf("no retreat to IaaS during the contention spike; switches: %+v",
			r.eng.Timeline.Switches)
	}
	if !sawReturn {
		t.Errorf("no return to serverless after the spike cleared; switches: %+v",
			r.eng.Timeline.Switches)
	}
}

// TestSafetyVetoBlocksSwitchIn: a switch-in whose added demand would push
// the pool past the safety bound must be vetoed and counted, leaving the
// service on IaaS (§III: switching must not break co-located services).
// The service here is contention-INsensitive (flat surfaces) — its own
// QoS would be fine on the pool — but demand-heavy, so the veto is the
// only thing standing between it and the co-tenants.
func TestSafetyVetoBlocksSwitchIn(t *testing.T) {
	s := sim.New(12)
	slCfg := serverless.DefaultConfig()
	pool := serverless.New(s, slCfg)
	vms := iaas.New(s, iaas.DefaultConfig())
	mon := monitor.New(s, pool, modelCurves(pool), monitor.DefaultConfig())
	mon.Start()

	prof := workload.Float()
	prof.Name = "bulky"
	prof.Demand.CPU = 8 // a heavy parallel kernel per query
	prof.Sensitivity = contention.Sensitivity{}

	var eng *Engine
	pool.Register(prof, func(rec metrics.QueryRecord) { eng.OnServerlessComplete(rec) })
	vms.Deploy(prof, func(rec metrics.QueryRecord) { eng.OnIaaSComplete(rec) })

	// Flat (slope 0) surfaces: the pool never hurts this service.
	set := &surfaces.Set{Service: prof.Name}
	for r := 0; r < 3; r++ {
		set.Surfaces[r] = &surfaces.Surface{
			Service: prof.Name, Resource: r,
			Pressures: []float64{0, 1},
			Loads:     []float64{1, prof.PeakQPS},
			Lat: [][]float64{
				{prof.ExecTime, prof.ExecTime},
				{prof.ExecTime, prof.ExecTime},
			},
		}
	}
	pred, err := controller.NewPredictor(prof, set, pool.NMax(prof.Name), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(controller.DefaultConfig(), pred)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(slCfg.Node.Capacity())
	cfg.SamplePeriod = 10
	eng = New(s, pool, vms, prof, ctrl, mon, cfg)
	eng.Start()

	// Ambient CPU at 0.60: harmless alone, but this service's own demand
	// (15 QPS × 0.12 s × 8 cores ≈ 14.4 cores ≈ 0.36) lands the post-
	// switch pressure at ~0.96, over the 0.90 bound.
	cap := slCfg.Node.Capacity()
	pool.InjectDemand(resources.Vector{CPU: 0.60 * cap.CPU})

	gen := arrival.New(s, trace.Constant{QPS: 15}, func(sim.Time) { eng.HandleQuery() })
	gen.Start()
	s.Run(900)

	if eng.Mode() != metrics.BackendIaaS {
		t.Fatalf("switched into an almost-saturated pool (mode %v)", eng.Mode())
	}
	if eng.BlockedSwitches() == 0 {
		t.Error("no blocked switch-ins recorded despite the veto pressure")
	}
}

// modelCurves builds meter curves that exactly match the pool's ground
// truth, so the monitor's estimate is unbiased (profiling does the same
// thing empirically).
func modelCurves(pool *serverless.Platform) [3]*meters.Curve {
	model := pool.Model()
	var out [3]*meters.Curve
	for _, mt := range meters.All() {
		grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
		lats := make([]float64, len(grid))
		for i, pr := range grid {
			var cp contention.Pressure
			switch mt.Index {
			case 0:
				cp.CPU = pr
			case 1:
				cp.IO = pr
			case 2:
				cp.Net = pr
			}
			slow := model.Slowdown(cp, mt.Profile.Sensitivity)
			lats[i] = mt.Profile.ExecTime*slow + mt.Profile.Overheads.Total()
		}
		out[mt.Index] = &meters.Curve{Meter: mt, Pressures: grid, Latencies: lats}
	}
	return out
}
