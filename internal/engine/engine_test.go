package engine

import (
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/controller"
	"amoeba/internal/iaas"
	"amoeba/internal/meters"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/surfaces"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// rig wires a minimal engine with synthetic curves/surfaces so tests can
// drive it without the profiling step.
type rig struct {
	sim  *sim.Simulator
	pool *serverless.Platform
	vms  *iaas.Platform
	mon  *monitor.Monitor
	ctrl *controller.Controller
	eng  *Engine
}

func flatCurves() [3]*meters.Curve {
	var out [3]*meters.Curve
	for _, m := range meters.All() {
		base := m.Profile.ExecTime + m.Profile.Overheads.Total()
		out[m.Index] = &meters.Curve{
			Meter:     m,
			Pressures: []float64{0, 0.5, 1.0},
			Latencies: []float64{base, base * 1.2, base * 1.6},
		}
	}
	return out
}

func flatSet(prof workload.Profile) *surfaces.Set {
	set := &surfaces.Set{Service: prof.Name}
	grid := []float64{0, 0.5, 1.0}
	loads := []float64{1, prof.PeakQPS}
	// Steep enough that near-saturation pressure pushes the body past a
	// tight QoS budget (the spike-response test depends on it).
	const slope = 0.8
	for r := 0; r < 3; r++ {
		lat := make([][]float64, len(grid))
		for i, p := range grid {
			lat[i] = []float64{prof.ExecTime * (1 + slope*p), prof.ExecTime * (1 + slope*p)}
		}
		set.Surfaces[r] = &surfaces.Surface{Service: prof.Name, Resource: r, Pressures: grid, Loads: loads, Lat: lat}
	}
	return set
}

func newRig(t *testing.T, seed uint64, mutate func(*Config)) *rig {
	t.Helper()
	s := sim.New(seed)
	slCfg := serverless.DefaultConfig()
	pool := serverless.New(s, slCfg)
	vms := iaas.New(s, iaas.DefaultConfig())
	mon := monitor.New(s, pool, flatCurves(), monitor.DefaultConfig())
	mon.Start()

	prof := workload.Float()
	r := &rig{sim: s, pool: pool, vms: vms, mon: mon}
	pool.Register(prof, func(rec metrics.QueryRecord) { r.eng.OnServerlessComplete(rec) })
	vms.Deploy(prof, func(rec metrics.QueryRecord) { r.eng.OnIaaSComplete(rec) })

	pred, err := controller.NewPredictor(prof, flatSet(prof), pool.NMax(prof.Name), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	r.ctrl, err = controller.New(controller.DefaultConfig(), pred)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(slCfg.Node.Capacity())
	cfg.SamplePeriod = 10
	if mutate != nil {
		mutate(&cfg)
	}
	r.eng = New(s, pool, vms, prof, r.ctrl, mon, cfg)
	r.eng.Start()
	return r
}

func TestRoutesToIaaSInitially(t *testing.T) {
	r := newRig(t, 1, nil)
	r.sim.At(1, func() { r.eng.HandleQuery() })
	r.sim.Run(30)
	if r.eng.Collector.BackendCount(metrics.BackendIaaS) != 1 {
		t.Error("query not routed to IaaS in initial mode")
	}
}

func TestSwitchInPrewarmsBeforeFlipping(t *testing.T) {
	r := newRig(t, 2, nil)
	gen := arrival.New(r.sim, trace.Constant{QPS: 4}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()
	r.sim.Run(600)
	if r.eng.Mode() != metrics.BackendServerless {
		t.Fatalf("engine never switched to serverless at low load (mode %v)", r.eng.Mode())
	}
	if r.eng.Timeline.SwitchCount(metrics.BackendServerless) == 0 {
		t.Fatal("switch not recorded on timeline")
	}
	// Post-switch queries must not cold start (prewarm absorbed them).
	// Some IaaS records drain through; inspect the serverless violation
	// share instead: with prewarm, no cold start means p95 stays tight.
	if vf := r.eng.Collector.ViolationFraction(); vf > 0.05 {
		t.Errorf("violation fraction %v after prewarmned switch", vf)
	}
	// IaaS side released after the drain.
	if alloc := r.vms.AllocFor("float"); !alloc.IsZero() {
		t.Errorf("IaaS allocation %v after switch to serverless", alloc)
	}
}

func TestNoPrewarmVariantColdStarts(t *testing.T) {
	cold := func(prewarm bool, seed uint64) float64 {
		r := newRig(t, seed, func(c *Config) { c.Prewarm = prewarm })
		gen := arrival.New(r.sim, trace.Constant{QPS: 4}, func(sim.Time) { r.eng.HandleQuery() })
		gen.Start()
		r.sim.Run(600)
		if r.eng.Mode() != metrics.BackendServerless {
			t.Fatalf("never switched (prewarm=%v)", prewarm)
		}
		return r.eng.Collector.ViolationFraction()
	}
	with := cold(true, 3)
	without := cold(false, 3)
	if without <= with {
		t.Errorf("NoP violations %v not above prewarm violations %v", without, with)
	}
}

func TestSwitchBackToIaaSOnLoadRise(t *testing.T) {
	r := newRig(t, 4, func(c *Config) { c.MinDwell = 30 })
	// Low load first, then a surge beyond the admissible load.
	gen := arrival.New(r.sim, trace.Step{Before: 4, After: 60, At: 600}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()
	r.sim.Run(1400)
	if r.eng.Timeline.SwitchCount(metrics.BackendServerless) == 0 {
		t.Fatal("never switched in")
	}
	if r.eng.Timeline.SwitchCount(metrics.BackendIaaS) == 0 {
		t.Fatal("never switched back out on the surge")
	}
	if r.eng.Mode() != metrics.BackendIaaS {
		t.Errorf("mode %v after surge, want iaas", r.eng.Mode())
	}
	// Serverless containers released after the drain.
	if n := r.pool.Containers("float"); n != 0 {
		t.Errorf("%d serverless containers linger after switch-out", n)
	}
}

func TestShadowQueriesFlowDuringIaaSMode(t *testing.T) {
	r := newRig(t, 5, func(c *Config) {
		c.ShadowFraction = 0.2
		c.MinDwell = 1e9 // pin to IaaS: isolate the shadow path
	})
	// Keep the controller in IaaS by setting a load above the margin:
	// feed a high constant load.
	gen := arrival.New(r.sim, trace.Constant{QPS: 50}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()
	r.sim.Run(120)
	if r.eng.shadowComplete == 0 {
		t.Error("no shadow queries completed during IaaS mode")
	}
	// Shadow queries never pollute the user-facing collector.
	total := r.eng.Collector.BackendCount(metrics.BackendServerless)
	if total != 0 {
		t.Errorf("%d serverless records in the user collector while IaaS-pinned", total)
	}
	// Shadow rate is capped: at most ShadowMaxQPS × horizon.
	if float64(r.eng.shadowComplete) > 1.0*120*1.2 {
		t.Errorf("shadow count %d exceeds the cap", r.eng.shadowComplete)
	}
}

func TestMinDwellPreventsFlapping(t *testing.T) {
	r := newRig(t, 6, func(c *Config) { c.MinDwell = 3600 })
	gen := arrival.New(r.sim, trace.Constant{QPS: 4}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()
	r.sim.Run(1200)
	switches := len(r.eng.Timeline.Switches)
	if switches > 1 {
		t.Errorf("%d switches within one dwell window", switches)
	}
}

func TestConfigValidation(t *testing.T) {
	cap := serverless.DefaultConfig().Node.Capacity()
	good := DefaultConfig(cap)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.ShadowFraction = 0.9
	if bad.Validate() == nil {
		t.Error("huge shadow fraction accepted")
	}
	bad = good
	bad.SamplePeriod = 0
	if bad.Validate() == nil {
		t.Error("zero sample period accepted")
	}
	bad = good
	bad.Capacity.CPU = 0
	if bad.Validate() == nil {
		t.Error("missing capacity accepted")
	}
}

func TestTimelineSnapshotsAccumulate(t *testing.T) {
	r := newRig(t, 7, nil)
	gen := arrival.New(r.sim, trace.Constant{QPS: 2}, func(sim.Time) { r.eng.HandleQuery() })
	gen.Start()
	r.sim.Run(200)
	if len(r.eng.Timeline.Snapshots) < 15 {
		t.Errorf("only %d snapshots over 200s at 10s period", len(r.eng.Timeline.Snapshots))
	}
	for _, s := range r.eng.Timeline.Snapshots {
		if s.LoadQPS < 0 {
			t.Errorf("negative load in snapshot: %+v", s)
		}
	}
}
