// Package engine implements the hybrid execution engine (§V): per
// service, it routes queries to the active backend, carries out the
// switch protocol — prewarm containers (Eq. 7), wait for the
// acknowledgement, flip the route, drain and release the old backend —
// and feeds the controller and the monitor with load observations and
// heartbeat packages.
//
// While a service is IaaS-deployed, the engine mirrors a small sample of
// its queries to the serverless platform as *shadow* queries (the paper's
// step 1: "Amoeba also routes queries of S_a to the serverless platform,
// and collects the ... resource consumption"). Shadow latencies never
// reach the user-visible statistics; they exist to keep the weight
// calibration fed before any real switch happens.
package engine

import (
	"fmt"

	"amoeba/internal/controller"
	"amoeba/internal/iaas"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Config tunes the engine.
type Config struct {
	// SamplePeriod is the heartbeat/decision cadence (bounded below by
	// Eq. 8; core computes it).
	SamplePeriod units.Seconds
	// ShadowFraction of IaaS-mode queries is mirrored to serverless.
	//
	//amoeba:range [0,0.5]
	ShadowFraction units.Fraction
	// ShadowMaxQPS caps the mirrored load.
	ShadowMaxQPS units.QPS
	// Prewarm enables the container prewarm module; disabling it
	// reproduces Amoeba-NoP (§VII-D).
	Prewarm bool
	// PrewarmHeadroom adds containers beyond Eq. 7's n "for burst
	// invocations" (§V-A).
	PrewarmHeadroom int
	// DrainPoll is the polling period while draining a backend.
	DrainPoll units.Seconds
	// MinDwell is the minimum time between consecutive switches —
	// hysteresis against mode flapping when the load sits near λ(μ_n).
	MinDwell units.Seconds
	// WarmupPeriods is how many sample periods must pass before the first
	// switch decision: the monitor's meter EWMA and the load estimate
	// need a few samples to converge, and an early decision on a stale
	// pressure estimate can walk into a saturated pool (the paper's step
	// 1 keeps IaaS while data is collected).
	WarmupPeriods int
	// Capacity is the serverless node capacity, used to predict the
	// pressure this service would add after a switch-in.
	Capacity resources.Vector
}

// DefaultConfig returns the evaluation configuration for the given
// serverless node capacity.
func DefaultConfig(capacity resources.Vector) Config {
	return Config{
		SamplePeriod:    10,
		ShadowFraction:  0.05,
		ShadowMaxQPS:    1.0,
		Prewarm:         true,
		PrewarmHeadroom: 1,
		DrainPoll:       0.5,
		MinDwell:        120,
		WarmupPeriods:   3,
		Capacity:        capacity,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SamplePeriod <= 0 || c.DrainPoll <= 0 {
		return fmt.Errorf("engine: non-positive periods")
	}
	if c.ShadowFraction < 0 || c.ShadowFraction > 0.5 {
		return fmt.Errorf("engine: shadow fraction %v out of [0, 0.5]", c.ShadowFraction)
	}
	if c.ShadowMaxQPS < 0 {
		return fmt.Errorf("engine: negative shadow cap")
	}
	if c.PrewarmHeadroom < 0 {
		return fmt.Errorf("engine: negative prewarm headroom")
	}
	if c.MinDwell < 0 {
		return fmt.Errorf("engine: negative min dwell")
	}
	if c.WarmupPeriods < 0 {
		return fmt.Errorf("engine: negative warmup")
	}
	if c.Capacity.CPU <= 0 {
		return fmt.Errorf("engine: missing node capacity")
	}
	return nil
}

// ShadowSuffix names the mirrored twin of a function on the pool.
const ShadowSuffix = "#shadow"

// Engine drives one service.
type Engine struct {
	sim    *sim.Simulator
	pool   *serverless.Platform
	vms    *iaas.Platform
	cfg    Config
	prof   workload.Profile
	ctrl   *controller.Controller
	mon    *monitor.Monitor
	rng    *sim.RNG
	bus    *obs.Bus
	tracer *obs.Tracer

	Collector *metrics.Collector
	Timeline  *metrics.Timeline
	// Windowed tracks the violation rate in 60 s windows: cold-start
	// storms after a switch show up as single hot windows (Fig. 16's
	// time-resolved view).
	Windowed *metrics.WindowedViolations

	mode       metrics.Backend
	switching  bool
	lastSwitch float64
	// retryH is the open retry phase span while the controller's wish to
	// switch is being held by dwell hysteresis — the causal record of
	// "this decision kept being re-made until the dwell expired".
	retryH obs.SpanHandle

	arrivals       int     // since last tick
	ticks          int     // sample periods elapsed
	shadowSent     float64 // shadow tokens spent this period (count)
	execSum        float64 // warm serverless body time since last tick
	execN          int
	execLoadSum    float64 // load estimate attached to exec samples
	switchBlocked  int
	shadowComplete int
}

// New wires an engine for one service. The service must already be
// registered on the pool and deployed on the IaaS platform by the caller
// (core does this); the engine registers only the shadow twin.
// It panics if the config fails validation.
func New(s *sim.Simulator, pool *serverless.Platform, vms *iaas.Platform,
	prof workload.Profile, ctrl *controller.Controller, mon *monitor.Monitor, cfg Config) *Engine {

	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		sim: s, pool: pool, vms: vms, cfg: cfg, prof: prof,
		ctrl: ctrl, mon: mon,
		rng:       s.RNG().Split(),
		Collector: metrics.NewCollector(prof.Name, prof.QoSTarget),
		Timeline:  &metrics.Timeline{},
		Windowed:  metrics.NewWindowedViolations(60, prof.QoSTarget),
		mode:      metrics.BackendIaaS,
	}
	if cfg.ShadowFraction > 0 {
		shadow := prof
		shadow.Name = prof.Name + ShadowSuffix
		pool.Register(shadow, func(r metrics.QueryRecord) {
			e.shadowComplete++
			e.observeServerlessBody(r)
		}, serverless.WithNMax(4))
	}
	return e
}

// SetBus attaches the telemetry bus; the engine emits one DecisionEvent
// per decision period and one SwitchSpan per mode transition. A nil bus
// (the default) keeps emission sites on their zero-cost path.
func (e *Engine) SetBus(b *obs.Bus) { e.bus = b }

// SetTracer attaches the causal tracer; decision events gain trace
// coordinates, switch spans link back to the decision that caused them,
// and dwell-held decisions open a retry phase span. A nil tracer (the
// default) keeps every site on its zero-cost path.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// OnServerlessComplete must be passed as the pool completion callback for
// the primary function registration.
func (e *Engine) OnServerlessComplete(r metrics.QueryRecord) {
	e.Collector.Observe(r)
	e.Windowed.Observe(float64(e.sim.Now()), r)
	e.observeServerlessBody(r)
}

// OnIaaSComplete must be passed as the IaaS completion callback.
func (e *Engine) OnIaaSComplete(r metrics.QueryRecord) {
	e.Collector.Observe(r)
	e.Windowed.Observe(float64(e.sim.Now()), r)
}

func (e *Engine) observeServerlessBody(r metrics.QueryRecord) {
	if r.Breakdown.ColdStart > 0 {
		return // cold starts say nothing about contention (Eq. 8's worry)
	}
	e.execSum += r.Breakdown.Exec
	e.execN++
}

// Start begins the periodic sample/decide loop.
func (e *Engine) Start() {
	e.sim.Every(e.cfg.SamplePeriod.Raw(), e.tick)
}

// HandleQuery routes one arriving query. It panics if the routing mode
// is outside the Backend enum — a query silently dropped by a corrupted
// mode would skew every latency figure downstream.
func (e *Engine) HandleQuery() {
	e.arrivals++
	switch e.mode {
	case metrics.BackendIaaS:
		e.vms.Invoke(e.prof.Name)
		e.maybeShadow()
	case metrics.BackendServerless:
		e.pool.Invoke(e.prof.Name)
	default:
		panic(fmt.Sprintf("engine: invalid routing mode %v", e.mode))
	}
}

func (e *Engine) maybeShadow() {
	if e.cfg.ShadowFraction <= 0 {
		return
	}
	budget := e.cfg.ShadowMaxQPS.InWindow(e.cfg.SamplePeriod)
	if e.shadowSent >= budget {
		return
	}
	if e.rng.Float64() < e.cfg.ShadowFraction.Raw() {
		e.shadowSent++
		e.pool.Invoke(e.prof.Name + ShadowSuffix)
	}
}

// Mode returns the current routing mode.
func (e *Engine) Mode() metrics.Backend { return e.mode }

// StreamingP95 returns the collector's running P² estimate of the
// service's 95%-ile latency. Unlike Collector.P95 it is O(1) to
// maintain and read, so it is safe to poll every sample period.
func (e *Engine) StreamingP95() float64 { return e.Collector.StreamingP95() }

// Controller exposes the service's deployment controller.
func (e *Engine) Controller() *controller.Controller { return e.ctrl }

// Switching reports whether a transition is in flight.
func (e *Engine) Switching() bool { return e.switching }

// BlockedSwitches counts switch-ins vetoed by the co-tenant safety check.
func (e *Engine) BlockedSwitches() int { return e.switchBlocked }

// tick is one sample period: heartbeat to the monitor, load to the
// controller, then a decision.
func (e *Engine) tick() {
	now := units.Seconds(e.sim.Now())
	qps := units.QPS(float64(e.arrivals) / e.cfg.SamplePeriod.Raw())
	e.arrivals = 0
	e.shadowSent = 0
	e.ctrl.ObserveLoad(qps)

	ambient := e.ambientPressure()

	// Heartbeat: observed body slowdown vs surface-predicted features. A
	// couple of samples say nothing (the body time is log-normal with
	// CV up to 0.25); demand at least 3 before reporting, or the monitor
	// would calibrate on noise.
	if e.execN >= 3 {
		// Both the features and the target are normalised against the
		// same load-dependent baseline, so the regression learns the
		// *ambient* contention effect, not the service's own-load one.
		base := e.ctrl.Predictor().BaselineBody(e.ctrl.Load())
		observed := (e.execSum / float64(e.execN)) / base.Raw()
		feat := e.ctrl.Predictor().Features(ambient, e.ctrl.Load())
		e.mon.Heartbeat(e.prof.Name, feat, observed)
		e.execSum, e.execN = 0, 0
	}

	e.Timeline.RecordSnapshot(metrics.Snapshot{
		At: now.Raw(), Mode: e.mode, LoadQPS: e.ctrl.Load().Raw(), Alloc: e.currentAlloc(),
	})

	e.ticks++
	if e.ticks <= e.cfg.WarmupPeriods {
		return // estimates not trustworthy yet; stay on IaaS (step 1)
	}
	if e.switching {
		return // let the in-flight transition finish first
	}
	post := ambient
	for i, own := range e.ownPressure() {
		post[i] += own
	}
	w := e.mon.WeightsFor(e.prof.Name)
	d := e.ctrl.Decide(now, w, ambient, post)
	if d.Blocked {
		e.switchBlocked++
	}
	dwellOK := now-units.Seconds(e.lastSwitch) >= e.cfg.MinDwell || e.lastSwitch == 0
	if e.bus.Active() {
		verdict, reason := d.Verdict, d.Reason
		if d.Target != e.mode && !dwellOK {
			// The controller wants a switch but the engine's hysteresis
			// holds it — audit the suppression, not the wish.
			verdict = controller.VerdictDwellHold
			reason = fmt.Sprintf("%s held: %.0fs since last switch < min dwell %.0fs",
				d.Verdict, (now - units.Seconds(e.lastSwitch)).Raw(), e.cfg.MinDwell.Raw())
		}
		e.bus.Emit(&obs.DecisionEvent{
			At:             now,
			Trace:          d.Trace,
			Span:           d.Span,
			MeterSpan:      e.mon.LastMeterSpan(),
			Service:        e.prof.Name,
			Mode:           e.mode.String(),
			Target:         d.Target.String(),
			LoadQPS:        d.LoadQPS,
			AdmissibleQPS:  d.AdmissibleQPS,
			Mu:             d.Mu,
			NMax:           e.ctrl.Predictor().NMax,
			Pressure:       ambient,
			PostPressure:   post,
			Weights:        w.W,
			Intercept:      w.Intercept,
			WeightsLearned: w.Learned,
			Blocked:        d.Blocked,
			Verdict:        string(verdict),
			Reason:         reason,
		})
	}
	// Retry phase span: opened when the controller first wishes to switch
	// but the dwell holds it, closed (and emitted) when the wish either
	// proceeds or subsides. Its cause edge points at the decision span
	// that opened it.
	if d.Target != e.mode && !dwellOK {
		if !e.retryH.Open() {
			e.retryH = e.tracer.Begin(now, d.Trace, 0, d.Span, obs.PhaseRetry, e.prof.Name, e.mode.String())
		}
	} else if e.retryH.Open() {
		e.tracer.End(now, e.retryH)
		e.retryH = obs.SpanHandle{}
	}
	if d.Target != e.mode && dwellOK {
		e.startSwitch(d.Target, d.LoadQPS, d.Trace, d.Span)
	}
}

// ambientPressure is the monitor's estimate with this service's own
// serverless contribution removed. The latency surfaces are profiled with
// the service *running at V_u* on top of an injected ambient pressure, so
// feeding them the raw estimate while the service itself is serverless
// would double-count its own demand — and make the controller oscillate:
// switch in, see its own pressure, switch out.
func (e *Engine) ambientPressure() [3]float64 {
	p := e.mon.Pressure()
	if e.mode != metrics.BackendServerless {
		return p
	}
	own := e.ownPressure()
	for i := range p {
		p[i] -= own[i]
		if p[i] < 0 {
			p[i] = 0
		}
	}
	return p
}

// ownPressure estimates the pressure this service's serverless demand adds
// at the current load (Little's law: concurrency = load × busy time).
func (e *Engine) ownPressure() [3]float64 {
	conc := e.ctrl.Load().InWindow(units.Seconds(e.prof.ExecTime + e.prof.Overheads.Total()))
	d := e.prof.Demand.Scale(conc)
	return [3]float64{
		d.CPU / e.cfg.Capacity.CPU,
		d.DiskMBs / e.cfg.Capacity.DiskMBs,
		d.NetMbs / e.cfg.Capacity.NetMbs,
	}
}

func (e *Engine) currentAlloc() resources.Vector {
	alloc := e.vms.AllocFor(e.prof.Name)
	alloc = alloc.Add(e.pool.AllocFor(e.prof.Name))
	if e.cfg.ShadowFraction > 0 {
		alloc = alloc.Add(e.pool.AllocFor(e.prof.Name + ShadowSuffix))
	}
	return alloc
}

// startSwitch runs the §V-B protocol towards the target backend. It
// panics on a target outside the Backend enum: the controller only ever
// decides between the two real deployments. dTrace/dSpan are the
// deciding DecisionEvent's trace coordinates (zero when untraced); the
// switch span joins that trace and registers itself as the causal
// displacer of the service's queries until the drain completes.
func (e *Engine) startSwitch(target metrics.Backend, load units.QPS, dTrace obs.TraceID, dSpan obs.SpanID) {
	e.switching = true
	e.lastSwitch = float64(e.sim.Now())
	// The span is tracked per switch and carried through the protocol's
	// callbacks — a field would be clobbered if the next switch began
	// while the previous drain was still in flight. nil when unobserved.
	var sp *obs.SwitchSpan
	if e.bus.Active() {
		sp = &obs.SwitchSpan{
			Trace:    dTrace,
			Span:     e.tracer.NextSpan(),
			Decision: dSpan,
			Service:  e.prof.Name,
			From:     e.mode.String(),
			To:       target.String(),
			Start:    units.Seconds(e.sim.Now()),
			LoadQPS:  load,
		}
		e.tracer.SetCause(e.prof.Name, sp.Span)
	}
	switch target {
	case metrics.BackendServerless:
		// S_pw: prewarm per Eq. 7 plus headroom, flip on acknowledgement.
		flip := func() {
			e.mode = metrics.BackendServerless
			e.ctrl.SetMode(target)
			e.switching = false
			e.Timeline.RecordSwitch(float64(e.sim.Now()), target, load.Raw())
			// The IaaS side drains its in-flight queries, then releases
			// the VMs (S_sd). The drain is a phase span parented to the
			// switch span: [flip, stop acknowledgement].
			var onStopped func()
			if sp != nil {
				sp.FlipAt = units.Seconds(e.sim.Now())
				sp.PrewarmS = sp.FlipAt - sp.Start
				drainH := e.tracer.Begin(sp.FlipAt, sp.Trace, sp.Span, 0,
					obs.PhaseDrain, e.prof.Name, metrics.BackendIaaS.String())
				onStopped = func() {
					e.tracer.End(units.Seconds(e.sim.Now()), drainH)
					e.closeSpan(sp, false)
				}
			}
			e.vms.Stop(e.prof.Name, onStopped)
		}
		if e.cfg.Prewarm {
			n := queueing.PrewarmCount(load, units.Seconds(e.prof.QoSTarget)) + e.cfg.PrewarmHeadroom
			started := e.pool.Prewarm(e.prof.Name, n, flip)
			if sp != nil {
				sp.Prewarmed = started
			}
		} else {
			flip() // Amoeba-NoP: route immediately, cold starts and all
		}
	case metrics.BackendIaaS:
		// Boot the VM group; queries keep flowing to serverless until the
		// acknowledgement arrives.
		e.vms.Start(e.prof.Name, func() {
			e.mode = metrics.BackendIaaS
			e.ctrl.SetMode(target)
			e.switching = false
			e.Timeline.RecordSwitch(float64(e.sim.Now()), target, load.Raw())
			var drainH obs.SpanHandle
			if sp != nil {
				sp.FlipAt = units.Seconds(e.sim.Now())
				sp.PrewarmS = sp.FlipAt - sp.Start
				drainH = e.tracer.Begin(sp.FlipAt, sp.Trace, sp.Span, 0,
					obs.PhaseDrain, e.prof.Name, metrics.BackendServerless.String())
			}
			e.drainServerless(sp, drainH)
		})
	default:
		panic(fmt.Sprintf("engine: switch to invalid backend %v", target))
	}
}

// closeSpan stamps the release instant on a tracked switch span, emits
// it, and unregisters it as the service's displacing cause. sp is nil
// when the switch began unobserved.
func (e *Engine) closeSpan(sp *obs.SwitchSpan, aborted bool) {
	if sp == nil {
		return
	}
	e.tracer.ClearCause(e.prof.Name, sp.Span)
	now := units.Seconds(e.sim.Now())
	sp.At, sp.End = now, now
	sp.DrainS = now - sp.FlipAt
	sp.Aborted = aborted
	e.bus.Emit(sp)
}

// drainServerless releases the service's warm containers once its
// in-flight activations finish (S_sd for the serverless side). sp is the
// switch span being tracked (nil when unobserved); drainH is its open
// drain phase span (inert when untraced).
func (e *Engine) drainServerless(sp *obs.SwitchSpan, drainH obs.SpanHandle) {
	var poll func()
	poll = func() {
		if e.mode != metrics.BackendIaaS {
			// Switched back meanwhile; keep the containers.
			e.tracer.End(units.Seconds(e.sim.Now()), drainH)
			e.closeSpan(sp, true)
			return
		}
		if e.pool.Inflight(e.prof.Name) == 0 {
			e.pool.ReleaseIdle(e.prof.Name)
			e.tracer.End(units.Seconds(e.sim.Now()), drainH)
			e.closeSpan(sp, false)
			return
		}
		e.sim.After(e.cfg.DrainPoll.Raw(), poll)
	}
	poll()
}
