// Package metrics defines the observation types every platform emits and
// the collectors the experiments aggregate them with: per-query latency
// records with a full breakdown (Fig. 4), QoS accounting against the
// 95%-ile target (Fig. 10, Fig. 16), deploy-mode switch timelines
// (Fig. 12), and resource-usage timelines (Fig. 13).
package metrics

import (
	"fmt"

	"amoeba/internal/resources"
	"amoeba/internal/stats"
)

// Backend identifies which deployment served a query. The set is
// closed: switches over Backend must name both members (String keeps an
// explicit out-of-range rendering for values decoded from external
// input).
//
//amoeba:enum
type Backend int

const (
	BackendIaaS Backend = iota
	BackendServerless
)

func (b Backend) String() string {
	switch b {
	case BackendIaaS:
		return "iaas"
	case BackendServerless:
		return "serverless"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Breakdown decomposes one query's end-to-end latency, in seconds.
// IaaS-served queries only use Queue and Exec (plus a small RPC cost in
// Processing).
type Breakdown struct {
	Queue      float64 // waiting for a free container / worker slot
	ColdStart  float64 // container cold start (zero on the warm path)
	Processing float64 // auth, authorization, scheduling
	CodeLoad   float64 // function code loading
	Exec       float64 // function body execution (includes contention slowdown)
	Post       float64 // result posting
}

// Total returns the end-to-end latency.
func (b Breakdown) Total() float64 {
	return b.Queue + b.ColdStart + b.Processing + b.CodeLoad + b.Exec + b.Post
}

// QueryRecord is one completed query.
type QueryRecord struct {
	Service   string
	Backend   Backend
	ArrivedAt float64
	Breakdown Breakdown
}

// Latency returns the query's end-to-end latency.
func (r QueryRecord) Latency() float64 { return r.Breakdown.Total() }

// Collector accumulates per-service latency statistics and QoS accounting.
type Collector struct {
	Service   string
	QoSTarget float64

	latencies  *stats.Sample
	normalized *stats.Sample // latency / QoSTarget, Fig. 10's x-axis
	streamP95  *stats.P2Quantile
	violations int
	byBackend  map[Backend]int
	breakdown  Breakdown // summed, for Fig. 4 means
}

// NewCollector returns a collector for one service with the given QoS
// target (seconds). It panics if the target is non-positive.
func NewCollector(service string, qosTarget float64) *Collector {
	if qosTarget <= 0 {
		panic(fmt.Sprintf("metrics: non-positive QoS target %v", qosTarget))
	}
	return &Collector{
		Service:    service,
		QoSTarget:  qosTarget,
		latencies:  stats.NewSample(4096),
		normalized: stats.NewSample(4096),
		streamP95:  stats.NewP2Quantile(0.95),
		byBackend:  make(map[Backend]int),
	}
}

// Observe records one completed query.
func (c *Collector) Observe(r QueryRecord) {
	l := r.Latency()
	c.latencies.Add(l)
	c.normalized.Add(l / c.QoSTarget)
	c.streamP95.Add(l)
	if l > c.QoSTarget {
		c.violations++
	}
	c.byBackend[r.Backend]++
	b := r.Breakdown
	c.breakdown.Queue += b.Queue
	c.breakdown.ColdStart += b.ColdStart
	c.breakdown.Processing += b.Processing
	c.breakdown.CodeLoad += b.CodeLoad
	c.breakdown.Exec += b.Exec
	c.breakdown.Post += b.Post
}

// Count returns the number of observed queries.
func (c *Collector) Count() int { return c.latencies.Len() }

// P95 returns the exact 95%-ile latency — the paper's QoS metric. Exact
// quantiles keep the full sample; figures (Fig. 10 CDFs) depend on that.
func (c *Collector) P95() float64 { return c.latencies.P95() }

// StreamingP95 returns the P² estimate of the 95%-ile, maintained in
// O(1) per observation. Monitors that poll the p95 while a simulation is
// running use this so the hot path never sorts; the divergence from the
// exact quantile is bounded by TestStreamingP95TracksExact.
func (c *Collector) StreamingP95() float64 { return c.streamP95.Value() }

// QoSMet reports whether the 95%-ile latency is within the target.
func (c *Collector) QoSMet() bool { return c.P95() <= c.QoSTarget }

// ViolationFraction returns the fraction of individual queries over the
// target (Fig. 16's metric).
func (c *Collector) ViolationFraction() float64 {
	if c.Count() == 0 {
		return 0
	}
	return float64(c.violations) / float64(c.Count())
}

// Latencies exposes the raw latency sample.
func (c *Collector) Latencies() *stats.Sample { return c.latencies }

// NormalizedCDF returns the CDF of latency/QoSTarget at n points
// (Fig. 10).
func (c *Collector) NormalizedCDF(n int) (xs, fs []float64) { return c.normalized.CDF(n) }

// BackendCount returns how many queries the given backend served.
func (c *Collector) BackendCount(b Backend) int { return c.byBackend[b] }

// MeanBreakdown returns the average per-query latency anatomy (Fig. 4).
func (c *Collector) MeanBreakdown() Breakdown {
	n := float64(c.Count())
	if n == 0 {
		return Breakdown{}
	}
	b := c.breakdown
	return Breakdown{
		Queue: b.Queue / n, ColdStart: b.ColdStart / n, Processing: b.Processing / n,
		CodeLoad: b.CodeLoad / n, Exec: b.Exec / n, Post: b.Post / n,
	}
}

// SwitchEvent is one deploy-mode transition (Fig. 12's stars).
type SwitchEvent struct {
	At      float64
	To      Backend
	LoadQPS float64 // the load estimate at the moment of the decision
}

// Timeline records mode transitions and periodic usage/load snapshots for
// one service.
type Timeline struct {
	Switches  []SwitchEvent
	Snapshots []Snapshot
}

// Snapshot is one periodic sample of the service's state.
type Snapshot struct {
	At      float64
	Mode    Backend
	LoadQPS float64
	Alloc   resources.Vector // resources allocated to the service right now
}

// RecordSwitch appends a mode transition.
func (t *Timeline) RecordSwitch(at float64, to Backend, load float64) {
	t.Switches = append(t.Switches, SwitchEvent{At: at, To: to, LoadQPS: load})
}

// RecordSnapshot appends a periodic sample.
func (t *Timeline) RecordSnapshot(s Snapshot) {
	t.Snapshots = append(t.Snapshots, s)
}

// SwitchCount returns the number of transitions to the given backend.
func (t *Timeline) SwitchCount(to Backend) int {
	n := 0
	for _, s := range t.Switches {
		if s.To == to {
			n++
		}
	}
	return n
}
