package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func record(latency float64) QueryRecord {
	return QueryRecord{Service: "svc", Breakdown: Breakdown{Exec: latency}}
}

// TestStreamingP95TracksExact bounds the divergence between the
// collector's P² streaming p95 and the exact sample quantile on
// latency-shaped (log-normal) data. The bound is what the engine relies
// on when it polls StreamingP95 instead of sorting the full sample.
func TestStreamingP95TracksExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCollector("svc", 1.0)
	for i := 0; i < 50000; i++ {
		// Log-normal body times: median 100ms, sigma 0.5 — the shape the
		// workload profiles use.
		l := 0.1 * math.Exp(0.5*rng.NormFloat64())
		c.Observe(record(l))
	}
	exact := c.P95()
	stream := c.StreamingP95()
	if math.IsNaN(stream) {
		t.Fatal("StreamingP95 returned NaN after 50000 observations")
	}
	rel := math.Abs(stream-exact) / exact
	if rel > 0.05 {
		t.Errorf("streaming p95 %v diverges from exact %v by %.2f%% (want <= 5%%)",
			stream, exact, rel*100)
	}
}

// TestStreamingP95SmallSample pins the exact fallback below five
// observations.
func TestStreamingP95SmallSample(t *testing.T) {
	c := NewCollector("svc", 1.0)
	if !math.IsNaN(c.StreamingP95()) {
		t.Errorf("StreamingP95 on empty collector = %v, want NaN", c.StreamingP95())
	}
	c.Observe(record(0.2))
	c.Observe(record(0.1))
	if got := c.StreamingP95(); got != 0.2 {
		t.Errorf("StreamingP95 with 2 observations = %v, want 0.2", got)
	}
	// The fallback is nearest-rank, so it brackets the interpolated
	// exact quantile but need not equal it; it must stay within the
	// observed range.
	if got := c.StreamingP95(); got < 0.1 || got > 0.2 {
		t.Errorf("StreamingP95 %v outside observed range [0.1, 0.2]", got)
	}
}

// TestWindowP95PerWindow checks that each closed window carries its own
// p95 — the estimator resets at window boundaries instead of bleeding
// one window's tail into the next.
func TestWindowP95PerWindow(t *testing.T) {
	w := NewWindowedViolations(10, 1.0)
	// Window [0,10): constant 0.5s latencies.
	for i := 0; i < 20; i++ {
		w.Observe(float64(i)/2, record(0.5))
	}
	// Window [10,20): constant 2.0s latencies.
	for i := 0; i < 20; i++ {
		w.Observe(10+float64(i)/2, record(2.0))
	}
	ws := w.Windows(20)
	if len(ws) != 2 {
		t.Fatalf("closed %d windows, want 2", len(ws))
	}
	if ws[0].P95 != 0.5 {
		t.Errorf("window 0 p95 = %v, want 0.5", ws[0].P95)
	}
	if ws[1].P95 != 2.0 {
		t.Errorf("window 1 p95 = %v, want 2.0 (estimator not reset?)", ws[1].P95)
	}
}

// TestWindowP95EmptyWindow pins the zero p95 on query-free windows.
func TestWindowP95EmptyWindow(t *testing.T) {
	w := NewWindowedViolations(5, 1.0)
	w.Observe(1, record(3.0))
	// Nothing between t=5 and t=25.
	w.Observe(26, record(0.4))
	ws := w.Windows(30)
	if len(ws) != 6 {
		t.Fatalf("closed %d windows, want 6", len(ws))
	}
	if ws[0].P95 != 3.0 {
		t.Errorf("window 0 p95 = %v, want 3.0", ws[0].P95)
	}
	for i := 1; i < 5; i++ {
		if ws[i].Queries != 0 || ws[i].P95 != 0 {
			t.Errorf("empty window %d = %+v, want zero queries and zero p95", i, ws[i])
		}
	}
	if ws[5].P95 != 0.4 {
		t.Errorf("window 5 p95 = %v, want 0.4", ws[5].P95)
	}
}
