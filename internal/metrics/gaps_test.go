package metrics

import "testing"

func TestBackendStringOutOfRange(t *testing.T) {
	if got := Backend(7).String(); got != "Backend(7)" {
		t.Errorf("Backend(7).String() = %q", got)
	}
	if got := Backend(-1).String(); got != "Backend(-1)" {
		t.Errorf("Backend(-1).String() = %q", got)
	}
}

func TestSwitchCountEmptyTimeline(t *testing.T) {
	var tl Timeline
	if tl.SwitchCount(BackendIaaS) != 0 || tl.SwitchCount(BackendServerless) != 0 {
		t.Error("empty timeline has non-zero switch counts")
	}
}

func TestSwitchCountOneSidedTimeline(t *testing.T) {
	var tl Timeline
	tl.RecordSwitch(10, BackendServerless, 5)
	tl.RecordSwitch(20, BackendServerless, 6)
	tl.RecordSwitch(30, BackendServerless, 7)
	if got := tl.SwitchCount(BackendServerless); got != 3 {
		t.Errorf("SwitchCount(serverless) = %d, want 3", got)
	}
	if got := tl.SwitchCount(BackendIaaS); got != 0 {
		t.Errorf("SwitchCount(iaas) = %d, want 0", got)
	}
}

// TestWindowedViolationsExactBoundary pins the half-open window
// convention: an observation at exactly start+window belongs to the NEXT
// window, and finalising at exactly a boundary closes the window ending
// there.
func TestWindowedViolationsExactBoundary(t *testing.T) {
	w := NewWindowedViolations(10, 1.0)
	w.Observe(0, rec("s", BackendIaaS, Breakdown{Exec: 0.5}))  // [0,10)
	w.Observe(10, rec("s", BackendIaaS, Breakdown{Exec: 2.0})) // [10,20), violating

	ws := w.Windows(10)
	if len(ws) != 1 {
		t.Fatalf("Windows(10) closed %d windows, want 1", len(ws))
	}
	if ws[0].Start != 0 || ws[0].Queries != 1 || ws[0].Violations != 0 {
		t.Errorf("window [0,10) = %+v", ws[0])
	}

	ws = w.Windows(20)
	if len(ws) != 2 {
		t.Fatalf("Windows(20) closed %d windows, want 2", len(ws))
	}
	if ws[1].Start != 10 || ws[1].Queries != 1 || ws[1].Violations != 1 {
		t.Errorf("window [10,20) = %+v", ws[1])
	}
}

// TestWindowedViolationsLatencyAtTarget pins strict-inequality
// semantics: a query exactly at the QoS target is not a violation.
func TestWindowedViolationsLatencyAtTarget(t *testing.T) {
	w := NewWindowedViolations(10, 1.0)
	w.Observe(1, rec("s", BackendIaaS, Breakdown{Exec: 1.0}))
	ws := w.Windows(10)
	if len(ws) != 1 || ws[0].Violations != 0 {
		t.Errorf("latency == target counted as violation: %+v", ws)
	}
}

func TestWindowedViolationsNoObservations(t *testing.T) {
	w := NewWindowedViolations(10, 1.0)
	ws := w.Windows(35)
	if len(ws) != 3 { // [0,10) [10,20) [20,30)
		t.Fatalf("%d windows, want 3", len(ws))
	}
	for _, win := range ws {
		if win.Queries != 0 || win.Violations != 0 || win.Rate() != 0 {
			t.Errorf("empty stream produced non-empty window %+v", win)
		}
	}
	if worst := w.WorstWindow(35); worst.Rate() != 0 {
		t.Errorf("WorstWindow over empty stream = %+v", worst)
	}
}
