package metrics

import (
	"math"
	"testing"
)

func rec(service string, b Backend, bd Breakdown) QueryRecord {
	return QueryRecord{Service: service, Backend: b, Breakdown: bd}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Queue: 1, ColdStart: 2, Processing: 3, CodeLoad: 4, Exec: 5, Post: 6}
	if b.Total() != 21 {
		t.Errorf("Total = %v, want 21", b.Total())
	}
}

func TestCollectorQoSAccounting(t *testing.T) {
	c := NewCollector("svc", 1.0)
	// 19 fast queries, 1 slow: p95 sits right at the boundary region.
	for i := 0; i < 19; i++ {
		c.Observe(rec("svc", BackendIaaS, Breakdown{Exec: 0.5}))
	}
	c.Observe(rec("svc", BackendServerless, Breakdown{Exec: 2.0}))
	if c.Count() != 20 {
		t.Fatalf("Count = %d", c.Count())
	}
	if got := c.ViolationFraction(); got != 0.05 {
		t.Errorf("ViolationFraction = %v, want 0.05", got)
	}
	if c.BackendCount(BackendIaaS) != 19 || c.BackendCount(BackendServerless) != 1 {
		t.Error("backend counts wrong")
	}
}

func TestCollectorQoSMet(t *testing.T) {
	c := NewCollector("svc", 1.0)
	for i := 0; i < 100; i++ {
		c.Observe(rec("svc", BackendIaaS, Breakdown{Exec: 0.9}))
	}
	if !c.QoSMet() {
		t.Error("QoS should be met with all queries at 0.9")
	}
	for i := 0; i < 20; i++ { // 1/6 of queries slow: p95 now above target
		c.Observe(rec("svc", BackendIaaS, Breakdown{Exec: 3}))
	}
	if c.QoSMet() {
		t.Errorf("QoS met with p95 = %v", c.P95())
	}
}

func TestCollectorMeanBreakdown(t *testing.T) {
	c := NewCollector("svc", 1.0)
	c.Observe(rec("svc", BackendServerless, Breakdown{Processing: 0.1, Exec: 0.4, Post: 0.1}))
	c.Observe(rec("svc", BackendServerless, Breakdown{Processing: 0.3, Exec: 0.6, Post: 0.1}))
	mb := c.MeanBreakdown()
	if math.Abs(mb.Processing-0.2) > 1e-12 || math.Abs(mb.Exec-0.5) > 1e-12 {
		t.Errorf("MeanBreakdown = %+v", mb)
	}
}

func TestCollectorNormalizedCDF(t *testing.T) {
	c := NewCollector("svc", 2.0)
	for i := 1; i <= 100; i++ {
		c.Observe(rec("svc", BackendIaaS, Breakdown{Exec: float64(i) * 0.02}))
	}
	xs, fs := c.NormalizedCDF(10)
	if len(xs) != 10 {
		t.Fatalf("CDF length %d", len(xs))
	}
	// Latencies span 0.02..2.0 → normalized 0.01..1.0.
	if xs[len(xs)-1] > 1.001 {
		t.Errorf("max normalized latency %v, want <= 1", xs[len(xs)-1])
	}
	if fs[len(fs)-1] != 1 {
		t.Errorf("CDF endpoint %v", fs[len(fs)-1])
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector("svc", 1.0)
	if c.ViolationFraction() != 0 {
		t.Error("violation fraction of empty collector not 0")
	}
	if mb := c.MeanBreakdown(); mb != (Breakdown{}) {
		t.Error("mean breakdown of empty collector not zero")
	}
}

func TestCollectorInvalidTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero QoS target did not panic")
		}
	}()
	NewCollector("svc", 0)
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.RecordSwitch(10, BackendServerless, 5)
	tl.RecordSwitch(100, BackendIaaS, 80)
	tl.RecordSwitch(200, BackendServerless, 6)
	if tl.SwitchCount(BackendServerless) != 2 || tl.SwitchCount(BackendIaaS) != 1 {
		t.Error("switch counts wrong")
	}
	tl.RecordSnapshot(Snapshot{At: 50, Mode: BackendServerless, LoadQPS: 7})
	if len(tl.Snapshots) != 1 || tl.Snapshots[0].LoadQPS != 7 {
		t.Error("snapshot not recorded")
	}
}

func TestBackendString(t *testing.T) {
	if BackendIaaS.String() != "iaas" || BackendServerless.String() != "serverless" {
		t.Error("backend names wrong")
	}
}
