package metrics

import (
	"math"
	"testing"
)

func TestWindowedViolationsBuckets(t *testing.T) {
	w := NewWindowedViolations(10, 1.0)
	// Window [0,10): 3 fast, 1 slow.
	for i := 0; i < 3; i++ {
		w.Observe(2, rec("s", BackendServerless, Breakdown{Exec: 0.5}))
	}
	w.Observe(5, rec("s", BackendServerless, Breakdown{Exec: 2.0}))
	// Window [10,20): all slow.
	for i := 0; i < 2; i++ {
		w.Observe(15, rec("s", BackendServerless, Breakdown{Exec: 3.0}))
	}
	ws := w.Windows(25)
	if len(ws) != 2 {
		t.Fatalf("%d windows, want 2", len(ws))
	}
	if ws[0].Queries != 4 || ws[0].Violations != 1 {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if math.Abs(ws[0].Rate()-0.25) > 1e-12 {
		t.Errorf("window 0 rate %v", ws[0].Rate())
	}
	if ws[1].Rate() != 1.0 {
		t.Errorf("window 1 rate %v", ws[1].Rate())
	}
	worst := w.WorstWindow(25)
	if worst.Start != 10 {
		t.Errorf("worst window starts at %v, want 10", worst.Start)
	}
}

func TestWindowedViolationsEmptyGaps(t *testing.T) {
	w := NewWindowedViolations(5, 1.0)
	w.Observe(1, rec("s", BackendIaaS, Breakdown{Exec: 0.1}))
	w.Observe(22, rec("s", BackendIaaS, Breakdown{Exec: 0.1}))
	ws := w.Windows(30)
	if len(ws) != 6 { // [0,5) .. [25,30)
		t.Fatalf("%d windows, want 6", len(ws))
	}
	total := 0
	for _, win := range ws {
		total += win.Queries
		if win.Rate() != 0 {
			t.Errorf("violation in %+v", win)
		}
	}
	if total != 2 {
		t.Errorf("%d queries across windows, want 2", total)
	}
}

func TestWindowedViolationsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid tracker did not panic")
		}
	}()
	NewWindowedViolations(0, 1)
}
