package metrics

import (
	"fmt"

	"amoeba/internal/stats"
)

// WindowedViolations tracks the QoS-violation rate over fixed time
// windows — the time-resolved view behind Fig. 16's aggregate: it shows
// *when* violations happen (cold-start storms right after a switch)
// rather than only how many.
//
// Each window also carries a P² estimate of its p95 latency. One
// estimator is reused across windows (Reset at each boundary), so
// per-window quantile accounting costs no allocation and never stores
// the window's latencies.
type WindowedViolations struct {
	window  float64
	target  float64
	current windowAccum
	closed  []ViolationWindow
	p95     *stats.P2Quantile // reused across windows via Reset
}

type windowAccum struct {
	start      float64
	queries    int
	violations int
}

// ViolationWindow is one closed window's tally.
type ViolationWindow struct {
	Start      float64
	Queries    int
	Violations int
	// P95 is the window's streaming (P²) 95%-ile latency estimate;
	// 0 for a window that saw no queries.
	P95 float64
}

// Rate returns the window's violation fraction (0 for an empty window).
func (w ViolationWindow) Rate() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.Violations) / float64(w.Queries)
}

// NewWindowedViolations creates a tracker with the given window length
// (seconds) and QoS target (seconds). It panics unless both are positive.
func NewWindowedViolations(window, target float64) *WindowedViolations {
	if window <= 0 || target <= 0 {
		panic(fmt.Sprintf("metrics: invalid windowed tracker (window %v, target %v)", window, target))
	}
	return &WindowedViolations{window: window, target: target, p95: stats.NewP2Quantile(0.95)}
}

// Observe records one completed query at virtual time now.
func (t *WindowedViolations) Observe(now float64, r QueryRecord) {
	t.advance(now)
	t.current.queries++
	l := r.Latency()
	t.p95.Add(l)
	if l > t.target {
		t.current.violations++
	}
}

// advance closes windows up to (not including) the one containing now.
func (t *WindowedViolations) advance(now float64) {
	for now >= t.current.start+t.window {
		w := ViolationWindow{
			Start:      t.current.start,
			Queries:    t.current.queries,
			Violations: t.current.violations,
		}
		if w.Queries > 0 {
			w.P95 = t.p95.Value()
			t.p95.Reset()
		}
		t.closed = append(t.closed, w)
		t.current = windowAccum{start: t.current.start + t.window}
	}
}

// Windows finalises up to time now and returns all closed windows.
func (t *WindowedViolations) Windows(now float64) []ViolationWindow {
	t.advance(now)
	out := make([]ViolationWindow, len(t.closed))
	copy(out, t.closed)
	return out
}

// WorstWindow returns the closed window with the highest violation rate
// (zero value if none closed yet).
func (t *WindowedViolations) WorstWindow(now float64) ViolationWindow {
	var worst ViolationWindow
	for _, w := range t.Windows(now) {
		if w.Rate() > worst.Rate() {
			worst = w
		}
	}
	return worst
}
