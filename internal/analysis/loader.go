package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages on demand. Import paths are
// resolved to directories by Resolve; anything Resolve does not claim is
// assumed to be standard library and handed to the compiler's source
// importer (which type-checks GOROOT source — no export data or network
// needed).
type Loader struct {
	Fset    *token.FileSet
	Resolve func(path string) (dir string, ok bool)

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader resolving import paths through resolve.
func NewLoader(resolve func(path string) (dir string, ok bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Load returns the type-checked package for an import path that Resolve
// claims, loading it (and its resolvable dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve package %q", path)
	}
	return l.load(path, dir)
}

// Loaded returns the package for an import path if it has already been
// loaded (directly or as a dependency), without triggering a load. It
// backs Pass.Deps: by the time an analyzer runs, everything its package
// imports is in the cache.
func (l *Loader) Loaded(path string) (*Package, bool) {
	p, ok := l.pkgs[path]
	return p, ok
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// loaded from source through Resolve, everything else falls through to
// the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if d, ok := l.Resolve(path); ok {
		p, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the non-test Go files of a directory, sorted for
// deterministic file-set and diagnostic order.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
