package escapecheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"amoeba/internal/analysis"
)

// repoToolchain reads the toolchain pinned by this repository's go.mod.
func repoToolchain(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := analysis.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := GoModToolchain(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	return pinned
}

// TestParseDiagsGolden pins the parser against recorded -m=2 output for
// the go.mod toolchain series. When the toolchain is repinned, this test
// skips with a warning until a fixture for the new series is recorded —
// wording drift must surface as a fixture to re-record, not as silently
// missed allocations.
func TestParseDiagsGolden(t *testing.T) {
	pinned := repoToolchain(t)
	path := filepath.Join("testdata", "diags_"+Series(pinned)+".txt")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		t.Skipf("WARNING: no golden escape-diagnostic fixture for toolchain %s: record %s from `go build -gcflags=-m=2` output", pinned, path)
	}
	if err != nil {
		t.Fatal(err)
	}
	got := ParseDiags(string(data))
	want := []Diag{
		{File: "pkg/a.go", Line: 27, Col: 37, Message: "int(k) escapes to heap"},
		{File: "pkg/b.go", Line: 8, Col: 2, Message: "moved to heap: buf"},
		{File: "pkg/b.go", Line: 21, Col: 19, Message: `fmt.Sprintf("x %d", ... argument...) escapes to heap`},
		{File: "pkg/c.go", Line: 9, Col: 11, Message: "func literal escapes to heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseDiags mismatch\n got: %v\nwant: %v", got, want)
	}
}

// TestParseDiagsTolerance keeps the parser narrow: unknown wording and
// malformed lines are ignored rather than misparsed.
func TestParseDiagsTolerance(t *testing.T) {
	input := "" +
		"pkg/a.go:1:2: something entirely new happens to heap-like storage\n" + // drifted wording: ignored
		"pkg/a.go:bad:2: x escapes to heap\n" + // malformed line number
		"not-a-go-file.txt:1:2: x escapes to heap\n" +
		"pkg/a.go:3:4:   escapes to heap\n" + // indented body
		"pkg/a.go:5:6: x does not escape\n" +
		"# pkg header\n" +
		"pkg/a.go:7:8: moved to heap: y\n"
	got := ParseDiags(input)
	want := []Diag{{File: "pkg/a.go", Line: 7, Col: 8, Message: "moved to heap: y"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseDiags = %v, want %v", got, want)
	}
}

func TestSeries(t *testing.T) {
	cases := map[string]string{
		"go1.24.0": "go1.24",
		"go1.24":   "go1.24",
		"go1":      "go1",
		"go1.23.7": "go1.23",
	}
	for in, want := range cases {
		if got := Series(in); got != want {
			t.Errorf("Series(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGoModToolchain(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("module scratch\n\ngo 1.22\n\ntoolchain go1.24.0\n")
	if got, err := GoModToolchain(dir); err != nil || got != "go1.24.0" {
		t.Errorf("GoModToolchain = %q, %v; want go1.24.0", got, err)
	}
	write("module scratch\n\ngo 1.22\n")
	if got, err := GoModToolchain(dir); err != nil || got != "go1.22" {
		t.Errorf("GoModToolchain = %q, %v; want go1.22 fallback", got, err)
	}
}

// TestSourceCheck exercises range collection and intersection on a
// synthetic module tree: diagnostics inside noalloc bodies report,
// allowalloc lines suppress (own line and the next), diagnostics in
// unannotated functions and test files do not count.
func TestSourceCheck(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"kernel.go": `package scratch

//amoeba:noalloc
func Hot(v int) any {
	return v
}

func Cold(v int) any {
	return v
}

//amoeba:noalloc
func Guarded(v int) any {
	//amoeba:allowalloc(amortised: boxed once at startup)
	return v
}
`,
		"kernel_test.go": `package scratch

//amoeba:noalloc
func hotTestOnly(v int) any { return v }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src, err := LoadSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Ranges) != 2 {
		t.Fatalf("got %d noalloc ranges, want 2 (test files excluded): %v", len(src.Ranges), src.Ranges)
	}
	diags := []Diag{
		{File: "kernel.go", Line: 5, Col: 9, Message: "v escapes to heap"},  // inside Hot
		{File: "kernel.go", Line: 9, Col: 9, Message: "v escapes to heap"},  // inside Cold: not noalloc
		{File: "kernel.go", Line: 15, Col: 9, Message: "v escapes to heap"}, // inside Guarded, line below allowalloc
		{File: "kernel_test.go", Line: 4, Col: 30, Message: "v escapes to heap"},
	}
	findings, suppressed := src.Check(diags)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(findings) != 1 || findings[0].Func != "Hot" || findings[0].Diag.Line != 5 {
		t.Errorf("findings = %v, want one finding in Hot at line 5", findings)
	}
}

// TestLiveEscapeDiags compiles a scratch module with the pinned
// toolchain and checks the parser against the compiler's real output.
// Skips with a warning when the running toolchain is not the pinned one.
func TestLiveEscapeDiags(t *testing.T) {
	pinned := repoToolchain(t)
	running, ok := RunningMatches(pinned)
	if !ok {
		t.Skipf("WARNING: running toolchain %s is not the pinned %s; live escape wording unverified", running, pinned)
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"main.go": `package main

var sink *int

func box(i int) *int {
	return &i
}

func main() {
	sink = box(42)
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m=2: %v\n%s", err, out)
	}
	for _, d := range ParseDiags(string(out)) {
		if d.File == "main.go" && d.Message == "moved to heap: i" {
			return
		}
	}
	t.Errorf("no 'moved to heap: i' diagnostic parsed from live compiler output:\n%s", out)
}
