package escapecheck

// Toolchain pinning: the escape-analysis wording belongs to one compiler
// release, so the -escapes gate runs only when the running toolchain is
// the one go.mod pins. A mismatch is a skip-with-warning, never a
// silent pass-or-fail on diagnostics the parser was not written for.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// GoModToolchain returns the toolchain version pinned by the go.mod at
// modRoot: the `toolchain` directive when present, else the `go`
// directive with the "go" prefix restored.
func GoModToolchain(modRoot string) (string, error) {
	path := filepath.Join(modRoot, "go.mod")
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	goDirective := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(line, "toolchain "); ok {
			return strings.TrimSpace(v), nil
		}
		if v, ok := strings.CutPrefix(line, "go "); ok {
			goDirective = "go" + strings.TrimSpace(v)
		}
	}
	if goDirective != "" {
		return goDirective, nil
	}
	return "", fmt.Errorf("%s: no toolchain or go directive", path)
}

// Series reduces a toolchain version to its language series:
// "go1.24.0" -> "go1.24". Versions without a minor component are
// returned unchanged.
func Series(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// RunningMatches reports whether the running toolchain belongs to the
// same language series as the pinned version, returning the running
// version for diagnostics either way.
func RunningMatches(pinned string) (running string, ok bool) {
	running = runtime.Version()
	return running, Series(running) == Series(pinned)
}
