// Package escapecheck cross-checks //amoeba:noalloc bodies against the
// Go compiler's own escape analysis. alloccheck (the syntactic half of
// the contract) screens for allocation-inducing constructs it can see in
// the AST; the compiler proves a strict superset — interface boxing
// through generics, map growth, closures capturing by reference, values
// the optimizer decides must live on the heap. This package parses the
// diagnostics of `go build -gcflags=-m=2`, intersects them with the
// source ranges of every noalloc function, and reports compiler-proven
// allocations the syntactic pass missed. //amoeba:allowalloc(reason)
// annotations suppress findings on their line or the line below, exactly
// as they do for alloccheck, and the driver reports the suppressed count
// so the escape inventory stays auditable.
//
// The diagnostic wording is not a stable compiler interface, so the
// parser is deliberately narrow — it recognizes only the two
// heap-allocation forms ("X escapes to heap", "moved to heap: x") and
// ignores everything else -m=2 prints (inlining decisions, parameter
// leaks, flow traces). The cmd/amoeba-vet -escapes driver refuses to run
// when the running toolchain is not the one pinned in go.mod, and the
// golden fixture test is keyed to the pinned version, so wording drift
// surfaces as a skip-with-warning plus a fixture to re-record rather
// than as silently missed allocations.
package escapecheck

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"amoeba/internal/analysis"
)

// A Diag is one heap-allocation diagnostic from the compiler, positioned
// as the compiler prints it (file path relative to the build directory).
type Diag struct {
	File    string
	Line    int
	Col     int
	Message string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Message)
}

// ParseDiags extracts heap-allocation diagnostics from `go build
// -gcflags=-m=2` output. -m=2 prints each escape twice — once as a flow
// trace header ending in a colon, once plain — so exact duplicates
// collapse. Package headers ("# pkg"), indented flow-trace bodies, and
// every non-allocation diagnostic (inlining, leaking params) are
// ignored.
func ParseDiags(output string) []Diag {
	var out []Diag
	seen := make(map[Diag]bool)
	for _, line := range strings.Split(output, "\n") {
		d, ok := parseDiagLine(line)
		if !ok || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// parseDiagLine parses one "file.go:line:col: message" line, reporting
// false for anything that is not a heap-allocation diagnostic.
func parseDiagLine(line string) (Diag, bool) {
	file, rest, ok := strings.Cut(line, ":")
	if !ok || !strings.HasSuffix(file, ".go") {
		return Diag{}, false
	}
	lineno, rest, ok := cutInt(rest)
	if !ok {
		return Diag{}, false
	}
	col, rest, ok := cutInt(rest)
	if !ok {
		return Diag{}, false
	}
	msg, found := strings.CutPrefix(rest, " ")
	if !found || msg == "" {
		return Diag{}, false
	}
	if msg[0] == ' ' || msg[0] == '\t' {
		return Diag{}, false // indented -m=2 flow-trace body, not a diagnostic
	}
	msg = strings.TrimSuffix(msg, ":") // flow-trace header form
	if !isAllocMessage(msg) {
		return Diag{}, false
	}
	// Root-package files print as "./main.go"; Clean aligns them with
	// the module-relative paths LoadSource records.
	return Diag{File: path.Clean(file), Line: lineno, Col: col, Message: msg}, true
}

// isAllocMessage recognizes the compiler's heap-allocation wording. The
// negative form is "X does not escape" (no "to heap"), so the suffix
// check cannot match it.
func isAllocMessage(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// cutInt consumes one ":"-terminated integer field.
func cutInt(s string) (n int, rest string, ok bool) {
	field, rest, found := strings.Cut(s, ":")
	if !found {
		return 0, "", false
	}
	n, err := strconv.Atoi(field)
	if err != nil {
		return 0, "", false
	}
	return n, rest, true
}

// A Range is one //amoeba:noalloc function body, file path relative to
// the module root with forward slashes (how the compiler prints build
// paths).
type Range struct {
	File      string
	Func      string
	StartLine int
	EndLine   int
}

// A Finding is one compiler-proven allocation inside a noalloc body.
type Finding struct {
	Diag Diag
	Func string
}

// Source is the noalloc geometry of one module: the marked body ranges
// and the //amoeba:allowalloc suppression lines of every non-test file.
type Source struct {
	Ranges []Range
	// allows maps file -> covered line -> annotation line for every line
	// an //amoeba:allowalloc annotation covers (its own line and the
	// next, the same rule alloccheck applies). The annotation line is
	// kept so the -stale audit can credit the annotation itself.
	allows map[string]map[int]int
}

// LoadSource parses every non-test .go file under modRoot (skipping
// testdata, vendor, and dot-directories — the compiler never builds
// them) and collects the noalloc ranges and allowalloc lines.
func LoadSource(modRoot string) (*Source, error) {
	src := &Source{allows: make(map[string]map[int]int)}
	fset := token.NewFileSet()
	err := filepath.WalkDir(modRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return err
		}
		return src.loadFile(fset, path, filepath.ToSlash(rel))
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(src.Ranges, func(i, j int) bool {
		a, b := src.Ranges[i], src.Ranges[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.StartLine < b.StartLine
	})
	return src, nil
}

func (s *Source) loadFile(fset *token.FileSet, path, rel string) error {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return err
	}
	for _, fd := range analysis.MarkedFuncs(fset, f, analysis.AnnotNoAlloc) {
		if fd.Body == nil {
			continue
		}
		s.Ranges = append(s.Ranges, Range{
			File:      rel,
			Func:      fd.Name.Name,
			StartLine: fset.Position(fd.Pos()).Line,
			EndLine:   fset.Position(fd.Body.End()).Line,
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := analysis.ParseAllowAlloc(c.Text); !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines := s.allows[rel]
			if lines == nil {
				lines = make(map[int]int)
				s.allows[rel] = lines
			}
			lines[line] = line
			lines[line+1] = line
		}
	}
	return nil
}

// Check intersects compiler diagnostics with the noalloc ranges,
// returning the unsuppressed findings (in diagnostic order) and the
// count of allowalloc-suppressed ones.
func (s *Source) Check(diags []Diag) (findings []Finding, suppressed int) {
	for _, d := range diags {
		fn, ok := s.enclosing(d)
		if !ok {
			continue
		}
		if _, ok := s.allows[d.File][d.Line]; ok {
			suppressed++
			continue
		}
		findings = append(findings, Finding{Diag: d, Func: fn})
	}
	return findings, suppressed
}

// UsedAllows returns the //amoeba:allowalloc annotation positions
// (file -> annotation line -> true) that suppress at least one of diags
// inside a noalloc range — the crediting half of the -stale audit.
func (s *Source) UsedAllows(diags []Diag) map[string]map[int]bool {
	used := make(map[string]map[int]bool)
	for _, d := range diags {
		if _, ok := s.enclosing(d); !ok {
			continue
		}
		annot, ok := s.allows[d.File][d.Line]
		if !ok {
			continue
		}
		lines := used[d.File]
		if lines == nil {
			lines = make(map[int]bool)
			used[d.File] = lines
		}
		lines[annot] = true
	}
	return used
}

func (s *Source) enclosing(d Diag) (string, bool) {
	for _, r := range s.Ranges {
		if r.File == d.File && r.StartLine <= d.Line && d.Line <= r.EndLine {
			return r.Func, true
		}
	}
	return "", false
}
