// Package nodeterminism forbids wall-clock and global-randomness calls in
// simulation code. The whole reproduction rests on bit-for-bit replay: the
// M/M/N discriminant, the PCA-calibrated pressure model, and every figure
// must produce identical numbers across runs and machines, so simulation
// packages must draw time from sim.Clock virtual time and randomness from
// an explicitly seeded sim.RNG. One stray time.Now() or rand.Intn() makes
// runs diverge silently — exactly the calibration-drift failure this
// analyzer exists to catch before it lands.
//
// Binaries (package main, e.g. cmd/ and examples/) may use the wall clock
// for progress reporting; they are exempt. Library code that legitimately
// needs wall time (none today) must carry an //amoeba:allow nodeterminism
// annotation with a reason.
package nodeterminism

import (
	"go/ast"

	"amoeba/internal/analysis"
)

// Analyzer flags nondeterministic time and randomness sources in
// simulation (non-main) packages.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid time.Now, time.Since, and math/rand globals in simulation packages; " +
		"simulations must use sim virtual time and seeded sim.RNG streams",
	Run: run,
}

// forbiddenTime lists the time functions that read or depend on the wall
// clock. Pure constructors/parsers (time.Duration, time.Parse, ...) are
// deterministic and stay allowed.
var forbiddenTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "fires on the wall clock",
	"Tick":      "fires on the wall clock",
	"NewTimer":  "fires on the wall clock",
	"NewTicker": "fires on the wall clock",
	"AfterFunc": "fires on the wall clock",
}

func run(pass *analysis.Pass) error {
	// Binaries may time and report on the wall clock.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name := analysis.PkgFunc(pass.TypesInfo, call)
			switch pkgPath {
			case "time":
				if why, bad := forbiddenTime[name]; bad {
					pass.Reportf(call.Pos(),
						"time.%s %s: simulation code must use sim virtual time", name, why)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(),
					"%s.%s uses global random state: simulation code must draw from a seeded sim.RNG",
					pkgPath, name)
			}
			return true
		})
	}
	return nil
}
