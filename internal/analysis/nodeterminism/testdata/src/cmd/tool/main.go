// Command tool is a mock binary: package main may use the wall clock for
// progress reporting, so nothing here is flagged.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
