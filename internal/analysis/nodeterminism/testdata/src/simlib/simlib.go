// Package simlib is a mock simulation library package: nodeterminism
// findings here must flag every wall-clock and global-rand call site.
package simlib

import (
	"math/rand"
	"time"
)

// Wall reads the wall clock directly.
func Wall() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// Elapsed measures wall time.
func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `time\.Since reads the wall clock`
}

// Nap blocks on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the wall clock`
}

// Draw uses the global math/rand stream.
func Draw() int {
	return rand.Intn(6) // want `math/rand\.Intn uses global random state`
}

// Shuffled uses another global math/rand helper.
func Shuffled() float64 {
	return rand.Float64() // want `math/rand\.Float64 uses global random state`
}

// Allowed demonstrates the annotation escape hatch.
func Allowed() time.Time {
	//amoeba:allow nodeterminism startup banner timing only
	return time.Now()
}

// Pure uses only deterministic time arithmetic and stays legal.
func Pure(d time.Duration) time.Duration {
	return 3*time.Second + d
}
