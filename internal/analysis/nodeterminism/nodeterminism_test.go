package nodeterminism_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/nodeterminism"
)

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterminism.Analyzer, "simlib", "cmd/tool")
}
