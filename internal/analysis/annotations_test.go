package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "annot.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func namedFunc(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func TestFuncMarkedPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fn   string
		want bool
	}{
		{"doc last line", "package p\n\n// F does things.\n//\n//amoeba:noalloc\nfunc F() {}\n", "F", true},
		{"doc only line", "package p\n\n//amoeba:noalloc\nfunc F() {}\n", "F", true},
		{"doc middle line", "package p\n\n// F does things.\n//amoeba:noalloc\n// More prose.\nfunc F() {}\n", "F", true},
		{"marker with trailing note", "package p\n\n//amoeba:noalloc hot ticker body\nfunc F() {}\n", "F", true},
		{"trailing comment on decl line", "package p\n\nfunc F() {} //amoeba:noalloc\n", "F", true},
		{"blank line detaches", "package p\n\n//amoeba:noalloc\n\nfunc F() {}\n", "F", false},
		{"unmarked", "package p\n\n// F does things.\nfunc F() {}\n", "F", false},
		{"marker on previous decl only", "package p\n\n//amoeba:noalloc\nfunc F() {}\n\nfunc G() {}\n", "G", false},
		{"prefix must be exact", "package p\n\n//amoeba:noallocs\nfunc F() {}\n", "F", false},
		{"method receiver", "package p\n\ntype T struct{}\n\n// Push is hot.\n//\n//amoeba:noalloc\nfunc (t *T) Push() {}\n", "Push", true},
		{"build-tag file", "//go:build linux\n\npackage p\n\n// F is hot.\n//\n//amoeba:noalloc\nfunc F() {}\n", "F", true},
		{"directive group above build-tagged func", "package p\n\n//amoeba:noalloc\n//go:nosplit\nfunc F() {}\n", "F", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, f := parseSrc(t, tc.src)
			fd := namedFunc(t, f, tc.fn)
			if got := FuncMarked(fset, f, fd, AnnotNoAlloc); got != tc.want {
				t.Errorf("FuncMarked = %v, want %v\nsrc:\n%s", got, tc.want, tc.src)
			}
		})
	}
}

func TestMarkedFuncs(t *testing.T) {
	src := "package p\n\n//amoeba:noalloc\nfunc A() {}\n\nfunc B() {}\n\n//amoeba:hotpath\nfunc C() {}\n\n//amoeba:noalloc\nfunc D() {}\n"
	fset, f := parseSrc(t, src)
	got := MarkedFuncs(fset, f, AnnotNoAlloc)
	if len(got) != 2 || got[0].Name.Name != "A" || got[1].Name.Name != "D" {
		names := make([]string, len(got))
		for i, fd := range got {
			names[i] = fd.Name.Name
		}
		t.Errorf("MarkedFuncs(noalloc) = %v, want [A D]", names)
	}
	if hp := MarkedFuncs(fset, f, AnnotHotpath); len(hp) != 1 || hp[0].Name.Name != "C" {
		t.Errorf("MarkedFuncs(hotpath) wrong: %d found", len(hp))
	}
}

func TestTypeMarked(t *testing.T) {
	src := `package p

//amoeba:enum
type Kind string

type Mode int //amoeba:enum

// Verdict classifies decisions.
//
//amoeba:enum
type Verdict string

type Plain int

type (
	//amoeba:enum
	Inner int
	Other int
)
`
	fset, f := parseSrc(t, src)
	_ = fset
	want := map[string]bool{"Kind": true, "Mode": true, "Verdict": true, "Plain": false, "Inner": true, "Other": false}
	for _, d := range f.Decls {
		gen, ok := d.(*ast.GenDecl)
		if !ok || gen.Tok != token.TYPE {
			continue
		}
		for _, spec := range gen.Specs {
			ts := spec.(*ast.TypeSpec)
			if got := TypeMarked(gen, ts, AnnotEnum); got != want[ts.Name.Name] {
				t.Errorf("TypeMarked(%s) = %v, want %v", ts.Name.Name, got, want[ts.Name.Name])
			}
		}
	}
}

// TestConcurrencyMarkerPositions proves the shard/shardsafe markers
// resolve through the same attachment rules as the earlier grammar:
// doc-group lines, trailing notes, free-standing groups above the decl,
// build-tagged files, and methods — and that the exact-prefix rule keeps
// //amoeba:shard from matching //amoeba:shardsafe (and vice versa).
func TestConcurrencyMarkerPositions(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		fn     string
		marker string
		want   bool
	}{
		{"shard doc line", "package p\n\n// W is a worker.\n//\n//amoeba:shard\nfunc W() {}\n", "W", AnnotShard, true},
		{"shard trailing note", "package p\n\n//amoeba:shard pool worker, joined in Sweep\nfunc W() {}\n", "W", AnnotShard, true},
		{"shardsafe is not shard", "package p\n\n//amoeba:shardsafe audited latch\nfunc W() {}\n", "W", AnnotShard, false},
		{"shard is not shardsafe", "package p\n\n//amoeba:shard\nfunc W() {}\n", "W", AnnotShardSafe, false},
		{"shardsafe on method", "package p\n\ntype S struct{}\n\n// result is audited.\n//\n//amoeba:shardsafe singleflight latch\nfunc (s *S) result() {}\n", "result", AnnotShardSafe, true},
		{"shard above go directive", "package p\n\n//amoeba:shard\n//go:noinline\nfunc W() {}\n", "W", AnnotShard, true},
		{"shard in build-tag file", "//go:build race\n\npackage p\n\n//amoeba:shard\nfunc W() {}\n", "W", AnnotShard, true},
		{"blank line detaches shard", "package p\n\n//amoeba:shard\n\nfunc W() {}\n", "W", AnnotShard, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, f := parseSrc(t, tc.src)
			fd := namedFunc(t, f, tc.fn)
			if got := FuncMarked(fset, f, fd, tc.marker); got != tc.want {
				t.Errorf("FuncMarked(%s) = %v, want %v\nsrc:\n%s", tc.marker, got, tc.want, tc.src)
			}
		})
	}
}

func TestParseBounded(t *testing.T) {
	cases := []struct {
		text   string
		params []string
		ok     bool
	}{
		{"//amoeba:bounded jobs results", []string{"jobs", "results"}, true},
		{"//amoeba:bounded jobs", []string{"jobs"}, true},
		{"//amoeba:bounded", nil, true},
		{"//amoeba:bounded \t ", nil, true},
		{"//amoeba:boundedjobs", nil, false},
		{"//amoeba:bound jobs", nil, false},
		{"// amoeba:bounded jobs", nil, false},
		{"//amoeba:shard", nil, false},
	}
	for _, tc := range cases {
		params, ok := ParseBounded(tc.text)
		if ok != tc.ok || len(params) != len(tc.params) {
			t.Errorf("ParseBounded(%q) = (%v, %v), want (%v, %v)", tc.text, params, ok, tc.params, tc.ok)
			continue
		}
		for i := range params {
			if params[i] != tc.params[i] {
				t.Errorf("ParseBounded(%q)[%d] = %q, want %q", tc.text, i, params[i], tc.params[i])
			}
		}
	}
}

// TestBoundedParams proves the declaration-level lookup: the marker is
// found in the doc group or a free-standing group directly above, and
// the parameter list comes back in source order.
func TestBoundedParams(t *testing.T) {
	src := `package p

// Worker drains bounded queues.
//
//amoeba:shard
//amoeba:bounded jobs results
func Worker(jobs <-chan int, results chan<- int) {}

func Plain(ch chan int) {}

//amoeba:bounded in
//go:noinline
func Directive(in chan int) {}
`
	fset, f := parseSrc(t, src)
	params, ok := BoundedParams(fset, f, namedFunc(t, f, "Worker"))
	if !ok || len(params) != 2 || params[0] != "jobs" || params[1] != "results" {
		t.Errorf("BoundedParams(Worker) = (%v, %v), want ([jobs results], true)", params, ok)
	}
	if _, ok := BoundedParams(fset, f, namedFunc(t, f, "Plain")); ok {
		t.Error("BoundedParams(Plain) found a marker on an unannotated func")
	}
	params, ok = BoundedParams(fset, f, namedFunc(t, f, "Directive"))
	if !ok || len(params) != 1 || params[0] != "in" {
		t.Errorf("BoundedParams(Directive) = (%v, %v), want ([in], true)", params, ok)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		name   string
		reason string
		ok     bool
	}{
		{"//amoeba:allow paniccheck index verified by caller", "paniccheck", "index verified by caller", true},
		{"//amoeba:allow chancheck", "chancheck", "", true},
		{"//amoeba:allow\tgoroleak tab separated", "goroleak", "tab separated", true},
		{"//amoeba:allow", "", "", false},
		{"//amoeba:allowalloc(amortised growth)", "", "", false},
		{"// amoeba:allow paniccheck spaced marker", "", "", false},
	}
	for _, tc := range cases {
		name, reason, ok := ParseAllow(tc.text)
		if name != tc.name || reason != tc.reason || ok != tc.ok {
			t.Errorf("ParseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.text, name, reason, ok, tc.name, tc.reason, tc.ok)
		}
	}
}

func TestParseAllowAlloc(t *testing.T) {
	cases := []struct {
		text   string
		reason string
		ok     bool
	}{
		{"//amoeba:allowalloc(amortised growth)", "amortised growth", true},
		{"//amoeba:allowalloc( padded reason )", "padded reason", true},
		{"//amoeba:allowalloc()", "", true},
		{"//amoeba:allowalloc", "", true},
		{"//amoeba:allowalloc missing parens", "", true},
		{"//amoeba:allowalloc(nested (parens) kept)", "nested (parens) kept", true},
		{"//amoeba:allow alloccheck reason", "", false},
		{"// amoeba:allowalloc(spaced marker)", "", false},
		{"//amoeba:noalloc", "", false},
	}
	for _, tc := range cases {
		reason, ok := ParseAllowAlloc(tc.text)
		if reason != tc.reason || ok != tc.ok {
			t.Errorf("ParseAllowAlloc(%q) = (%q, %v), want (%q, %v)", tc.text, reason, ok, tc.reason, tc.ok)
		}
	}
}
