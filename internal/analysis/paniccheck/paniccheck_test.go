package paniccheck_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/paniccheck"
)

func TestPanicCheck(t *testing.T) {
	analysistest.Run(t, "testdata", paniccheck.Analyzer, "panicuser", "panicmain")
}
