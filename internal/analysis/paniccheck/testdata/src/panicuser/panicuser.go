// Package panicuser exercises the paniccheck contract: undocumented
// library panics are flagged; documented contracts, annotated invariants,
// and returned errors are not.
package panicuser

import "errors"

// Documented panics if n is negative — the doc comment makes the panic a
// stated contract, so the site is legal.
func Documented(n int) int {
	if n < 0 {
		panic("panicuser: negative n")
	}
	return n
}

// Undocumented doubles n.
func Undocumented(n int) int {
	if n < 0 {
		panic("panicuser: negative n") // want `panic in library code`
	}
	return 2 * n
}

// Annotated halves n; the invariant is suppressed with the ISSUE
// spelling of the annotation.
func Annotated(n int) int {
	if n%2 != 0 {
		//amoeba:allow panic caller guarantees even n
		panic("panicuser: odd n")
	}
	return n / 2
}

// AnnotatedByName suppresses with the analyzer name instead.
func AnnotatedByName(n int) int {
	if n < 0 {
		//amoeba:allow paniccheck fixture invariant
		panic("panicuser: negative n")
	}
	return n
}

// AsError validates and returns an error like library code should.
func AsError(n int) error {
	if n < 0 {
		return errors.New("panicuser: negative n")
	}
	return nil
}

// InClosure panics if the table is empty — the documented contract covers
// panics inside nested function literals too.
func InClosure(xs []int) func() int {
	return func() int {
		if len(xs) == 0 {
			panic("panicuser: empty table")
		}
		return xs[0]
	}
}

// UndocumentedClosure builds an accessor.
func UndocumentedClosure(xs []int) func() int {
	return func() int {
		if len(xs) == 0 {
			panic("panicuser: empty table") // want `panic in library code`
		}
		return xs[0]
	}
}
