package panicuser

// This file mirrors the shapes the slab/index event kernel
// (amoeba/internal/sim) uses, so the contract the real code relies on is
// pinned by the analyzer suite: validation panics in private helpers and
// run loops are legal exactly when the doc comment states the contract.

// slot is a slab entry addressed by int32 index, like the kernel's event.
type slot struct {
	at   float64
	dead bool
}

// kernel owns a slab and an index heap, like sim.Simulator.
type kernel struct {
	slab []slot
	heap []int32
	now  float64
}

// schedule enqueues one slot. It panics if at precedes the clock — a
// stated contract, so the validation panic is legal (the real kernel's
// private schedule helper documents the same way).
func (k *kernel) schedule(at float64) int32 {
	if at < k.now {
		panic("panicuser: scheduling in the past")
	}
	k.slab = append(k.slab, slot{at: at})
	idx := int32(len(k.slab) - 1)
	k.heap = append(k.heap, idx)
	return idx
}

// run drains the heap. It panics if a slot's time is negative — the
// contract covers panics reached through index loads inside the loop.
func (k *kernel) run() {
	for _, idx := range k.heap {
		ev := &k.slab[idx]
		if ev.at < 0 {
			panic("panicuser: negative slot time")
		}
		k.now = ev.at
	}
	k.heap = k.heap[:0]
}

// drainUndocumented has the same loop shape but no stated contract, so
// the validation behind the index load gets flagged.
func (k *kernel) drainUndocumented() {
	for _, idx := range k.heap {
		if k.slab[idx].at < 0 {
			panic("panicuser: negative slot time") // want `panic in library code`
		}
	}
}
