// Command panicmain shows that binaries may panic freely: an aborted run
// is visible to the operator and loses only that run.
package main

func main() {
	panic("binaries may panic")
}
