// Package paniccheck polices panic sites in library code. A reproduction
// pipeline that dies mid-suite loses hours of simulation, so validation
// that can fail on user-provided configuration must surface as returned
// errors; panic is reserved for genuine invariant violations (impossible
// states that indicate a bug in this repository, not in its inputs).
//
// A panic site is accepted when any of the following holds:
//
//   - the package is a binary (package main), where panics abort exactly
//     one run and the operator sees the message;
//   - the enclosing function's doc comment mentions the panic (the Go
//     convention: "It panics if ..."), making it a documented contract;
//   - the site carries an //amoeba:allow panic <reason> (or
//     //amoeba:allow paniccheck <reason>) annotation marking it as a true
//     invariant.
//
// Everything else is flagged: convert it to a returned error, document
// it, or annotate it.
package paniccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer flags undocumented, unannotated panics in library packages.
var Analyzer = &analysis.Analyzer{
	Name: "paniccheck",
	Doc: "panic in library code must be a returned error, a documented panic contract, " +
		"or an annotated invariant (//amoeba:allow panic <reason>)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		var funcs []*ast.FuncDecl // enclosing declarations, innermost last
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcs = append(funcs, n)
				return true
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				if doc := enclosingDoc(funcs, n.Pos()); docMentionsPanic(doc) {
					return true
				}
				// The ISSUE-specified annotation spelling is
				// //amoeba:allow panic; Reportf additionally honours the
				// analyzer's own name.
				if pass.AllowedAt(n.Pos(), "panic") {
					return true
				}
				pass.Reportf(n.Pos(),
					"panic in library code: return an error, document the panic contract "+
						"in the function comment, or annotate //amoeba:allow panic <reason>")
			}
			return true
		})
	}
	return nil
}

// enclosingDoc returns the doc comment of the innermost function
// declaration containing p.
func enclosingDoc(funcs []*ast.FuncDecl, p token.Pos) *ast.CommentGroup {
	for i := len(funcs) - 1; i >= 0; i-- {
		fd := funcs[i]
		if fd.Body != nil && fd.Body.Pos() <= p && p < fd.Body.End() {
			return fd.Doc
		}
	}
	return nil
}

func docMentionsPanic(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(strings.ToLower(doc.Text()), "panic")
}
