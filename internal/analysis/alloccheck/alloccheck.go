// Package alloccheck statically screens //amoeba:noalloc functions for
// allocation-inducing constructs. PR 4's kernel contracts (the event
// slab, the guarded telemetry emit, the arrival closure, the P² reset)
// are asserted at runtime by testing.AllocsPerRun — but a refactor that
// boxes an interface or captures a fresh closure regresses silently
// until the bench job happens to run. This analyzer makes the contract a
// build-time property: every construct the compiler might lower to a
// heap allocation is flagged inside an annotated function.
//
// Flagged constructs:
//
//   - make of a slice, map, or channel, and new of anything
//   - append (backing-array growth; pre-sized amortised growth is the
//     one legitimate case, annotated //amoeba:allowalloc(reason))
//   - &T{...} composite literals (escape to the heap unless proven
//     otherwise, which no local analysis can)
//   - function literals capturing enclosing variables (captured
//     closures allocate when they escape)
//   - interface boxing: a non-pointer-shaped value passed to an
//     interface parameter or converted to an interface type
//   - string concatenation and allocating string conversions
//     (string<->[]byte/[]rune, string(rune))
//   - any call into fmt or log (formatting boxes and builds strings)
//
// Constructs inside the argument list of a builtin panic call are
// exempt: panic paths fire once and abort, they are not steady state.
// Function literals are flagged at the literal (the capture is the
// allocation) and their bodies are not re-scanned — a nested literal is
// a distinct function with its own contract.
//
// What this proves — and does not. alloccheck is a syntactic
// over-approximation of the compiler's escape analysis: it cannot see
// that a non-escaping &T{} stays on the stack, and it cannot see an
// allocation hidden behind a call into another function (the hotpath
// analyzer and the AllocsPerRun assertions cover the transitive half).
// A finding therefore means "justify or restructure", enforced via
// //amoeba:allowalloc(reason), never "the compiler will allocate here".
package alloccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"amoeba/internal/analysis"
)

// Analyzer flags allocation-inducing constructs in functions annotated
// //amoeba:noalloc.
var Analyzer = &analysis.Analyzer{
	Name: "alloccheck",
	Doc: "//amoeba:noalloc functions must not contain allocation-inducing constructs " +
		"(make/new/append, escaping composites, capturing closures, interface boxing, " +
		"string building, fmt/log); annotate deliberate ones //amoeba:allowalloc(reason)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		allowed := allowAllocLines(pass.Fset, f)
		for _, fd := range analysis.MarkedFuncs(pass.Fset, f, analysis.AnnotNoAlloc) {
			if fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, fn: funcName(fd), allowed: allowed}
			c.scan(fd.Body)
		}
	}
	return nil
}

// allowAllocLines maps each line covered by an //amoeba:allowalloc
// annotation (its own line and the next, mirroring //amoeba:allow) to
// the annotation comment's position, so a suppression can be credited
// to the annotation that performed it (the -stale audit's used set).
func allowAllocLines(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	lines := make(map[int]token.Pos)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := analysis.ParseAllowAlloc(c.Text); ok {
				line := fset.Position(c.Pos()).Line
				lines[line] = c.Pos()
				lines[line+1] = c.Pos()
			}
		}
	}
	return lines
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver, e.g. Box[T]
		return recvTypeName(e.X)
	}
	return "?"
}

type checker struct {
	pass    *analysis.Pass
	fn      string
	allowed map[int]token.Pos
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if apos, ok := c.allowed[c.pass.Fset.Position(pos).Line]; ok {
		c.pass.UseAnnotation(apos)
		return
	}
	args = append(args, c.fn)
	c.pass.Reportf(pos, format+" in //amoeba:noalloc function %s: hoist it to setup, "+
		"restructure, or annotate //amoeba:allowalloc(reason)", args...)
}

// scan walks one node of the annotated function's body.
func (c *checker) scan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.FuncLit:
			if v := c.capturedVar(n); v != "" {
				c.report(n.Pos(), "function literal capturing %q may allocate its closure", v)
			}
			return false // a nested literal is a separate function
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isString(n.X) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && c.isString(n.Lhs[0]) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

// checkCall classifies one call expression; it reports findings and
// returns whether Inspect should descend into the children.
func (c *checker) checkCall(call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	// Builtins: make/new/append allocate; panic's arguments are cold.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // panic path: fires once, aborts — not steady state
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				c.report(call.Pos(), "append may grow its backing array")
			}
			return true
		}
	}
	// Conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(call, tv.Type)
		return true
	}
	// Real call: flag fmt/log wholesale, then boxing at the arguments.
	if pkg, _ := analysis.PkgFunc(info, call); pkg == "fmt" || pkg == "log" {
		c.report(call.Pos(), "call into %s formats and boxes", pkg)
		return true
	}
	c.checkBoxing(call)
	return true
}

// checkConversion flags conversions whose result needs fresh backing
// memory or an interface box.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	info := c.pass.TypesInfo
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	tu, su := types.Unalias(target).Underlying(), types.Unalias(src).Underlying()
	if types.IsInterface(tu) {
		if !pointerShaped(su) && !types.IsInterface(su) {
			c.report(call.Pos(), "conversion to interface %s boxes", types.TypeString(target, nil))
		}
		return
	}
	tb, tIsBasic := tu.(*types.Basic)
	sb, sIsBasic := su.(*types.Basic)
	switch {
	case tIsBasic && tb.Info()&types.IsString != 0:
		if _, fromSlice := su.(*types.Slice); fromSlice {
			c.report(call.Pos(), "string conversion copies")
		} else if sIsBasic && sb.Info()&types.IsInteger != 0 {
			c.report(call.Pos(), "string(rune) conversion allocates")
		}
	case isByteOrRuneSlice(tu):
		if sIsBasic && sb.Info()&types.IsString != 0 {
			c.report(call.Pos(), "string conversion copies")
		}
	}
}

// checkBoxing flags non-pointer-shaped arguments passed to interface
// parameters.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isNil(info, arg) {
			continue
		}
		au := types.Unalias(at).Underlying()
		if types.IsInterface(au) || pointerShaped(au) {
			continue
		}
		c.report(arg.Pos(), "argument boxes %s into interface parameter",
			types.TypeString(at, nil))
	}
}

// capturedVar returns the name of one variable the literal captures from
// its enclosing function ("" when it captures nothing heap-worthy).
// Package-level variables are shared, not captured.
func (c *checker) capturedVar(lit *ast.FuncLit) string {
	info, pkgScope := c.pass.TypesInfo, c.pass.Pkg.Scope()
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkgScope || v.Parent().Parent() == types.Universe {
			return true // package-level or universe: shared, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// isByteOrRuneSlice reports whether the underlying type is []byte or
// []rune, the two slice targets of allocating string conversions.
func isByteOrRuneSlice(u types.Type) bool {
	sl, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of the (underlying) type fit in
// one pointer word, so boxing them into an interface needs no heap copy.
func pointerShaped(u types.Type) bool {
	switch u.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := u.(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
