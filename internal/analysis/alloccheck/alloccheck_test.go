package alloccheck_test

import (
	"testing"

	"amoeba/internal/analysis/alloccheck"
	"amoeba/internal/analysis/analysistest"
)

func TestAllocCheck(t *testing.T) {
	analysistest.Run(t, "testdata", alloccheck.Analyzer, "allocuser")
}
