// Package allocuser exercises alloccheck: allocation-inducing constructs
// inside //amoeba:noalloc functions are flagged; unannotated setup code,
// panic arguments, and annotated amortised growth are not.
package allocuser

import "fmt"

var global []int

func sink(v interface{})       { _ = v }
func sinks(vs ...interface{})  { _ = vs }
func take(s string, n int) int { return len(s) + n }

// Ring is a fixed buffer with noalloc hot methods.
type Ring struct {
	buf  [8]int
	n    int
	vals []int
}

// Push stores a value without allocating.
//
//amoeba:noalloc
func (r *Ring) Push(v int) {
	r.buf[r.n&7] = v
	r.n++
}

// Grow appends without justification.
//
//amoeba:noalloc
func (r *Ring) Grow(v int) {
	r.vals = append(r.vals, v) // want `append may grow its backing array in //amoeba:noalloc function Ring\.Grow`
}

// GrowAllowed documents deliberate amortised growth on the line above.
//
//amoeba:noalloc
func (r *Ring) GrowAllowed(v int) {
	//amoeba:allowalloc(amortised backing growth, pre-sized in New)
	r.vals = append(r.vals, v)
}

// GrowAllowedInline documents the growth on the same line.
//
//amoeba:noalloc
func (r *Ring) GrowAllowedInline(v int) {
	r.vals = append(r.vals, v) //amoeba:allowalloc(amortised backing growth)
}

// MakeThings builds containers; all three forms are flagged.
//
//amoeba:noalloc
func MakeThings() {
	m := make(map[int]int) // want `make allocates`
	_ = m
	c := make(chan int) // want `make allocates`
	_ = c
	p := new(Ring) // want `new allocates`
	_ = p
}

// Composite returns an escaping composite literal.
//
//amoeba:noalloc
func Composite() *Ring {
	return &Ring{} // want `&composite literal escapes to the heap`
}

// Closure captures its parameter.
//
//amoeba:noalloc
func Closure(x int) func() int {
	return func() int { return x } // want `function literal capturing "x" may allocate its closure`
}

// ClosureFree references only package-level state: no capture, no alloc.
//
//amoeba:noalloc
func ClosureFree() func() int {
	return func() int { return len(global) }
}

// Box passes values to interface parameters; only the non-pointer-shaped
// argument boxes.
//
//amoeba:noalloc
func Box(r *Ring, v int) {
	sink(v) // want `argument boxes int into interface parameter`
	sink(r)
	sink(nil)
}

// BoxVariadic boxes per element but forwarding a slice is free.
//
//amoeba:noalloc
func BoxVariadic(v int, args []interface{}) {
	sinks(v) // want `argument boxes int into interface parameter`
	sinks(args...)
}

// Convert exercises the allocating conversions.
//
//amoeba:noalloc
func Convert(v int, s string, bs []byte) int {
	_ = interface{}(v)  // want `conversion to interface interface\{\} boxes`
	_ = string(bs)      // want `string conversion copies`
	_ = []byte(s)       // want `string conversion copies`
	_ = string(rune(v)) // want `string\(rune\) conversion allocates`
	return take(s, v)
}

// Concat builds strings both ways.
//
//amoeba:noalloc
func Concat(s string) string {
	t := s + "x" // want `string concatenation allocates`
	t += "y"     // want `string concatenation allocates`
	return t
}

// Format calls into fmt.
//
//amoeba:noalloc
func Format(v int) {
	fmt.Println(v) // want `call into fmt formats and boxes`
}

// Invariant allocates only inside a panic argument: the cold abort path
// is exempt.
//
//amoeba:noalloc
func Invariant(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
}

// Allowed uses the generic analyzer suppression instead of allowalloc.
//
//amoeba:noalloc
func Allowed() *Ring {
	//amoeba:allow alloccheck one-time pool refill measured cold
	return &Ring{}
}

// Setup carries no annotation and may allocate freely.
func Setup() []int {
	return append(global, 1)
}
