//go:build !amoeba_exclude

package allocuser

// Tagged lives in a build-constrained file; the marker still attaches to
// the declaration below the constraint.
//
//amoeba:noalloc
func Tagged() *Ring {
	return &Ring{} // want `&composite literal escapes to the heap`
}
