package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestAllocAnnotationCoverage is the runtime↔static cross-check of the
// noalloc contract: the set of //amoeba:noalloc functions and the union
// of //amoeba:alloctest markers on AllocsPerRun tests must be equal.
//
//   - An annotated function with no alloctest marker means the static
//     contract has no runtime assertion behind it.
//   - A marker naming an unannotated function means an AllocsPerRun
//     test covers a path alloccheck no longer screens — the annotation
//     was removed (or misspelled) without retiring the test.
//   - A test calling testing.AllocsPerRun without any marker is opting
//     out of the inventory, which would let the first gap reopen.
//
// Names are qualified as pkg.Recv.Name for methods (receiver type
// without the star) and pkg.Name for functions, using the package base
// name — unique across this module.
func TestAllocAnnotationCoverage(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()

	annotated := map[string][]string{} // qualified name -> file positions
	tested := map[string][]string{}    // qualified name -> marker positions

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if strings.HasSuffix(path, "_test.go") {
			collectAllocTests(t, fset, file, rel, tested)
		} else {
			collectNoalloc(fset, file, rel, annotated)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) == 0 {
		t.Fatal("no //amoeba:noalloc functions found — the walk is broken")
	}

	for name, positions := range annotated {
		if len(tested[name]) == 0 {
			t.Errorf("%s (%s) is //amoeba:noalloc but no AllocsPerRun test claims it "+
				"with an //amoeba:alloctest marker", name, positions[0])
		}
	}
	for name, positions := range tested {
		if len(annotated[name]) == 0 {
			t.Errorf("%s is listed by an //amoeba:alloctest marker (%s) but no "+
				"//amoeba:noalloc function with that qualified name exists", name, positions[0])
		}
	}
}

// collectNoalloc records the qualified names of the file's
// //amoeba:noalloc functions.
func collectNoalloc(fset *token.FileSet, file *ast.File, rel string, out map[string][]string) {
	for _, decl := range MarkedFuncs(fset, file, AnnotNoAlloc) {
		name := file.Name.Name + "."
		if decl.Recv != nil && len(decl.Recv.List) == 1 {
			name += recvTypeName(decl.Recv.List[0].Type) + "."
		}
		name += decl.Name.Name
		pos := rel + ":" + strconv.Itoa(fset.Position(decl.Pos()).Line)
		out[name] = append(out[name], pos)
	}
}

// collectAllocTests records the names listed by the file's
// //amoeba:alloctest markers and fails the test for any function that
// calls testing.AllocsPerRun without carrying a marker.
func collectAllocTests(t *testing.T, fset *token.FileSet, file *ast.File, rel string, out map[string][]string) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, AnnotAllocTest)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			pos := rel + ":" + strconv.Itoa(fset.Position(c.Pos()).Line)
			names := strings.Fields(rest)
			if len(names) == 0 {
				t.Errorf("%s: //amoeba:alloctest marker lists no function names", pos)
			}
			for _, name := range names {
				out[name] = append(out[name], pos)
			}
		}
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || !callsAllocsPerRun(fd) {
			continue
		}
		if !FuncMarked(fset, file, fd, AnnotAllocTest) {
			t.Errorf("%s: %s calls testing.AllocsPerRun without an //amoeba:alloctest marker "+
				"naming the //amoeba:noalloc functions it exercises",
				rel, fd.Name.Name)
		}
	}
}

// callsAllocsPerRun reports whether the declaration's body contains a
// testing.AllocsPerRun call (syntactically — any AllocsPerRun selector).
func callsAllocsPerRun(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = true
		}
		return !found
	})
	return found
}

// recvTypeName extracts the receiver's type name, stripping pointers,
// parens, and generic instantiations.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return "?"
		}
	}
}

// moduleRoot finds the enclosing module's root directory.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// TestAllocAnnotationInventory prints the contract inventory when -v is
// set — a quick way to see which test vouches for which function.
func TestAllocAnnotationInventory(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("inventory listing only under -v")
	}
	root := moduleRoot(t)
	fset := token.NewFileSet()
	tested := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
			return filepath.SkipDir
		}
		if d.IsDir() || !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		collectAllocTests(t, fset, file, rel, tested)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(tested))
	for name := range tested {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Logf("%-40s %s", name, strings.Join(tested[name], " "))
	}
}
