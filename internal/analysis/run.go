package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleResolver returns a Resolve function mapping import paths inside
// modPath to directories under modRoot.
func ModuleResolver(modRoot, modPath string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modPath {
			return modRoot, true
		}
		if rel, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(modRoot, filepath.FromSlash(rel)), true
		}
		return "", false
	}
}

// ModulePath reads the module path from the go.mod in modRoot.
func ModulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", modRoot)
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns turns go-tool-style package patterns ("./...",
// "./internal/sim", "amoeba/internal/engine") into a sorted list of
// import paths within the module. Directories named testdata, vendor, or
// starting with "." or "_" are skipped, as the go tool does.
func ExpandPatterns(modRoot, modPath string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./...", pat == "...":
			paths, err := walkPackages(modRoot, modPath, modRoot)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := patternDir(modRoot, modPath, base)
			if err != nil {
				return nil, err
			}
			paths, err := walkPackages(modRoot, modPath, dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := patternDir(modRoot, modPath, pat)
			if err != nil {
				return nil, err
			}
			if hasGoFiles(dir) {
				add(importPathFor(modRoot, modPath, dir))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps one non-wildcard pattern to a directory.
func patternDir(modRoot, modPath, pat string) (string, error) {
	switch {
	case pat == "." || pat == "":
		return modRoot, nil
	case strings.HasPrefix(pat, "./"):
		return filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	case pat == modPath:
		return modRoot, nil
	case strings.HasPrefix(pat, modPath+"/"):
		return filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pat, modPath+"/"))), nil
	default:
		return "", fmt.Errorf("analysis: pattern %q is outside module %s", pat, modPath)
	}
}

func walkPackages(modRoot, modPath, start string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, importPathFor(modRoot, modPath, path))
		}
		return nil
	})
	return out, err
}

func importPathFor(modRoot, modPath, dir string) string {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	names, err := goFilesIn(dir)
	return err == nil && len(names) > 0
}

// Run loads each package and applies each analyzer, returning all
// diagnostics sorted by position.
func Run(loader *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      loader.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Deps:      loader.Loaded,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunAudit loads each package and applies each analyzer in audit mode,
// returning the (filename, line) set of every suppression annotation
// that suppressed — or, for //amoeba:shardsafe boundaries, still
// shields — a finding. Diagnostics are discarded: the audit only
// answers which annotations are still live, so the -stale driver can
// report the inventory remainder as dead weight.
func RunAudit(loader *Loader, paths []string, analyzers []*Analyzer) (map[string]map[int]bool, error) {
	used := make(map[string]map[int]bool)
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      loader.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Deps:      loader.Loaded,
				Audit:     true,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, path, err)
			}
			for _, p := range pass.UsedAnnotations() {
				if used[p.Filename] == nil {
					used[p.Filename] = make(map[int]bool)
				}
				used[p.Filename][p.Line] = true
			}
		}
	}
	return used, nil
}
