package seedflow_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/seedflow"
)

func TestSeedFlow(t *testing.T) {
	// The sim stub is analyzed too: its own composite literals are the
	// constructor and must be exempt.
	analysistest.Run(t, "testdata", seedflow.Analyzer, "seeduser", "amoeba/internal/sim")
}
