// Package sim is a stub of the real amoeba/internal/sim for seedflow
// tests: the analyzer matches the RNG type by package-path suffix, and
// the sim package itself is exempt from the rules (NewRNG's composite
// literal below must not be flagged).
package sim

// RNG is a deterministic generator (stub).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent child generator.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }
