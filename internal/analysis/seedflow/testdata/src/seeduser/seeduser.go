// Package seeduser exercises every seedflow rule: unseeded construction,
// value-type copies, and RNG streams shared with goroutines.
package seeduser

import (
	"sync"

	"amoeba/internal/sim"
)

// global is package-level state: goroutines capturing it share a stream.
var global = sim.NewRNG(7)

// Holder embeds an RNG handle.
type Holder struct {
	R *sim.RNG
}

// BadValueField declares an RNG by value.
type BadValueField struct {
	R sim.RNG // want `R declared with value type sim\.RNG`
}

// Construction provenance -------------------------------------------------

// FromLiteral materialises an unseeded stream.
func FromLiteral() {
	_ = sim.RNG{} // want `composite literal: streams must originate from sim\.NewRNG`
}

// FromNew materialises a zero-state stream.
func FromNew() *sim.RNG {
	return new(sim.RNG) // want `new\(sim\.RNG\) starts from zero state`
}

// FromSeed is the sanctioned construction and stays legal.
func FromSeed() *sim.RNG {
	return sim.NewRNG(42)
}

// AllowedLiteral demonstrates the annotation escape hatch.
func AllowedLiteral() {
	//amoeba:allow seedflow zero stream is intentional in this fixture
	_ = sim.RNG{}
}

// Value copies ------------------------------------------------------------

// CopyParam receives the generator by value.
func CopyParam(r sim.RNG) uint64 { // want `r declared with value type sim\.RNG`
	return r.Uint64()
}

// CopyResult returns the generator by value through an anonymous result.
func CopyResult(r *sim.RNG) sim.RNG { // want `value type sim\.RNG in signature`
	return *r
}

// CopyLocal snapshots the stream into a local.
func CopyLocal(r *sim.RNG) uint64 {
	c := *r // want `c declared with value type sim\.RNG`
	return c.Uint64()
}

// Goroutine sharing -------------------------------------------------------

// ShareGlobal captures the package-level stream.
func ShareGlobal(done chan struct{}) {
	go func() {
		global.Uint64() // want `global is a shared RNG captured by a goroutine`
		close(done)
	}()
}

// ShareField captures a stream reachable through a field.
func ShareField(h *Holder, done chan struct{}) {
	go func() {
		h.R.Uint64() // want `R is a shared RNG captured by a goroutine`
		close(done)
	}()
}

// ShareParam captures the caller's stream.
func ShareParam(r *sim.RNG, done chan struct{}) {
	go func() {
		r.Uint64() // want `parameter r captured by goroutine shares the caller's RNG`
		close(done)
	}()
}

// ShareLoop spawns many goroutines over one stream.
func ShareLoop(wg *sync.WaitGroup) {
	r := sim.NewRNG(1)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Uint64() // want `r is captured by goroutines spawned in a loop`
		}()
	}
}

// ShareBothSides draws concurrently from the spawner and the goroutine.
func ShareBothSides(done chan struct{}) {
	r := sim.NewRNG(1)
	go func() {
		r.Uint64() // want `r is used both here and by the spawning function`
		close(done)
	}()
	r.Uint64()
	<-done
}

// HandOff passes a live handle into a spawned function.
func HandOff(r *sim.RNG, done chan struct{}) {
	go drain(r, done) // want `RNG handed to goroutine is still reachable here`
}

// Dedicated hands each goroutine its own Split child and stays legal.
func Dedicated(r *sim.RNG, done chan struct{}) {
	child := r.Split()
	go func() {
		child.Uint64()
		close(done)
	}()
	go drain(r.Split(), done)
}

func drain(r *sim.RNG, done chan struct{}) {
	r.Uint64()
	<-done
}
