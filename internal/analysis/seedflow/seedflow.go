// Package seedflow enforces the provenance and ownership discipline of
// sim.RNG streams. Determinism needs more than banning the wall clock
// (that is nodeterminism's job): every random stream must (1) originate
// from an explicit seed via sim.NewRNG or be derived with Split, so runs
// are replayable from their seeds alone; (2) never be copied by value,
// because two copies of the state replay the same stream and silently
// correlate "independent" stochastic processes; and (3) never be shared
// with a goroutine, because interleaved draws make the stream depend on
// the scheduler. The fix for (3) is always the same: hand the goroutine
// its own Split() child before spawning.
//
// The sim package itself is exempt (it defines the constructors). Other
// exceptions need an //amoeba:allow seedflow annotation with a reason.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer enforces seed provenance, no-copy, and no-sharing of sim.RNG.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "sim.RNG must originate from NewRNG/Split, must not be copied by value, " +
		"and must not be shared with goroutines (derive a Split() child instead)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The sim package defines RNG and its constructors; the rules
	// govern everyone else.
	if p := pass.Pkg.Path(); p == "internal/sim" || strings.HasSuffix(p, "/internal/sim") {
		return nil
	}
	for _, f := range pass.Files {
		checkConstruction(pass, f)
		checkValueDecls(pass, f)
	}
	checkGoroutines(pass)
	return nil
}

func isRNG(t types.Type) bool { return analysis.IsNamed(t, "internal/sim", "RNG") }

func isRNGPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && isRNG(ptr.Elem())
}

// checkConstruction flags RNG values materialised without a seed:
// composite literals and new(sim.RNG) start from zero state, so their
// streams are not tied to any recorded seed.
func checkConstruction(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if t, ok := pass.TypesInfo.Types[n]; ok && isRNG(t.Type) {
				pass.Reportf(n.Pos(),
					"sim.RNG composite literal: streams must originate from sim.NewRNG(seed) or Split()")
			}
		case *ast.CallExpr:
			if b, ok := pass.TypesInfo.Uses[calleeIdent(n)].(*types.Builtin); ok && b.Name() == "new" && len(n.Args) == 1 {
				if t, ok := pass.TypesInfo.Types[n.Args[0]]; ok && isRNG(t.Type) {
					pass.Reportf(n.Pos(),
						"new(sim.RNG) starts from zero state: use sim.NewRNG(seed) or Split()")
				}
			}
		}
		return true
	})
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := call.Fun.(*ast.Ident)
	return id
}

// checkValueDecls flags every variable, field, parameter, or result
// declared with type sim.RNG (by value): using the value type copies the
// generator state at every assignment and call.
func checkValueDecls(pass *analysis.Pass, f *ast.File) {
	// Named declarations (vars, params, named results, struct fields,
	// short variable declarations) all define idents.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Defs[n].(*types.Var); ok && isRNG(v.Type()) {
				pass.Reportf(n.Pos(),
					"%s declared with value type sim.RNG: copies duplicate the stream — use *sim.RNG", n.Name)
			}
		case *ast.Field:
			// Anonymous parameters/results have no defining ident.
			if len(n.Names) == 0 {
				if t, ok := pass.TypesInfo.Types[n.Type]; ok && isRNG(t.Type) {
					pass.Reportf(n.Pos(),
						"value type sim.RNG in signature: copies duplicate the stream — use *sim.RNG")
				}
			}
		}
		return true
	})
}

// checkGoroutines flags RNGs that are visible to more than one goroutine:
// an RNG captured or passed into a `go` statement may only be a dedicated
// child (declared locally, handed to exactly one goroutine, not reused by
// the parent).
func checkGoroutines(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncGoroutines(pass, fd)
		}
	}
}

func checkFuncGoroutines(pass *analysis.Pass, fd *ast.FuncDecl) {
	// All uses of each RNG-typed object anywhere in the declaration.
	rngUses := make(map[*types.Var][]*ast.Ident)
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && (isRNGPtr(v.Type()) || isRNG(v.Type())) {
			rngUses[v] = append(rngUses[v], id)
		}
		return true
	})
	if len(rngUses) == 0 {
		return
	}

	// Loop bodies, for the "one literal, many goroutines" case.
	var loops []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	inLoopWithout := func(pos, declPos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() && !(l.Pos() <= declPos && declPos < l.End()) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			checkGoLiteral(pass, fd, g, lit, rngUses, inLoopWithout)
			return true
		}
		// go f(..., rng, ...): the parent (or its caller) still holds the
		// same RNG, so the stream now has two concurrent owners.
		for _, arg := range g.Call.Args {
			if t, ok := pass.TypesInfo.Types[arg]; ok && (isRNGPtr(t.Type) || isRNG(t.Type)) {
				if isPlainRef(arg) {
					pass.Reportf(arg.Pos(),
						"RNG handed to goroutine is still reachable here: pass a Split() child instead")
				}
			}
		}
		return true
	})
}

// isPlainRef reports whether expr is a bare variable or field reference —
// passing rng.Split() (a call) is the sanctioned pattern and stays legal.
func isPlainRef(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && isPlainRef(e.X)
	case *ast.StarExpr:
		return isPlainRef(e.X)
	}
	return false
}

func checkGoLiteral(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit,
	rngUses map[*types.Var][]*ast.Ident, inLoopWithout func(pos, declPos token.Pos) bool) {

	for v, uses := range rngUses {
		var inside, outside int
		for _, id := range uses {
			if lit.Pos() <= id.Pos() && id.Pos() < lit.End() {
				inside++
			} else {
				outside++
			}
		}
		if inside == 0 {
			continue
		}
		declPos := v.Pos()
		if lit.Pos() <= declPos && declPos < lit.End() {
			continue // the goroutine's own local or parameter
		}
		switch {
		case v.IsField() || v.Parent() == pass.Pkg.Scope():
			pass.Reportf(firstInside(uses, lit).Pos(),
				"%s is a shared RNG captured by a goroutine: derive a child with Split() before spawning", v.Name())
		case declPos < fd.Body.Pos():
			// Parameter of the enclosing function: the caller keeps a
			// live handle to the same stream.
			pass.Reportf(firstInside(uses, lit).Pos(),
				"parameter %s captured by goroutine shares the caller's RNG: pass a Split() child", v.Name())
		case inLoopWithout(g.Pos(), declPos):
			pass.Reportf(firstInside(uses, lit).Pos(),
				"%s is captured by goroutines spawned in a loop: every iteration shares one stream — Split() per iteration", v.Name())
		case outside > 0:
			pass.Reportf(firstInside(uses, lit).Pos(),
				"%s is used both here and by the spawning function: concurrent draws race — hand the goroutine a Split() child", v.Name())
		}
	}
}

func firstInside(uses []*ast.Ident, lit *ast.FuncLit) *ast.Ident {
	for _, id := range uses {
		if lit.Pos() <= id.Pos() && id.Pos() < lit.End() {
			return id
		}
	}
	return uses[0]
}
