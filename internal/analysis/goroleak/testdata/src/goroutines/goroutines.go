// Package goroutines exercises goroleak: unjoined spawns and
// per-element loop spawns are flagged; WaitGroup/errgroup joins, quit
// channels, result hand-offs, counted pools, and semaphore-bounded
// loops are not.
package goroutines

import (
	"context"
	"sync"
)

// FireAndForget spawns a goroutine nothing ever joins.
func FireAndForget() {
	go func() { // want `goroutine is not lifetime-bounded`
		work(1)
	}()
}

// NamedFireAndForget spawns a named function with no join in sight.
func NamedFireAndForget() {
	go work(2) // want `goroutine is not lifetime-bounded`
}

// WaitGroupJoin is the conventional join: the Wait vouches for the spawn.
func WaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(3)
	}()
	wg.Wait()
}

// ErrgroupStyleJoin joins through any .Wait() method, the errgroup shape.
func ErrgroupStyleJoin(g interface{ Wait() error }) {
	go work(4)
	_ = g.Wait()
}

// QuitChannel ties the goroutine's exit to a quit signal.
func QuitChannel(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work(5)
			}
		}
	}()
}

// ContextDone selects on ctx.Done, the stdlib quit idiom.
func ContextDone(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// RangeOverChannel consumes a work channel: the close bounds its life.
func RangeOverChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// ResultHandoff is joined by the spawner receiving the result.
func ResultHandoff() int {
	ch := make(chan int, 1)
	go func() {
		ch <- work(6)
	}()
	return <-ch
}

// SpawnPerElement launches one goroutine per slice element.
func SpawnPerElement(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() { // want `goroutine spawned per loop element without a bounding semaphore`
			defer wg.Done()
			work(it)
		}()
	}
	wg.Wait()
}

// SpawnForever launches goroutines from an unconditional loop.
func SpawnForever(jobs chan int) {
	for {
		j := <-jobs
		go work(j) // want `goroutine spawned per loop element without a bounding semaphore`
	}
}

// SemaphoreBounded acquires a slot before each spawn: in-flight
// goroutines are capped by the semaphore's capacity.
func SemaphoreBounded(items []int) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(it)
			<-sem
		}()
	}
	wg.Wait()
}

// CountedPool is the repository's worker-pool idiom: a three-clause loop
// bounded by the worker count, joined by the WaitGroup.
func CountedPool(workers int, jobs chan int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				work(j)
			}
		}()
	}
	wg.Wait()
}

// NestedScope: the literal's own spawn is audited against the literal,
// not the enclosing function — the outer Wait does not vouch for it.
func NestedScope() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		go work(7) // want `goroutine is not lifetime-bounded`
	}()
	wg.Wait()
}

// Allowed waives a deliberate detached spawn with the standard
// annotation.
func Allowed() {
	//amoeba:allow goroleak process-lifetime metrics flusher, exits with main
	go work(8)
}

func work(x int) int { return x * x }
