// Package goroleak flags goroutines whose lifetime is not statically
// bounded. The repository parallelises across simulations — worker
// pools in profiling and the experiments sweep driver — and the leak
// shapes that matter there are (1) a spawned goroutine nothing ever
// joins, which outlives its driver and keeps its shard's memory alive,
// and (2) a loop that launches one goroutine per data element, whose
// peak concurrency is set by the input instead of a pool bound.
//
// A `go` statement is accepted as lifetime-bounded when any of these
// holds in the spawning function:
//
//   - the function calls a Wait method (sync.WaitGroup.Wait or an
//     errgroup-style .Wait()) — the conventional join;
//   - the goroutine body consumes a channel (a receive, a range over a
//     channel, or a select with a receive arm, including ctx.Done()) —
//     its exit is tied to a close or quit signal;
//   - the goroutine sends on a channel the spawning function itself
//     receives from — a result hand-off join.
//
// Independently, a `go` statement whose innermost enclosing loop is a
// range loop (or an unconditional for) is flagged as an unbounded
// spawn unless the loop acquires a semaphore — sends on a bounding
// channel — before spawning. Counted three-clause loops are treated as
// pool-shaped: `for w := 0; w < workers; w++` is how every bounded pool
// in this repository is written, and the bound is the loop condition.
//
// The checks are intra-procedural and syntactic: a join hidden behind a
// helper call or a func-valued variable is invisible (annotate the spawn
// //amoeba:allow goroleak <reason>), and a Wait anywhere in the function
// vouches for every spawn in it. The -race experiment and profiling
// suites are the runtime backstop, as with the other concurrency
// analyzers (DESIGN.md §12).
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"amoeba/internal/analysis"
)

// Analyzer flags unjoined goroutines and per-element goroutine spawns.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every go statement must be lifetime-bounded (WaitGroup/errgroup join, Done/quit " +
		"channel, or received result channel) and per-range-element spawns need a bounding " +
		"semaphore or worker pool",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkScope(pass, n.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkScope audits the go statements that belong directly to one
// function body. Nested function literals are separate scopes: their own
// spawns are audited when the inspection reaches them, and their joins
// do not vouch for the enclosing function's spawns.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	facts := scopeFacts(pass, body)
	var loops []ast.Stmt // enclosing-loop stack, innermost last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			walkLoopBody(n, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			checkGo(pass, facts, loops, n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// walkLoopBody continues the walk inside a loop statement (init/cond/
// post/key expressions first, then the body under the pushed loop).
func walkLoopBody(n ast.Node, walk func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		ast.Inspect(n.Body, walk)
	case *ast.RangeStmt:
		ast.Inspect(n.Body, walk)
	}
}

// facts are the spawning function's join-relevant properties.
type facts struct {
	hasWait  bool
	receives map[string]bool // channel exprs the function receives from
	info     *types.Info
}

// scopeFacts scans one function body. Receives (and Wait calls) are
// collected scope-wide, nested literals included: a result collector is
// often a small inline closure, and counting its receives as the
// function's own is deliberate leniency.
func scopeFacts(pass *analysis.Pass, body *ast.BlockStmt) *facts {
	f := &facts{receives: make(map[string]bool), info: pass.TypesInfo}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Syntactic on purpose: sync.WaitGroup, errgroup.Group, and
			// anonymous-interface pools all join through a .Wait() method.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				f.hasWait = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.receives[types.ExprString(n.X)] = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.TypesInfo, n.X) {
				f.receives[types.ExprString(n.X)] = true
			}
		}
		return true
	})
	return f
}

// checkGo applies the two rules to one go statement.
func checkGo(pass *analysis.Pass, f *facts, loops []ast.Stmt, g *ast.GoStmt) {
	if len(loops) > 0 {
		if loop := loops[len(loops)-1]; perElementLoop(loop) && !semaphoreBefore(loop, g.Pos()) {
			pass.Reportf(g.Pos(), "goroutine spawned per loop element without a bounding "+
				"semaphore: use a counted worker pool (or annotate //amoeba:allow goroleak)")
			return
		}
	}
	if f.hasWait || goroutineConsumesChannel(f.info, g) || resultJoin(f, g) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine is not lifetime-bounded: join it with a WaitGroup/"+
		"errgroup Wait, give it a Done/quit channel, or receive its result "+
		"(//amoeba:allow goroleak to waive)")
}

// perElementLoop reports whether a loop's trip count is data-dependent:
// a range loop or an unconditional for. Counted three-clause loops are
// the pool idiom and pass.
func perElementLoop(loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		return true
	case *ast.ForStmt:
		return l.Cond == nil
	}
	return false
}

// semaphoreBefore reports whether the loop body sends on a channel
// before pos — the `sem <- token{}` acquisition that bounds in-flight
// goroutines.
func semaphoreBefore(loop ast.Stmt, pos token.Pos) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.RangeStmt:
		body = l.Body
	case *ast.ForStmt:
		body = l.Body
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok && send.Pos() < pos {
			found = true
		}
		return !found
	})
	return found
}

// goroutineConsumesChannel reports whether the spawned body ties its
// exit to a channel: any receive, channel range, or select receive arm.
func goroutineConsumesChannel(info *types.Info, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	consumes := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				consumes = true
			}
		case *ast.RangeStmt:
			if isChanType(info, n.X) {
				consumes = true
			}
		}
		return !consumes
	})
	return consumes
}

// resultJoin reports whether the goroutine sends on a channel the
// spawning function receives from: the hand-off join.
func resultJoin(f *facts, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok && f.receives[types.ExprString(send.Chan)] {
			joined = true
		}
		return !joined
	})
	return joined
}

func isChanType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
