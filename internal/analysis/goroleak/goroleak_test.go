package goroleak_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "goroutines")
}
