package analysis

// Devirtualization: the module-wide class-hierarchy index and the
// intra-procedural func-value tracking that close the dynamic-dispatch
// blind spot of the call-graph analyzers (DESIGN.md §13).
//
// The per-callee walk in callgraph.go resolves only statically bound
// calls: package-level functions and concrete-receiver methods. Until
// this layer existed, an interface-dispatched call or a call through a
// func-valued local resolved to nil and the walk silently stopped —
// exactly the edges the platform routes its cross-component
// interactions through (telemetry sinks behind obs.Sink, load traces
// behind trace.Trace, sweep callbacks as func values). CalleeEdges
// widens the graph with two resolutions:
//
//   - interface dispatch: a class-hierarchy index over the analyzed
//     package and every module-local dependency the loader has syntax
//     for, narrowed RTA-style to concrete named types that are actually
//     instantiated (composite literal, new, conversion, explicitly
//     typed var) or address-taken anywhere in that universe. A call
//     x.M() where x is an interface resolves to the M of every live
//     type implementing the interface;
//
//   - func values: per-package, per-function tracking of named
//     functions, method values, and function literals bound to local
//     variables (including through local aliases), so f := t.fire; f()
//     resolves to ticker.fire. A variable is abandoned — no edges —
//     the moment the tracking would be unsound: it is address-taken,
//     assigned from a call result or any other untrackable expression,
//     or it is a parameter (the value comes from an unseen caller);
//
//   - struct fields: the module-wide field-sensitive flow in fieldflow.go
//     resolves calls through func-valued struct fields (g.onArrival
//     stored at construction and called later) to every value the
//     universe stores in that field, with the same abandon-on-taint
//     contract — a field that ever receives an opaque value (parameter,
//     call result, address-taken) yields no edges.
//
// With the field layer in place the remaining resolution gaps are
// tainted bindings themselves (values from unseen callers or external
// writers) and packages without loaded syntax; the runtime suites
// (-race, golden determinism, AllocsPerRun) backstop those.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DevirtEnabled gates the devirtualization layer. It exists so the
// analyzer-speed benchmark (BenchmarkAmoebaVetRepo) can measure the
// pre-devirt baseline on the same hardware as the full graph; it is
// never cleared outside that benchmark.
var DevirtEnabled = true

// A CalleeEdge is one possible target of a call or of a func-valued
// expression. Exactly one of Fn and Lit is set: Fn for named functions
// and methods (always the generic origin, never an instantiation), Lit
// for a function literal bound to a local or stored in a struct field.
// Via is empty for statically bound calls; for dynamic edges it names
// the dispatch, e.g.
// "dynamic dispatch on Sink.Consume => MetricsSink.Consume",
// "func value f => stamp", or "field engine.onDrain => drain", ready to
// splice into a diagnostic chain.
type CalleeEdge struct {
	Fn  *types.Func
	Lit *ast.FuncLit
	// LitPkg is set on literal edges that originate outside the calling
	// function's own body (func values stored in struct fields): the
	// package whose syntax and type info cover Lit, so a walker can
	// analyze the literal's body in the right context. Nil for locally
	// bound literals, whose bodies the walkers see inline.
	LitPkg *types.Package
	Via    string
}

// pkgSyntax is one package of the devirtualization universe: the
// analyzed package or a module-local dependency with loaded syntax.
type pkgSyntax struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// devirtIndex is the lazily built module-wide state behind CalleeEdges.
type devirtIndex struct {
	univ []*pkgSyntax

	liveBuilt bool
	live      []types.Type    // instantiated/address-taken concrete named types, deterministic order
	liveSeen  map[string]bool // keyed by TypeString for cross-package instance dedup
	implMemo  map[*types.Func][]*types.Func

	scanned  map[*types.Package]bool
	bindings map[*types.Var][]CalleeEdge
	aliases  map[*types.Var][]*types.Var
	fieldSrc map[*types.Var][]*types.Var // local -> struct-field origins it copies
	tainted  map[*types.Var]bool
	fields   *fieldIndex // lazily built by fieldIndexOf (fieldflow.go)
}

func (r *Resolver) index() *devirtIndex {
	if r.devirt == nil {
		r.devirt = &devirtIndex{
			liveSeen: make(map[string]bool),
			implMemo: make(map[*types.Func][]*types.Func),
			scanned:  make(map[*types.Package]bool),
			bindings: make(map[*types.Var][]CalleeEdge),
			aliases:  make(map[*types.Var][]*types.Var),
			fieldSrc: make(map[*types.Var][]*types.Var),
			tainted:  make(map[*types.Var]bool),
		}
		r.devirt.univ = r.universe()
	}
	return r.devirt
}

// universe collects the analyzed package plus every module-local
// dependency with loaded syntax, breadth-first over the import graph so
// the order (and hence every index derived from it) is deterministic.
func (r *Resolver) universe() []*pkgSyntax {
	var out []*pkgSyntax
	seen := map[*types.Package]bool{r.pass.Pkg: true}
	queue := []*types.Package{r.pass.Pkg}
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		files, info := r.syntaxOf(pkg)
		if info != nil {
			out = append(out, &pkgSyntax{pkg: pkg, files: files, info: info})
		}
		for _, imp := range pkg.Imports() {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	return out
}

// Callees resolves a call expression to every function it can reach:
// the statically bound callee, the devirtualized implementations behind
// an interface dispatch, or the named functions bound to a local func
// value. Function-literal targets carry no *types.Func and are omitted
// here; CalleeEdges exposes them.
func (r *Resolver) Callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	var out []*types.Func
	for _, e := range r.CalleeEdges(info, call) {
		if e.Fn != nil {
			out = append(out, e.Fn)
		}
	}
	return out
}

// CalleeEdges resolves a call expression to its possible target edges.
// Builtins, conversions, and expressions neither tracking layer can
// follow (package-level func variables, tainted locals, tainted struct
// fields) yield no edges.
func (r *Resolver) CalleeEdges(info *types.Info, call *ast.CallExpr) []CalleeEdge {
	return r.FuncValueEdges(info, call.Fun)
}

// FuncValueEdges resolves an expression used as a func value — a callee
// or a callback argument — to its possible target edges.
func (r *Resolver) FuncValueEdges(info *types.Info, e ast.Expr) []CalleeEdge {
	e = unwrapCallee(e)
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	switch obj := info.Uses[id].(type) {
	case *types.Func:
		fn := obj.Origin()
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type().Underlying()) {
			if !DevirtEnabled {
				return nil
			}
			return r.dispatchEdges(fn, "")
		}
		if fn.Pkg() == nil {
			return nil
		}
		return []CalleeEdge{{Fn: fn}}
	case *types.Var:
		if !DevirtEnabled {
			return nil
		}
		if obj.IsField() {
			return r.fieldEdges(obj)
		}
		return r.funcVarEdges(obj)
	}
	return nil
}

// dispatchEdges devirtualizes one interface method against the live-type
// index. prefix, when non-empty, names the func value the method value
// was bound to.
func (r *Resolver) dispatchEdges(iface *types.Func, prefix string) []CalleeEdge {
	ifaceName := FuncDisplayName(r.pass.Pkg, iface)
	var out []CalleeEdge
	for _, impl := range r.implementersOf(iface) {
		via := "dynamic dispatch on " + ifaceName + " => " + FuncDisplayName(r.pass.Pkg, impl)
		if prefix != "" {
			via = prefix + " => " + via
		}
		out = append(out, CalleeEdge{Fn: impl, Via: via})
	}
	return out
}

// funcVarEdges resolves a call through a func-typed variable. Only
// function-scope locals with a complete, untainted binding set resolve;
// parameters, package-level variables, and fields do not (fields go
// through fieldEdges instead).
func (r *Resolver) funcVarEdges(v *types.Var) []CalleeEdge {
	raw := r.rawVarEdges(v)
	if raw == nil {
		return nil
	}
	out := make([]CalleeEdge, 0, len(raw))
	for _, e := range raw {
		e.Via = withFuncValuePrefix(v, e, r.pass.Pkg)
		out = append(out, e)
	}
	return out
}

// rawVarEdges computes the binding set of a func-typed local without the
// "func value v => ..." prefix, so the field-flow layer can reuse it for
// locals stored into fields. nil when the set cannot be proven complete.
func (r *Resolver) rawVarEdges(v *types.Var) []CalleeEdge {
	if !isTrackableLocal(v) {
		return nil
	}
	idx := r.index()
	idx.scanBindingsOf(v.Pkg())
	var out []CalleeEdge
	visited := make(map[*types.Var]bool)
	sound := r.collectVarEdges(v, visited, &out)
	if !sound {
		return nil
	}
	if out == nil {
		out = []CalleeEdge{} // complete-but-empty (e.g. cycle head): not unsound
	}
	return out
}

// collectVarEdges accumulates the raw binding set of v (following local
// aliases and struct-field sources) into out, reporting false the moment
// any variable or field on the chain is tainted.
func (r *Resolver) collectVarEdges(v *types.Var, visited map[*types.Var]bool, out *[]CalleeEdge) bool {
	if visited[v] {
		return true
	}
	visited[v] = true
	idx := r.devirt
	if idx.tainted[v] {
		return false
	}
	if len(idx.bindings[v]) == 0 && len(idx.aliases[v]) == 0 && len(idx.fieldSrc[v]) == 0 {
		// Never assigned anything we saw: the value comes from
		// somewhere the tracking cannot follow.
		return false
	}
	*out = append(*out, idx.bindings[v]...)
	for _, a := range idx.aliases[v] {
		if !r.collectVarEdges(a, visited, out) {
			return false
		}
	}
	for _, f := range idx.fieldSrc[v] {
		// f := x.onDrain: the local's values are the field's values.
		fes := r.fieldEdges(f)
		if fes == nil {
			return false
		}
		*out = append(*out, fes...)
	}
	return true
}

// withFuncValuePrefix renders the Via label of one func-value edge.
func withFuncValuePrefix(v *types.Var, e CalleeEdge, cur *types.Package) string {
	switch {
	case e.Lit != nil:
		return "func value " + v.Name() + " => function literal"
	case e.Via != "":
		return "func value " + v.Name() + " => " + e.Via
	default:
		return "func value " + v.Name() + " => " + FuncDisplayName(cur, e.Fn)
	}
}

// isTrackableLocal reports whether v is a function-scope local variable
// of function type — the only kind of func value the intra-procedural
// tracking claims to resolve.
func isTrackableLocal(v *types.Var) bool {
	if v.Pkg() == nil || v.IsField() || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	_, ok := v.Type().Underlying().(*types.Signature)
	return ok
}

// implementersOf returns the concrete methods implementing one
// interface method across the live-type index, in deterministic order.
func (r *Resolver) implementersOf(iface *types.Func) []*types.Func {
	idx := r.index()
	if impls, ok := idx.implMemo[iface]; ok {
		return impls
	}
	sig := iface.Type().(*types.Signature)
	it, ok := sig.Recv().Type().Underlying().(*types.Interface)
	var impls []*types.Func
	if ok {
		idx.buildLive(r)
		seen := make(map[*types.Func]bool)
		for _, t := range idx.live {
			if !types.Implements(t, it) && !types.Implements(types.NewPointer(t), it) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, iface.Pkg(), iface.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			fn = fn.Origin()
			if fsig, ok := fn.Type().(*types.Signature); ok && fsig.Recv() != nil &&
				types.IsInterface(fsig.Recv().Type().Underlying()) {
				continue // promoted from an embedded interface: still dynamic
			}
			if !seen[fn] {
				seen[fn] = true
				impls = append(impls, fn)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool {
		a, b := FuncDisplayName(r.pass.Pkg, impls[i]), FuncDisplayName(r.pass.Pkg, impls[j])
		if a != b {
			return a < b
		}
		return impls[i].Pos() < impls[j].Pos()
	})
	idx.implMemo[iface] = impls
	return impls
}

// buildLive scans the universe once for concrete named types that are
// instantiated or address-taken, closing over aggregate fields (a live
// struct makes its field types live).
func (idx *devirtIndex) buildLive(r *Resolver) {
	if idx.liveBuilt {
		return
	}
	idx.liveBuilt = true
	for _, ps := range idx.univ {
		for _, f := range ps.files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					idx.addLive(ps.info.TypeOf(n))
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						idx.addLive(ps.info.TypeOf(n.X))
					}
				case *ast.CallExpr:
					if id, ok := unwrapCallee(n.Fun).(*ast.Ident); ok {
						if b, ok := ps.info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
							idx.addLive(ps.info.TypeOf(n))
						}
					}
					if tv, ok := ps.info.Types[n.Fun]; ok && tv.IsType() {
						idx.addLive(tv.Type)
					}
				case *ast.ValueSpec:
					if n.Type != nil {
						idx.addLive(ps.info.TypeOf(n.Type))
					}
				}
				return true
			})
		}
	}
}

// addLive records one type (and, for aggregates, its element and field
// types) as instantiated.
func (idx *devirtIndex) addLive(t types.Type) {
	if t == nil {
		return
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || types.IsInterface(named.Underlying()) {
		return
	}
	if named.TypeParams().Len() > 0 && named.TypeArgs() == nil {
		return // uninstantiated generic: no concrete method set
	}
	key := types.TypeString(named, nil)
	if idx.liveSeen[key] {
		return
	}
	idx.liveSeen[key] = true
	idx.live = append(idx.live, named)
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			idx.addLive(u.Field(i).Type())
		}
	case *types.Array:
		idx.addLive(u.Elem())
	}
}

// scanBindingsOf indexes the func-value bindings of one package's
// syntax: every assignment of a named function, method value, literal,
// or local alias to a func-typed local, plus the taints that make a
// variable untrackable.
func (idx *devirtIndex) scanBindingsOf(pkg *types.Package) {
	if idx.scanned[pkg] {
		return
	}
	idx.scanned[pkg] = true
	var ps *pkgSyntax
	for _, cand := range idx.univ {
		if cand.pkg == pkg {
			ps = cand
			break
		}
	}
	if ps == nil {
		return
	}
	info := ps.info
	for _, f := range ps.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						idx.recordBinding(info, n.Lhs[i], n.Rhs[i])
					}
				} else {
					for _, lhs := range n.Lhs {
						idx.taintIdent(info, lhs)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						idx.recordBinding(info, n.Names[i], n.Values[i])
					}
				} else if len(n.Values) > 0 {
					for _, name := range n.Names {
						idx.taintIdent(info, name)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					idx.taintIdent(info, n.X)
				}
			case *ast.RangeStmt:
				idx.taintIdent(info, n.Key)
				// for _, h := range x.handlers: the element local's
				// values are the container field's values.
				if !idx.recordRangeFieldSrc(info, n.Value, n.X) {
					idx.taintIdent(info, n.Value)
				}
			}
			return true
		})
	}
}

// recordBinding tracks one lhs := rhs pair; an untrackable rhs taints
// the variable instead.
func (idx *devirtIndex) recordBinding(info *types.Info, lhs, rhs ast.Expr) {
	v := localFuncVar(info, lhs)
	if v == nil {
		return
	}
	if tv, ok := info.Types[rhs]; ok && tv.IsNil() {
		return // f = nil: calling it panics, nothing to resolve
	}
	e := rhs
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		// A conversion to a func type wraps the value without changing
		// the target: unwrap H(f).
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		break
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		idx.bindings[v] = append(idx.bindings[v], CalleeEdge{Lit: e})
		return
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr:
		var id *ast.Ident
		switch e := unwrapCallee(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		}
		switch obj := info.Uses[id].(type) {
		case *types.Func:
			idx.bindings[v] = append(idx.bindings[v], CalleeEdge{Fn: obj.Origin()})
			return
		case *types.Var:
			if isTrackableLocal(obj) {
				idx.aliases[v] = append(idx.aliases[v], obj)
				return
			}
			if FieldFlowEnabled && obj.IsField() && fieldKind(obj.Type()) != fieldUntracked {
				// f := x.onDrain: resolved through the field-flow layer.
				idx.fieldSrc[v] = append(idx.fieldSrc[v], obj.Origin())
				return
			}
		}
	}
	idx.tainted[v] = true
}

// recordRangeFieldSrc binds a range value variable to the func-container
// field it iterates, reporting whether the binding was recorded.
func (idx *devirtIndex) recordRangeFieldSrc(info *types.Info, value, x ast.Expr) bool {
	if !FieldFlowEnabled || value == nil {
		return false
	}
	v := localFuncVar(info, value)
	if v == nil {
		return false
	}
	fv, _ := funcBearingField(info, x)
	if fv == nil || fieldKind(fv.Type()) != fieldContainer {
		return false
	}
	idx.fieldSrc[v] = append(idx.fieldSrc[v], fv)
	return true
}

// taintIdent marks a func-typed local as untrackable when the tracking
// cannot prove its binding set complete.
func (idx *devirtIndex) taintIdent(info *types.Info, e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if v := localFuncVar(info, id); v != nil {
		idx.tainted[v] = true
	}
}

// localFuncVar resolves an expression to the function-scope func-typed
// local it names, nil for anything else.
func localFuncVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || !isTrackableLocal(v) {
		return nil
	}
	return v
}

// unwrapCallee strips parens and generic instantiation indexes from a
// callee expression: (helper[int]) resolves like helper.
func unwrapCallee(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// An AllowSites index resolves //amoeba:allow annotations in walked
// dependency syntax, so a suppression placed at the line that violates
// an invariant silences every call chain that reaches it — one
// annotation at the origin instead of one per reaching root. The
// position returned by Covering is the annotation comment itself, for
// Pass.UseAnnotation bookkeeping.
type AllowSites struct {
	fset  *token.FileSet
	files map[*ast.File]map[int][]allowSite
}

type allowSite struct {
	name string
	pos  token.Pos
}

// NewAllowSites returns an empty index over fset.
func NewAllowSites(fset *token.FileSet) *AllowSites {
	return &AllowSites{fset: fset, files: make(map[*ast.File]map[int][]allowSite)}
}

// Covering reports whether an //amoeba:allow annotation naming name (or
// "all") covers pos within file, returning the annotation's position.
func (s *AllowSites) Covering(file *ast.File, pos token.Pos, name string) (token.Pos, bool) {
	if file == nil {
		return token.NoPos, false
	}
	lines, ok := s.files[file]
	if !ok {
		lines = make(map[int][]allowSite)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				aname, _, ok := ParseAllow(c.Text)
				if !ok {
					continue
				}
				line := s.fset.Position(c.Pos()).Line
				site := allowSite{name: aname, pos: c.Pos()}
				lines[line] = append(lines[line], site)
				lines[line+1] = append(lines[line+1], site)
			}
		}
		s.files[file] = lines
	}
	for _, site := range lines[s.fset.Position(pos).Line] {
		if site.name == name || site.name == "all" {
			return site.pos, true
		}
	}
	return token.NoPos, false
}
