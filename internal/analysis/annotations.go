package analysis

// Hot-path and concurrency contract annotations. The comment forms mark
// the static side of the repository's performance contracts (DESIGN.md
// §11) and concurrency contracts (DESIGN.md §12):
//
//	//amoeba:noalloc
//	    on a function's doc comment: the function must not allocate in
//	    steady state. alloccheck screens its body for allocation-inducing
//	    constructs; the runtime half of the contract is an AllocsPerRun
//	    assertion tied back by //amoeba:alloctest markers.
//
//	//amoeba:allowalloc(reason)
//	    on (or directly above) a flagged line inside a noalloc function:
//	    the construct is deliberate — almost always amortised backing-array
//	    growth. The reason is mandatory; amoeba-vet -suppressions audits
//	    the inventory and fails on an empty one.
//
//	//amoeba:hotpath
//	    on a function's doc comment: the function runs inside simulator
//	    callbacks even though it has no allocation assertion. hotpath
//	    roots its call-graph walk here (in addition to noalloc functions
//	    and literal callback arguments).
//
//	//amoeba:enum
//	    on a type declaration: the type is a closed enumeration — every
//	    switch over it must name all members (exhaustive). On a constant
//	    type the members are the package-level constants of that exact
//	    type; on an interface they are the implementing named types of
//	    the defining package.
//
//	//amoeba:alloctest pkg.Recv.Name pkg.Name ...
//	    on a test function holding an AllocsPerRun assertion: the
//	    space-separated qualified names of the //amoeba:noalloc functions
//	    the assertion exercises (package base name, receiver type without
//	    the star, function name). TestAllocAnnotationCoverage keeps the
//	    union of these markers and the annotation set equal in both
//	    directions, so neither side can drift.
//
//	//amoeba:shard
//	    on a function's doc comment: the function is a per-worker shard
//	    body of a parallel sweep. shardsafe roots its call-graph walk
//	    here and certifies that the function (and everything it reaches)
//	    shares no mutable state with sibling workers except through
//	    channels passed in as parameters.
//
//	//amoeba:shardsafe
//	    on a function's doc comment: the function is an audited
//	    concurrency-safe API boundary — internally synchronised shared
//	    state that shard workers may call into (the singleflight memo is
//	    the canonical example). shardsafe stops its walk here and trusts
//	    the audit; the trailing note should say what makes it safe.
//
//	//amoeba:bounded p1 p2 ...
//	    on a function's doc comment: the named channel-typed parameters
//	    must be handed channels whose make capacity is a named constant.
//	    chancheck enforces the contract at every statically resolvable
//	    call site, so worker-pool queue depths stay auditable numbers
//	    rather than data-dependent expressions.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Function-level annotation markers.
const (
	AnnotNoAlloc   = "//amoeba:noalloc"
	AnnotHotpath   = "//amoeba:hotpath"
	AnnotEnum      = "//amoeba:enum"
	AnnotAllocTest = "//amoeba:alloctest"
	AnnotShard     = "//amoeba:shard"
	AnnotShardSafe = "//amoeba:shardsafe"
	AnnotBounded   = "//amoeba:bounded"
)

// ParseBounded parses an //amoeba:bounded comment into the parameter
// names it declares. ok reports that the marker is present; the name
// list is empty when the marker names no parameters (chancheck treats
// that as a grammar error at the declaration).
func ParseBounded(text string) (params []string, ok bool) {
	body, found := strings.CutPrefix(text, AnnotBounded)
	if !found {
		return nil, false
	}
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return nil, false // exact-prefix rule: //amoeba:boundedX is not the marker
	}
	return strings.Fields(body), true
}

// BoundedParams returns the parameter names declared by an
// //amoeba:bounded marker on the function declaration, and whether the
// marker is present at all.
func BoundedParams(fset *token.FileSet, file *ast.File, decl *ast.FuncDecl) ([]string, bool) {
	for _, cg := range commentGroupsFor(fset, file, decl) {
		for _, c := range cg.List {
			if params, ok := ParseBounded(c.Text); ok {
				return params, true
			}
		}
	}
	return nil, false
}

// commentGroupsFor collects the doc group of a declaration plus any
// free-standing comment group ending on the line directly above it (the
// same attachment rule FuncMarked uses).
func commentGroupsFor(fset *token.FileSet, file *ast.File, decl *ast.FuncDecl) []*ast.CommentGroup {
	var out []*ast.CommentGroup
	if decl.Doc != nil {
		out = append(out, decl.Doc)
	}
	declLine := fset.Position(decl.Pos()).Line
	for _, cg := range file.Comments {
		if cg == decl.Doc {
			continue
		}
		end := fset.Position(cg.End()).Line
		if end == declLine-1 || end == declLine {
			out = append(out, cg)
		}
	}
	return out
}

// ParseAllowAlloc parses an //amoeba:allowalloc(reason) comment. ok
// reports that the annotation is present; reason is empty when the
// parentheses are missing or hold only whitespace (the -suppressions
// audit treats that as an error).
func ParseAllowAlloc(text string) (reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//amoeba:allowalloc")
	if !found {
		return "", false
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "(") || !strings.HasSuffix(body, ")") {
		return "", true
	}
	return strings.TrimSpace(body[1 : len(body)-1]), true
}

// commentMarks reports whether any line of the comment group is exactly
// the marker (trailing text after the marker is tolerated so a
// justification can follow on the same line).
func commentMarks(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// FuncMarked reports whether the function declaration carries the marker
// in its doc group, or in any free-standing comment group of the file
// that ends on the line directly above the declaration (the form that
// survives between a //go:build constraint block and the func line).
func FuncMarked(fset *token.FileSet, file *ast.File, decl *ast.FuncDecl, marker string) bool {
	if commentMarks(decl.Doc, marker) {
		return true
	}
	declLine := fset.Position(decl.Pos()).Line
	for _, cg := range file.Comments {
		if !commentMarks(cg, marker) {
			continue
		}
		end := fset.Position(cg.End()).Line
		if end == declLine-1 || end == declLine {
			return true
		}
	}
	return false
}

// FuncMarkerPos returns the position of the marker comment attached to
// the function declaration (same attachment rule as FuncMarked), or
// token.NoPos when the declaration does not carry the marker. The
// position identifies the annotation itself, so audit drivers can credit
// it as used.
func FuncMarkerPos(fset *token.FileSet, file *ast.File, decl *ast.FuncDecl, marker string) token.Pos {
	markerComment := func(cg *ast.CommentGroup) token.Pos {
		if cg == nil {
			return token.NoPos
		}
		for _, c := range cg.List {
			if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
				return c.Pos()
			}
		}
		return token.NoPos
	}
	if pos := markerComment(decl.Doc); pos != token.NoPos {
		return pos
	}
	declLine := fset.Position(decl.Pos()).Line
	for _, cg := range file.Comments {
		pos := markerComment(cg)
		if pos == token.NoPos {
			continue
		}
		end := fset.Position(cg.End()).Line
		if end == declLine-1 || end == declLine {
			return pos
		}
	}
	return token.NoPos
}

// TypeMarked reports whether the type declaration carries the marker,
// either on the TypeSpec's own doc or on the enclosing GenDecl's doc
// (`//amoeba:enum` above a single-spec `type Foo int` attaches to the
// GenDecl).
func TypeMarked(gen *ast.GenDecl, spec *ast.TypeSpec, marker string) bool {
	return commentMarks(spec.Doc, marker) || commentMarks(spec.Comment, marker) ||
		(gen != nil && len(gen.Specs) == 1 && commentMarks(gen.Doc, marker))
}

// MarkedFuncs returns the file's function declarations carrying the
// marker annotation.
func MarkedFuncs(fset *token.FileSet, file *ast.File, marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if FuncMarked(fset, file, fd, marker) {
			out = append(out, fd)
		}
	}
	return out
}
