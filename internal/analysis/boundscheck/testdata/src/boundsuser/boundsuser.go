// Package boundsuser exercises the boundscheck contract: constants
// outside a declared //amoeba:range — on a local annotated type, an
// imported annotated type, or an annotated struct field — are flagged;
// in-range constants, runtime values, and suppressed sites are not.
package boundsuser

import "amoeba/internal/units"

// Utilisation is a load fraction of capacity; slight overload is legal.
//
//amoeba:range (0,1.5]
type Utilisation float64

// Config carries annotated fields with open and closed bounds.
type Config struct {
	// Quantile is the QoS latency quantile.
	//
	//amoeba:range (0,1)
	Quantile float64
	// Headroom multiplies provisioned capacity.
	//
	//amoeba:range [1,4]
	Headroom float64
	// Period has no annotation: any constant is legal.
	Period float64
}

// LocalType covers constants typed as the locally annotated type.
func LocalType() {
	_ = Utilisation(0.8)    // in range: fine
	_ = Utilisation(1.5)    // closed upper bound: fine
	_ = Utilisation(0)      // want `constant 0 is outside Utilisation's declared range \(0,1\.5\]`
	_ = Utilisation(2)      // want `constant 2 is outside Utilisation's declared range`
	var u Utilisation = 1.7 // want `constant 1\.7 is outside Utilisation's declared range`
	_ = u

	const overload Utilisation = 1.9 // want `constant 1\.9 is outside Utilisation's declared range`
	_ = overload
}

// ImportedType covers constants typed as the imported annotated type.
func ImportedType() {
	_ = units.Fraction(0.95) // in range: fine
	_ = units.Fraction(95)   // want `constant 95 is outside Fraction's declared range \[0,1\]`
	_ = units.Seconds(1e9)   // unannotated type: fine
	var raw float64
	_ = units.Fraction(raw) // runtime value: boundscheck only sees constants
}

// TakesFraction receives the imported annotated type, so an implicit
// constant conversion at the call site is checked too.
func TakesFraction(f units.Fraction) {}

// CallSites covers implicit conversions at calls.
func CallSites() {
	TakesFraction(0.5) // fine
	TakesFraction(1.2) // want `constant 1\.2 is outside Fraction's declared range`
}

// FieldWrites covers annotated struct fields in literals and
// assignments.
func FieldWrites() {
	_ = Config{Quantile: 0.95, Headroom: 1.25} // fine
	_ = Config{Quantile: 1}                    // want `constant 1 is outside field Quantile's declared range \(0,1\)`
	_ = Config{0.5, 9, 10}                     // want `constant 9 is outside field Headroom's declared range \[1,4\]`
	var c Config
	c.Headroom = 2   // fine
	c.Headroom = 0.5 // want `constant 0\.5 is outside field Headroom's declared range`
	c.Period = 1e6   // unannotated field: fine
	//amoeba:allow boundscheck stress test deliberately over-provisions
	c.Headroom = 8
	_ = c
}
