// Package boundsmalformed carries an unparseable range annotation;
// boundscheck must report it rather than silently ignoring the contract.
package boundsmalformed

// Broken has a malformed interval (no comma).
//
//amoeba:range (0 1]
type Broken float64
