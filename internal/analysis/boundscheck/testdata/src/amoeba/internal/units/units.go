// Package units is a minimal stub of the repository's internal/units
// carrying the Fraction range annotation, so boundsuser can exercise
// cross-package annotation lookup.
package units

// Fraction is a dimensionless ratio constrained to the unit interval.
//
//amoeba:range [0,1]
type Fraction float64

// Seconds is a duration (unannotated: any constant is legal).
type Seconds float64
