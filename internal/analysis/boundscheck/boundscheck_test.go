package boundscheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amoeba/internal/analysis"
)

func TestParseInterval(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		in05    bool // whether 0.5 is inside
		in0     bool // whether 0 is inside
		in1     bool // whether 1 is inside
	}{
		{"[0,1]", false, true, true, true},
		{"(0,1]", false, true, false, true},
		{"[0,1)", false, true, true, false},
		{"(0,1)", false, true, false, false},
		{" (0, 1.5] ", false, true, false, true},
		{"[-1,0.75]", false, true, true, false},
		{"0,1", true, false, false, false},
		{"[0,1", true, false, false, false},
		{"[1,0]", true, false, false, false},
		{"[a,b]", true, false, false, false},
		{"[0 1]", true, false, false, false},
		{"", true, false, false, false},
	}
	for _, c := range cases {
		iv, err := parseInterval(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseInterval(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if got := iv.contains(0.5); got != c.in05 {
			t.Errorf("%q contains(0.5) = %v, want %v", c.in, got, c.in05)
		}
		if got := iv.contains(0); got != c.in0 {
			t.Errorf("%q contains(0) = %v, want %v", c.in, got, c.in0)
		}
		if got := iv.contains(1); got != c.in1 {
			t.Errorf("%q contains(1) = %v, want %v", c.in, got, c.in1)
		}
	}
}

// TestMalformedAnnotationReported loads a testdata package whose only
// annotation is unparseable and asserts the analyzer reports it. (The
// want-comment harness cannot express this case: the diagnostic lands on
// the annotation comment's own line, which a line comment cannot share
// with a want comment.)
func TestMalformedAnnotationReported(t *testing.T) {
	loader := analysis.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
	diags, err := analysis.Run(loader, []string{"boundsmalformed"}, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed range annotation") {
		t.Errorf("diagnostic %q does not mention the malformed annotation", diags[0].Message)
	}
}
