// Package boundscheck enforces declared numeric ranges. A named type or
// struct field can carry a range annotation in its doc (or trailing)
// comment:
//
//	//amoeba:range (0,1]
//
// with the usual interval notation: square bracket = inclusive bound,
// parenthesis = exclusive. boundscheck then flags every compile-time
// constant that lands outside the interval:
//
//   - constants typed as an annotated named type, wherever they appear
//     (conversions, implicit conversions at call sites and assignments,
//     const declarations), and
//   - constants written to an annotated struct field, in composite
//     literals (keyed or positional) and plain assignments.
//
// Only constants are checked — runtime values are the job of the
// Validate methods this repository pairs with every config struct. The
// annotation is the machine-checked twin of the prose "in (0,1]" that
// doc comments already carry: percentiles, utilisations, EWMA factors
// and margin fractions are all trivially transposable float64 constants,
// and a transposed 95 for 0.95 type-checks silently.
//
// Annotations on types and fields of *imported* packages are honoured
// too (the annotation tables of dependencies are read through the
// loader), so a constant flowing into controller.Config.SwitchInMargin
// from another package is still range-checked. Malformed annotations in
// the package under analysis are themselves reported.
package boundscheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer is the boundscheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundscheck",
	Doc:  "flag constants outside a declared //amoeba:range interval",
	Run:  run,
}

// rangeMarker introduces a range annotation inside a comment.
const rangeMarker = "//amoeba:range"

// interval is a numeric interval with per-bound openness.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

func (iv interval) contains(v float64) bool {
	if v < iv.lo || (iv.loOpen && v == iv.lo) {
		return false
	}
	if v > iv.hi || (iv.hiOpen && v == iv.hi) {
		return false
	}
	return true
}

func (iv interval) String() string {
	open, close := "[", "]"
	if iv.loOpen {
		open = "("
	}
	if iv.hiOpen {
		close = ")"
	}
	return fmt.Sprintf("%s%g,%g%s", open, iv.lo, iv.hi, close)
}

// parseInterval parses "[0,1]", "(0,1.5]", etc.
func parseInterval(s string) (interval, error) {
	s = strings.TrimSpace(s)
	if len(s) < 5 {
		return interval{}, fmt.Errorf("interval %q too short", s)
	}
	var iv interval
	switch s[0] {
	case '[':
	case '(':
		iv.loOpen = true
	default:
		return interval{}, fmt.Errorf("interval %q must open with [ or (", s)
	}
	switch s[len(s)-1] {
	case ']':
	case ')':
		iv.hiOpen = true
	default:
		return interval{}, fmt.Errorf("interval %q must close with ] or )", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 2 {
		return interval{}, fmt.Errorf("interval %q needs exactly one comma", s)
	}
	var err error
	if iv.lo, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return interval{}, fmt.Errorf("interval %q: bad lower bound", s)
	}
	if iv.hi, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return interval{}, fmt.Errorf("interval %q: bad upper bound", s)
	}
	if iv.hi < iv.lo {
		return interval{}, fmt.Errorf("interval %q: bounds out of order", s)
	}
	return iv, nil
}

// malformed is one unparseable annotation, positioned for reporting.
type malformed struct {
	pos token.Pos
	err error
}

// table holds the parsed annotations of one package, keyed by the
// declaration position of the annotated type name or field name.
type table struct {
	ranges    map[token.Pos]interval
	malformed []malformed
}

// rangeFromComments extracts the annotation from the comment groups.
func rangeFromComments(t *table, namePos []token.Pos, groups ...*ast.CommentGroup) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, rangeMarker)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			iv, err := parseInterval(rest)
			if err != nil {
				t.malformed = append(t.malformed, malformed{pos: c.Pos(), err: err})
				continue
			}
			for _, p := range namePos {
				t.ranges[p] = iv
			}
		}
	}
}

// buildTable scans a package's files for annotations.
func buildTable(files []*ast.File) *table {
	t := &table{ranges: make(map[token.Pos]interval)}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				// A single-spec type declaration keeps the doc on the
				// GenDecl; attribute it to the spec's name.
				if n.Tok == token.TYPE && len(n.Specs) == 1 {
					if ts, ok := n.Specs[0].(*ast.TypeSpec); ok {
						rangeFromComments(t, []token.Pos{ts.Name.Pos()}, n.Doc)
					}
				}
			case *ast.TypeSpec:
				rangeFromComments(t, []token.Pos{n.Name.Pos()}, n.Doc, n.Comment)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					var pos []token.Pos
					for _, name := range field.Names {
						pos = append(pos, name.Pos())
					}
					if len(pos) > 0 {
						rangeFromComments(t, pos, field.Doc, field.Comment)
					}
				}
			}
			return true
		})
	}
	return t
}

// checker carries the per-run state: the analyzed package's table plus
// lazily built tables for its dependencies.
type checker struct {
	pass *analysis.Pass
	own  *table
	deps map[string]*table
}

// rangeFor looks up the annotation on a type name or field object.
func (c *checker) rangeFor(obj types.Object) (interval, bool) {
	if obj == nil || obj.Pkg() == nil {
		return interval{}, false
	}
	if obj.Pkg() == c.pass.Pkg {
		iv, ok := c.own.ranges[obj.Pos()]
		return iv, ok
	}
	path := obj.Pkg().Path()
	t, ok := c.deps[path]
	if !ok {
		t = &table{ranges: map[token.Pos]interval{}}
		if c.pass.Deps != nil {
			if dep, loaded := c.pass.Deps(path); loaded {
				t = buildTable(dep.Files)
			}
		}
		c.deps[path] = t
	}
	iv, ok := t.ranges[obj.Pos()]
	return iv, ok
}

// typeRange resolves the annotation of a (possibly named) type.
func (c *checker) typeRange(t types.Type) (string, interval, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", interval{}, false
	}
	iv, ok := c.rangeFor(named.Obj())
	return named.Obj().Name(), iv, ok
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, own: buildTable(pass.Files), deps: make(map[string]*table)}
	for _, m := range c.own.malformed {
		pass.Reportf(m.pos, "malformed range annotation: %v", m.err)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				c.checkCompositeLit(n)
			case *ast.AssignStmt:
				c.checkAssign(n)
			case ast.Expr:
				return !c.checkTypedConstant(n)
			}
			return true
		})
	}
	return nil
}

// constValue extracts a float from a constant expression's recorded
// value.
func constValue(tv types.TypeAndValue) (float64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// checkTypedConstant flags constants whose own type carries a range.
// It reports whether the node was flagged (the caller then prunes the
// subtree so the literal inside a flagged conversion is not re-flagged).
func (c *checker) checkTypedConstant(e ast.Expr) bool {
	// References to declared constants are skipped: the declaration site
	// (here or in the constant's own package) carries the diagnostic.
	switch ref := e.(type) {
	case *ast.Ident:
		if _, isConst := c.pass.TypesInfo.Uses[ref].(*types.Const); isConst {
			return false
		}
	case *ast.SelectorExpr:
		if _, isConst := c.pass.TypesInfo.Uses[ref.Sel].(*types.Const); isConst {
			return false
		}
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	name, iv, ok := c.typeRange(tv.Type)
	if !ok {
		return false
	}
	v, ok := constValue(tv)
	if !ok || iv.contains(v) {
		return false
	}
	c.pass.Reportf(e.Pos(), "constant %v is outside %s's declared range %v", v, name, iv)
	return true
}

// checkCompositeLit range-checks constant fields of struct literals
// against field annotations.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field types.Object
		value := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			field = c.pass.TypesInfo.Uses[key]
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		c.checkFieldWrite(field, value)
	}
}

// checkAssign range-checks constant assignments to annotated fields.
func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		c.checkFieldWrite(c.pass.TypesInfo.Uses[sel.Sel], as.Rhs[i])
	}
}

func (c *checker) checkFieldWrite(field types.Object, value ast.Expr) {
	if field == nil {
		return
	}
	iv, ok := c.rangeFor(field)
	if !ok {
		return
	}
	v, ok := constValue(c.pass.TypesInfo.Types[value])
	if !ok || iv.contains(v) {
		return
	}
	c.pass.Reportf(value.Pos(), "constant %v is outside field %s's declared range %v",
		v, field.Name(), iv)
}
