package boundscheck_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/boundscheck"
)

func TestBoundsCheck(t *testing.T) {
	analysistest.Run(t, "testdata", boundscheck.Analyzer, "boundsuser")
}
