package shardsafe_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/shardsafe"
)

func TestShardSafe(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "shardwork", "shardmulti", "shardfield")
}
