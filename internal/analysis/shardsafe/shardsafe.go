// Package shardsafe certifies the shard-isolation model of the parallel
// sweep drivers: a function annotated //amoeba:shard is one worker's run
// body, and two workers must not be able to share mutable state except
// through the channels handed to them as parameters. The analyzer walks
// the static call graph from every shard root (the same resolver-backed
// walk hotpath uses) and flags, in the root and in everything it
// reaches:
//
//   - writes to package-level mutable state (assignments, ++/--, and
//     in-place builtin mutation via delete/copy whose target is a
//     package-level variable) — two workers racing on a global;
//   - sends on channels not declared inside the function (a parameter,
//     the receiver, or a local make are fine; a package-level or
//     otherwise captured channel is not) — results must flow through
//     the channel the driver passed in;
//   - sync.Mutex.Lock / sync.RWMutex.Lock/RLock — a shard body needing
//     a lock means it is touching shared state; the audited escape is
//     the //amoeba:shardsafe annotation below, not an inline lock;
//   - package-level math/rand and math/rand/v2 calls — the global
//     source is shared mutable state (seedflow/nodeterminism flag it
//     for determinism; here it is also a cross-shard race).
//
// A call into a function annotated //amoeba:shardsafe is trusted and not
// walked: the annotation marks an audited concurrency-safe API boundary
// (the experiments singleflight memo is the canonical example — shared
// state by design, internally synchronised, named in DESIGN.md §12). In
// audit mode (amoeba-vet -stale) the walk continues past the boundary
// just far enough to check the marker still shields a real violation;
// findings behind a live boundary are still trusted and never reported.
//
// The walk resolves every edge the shared resolver can justify:
// statically bound calls, interface dispatch devirtualized against the
// module-wide class-hierarchy index (DESIGN.md §13), calls through
// func-valued locals with a provably complete binding set, and calls
// through func-valued struct fields resolved by the module-wide
// field-flow layer (DESIGN.md §16) — dynamic edges are named in the
// chain ("via dynamic dispatch on ... => ...", "via field cell.onDrain
// => ..."), and function literals stored in fields are walked in their
// defining package's context. Standard-library internals and bindings
// the trackers abandon as tainted remain the residual gaps, backed at
// runtime by the -race suite over the same drivers. Transitive findings
// are reported at the call edge in the analyzed package with the chain
// in the message, so an //amoeba:allow shardsafe suppression can sit
// next to code the package owns; an //amoeba:allow shardsafe at the
// violating line itself — even inside a walked dependency — suppresses
// the finding for every root that reaches it.
package shardsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer flags shared mutable state reachable from //amoeba:shard
// worker functions.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "//amoeba:shard workers (and everything they reach) must not write package-level " +
		"state, send on non-parameter channels, lock mutexes, or touch global math/rand; " +
		"audited shared APIs are annotated //amoeba:shardsafe",
	Run: run,
}

func run(pass *analysis.Pass) error {
	w := &walker{
		pass:    pass,
		resolve: analysis.NewResolver(pass),
		allows:  analysis.NewAllowSites(pass.Fset),
		memo:    make(map[*types.Func][]finding),
		litMemo: make(map[*ast.FuncLit][]finding),
	}
	for _, f := range pass.Files {
		for _, fd := range analysis.MarkedFuncs(pass.Fset, f, analysis.AnnotShard) {
			w.reportRoot(f, fd)
		}
	}
	return nil
}

// finding is one isolation violation reachable from a shard root: what
// was touched and the call chain that gets there.
type finding struct {
	desc  string
	chain []string
}

type walker struct {
	pass     *analysis.Pass
	resolve  *analysis.Resolver
	allows   *analysis.AllowSites
	memo     map[*types.Func][]finding
	busy     []*types.Func // in-progress stack for cycle cut-off
	litMemo  map[*ast.FuncLit][]finding
	busyLits []*ast.FuncLit
}

// spliceVia rewrites a finding chain for a dynamic edge: the edge label
// already names the callee the chain starts with, so it replaces the
// chain's first element.
func spliceVia(via string, chain []string) []string {
	if via == "" {
		return chain
	}
	return append([]string{via}, chain[1:]...)
}

// reportRoot walks one //amoeba:shard declaration, reporting direct
// violations at their site and transitive ones at the call edge.
func (w *walker) reportRoot(file *ast.File, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	root := rootName(fd)
	info := w.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if desc, ok := violationDesc(info, fd, n); ok {
			w.pass.Reportf(n.Pos(), "shard worker %s %s", root, desc)
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, edge := range w.resolve.CalleeEdges(info, call) {
				for _, f := range w.edgeFindings(edge) {
					chain := spliceVia(edge.Via, f.chain)
					w.pass.ReportfVia(call.Pos(), chain, "shard worker %s reaches code that %s via %s",
						root, f.desc, strings.Join(chain, " -> "))
				}
			}
		}
		return true
	})
}

// edgeFindings dispatches one callee edge: named functions analyze by
// declaration, field-stored function literals by body in their defining
// package; locally bound literals yield nothing because their bodies are
// walked inline by the enclosing inspection.
func (w *walker) edgeFindings(edge analysis.CalleeEdge) []finding {
	if edge.Lit != nil {
		if edge.LitPkg == nil {
			return nil // literal bound to a local: its body is walked inline
		}
		return w.analyzeLit(edge.Lit, edge.LitPkg)
	}
	return w.analyze(edge.Fn)
}

// analyze computes the isolation violations inside fn and everything it
// reaches, one finding per distinct description, memoized per package
// walk. A //amoeba:shardsafe annotation on fn short-circuits the walk.
func (w *walker) analyze(fn *types.Func) []finding {
	if fs, ok := w.memo[fn]; ok {
		return fs
	}
	for _, b := range w.busy {
		if b == fn {
			return nil // cycle: the first visit owns the result
		}
	}
	decl, pkg := w.resolve.DeclOf(fn)
	if decl == nil || decl.Body == nil {
		w.memo[fn] = nil
		return nil // no syntax: stdlib gap, screened by violationDesc
	}
	file := w.resolve.FileOf(pkg, decl)
	boundary := token.NoPos
	if file != nil {
		boundary = analysis.FuncMarkerPos(w.pass.Fset, file, decl, analysis.AnnotShardSafe)
	}
	if boundary != token.NoPos && !w.pass.Audit {
		w.memo[fn] = nil // audited concurrency-safe boundary
		return nil
	}
	w.busy = append(w.busy, fn)
	defer func() { w.busy = w.busy[:len(w.busy)-1] }()

	info := w.resolve.InfoOf(pkg)
	out := w.findingsIn(decl, decl.Body, info, file, analysis.FuncDisplayName(w.pass.Pkg, fn))
	if boundary != token.NoPos {
		// Audit mode walked past the boundary only to test its liveness:
		// a non-empty subtree means the marker still shields something.
		if len(out) > 0 {
			w.pass.UseAnnotation(boundary)
		}
		w.memo[fn] = nil
		return nil
	}
	w.memo[fn] = out
	return out
}

// analyzeLit computes the isolation violations inside a function literal
// stored in a struct field, walked in the type-checking context of its
// defining package. The chain head is "function literal" so that
// spliceVia replaces it with the edge label naming the field hop.
// Literals cannot carry a //amoeba:shardsafe boundary (the marker
// attaches to declarations), so the walk never short-circuits here.
func (w *walker) analyzeLit(lit *ast.FuncLit, pkg *types.Package) []finding {
	if fs, ok := w.litMemo[lit]; ok {
		return fs
	}
	for _, b := range w.busyLits {
		if b == lit {
			return nil // cycle: the first visit owns the result
		}
	}
	w.busyLits = append(w.busyLits, lit)
	defer func() { w.busyLits = w.busyLits[:len(w.busyLits)-1] }()

	out := w.findingsIn(lit, lit.Body, w.resolve.InfoOf(pkg), w.resolve.FileAt(pkg, lit.Pos()),
		"function literal")
	w.litMemo[lit] = out
	return out
}

// findingsIn scans one walked body, collecting one finding per distinct
// violation description with self as the chain head. scope is the
// enclosing function syntax (declaration or literal) used to decide
// channel locality.
func (w *walker) findingsIn(scope ast.Node, body *ast.BlockStmt, info *types.Info, file *ast.File, self string) []finding {
	var out []finding
	seen := make(map[string]bool)
	add := func(f finding) {
		if !seen[f.desc] {
			seen[f.desc] = true
			out = append(out, f)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		// An //amoeba:allow shardsafe at the violating line inside a
		// walked body suppresses the finding for every root that
		// reaches it: one annotation at the origin, not one per edge.
		if pos, ok := w.allows.Covering(file, n.Pos(), w.pass.Analyzer.Name); ok {
			w.pass.UseAnnotation(pos)
			return true
		}
		if desc, ok := violationDesc(info, scope, n); ok {
			add(finding{desc: desc, chain: []string{self}})
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, edge := range w.resolve.CalleeEdges(info, call) {
				for _, f := range w.edgeFindings(edge) {
					add(finding{desc: f.desc, chain: append([]string{self}, spliceVia(edge.Via, f.chain)...)})
				}
			}
		}
		return true
	})
	return out
}

// violationDesc classifies one AST node inside the function whose syntax
// is scope (a declaration or a walked literal) against the
// shard-isolation rules.
func violationDesc(info *types.Info, scope ast.Node, n ast.Node) (desc string, ok bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if v := pkgLevelTarget(info, lhs); v != nil {
				return "writes package-level " + v.Name(), true
			}
		}
	case *ast.IncDecStmt:
		if v := pkgLevelTarget(info, n.X); v != nil {
			return "writes package-level " + v.Name(), true
		}
	case *ast.SendStmt:
		if v, shared := sharedChannel(info, scope, n.Chan); shared {
			name := "channel expression"
			if v != nil {
				name = v.Name()
			}
			return "sends on " + name + ", a channel not passed in as a parameter", true
		}
	case *ast.CallExpr:
		if id, isBuiltin := n.Fun.(*ast.Ident); isBuiltin && len(n.Args) > 0 {
			if _, ok := info.Uses[id].(*types.Builtin); ok &&
				(id.Name == "delete" || id.Name == "copy") {
				if v := pkgLevelTarget(info, n.Args[0]); v != nil {
					return "mutates package-level " + v.Name() + " via " + id.Name, true
				}
			}
		}
		if pkg, name := analysis.PkgFunc(info, n); pkg == "math/rand" || pkg == "math/rand/v2" {
			return "calls global " + pkg + "." + name + ", shared mutable state across shards", true
		}
		if pkg, recv, name := analysis.Method(info, n); pkg == "sync" {
			if (recv == "Mutex" && name == "Lock") ||
				(recv == "RWMutex" && (name == "Lock" || name == "RLock")) {
				return "locks sync." + recv + ", a sign of state shared across shards", true
			}
		}
	}
	return "", false
}

// pkgLevelTarget unwraps an assignment/mutation target (selector, index,
// star, paren chains) to its base identifier and returns the variable if
// it is package-level. Blank assignments and locals return nil.
func pkgLevelTarget(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			if !ok || v.IsField() || v.Pkg() == nil {
				return nil
			}
			if v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// sharedChannel reports whether the channel expression of a send escapes
// the shard: its base variable is declared outside the enclosing
// function syntax (package-level, or not an identifier at all).
// Parameters, the receiver, and local makes all live inside scope's
// source range and are allowed.
func sharedChannel(info *types.Info, scope ast.Node, ch ast.Expr) (*types.Var, bool) {
	for {
		switch x := ch.(type) {
		case *ast.ParenExpr:
			ch = x.X
		case *ast.SelectorExpr:
			ch = x.X
		case *ast.IndexExpr:
			ch = x.X
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			if !ok {
				return nil, true
			}
			if v.Pos() >= scope.Pos() && v.Pos() < scope.End() {
				return v, false
			}
			return v, true
		default:
			return nil, true // computed channel: not locally traceable
		}
	}
}

func rootName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
