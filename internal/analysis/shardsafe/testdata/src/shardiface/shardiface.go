// Package shardiface declares an interface whose implementers live in a
// sibling package, so devirtualization must resolve through the
// dependency loader.
package shardiface

// Store accepts per-shard results.
type Store interface{ Put(x int) }
