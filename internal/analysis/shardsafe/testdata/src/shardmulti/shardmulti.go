// Package shardmulti exercises cross-package devirtualization for
// shardsafe: the interface lives in shardiface, its live implementer in
// shardimpl, and the dispatch resolves through the Deps loader.
package shardmulti

import (
	"shardiface"
	"shardimpl"
)

var keep = shardimpl.New()

// Worker dispatches into the implementing package.
//
//amoeba:shard
func Worker(jobs <-chan int, s shardiface.Store) {
	for j := range jobs {
		s.Put(j) // want `shard worker Worker reaches code that writes package-level Total via dynamic dispatch on shardiface\.Store\.Put => shardimpl\.GlobalStore\.Put`
	}
}
