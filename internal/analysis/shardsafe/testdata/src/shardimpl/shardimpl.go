// Package shardimpl implements shardiface.Store against package-level
// state, giving the cross-package dispatch a violation to reach.
package shardimpl

import "shardiface"

// Total is package-level mutable state two shards would race on.
var Total int

// GlobalStore writes the package-level total.
type GlobalStore struct{}

// Put accumulates into the shared total.
func (GlobalStore) Put(x int) { Total += x }

// New returns the store behind the interface, instantiating GlobalStore
// so the live-type index sees it.
func New() shardiface.Store { return GlobalStore{} }
