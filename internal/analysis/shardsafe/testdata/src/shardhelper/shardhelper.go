// Package shardhelper provides callees that shardsafe's walk reaches
// across the package boundary through the dependency loader.
package shardhelper

import "sync"

// Total is package-level mutable state two shards could race on.
var Total int

var mu sync.Mutex

// Accumulate writes the package-level counter.
func Accumulate(x int) {
	Total += x
}

// Pure touches nothing shared.
func Pure(x int) int { return x * 2 }

// Guarded is an audited concurrency-safe API: it synchronises its shared
// state internally and shard workers may call it.
//
//amoeba:shardsafe internally synchronised; audited in the harness tests
func Guarded(x int) int {
	mu.Lock()
	defer mu.Unlock()
	Total += x
	return Total
}
