// Package shardfield exercises the field-sensitive func-value flow for
// shardsafe: callbacks stored in struct fields of a worker cell are
// walked with "via field" chains — including function literals, whose
// channel-locality is judged against the literal's own scope — while
// fields that receive opaque caller values resolve to nothing.
package shardfield

var (
	total int
	leak  = make(chan int, 1)
)

func flushGlobal() { total++ }

// cell is one worker's state with callbacks bound at construction.
type cell struct {
	onFlush func()
	hooks   []func()
}

func newCell() *cell {
	c := &cell{onFlush: flushGlobal}
	c.hooks = append(c.hooks, flushGlobal)
	return c
}

// Run reaches the package-level write through the field-stored callback.
//
//amoeba:shard
func Run(jobs <-chan int, c *cell) {
	for range jobs {
		c.onFlush() // want `shard worker Run reaches code that writes package-level total via field cell\.onFlush => flushGlobal`
	}
}

// RunHooks ranges over the container field; the element local resolves
// through its field source.
//
//amoeba:shard
func RunHooks(jobs <-chan int, c *cell) {
	for range jobs {
		for _, h := range c.hooks {
			h() // want `shard worker RunHooks reaches code that writes package-level total via func value h => field cell\.hooks => flushGlobal`
		}
	}
}

// sender stores a literal that leaks onto a package-level channel; the
// send is judged against the literal's scope, so the channel is shared.
type sender struct {
	send func(int)
}

func newSender() *sender {
	return &sender{send: func(v int) { leak <- v }}
}

//amoeba:shard
func Ship(jobs <-chan int, s *sender) {
	for j := range jobs {
		s.send(j) // want `shard worker Ship reaches code that sends on leak, a channel not passed in as a parameter via field sender\.send => function literal`
	}
}

// local stores a literal whose plumbing stays inside its own scope:
// channels it makes itself are shard-internal, no finding.
type local struct {
	pump func(int) int
}

func newLocal() *local {
	return &local{pump: func(v int) int {
		ch := make(chan int, 1)
		ch <- v
		return <-ch
	}}
}

//amoeba:shard
func Pump(jobs <-chan int, out chan<- int, l *local) {
	for j := range jobs {
		out <- l.pump(j)
	}
}

// custom receives its callback from an unseen caller: the field taints
// and the walk stays quiet.
type custom struct {
	fn func()
}

// SetFn is the external write that makes custom.fn opaque.
func SetFn(c *custom, f func()) {
	c.fn = f
}

//amoeba:shard
func Quiet(jobs <-chan int, c *custom) {
	for range jobs {
		c.fn()
	}
}
