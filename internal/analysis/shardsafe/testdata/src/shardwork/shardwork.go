// Package shardwork exercises shardsafe: package-level writes,
// non-parameter channel sends, mutex locks, and global rand reachable
// from //amoeba:shard workers are flagged; parameter channels, locals,
// receiver state, and //amoeba:shardsafe boundaries are not.
package shardwork

import (
	"math/rand"
	"sync"

	"shardhelper"
)

var (
	counter int
	results = make(chan int, 8)
	table   = map[string]int{}
	mu      sync.Mutex
)

// Worker is a clean shard body: it reads jobs from a parameter channel,
// keeps its state local, and sends results on a parameter channel.
//
//amoeba:shard
func Worker(jobs <-chan int, out chan<- int) {
	sum := 0
	for j := range jobs {
		sum += shardhelper.Pure(j)
	}
	out <- sum
}

// WritesGlobal mutates package state from a shard body.
//
//amoeba:shard
func WritesGlobal(jobs <-chan int) {
	for j := range jobs {
		counter += j // want `shard worker WritesGlobal writes package-level counter`
	}
}

// SendsGlobal leaks results onto a channel the driver never handed it.
//
//amoeba:shard
func SendsGlobal(jobs <-chan int) {
	for j := range jobs {
		results <- j // want `shard worker SendsGlobal sends on results, a channel not passed in as a parameter`
	}
}

// LocalChannel fans out to helper goroutines over channels it made
// itself — shard-internal plumbing, allowed.
//
//amoeba:shard
func LocalChannel(jobs <-chan int, out chan<- int) {
	inner := make(chan int, 4)
	go func() {
		for j := range jobs {
			inner <- j
		}
		close(inner)
	}()
	for v := range inner {
		out <- v
	}
}

// Locks acquires a shared mutex inside the shard body.
//
//amoeba:shard
func Locks(jobs <-chan int) {
	for range jobs {
		mu.Lock() // want `shard worker Locks locks sync\.Mutex, a sign of state shared across shards`
		mu.Unlock()
	}
}

// GlobalRand draws from the process-wide source.
//
//amoeba:shard
func GlobalRand(out chan<- int) {
	out <- rand.Int() // want `shard worker GlobalRand calls global math/rand\.Int, shared mutable state across shards`
}

// Transitive reaches a package-level write through a local helper and a
// cross-package callee; both report at the call edge with the chain.
//
//amoeba:shard
func Transitive(jobs <-chan int) {
	for j := range jobs {
		bump(j)                   // want `shard worker Transitive reaches code that writes package-level counter via bump`
		shardhelper.Accumulate(j) // want `shard worker Transitive reaches code that writes package-level Total via shardhelper\.Accumulate`
	}
}

func bump(x int) { counter += x }

// Audited calls through a //amoeba:shardsafe boundary: the walk trusts
// the annotation and stays quiet about the lock and write inside.
//
//amoeba:shard
func Audited(jobs <-chan int, out chan<- int) {
	for j := range jobs {
		out <- shardhelper.Guarded(j)
	}
}

// DeletesGlobal mutates a package-level map in place.
//
//amoeba:shard
func DeletesGlobal(keys <-chan string) {
	for k := range keys {
		delete(table, k) // want `shard worker DeletesGlobal mutates package-level table via delete`
	}
}

// Allowed documents a deliberate exception with the standard annotation.
//
//amoeba:shard
func Allowed(jobs <-chan int) {
	for j := range jobs {
		//amoeba:allow shardsafe single-writer stat, read only after the pool joins
		counter += j
	}
}

// mutator models interface dispatch into shared state.
type mutator interface{ Mutate() }

type globalMutator struct{}

func (globalMutator) Mutate() { counter++ }

// defaultMutator instantiates globalMutator, making it live for the
// devirtualization index.
var defaultMutator mutator = globalMutator{}

// DispatchShard reaches the package-level write through devirtualized
// interface dispatch.
//
//amoeba:shard
func DispatchShard(jobs <-chan int, m mutator) {
	for range jobs {
		m.Mutate() // want `shard worker DispatchShard reaches code that writes package-level counter via dynamic dispatch on mutator\.Mutate => globalMutator\.Mutate`
	}
}

// FuncValueShard reaches the write through a func-valued local.
//
//amoeba:shard
func FuncValueShard(jobs <-chan int) {
	f := bump
	for j := range jobs {
		f(j) // want `shard worker FuncValueShard reaches code that writes package-level counter via func value f => bump`
	}
}

// NotAShard is unannotated: shardsafe roots nowhere here, so the write
// is another analyzer's business.
func NotAShard() {
	counter++
}
