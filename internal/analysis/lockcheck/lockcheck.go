// Package lockcheck flags mutexes held across blocking hand-off points:
// channel sends, sync.WaitGroup.Wait, and goroutine spawns. The
// repository's fan-out pattern (experiments.Suite.Prefetch, the profiling
// worker pools) makes this the likeliest deadlock shape: a goroutine that
// sends or waits while holding a lock that the receiving side needs. The
// analyzer performs a conservative intra-procedural scan — it tracks
// Lock/Unlock pairs per syntactic path and does not model aliasing — so
// a deliberate held-across-send design can be annotated with
// //amoeba:allow lockcheck <reason>.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"amoeba/internal/analysis"
)

// Analyzer flags sync.Mutex/RWMutex held across channel sends, WaitGroup
// waits, and goroutine spawns.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "mutexes must not be held across channel sends, sync.WaitGroup.Wait, " +
		"or goroutine spawns; release the lock or annotate the design",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanStmts(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				scanStmts(pass, n.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	return nil
}

// scanStmts walks one statement list in order, tracking which mutexes are
// held. Branch bodies are scanned with a copy of the held set and assumed
// not to change it for the fall-through path (conservative on both
// sides: a branch that unlocks suppresses nothing after it, a branch
// that locks flags nothing after it).
func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		scanStmt(pass, s, held)
	}
}

func scanStmt(pass *analysis.Pass, s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			applyCall(pass, call, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for every statement
		// that follows — which is exactly what this analyzer audits —
		// so a deferred unlock does not clear the held set.
	case *ast.SendStmt:
		reportHeld(pass, s.Arrow, held, "channel send")
	case *ast.GoStmt:
		reportHeld(pass, s.Pos(), held, "goroutine spawn")
		// The spawned body runs without the spawner's locks; the
		// top-level FuncLit walk scans it with a fresh held set.
	case *ast.BlockStmt:
		scanStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, held)
		}
		scanStmts(pass, s.Body.List, clone(held))
		if s.Else != nil {
			scanStmt(pass, s.Else, clone(held))
		}
	case *ast.ForStmt:
		scanStmts(pass, s.Body.List, clone(held))
	case *ast.RangeStmt:
		scanStmts(pass, s.Body.List, clone(held))
	case *ast.SwitchStmt:
		scanCases(pass, s.Body, held)
	case *ast.TypeSwitchStmt:
		scanCases(pass, s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				reportHeld(pass, send.Arrow, held, "channel send")
			}
			scanStmts(pass, cc.Body, clone(held))
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				applyCall(pass, call, held)
			}
		}
	}
}

func scanCases(pass *analysis.Pass, body *ast.BlockStmt, held map[string]token.Pos) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			scanStmts(pass, cc.Body, clone(held))
		}
	}
}

// applyCall updates the held set for mutex operations and flags
// WaitGroup waits under a lock.
func applyCall(pass *analysis.Pass, call *ast.CallExpr, held map[string]token.Pos) {
	pkg, recv, name := analysis.Method(pass.TypesInfo, call)
	if pkg != "sync" {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := types.ExprString(sel.X)
	switch {
	case (recv == "Mutex" || recv == "RWMutex") && (name == "Lock" || name == "RLock"):
		held[key] = call.Pos()
	case (recv == "Mutex" || recv == "RWMutex") && (name == "Unlock" || name == "RUnlock"):
		delete(held, key)
	case recv == "WaitGroup" && name == "Wait":
		reportHeld(pass, call.Pos(), held, "WaitGroup.Wait")
	}
}

func reportHeld(pass *analysis.Pass, pos token.Pos, held map[string]token.Pos, what string) {
	keys := make([]string, 0, len(held))
	for mu := range held {
		keys = append(keys, mu)
	}
	sort.Strings(keys)
	for _, mu := range keys {
		pass.Reportf(pos, "%s while holding %s (locked at %s): release the lock first "+
			"or annotate //amoeba:allow lockcheck", what, mu, pass.Fset.Position(held[mu]))
	}
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
