package lockcheck_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "lockuser")
}
