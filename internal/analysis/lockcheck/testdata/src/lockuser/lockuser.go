// Package lockuser exercises lockcheck: mutexes held across channel
// sends, WaitGroup waits, and goroutine spawns are flagged; released or
// annotated sites are not.
package lockuser

import "sync"

// T bundles the synchronisation fixtures.
type T struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

// SendHeld sends while holding the mutex.
func (t *T) SendHeld() {
	t.mu.Lock()
	t.ch <- 1 // want `channel send while holding t\.mu`
	t.mu.Unlock()
}

// SendReleased releases before sending and stays legal.
func (t *T) SendReleased() {
	t.mu.Lock()
	t.mu.Unlock()
	t.ch <- 1
}

// WaitUnderDefer holds via a deferred unlock across a WaitGroup wait.
func (t *T) WaitUnderDefer() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wg.Wait() // want `WaitGroup\.Wait while holding t\.mu`
}

// SpawnHeld spawns a goroutine while holding a read lock.
func (t *T) SpawnHeld() {
	t.rw.RLock()
	go t.drain() // want `goroutine spawn while holding t\.rw`
	t.rw.RUnlock()
}

// SpawnReleased spawns after releasing; the spawned body sends without
// the spawner's lock and is scanned independently.
func (t *T) SpawnReleased() {
	t.mu.Lock()
	t.mu.Unlock()
	go func() {
		t.ch <- 1
	}()
}

// BranchRelease releases on the fall-through path before sending.
func (t *T) BranchRelease(b bool) {
	t.mu.Lock()
	if b {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.ch <- 1
}

// SelectSendHeld sends from a select arm under the lock.
func (t *T) SelectSendHeld(stop chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case t.ch <- 1: // want `channel send while holding t\.mu`
	case <-stop:
	}
}

// Annotated documents a deliberate held-across-send design.
func (t *T) Annotated() {
	t.mu.Lock()
	//amoeba:allow lockcheck buffered channel drained by this goroutine
	t.ch <- 1
	t.mu.Unlock()
}

func (t *T) drain() { <-t.ch }
