// Package exhaustive enforces switch exhaustiveness over the repo's
// closed enumerations. A type annotated //amoeba:enum declares that its
// member set is closed:
//
//   - on a constant-backed type (obs.Kind, metrics.Backend,
//     controller.Verdict) the members are the package-level constants of
//     that exact type declared in the defining package;
//   - on an interface (obs.Event) the members are the concrete named
//     types of the defining package that implement it.
//
// Every switch whose tag has an annotated type, and every type switch
// over an annotated interface, must name all members in its case
// clauses. A default clause is permitted — out-of-range values from
// decoding external input still need a home — but it does not satisfy
// coverage: the point is that adding a seventh event kind breaks the
// build at every decode and fold site instead of sliding into a silent
// default drop.
//
// The annotation is read from the defining package's syntax (via the
// pass dependency loader), so switches in importing packages are held to
// the same contract as switches next to the declaration.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer flags switches over //amoeba:enum types that do not name
// every member of the enumeration.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches over //amoeba:enum types must name every member " +
		"(constants of the type, or implementing types for an interface enum); " +
		"default clauses handle out-of-range values but do not satisfy coverage",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, marked: make(map[*types.TypeName]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				c.valueSwitch(n)
			case *ast.TypeSwitchStmt:
				c.typeSwitch(n)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	marked map[*types.TypeName]bool // enum annotation, memoized per type name
}

// enumMarked reports whether the named type's declaration carries
// //amoeba:enum, consulting the defining package's syntax.
func (c *checker) enumMarked(named *types.Named) bool {
	tn := named.Obj()
	if tn.Pkg() == nil {
		return false
	}
	if v, ok := c.marked[tn]; ok {
		return v
	}
	files := c.definingFiles(tn.Pkg())
	v := false
	for _, f := range files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != tn.Name() {
					continue
				}
				v = analysis.TypeMarked(gen, ts, analysis.AnnotEnum)
			}
		}
	}
	c.marked[tn] = v
	return v
}

// definingFiles returns the syntax of the package that declares an enum
// candidate: the current pass's files, or a loaded dependency's.
func (c *checker) definingFiles(pkg *types.Package) []*ast.File {
	if pkg == c.pass.Pkg {
		return c.pass.Files
	}
	if c.pass.Deps == nil {
		return nil
	}
	if dep, ok := c.pass.Deps(pkg.Path()); ok {
		return dep.Files
	}
	return nil
}

// valueSwitch checks a tagged switch over a constant-backed enum.
func (c *checker) valueSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tagType := c.pass.TypesInfo.Types[sw.Tag].Type
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok || types.IsInterface(named.Underlying()) || !c.enumMarked(named) {
		return
	}
	members := constMembers(named)
	if len(members) == 0 {
		return
	}
	covered := make(map[types.Object]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		for _, e := range cc.List {
			if obj := constObj(c.pass.TypesInfo, e); obj != nil {
				covered[obj] = true
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		c.pass.Reportf(sw.Pos(), "switch over //amoeba:enum type %s misses %s",
			typeName(named), joinMissing(missing))
	}
}

// typeSwitch checks a type switch over an interface enum.
func (c *checker) typeSwitch(sw *ast.TypeSwitchStmt) {
	subject := typeSwitchSubject(sw)
	if subject == nil {
		return
	}
	subjType := c.pass.TypesInfo.Types[subject].Type
	if subjType == nil {
		return
	}
	named, ok := types.Unalias(subjType).(*types.Named)
	if !ok || !types.IsInterface(named.Underlying()) || !c.enumMarked(named) {
		return
	}
	iface := named.Underlying().(*types.Interface)
	members := implementingTypes(named.Obj().Pkg(), iface)
	if len(members) == 0 {
		return
	}
	covered := make(map[*types.TypeName]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		for _, e := range cc.List {
			t := c.pass.TypesInfo.Types[e].Type
			if t == nil {
				continue
			}
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := types.Unalias(t).(*types.Named); ok {
				covered[n.Obj()] = true
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		c.pass.Reportf(sw.Pos(), "type switch over //amoeba:enum interface %s misses %s",
			typeName(named), joinMissing(missing))
	}
}

// typeSwitchSubject extracts x from `switch x.(type)` or
// `switch y := x.(type)`.
func typeSwitchSubject(sw *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	ta, ok := e.(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// constMembers returns the package-level constants of exactly the named
// type, declared in its defining package, in declaration-name order.
func constMembers(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if cst, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(cst.Type(), named) {
			out = append(out, cst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// implementingTypes returns the concrete named types of the defining
// package that implement the interface (by value or pointer receiver).
func implementingTypes(pkg *types.Package, iface *types.Interface) []*types.TypeName {
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var out []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named.Underlying()) {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, tn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// constObj resolves a case expression to the constant object it names,
// through plain identifiers and package-qualified selectors.
func constObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if cst, ok := info.Uses[e].(*types.Const); ok {
			return cst
		}
	case *ast.SelectorExpr:
		if cst, ok := info.Uses[e.Sel].(*types.Const); ok {
			return cst
		}
	case *ast.ParenExpr:
		return constObj(info, e.X)
	}
	return nil
}

func typeName(named *types.Named) string {
	tn := named.Obj()
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return fmt.Sprintf("%s.%s", tn.Pkg().Name(), tn.Name())
}

func joinMissing(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names, ", ")
}
