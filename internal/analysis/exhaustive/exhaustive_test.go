package exhaustive_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", exhaustive.Analyzer, "enumdef", "enumuser")
}
