// Package enumdef declares closed enums and switches over them in the
// defining package.
package enumdef

// Kind is a closed event kind.
//
//amoeba:enum
type Kind string

// The members of Kind.
const (
	KindA Kind = "a"
	KindB Kind = "b"
	KindC Kind = "c"
)

// Other is unannotated: switches over it stay free-form.
type Other int

// The members of Other.
const (
	O1 Other = iota
	O2
)

// Event is a closed interface enum; its members are the implementing
// types of this package.
//
//amoeba:enum
type Event interface{ kind() Kind }

// Alpha implements Event by value.
type Alpha struct{}

func (Alpha) kind() Kind { return KindA }

// Beta implements Event by pointer.
type Beta struct{}

func (*Beta) kind() Kind { return KindB }

// Full covers every member, including via a multi-value clause.
func Full(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB, KindC:
		return 2
	}
	return 0
}

// Missing drops KindC into the default.
func Missing(k Kind) int {
	switch k { // want `switch over //amoeba:enum type enumdef\.Kind misses KindC`
	case KindA:
		return 1
	case KindB:
		return 2
	default:
		return 0
	}
}

// Untagged boolean switches are out of scope.
func Untagged(k Kind) int {
	switch {
	case k == KindA:
		return 1
	}
	return 0
}

// FreeForm switches over the unannotated type without findings.
func FreeForm(o Other) int {
	switch o {
	case O1:
		return 1
	}
	return 0
}

// FullType covers both implementers; nil needs no clause.
func FullType(e Event) Kind {
	switch e := e.(type) {
	case Alpha:
		return e.kind()
	case *Beta:
		return e.kind()
	case nil:
		return KindA
	}
	return KindA
}

// MissingType misses Beta.
func MissingType(e Event) int {
	switch e.(type) { // want `type switch over //amoeba:enum interface enumdef\.Event misses Beta`
	case Alpha:
		return 1
	}
	return 0
}

// Allowed documents a deliberately partial fold.
func Allowed(k Kind) int {
	//amoeba:allow exhaustive this fold only consumes KindA
	switch k {
	case KindA:
		return 1
	}
	return 0
}
