// Package enumuser switches over enums imported from enumdef; the
// //amoeba:enum annotation is read from the dependency's syntax.
package enumuser

import "enumdef"

// Fold covers all three kinds.
func Fold(k enumdef.Kind) int {
	switch k {
	case enumdef.KindA, enumdef.KindB, enumdef.KindC:
		return 1
	}
	return 0
}

// Partial misses two members across the package boundary.
func Partial(k enumdef.Kind) int {
	switch k { // want `switch over //amoeba:enum type enumdef\.Kind misses KindB, KindC`
	case enumdef.KindA:
		return 1
	}
	return 0
}

// PartialType misses Alpha via the dependency-loaded annotation.
func PartialType(e enumdef.Event) int {
	switch e.(type) { // want `type switch over //amoeba:enum interface enumdef\.Event misses Alpha`
	case *enumdef.Beta:
		return 1
	}
	return 0
}
