package analysis

// Field-sensitive func-value flow (DESIGN.md §16): the module-wide
// propagation pass that closes the last documented call-graph blind spot
// of the walkers — func values stored in struct fields (g.onDrain bound
// at construction and invoked later, callbacks parked in config structs,
// handler slices on sinks and worker cells).
//
// The devirt layer (devirt.go) tracks func values bound to *locals*; a
// value written into a struct field escaped that tracking, so a call
// through the field resolved to nothing and hotpath/shardsafe silently
// stopped. This pass scans the whole devirtualization universe once and
// builds, for every func-bearing field of every named struct type, the
// set of func values the module ever stores there:
//
//   - composite literals, keyed and positional: engine{onDrain: drain},
//     including literals nested in slices/maps and constructor returns;
//   - field assignments: e.onDrain = drain, e.handlers[0] = f,
//     e.byName["k"] = f, and e.handlers = append(e.handlers, f);
//   - container fields ([]func, [N]func, map[K]func) collect their
//     element values; the per-field edge set is the union over elements;
//   - field-to-field flow: e.onDrain = cfg.OnDrain records an alias, so
//     callbacks threaded through config structs resolve transitively;
//   - locals with a provably complete binding set on the right-hand
//     side resolve through the devirt tracking.
//
// The pass is field-sensitive but instance-insensitive: all values of a
// struct type share one edge set per field, the standard call-graph
// over-approximation. A field is *tainted* — resolves to no edges, so
// the walkers stop exactly as they did before this layer existed — the
// moment any write in the universe puts an opaque value in it: a
// parameter, a call result, an untrackable expression, a whole opaque
// slice/map, an append with ellipsis, or its address being taken.
// Interface-typed fields are not tracked here at all: calls through them
// are interface dispatch, which the devirt class-hierarchy index already
// resolves.
//
// Resolved edges carry Via labels naming the field hop, e.g.
// "field engine.onDrain => drain" or
// "field engine.onDrain => field config.OnDrain => function literal",
// which the walkers splice into their diagnostic chains. Function
// literals bound to fields carry the package whose syntax covers them
// (CalleeEdge.LitPkg), so a walker can analyze the literal's body in the
// right type-checking context even when the registration site lives in
// another package.
//
// Residual caveat, shared with the devirt live-type index: the universe
// of one pass is the analyzed package plus its transitive module-local
// imports. A write performed by a package that *imports* the defining
// package is invisible to passes that cannot see that importer; the
// full-module amoeba-vet sweep analyzes every package in turn, so every
// write site is covered by the passes rooted where it matters.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FieldFlowEnabled gates the field-sensitive func-value flow layer. It
// exists so the analyzer-speed benchmark (BenchmarkAmoebaVetRepo) can
// measure the devirt-only configuration on the same hardware as the full
// graph; it is never cleared outside that benchmark.
var FieldFlowEnabled = true

// fieldIndex is the lazily built module-wide field-flow state.
type fieldIndex struct {
	bindings  map[*types.Var][]CalleeEdge // field origin -> raw stored values
	aliases   map[*types.Var][]*types.Var // field origin -> source field origins
	localSrc  map[*types.Var][]*types.Var // field origin -> trackable local sources
	tainted   map[*types.Var]bool
	label     map[*types.Var]string // field origin -> "engine.onDrain"
	resolved  map[*types.Var]fieldResult
	resolving map[*types.Var]bool
}

// fieldResult memoizes one field's resolution: its labeled edge set and
// whether the binding set is provably complete.
type fieldResult struct {
	edges []CalleeEdge
	sound bool
}

// fieldIndexOf returns the field index, scanning the universe on first
// use.
func (r *Resolver) fieldIndexOf() *fieldIndex {
	idx := r.index()
	if idx.fields == nil {
		idx.fields = &fieldIndex{
			bindings:  make(map[*types.Var][]CalleeEdge),
			aliases:   make(map[*types.Var][]*types.Var),
			localSrc:  make(map[*types.Var][]*types.Var),
			tainted:   make(map[*types.Var]bool),
			label:     make(map[*types.Var]string),
			resolved:  make(map[*types.Var]fieldResult),
			resolving: make(map[*types.Var]bool),
		}
		idx.fields.scan(idx.univ)
	}
	return idx.fields
}

// fieldEdges resolves a call or func-value use of a struct field to the
// func values the module stores in that field, each edge labeled with the
// field hop. nil when the layer is disabled, the field is tainted, or no
// write was seen (the value must come from somewhere the tracking cannot
// follow — same contract as funcVarEdges).
func (r *Resolver) fieldEdges(f *types.Var) []CalleeEdge {
	if !DevirtEnabled || !FieldFlowEnabled {
		return nil
	}
	f = f.Origin()
	if fieldKind(f.Type()) == fieldUntracked {
		return nil
	}
	fi := r.fieldIndexOf()
	edges, sound := fi.resolve(r, f)
	if !sound {
		return nil
	}
	if edges == nil {
		edges = []CalleeEdge{} // complete-but-empty (nil stores, cycle head): not unsound
	}
	return edges
}

// Field classification: the flow tracks func-typed fields and
// slice/array/map fields holding funcs (their element values).
const (
	fieldUntracked = iota
	fieldFunc
	fieldContainer
)

func fieldKind(t types.Type) int {
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Signature:
		return fieldFunc
	case *types.Slice:
		if isFuncType(u.Elem()) {
			return fieldContainer
		}
	case *types.Array:
		if isFuncType(u.Elem()) {
			return fieldContainer
		}
	case *types.Map:
		if isFuncType(u.Elem()) {
			return fieldContainer
		}
	}
	return fieldUntracked
}

func isFuncType(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Signature)
	return ok
}

// scan walks every file of the universe once, collecting field writes.
func (fi *fieldIndex) scan(univ []*pkgSyntax) {
	for _, ps := range univ {
		for _, f := range ps.files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					fi.scanComposite(ps, n)
				case *ast.AssignStmt:
					fi.scanAssign(ps, n)
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						// The field's address escaped: writes through the
						// pointer are untrackable.
						if fv := fieldSelTarget(ps.info, n.X); fv != nil {
							fi.tainted[fv] = true
						}
					}
				}
				return true
			})
		}
	}
}

// scanComposite records the func-bearing field values of one struct
// composite literal.
func (fi *fieldIndex) scanComposite(ps *pkgSyntax, lit *ast.CompositeLit) {
	t := ps.info.TypeOf(lit)
	if t == nil {
		return
	}
	t = types.Unalias(t)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	owner := ""
	if named, ok := t.(*types.Named); ok {
		owner = named.Obj().Name()
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			fv, ok := ps.info.Uses[key].(*types.Var)
			if !ok || !fv.IsField() {
				continue
			}
			field, value = fv, kv.Value
		} else {
			if i >= st.NumFields() {
				continue
			}
			field, value = st.Field(i), elt
		}
		fi.recordField(ps, field, owner, value)
	}
}

// scanAssign records field writes performed by one assignment statement.
func (fi *fieldIndex) scanAssign(ps *pkgSyntax, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple assignment: the values are call results, untrackable.
		for _, lhs := range n.Lhs {
			if fv := fieldSelTarget(ps.info, lhs); fv != nil {
				fi.tainted[fv] = true
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		rhs := n.Rhs[i]
		lhs = unparen(lhs)
		// e.handlers[k] = f / e.byName["k"] = f: an element write.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if fv, owner := funcBearingField(ps.info, ix.X); fv != nil && fieldKind(fv.Type()) == fieldContainer {
				fi.setLabel(fv, owner)
				fi.recordTarget(ps, fv, rhs)
			}
			continue
		}
		fv, owner := funcBearingField(ps.info, lhs)
		if fv == nil {
			continue
		}
		fi.recordField(ps, fv, owner, rhs)
	}
}

// recordField dispatches one field <- value pair on the field's kind.
func (fi *fieldIndex) recordField(ps *pkgSyntax, field *types.Var, owner string, value ast.Expr) {
	field = field.Origin()
	switch fieldKind(field.Type()) {
	case fieldFunc:
		fi.setLabel(field, owner)
		fi.recordTarget(ps, field, value)
	case fieldContainer:
		fi.setLabel(field, owner)
		fi.recordContainer(ps, field, value)
	}
}

// recordContainer records the elements a container field receives. An
// opaque whole-container value (anything but nil or a composite literal
// of known elements, or append over the field itself) taints the field.
func (fi *fieldIndex) recordContainer(ps *pkgSyntax, field *types.Var, value ast.Expr) {
	value = unparen(value)
	if tv, ok := ps.info.Types[value]; ok && tv.IsNil() {
		return
	}
	if lit, ok := value.(*ast.CompositeLit); ok {
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			fi.recordTarget(ps, field, elt)
		}
		return
	}
	// e.handlers = append(e.handlers, f, g): growth of the field itself.
	if call, ok := value.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := ps.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				base, _ := funcBearingField(ps.info, call.Args[0])
				if base != nil && base.Origin() == field && !call.Ellipsis.IsValid() {
					for _, arg := range call.Args[1:] {
						fi.recordTarget(ps, field, arg)
					}
					return
				}
			}
		}
	}
	fi.tainted[field] = true
}

// recordTarget records one func value stored in a field, mirroring the
// devirt local-binding grammar: literals, named funcs and method values,
// conversions around them, field and trackable-local sources. Anything
// else taints the field.
func (fi *fieldIndex) recordTarget(ps *pkgSyntax, field *types.Var, e ast.Expr) {
	if tv, ok := ps.info.Types[e]; ok && tv.IsNil() {
		return // field = nil: calling it panics, nothing to resolve
	}
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		// A conversion to a func type wraps the value without changing
		// the target: unwrap H(f).
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := ps.info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		break
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		fi.bindings[field] = append(fi.bindings[field], CalleeEdge{Lit: e, LitPkg: ps.pkg})
		return
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr:
		var id *ast.Ident
		switch e := unwrapCallee(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		}
		switch obj := ps.info.Uses[id].(type) {
		case *types.Func:
			fi.bindings[field] = append(fi.bindings[field], CalleeEdge{Fn: obj.Origin()})
			return
		case *types.Var:
			if obj.IsField() && fieldKind(obj.Type()) != fieldUntracked {
				fi.aliases[field] = append(fi.aliases[field], obj.Origin())
				return
			}
			if isTrackableLocal(obj) {
				fi.localSrc[field] = append(fi.localSrc[field], obj)
				return
			}
		}
	}
	fi.tainted[field] = true
}

// setLabel records the diagnostic label of a field once, first writer
// wins (the scan order is deterministic).
func (fi *fieldIndex) setLabel(field *types.Var, owner string) {
	field = field.Origin()
	if _, ok := fi.label[field]; ok {
		return
	}
	name := field.Name()
	if owner != "" {
		name = owner + "." + name
	}
	fi.label[field] = name
}

func (fi *fieldIndex) labelOf(field *types.Var) string {
	if l, ok := fi.label[field]; ok {
		return l
	}
	return field.Name()
}

// resolve computes the labeled edge set of one field: its direct
// bindings, plus everything flowing in through field aliases and
// trackable locals. sound is false when the set cannot be proven
// complete (a taint anywhere in the closure).
func (fi *fieldIndex) resolve(r *Resolver, field *types.Var) ([]CalleeEdge, bool) {
	if res, ok := fi.resolved[field]; ok {
		return res.edges, res.sound
	}
	if fi.resolving[field] {
		return nil, true // cycle: the first visit owns the result
	}
	fi.resolving[field] = true
	defer delete(fi.resolving, field)

	if fi.tainted[field] {
		fi.resolved[field] = fieldResult{sound: false}
		return nil, false
	}
	if len(fi.bindings[field]) == 0 && len(fi.aliases[field]) == 0 && len(fi.localSrc[field]) == 0 {
		// Never assigned anything we saw: the value comes from somewhere
		// the tracking cannot follow.
		fi.resolved[field] = fieldResult{sound: false}
		return nil, false
	}
	label := fi.labelOf(field)
	var out []CalleeEdge
	seen := make(map[string]bool)
	add := func(e CalleeEdge) {
		key := e.Via
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	for _, e := range fi.bindings[field] {
		for _, le := range fi.labelEdge(r, label, e) {
			add(le)
		}
	}
	for _, src := range fi.aliases[field] {
		sub, sound := fi.resolve(r, src)
		if !sound {
			fi.resolved[field] = fieldResult{sound: false}
			return nil, false
		}
		for _, e := range sub {
			e.Via = "field " + label + " => " + e.Via
			add(e)
		}
	}
	for _, v := range fi.localSrc[field] {
		raw := r.rawVarEdges(v)
		if raw == nil {
			fi.resolved[field] = fieldResult{sound: false}
			return nil, false
		}
		for _, e := range raw {
			if e.Lit != nil && e.LitPkg == nil {
				// A literal bound to the local and stored in the field:
				// callers resolving the field live anywhere in the module,
				// so the edge must carry the literal's defining package.
				e.LitPkg = v.Pkg()
			}
			for _, le := range fi.labelEdge(r, label, e) {
				add(le)
			}
		}
	}
	fi.resolved[field] = fieldResult{edges: out, sound: true}
	return out, true
}

// labelEdge renders one raw edge with the field hop prefixed, expanding
// interface method values against the devirt index.
func (fi *fieldIndex) labelEdge(r *Resolver, label string, e CalleeEdge) []CalleeEdge {
	switch {
	case e.Lit != nil:
		e.Via = "field " + label + " => function literal"
		return []CalleeEdge{e}
	case e.Via != "":
		e.Via = "field " + label + " => " + e.Via
		return []CalleeEdge{e}
	case e.Fn != nil:
		if sig, ok := e.Fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			types.IsInterface(sig.Recv().Type().Underlying()) {
			return r.dispatchEdges(e.Fn, "field "+label)
		}
		e.Via = "field " + label + " => " + FuncDisplayName(r.pass.Pkg, e.Fn)
		return []CalleeEdge{e}
	}
	return nil
}

// fieldSelTarget resolves an expression (through parens, indexes, and
// stars) to the func-bearing struct field it denotes, for taint sites
// like &e.onDrain and &e.handlers[0]. nil when the expression is not a
// tracked field selection.
func fieldSelTarget(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			fv, _ := funcBearingField(info, e)
			return fv
		}
	}
}

// funcBearingField resolves a selector expression to a tracked struct
// field and the name of the selected type, (nil, "") otherwise.
func funcBearingField(info *types.Info, e ast.Expr) (*types.Var, string) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fv, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fv.IsField() || fieldKind(fv.Type()) == fieldUntracked {
		return nil, ""
	}
	owner := ""
	if t := info.TypeOf(sel.X); t != nil {
		t = types.Unalias(t)
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			owner = named.Obj().Name()
		}
	}
	return fv.Origin(), owner
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
