// Package hotpath extends the determinism analyzers from syntactic
// checks to reachability: a call-graph walk rooted at the kernel entry
// points flags any statically resolvable path to an API that must never
// run inside simulated time.
//
// Roots, per analyzed package:
//
//   - functions annotated //amoeba:noalloc or //amoeba:hotpath;
//   - callback arguments handed to the simulator's scheduling methods
//     ((*sim.Simulator).At / After / Every): function literals are
//     walked in place, named functions and methods are walked behind
//     the argument position.
//
// Forbidden APIs (each with the invariant it would break):
//
//   - time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker/AfterFunc
//     — wall clock and wall-clock timers do not exist in simulated time;
//   - package-level math/rand and math/rand/v2 functions — the global
//     source is shared mutable state and breaks seeded determinism
//     (methods on a locally seeded generator are fine);
//   - sync.Mutex.Lock, sync.RWMutex.Lock/RLock — the kernel is
//     single-threaded by design; blocking inside a callback stalls the
//     event loop;
//   - file and network I/O (os open/read/write/stat family and os.File
//     methods, net dialers and listeners, fmt print family, log) —
//     unbounded latency and external state inside the hot loop.
//
// fmt.Sprintf/Sprint/Sprintln/Errorf are deliberately not forbidden:
// they are pure formatting (no writer), and the engine legitimately
// builds labels with Sprintf behind a telemetry-bus guard. alloccheck
// separately flags them inside //amoeba:noalloc bodies.
//
// The walk follows every edge the resolver can justify: package-level
// functions and concrete-receiver methods of the analyzed package and of
// its module-local dependencies (whose syntax the vet driver has already
// loaded), interface dispatch devirtualized against the module-wide
// class-hierarchy index (narrowed to types actually instantiated or
// address-taken — DESIGN.md §13), calls through func-valued locals whose
// binding set the intra-procedural tracking can prove complete, and
// calls through func-valued struct fields resolved by the module-wide
// field-flow layer (DESIGN.md §16) — callbacks registered on engines,
// sinks, and configs are walked wherever their bodies live, including
// function literals stored in fields by dependency packages. Dynamic
// edges are named in the diagnostic chain, e.g. "via dynamic dispatch on
// Sink.Consume => MetricsSink.Consume" or "via field engine.onDrain =>
// drain". Calls into packages without loaded syntax (the standard
// library) are still not followed — the forbidden table screens the
// stdlib surface directly — and bindings either tracker abandons as
// tainted (values from unseen callers or external writers) are the
// residual gap that the runtime AllocsPerRun and golden-determinism
// tests backstop; escapecheck closes the allocation half of it with the
// compiler's own escape analysis.
//
// Transitive findings are reported at the call edge in the analyzed
// package with the full chain in the message, so an //amoeba:allow
// hotpath suppression can sit next to code the package owns; an
// //amoeba:allow hotpath at the violating line itself — even inside a
// walked dependency — suppresses the finding for every root that
// reaches it, so one annotation at the origin covers the whole fan-in.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer flags forbidden-API calls reachable from kernel entry points.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "code reachable from //amoeba:noalloc///amoeba:hotpath functions and simulator " +
		"callbacks must not touch wall clocks, global math/rand, mutexes, or file/network I/O",
	Run: run,
}

func run(pass *analysis.Pass) error {
	w := &walker{
		pass:    pass,
		resolve: analysis.NewResolver(pass),
		allows:  analysis.NewAllowSites(pass.Fset),
		memo:    make(map[*types.Func][]reach),
		litMemo: make(map[*ast.FuncLit][]reach),
	}
	for _, f := range pass.Files {
		for _, fd := range analysis.MarkedFuncs(pass.Fset, f, analysis.AnnotNoAlloc) {
			w.reportRoot(fd.Body, rootName(fd))
		}
		for _, fd := range analysis.MarkedFuncs(pass.Fset, f, analysis.AnnotHotpath) {
			w.reportRoot(fd.Body, rootName(fd))
		}
		w.callbackRoots(f)
	}
	return nil
}

// reach is one forbidden API reachable from a function: the API, the
// invariant it breaks, and the call chain that gets there.
type reach struct {
	api   string
	why   string
	chain []string
}

type walker struct {
	pass     *analysis.Pass
	resolve  *analysis.Resolver
	allows   *analysis.AllowSites
	memo     map[*types.Func][]reach
	busy     []*types.Func // in-progress stack for cycle cut-off
	litMemo  map[*ast.FuncLit][]reach
	busyLits []*ast.FuncLit
}

// spliceVia rewrites a reach chain for a dynamic edge: the edge label
// already names the callee the chain starts with, so it replaces the
// chain's first element.
func spliceVia(via string, chain []string) []string {
	if via == "" {
		return chain
	}
	return append([]string{via}, chain[1:]...)
}

// callbackRoots treats the function arguments of simulator scheduling
// calls as hot-path roots.
func (w *walker) callbackRoots(f *ast.File) {
	info := w.pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, recv, name := analysis.Method(info, call)
		if recv != "Simulator" || !simPackage(pkg) {
			return true
		}
		if name != "At" && name != "After" && name != "Every" {
			return true
		}
		arg := call.Args[len(call.Args)-1]
		switch arg := arg.(type) {
		case *ast.FuncLit:
			w.reportRoot(arg.Body, "sim."+name+" callback")
		default:
			for _, edge := range w.resolve.FuncValueEdges(info, arg) {
				if edge.Lit != nil && edge.LitPkg == nil {
					// A literal bound to a local and scheduled by name:
					// the literal's body is the callback.
					w.reportRoot(edge.Lit.Body, "sim."+name+" callback")
					continue
				}
				callee := edge.Via
				if callee == "" {
					callee = analysis.FuncDisplayName(w.pass.Pkg, edge.Fn)
				}
				for _, r := range w.edgeReaches(edge) {
					chain := spliceVia(edge.Via, r.chain)
					w.pass.ReportfVia(arg.Pos(), chain, "sim.%s callback %s reaches %s (%s) via %s",
						name, callee, r.api, r.why, strings.Join(chain, " -> "))
				}
			}
		}
		return true
	})
}

// reportRoot walks one root body in the analyzed package, reporting
// direct forbidden calls and transitive reaches at their call edges.
func (w *walker) reportRoot(body *ast.BlockStmt, root string) {
	if body == nil {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if api, why, ok := forbiddenAPI(info, call); ok {
			w.pass.Reportf(call.Pos(), "hot path %s calls %s (%s)", root, api, why)
			return true
		}
		for _, edge := range w.resolve.CalleeEdges(info, call) {
			for _, r := range w.edgeReaches(edge) {
				chain := spliceVia(edge.Via, r.chain)
				w.pass.ReportfVia(call.Pos(), chain, "hot path %s reaches %s (%s) via %s",
					root, r.api, r.why, strings.Join(chain, " -> "))
			}
		}
		return true
	})
}

// edgeReaches dispatches one callee edge: named functions analyze by
// declaration, field-stored function literals by body in their defining
// package; locally bound literals yield nothing because their bodies are
// walked inline by the enclosing inspection.
func (w *walker) edgeReaches(edge analysis.CalleeEdge) []reach {
	if edge.Lit != nil {
		if edge.LitPkg == nil {
			return nil // literal bound to a local: its body is walked inline
		}
		return w.analyzeLit(edge.Lit, edge.LitPkg)
	}
	return w.analyze(edge.Fn)
}

// analyze computes the forbidden APIs reachable from fn, one reach per
// distinct API, memoized across the package walk.
func (w *walker) analyze(fn *types.Func) []reach {
	if rs, ok := w.memo[fn]; ok {
		return rs
	}
	for _, b := range w.busy {
		if b == fn {
			return nil // cycle: the first visit owns the result
		}
	}
	decl, pkg := w.resolve.DeclOf(fn)
	if decl == nil || decl.Body == nil {
		w.memo[fn] = nil
		return nil
	}
	w.busy = append(w.busy, fn)
	defer func() { w.busy = w.busy[:len(w.busy)-1] }()

	out := w.reachesIn(decl.Body, w.resolve.InfoOf(pkg), w.resolve.FileOf(pkg, decl),
		analysis.FuncDisplayName(w.pass.Pkg, fn))
	w.memo[fn] = out
	return out
}

// analyzeLit computes the forbidden APIs reachable from a function
// literal stored in a struct field, walked in the type-checking context
// of its defining package. The chain head is "function literal" so that
// spliceVia replaces it with the edge label naming the field hop.
func (w *walker) analyzeLit(lit *ast.FuncLit, pkg *types.Package) []reach {
	if rs, ok := w.litMemo[lit]; ok {
		return rs
	}
	for _, b := range w.busyLits {
		if b == lit {
			return nil // cycle: the first visit owns the result
		}
	}
	w.busyLits = append(w.busyLits, lit)
	defer func() { w.busyLits = w.busyLits[:len(w.busyLits)-1] }()

	out := w.reachesIn(lit.Body, w.resolve.InfoOf(pkg), w.resolve.FileAt(pkg, lit.Pos()),
		"function literal")
	w.litMemo[lit] = out
	return out
}

// reachesIn scans one walked body, collecting one reach per distinct
// forbidden API with self as the chain head.
func (w *walker) reachesIn(body *ast.BlockStmt, info *types.Info, file *ast.File, self string) []reach {
	var out []reach
	seen := make(map[string]bool)
	add := func(r reach) {
		if !seen[r.api] {
			seen[r.api] = true
			out = append(out, r)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// An //amoeba:allow hotpath at the violating line inside a
		// walked body suppresses the finding for every root that
		// reaches it: one annotation at the origin, not one per edge.
		if pos, ok := w.allows.Covering(file, call.Pos(), w.pass.Analyzer.Name); ok {
			w.pass.UseAnnotation(pos)
			return true
		}
		if api, why, ok := forbiddenAPI(info, call); ok {
			add(reach{api: api, why: why, chain: []string{self}})
			return true
		}
		for _, edge := range w.resolve.CalleeEdges(info, call) {
			for _, r := range w.edgeReaches(edge) {
				add(reach{api: r.api, why: r.why,
					chain: append([]string{self}, spliceVia(edge.Via, r.chain)...)})
			}
		}
		return true
	})
	return out
}

// forbiddenAPI classifies a call against the forbidden-API table.
func forbiddenAPI(info *types.Info, call *ast.CallExpr) (api, why string, ok bool) {
	if info == nil {
		return "", "", false
	}
	if pkg, name := analysis.PkgFunc(info, call); pkg != "" {
		switch pkg {
		case "time":
			switch name {
			case "Now", "Since", "Until", "Sleep", "After", "Tick",
				"NewTimer", "NewTicker", "AfterFunc":
				return "time." + name, "wall clock in simulated time", true
			}
		case "math/rand", "math/rand/v2":
			return pkg + "." + name, "global rand source breaks seeded determinism", true
		case "os":
			switch name {
			case "Open", "OpenFile", "Create", "ReadFile", "WriteFile",
				"Remove", "RemoveAll", "Mkdir", "MkdirAll", "Stat", "ReadDir":
				return "os." + name, "file I/O in the event loop", true
			}
		case "net":
			switch name {
			case "Dial", "DialTimeout", "DialUDP", "DialTCP", "Listen", "ListenPacket":
				return "net." + name, "network I/O in the event loop", true
			}
		case "fmt":
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, "writer I/O in the event loop", true
			}
		case "log":
			return "log." + name, "logging I/O in the event loop", true
		}
		return "", "", false
	}
	if pkg, recv, name := analysis.Method(info, call); pkg != "" {
		switch {
		case pkg == "sync" && recv == "Mutex" && name == "Lock":
			return "sync.Mutex.Lock", "blocking in the single-threaded kernel", true
		case pkg == "sync" && recv == "RWMutex" && (name == "Lock" || name == "RLock"):
			return "sync.RWMutex." + name, "blocking in the single-threaded kernel", true
		case pkg == "os" && recv == "File" &&
			(name == "Read" || name == "Write" || name == "Seek" || name == "Sync" || name == "Close"):
			return "os.File." + name, "file I/O in the event loop", true
		case pkg == "log" && recv == "Logger":
			return "log.Logger." + name, "logging I/O in the event loop", true
		}
	}
	return "", "", false
}

// simPackage matches the simulator package by module-relative suffix so
// testdata stubs qualify alongside the real amoeba/internal/sim.
func simPackage(pkgPath string) bool {
	return pkgPath == "internal/sim" || strings.HasSuffix(pkgPath, "/internal/sim")
}

func rootName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
