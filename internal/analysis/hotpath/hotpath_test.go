package hotpath_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hotuser", "hotmulti", "hotfield")
}
