// Package hotiface declares an interface whose implementers live in a
// sibling package, so devirtualization must resolve through the
// dependency loader.
package hotiface

// Sink consumes one event.
type Sink interface{ Emit() }
