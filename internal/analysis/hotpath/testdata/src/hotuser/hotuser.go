// Package hotuser exercises hotpath: forbidden APIs reachable from
// annotated functions and simulator callbacks are flagged at the call
// edge — including through devirtualized interface dispatch and
// func-valued locals — while pure formatting, seeded generators, and
// dispatch on interfaces with no live implementer are not.
package hotuser

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"amoeba/internal/sim"
	"hothelper"
)

var mu sync.Mutex

// Fire reads the wall clock directly.
//
//amoeba:noalloc
func Fire() {
	_ = time.Now() // want `hot path Fire calls time\.Now \(wall clock in simulated time\)`
}

// Tick draws from the global rand source.
//
//amoeba:hotpath
func Tick() {
	_ = rand.Int() // want `hot path Tick calls math/rand\.Int \(global rand source breaks seeded determinism\)`
}

// Locked blocks on a mutex.
//
//amoeba:hotpath
func Locked() {
	mu.Lock() // want `hot path Locked calls sync\.Mutex\.Lock \(blocking in the single-threaded kernel\)`
	mu.Unlock()
}

// Transitive reaches the wall clock through a local helper.
//
//amoeba:hotpath
func Transitive() int64 {
	return stamp() // want `hot path Transitive reaches time\.Now \(wall clock in simulated time\) via stamp`
}

func stamp() int64 { return time.Now().UnixNano() }

// CrossPackage reaches file I/O through an imported package.
//
//amoeba:hotpath
func CrossPackage() []byte {
	return hothelper.ReadConfig() // want `hot path CrossPackage reaches os\.ReadFile \(file I/O in the event loop\) via hothelper\.ReadConfig`
}

// Formats may build strings but not write them.
//
//amoeba:hotpath
func Formats(v int) string {
	fmt.Println(v) // want `hot path Formats calls fmt\.Println \(writer I/O in the event loop\)`
	return fmt.Sprintf("%d", v)
}

// Schedule roots the callbacks it hands to the simulator.
func Schedule(s *sim.Simulator) {
	s.After(1, func() {
		time.Sleep(time.Millisecond) // want `hot path sim\.After callback calls time\.Sleep`
	})
	s.At(2, cleanCallback)
	s.Every(3, dirtyCallback) // want `sim\.Every callback dirtyCallback reaches time\.Now \(wall clock in simulated time\) via dirtyCallback`
}

func cleanCallback() { _ = hothelper.Pure(1) }

func dirtyCallback() { _ = time.Now() }

// ticker carries a method used as a callback value.
type ticker struct{}

func (t *ticker) fire() {
	mu.Lock()
	mu.Unlock()
}

// ScheduleMethod roots a bound method callback.
func ScheduleMethod(s *sim.Simulator, t *ticker) {
	s.At(1, t.fire) // want `sim\.At callback ticker\.fire reaches sync\.Mutex\.Lock \(blocking in the single-threaded kernel\) via ticker\.fire`
}

// doer models dispatch with no live implementer: quietDoer is declared
// but never instantiated, so the RTA narrowing keeps the dispatch
// edgeless (plain class-hierarchy analysis would have flagged it).
type doer interface{ Do() }

type quietDoer struct{}

func (quietDoer) Do() { _ = time.Now() }

// Dynamic stays quiet: no instantiated type implements doer.
//
//amoeba:hotpath
func Dynamic(d doer) {
	d.Do()
}

// emitter has exactly one live implementer, so dispatch devirtualizes.
type emitter interface{ Emit() }

type loudEmitter struct{}

func (loudEmitter) Emit() { fmt.Println("emit") }

// newEmitter instantiates loudEmitter, making it live for the index.
func newEmitter() emitter { return loudEmitter{} }

// Dispatch resolves the interface call against the live implementer.
//
//amoeba:hotpath
func Dispatch(e emitter) {
	e.Emit() // want `hot path Dispatch reaches fmt\.Println \(writer I/O in the event loop\) via dynamic dispatch on emitter\.Emit => loudEmitter\.Emit`
}

// FuncValue calls through a local bound to a named function.
//
//amoeba:hotpath
func FuncValue() int64 {
	f := stamp
	return f() // want `hot path FuncValue reaches time\.Now \(wall clock in simulated time\) via func value f => stamp`
}

// AliasValue follows a local alias chain to the binding.
//
//amoeba:hotpath
func AliasValue() int64 {
	f := stamp
	g := f
	return g() // want `hot path AliasValue reaches time\.Now \(wall clock in simulated time\) via func value g => stamp`
}

// BoundMethod calls through a local bound to a method value.
//
//amoeba:hotpath
func BoundMethod(t *ticker) {
	g := t.fire
	g() // want `hot path BoundMethod reaches sync\.Mutex\.Lock \(blocking in the single-threaded kernel\) via func value g => ticker\.fire`
}

// ParamValue calls through a parameter: the binding set is unknowable,
// so the tracking abandons the variable instead of guessing.
//
//amoeba:hotpath
func ParamValue(f func() int64) int64 {
	return f()
}

// Retargeted loses the binding the moment the variable's address
// escapes; no resolution, no finding.
//
//amoeba:hotpath
func Retargeted() int64 {
	f := stamp
	retarget(&f)
	return f()
}

func retarget(p *func() int64) { _ = p }

// SchedulePoll binds a literal to a local and schedules it by name; the
// literal's body roots through the binding (both registrations resolve
// to the same body, deduplicated).
func SchedulePoll(s *sim.Simulator) {
	var poll func()
	poll = func() {
		_ = time.Now() // want `hot path sim\.After callback calls time\.Now \(wall clock in simulated time\)`
		s.After(1, poll)
	}
	s.After(2, poll)
}

// stampAll is a generic helper; calls to an instantiation must resolve
// to its origin declaration or the edge is silently lost.
func stampAll[T any](v T) int64 {
	_ = v
	return time.Now().UnixNano()
}

// Generic calls an explicit instantiation.
//
//amoeba:hotpath
func Generic() int64 {
	return stampAll[int](1) // want `hot path Generic reaches time\.Now \(wall clock in simulated time\) via stampAll`
}

// box carries a method on a generic type.
type box[T any] struct{ v T }

func (b *box[T]) stampIt() int64 {
	_ = b.v
	return time.Now().UnixNano()
}

// GenericMethod calls a method of an instantiated generic type.
//
//amoeba:hotpath
func GenericMethod(b *box[int]) int64 {
	return b.stampIt() // want `hot path GenericMethod reaches time\.Now \(wall clock in simulated time\) via box\.stampIt`
}

// guarded holds a deliberate wall-clock read behind one origin-line
// annotation: every root that reaches it stays quiet.
func guarded() int64 {
	//amoeba:allow hotpath deliberate coarse timestamp, annotated once at the origin
	return time.Now().UnixNano()
}

//amoeba:hotpath
func UsesGuardedA() int64 { return guarded() }

//amoeba:hotpath
func UsesGuardedB() int64 { return guarded() }

// Allowed documents a deliberate wall-clock read.
//
//amoeba:hotpath
func Allowed() int64 {
	//amoeba:allow hotpath coarse profiling timestamp outside sim time
	return time.Now().UnixNano()
}

// Unmarked is not a root; nothing is reported.
func Unmarked() { _ = time.Now() }
