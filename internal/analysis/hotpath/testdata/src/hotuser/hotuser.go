// Package hotuser exercises hotpath: forbidden APIs reachable from
// annotated functions and simulator callbacks are flagged at the call
// edge; pure formatting, seeded generators, and dynamic dispatch are
// not.
package hotuser

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"amoeba/internal/sim"
	"hothelper"
)

var mu sync.Mutex

// Fire reads the wall clock directly.
//
//amoeba:noalloc
func Fire() {
	_ = time.Now() // want `hot path Fire calls time\.Now \(wall clock in simulated time\)`
}

// Tick draws from the global rand source.
//
//amoeba:hotpath
func Tick() {
	_ = rand.Int() // want `hot path Tick calls math/rand\.Int \(global rand source breaks seeded determinism\)`
}

// Locked blocks on a mutex.
//
//amoeba:hotpath
func Locked() {
	mu.Lock() // want `hot path Locked calls sync\.Mutex\.Lock \(blocking in the single-threaded kernel\)`
	mu.Unlock()
}

// Transitive reaches the wall clock through a local helper.
//
//amoeba:hotpath
func Transitive() int64 {
	return stamp() // want `hot path Transitive reaches time\.Now \(wall clock in simulated time\) via stamp`
}

func stamp() int64 { return time.Now().UnixNano() }

// CrossPackage reaches file I/O through an imported package.
//
//amoeba:hotpath
func CrossPackage() []byte {
	return hothelper.ReadConfig() // want `hot path CrossPackage reaches os\.ReadFile \(file I/O in the event loop\) via hothelper\.ReadConfig`
}

// Formats may build strings but not write them.
//
//amoeba:hotpath
func Formats(v int) string {
	fmt.Println(v) // want `hot path Formats calls fmt\.Println \(writer I/O in the event loop\)`
	return fmt.Sprintf("%d", v)
}

// Schedule roots the callbacks it hands to the simulator.
func Schedule(s *sim.Simulator) {
	s.After(1, func() {
		time.Sleep(time.Millisecond) // want `hot path sim\.After callback calls time\.Sleep`
	})
	s.At(2, cleanCallback)
	s.Every(3, dirtyCallback) // want `sim\.Every callback dirtyCallback reaches time\.Now \(wall clock in simulated time\) via dirtyCallback`
}

func cleanCallback() { _ = hothelper.Pure(1) }

func dirtyCallback() { _ = time.Now() }

// ticker carries a method used as a callback value.
type ticker struct{}

func (t *ticker) fire() {
	mu.Lock()
	mu.Unlock()
}

// ScheduleMethod roots a bound method callback.
func ScheduleMethod(s *sim.Simulator, t *ticker) {
	s.At(1, t.fire) // want `sim\.At callback ticker\.fire reaches sync\.Mutex\.Lock \(blocking in the single-threaded kernel\) via ticker\.fire`
}

// doer models dynamic dispatch, the documented blind spot.
type doer interface{ Do() }

// Dynamic cannot be followed through the interface.
//
//amoeba:hotpath
func Dynamic(d doer) {
	d.Do()
}

// Allowed documents a deliberate wall-clock read.
//
//amoeba:hotpath
func Allowed() int64 {
	//amoeba:allow hotpath coarse profiling timestamp outside sim time
	return time.Now().UnixNano()
}

// Unmarked is not a root; nothing is reported.
func Unmarked() { _ = time.Now() }
