// Package hotimpl implements hotiface.Sink with file I/O, giving the
// cross-package dispatch a forbidden API to reach.
package hotimpl

import (
	"os"

	"hotiface"
)

// FileSink does file I/O on every emit.
type FileSink struct{}

// Emit opens a file.
func (FileSink) Emit() { _, _ = os.Create("out") }

// New returns the sink behind the interface, instantiating FileSink so
// the live-type index sees it.
func New() hotiface.Sink { return FileSink{} }
