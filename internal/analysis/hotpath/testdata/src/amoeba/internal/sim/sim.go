// Package sim is a stub of the real amoeba/internal/sim for hotpath
// tests: the analyzer matches the Simulator scheduling methods by
// package-path suffix and roots its walk at their callback arguments.
package sim

// Time is simulated seconds.
type Time float64

// Simulator is the scheduling stub.
type Simulator struct{ now Time }

// At schedules fn at an absolute simulated time.
func (s *Simulator) At(at Time, fn func()) {}

// After schedules fn after a simulated delay.
func (s *Simulator) After(delay float64, fn func()) {}

// Every schedules fn on a simulated period.
func (s *Simulator) Every(period float64, fn func()) (stop func()) { return func() {} }
