// Package hotfield exercises the field-sensitive func-value flow layer
// for hotpath: callbacks stored in struct fields — by composite literal,
// field assignment, constructor return, slices and maps of funcs, and
// config-to-engine field flow — are walked transitively with "via field"
// chains, while tainted fields (opaque right-hand sides, external
// values, escaped addresses) resolve to nothing and interface-typed
// fields stay the devirtualizer's business.
package hotfield

import (
	"sync"
	"time"

	"amoeba/internal/sim"
	"hotfieldx"
)

var mu sync.Mutex

func drain() { _ = time.Now() }

func slept() { time.Sleep(time.Millisecond) }

// engine is the canonical case: a callback bound at construction and
// invoked later through the field. Without the field-flow layer the call
// resolved to nothing and hotpath passed silently.
type engine struct {
	onDrain func()
}

func newEngine() *engine {
	return &engine{onDrain: drain}
}

//amoeba:hotpath
func (e *engine) pump() {
	e.onDrain() // want `hot path engine\.pump reaches time\.Now \(wall clock in simulated time\) via field engine\.onDrain => drain`
}

// schedule registers the field-stored callback with the simulator; the
// callback-root walk resolves the argument through the same field edges.
func schedule(s *sim.Simulator, e *engine) {
	s.At(1, e.onDrain) // want `sim\.At callback field engine\.onDrain => drain reaches time\.Now \(wall clock in simulated time\) via field engine\.onDrain => drain`
}

// copied reads the field into a local first; the local resolves through
// its field source.
//
//amoeba:hotpath
func (e *engine) copied() {
	f := e.onDrain
	f() // want `hot path engine\.copied reaches time\.Now \(wall clock in simulated time\) via func value f => field engine\.onDrain => drain`
}

// poller stores a function literal in the field; the literal's body is
// walked in its defining package's context.
type poller struct {
	onTick func()
}

func newPoller() *poller {
	return &poller{onTick: func() { time.Sleep(time.Millisecond) }}
}

//amoeba:hotpath
func (p *poller) tick() {
	p.onTick() // want `hot path poller\.tick reaches time\.Sleep \(wall clock in simulated time\) via field poller\.onTick => function literal`
}

// sched stores a method value.
type gate struct{}

func (g *gate) acquire() {
	mu.Lock()
	mu.Unlock()
}

type sched struct {
	grab func()
}

func newSched(g *gate) *sched {
	return &sched{grab: g.acquire}
}

//amoeba:hotpath
func (s *sched) run() {
	s.grab() // want `hot path sched\.run reaches sync\.Mutex\.Lock \(blocking in the single-threaded kernel\) via field sched\.grab => gate\.acquire`
}

// swapper receives its callback by plain field assignment.
type swapper struct {
	fn func()
}

func arm(s *swapper) {
	s.fn = drain
}

//amoeba:hotpath
func (s *swapper) fire() {
	s.fn() // want `hot path swapper\.fire reaches time\.Now \(wall clock in simulated time\) via field swapper\.fn => drain`
}

// duo takes its callbacks positionally.
type duo struct {
	a func()
	b func()
}

func newDuo() duo { return duo{drain, slept} }

//amoeba:hotpath
func (d duo) both() {
	d.a() // want `hot path duo\.both reaches time\.Now \(wall clock in simulated time\) via field duo\.a => drain`
	d.b() // want `hot path duo\.both reaches time\.Sleep \(wall clock in simulated time\) via field duo\.b => slept`
}

// hooks collects callbacks in a slice field: composite elements and
// append growth union into one per-field edge set, reached by range and
// by index.
type hooks struct {
	fns []func()
}

func newHooks() *hooks {
	h := &hooks{fns: []func(){drain}}
	h.fns = append(h.fns, slept)
	return h
}

//amoeba:hotpath
func (h *hooks) runAll() {
	for _, f := range h.fns {
		f() // want `hot path hooks\.runAll reaches time\.Now \(wall clock in simulated time\) via func value f => field hooks\.fns => drain` `hot path hooks\.runAll reaches time\.Sleep \(wall clock in simulated time\) via func value f => field hooks\.fns => slept`
	}
}

//amoeba:hotpath
func (h *hooks) runFirst() {
	h.fns[0]() // want `hot path hooks\.runFirst reaches time\.Now \(wall clock in simulated time\) via field hooks\.fns => drain` `hot path hooks\.runFirst reaches time\.Sleep \(wall clock in simulated time\) via field hooks\.fns => slept`
}

// registry keys callbacks in a map field.
type registry struct {
	byName map[string]func()
}

func newRegistry() *registry {
	r := &registry{byName: map[string]func(){"drain": drain}}
	r.byName["sleep"] = slept
	return r
}

//amoeba:hotpath
func (r *registry) invoke(k string) {
	r.byName[k]() // want `hot path registry\.invoke reaches time\.Now \(wall clock in simulated time\) via field registry\.byName => drain` `hot path registry\.invoke reaches time\.Sleep \(wall clock in simulated time\) via field registry\.byName => slept`
}

// config threads a callback into sink through field-to-field flow.
type config struct {
	OnDrain func()
}

var defaults = config{OnDrain: drain}

type sink struct {
	onDrain func()
}

func newSink() *sink {
	return &sink{onDrain: defaults.OnDrain}
}

//amoeba:hotpath
func (s *sink) drainNow() {
	s.onDrain() // want `hot path sink\.drainNow reaches time\.Now \(wall clock in simulated time\) via field sink\.onDrain => field config\.OnDrain => drain`
}

// cell is a generic struct: the instance field normalizes to its generic
// origin, so writes to cell[int].produce resolve at cell[T].produce.
type cell[T any] struct {
	produce func() T
}

func stampInt() int { return int(time.Now().Unix()) }

func newIntCell() *cell[int] {
	return &cell[int]{produce: stampInt}
}

//amoeba:hotpath
func readCell(c *cell[int]) int {
	return c.produce() // want `hot path readCell reaches time\.Now \(wall clock in simulated time\) via field cell\.produce => stampInt`
}

// crossField resolves a literal stored by a dependency package's
// constructor: the body is walked in hotfieldx's type context.
//
//amoeba:hotpath
func crossField(g *hotfieldx.Gauge) int64 {
	return g.Sample() // want `hot path crossField reaches time\.Now \(wall clock in simulated time\) via field Gauge\.Sample => function literal`
}

// tainted receives an opaque caller value: the binding set is
// unknowable, so the field yields no edges and the walk stays quiet.
type tainted struct {
	fn func()
}

func setTainted(t *tainted, f func()) {
	t.fn = f
}

//amoeba:hotpath
func (t *tainted) call() {
	t.fn()
}

// opaque receives a call result.
type opaque struct {
	fn func()
}

func lookup() func() { return drain }

func wire(o *opaque) {
	o.fn = lookup()
}

//amoeba:hotpath
func (o *opaque) call() {
	o.fn()
}

// pinned has its field's address taken: writes through the pointer are
// untrackable, so the binding that was seen no longer proves anything.
type pinned struct {
	fn func()
}

func pin(p *pinned) *func() {
	p.fn = drain
	return &p.fn
}

//amoeba:hotpath
func (p *pinned) call() {
	p.fn()
}

// spill grows its slice from an opaque variadic: the container taints.
type spill struct {
	fns []func()
}

func fill(s *spill, extra []func()) {
	s.fns = []func(){drain}
	s.fns = append(s.fns, extra...)
}

//amoeba:hotpath
func (s *spill) run() {
	for _, f := range s.fns {
		f()
	}
}

// carrier holds an interface-typed field: not field-flow territory — the
// call is interface dispatch, devirtualized against the live-type index.
type emitter interface{ Emit() }

type loud struct{}

func (loud) Emit() { _ = time.Now() }

var liveEmitter emitter = loud{}

type carrier struct {
	e emitter
}

//amoeba:hotpath
func (c *carrier) emit() {
	c.e.Emit() // want `hot path carrier\.emit reaches time\.Now \(wall clock in simulated time\) via dynamic dispatch on emitter\.Emit => loud\.Emit`
}

// quiet reaches a deliberate wall-clock read through a field edge; the
// origin-line annotation suppresses it for every root that arrives.
type quiet struct {
	fn func() int64
}

func newQuiet() *quiet {
	return &quiet{fn: guardedStamp}
}

func guardedStamp() int64 {
	//amoeba:allow hotpath deliberate timestamp behind a field-stored callback
	return time.Now().UnixNano()
}

//amoeba:hotpath
func (q *quiet) read() int64 {
	return q.fn()
}
