// Package hothelper provides callees that hotpath's walk reaches across
// the package boundary through the dependency loader.
package hothelper

import (
	"os"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// ReadConfig does file I/O.
func ReadConfig() []byte {
	b, _ := os.ReadFile("cfg")
	return b
}

// Pure is reachable but touches nothing forbidden.
func Pure(x int) int { return x * 2 }
