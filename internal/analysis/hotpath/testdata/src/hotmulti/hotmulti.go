// Package hotmulti exercises cross-package devirtualization for
// hotpath: the interface lives in hotiface, its live implementer in
// hotimpl, and the dispatch resolves through the Deps loader.
package hotmulti

import (
	"hotiface"
	"hotimpl"
)

var keep = hotimpl.New()

// Drain dispatches into the implementing package.
//
//amoeba:hotpath
func Drain(s hotiface.Sink) {
	s.Emit() // want `hot path Drain reaches os\.Create \(file I/O in the event loop\) via dynamic dispatch on hotiface\.Sink\.Emit => hotimpl\.FileSink\.Emit`
}
