// Package hotfieldx stores a function literal in an exported struct
// field, so a sibling package's hotpath roots must walk the literal's
// body in this package's type-checking context.
package hotfieldx

import "time"

// Gauge samples a reading through a field-stored callback.
type Gauge struct {
	Sample func() int64
}

// New binds the default sampler.
func New() *Gauge {
	return &Gauge{Sample: func() int64 { return time.Now().UnixNano() }}
}
