package unitcheck_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/unitcheck"
)

func TestUnitCheck(t *testing.T) {
	analysistest.Run(t, "testdata", unitcheck.Analyzer, "unituser")
}

// TestUnitsPackageExempt runs the analyzer over the stub units package
// itself: the raw-space arithmetic inside the defining package must not
// be flagged.
func TestUnitsPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata", unitcheck.Analyzer, "amoeba/internal/units")
}
