// Package unituser exercises the unitcheck contract: same-unit products
// and quotients, unit-stripping or unit-bending conversions, untyped
// literals flowing into unit-typed parameters, and probable argument
// transpositions are flagged; constant scaling, explicit Raw calls,
// boundary conversions to non-unit types, composite-literal fields, and
// annotated suppressions are not.
package unituser

import "amoeba/internal/units"

// Time is a non-unit named float type, standing in for boundary types
// like sim.Time that unit values legitimately convert into.
type Time float64

// Arithmetic covers rule 1: same-unit multiplication and division.
func Arithmetic(a, b units.QPS, s, t units.Seconds, f, g units.Fraction) {
	_ = a * b             // want `QPS \* QPS has dimension QPS²`
	_ = s / t             // want `Seconds / Seconds is a dimensionless ratio`
	_ = 2 * a             // constant scale factor: fine
	_ = a * 3             // fine
	_ = f * g             // Fraction is dimensionless: fine
	_ = units.Ratio(s, t) // the sanctioned ratio spelling
	_ = a + b             // sums share the dimension
	_ = s - t
	//amoeba:allow unitcheck squared rate wanted for a variance computation
	_ = a * a
}

// Conversions covers rule 2: float64() strips, cross-unit bends.
func Conversions(q units.QPS, s units.Seconds) {
	_ = float64(q)     // want `float64\(\.\.\.\) strips the QPS unit`
	_ = units.QPS(s)   // want `reinterprets Seconds as QPS`
	_ = q.Raw()        // explicit strip: fine
	_ = Time(s)        // boundary conversion to a non-unit type: fine
	_ = units.QPS(1.5) // constructing from a constant: fine
	var raw float64
	_ = units.Seconds(raw) // typing a raw value: fine
}

// TakesSeconds has a single unit-typed parameter.
func TakesSeconds(timeout units.Seconds) {}

// TakesMany mirrors Eq. 8's parameter shape: three Seconds then a
// Fraction.
func TakesMany(coldStart, qosTarget, execTime units.Seconds, e units.Fraction) {}

// Profile carries a unit-typed field.
type Profile struct {
	Timeout units.Seconds
}

// Literals covers rule 3: bare literals into unit-typed parameters.
func Literals(e units.Fraction) {
	TakesSeconds(1.5)                // want `untyped literal passed as Seconds parameter "timeout"`
	TakesSeconds(-2)                 // want `untyped literal passed as Seconds parameter "timeout"`
	TakesSeconds(units.Seconds(1.5)) // constructor conversion: fine
	const warm units.Seconds = 3
	TakesSeconds(warm)        // named constant carries its type: fine
	_ = Profile{Timeout: 1.5} // composite-literal field: fine (named slot)
	TakesMany(1, 2, 3, e)     // want `parameter "coldStart"` `parameter "qosTarget"` `parameter "execTime"`
}

// Cfg carries a run of same-typed fields for the selector-swap case.
type Cfg struct {
	ColdStart, QoSTarget, ExecTime units.Seconds
}

// Swaps covers rule 4: identifier/parameter cross-matches in same-typed
// runs.
func Swaps(coldStart, qosTarget, execTime units.Seconds, e units.Fraction, c Cfg) {
	TakesMany(coldStart, qosTarget, execTime, e)       // aligned: fine
	TakesMany(execTime, qosTarget, coldStart, e)       // want `argument "execTime" is passed as parameter "coldStart" but matches parameter "execTime"` `argument "coldStart" is passed as parameter "execTime" but matches parameter "coldStart"`
	TakesMany(c.QoSTarget, c.ColdStart, c.ExecTime, e) // want `argument "QoSTarget" is passed as parameter "coldStart"` `argument "ColdStart" is passed as parameter "qosTarget"`
}

// Raw3 has three bare float64 parameters: rule 4 applies to those too.
func Raw3(alpha, beta, gamma float64) float64 { return alpha + beta + gamma }

// SwapsBare shows the bare-float64 run case.
func SwapsBare(alpha, beta, gamma float64) {
	_ = Raw3(alpha, beta, gamma) // aligned: fine
	_ = Raw3(beta, alpha, gamma) // want `argument "beta" is passed as parameter "alpha"` `argument "alpha" is passed as parameter "beta"`
}
