package unituser

import "amoeba/internal/units"

// This file mirrors the unit boundaries of the slab/index event kernel:
// virtual time lives in a non-unit named float (sim.Time), configuration
// periods arrive as units.Seconds, and the conversion between them is
// the sanctioned boundary spelling. The suite pins that the kernel's
// index-based idioms stay unitcheck-clean.

// schedulerStub mimics sim.Simulator's API shape: absolute times are the
// boundary type, delays are raw float64 seconds at the call boundary.
type schedulerStub struct {
	now  Time
	heap []int32
}

func (s *schedulerStub) at(t Time)           {}
func (s *schedulerStub) after(delay float64) {}

// KernelBoundaries covers the conversions the engine makes when driving
// the kernel with unit-typed configuration.
func KernelBoundaries(s *schedulerStub, period units.Seconds, horizon units.Seconds) {
	s.at(Time(period))               // boundary conversion to non-unit Time: fine
	s.after(period.Raw())            // explicit strip at the call boundary: fine
	s.at(s.now + Time(horizon))      // offsetting the clock by a converted unit: fine
	s.after(float64(period))         // want `float64\(\.\.\.\) strips the Seconds unit`
	_ = units.QPS(horizon)           // want `reinterprets Seconds as QPS`
	_ = period / horizon             // want `Seconds / Seconds is a dimensionless ratio`
	_ = units.Ratio(period, horizon) // ticks per horizon, sanctioned spelling
}
