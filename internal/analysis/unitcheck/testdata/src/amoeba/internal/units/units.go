// Package units is a minimal stub of the repository's internal/units:
// unitcheck recognises unit types by their defining package's
// "internal/units" path suffix, so this stub stands in for the real one.
package units

// Seconds is a duration in seconds.
type Seconds float64

// Millis is a duration in milliseconds.
type Millis float64

// QPS is an arrival rate.
type QPS float64

// ServiceRate is a per-container service rate.
type ServiceRate float64

// Fraction is a dimensionless ratio.
type Fraction float64

// MegaBytes is a memory size.
type MegaBytes float64

// Cores is a CPU capacity.
type Cores float64

// Raw strips the unit explicitly.
func (s Seconds) Raw() float64 { return float64(s) }

// Raw strips the unit explicitly.
func (q QPS) Raw() float64 { return float64(q) }

// Raw strips the unit explicitly.
func (f Fraction) Raw() float64 { return float64(f) }

// Ratio returns the dimensionless quotient of two same-unit quantities.
func Ratio[T ~float64](num, den T) float64 { return float64(num) / float64(den) }

// Scale multiplies a dimensioned quantity by a dimensionless factor.
func Scale[T ~float64](x T, factor float64) T { return T(float64(x) * factor) }
