// Package unitcheck enforces the dimensional conventions of
// internal/units. Go's type system already rejects mixing two different
// unit types in one expression; unitcheck closes the remaining holes the
// compiler cannot see:
//
//  1. Same-unit multiplication or division: QPS·QPS has dimension
//     queries²/s² but still type-checks as QPS, and Seconds/Seconds is a
//     dimensionless ratio mistyped as a duration. Both are flagged
//     (use .Raw() for genuine raw-space math, units.Ratio for ratios).
//     Fraction is exempt — it is dimensionless, so Fraction·Fraction is
//     meaningful. Constant operands are also exempt: an untyped constant
//     adopts the unit type without carrying a dimension of its own
//     (2 * budget is a scaled budget, not a budget²).
//
//  2. Unit-stripping and unit-bending conversions: float64(x) on a
//     unit-typed x silently discards the dimension (use .Raw(), which
//     documents the boundary and survives refactors that retype x), and
//     converting one unit type directly to another (units.QPS(seconds))
//     reinterprets a number in a different dimension without any scaling.
//     Conversions to non-unit named types (sim.Time, metrics fields) are
//     deliberate boundary crossings and stay legal.
//
//  3. Bare numeric literals as unit-typed call arguments: the call
//     SamplePeriod(2, 0.5, 0.3, 0.1, 1) type-checks because untyped
//     constants convert implicitly, but nothing stops the 0.5 and 0.3
//     from being transposed. Wrapping each literal in its constructor
//     (units.Seconds(0.5)) makes the dimension part of the call site.
//     Composite-literal fields are exempt: the field name already names
//     the quantity.
//
//  4. Probable argument transposition: in a call whose signature has
//     three or more consecutive parameters of one numeric type, an
//     argument whose identifier equals the *name of a different
//     parameter* in that run is almost certainly in the wrong slot
//     (SamplePeriod(coldStart, execTime, qosTarget, ...) compiles either
//     way).
//
// The units package itself is exempt from rules 1 and 2 — that is where
// raw-space arithmetic legitimately lives.
package unitcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"amoeba/internal/analysis"
)

// Analyzer is the unitcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc:  "flag dimensionally unsound arithmetic, conversions, and call sites on internal/units types",
	Run:  run,
}

// unitsPkgSuffix identifies the defining package of the unit types. The
// suffix match lets analyzer testdata stub the package under its own
// module path.
const unitsPkgSuffix = "internal/units"

// unitType returns the named unit type of t, if t is a defined float64
// from the units package.
func unitType(t types.Type) (*types.Named, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	p := obj.Pkg().Path()
	if p != unitsPkgSuffix && !strings.HasSuffix(p, "/"+unitsPkgSuffix) {
		return nil, false
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Float64 {
		return nil, false
	}
	return named, true
}

// isFloatish reports whether t is float64 or a defined type over float64
// (the parameter types rule 4 considers swappable).
func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func run(pass *analysis.Pass) error {
	inUnits := pass.Pkg.Path() == unitsPkgSuffix ||
		strings.HasSuffix(pass.Pkg.Path(), "/"+unitsPkgSuffix)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !inUnits {
					checkSameUnitMulQuo(pass, n)
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					if !inUnits {
						checkConversion(pass, n, tv.Type)
					}
					return true
				}
				checkLiteralArgs(pass, n)
				checkSwappedArgs(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSameUnitMulQuo implements rule 1.
func checkSameUnitMulQuo(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op.String() != "*" && e.Op.String() != "/" {
		return
	}
	xt, yt := pass.TypesInfo.Types[e.X], pass.TypesInfo.Types[e.Y]
	// A constant operand is an untyped scale factor that merely adopted
	// the unit type; only two non-constant unit values multiply/divide
	// dimensions.
	if xt.Value != nil || yt.Value != nil {
		return
	}
	nx, ok := unitType(xt.Type)
	if !ok {
		return
	}
	ny, ok := unitType(yt.Type)
	if !ok || nx.Obj().Name() != ny.Obj().Name() {
		return
	}
	name := nx.Obj().Name()
	if name == "Fraction" {
		return // dimensionless: products and ratios of fractions are sound
	}
	if e.Op.String() == "*" {
		pass.Reportf(e.Pos(),
			"%s * %s has dimension %s² but type %s; convert with .Raw() if the square is intended",
			name, name, name, name)
	} else {
		pass.Reportf(e.Pos(),
			"%s / %s is a dimensionless ratio typed %s; use units.Ratio", name, name, name)
	}
}

// checkConversion implements rule 2 for the conversion call e with target
// type target.
func checkConversion(pass *analysis.Pass, e *ast.CallExpr, target types.Type) {
	if len(e.Args) != 1 {
		return
	}
	argType := pass.TypesInfo.Types[e.Args[0]].Type
	src, srcIsUnit := unitType(argType)
	if !srcIsUnit {
		return
	}
	if b, ok := types.Unalias(target).(*types.Basic); ok && b.Kind() == types.Float64 {
		pass.Reportf(e.Pos(),
			"float64(...) strips the %s unit; use .Raw() at the boundary", src.Obj().Name())
		return
	}
	if dst, ok := unitType(target); ok && dst.Obj().Name() != src.Obj().Name() {
		pass.Reportf(e.Pos(),
			"conversion reinterprets %s as %s without scaling; go through .Raw() or a conversion method",
			src.Obj().Name(), dst.Obj().Name())
	}
}

// signatureFor resolves the callee's signature, or nil for builtins and
// other non-signature callees.
func signatureFor(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// fixedParams returns the non-variadic parameter prefix the positional
// arguments map onto, or nil when the mapping is not one-to-one.
func fixedParams(sig *types.Signature, call *ast.CallExpr) []*types.Var {
	if sig == nil || call.Ellipsis.IsValid() {
		return nil
	}
	n := sig.Params().Len()
	if sig.Variadic() {
		n--
	}
	if len(call.Args) < n {
		return nil // f(g()) multi-value spread: no positional mapping
	}
	out := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		out[i] = sig.Params().At(i)
	}
	return out
}

// checkLiteralArgs implements rule 3.
func checkLiteralArgs(pass *analysis.Pass, call *ast.CallExpr) {
	params := fixedParams(signatureFor(pass, call), call)
	for i, p := range params {
		named, ok := unitType(p.Type())
		if !ok {
			continue
		}
		arg := call.Args[i]
		if e, isUnary := arg.(*ast.UnaryExpr); isUnary {
			arg = e.X
		}
		if _, isLit := arg.(*ast.BasicLit); !isLit {
			continue
		}
		pass.Reportf(call.Args[i].Pos(),
			"untyped literal passed as %s parameter %q; wrap it in units.%s(...)",
			named.Obj().Name(), p.Name(), named.Obj().Name())
	}
}

// argName extracts the identifier an argument reads from: a plain ident,
// or the final selector of a field access (cfg.coldStart -> "coldStart").
func argName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkSwappedArgs implements rule 4.
func checkSwappedArgs(pass *analysis.Pass, call *ast.CallExpr) {
	params := fixedParams(signatureFor(pass, call), call)
	if len(params) < 3 {
		return
	}
	// Find maximal runs of >=3 consecutive identically-typed float
	// parameters.
	for start := 0; start < len(params); {
		t := params[start].Type()
		if !isFloatish(t) {
			start++
			continue
		}
		end := start + 1
		for end < len(params) && types.Identical(params[end].Type(), t) {
			end++
		}
		if end-start >= 3 {
			checkRun(pass, call, params, start, end)
		}
		start = end
	}
}

func checkRun(pass *analysis.Pass, call *ast.CallExpr, params []*types.Var, start, end int) {
	for i := start; i < end; i++ {
		name := strings.ToLower(argName(call.Args[i]))
		if name == "" {
			continue
		}
		own := strings.ToLower(params[i].Name())
		if own == "" || own == "_" || name == own {
			continue
		}
		for j := start; j < end; j++ {
			other := strings.ToLower(params[j].Name())
			if j == i || other == "" || other == "_" {
				continue
			}
			if name == other {
				pass.Reportf(call.Args[i].Pos(),
					"argument %q is passed as parameter %q but matches parameter %q of the same type; probable transposition",
					argName(call.Args[i]), params[i].Name(), params[j].Name())
				break
			}
		}
	}
}
