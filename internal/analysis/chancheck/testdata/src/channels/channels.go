// Package channels exercises chancheck: receiver-side closes,
// double-closes, sends after close, and literal capacities at
// //amoeba:bounded parameters are flagged; sender closes, feeder
// closures, branch-isolated closes, and named-constant capacities pass.
package channels

import (
	"sync"

	"chanhelper"
)

// queueCap bounds every well-behaved queue in this package.
const queueCap = 8

// Produce owns out: it sends, so it may close.
func Produce(out chan int) {
	for i := 0; i < 3; i++ {
		out <- i
	}
	close(out)
}

// Drain only receives from ch; closing it is the consumer panicking the
// producer's next send.
func Drain(ch chan int) {
	for range ch {
	}
	close(ch) // want `close\(ch\) from the receiving side: only the sender closes a channel`
}

// FeederClosure is the intended fan-in idiom: the nested literal sends
// and closes, the declaring function ranges. Ownership is judged at the
// declaration, so the literal's close is a sender-side close.
func FeederClosure() int {
	ch := make(chan int, queueCap)
	go func() {
		ch <- 1
		ch <- 2
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// DoubleClose closes the same channel twice on a straight-line path.
func DoubleClose() {
	ch := make(chan int, queueCap)
	ch <- 1
	close(ch)
	close(ch) // want `close\(ch\): already closed on this path`
}

// SendAfterClose panics at runtime; the path scan sees it statically.
func SendAfterClose() {
	ch := make(chan int, queueCap)
	close(ch)
	ch <- 1 // want `send on ch after close`
}

// SelectSendAfterClose: a send arm counts as a send site.
func SelectSendAfterClose() {
	ch := make(chan int, queueCap)
	ch <- 0
	close(ch)
	select {
	case ch <- 1: // want `send on ch after close`
	default:
	}
}

// BranchClose closes on each branch of an if/else: exclusive paths, no
// double close, and the fall-through path is assumed unclosed.
func BranchClose(flip bool) {
	ch := make(chan int, queueCap)
	ch <- 1
	if flip {
		close(ch)
	} else {
		close(ch)
	}
}

// DeferredDouble: the deferred close runs at return, re-closing what the
// explicit close already closed.
func DeferredDouble() {
	ch := make(chan int, queueCap)
	defer close(ch)
	ch <- 1
	close(ch) // want `close\(ch\): the deferred close at .* will close it again at return`
}

// Reassigned opens a fresh channel under the same name after the close;
// the later send targets the new channel.
func Reassigned() {
	ch := make(chan int, queueCap)
	ch <- 1
	close(ch)
	ch = make(chan int, queueCap)
	ch <- 2
	close(ch)
}

// JoinThenClose is the fan-in coordinator: the Wait proves every sender
// has exited, so the consumer-side close is safe and accepted.
func JoinThenClose(results chan int, wg *sync.WaitGroup) {
	go func() {
		wg.Wait()
		close(results)
	}()
	for range results {
	}
}

// Broadcast closes a struct{} latch it only ever receives from: nothing
// sends on a broadcast channel, so there is no send to panic.
func Broadcast(done chan struct{}) {
	select {
	case <-done:
	default:
		close(done)
	}
}

// Pool is the bounded consumer side of the capacity contract.
//
//amoeba:bounded jobs results
func Pool(workers int, jobs chan int, results chan int) {
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				results <- j * j
			}
		}()
	}
}

// GoodCaller passes channels made with the named constant.
func GoodCaller() {
	jobs := make(chan int, queueCap)
	results := make(chan int, queueCap)
	Pool(2, jobs, results)
}

// LiteralCap buries the queue bound in a magic number.
func LiteralCap() {
	jobs := make(chan int, 8)
	results := make(chan int, queueCap)
	Pool(2, jobs, results) // want `capacity 8 of the channel for //amoeba:bounded parameter jobs of Pool is not a named constant`
}

// Unbuffered passes a rendezvous channel where a bounded queue was
// declared.
func Unbuffered() {
	jobs := make(chan int)
	results := make(chan int, queueCap)
	Pool(2, jobs, results) // want `channel for //amoeba:bounded parameter jobs of Pool is unbuffered`
}

// InlineMake checks arguments made at the call site itself.
func InlineMake() {
	Pool(1, make(chan int, queueCap), make(chan int, 4)) // want `capacity 4 of the channel for //amoeba:bounded parameter results of Pool is not a named constant`
}

// Forwards hands its own bounded parameter down: the contract is
// declared at this function's boundary instead.
//
//amoeba:bounded jobs
func Forwards(jobs chan int) {
	results := make(chan int, queueCap)
	Pool(1, jobs, results)
}

// ForwardsUnbounded passes a parameter of unknown capacity without
// taking on the contract.
func ForwardsUnbounded(jobs chan int) {
	results := make(chan int, queueCap)
	Pool(1, jobs, results) // want `ForwardsUnbounded forwards parameter jobs to //amoeba:bounded parameter jobs of Pool without declaring it //amoeba:bounded itself`
}

// CrossPackage resolves the contract through the dependency loader.
func CrossPackage() {
	in := make(chan int, chanhelper.HelperCap)
	chanhelper.Consume(in)
	bad := make(chan int, 3)
	chanhelper.Consume(bad) // want `capacity 3 of the channel for //amoeba:bounded parameter in of Consume is not a named constant`
}

// NoNames declares the marker without naming parameters.
//
//amoeba:bounded
func NoNames(ch chan int) { // want `//amoeba:bounded on NoNames names no parameters`
	close(ch)
}

// NotAChannel lists a non-channel parameter.
//
//amoeba:bounded n
func NotAChannel(n int, ch chan int) { // want `//amoeba:bounded on NotAChannel lists n, which is not a channel parameter`
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

// Allowed documents a deliberate re-close with the standard annotation.
func Allowed() {
	ch := make(chan int, queueCap)
	close(ch)
	//amoeba:allow chancheck replay harness resets the stream between runs
	close(ch)
}
