// Package chanhelper is a cross-package callee for chancheck: its
// //amoeba:bounded contract must be visible at call sites in the
// importing package through the dependency loader.
package chanhelper

// HelperCap bounds the hand-off queue Consume drains.
const HelperCap = 4

// Consume drains a bounded queue.
//
//amoeba:bounded in
func Consume(in chan int) {
	for range in {
	}
}
