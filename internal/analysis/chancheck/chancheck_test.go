package chancheck_test

import (
	"testing"

	"amoeba/internal/analysis/analysistest"
	"amoeba/internal/analysis/chancheck"
)

func TestChanCheck(t *testing.T) {
	analysistest.Run(t, "testdata", chancheck.Analyzer, "channels")
}
