// Package chancheck enforces the repository's channel-ownership
// discipline. Three rules, matching how the sweep driver and the
// profiling pools use channels:
//
//  1. Close by sender only. A close(ch) in a function that receives
//     from ch but never sends on it is closing from the consumer side —
//     the shape that panics another goroutine's send. Sends anywhere in
//     the declaring function, nested literals included, count as
//     ownership: the feeder-closure idiom (spawn a literal that sends
//     and then closes) is the intended pattern. Two closer-isn't-sender
//     idioms are recognised and accepted: closing a chan struct{} (a
//     broadcast latch carries no data, so there is no send to panic),
//     and a close preceded by a .Wait() call in the same declaration
//     (the fan-in coordinator closing after every sender has joined).
//
//  2. No double-close and no send-after-close on any syntactic path.
//     The scan is path-sensitive in the lockcheck style: a per-path
//     closed set, cloned into branches, so a close in one select arm or
//     if branch does not poison its siblings or the fall-through path
//     (conservative: a branch-then-fall-through double close is missed,
//     a straight-line or same-branch one is caught). A deferred close
//     counts against every later close of the same channel, but not
//     against later sends — it only runs at return.
//
//  3. Named-constant capacities at //amoeba:bounded parameters. A
//     function may annotate channel parameters //amoeba:bounded p1 p2;
//     every call site must pass channels made with a named-constant
//     capacity (make(chan T, someCap)), so the queue bound is a
//     reviewable declaration rather than a magic number — and an
//     unbuffered channel is rejected too, because a bounded hand-off
//     queue was asked for. A caller may satisfy the contract by
//     forwarding one of its own //amoeba:bounded parameters.
//
// The analysis is intra-procedural apart from the annotation lookup at
// call sites. Channels are tracked by expression spelling, so aliasing
// (ch2 := ch) defeats the closed-set rules, and a channel built by a
// helper function is not traced to its make — both documented blind
// spots, backstopped by -race runs. Deliberate exceptions carry
// //amoeba:allow chancheck <reason>.
package chancheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"amoeba/internal/analysis"
)

// Analyzer enforces close-by-sender, no double-close/send-after-close,
// and named-constant capacities at //amoeba:bounded parameters.
var Analyzer = &analysis.Analyzer{
	Name: "chancheck",
	Doc: "channels are closed by their sender exactly once, never sent on after close, " +
		"and //amoeba:bounded parameters receive channels with named-constant capacities",
	Run: run,
}

func run(pass *analysis.Pass) error {
	resolve := analysis.NewResolver(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkBoundedGrammar(pass, f, decl)
			if decl.Body == nil {
				continue
			}
			checkDecl(pass, resolve, f, decl)
		}
	}
	return nil
}

// checkBoundedGrammar validates an //amoeba:bounded marker against the
// declaration it annotates: it must name at least one parameter, and
// every name must be a channel-typed parameter.
func checkBoundedGrammar(pass *analysis.Pass, f *ast.File, decl *ast.FuncDecl) {
	params, ok := analysis.BoundedParams(pass.Fset, f, decl)
	if !ok {
		return
	}
	if len(params) == 0 {
		pass.Reportf(decl.Pos(), "//amoeba:bounded on %s names no parameters", decl.Name.Name)
		return
	}
	for _, name := range params {
		if !isChanParam(pass.TypesInfo, decl, name) {
			pass.Reportf(decl.Pos(), "//amoeba:bounded on %s lists %s, which is not a "+
				"channel parameter", decl.Name.Name, name)
		}
	}
}

func isChanParam(info *types.Info, decl *ast.FuncDecl, name string) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				t := info.TypeOf(id)
				if t == nil {
					return false
				}
				_, ok := t.Underlying().(*types.Chan)
				return ok
			}
		}
	}
	return false
}

// declFacts are the channel sends and receives anywhere in one function
// declaration, nested literals included. Ownership is judged at the
// declaration, not the literal: the feeder closure that sends is part
// of the same function that made the channel.
type declFacts struct {
	sends    map[string]bool
	receives map[string]bool
	waits    []token.Pos // positions of .Wait() calls, for close-after-join
}

func gatherFacts(info *types.Info, decl *ast.FuncDecl) *declFacts {
	f := &declFacts{sends: make(map[string]bool), receives: make(map[string]bool)}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			f.sends[types.ExprString(n.Chan)] = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.receives[types.ExprString(n.X)] = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					f.receives[types.ExprString(n.X)] = true
				}
			}
		case *ast.CallExpr:
			// Syntactic, as in goroleak: WaitGroup, errgroup, and
			// anonymous-interface pools all join through .Wait().
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				f.waits = append(f.waits, n.Pos())
			}
		}
		return true
	})
	return f
}

// receiverSideClose reports whether closing ch at pos is a
// consumer-side close: the declaration receives from ch, never sends on
// it, no join precedes the close, and ch is not a struct{} broadcast
// latch.
func receiverSideClose(info *types.Info, facts *declFacts, ch ast.Expr, pos token.Pos) bool {
	key := types.ExprString(ch)
	if !facts.receives[key] || facts.sends[key] {
		return false
	}
	for _, w := range facts.waits {
		if w < pos {
			return false // close-after-join: every sender has exited
		}
	}
	if t := info.TypeOf(ch); t != nil {
		if c, ok := t.Underlying().(*types.Chan); ok {
			if s, ok := c.Elem().Underlying().(*types.Struct); ok && s.NumFields() == 0 {
				return false // broadcast latch: nothing ever sends
			}
		}
	}
	return true
}

// checkDecl runs the path-sensitive close scan over the declaration body
// and every nested literal (each with a fresh closed set — a goroutine
// body is a different timeline), then audits the call sites for
// //amoeba:bounded capacity contracts.
func checkDecl(pass *analysis.Pass, resolve *analysis.Resolver, f *ast.File, decl *ast.FuncDecl) {
	facts := gatherFacts(pass.TypesInfo, decl)
	scanStmts(pass, facts, decl.Body.List, &pathState{closed: map[string]token.Pos{}})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scanStmts(pass, facts, lit.Body.List, &pathState{closed: map[string]token.Pos{}})
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkBoundedCall(pass, resolve, f, decl, call)
		}
		return true
	})
}

// pathState is the closed-channel tracking for one syntactic path.
// deferredClose records `defer close(ch)` sites, which close at return
// on every path and therefore clash with any other close of the same
// channel but do not forbid later sends.
type pathState struct {
	closed        map[string]token.Pos
	deferredClose map[string]token.Pos
}

func (p *pathState) clone() *pathState {
	out := &pathState{closed: make(map[string]token.Pos, len(p.closed)), deferredClose: p.deferredClose}
	for k, v := range p.closed {
		out.closed[k] = v
	}
	return out
}

// scanStmts walks one statement list in order in the lockcheck style:
// branch bodies get a clone of the path state and are assumed not to
// change it for the fall-through path.
func scanStmts(pass *analysis.Pass, facts *declFacts, stmts []ast.Stmt, st *pathState) {
	for _, s := range stmts {
		scanStmt(pass, facts, s, st)
	}
}

func scanStmt(pass *analysis.Pass, facts *declFacts, s ast.Stmt, st *pathState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if ch, ok := closeArg(s.X); ok {
			key := types.ExprString(ch)
			if pos, dup := st.closed[key]; dup {
				pass.Reportf(s.Pos(), "close(%s): already closed on this path (closed at %s)",
					key, pass.Fset.Position(pos))
			} else if pos, dup := st.deferred(key); dup {
				pass.Reportf(s.Pos(), "close(%s): the deferred close at %s will close it "+
					"again at return", key, pass.Fset.Position(pos))
			}
			st.closed[key] = s.Pos()
			if receiverSideClose(pass.TypesInfo, facts, ch, s.Pos()) {
				pass.Reportf(s.Pos(), "close(%s) from the receiving side: only the sender "+
					"closes a channel", key)
			}
		}
	case *ast.DeferStmt:
		if ch, ok := closeArg(s.Call); ok {
			key := types.ExprString(ch)
			if pos, dup := st.closed[key]; dup {
				pass.Reportf(s.Pos(), "defer close(%s): already closed on this path "+
					"(closed at %s)", key, pass.Fset.Position(pos))
			} else if pos, dup := st.deferred(key); dup {
				pass.Reportf(s.Pos(), "defer close(%s): already deferred at %s",
					key, pass.Fset.Position(pos))
			}
			if st.deferredClose == nil {
				st.deferredClose = map[string]token.Pos{}
			}
			st.deferredClose[key] = s.Pos()
			if receiverSideClose(pass.TypesInfo, facts, ch, s.Pos()) {
				pass.Reportf(s.Pos(), "close(%s) from the receiving side: only the sender "+
					"closes a channel", key)
			}
		}
	case *ast.SendStmt:
		reportSendAfterClose(pass, st, s)
	case *ast.AssignStmt:
		// Reassignment (ch = make(...)) opens a fresh channel under the
		// same name; drop it from the closed set.
		for _, lhs := range s.Lhs {
			delete(st.closed, types.ExprString(lhs))
		}
	case *ast.BlockStmt:
		scanStmts(pass, facts, s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, facts, s.Init, st)
		}
		scanStmts(pass, facts, s.Body.List, st.clone())
		if s.Else != nil {
			scanStmt(pass, facts, s.Else, st.clone())
		}
	case *ast.ForStmt:
		scanStmts(pass, facts, s.Body.List, st.clone())
	case *ast.RangeStmt:
		scanStmts(pass, facts, s.Body.List, st.clone())
	case *ast.SwitchStmt:
		scanCases(pass, facts, s.Body, st)
	case *ast.TypeSwitchStmt:
		scanCases(pass, facts, s.Body, st)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				reportSendAfterClose(pass, st, send)
			}
			scanStmts(pass, facts, cc.Body, st.clone())
		}
	case *ast.LabeledStmt:
		scanStmt(pass, facts, s.Stmt, st)
	}
}

func (p *pathState) deferred(key string) (token.Pos, bool) {
	pos, ok := p.deferredClose[key]
	return pos, ok
}

func scanCases(pass *analysis.Pass, facts *declFacts, body *ast.BlockStmt, st *pathState) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			scanStmts(pass, facts, cc.Body, st.clone())
		}
	}
}

func reportSendAfterClose(pass *analysis.Pass, st *pathState, send *ast.SendStmt) {
	key := types.ExprString(send.Chan)
	if pos, closed := st.closed[key]; closed {
		pass.Reportf(send.Arrow, "send on %s after close (closed at %s)",
			key, pass.Fset.Position(pos))
	}
}

// closeArg returns the channel expression of a close(ch) call.
func closeArg(e ast.Expr) (ast.Expr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil, false
	}
	return call.Args[0], true
}

// checkBoundedCall audits one call site against the callee's
// //amoeba:bounded contract: each listed parameter must receive a
// channel whose make capacity is a named constant, or a forwarded
// //amoeba:bounded parameter of the calling function.
func checkBoundedCall(pass *analysis.Pass, resolve *analysis.Resolver, f *ast.File, decl *ast.FuncDecl, call *ast.CallExpr) {
	fn := resolve.FuncObj(pass.TypesInfo, call.Fun)
	if fn == nil {
		return
	}
	calleeDecl, calleePkg := resolve.DeclOf(fn)
	if calleeDecl == nil {
		return
	}
	calleeFile := resolve.FileOf(calleePkg, calleeDecl)
	if calleeFile == nil {
		return
	}
	bounded, ok := analysis.BoundedParams(pass.Fset, calleeFile, calleeDecl)
	if !ok {
		return
	}
	for _, name := range bounded {
		idx, found := paramIndex(calleeDecl, name)
		if !found || idx >= len(call.Args) {
			continue // grammar errors are reported at the declaration
		}
		checkBoundedArg(pass, f, decl, call.Args[idx], name, fn.Name())
	}
}

// paramIndex maps a parameter name to its positional argument index,
// counting through grouped fields (jobs, results chan int).
func paramIndex(decl *ast.FuncDecl, name string) (int, bool) {
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				return idx, true
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++ // unnamed parameter still occupies a slot
		}
	}
	return 0, false
}

// checkBoundedArg traces one argument to its make site. Arguments it
// cannot trace — a channel returned by a helper, a struct field — pass
// silently: the contract is best-effort at the spelling level, and the
// declaration-site rules still hold inside the callee.
func checkBoundedArg(pass *analysis.Pass, f *ast.File, decl *ast.FuncDecl, arg ast.Expr, param, callee string) {
	arg = ast.Unparen(arg)
	if mk, ok := makeChanCall(pass.TypesInfo, arg); ok {
		checkMakeCap(pass, arg.Pos(), mk, param, callee)
		return
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if isParamOf(decl, obj) {
		own, _ := analysis.BoundedParams(pass.Fset, f, decl)
		for _, p := range own {
			if p == id.Name {
				return // forwarding a parameter under the same contract
			}
		}
		pass.Reportf(arg.Pos(), "%s forwards parameter %s to //amoeba:bounded parameter "+
			"%s of %s without declaring it //amoeba:bounded itself",
			decl.Name.Name, id.Name, param, callee)
		return
	}
	if mk := findMake(pass.TypesInfo, decl, obj); mk != nil {
		checkMakeCap(pass, arg.Pos(), mk, param, callee)
	}
}

func isParamOf(decl *ast.FuncDecl, obj types.Object) bool {
	if decl.Type.Params == nil {
		return false
	}
	return decl.Type.Params.Pos() <= obj.Pos() && obj.Pos() < decl.Type.Params.End()
}

// findMake locates the make(chan ...) that initialises obj within the
// function body (short variable declaration, assignment, or var spec).
func findMake(info *types.Info, decl *ast.FuncDecl, obj types.Object) *ast.CallExpr {
	var mk *ast.CallExpr
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && info.ObjectOf(id) == obj && i < len(n.Rhs) {
					if call, ok := makeChanCall(info, ast.Unparen(n.Rhs[i])); ok {
						mk = call
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if info.ObjectOf(id) == obj && i < len(n.Values) {
					if call, ok := makeChanCall(info, ast.Unparen(n.Values[i])); ok {
						mk = call
					}
				}
			}
		}
		return mk == nil
	})
	return mk
}

// makeChanCall reports whether e is a call to the builtin make with a
// channel type operand.
func makeChanCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, false
	}
	if _, ok := info.ObjectOf(id).(*types.Builtin); !ok {
		return nil, false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return nil, false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return call, isChan
}

// checkMakeCap enforces the named-constant capacity rule on one make
// site, reporting at pos (the argument position at the call).
func checkMakeCap(pass *analysis.Pass, pos token.Pos, mk *ast.CallExpr, param, callee string) {
	if len(mk.Args) < 2 {
		pass.Reportf(pos, "channel for //amoeba:bounded parameter %s of %s is unbuffered: "+
			"make it with a named-constant capacity", param, callee)
		return
	}
	if !namedConst(pass.TypesInfo, mk.Args[1]) {
		pass.Reportf(pos, "capacity %s of the channel for //amoeba:bounded parameter %s of %s "+
			"is not a named constant", types.ExprString(mk.Args[1]), param, callee)
	}
}

// namedConst reports whether e is a reference to a declared constant
// (possibly package-qualified), as opposed to a literal or expression.
func namedConst(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := info.ObjectOf(e).(*types.Const)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.ObjectOf(e.Sel).(*types.Const)
		return ok
	}
	return false
}
