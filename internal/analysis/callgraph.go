package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Resolver maps type-checked function objects back to their syntax
// across the analyzed package and its loaded module-local dependencies.
// It is the mechanical half of a call-graph walk — hotpath and shardsafe
// both build their reachability analyses on it — indexing each package's
// declarations once and memoizing nothing else, so analyzers keep their
// own per-walk state (memo tables, cycle stacks) without sharing it.
type Resolver struct {
	pass   *Pass
	decls  map[*types.Package]map[*types.Func]*ast.FuncDecl
	devirt *devirtIndex // lazily built by CalleeEdges (devirt.go)
}

// NewResolver returns a resolver over the pass's package and its loaded
// dependencies.
func NewResolver(pass *Pass) *Resolver {
	return &Resolver{
		pass:  pass,
		decls: make(map[*types.Package]map[*types.Func]*ast.FuncDecl),
	}
}

// FuncObj resolves an expression to a statically known function or
// concrete-receiver method. Interface-dispatched methods resolve to nil
// here; CalleeEdges devirtualizes them against the module-wide
// class-hierarchy index (devirt.go). Instantiated generic functions and
// methods normalize to their generic origin, so a call to helper[int]
// resolves to the declaration of helper.
func (r *Resolver) FuncObj(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := unwrapCallee(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type().Underlying()) {
			return nil // dynamic dispatch: resolved by CalleeEdges instead
		}
	}
	return fn
}

// DeclOf finds the syntax of a function in the analyzed package or in a
// loaded module-local dependency, indexing each package once. decl is
// nil when the defining package's syntax is unavailable (standard
// library) or the function has no declaration (synthesised wrappers).
func (r *Resolver) DeclOf(fn *types.Func) (decl *ast.FuncDecl, pkg *types.Package) {
	pkg = fn.Pkg()
	if idx, ok := r.decls[pkg]; ok {
		return idx[fn], pkg
	}
	files, info := r.syntaxOf(pkg)
	idx := make(map[*types.Func]*ast.FuncDecl)
	if info != nil {
		for _, f := range files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
						idx[obj] = fd
					}
				}
			}
		}
	}
	r.decls[pkg] = idx
	return idx[fn], pkg
}

// InfoOf returns the type info covering a package's syntax, nil when the
// package was not loaded from source.
func (r *Resolver) InfoOf(pkg *types.Package) *types.Info {
	_, info := r.syntaxOf(pkg)
	return info
}

// FileOf returns the syntax file containing the declaration, so marker
// annotations attached by free-standing comment groups can be resolved
// against the right file.
func (r *Resolver) FileOf(pkg *types.Package, decl *ast.FuncDecl) *ast.File {
	files, _ := r.syntaxOf(pkg)
	for _, f := range files {
		if f.FileStart <= decl.Pos() && decl.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// FileAt returns the syntax file of pkg containing pos, nil when the
// package's syntax is unavailable. It generalizes FileOf to arbitrary
// nodes — fieldflow hands walkers function literals stored in struct
// fields of dependency packages, and their bodies must be resolved
// against the defining file for annotation lookup.
func (r *Resolver) FileAt(pkg *types.Package, pos token.Pos) *ast.File {
	files, _ := r.syntaxOf(pkg)
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func (r *Resolver) syntaxOf(pkg *types.Package) ([]*ast.File, *types.Info) {
	switch {
	case pkg == r.pass.Pkg:
		return r.pass.Files, r.pass.TypesInfo
	case r.pass.Deps != nil:
		if dep, ok := r.pass.Deps(pkg.Path()); ok {
			return dep.Files, dep.Info
		}
	}
	return nil, nil
}

// FuncDisplayName qualifies a function for diagnostics: receiver-dotted
// for methods, package-prefixed when it lives outside cur.
func FuncDisplayName(cur *types.Package, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := types.Unalias(rt).(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := types.Unalias(rt).(*types.Named); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != cur {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
