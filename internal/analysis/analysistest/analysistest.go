// Package analysistest runs an analyzer over GOPATH-style testdata trees
// and checks its diagnostics against `// want "regex"` expectations, in
// the manner of golang.org/x/tools/go/analysis/analysistest.
//
// A test package lives at <testdata>/src/<importpath>/; its imports
// resolve inside the same tree first (so tests can stub module packages
// such as amoeba/internal/sim) and fall back to the standard library. An
// expectation comment applies to the line it appears on:
//
//	r := sim.RNG{} // want `composite literal`
//
// Each reported diagnostic must match a want-regex on its line and each
// want must be matched by exactly one diagnostic; anything else fails the
// test with positions.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"amoeba/internal/analysis"
)

// Run applies one analyzer to each named package under testdata/src and
// checks the diagnostics against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := newTestdataLoader(testdata)
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Deps:      loader.Loaded,
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s on %s: %v", a.Name, path, err)
			continue
		}
		check(t, loader, pkg, pass.Diagnostics())
	}
}

// newTestdataLoader resolves import paths inside <testdata>/src first,
// falling back to the standard library.
func newTestdataLoader(testdata string) *analysis.Loader {
	return analysis.NewLoader(func(path string) (string, bool) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// reporter is the slice of testing.T the checker needs; tests of the
// harness itself substitute a recorder to observe failure detection.
type reporter interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t reporter, loader *analysis.Loader, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, loader, pkg.Files)
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
		} else {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*want, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

func collectWants(t reporter, loader *analysis.Loader, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := loader.Fset.Position(c.Pos())
				ws, err := parseWants(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				for _, raw := range ws {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}

// parseWants extracts the quoted regexps from a `// want "a" "b"` or
// `// want `+"`a`"+“ comment.
func parseWants(text string) ([]string, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil, nil
	}
	var out []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		var quote byte = rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want operand must be quoted: %s", rest)
		}
		end := 1
		for end < len(rest) && rest[end] != quote {
			if quote == '"' && rest[end] == '\\' {
				end++ // the escaped byte cannot close the operand
			}
			end++
		}
		if end >= len(rest) {
			return nil, fmt.Errorf("unterminated want operand: %s", rest)
		}
		lit := rest[:end+1]
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want operand %s: %v", lit, err)
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out, nil
}
