// Package selftest is the fixture for the harness's own tests: the
// callcheck test analyzer reports every call to boom, so the want
// comments below must match exactly, and the clean calls must not.
package selftest

func boom() {}

func ok() {}

func use() {
	boom() // want `call to boom`
	ok()
	boom() // want "call to boom"
}
