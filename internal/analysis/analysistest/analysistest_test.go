package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"amoeba/internal/analysis"
)

// callcheck is a minimal test analyzer: it reports every call to a
// function literally named boom. It exists only to exercise the harness.
var callcheck = &analysis.Analyzer{
	Name: "callcheck",
	Doc:  "report calls to boom (harness self-test fixture)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil
	},
}

// TestRunHappyPath drives the real Run entry point end to end: wants in
// both quoting styles, one clean line between them, exact 1:1 matching.
func TestRunHappyPath(t *testing.T) {
	Run(t, "testdata", callcheck, "selftest")
}

func TestParseWants(t *testing.T) {
	cases := []struct {
		text    string
		want    []string
		wantErr string
	}{
		{text: "// ordinary comment", want: nil},
		{text: "//amoeba:allow callcheck reason", want: nil},
		{text: `// want "one"`, want: []string{"one"}},
		{text: "// want `backquoted`", want: []string{"backquoted"}},
		{text: `// want "first" "second"`, want: []string{"first", "second"}},
		{text: "// want \"mixed\" `styles`", want: []string{"mixed", "styles"}},
		{text: `// want "escaped \"quote\""`, want: []string{`escaped "quote"`}},
		{text: `// want bare`, wantErr: "must be quoted"},
		{text: `// want "unterminated`, wantErr: "unterminated"},
		{text: `// want "ok" dangling`, wantErr: "must be quoted"},
	}
	for _, c := range cases {
		got, err := parseWants(c.text)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseWants(%q) err = %v, want containing %q", c.text, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWants(%q): %v", c.text, err)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("parseWants(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestMatchWant(t *testing.T) {
	mk := func(file string, line int, pat string) *want {
		return &want{file: file, line: line, re: regexp.MustCompile(pat), raw: pat}
	}
	diag := func(file string, line int, msg string) analysis.Diagnostic {
		return analysis.Diagnostic{
			Pos:     token.Position{Filename: file, Line: line},
			Message: msg,
		}
	}
	wants := []*want{
		mk("a.go", 3, "boom"),
		mk("a.go", 3, "boom"),
		mk("b.go", 7, "^exact$"),
	}
	// Wrong file, wrong line, non-matching message: no match.
	if matchWant(wants, diag("c.go", 3, "boom")) != nil {
		t.Error("matched a diagnostic from the wrong file")
	}
	if matchWant(wants, diag("a.go", 4, "boom")) != nil {
		t.Error("matched a diagnostic on the wrong line")
	}
	if matchWant(wants, diag("b.go", 7, "exactly not")) != nil {
		t.Error("matched a diagnostic the regexp rejects")
	}
	// Two diagnostics on one line consume the two wants one each; a
	// third finds nothing left.
	for i := 0; i < 2; i++ {
		w := matchWant(wants, diag("a.go", 3, "a boom happened"))
		if w == nil {
			t.Fatalf("diagnostic %d on a.go:3 found no free want", i+1)
		}
		w.matched = true
	}
	if matchWant(wants, diag("a.go", 3, "a boom happened")) != nil {
		t.Error("third diagnostic matched an already-consumed want")
	}
}

// recorder satisfies reporter and captures failures instead of failing
// the real test, so the harness's failure detection is itself testable.
type recorder struct {
	errors []string
	fatal  string
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(r)
}

// runCheck loads the selftest fixture and feeds the given diagnostics
// through check under a recorder.
func runCheck(t *testing.T, mutate func(*analysis.Package) []analysis.Diagnostic) *recorder {
	t.Helper()
	loader := newTestdataLoader("testdata")
	pkg, err := loader.Load("selftest")
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil && p != any(rec) {
				panic(p)
			}
		}()
		check(rec, loader, pkg, mutate(pkg))
	}()
	return rec
}

// correctDiags reports one "call to boom" per want line in the fixture.
func correctDiags(t *testing.T, loader *analysis.Loader, pkg *analysis.Package) []analysis.Diagnostic {
	t.Helper()
	pass := &analysis.Pass{
		Analyzer:  callcheck,
		Fset:      loader.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := callcheck.Run(pass); err != nil {
		t.Fatal(err)
	}
	return pass.Diagnostics()
}

func TestCheckDetectsMissingDiagnostic(t *testing.T) {
	// An analyzer that reports nothing must trip every want.
	rec := runCheck(t, func(*analysis.Package) []analysis.Diagnostic { return nil })
	if len(rec.errors) != 2 {
		t.Fatalf("got %d failures, want 2 (one per unmatched want): %q", len(rec.errors), rec.errors)
	}
	for _, e := range rec.errors {
		if !strings.Contains(e, "expected diagnostic matching") {
			t.Errorf("failure %q does not name the unmatched want", e)
		}
	}
}

func TestCheckDetectsUnexpectedDiagnostic(t *testing.T) {
	loader := newTestdataLoader("testdata")
	pkg, err := loader.Load("selftest")
	if err != nil {
		t.Fatal(err)
	}
	diags := correctDiags(t, loader, pkg)
	// An extra diagnostic on a line with no want must be flagged, and
	// only it: the genuine ones still match.
	extra := analysis.Diagnostic{
		Pos:     token.Position{Filename: diags[0].Pos.Filename, Line: 1},
		Message: "spurious finding",
	}
	rec := runCheck(t, func(*analysis.Package) []analysis.Diagnostic {
		return append(diags, extra)
	})
	if len(rec.errors) != 1 || !strings.Contains(rec.errors[0], "unexpected diagnostic") {
		t.Fatalf("got failures %q, want exactly one unexpected-diagnostic report", rec.errors)
	}
}

func TestCheckPassesOnExactMatch(t *testing.T) {
	loader := newTestdataLoader("testdata")
	pkg, err := loader.Load("selftest")
	if err != nil {
		t.Fatal(err)
	}
	diags := correctDiags(t, loader, pkg)
	rec := runCheck(t, func(*analysis.Package) []analysis.Diagnostic { return diags })
	if len(rec.errors) != 0 || rec.fatal != "" {
		t.Fatalf("clean run reported failures: %q / %q", rec.errors, rec.fatal)
	}
}

func TestCollectWantsRejectsBadRegexp(t *testing.T) {
	// A want with an invalid regexp is a fixture bug and must be fatal.
	loader := newTestdataLoader("testdata")
	pkg, err := loader.Load("selftest")
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	src := pkg.Files[0]
	bad := &ast.Comment{Slash: src.End(), Text: "// want \"](unbalanced\""}
	withBad := append(src.Comments, &ast.CommentGroup{List: []*ast.Comment{bad}})
	broken := *src
	broken.Comments = withBad
	func() {
		defer func() {
			if p := recover(); p != nil && p != any(rec) {
				panic(p)
			}
		}()
		collectWants(rec, loader, []*ast.File{&broken})
	}()
	if !strings.Contains(rec.fatal, "bad want regexp") {
		t.Fatalf("fatal = %q, want a bad-regexp report", rec.fatal)
	}
}
