// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The repository's determinism
// and concurrency invariants are machine-checked by analyzers built on it
// (see the sibling packages nodeterminism, seedflow, paniccheck, and
// lockcheck) and run by cmd/amoeba-vet.
//
// The framework exists because the reproduction must stay buildable from
// the standard library alone: the x/tools module is not vendored, so the
// Analyzer/Pass/Diagnostic surface is re-implemented here on go/ast,
// go/parser, and go/types. The shape is kept deliberately close to
// x/tools so analyzers could migrate with little churn if the dependency
// ever becomes available.
//
// # Suppressing findings
//
// A finding can be suppressed with an annotation comment on the same line
// or the line directly above the flagged site:
//
//	//amoeba:allow <analyzer> <reason>
//
// e.g. //amoeba:allow paniccheck index verified by caller. The reason is
// mandatory by convention (amoeba-vet does not enforce it) so that every
// suppression documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //amoeba:allow annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the file set of the pass
// that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Via is the call chain (outermost first) that led a call-graph
	// walker from an annotated root to the flagged site, when the
	// analyzer tracks one. Empty for site-local findings. The chain is
	// already rendered into Message for human output; it is carried
	// separately so machine-readable consumers (amoeba-vet -json) need
	// not re-parse it.
	Via []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass provides one analyzer run with a single type-checked package and
// collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Deps looks up an already-loaded dependency package by import path,
	// giving analyzers access to the syntax (and hence annotations) of the
	// packages this one imports. Nil when the runner provides no loader.
	Deps func(path string) (*Package, bool)

	// Audit asks analyzers to probe suppressed territory instead of
	// honouring it: shardsafe walks past //amoeba:shardsafe boundaries to
	// test whether the marker still shields anything. Used by the
	// amoeba-vet -stale driver; diagnostics reported in audit mode are
	// discarded, only the used-annotation set matters.
	Audit bool

	diags    []Diagnostic
	reported map[string]bool              // analyzer+pos+message dedup
	allows   map[string]map[int][]allowAt // filename -> line -> covering annotations
	used     map[token.Pos]bool           // annotation comments that suppressed (or still shield) a finding
}

// allowAt is one //amoeba:allow annotation projected onto a line it
// covers: the suppressed analyzer name plus the comment's own position,
// recorded so the -stale audit can tell live annotations from dead ones.
type allowAt struct {
	name string
	pos  token.Pos
}

// Reportf records a finding at pos unless an //amoeba:allow annotation
// covering pos names this analyzer. Exact duplicates (same analyzer,
// position, and message — e.g. one callback registered twice) collapse
// to a single diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfVia(pos, nil, format, args...)
}

// ReportfVia is Reportf carrying the call chain that reached pos, for
// analyzers that walk call graphs. Deduplication still keys on the
// rendered message alone, so two chains producing the same text collapse
// and the first chain wins.
func (p *Pass) ReportfVia(pos token.Pos, via []string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position, p.Analyzer.Name) {
		return
	}
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Via:      via,
	}
	key := d.String()
	if p.reported == nil {
		p.reported = make(map[string]bool)
	}
	if p.reported[key] {
		return
	}
	p.reported[key] = true
	p.diags = append(p.diags, d)
}

// AllowedAt reports whether an //amoeba:allow annotation naming name (or
// "all") covers pos. Analyzers that accept alternative annotation names
// (paniccheck also honours //amoeba:allow panic) can query extra names
// before reporting.
func (p *Pass) AllowedAt(pos token.Pos, name string) bool {
	return p.allowedAt(p.Fset.Position(pos), name)
}

func (p *Pass) allowedAt(pos token.Position, name string) bool {
	if p.allows == nil {
		p.allows = make(map[string]map[int][]allowAt)
		for _, f := range p.Files {
			fname := p.Fset.Position(f.Pos()).Filename
			lines := make(map[int][]allowAt)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, _, ok := ParseAllow(c.Text)
					if !ok {
						continue
					}
					// The annotation covers its own line (trailing
					// comment) and the next line (comment-above form).
					line := p.Fset.Position(c.Pos()).Line
					at := allowAt{name: name, pos: c.Pos()}
					lines[line] = append(lines[line], at)
					lines[line+1] = append(lines[line+1], at)
				}
			}
			p.allows[fname] = lines
		}
	}
	for _, a := range p.allows[pos.Filename][pos.Line] {
		if a.name == name || a.name == "all" {
			p.UseAnnotation(a.pos)
			return true
		}
	}
	return false
}

// UseAnnotation records that the suppression annotation whose comment
// starts at pos suppressed — or, in audit mode, still shields — a
// finding. The -stale driver subtracts the used set from the annotation
// inventory; whatever remains no longer suppresses anything.
func (p *Pass) UseAnnotation(pos token.Pos) {
	if p.used == nil {
		p.used = make(map[token.Pos]bool)
	}
	p.used[pos] = true
}

// UsedAnnotations returns the positions of every annotation recorded by
// UseAnnotation, resolved through the pass's file set.
func (p *Pass) UsedAnnotations() []token.Position {
	out := make([]token.Position, 0, len(p.used))
	for pos := range p.used {
		out = append(out, p.Fset.Position(pos))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Filename != out[j].Filename {
			return out[i].Filename < out[j].Filename
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}

// ParseAllow parses an //amoeba:allow comment into the suppressed
// analyzer name and the justification that follows it. The reason is
// empty when the annotation names an analyzer but gives no justification
// (amoeba-vet -suppressions treats that as an error). The marker follows
// the exact-prefix rule: //amoeba:allowalloc(...) is its own annotation,
// not an allow of an analyzer named "alloc(...".
func ParseAllow(text string) (name, reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//amoeba:allow")
	if !found {
		return "", "", false
	}
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return "", "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", false
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sortDiagnostics(p.diags)
	return p.diags
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// IsNamed reports whether t (after unwrapping aliases) is the named type
// pkgSuffix.name, where pkgSuffix is matched against the end of the
// defining package's import path (so "internal/sim".RNG matches both the
// real module path and analyzer-test stubs).
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// PkgFunc resolves a call expression to a package-level function and
// returns its package path and name ("", "" when the callee is anything
// else: a method, builtin, conversion, or local closure).
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, ok := info.Uses[id].(*types.PkgName); !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// Method resolves a call expression to a method and returns the defining
// package path, receiver type name, and method name ("", "", "" for
// non-method callees). Promoted methods resolve to the embedded type that
// declares them, so a Lock call through an embedded sync.Mutex still
// reports ("sync", "Mutex", "Lock").
func Method(info *types.Info, call *ast.CallExpr) (pkgPath, recvType, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := types.Unalias(rt).(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := types.Unalias(rt).(*types.Named)
	if !ok {
		return "", "", ""
	}
	return fn.Pkg().Path(), named.Obj().Name(), fn.Name()
}
