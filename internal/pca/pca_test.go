package pca

import (
	"math"
	"testing"

	"amoeba/internal/linalg"
	"amoeba/internal/sim"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points along the (1, 1) direction with small orthogonal noise: the
	// first component must align with (1,1)/sqrt(2).
	rng := sim.NewRNG(1)
	rows := make([][]float64, 300)
	for i := range rows {
		tt := rng.Normal(0, 5)
		n := rng.Normal(0, 0.1)
		rows[i] = []float64{tt + n, tt - n}
	}
	m := Fit(linalg.FromRows(rows))
	c0 := []float64{m.Components.At(0, 0), m.Components.At(1, 0)}
	ratio := c0[0] / c0[1]
	if math.Abs(ratio-1) > 0.05 {
		t.Fatalf("leading component = %v, want ~(1,1) direction", c0)
	}
	if m.ExplainedVariance(1) < 0.99 {
		t.Fatalf("explained variance of PC1 = %v, want > 0.99", m.ExplainedVariance(1))
	}
}

func TestExplainedVarianceMonotone(t *testing.T) {
	rng := sim.NewRNG(2)
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.Normal(0, 3), rng.Normal(0, 2), rng.Normal(0, 1)}
	}
	m := Fit(linalg.FromRows(rows))
	prev := 0.0
	for k := 0; k <= 3; k++ {
		ev := m.ExplainedVariance(k)
		if ev < prev-1e-12 {
			t.Fatalf("explained variance decreased at k=%d: %v < %v", k, ev, prev)
		}
		prev = ev
	}
	if math.Abs(m.ExplainedVariance(3)-1) > 1e-9 {
		t.Fatalf("full basis explains %v, want 1", m.ExplainedVariance(3))
	}
}

func TestComponentsFor(t *testing.T) {
	rng := sim.NewRNG(3)
	// One dominant axis: 1 component should satisfy a 90% threshold.
	rows := make([][]float64, 200)
	for i := range rows {
		tt := rng.Normal(0, 10)
		rows[i] = []float64{tt, 0.1 * rng.Normal(0, 1), 0.1 * rng.Normal(0, 1)}
	}
	m := Fit(linalg.FromRows(rows))
	if k := m.ComponentsFor(0.9); k != 1 {
		t.Fatalf("ComponentsFor(0.9) = %d, want 1", k)
	}
	if k := m.ComponentsFor(1.0); k != 3 {
		t.Fatalf("ComponentsFor(1.0) = %d, want 3", k)
	}
}

func TestTransformCenters(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := Fit(linalg.FromRows(rows))
	// Transforming the mean must give the zero vector.
	z := m.Transform([]float64{3, 4}, 2)
	for _, v := range z {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("transform of mean = %v, want zeros", z)
		}
	}
}

func TestRegressionRecoversLinearModel(t *testing.T) {
	// y = 2 a + 0.5 b - 1 c + 3, with correlated features.
	rng := sim.NewRNG(4)
	n := 500
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Normal(1, 2)
		b := a + rng.Normal(0, 0.5) // correlated with a
		c := rng.Normal(-1, 1)
		rows[i] = []float64{a, b, c}
		y[i] = 2*a + 0.5*b - c + 3 + rng.Normal(0, 0.01)
	}
	reg := FitRegression(linalg.FromRows(rows), y, 3)
	// With all components kept, PCR equals OLS: coefficients recovered.
	want := []float64{2, 0.5, -1}
	for j, w := range want {
		if math.Abs(reg.Weights[j]-w) > 0.05 {
			t.Fatalf("weight %d = %v, want %v (all: %v)", j, reg.Weights[j], w, reg.Weights)
		}
	}
	if math.Abs(reg.Intercept-3) > 0.1 {
		t.Fatalf("intercept = %v, want ~3", reg.Intercept)
	}
	if rmse := reg.RMSE(linalg.FromRows(rows), y); rmse > 0.05 {
		t.Fatalf("RMSE = %v, want < 0.05", rmse)
	}
}

func TestRegressionTruncatedStableUnderCollinearity(t *testing.T) {
	// Two nearly identical features; truncated PCR must still predict well
	// and produce finite weights.
	rng := sim.NewRNG(5)
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Normal(0, 1)
		rows[i] = []float64{a, a + rng.Normal(0, 1e-4), rng.Normal(0, 1)}
		y[i] = 3*a + rows[i][2]
	}
	reg := FitRegression(linalg.FromRows(rows), y, 0) // auto-select k
	for _, w := range reg.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight: %v", reg.Weights)
		}
	}
	if rmse := reg.RMSE(linalg.FromRows(rows), y); rmse > 0.1 {
		t.Fatalf("truncated PCR RMSE = %v", rmse)
	}
	// Near-duplicate features should receive near-equal weight (the PCA
	// solution splits the coefficient, unlike raw OLS which can explode).
	if math.Abs(reg.Weights[0]-reg.Weights[1]) > 0.5 {
		t.Fatalf("collinear weights diverged: %v", reg.Weights)
	}
}

func TestRegressionAutoSelectExplains95(t *testing.T) {
	rng := sim.NewRNG(6)
	n := 200
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Normal(0, 5)
		rows[i] = []float64{a, a * 0.99, a * 1.01}
		y[i] = a
	}
	reg := FitRegression(linalg.FromRows(rows), y, 0)
	if reg.K != 1 {
		t.Fatalf("auto-selected k = %d, want 1 for rank-1 data", reg.K)
	}
	if reg.Explained < 0.95 {
		t.Fatalf("explained = %v", reg.Explained)
	}
}

func TestFitTooFewSamplesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fit with one sample did not panic")
		}
	}()
	Fit(linalg.FromRows([][]float64{{1, 2}}))
}

func TestPredictDimensionMismatchPanics(t *testing.T) {
	reg := &Regression{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("Predict with wrong dims did not panic")
		}
	}()
	reg.Predict([]float64{1})
}

func TestZeroVarianceDegenerate(t *testing.T) {
	// Constant features: Fit must not blow up, explained variance is 1.
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	m := Fit(linalg.FromRows(rows))
	if ev := m.ExplainedVariance(1); ev != 1 {
		t.Fatalf("explained variance of constant data = %v, want 1", ev)
	}
}
