// Package pca implements Principal Component Analysis and the
// principal-component regression the multi-resource contention monitor
// uses to calibrate the weights w_i of Eq. 6 (§VI-A).
//
// The paper's motivation: the per-resource latency inflations L_CPU, L_IO,
// L_net observed on a shared serverless platform are strongly correlated
// (co-tenants that hammer the disk also burn CPU), so fitting the combined
// slowdown directly on the raw features is ill-conditioned. PCA merges the
// correlated features into a few uncorrelated components; regressing the
// observed slowdown on those components and mapping the coefficients back
// yields stable weights.
package pca

import (
	"fmt"
	"math"

	"amoeba/internal/linalg"
)

// Model holds a fitted PCA basis.
type Model struct {
	Means      []float64      // per-feature means removed before projection
	Components *linalg.Matrix // columns are principal directions, descending variance
	Variances  []float64      // eigenvalues (variance along each component)
}

// Fit computes the PCA basis of the samples (one row per observation,
// one column per feature). It panics with fewer than two samples.
func Fit(samples *linalg.Matrix) *Model {
	if samples.Rows < 2 {
		panic("pca: Fit needs at least 2 samples")
	}
	cov := linalg.Covariance(samples)
	vals, vecs := linalg.EigenSym(cov)
	// Covariance is PSD; clamp tiny negative eigenvalues from roundoff.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &Model{
		Means:      samples.ColumnMeans(),
		Components: vecs,
		Variances:  vals,
	}
}

// Dims returns the number of input features.
func (m *Model) Dims() int { return len(m.Means) }

// ExplainedVariance returns the fraction of total variance captured by the
// first k components. It panics if k is out of range.
func (m *Model) ExplainedVariance(k int) float64 {
	if k < 0 || k > len(m.Variances) {
		panic(fmt.Sprintf("pca: k=%d out of range", k))
	}
	total, head := 0.0, 0.0
	for i, v := range m.Variances {
		total += v
		if i < k {
			head += v
		}
	}
	if total == 0 {
		return 1 // degenerate: no variance at all, any basis explains it
	}
	return head / total
}

// ComponentsFor returns the smallest k whose components explain at least
// the given fraction of variance.
func (m *Model) ComponentsFor(fraction float64) int {
	for k := 1; k <= len(m.Variances); k++ {
		if m.ExplainedVariance(k) >= fraction {
			return k
		}
	}
	return len(m.Variances)
}

// Transform projects one observation onto the first k components.
// It panics if the observation or k does not match the fitted basis.
func (m *Model) Transform(x []float64, k int) []float64 {
	if len(x) != m.Dims() {
		panic("pca: Transform dimension mismatch")
	}
	if k <= 0 || k > m.Dims() {
		panic(fmt.Sprintf("pca: k=%d out of range", k))
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := 0; j < m.Dims(); j++ {
			s += (x[j] - m.Means[j]) * m.Components.At(j, c)
		}
		out[c] = s
	}
	return out
}

// Regression is a fitted principal-component regression: y ≈ x · Weights
// + Intercept in the *original* feature space, with the coefficients
// estimated in the truncated component space for stability.
type Regression struct {
	Weights   []float64
	Intercept float64
	K         int     // components used
	Explained float64 // variance fraction they capture
}

// FitRegression fits y on the rows of samples using the first k principal
// components (k <= 0 selects the smallest k explaining >= 95% variance).
// It panics if the sample and target counts disagree.
func FitRegression(samples *linalg.Matrix, y []float64, k int) *Regression {
	if samples.Rows != len(y) {
		panic("pca: FitRegression shape mismatch")
	}
	model := Fit(samples)
	if k <= 0 {
		k = model.ComponentsFor(0.95)
	}
	if k > model.Dims() {
		k = model.Dims()
	}

	// Project all samples.
	z := linalg.NewMatrix(samples.Rows, k)
	for i := 0; i < samples.Rows; i++ {
		row := make([]float64, samples.Cols)
		for j := 0; j < samples.Cols; j++ {
			row[j] = samples.At(i, j)
		}
		p := model.Transform(row, k)
		for c := 0; c < k; c++ {
			z.Set(i, c, p[c])
		}
	}

	// Centre y, regress on the (already centred) components.
	ymean := 0.0
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(len(y))
	yc := make([]float64, len(y))
	for i, v := range y {
		yc[i] = v - ymean
	}
	beta := linalg.SolveLeastSquares(z, yc)

	// Map the component coefficients back to original features:
	// w = V_k beta.
	weights := make([]float64, model.Dims())
	for j := 0; j < model.Dims(); j++ {
		s := 0.0
		for c := 0; c < k; c++ {
			s += model.Components.At(j, c) * beta[c]
		}
		weights[j] = s
	}
	// Intercept so that prediction is exact at the feature means.
	intercept := ymean
	for j, w := range weights {
		intercept -= w * model.Means[j]
	}
	return &Regression{
		Weights:   weights,
		Intercept: intercept,
		K:         k,
		Explained: model.ExplainedVariance(k),
	}
}

// Predict evaluates the regression at x. It panics on a dimension
// mismatch with the fitted weights.
func (r *Regression) Predict(x []float64) float64 {
	if len(x) != len(r.Weights) {
		panic("pca: Predict dimension mismatch")
	}
	s := r.Intercept
	for j, w := range r.Weights {
		s += w * x[j]
	}
	return s
}

// RMSE returns the root-mean-square error of the regression over the given
// samples. It panics if the sample and target counts disagree.
func (r *Regression) RMSE(samples *linalg.Matrix, y []float64) float64 {
	if samples.Rows != len(y) {
		panic("pca: RMSE shape mismatch")
	}
	s := 0.0
	row := make([]float64, samples.Cols)
	for i := 0; i < samples.Rows; i++ {
		for j := 0; j < samples.Cols; j++ {
			row[j] = samples.At(i, j)
		}
		d := r.Predict(row) - y[i]
		s += d * d
	}
	return math.Sqrt(s / float64(samples.Rows))
}
