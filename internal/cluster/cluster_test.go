package cluster

import "testing"

func TestDefaultNodeMatchesTableII(t *testing.T) {
	n := DefaultNode("x")
	if n.Cores != 40 {
		t.Errorf("cores = %d, want 40", n.Cores)
	}
	if n.MemMB != 256*1024 {
		t.Errorf("mem = %v, want 256GB", n.MemMB)
	}
	if n.NetMbps != 25000 {
		t.Errorf("net = %v, want 25000 Mb/s", n.NetMbps)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("default node invalid: %v", err)
	}
}

func TestCapacityVector(t *testing.T) {
	n := DefaultNode("x")
	c := n.Capacity()
	if c.CPU != 40 || c.MemMB != 256*1024 || c.DiskMBs != n.DiskMBps || c.NetMbs != 25000 {
		t.Errorf("capacity = %v", c)
	}
}

func TestValidateRejectsBadNodes(t *testing.T) {
	bad := []Node{
		{Name: "a", Cores: 0, MemMB: 1, DiskMBps: 1, NetMbps: 1},
		{Name: "b", Cores: 1, MemMB: 0, DiskMBps: 1, NetMbps: 1},
		{Name: "c", Cores: 1, MemMB: 1, DiskMBps: -1, NetMbps: 1},
	}
	for _, n := range bad {
		if n.Validate() == nil {
			t.Errorf("node %v accepted", n)
		}
	}
}

func TestDefaultCluster(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default cluster invalid: %v", err)
	}
	names := map[string]bool{c.IaaS.Name: true, c.Serverless.Name: true, c.Client.Name: true}
	if len(names) != 3 {
		t.Error("cluster nodes not distinctly named")
	}
}
