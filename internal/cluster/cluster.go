// Package cluster models the experimental platform of the paper's Table
// II: nodes with a fixed core count, DRAM size, NVMe disk bandwidth, and
// NIC bandwidth, wired by a 25 Gb/s switch. One node hosts the shared
// serverless platform, one hosts IaaS VMs, and one generates queries and
// runs the controller/monitor — mirroring the paper's 3-node testbed.
package cluster

import (
	"fmt"

	"amoeba/internal/resources"
)

// Node describes one physical machine.
type Node struct {
	Name     string
	Cores    int     // physical cores
	MemMB    float64 // DRAM in MB
	DiskMBps float64 // sustained disk bandwidth, MB/s
	NetMbps  float64 // NIC bandwidth, Mb/s
}

// DefaultNode returns the Table II configuration: Intel Xeon Platinum
// 8163, 40 cores, 256 GB DRAM, NVMe SSD, 25 Gb/s NIC. The NVMe bandwidth
// is not listed in the table; 2 GB/s is a representative sustained figure
// for that generation of drive.
func DefaultNode(name string) Node {
	return Node{
		Name:     name,
		Cores:    40,
		MemMB:    256 * 1024,
		DiskMBps: 2000,
		NetMbps:  25000,
	}
}

// Capacity returns the node's resources as a vector.
func (n Node) Capacity() resources.Vector {
	return resources.Vector{
		CPU:     float64(n.Cores),
		MemMB:   n.MemMB,
		DiskMBs: n.DiskMBps,
		NetMbs:  n.NetMbps,
	}
}

// Validate reports configuration errors.
func (n Node) Validate() error {
	if n.Cores <= 0 {
		return fmt.Errorf("cluster: node %q has %d cores", n.Name, n.Cores)
	}
	if n.MemMB <= 0 || n.DiskMBps <= 0 || n.NetMbps <= 0 {
		return fmt.Errorf("cluster: node %q has non-positive capacity %v", n.Name, n.Capacity())
	}
	return nil
}

func (n Node) String() string {
	return fmt.Sprintf("%s(%d cores, %.0fGB, %.0fMB/s disk, %.0fMb/s net)",
		n.Name, n.Cores, n.MemMB/1024, n.DiskMBps, n.NetMbps)
}

// Cluster is the paper's 3-node testbed layout.
type Cluster struct {
	IaaS       Node // hosts the per-service VM groups
	Serverless Node // hosts the shared container pool
	Client     Node // generates queries, runs controller + monitor
}

// Default returns the Table II cluster: three identical nodes.
func Default() Cluster {
	return Cluster{
		IaaS:       DefaultNode("iaas"),
		Serverless: DefaultNode("serverless"),
		Client:     DefaultNode("client"),
	}
}

// Validate reports configuration errors on any node.
func (c Cluster) Validate() error {
	for _, n := range []Node{c.IaaS, c.Serverless, c.Client} {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}
