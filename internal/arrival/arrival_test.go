package arrival

import (
	"math"
	"testing"

	"amoeba/internal/sim"
	"amoeba/internal/trace"
)

func TestPoissonRateMatchesConstantTrace(t *testing.T) {
	s := sim.New(1)
	var n int
	g := New(s, trace.Constant{QPS: 50}, func(sim.Time) { n++ })
	g.Start()
	s.Run(1000)
	want := 50_000.0
	if math.Abs(float64(n)-want)/want > 0.02 {
		t.Fatalf("got %d arrivals over 1000s at 50 QPS, want ~%v", n, want)
	}
	if g.Count() != uint64(n) {
		t.Errorf("Count = %d, callback fired %d times", g.Count(), n)
	}
}

func TestThinningTracksTimeVaryingRate(t *testing.T) {
	s := sim.New(2)
	var early, late int
	g := New(s, trace.Step{Before: 10, After: 100, At: 500}, func(tt sim.Time) {
		if tt < 500 {
			early++
		} else {
			late++
		}
	})
	g.Start()
	s.Run(1000)
	// Expect ~5000 before, ~50000 after.
	if math.Abs(float64(early)-5000) > 400 {
		t.Errorf("early arrivals %d, want ~5000", early)
	}
	if math.Abs(float64(late)-50000) > 1500 {
		t.Errorf("late arrivals %d, want ~50000", late)
	}
}

func TestInterarrivalsExponential(t *testing.T) {
	// For a constant-rate process the interarrival CV must be ~1.
	s := sim.New(3)
	var prev float64
	var diffs []float64
	g := New(s, trace.Constant{QPS: 20}, func(tt sim.Time) {
		diffs = append(diffs, float64(tt)-prev)
		prev = float64(tt)
	})
	g.Start()
	s.Run(2000)
	mean, m2 := 0.0, 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(len(diffs))
	for _, d := range diffs {
		m2 += (d - mean) * (d - mean)
	}
	cv := math.Sqrt(m2/float64(len(diffs)-1)) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("interarrival CV = %v, want ~1 (exponential)", cv)
	}
}

func TestStop(t *testing.T) {
	s := sim.New(4)
	var n int
	g := New(s, trace.Constant{QPS: 100}, func(sim.Time) { n++ })
	g.Start()
	s.At(10, func() { g.Stop() })
	s.Run(100)
	// ~1000 arrivals in the first 10s, none after.
	if n < 800 || n > 1200 {
		t.Fatalf("arrivals after Stop: n=%d, want ~1000", n)
	}
}

func TestZeroTraceGeneratesNothing(t *testing.T) {
	s := sim.New(5)
	g := New(s, trace.Constant{QPS: 0}, func(sim.Time) { t.Error("arrival from zero trace") })
	g.Start()
	s.Run(100)
	if g.Count() != 0 {
		t.Errorf("Count = %d", g.Count())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := sim.New(42)
		var times []float64
		g := New(s, trace.Constant{QPS: 10}, func(tt sim.Time) { times = append(times, float64(tt)) })
		g.Start()
		s.Run(50)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNilCallbackPanics(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	New(s, trace.Constant{QPS: 1}, nil)
}

// TestZeroAllocFire asserts the steady-state thinning loop — accept
// test, arrival callback, self-reschedule through the one bound fire
// method — allocates nothing once the kernel's slab is warm.
//
//amoeba:alloctest arrival.Generator.fire
func TestZeroAllocFire(t *testing.T) {
	s := sim.New(6)
	g := New(s, trace.Constant{QPS: 200}, func(sim.Time) {})
	g.Start()
	s.Run(50) // warm: slab, free list and heap at steady-state capacity

	horizon := s.Now()
	allocs := testing.AllocsPerRun(100, func() {
		horizon += 5
		s.Run(horizon)
	})
	if allocs != 0 {
		t.Errorf("arrival candidates allocate %.3f objects per 5s batch, want 0", allocs)
	}
	if g.Count() == 0 {
		t.Fatal("generator produced no arrivals")
	}
}
