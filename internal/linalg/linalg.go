// Package linalg implements the small dense linear algebra needed by the
// contention monitor: covariance matrices, a Jacobi eigensolver for
// symmetric matrices (PCA), and least squares via normal equations
// (principal-component regression). Matrices here are tiny (3-10
// dimensions), so clarity wins over blocking or SIMD tricks.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix with the given shape.
// It panics if either dimension is non-positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
// It panics on empty or ragged input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * o. It panics if the inner dimensions disagree.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m * v for a column vector v. It panics if the vector
// length differs from the column count.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// ColumnMeans returns the mean of each column.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			means[j] += m.At(i, j)
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// CenterColumns subtracts each column's mean in place and returns the
// means that were removed.
func (m *Matrix) CenterColumns() []float64 {
	means := m.ColumnMeans()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			m.Set(i, j, m.At(i, j)-means[j])
		}
	}
	return means
}

// Covariance returns the sample covariance matrix of the rows of m
// (columns are variables). It panics with fewer than two rows.
func Covariance(m *Matrix) *Matrix {
	if m.Rows < 2 {
		panic("linalg: Covariance needs at least 2 samples")
	}
	c := m.Clone()
	c.CenterColumns()
	cov := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			s := 0.0
			for r := 0; r < m.Rows; r++ {
				s += c.At(r, i) * c.At(r, j)
			}
			s /= float64(m.Rows - 1)
			cov.Set(i, j, s)
			cov.Set(j, i, s)
		}
	}
	return cov
}

// IsSymmetric reports whether m is symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
