package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At returned wrong elements")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set did not stick")
	}
	tr := m.T()
	if tr.At(1, 0) != 2 || tr.At(0, 1) != 3 {
		t.Fatal("transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.Mul(b)
}

func TestCenterColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}, {5, 30}})
	means := m.CenterColumns()
	if means[0] != 3 || means[1] != 20 {
		t.Fatalf("means = %v", means)
	}
	after := m.ColumnMeans()
	for j, v := range after {
		if !almostEq(v, 0, 1e-12) {
			t.Fatalf("column %d mean %v after centering", j, v)
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns: cov = var on the diagonal, same off.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := Covariance(m)
	if !almostEq(cov.At(0, 0), 1, 1e-12) {
		t.Errorf("var(x) = %v, want 1", cov.At(0, 0))
	}
	if !almostEq(cov.At(1, 1), 4, 1e-12) {
		t.Errorf("var(y) = %v, want 4", cov.At(1, 1))
	}
	if !almostEq(cov.At(0, 1), 2, 1e-12) {
		t.Errorf("cov(x,y) = %v, want 2", cov.At(0, 1))
	}
	if !cov.IsSymmetric(0) {
		t.Error("covariance not symmetric")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs := EigenSym(m)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEq(vals[i], w, 1e-9) {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvector for value 3 must be ±e0.
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-9) {
		t.Fatalf("leading eigenvector = [%v %v %v]", vecs.At(0, 0), vecs.At(1, 0), vecs.At(2, 0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(m)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Leading eigenvector proportional to (1,1)/sqrt2.
	r := vecs.At(0, 0) / vecs.At(1, 0)
	if !almostEq(r, 1, 1e-8) {
		t.Fatalf("leading eigenvector ratio = %v, want 1", r)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	// A v_k = lambda_k v_k for a random-ish symmetric matrix.
	m := FromRows([][]float64{
		{4, 1, 0.5, -0.2},
		{1, 3, 0.7, 0.1},
		{0.5, 0.7, 2, 0.3},
		{-0.2, 0.1, 0.3, 1},
	})
	vals, vecs := EigenSym(m)
	for k := 0; k < 4; k++ {
		v := make([]float64, 4)
		for r := 0; r < 4; r++ {
			v[r] = vecs.At(r, k)
		}
		av := m.MulVec(v)
		for r := 0; r < 4; r++ {
			if !almostEq(av[r], vals[k]*v[r], 1e-8) {
				t.Fatalf("A v != lambda v at k=%d r=%d: %v vs %v", k, r, av[r], vals[k]*v[r])
			}
		}
	}
	// Eigenvalues sorted descending, trace preserved.
	trace := 4.0 + 3 + 2 + 1
	sum := 0.0
	for i, v := range vals {
		sum += v
		if i > 0 && v > vals[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
	if !almostEq(sum, trace, 1e-8) {
		t.Fatalf("trace not preserved: %v vs %v", sum, trace)
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	m := FromRows([][]float64{{5, 2, 1}, {2, 4, 0.5}, {1, 0.5, 3}})
	_, vecs := EigenSym(m)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			dot := 0.0
			for r := 0; r < 3; r++ {
				dot += vecs.At(r, i) * vecs.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(dot, want, 1e-8) {
				t.Fatalf("v%d . v%d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestEigenSymNonSymmetricPanics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	defer func() {
		if recover() == nil {
			t.Error("non-symmetric EigenSym did not panic")
		}
	}()
	EigenSym(m)
}

func TestEigenSymPropertyPSD(t *testing.T) {
	// Covariance matrices are PSD: all eigenvalues >= 0 (within tolerance).
	f := func(raw [][3]uint8) bool {
		if len(raw) < 4 {
			return true
		}
		rows := make([][]float64, len(raw))
		for i, r := range raw {
			rows[i] = []float64{float64(r[0]), float64(r[1]) * 0.5, float64(r[2]) * 2}
		}
		cov := Covariance(FromRows(rows))
		vals, _ := EigenSym(cov)
		for _, v := range vals {
			if v < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	x := SolveSPD(a, []float64{10, 8})
	// Verify A x = b.
	b := a.MulVec(x)
	if !almostEq(b[0], 10, 1e-10) || !almostEq(b[1], 8, 1e-10) {
		t.Fatalf("SolveSPD residual: %v", b)
	}
}

func TestSolveSPDNotPDPanics(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {0, 0}})
	defer func() {
		if recover() == nil {
			t.Error("SolveSPD on singular matrix did not panic")
		}
	}()
	SolveSPD(a, []float64{1, 1})
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 x1 + 3 x2, exactly determined.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	b := []float64{2, 3, 5, 7}
	x := SolveLeastSquares(a, b)
	if !almostEq(x[0], 2, 1e-6) || !almostEq(x[1], 3, 1e-6) {
		t.Fatalf("least squares = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy y = 1.5 x; slope recovered within noise scale.
	rows := make([][]float64, 50)
	b := make([]float64, 50)
	for i := range rows {
		x := float64(i)
		rows[i] = []float64{x}
		noise := 0.1 * math.Sin(float64(i)*12.9898)
		b[i] = 1.5*x + noise
	}
	sol := SolveLeastSquares(FromRows(rows), b)
	if !almostEq(sol[0], 1.5, 0.01) {
		t.Fatalf("slope = %v, want ~1.5", sol[0])
	}
}

func TestLeastSquaresCollinearColumns(t *testing.T) {
	// Two identical columns: ridge keeps this solvable and the fit exact.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	x := SolveLeastSquares(a, b)
	pred := a.MulVec(x)
	for i := range b {
		if !almostEq(pred[i], b[i], 1e-3) {
			t.Fatalf("collinear fit prediction %v, want %v", pred, b)
		}
	}
}
