package linalg

import (
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. Results are sorted by
// descending eigenvalue; column k of the returned matrix is the
// eigenvector for values[k]. The input is not modified.
//
// Jacobi is quadratically convergent and unconditionally stable for the
// tiny symmetric (covariance) matrices the contention monitor builds, so a
// full QR implementation would be unwarranted complexity.
//
// It panics if the matrix is not square and symmetric.
func EigenSym(m *Matrix) (values []float64, vectors *Matrix) {
	if m.Rows != m.Cols {
		panic("linalg: EigenSym on non-square matrix")
	}
	if !m.IsSymmetric(1e-9 * (1 + maxAbs(m))) {
		panic("linalg: EigenSym on non-symmetric matrix")
	}
	n := m.Rows
	a := m.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-24*(1+maxAbs(a)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation G(p, q, theta) on both sides of a.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for k, p := range pairs {
		values[k] = p.val
		for r := 0; r < n; r++ {
			vectors.Set(r, k, v.At(r, p.col))
		}
	}
	return values, vectors
}

func maxAbs(m *Matrix) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SolveLeastSquares returns x minimising ||A x - b||² via the normal
// equations with a small ridge term for numerical safety. A has one row
// per sample; b has one entry per sample.
// It panics if the row count of A differs from len(b).
func SolveLeastSquares(a *Matrix, b []float64) []float64 {
	if a.Rows != len(b) {
		panic("linalg: SolveLeastSquares shape mismatch")
	}
	at := a.T()
	ata := at.Mul(a)
	// Ridge regularisation keeps the system solvable when columns are
	// collinear (exactly the situation PCA exists to handle).
	ridge := 1e-9 * (1 + maxAbs(ata))
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb := at.MulVec(b)
	return SolveSPD(ata, atb)
}

// SolveSPD solves A x = b for a symmetric positive-definite A via Cholesky
// decomposition. It panics if the shapes disagree or A is not positive
// definite.
func SolveSPD(a *Matrix, b []float64) []float64 {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveSPD shape mismatch")
	}
	// Cholesky: A = L L^T.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					panic("linalg: SolveSPD on non-positive-definite matrix")
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
