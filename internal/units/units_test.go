package units

import (
	"math"
	"testing"
)

func TestSecondsMillisRoundTrip(t *testing.T) {
	s := Seconds(0.18)
	if got := s.Millis(); got != 180 {
		t.Fatalf("0.18 s = %v ms, want 180", got)
	}
	if got := s.Millis().Seconds(); math.Abs(got.Raw()-0.18) > 1e-12 {
		t.Fatalf("round trip %v, want 0.18", got)
	}
}

func TestInWindowIsLittlesLawCount(t *testing.T) {
	// 100 QPS over a 0.18 s QoS window: 18 requests in flight.
	if got := QPS(100).InWindow(Seconds(0.18)); math.Abs(got-18) > 1e-12 {
		t.Fatalf("InWindow = %v, want 18", got)
	}
}

func TestPeriodAndServiceTime(t *testing.T) {
	if got := QPS(4).Period(); got != Seconds(0.25) {
		t.Fatalf("Period(4 QPS) = %v, want 0.25 s", got)
	}
	if got := ServiceRate(12.5).ServiceTime(); got != Seconds(0.08) {
		t.Fatalf("ServiceTime(12.5/s) = %v, want 0.08 s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Period(0) did not panic")
		}
	}()
	QPS(0).Period()
}

func TestCapacityAndUtilisation(t *testing.T) {
	mu := ServiceRate(12.5)
	if got := mu.Capacity(10); got != QPS(125) {
		t.Fatalf("Capacity(10) = %v, want 125 QPS", got)
	}
	if got := QPS(25).Utilisation(mu); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Utilisation = %v, want 2 busy containers", got)
	}
}

func TestScaleRatioMinMax(t *testing.T) {
	if got := Scale(QPS(100), 0.8); got != QPS(80) {
		t.Fatalf("Scale = %v, want 80", got)
	}
	if got := Ratio(Seconds(1), Seconds(4)); got != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
	if got := Min(Seconds(1), Seconds(2)); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := Max(Seconds(1), Seconds(2)); got != 2 {
		t.Fatalf("Max = %v, want 2", got)
	}
}
