// Package units defines dimension-carrying scalar types for the model
// math of Eq. 5–8. The Amoeba papers' quantities — latencies and periods
// in seconds, arrival rates in queries per second, per-container service
// rates, dimensionless fractions, memory sizes — were historically passed
// around as indistinguishable bare float64, so a swapped argument or a
// ms/s mixup type-checked silently. Each type here is a defined type over
// float64: same-unit arithmetic works natively, cross-unit arithmetic is
// rejected by the compiler, and the deliberate boundary crossings are
// funnelled through the explicit helpers below.
//
// Two invariants are machine-checked by cmd/amoeba-vet:
//
//   - unitcheck forbids float64(x) casts that strip a unit type outside
//     this package (use Raw), conversions that reinterpret one unit as
//     another (use the conversion helpers), untyped literals flowing into
//     unit-typed parameters (wrap in the constructor conversion, e.g.
//     units.Seconds(0.18)), and same-unit products that would square the
//     dimension.
//   - boundscheck enforces the //amoeba:range contracts annotated on
//     declarations in this and other packages.
//
// The queueing-theory core (queueing.MMN, queueing.MMNK) deliberately
// stays in raw float64: it is textbook M/M/N math in normalised rate
// space, and its public callers (queueing's Eq. 5–8 functions) form the
// typed boundary.
package units

// Seconds is a duration or latency in wall-clock seconds — QoS targets,
// execution times, cold-start delays, sample periods.
type Seconds float64

// Millis is a duration in milliseconds. It exists so that
// millisecond-quoted inputs (traces, external configs) must be converted
// explicitly instead of being mistaken for seconds.
type Millis float64

// QPS is an arrival rate in queries per second — loads V_u, admissible
// loads λ(μ_n), trace rates.
type QPS float64

// ServiceRate is a per-container service rate μ in queries per second.
// It is kept distinct from QPS: λ and μ share a dimension but never a
// role, and conflating them is exactly the class of bug Eq. 5 is
// sensitive to.
type ServiceRate float64

// Fraction is a dimensionless ratio constrained to the unit interval —
// quantiles, EWMA factors, allowed-error and trough fractions.
//
//amoeba:range [0,1]
type Fraction float64

// MegaBytes is a memory size in MB — container sizes, platform memory.
type MegaBytes float64

// Cores is a CPU capacity or demand in cores.
type Cores float64

// Raw strips the unit explicitly. Every call site is greppable; unitcheck
// forbids the silent float64(x) spelling outside this package.
func (s Seconds) Raw() float64 { return float64(s) }

// Raw strips the unit explicitly.
func (m Millis) Raw() float64 { return float64(m) }

// Raw strips the unit explicitly.
func (q QPS) Raw() float64 { return float64(q) }

// Raw strips the unit explicitly.
func (mu ServiceRate) Raw() float64 { return float64(mu) }

// Raw strips the unit explicitly.
func (f Fraction) Raw() float64 { return float64(f) }

// Raw strips the unit explicitly.
func (mb MegaBytes) Raw() float64 { return float64(mb) }

// Raw strips the unit explicitly.
func (c Cores) Raw() float64 { return float64(c) }

// Millis converts seconds to milliseconds.
func (s Seconds) Millis() Millis { return Millis(s * 1e3) }

// Seconds converts milliseconds to seconds.
func (m Millis) Seconds() Seconds { return Seconds(m / 1e3) }

// InWindow returns the expected number of arrivals in a window of length
// t at rate q — the dimensionless q·t product (Little's-law style count)
// that Eq. 7's V_u·QoS_t prewarm bound is built on.
func (q QPS) InWindow(t Seconds) float64 { return float64(q) * float64(t) }

// Period returns the inter-arrival period 1/q. It panics on a
// non-positive rate: a probing or sampling rate of zero has no period,
// and callers obtain q from validated configuration.
func (q QPS) Period() Seconds {
	if q <= 0 {
		panic("units: Period of non-positive QPS")
	}
	return Seconds(1 / float64(q))
}

// ServiceTime returns the mean time one container spends serving one
// query, 1/μ. It panics on a non-positive rate; μ is produced by the
// controller's own prediction pipeline, never taken from user input.
func (mu ServiceRate) ServiceTime() Seconds {
	if mu <= 0 {
		panic("units: ServiceTime of non-positive service rate")
	}
	return Seconds(1 / float64(mu))
}

// Capacity returns the aggregate throughput n·μ of n containers — the
// M/M/N system's saturation arrival rate.
func (mu ServiceRate) Capacity(n int) QPS { return QPS(float64(n) * float64(mu)) }

// Utilisation returns the offered load ρ·N = λ/μ in containers: how many
// containers the arrival rate keeps busy on average.
func (q QPS) Utilisation(mu ServiceRate) float64 { return float64(q) / float64(mu) }

// Scale multiplies a dimensioned quantity by a dimensionless factor
// without stripping its unit — margins, headrooms, EWMA blends.
func Scale[T ~float64](x T, factor float64) T { return T(float64(x) * factor) }

// Ratio returns the dimensionless quotient of two same-unit quantities.
// It is the sanctioned spelling for a/b where both carry the same unit
// (unitcheck flags the bare division, whose result Go would mistype as
// the operand unit).
func Ratio[T ~float64](num, den T) float64 { return float64(num) / float64(den) }

// Min returns the smaller of two same-unit quantities.
func Min[T ~float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two same-unit quantities.
func Max[T ~float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
