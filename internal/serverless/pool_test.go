package serverless

import (
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/metrics"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func TestBoundedQueueRejects(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.MaxQueue = 5
	p := New(s, cfg)
	rejects := 0
	p.Register(workload.Float(), nil, WithNMax(1), WithRejectHandler(func() { rejects++ }))
	s.At(1, func() {
		for i := 0; i < 20; i++ {
			p.Invoke("float")
		}
	})
	s.Run(100)
	// One runs (bound to the cold container), five queue, the rest bounce.
	if p.Rejected("float") == 0 {
		t.Fatal("no rejections with a full bounded queue")
	}
	if rejects != p.Rejected("float") {
		t.Errorf("handler fired %d times, counter says %d", rejects, p.Rejected("float"))
	}
	if got := p.Rejected("float") + 6; got != 20 {
		t.Errorf("accepted+rejected mismatch: %d rejected of 20", p.Rejected("float"))
	}
}

func TestUnboundedQueueNeverRejects(t *testing.T) {
	s := sim.New(2)
	p := New(s, DefaultConfig()) // MaxQueue = 0
	p.Register(workload.Float(), nil, WithNMax(1))
	s.At(1, func() {
		for i := 0; i < 200; i++ {
			p.Invoke("float")
		}
	})
	s.Run(10)
	if p.Rejected("float") != 0 {
		t.Errorf("%d rejections on an unbounded queue", p.Rejected("float"))
	}
}

func TestMinWarmPoolFillsAndSurvivesReclaim(t *testing.T) {
	s := sim.New(3)
	p := New(s, DefaultConfig())
	p.Register(workload.Float(), nil, WithMinWarm(3))
	if p.MinWarm("float") != 3 {
		t.Fatalf("MinWarm = %d", p.MinWarm("float"))
	}
	s.Run(20) // enough for the initial fill's cold starts
	if got := p.IdleContainers("float"); got != 3 {
		t.Fatalf("idle = %d after initial fill, want 3", got)
	}
	// Far past the idle timeout the floor must still be warm.
	s.Run(500)
	if got := p.IdleContainers("float"); got != 3 {
		t.Errorf("idle = %d after reclaim window, want the floor 3", got)
	}
}

func TestMinWarmReplenishesAfterUse(t *testing.T) {
	s := sim.New(4)
	p := New(s, DefaultConfig())
	var cold int
	p.Register(workload.Float(), func(r metrics.QueryRecord) {
		if r.Breakdown.ColdStart > 0 {
			cold++
		}
	}, WithMinWarm(2))
	s.Run(20)
	// A slow trickle: every query should find a warm container, and the
	// pool should top itself back up in the background.
	g := arrival.New(s, trace.Constant{QPS: 0.2}, func(sim.Time) { p.Invoke("float") })
	g.Start()
	s.Run(400)
	if cold != 0 {
		t.Errorf("%d cold starts with a warm-pool floor", cold)
	}
	if got := p.IdleContainers("float"); got < 2 {
		t.Errorf("idle = %d, want the floor 2 restored", got)
	}
}

func TestMinWarmFloorNotEvicted(t *testing.T) {
	s := sim.New(5)
	cfg := DefaultConfig()
	cfg.Node.MemMB = 1200 // room for ~4 containers
	cfg.MemReserve = 0
	p := New(s, cfg)
	a := workload.Float()
	a.Name = "a"
	b := workload.Float()
	b.Name = "b"
	p.Register(a, nil, WithMinWarm(2))
	p.Register(b, nil)
	s.Run(20)
	// b needs containers; a's floor must not be cannibalised.
	s.At(21, func() {
		p.Invoke("b")
		p.Invoke("b")
	})
	s.Run(60)
	if got := p.IdleContainers("a"); got < 2 {
		t.Errorf("a's warm floor shrank to %d under b's pressure", got)
	}
}

func TestConfigRejectsNegativeQueueCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxQueue = -1
	if cfg.Validate() == nil {
		t.Error("negative queue cap accepted")
	}
}

func TestWithMinWarmNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative warm floor did not panic")
		}
	}()
	s := sim.New(6)
	p := New(s, DefaultConfig())
	p.Register(workload.Float(), nil, WithMinWarm(-1))
}
