// Package serverless simulates the shared FaaS platform (the paper's
// modified Apache OpenWhisk, §V): a memory-bounded pool of per-function
// containers fed by a FIFO activation queue.
//
// Lifecycle per the paper's Fig. 7: an arriving query is enqueued; a ready
// (warm) container picks it up, otherwise the platform cold-starts a new
// container — allocating its 256 MB (Table II), paying the cold-start
// delay — and the query runs there. A container executes one activation
// at a time and stays warm for an idle window after finishing; reuse of
// warm containers is the platform's main defence against cold starts, and
// the prewarm API lets Amoeba's execution engine warm capacity *before*
// routing queries (§V-A).
//
// While a function body executes, its resource demand joins the
// platform-wide aggregate; the contention model converts the aggregate
// into per-resource pressure and a latency multiplier, sampled when the
// body starts (frozen-at-dispatch, see DESIGN.md).
package serverless

import (
	"fmt"
	"math"

	"amoeba/internal/cluster"
	"amoeba/internal/contention"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/resources"
	"amoeba/internal/sim"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Config tunes the platform.
type Config struct {
	Node cluster.Node

	// ColdStartMean and ColdStartCV parameterise the log-normal cold
	// start delay. The paper (§V-A) quotes one to three seconds.
	ColdStartMean units.Seconds
	ColdStartCV   float64

	// CodeLoadColdFactor multiplies a function's hot code-load time on
	// the cold path (pulling the image vs touching the cache).
	CodeLoadColdFactor float64

	// IdleTimeout is how long a warm container lingers before reclaim.
	IdleTimeout units.Seconds

	// Delta is the per-tenant share bound; n_max = min(1/Delta, M0/M1)
	// (§IV-A).
	Delta units.Fraction

	// ContainerMemMB is the fixed container size (Table II: 256 MB).
	ContainerMemMB units.MegaBytes

	// MemReserve is the fraction of node memory kept for the platform
	// itself; containers may use the rest.
	MemReserve units.Fraction

	// MaxQueue bounds the shared activation queue (0 = unbounded). Public
	// platforms impose such a cap — the §I "concurrent request
	// threshold"; arrivals beyond it are rejected and counted.
	MaxQueue int
}

// DefaultConfig returns the Table II / §V configuration.
func DefaultConfig() Config {
	return Config{
		Node:               cluster.DefaultNode("serverless"),
		ColdStartMean:      1.2,
		ColdStartCV:        0.25,
		CodeLoadColdFactor: 8,
		IdleTimeout:        60,
		Delta:              0.10,
		ContainerMemMB:     workload.ContainerMemMB,
		MemReserve:         0.10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.ColdStartMean <= 0 || c.ColdStartCV < 0 {
		return fmt.Errorf("serverless: invalid cold start %v/%v", c.ColdStartMean, c.ColdStartCV)
	}
	if c.IdleTimeout <= 0 {
		return fmt.Errorf("serverless: non-positive idle timeout")
	}
	if c.Delta <= 0 || c.Delta > 1 {
		return fmt.Errorf("serverless: delta %v out of (0,1]", c.Delta)
	}
	if c.ContainerMemMB <= 0 {
		return fmt.Errorf("serverless: non-positive container memory")
	}
	if c.MemReserve < 0 || c.MemReserve >= 1 {
		return fmt.Errorf("serverless: mem reserve %v out of [0,1)", c.MemReserve)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("serverless: negative queue cap")
	}
	return nil
}

type containerState int

const (
	stateColdStarting containerState = iota
	statePrewarming
	stateIdle
	stateBusy
	stateDead
)

type container struct {
	id      int
	fn      *function
	state   containerState
	idleAt  sim.Time
	reclaim sim.EventHandle
	bound   *activation // query waiting for this cold start

	// Per-activation scratch, valid while state == stateBusy. The finish
	// and expire callbacks are built once per container so the warm
	// execute path schedules kernel events without allocating closures.
	arrived sim.Time
	bd      metrics.Breakdown
	demand  resources.Vector
	qt      obs.QueryTrace // trace context of the running activation
	execH   obs.SpanHandle // open exec phase span
	coldH   obs.SpanHandle // open cold-start phase span (cold path only)
	finish  func()         // completes the running activation
	expire  func()         // reclaims the container after an idle timeout
}

type activation struct {
	fn      *function
	arrived sim.Time
	qt      obs.QueryTrace // trace context opened at Invoke
	queueH  obs.SpanHandle // open queue-wait phase span
}

type function struct {
	profile workload.Profile
	// execMu and execSigma are the lognormal parameters of the body's
	// execution time, precomputed once at Register so the per-activation
	// hot path draws without re-deriving them.
	execMu     float64
	execSigma  float64
	nMax       int
	minWarm    int // floor of warm containers kept alive (pool strategy)
	warming    int // containers currently prewarming toward the floor
	onComplete func(metrics.QueryRecord)
	onReject   func()
	idle       []*container
	containers int // live containers (any state)
	usage      *resources.Usage
	inflight   int
	rejected   int
}

// Platform is the simulated serverless computing platform.
type Platform struct {
	sim    *sim.Simulator
	cfg    Config
	model  *contention.Model
	rng    *sim.RNG
	bus    *obs.Bus
	tracer *obs.Tracer
	fns    map[string]*function
	// coldMu and coldSigma are the lognormal parameters of the cold-start
	// delay, precomputed once at New from the validated config.
	coldMu    float64
	coldSigma float64
	queue     []*activation
	actFree   []*activation    // recycled activations (steady state allocates none)
	demand    resources.Vector // aggregate demand of running bodies
	memMB     float64          // memory allocated by live containers
	nextID    int
	// sharedMode freezes the pressure seen by executing bodies at the
	// externally supplied sharedPressure instead of deriving it from the
	// platform's own aggregate demand. The sharded runtime (core.RunSharded)
	// runs one platform per service shard and refreshes this value at every
	// epoch barrier with the pressure of the summed cross-shard demand, so
	// shards couple only through the barrier (DESIGN.md §15).
	sharedMode     bool
	sharedPressure contention.Pressure
	// counters
	coldStarts int
	evictions  int
	completed  uint64
}

// New creates a platform on the given simulator. It panics if the
// config fails validation.
func New(s *sim.Simulator, cfg Config) *Platform {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	coldMu, coldSigma := lognormalParams(cfg.ColdStartMean.Raw(), cfg.ColdStartCV)
	return &Platform{
		sim:       s,
		cfg:       cfg,
		model:     contention.NewModel(cfg.Node.Capacity()),
		rng:       s.RNG().Split(),
		fns:       make(map[string]*function),
		coldMu:    coldMu,
		coldSigma: coldSigma,
	}
}

// Model exposes the platform's ground-truth contention model (experiments
// and the profiler use it; the runtime controller must not — it only sees
// meter readings).
func (p *Platform) Model() *contention.Model { return p.model }

// SetBus attaches the telemetry bus; the platform emits QueryComplete on
// every finished activation and ColdStart on every container start. A
// nil bus (the default) keeps emission sites on their zero-cost path.
func (p *Platform) SetBus(b *obs.Bus) { p.bus = b }

// SetTracer attaches the causal tracer; every invocation then opens a
// trace with queue-wait/cold-start/exec phase spans. A nil tracer (the
// default) keeps every span site on its zero-cost guarded path.
func (p *Platform) SetTracer(t *obs.Tracer) { p.tracer = t }

// RegisterOption customises a function registration.
type RegisterOption func(*function)

// WithNMax overrides the per-function container cap (used by experiments
// that equalise serverless and IaaS resources, e.g. Fig. 3).
// It panics during Register if the cap is not positive.
func WithNMax(n int) RegisterOption {
	return func(f *function) {
		if n <= 0 {
			panic("serverless: WithNMax requires a positive cap")
		}
		f.nMax = n
	}
}

// WithMinWarm keeps at least n warm containers alive for the function at
// all times — the static pool-based cold-start mitigation of Lin &
// Glikson [20], implemented as an ablation against Amoeba's
// switch-triggered prewarming. The floor is replenished whenever reuse or
// reclaim would drop below it, and reclaim never shrinks the pool under
// the floor. It panics during Register if the floor is negative.
func WithMinWarm(n int) RegisterOption {
	return func(f *function) {
		if n < 0 {
			panic("serverless: negative warm-pool floor")
		}
		f.minWarm = n
	}
}

// WithRejectHandler installs a callback fired when the platform's
// bounded activation queue rejects an invocation.
func WithRejectHandler(fn func()) RegisterOption {
	return func(f *function) { f.onReject = fn }
}

// Register adds a function to the platform. onComplete receives every
// finished activation (may be nil). It panics if the profile is invalid
// or the function is already registered.
func (p *Platform) Register(profile workload.Profile, onComplete func(metrics.QueryRecord), opts ...RegisterOption) {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	if _, dup := p.fns[profile.Name]; dup {
		panic(fmt.Sprintf("serverless: duplicate function %q", profile.Name))
	}
	nMax, err := queueing.MaxContainers(p.cfg.Delta, p.usableMemMB(), p.cfg.ContainerMemMB)
	if err != nil {
		panic(err)
	}
	execMu, execSigma := lognormalParams(profile.ExecTime, profile.ExecCV)
	f := &function{
		profile:    profile,
		execMu:     execMu,
		execSigma:  execSigma,
		nMax:       nMax,
		onComplete: onComplete,
		usage:      resources.NewUsage(float64(p.sim.Now())),
	}
	for _, opt := range opts {
		opt(f)
	}
	p.fns[profile.Name] = f
	if f.minWarm > 0 {
		p.sim.After(0, func() { p.replenish(f) })
	}
}

func (p *Platform) usableMemMB() units.MegaBytes {
	return units.Scale(units.MegaBytes(p.cfg.Node.MemMB), 1-p.cfg.MemReserve.Raw())
}

// mustFn looks up a registered function. It panics on an unknown name:
// invoking a function that was never registered is a wiring bug.
func (p *Platform) mustFn(name string) *function {
	f, ok := p.fns[name]
	if !ok {
		panic(fmt.Sprintf("serverless: unknown function %q", name))
	}
	return f
}

// Invoke submits one query for the named function. When the platform's
// activation queue is bounded and full, the invocation is rejected.
func (p *Platform) Invoke(name string) {
	f := p.mustFn(name)
	if p.cfg.MaxQueue > 0 && len(p.queue) >= p.cfg.MaxQueue {
		f.rejected++
		if f.onReject != nil {
			f.onReject()
		}
		return
	}
	f.inflight++
	act := p.takeActivation(f)
	act.qt = p.tracer.StartQuery(name)
	act.queueH = p.tracer.Begin(units.Seconds(act.arrived), act.qt.Trace, act.qt.Span, 0,
		obs.PhaseQueueWait, name, metrics.BackendServerless.String())
	p.queue = append(p.queue, act)
	p.pump()
}

// takeActivation reuses a recycled activation or allocates a fresh one.
func (p *Platform) takeActivation(f *function) *activation {
	if n := len(p.actFree); n > 0 {
		act := p.actFree[n-1]
		p.actFree = p.actFree[:n-1]
		act.fn = f
		act.arrived = p.sim.Now()
		return act
	}
	return &activation{fn: f, arrived: p.sim.Now()}
}

// putActivation recycles an activation once execute has copied what it
// needs out of it.
func (p *Platform) putActivation(act *activation) {
	act.fn = nil
	act.qt = obs.QueryTrace{}
	act.queueH = obs.SpanHandle{}
	p.actFree = append(p.actFree, act)
}

// pump scans the FIFO queue in arrival order, placing every activation
// that can be placed right now.
func (p *Platform) pump() {
	remaining := p.queue[:0]
	for _, act := range p.queue {
		if !p.place(act) {
			remaining = append(remaining, act)
		}
	}
	p.queue = remaining
}

// place tries to run or bind the activation; reports success.
func (p *Platform) place(act *activation) bool {
	f := act.fn
	// 1. Reuse a warm container.
	if len(f.idle) > 0 {
		c := f.idle[len(f.idle)-1] // most recently used: best cache behaviour
		f.idle = f.idle[:len(f.idle)-1]
		c.reclaim.Cancel()
		c.reclaim = sim.EventHandle{} // drop the stale handle
		p.tracer.End(units.Seconds(p.sim.Now()), act.queueH)
		act.queueH = obs.SpanHandle{}
		p.execute(c, act, 0)
		p.replenish(f)
		return true
	}
	if f.containers >= f.nMax {
		return false
	}
	// 2. Cold start a new container if memory allows, evicting another
	// function's longest-idle container when the pool is full.
	if !p.memAvailable() && !p.evictIdle(f) {
		return false
	}
	if !p.memAvailable() {
		return false
	}
	c := p.newContainer(f, stateColdStarting)
	c.bound = act
	// The queue phase ends at binding; the cold-start phase covers the
	// bound wait for the container.
	nowS := units.Seconds(p.sim.Now())
	p.tracer.End(nowS, act.queueH)
	act.queueH = obs.SpanHandle{}
	c.coldH = p.tracer.Begin(nowS, act.qt.Trace, act.qt.Span, 0,
		obs.PhaseColdStart, f.profile.Name, metrics.BackendServerless.String())
	delay := p.sampleColdStart()
	p.sim.After(delay, func() {
		p.tracer.End(units.Seconds(p.sim.Now()), c.coldH)
		c.coldH = obs.SpanHandle{}
		if c.state == stateDead {
			return
		}
		if p.bus.Active() {
			p.bus.Emit(&obs.ColdStart{
				At:      units.Seconds(p.sim.Now()),
				Service: c.fn.profile.Name,
				Delay:   units.Seconds(delay),
			})
		}
		bound := c.bound
		c.bound = nil
		if bound == nil {
			p.makeIdle(c)
			p.pump()
			return
		}
		p.execute(c, bound, delay)
	})
	return true
}

func (p *Platform) memAvailable() bool {
	return units.MegaBytes(p.memMB)+p.cfg.ContainerMemMB <= p.usableMemMB()
}

// evictIdle destroys the longest-idle warm container belonging to any
// *other* function; reports whether one was found. Functions holding a
// warm-pool floor keep it: eviction never digs below minWarm.
func (p *Platform) evictIdle(requester *function) bool {
	var victim *container
	for _, f := range p.fns {
		if f == requester || len(f.idle) <= f.minWarm {
			continue
		}
		for _, c := range f.idle {
			if victim == nil || c.idleAt < victim.idleAt {
				victim = c
			}
		}
	}
	if victim == nil {
		return false
	}
	p.evictions++
	p.destroy(victim)
	return true
}

func (p *Platform) newContainer(f *function, st containerState) *container {
	p.nextID++
	c := &container{id: p.nextID, fn: f, state: st}
	c.finish = func() { p.finishExec(c) }
	c.expire = func() {
		// The warm-pool floor survives idle reclaim. Stale fires are
		// impossible: reuse cancels the reclaim handle, and the state
		// check guards the destroy.
		if c.state == stateIdle && len(c.fn.idle) > c.fn.minWarm {
			p.destroy(c)
		}
	}
	f.containers++
	p.memMB += p.cfg.ContainerMemMB.Raw()
	f.usage.Adjust(float64(p.sim.Now()), resources.Vector{MemMB: p.cfg.ContainerMemMB.Raw()})
	return c
}

func (p *Platform) destroy(c *container) {
	if c.state == stateDead {
		return
	}
	if c.state == stateIdle {
		f := c.fn
		for i, ic := range f.idle {
			if ic == c {
				f.idle = append(f.idle[:i], f.idle[i+1:]...)
				break
			}
		}
	}
	c.reclaim.Cancel()
	c.state = stateDead
	c.fn.containers--
	p.memMB -= p.cfg.ContainerMemMB.Raw()
	c.fn.usage.Adjust(float64(p.sim.Now()), resources.Vector{MemMB: -p.cfg.ContainerMemMB.Raw()})
}

func (p *Platform) makeIdle(c *container) {
	c.state = stateIdle
	c.idleAt = p.sim.Now()
	c.fn.idle = append(c.fn.idle, c)
	c.reclaim = p.sim.After(p.cfg.IdleTimeout.Raw(), c.expire)
}

// replenish keeps the function's warm-pool floor filled.
func (p *Platform) replenish(f *function) {
	for len(f.idle)+f.warming < f.minWarm {
		if !p.startPrewarmOne(f, nil) {
			return
		}
	}
}

// startPrewarmOne launches one prewarming container; reports whether it
// could be started (nMax and memory permitting). onWarm fires when the
// container becomes idle (or dies first).
func (p *Platform) startPrewarmOne(f *function, onWarm func()) bool {
	if f.containers >= f.nMax {
		return false
	}
	if !p.memAvailable() && !p.evictIdle(f) {
		return false
	}
	if !p.memAvailable() {
		return false
	}
	c := p.newContainer(f, statePrewarming)
	f.warming++
	// A prewarm cold start is its own (root-less) trace, causally linked
	// to the switch span that ordered the warming, if one is in progress.
	coldH := p.tracer.Begin(units.Seconds(p.sim.Now()), p.tracer.StartTrace(), 0,
		p.tracer.CauseFor(f.profile.Name), obs.PhaseColdStart,
		f.profile.Name, metrics.BackendServerless.String())
	delay := p.sampleColdStart()
	p.sim.After(delay, func() {
		p.tracer.End(units.Seconds(p.sim.Now()), coldH)
		f.warming--
		if c.state != stateDead {
			if p.bus.Active() {
				p.bus.Emit(&obs.ColdStart{
					At:      units.Seconds(p.sim.Now()),
					Service: f.profile.Name,
					Delay:   units.Seconds(delay),
					Prewarm: true,
				})
			}
			p.makeIdle(c)
			p.pump()
		}
		if onWarm != nil {
			onWarm()
		}
	})
	return true
}

//amoeba:noalloc
func (p *Platform) sampleColdStart() float64 {
	p.coldStarts++
	return p.rng.LogNormal(p.coldMu, p.coldSigma)
}

// execute models the activation's latency anatomy and demand. coldDelay
// is the cold-start time already paid before this call (zero on the warm
// path). The activation is recycled here: everything the completion needs
// is copied into the container's scratch fields, and the completion event
// is the container's prebuilt finish callback — the warm path schedules
// no closures and, in steady state, allocates nothing.
func (p *Platform) execute(c *container, act *activation, coldDelay float64) {
	f := c.fn
	prof := f.profile
	c.state = stateBusy

	now := p.sim.Now()
	c.arrived = act.arrived
	c.qt = act.qt
	p.putActivation(act)
	c.execH = p.tracer.Begin(units.Seconds(now), c.qt.Trace, c.qt.Span, 0,
		obs.PhaseExec, prof.Name, metrics.BackendServerless.String())
	queueWait := float64(now-c.arrived) - coldDelay
	if queueWait < 0 {
		queueWait = 0
	}

	codeLoad := prof.Overheads.CodeLoadHot
	if coldDelay > 0 {
		codeLoad *= p.cfg.CodeLoadColdFactor
	}

	// Function body: solo-run time scaled by the slowdown under the
	// pressure at dispatch; the lognormal parameters were fixed at
	// Register.
	body := p.rng.LogNormal(f.execMu, f.execSigma)
	body *= p.model.Slowdown(p.currentPressure(), prof.Sensitivity)

	c.bd = metrics.Breakdown{
		Queue:      queueWait,
		ColdStart:  coldDelay,
		Processing: prof.Overheads.Processing,
		CodeLoad:   codeLoad,
		Exec:       body,
		Post:       prof.Overheads.ResultPost,
	}
	busy := c.bd.Processing + c.bd.CodeLoad + c.bd.Exec + c.bd.Post

	// The body's demand joins the platform aggregate for its duration.
	d := prof.Demand
	d.MemMB = 0 // memory is accounted per container, not per body
	c.demand = d
	p.demand = p.demand.Add(d)
	f.usage.Adjust(float64(now), d)

	p.sim.After(busy, c.finish)
}

// finishExec completes the container's running activation: demand leaves
// the aggregate, the completion callback fires, and the container goes
// idle.
func (p *Platform) finishExec(c *container) {
	f := c.fn
	prof := f.profile
	p.demand = p.demand.Sub(c.demand)
	f.usage.Adjust(float64(p.sim.Now()), c.demand.Scale(-1))
	f.inflight--
	p.completed++
	p.tracer.End(units.Seconds(p.sim.Now()), c.execH)
	c.execH = obs.SpanHandle{}
	if p.bus.Active() {
		p.bus.Emit(&obs.QueryComplete{
			At:         units.Seconds(p.sim.Now()),
			Service:    prof.Name,
			Backend:    metrics.BackendServerless.String(),
			Arrived:    units.Seconds(c.arrived),
			Latency:    units.Seconds(p.sim.Now() - c.arrived),
			Queue:      units.Seconds(c.bd.Queue),
			ColdStart:  units.Seconds(c.bd.ColdStart),
			Processing: units.Seconds(c.bd.Processing),
			CodeLoad:   units.Seconds(c.bd.CodeLoad),
			Exec:       units.Seconds(c.bd.Exec),
			Post:       units.Seconds(c.bd.Post),
			Trace:      c.qt.Trace,
			Span:       c.qt.Span,
			Cause:      c.qt.Cause,
		})
	}
	c.qt = obs.QueryTrace{}
	if f.onComplete != nil {
		f.onComplete(metrics.QueryRecord{
			Service:   prof.Name,
			Backend:   metrics.BackendServerless,
			ArrivedAt: float64(c.arrived),
			Breakdown: c.bd,
		})
	}
	p.makeIdle(c)
	p.pump()
}

// Prewarm starts up to n fresh containers for the named function; they
// become warm after their cold start and then serve queries without
// cold-start latency (§V-A). Returns how many were actually started
// (memory and n_max bound the rest). onReady, if non-nil, fires once all
// started containers are warm.
func (p *Platform) Prewarm(name string, n int, onReady func()) int {
	f := p.mustFn(name)
	started, pending := 0, 0
	for i := 0; i < n; i++ {
		ok := p.startPrewarmOne(f, func() {
			pending--
			if pending == 0 && onReady != nil {
				onReady()
				onReady = nil
			}
		})
		if !ok {
			break
		}
		started++
		pending++
	}
	if started == 0 && onReady != nil {
		// Nothing to warm: report readiness immediately (next event).
		p.sim.After(0, onReady)
	}
	return started
}

// Rejected returns the invocations refused by the bounded queue for the
// named function.
func (p *Platform) Rejected(name string) int { return p.mustFn(name).rejected }

// MinWarm returns the warm-pool floor applied to the named function.
func (p *Platform) MinWarm(name string) int { return p.mustFn(name).minWarm }

// ReleaseIdle destroys all warm containers of the named function — the
// engine's shutdown signal S_sd after a switch back to IaaS (§V-B).
func (p *Platform) ReleaseIdle(name string) int {
	f := p.mustFn(name)
	n := len(f.idle)
	for len(f.idle) > 0 {
		p.destroy(f.idle[0])
	}
	return n
}

// InjectDemand permanently adds raw demand to the platform aggregate —
// the profiling harness uses it to hold the pressure on one resource at an
// exact level while building meter curves (Fig. 8) and latency surfaces
// (Fig. 9). Pass a negative vector to remove previously injected demand.
// It panics if removal drives the aggregate demand negative.
func (p *Platform) InjectDemand(v resources.Vector) {
	next := p.demand.Add(v)
	for _, k := range resources.Kinds() {
		if val := next.Get(k); val < 0 && val > -1e-9 {
			next = next.Set(k, 0) // float residue from add/remove cycles
		}
	}
	p.demand = next
	if !p.demand.NonNegative() {
		panic(fmt.Sprintf("serverless: injected demand made aggregate negative: %v", p.demand))
	}
}

// SetSharedPressure switches the platform into shared-pressure mode and
// installs the pressure under which bodies dispatched from now on will
// execute. In this mode the platform's own aggregate demand no longer
// feeds its slowdowns — the caller owns the pressure signal and is
// expected to refresh it periodically (the sharded runtime does so at
// every epoch barrier with the aggregated cross-shard demand). The mode
// is one-way: a platform constructed for sharded execution never
// reverts to self-derived pressure mid-run.
//
//amoeba:noalloc
func (p *Platform) SetSharedPressure(pr contention.Pressure) {
	p.sharedMode = true
	p.sharedPressure = pr
}

// currentPressure is the pressure applied to a body dispatched now:
// externally frozen in shared mode, derived from the live aggregate
// demand otherwise.
//
//amoeba:noalloc
func (p *Platform) currentPressure() contention.Pressure {
	if p.sharedMode {
		return p.sharedPressure
	}
	return p.model.Pressure(p.demand)
}

// Pressure returns the current platform pressure — the ground truth the
// contention meters estimate indirectly. In shared-pressure mode it is
// the externally installed value.
func (p *Platform) Pressure() contention.Pressure {
	return p.currentPressure()
}

// DemandNow returns the aggregate running demand.
func (p *Platform) DemandNow() resources.Vector { return p.demand }

// QueueLength returns the number of waiting activations.
func (p *Platform) QueueLength() int { return len(p.queue) }

// Containers returns the live container count for the named function.
func (p *Platform) Containers(name string) int { return p.mustFn(name).containers }

// IdleContainers returns the warm container count for the named function.
func (p *Platform) IdleContainers(name string) int { return len(p.mustFn(name).idle) }

// Inflight returns submitted-but-incomplete activations for the function.
func (p *Platform) Inflight(name string) int { return p.mustFn(name).inflight }

// NMax returns the container cap applied to the named function.
func (p *Platform) NMax(name string) int { return p.mustFn(name).nMax }

// ColdStarts returns the number of container starts so far (cold and
// prewarm).
func (p *Platform) ColdStarts() int { return p.coldStarts }

// Evictions returns the number of idle-container evictions so far.
func (p *Platform) Evictions() int { return p.evictions }

// Completed returns the number of finished activations.
func (p *Platform) Completed() uint64 { return p.completed }

// UsageFor returns the function's accumulated resource-time integral up to
// now: MemMB·s of container residency plus CPU/IO/net demand while
// executing. This is the serverless side of Fig. 11's accounting.
func (p *Platform) UsageFor(name string) resources.Vector {
	return p.mustFn(name).usage.TotalAt(float64(p.sim.Now()))
}

// AllocFor returns the function's instantaneous allocation.
func (p *Platform) AllocFor(name string) resources.Vector {
	return p.mustFn(name).usage.Current()
}

// MemAllocatedMB returns the pool's current container memory footprint.
func (p *Platform) MemAllocatedMB() float64 { return p.memMB }

// lognormalParams converts a (mean, CV) pair into the (mu, sigma) of the
// underlying normal. A zero CV degenerates to a deterministic value.
// It panics if the mean is non-positive; Config.Validate rules that out
// for every caller.
func lognormalParams(mean, cv float64) (mu, sigma float64) {
	if mean <= 0 {
		panic(fmt.Sprintf("serverless: non-positive lognormal mean %v", mean))
	}
	if cv <= 0 {
		return math.Log(mean), 0
	}
	s2 := math.Log(1 + cv*cv)
	return math.Log(mean) - s2/2, math.Sqrt(s2)
}
