package serverless

import (
	"testing"
	"testing/quick"

	"amoeba/internal/arrival"
	"amoeba/internal/metrics"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// TestConservationProperty model-checks the platform's bookkeeping under
// randomised load: every submitted activation is exactly one of
// completed, rejected, queued, or in execution — none invented, none
// lost — and the container/memory accounts balance.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, qpsRaw, nMaxRaw, queueCapRaw uint8, horizonRaw uint8) bool {
		qps := 1 + float64(qpsRaw%40)
		nMax := 1 + int(nMaxRaw%12)
		queueCap := int(queueCapRaw % 50) // 0 = unbounded
		horizon := 20 + float64(horizonRaw%60)

		s := sim.New(seed)
		cfg := DefaultConfig()
		cfg.MaxQueue = queueCap
		p := New(s, cfg)

		prof := workload.Float()
		completed := 0
		p.Register(prof, func(metrics.QueryRecord) { completed++ }, WithNMax(nMax))

		submitted := 0
		gen := arrival.New(s, trace.Constant{QPS: qps}, func(sim.Time) {
			submitted++
			p.Invoke(prof.Name)
		})
		gen.Start()
		s.Run(sim.Time(horizon))

		rejected := p.Rejected(prof.Name)
		inflight := p.Inflight(prof.Name)
		if submitted != completed+rejected+inflight {
			t.Logf("seed=%d: submitted %d != completed %d + rejected %d + inflight %d",
				seed, submitted, completed, rejected, inflight)
			return false
		}
		// Container count within the cap; memory account matches.
		if p.Containers(prof.Name) > nMax {
			t.Logf("seed=%d: containers %d > nMax %d", seed, p.Containers(prof.Name), nMax)
			return false
		}
		if p.MemAllocatedMB() != float64(p.Containers(prof.Name))*cfg.ContainerMemMB.Raw() {
			t.Logf("seed=%d: memory %v != containers %d × %v",
				seed, p.MemAllocatedMB(), p.Containers(prof.Name), cfg.ContainerMemMB)
			return false
		}
		// Drain: with arrivals stopped everything in flight completes.
		gen.Stop()
		s.Run(sim.Time(horizon + 300))
		if p.Inflight(prof.Name) != 0 {
			t.Logf("seed=%d: %d activations stuck after drain", seed, p.Inflight(prof.Name))
			return false
		}
		if submitted != completed+p.Rejected(prof.Name) {
			t.Logf("seed=%d: post-drain conservation broken", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyDecompositionProperty: every record's components are
// non-negative and the total reconstructs from the parts.
func TestLatencyDecompositionProperty(t *testing.T) {
	s := sim.New(77)
	p := New(s, DefaultConfig())
	prof := workload.DD()
	bad := 0
	p.Register(prof, func(r metrics.QueryRecord) {
		b := r.Breakdown
		for _, v := range []float64{b.Queue, b.ColdStart, b.Processing, b.CodeLoad, b.Exec, b.Post} {
			if v < 0 {
				bad++
			}
		}
		if b.Exec <= 0 {
			bad++ // a query that did no work
		}
		if r.Latency() < b.Exec {
			bad++
		}
	}, WithNMax(6))
	gen := arrival.New(s, trace.Constant{QPS: 25}, func(sim.Time) { p.Invoke(prof.Name) })
	gen.Start()
	s.Run(300)
	if bad != 0 {
		t.Fatalf("%d malformed breakdowns", bad)
	}
	if p.Completed() < 1000 {
		t.Fatalf("only %d completions", p.Completed())
	}
}
