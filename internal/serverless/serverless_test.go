package serverless

import (
	"math"
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/metrics"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func newPlatform(seed uint64) (*sim.Simulator, *Platform) {
	s := sim.New(seed)
	return s, New(s, DefaultConfig())
}

func TestFirstInvocationColdStarts(t *testing.T) {
	s, p := newPlatform(1)
	var recs []metrics.QueryRecord
	p.Register(workload.Float(), func(r metrics.QueryRecord) { recs = append(recs, r) })
	s.At(1, func() { p.Invoke("float") })
	s.Run(100)
	if len(recs) != 1 {
		t.Fatalf("completed %d queries, want 1", len(recs))
	}
	r := recs[0]
	if r.Breakdown.ColdStart <= 0 {
		t.Error("first invocation did not pay a cold start")
	}
	if r.Breakdown.ColdStart < 0.3 || r.Breakdown.ColdStart > 5 {
		t.Errorf("cold start %vs outside the 1-3s ballpark", r.Breakdown.ColdStart)
	}
	if r.Backend != metrics.BackendServerless {
		t.Errorf("backend = %v", r.Backend)
	}
	// Cold code load is amplified.
	if r.Breakdown.CodeLoad <= workload.Float().Overheads.CodeLoadHot {
		t.Error("cold path did not amplify code load")
	}
}

func TestWarmReuseAvoidsColdStart(t *testing.T) {
	s, p := newPlatform(2)
	var recs []metrics.QueryRecord
	p.Register(workload.Float(), func(r metrics.QueryRecord) { recs = append(recs, r) })
	s.At(1, func() { p.Invoke("float") })
	s.At(20, func() { p.Invoke("float") }) // within the 60s idle window
	s.Run(100)
	if len(recs) != 2 {
		t.Fatalf("completed %d queries, want 2", len(recs))
	}
	if recs[1].Breakdown.ColdStart != 0 {
		t.Errorf("second invocation cold-started (%vs)", recs[1].Breakdown.ColdStart)
	}
	if recs[1].Breakdown.Queue != 0 {
		t.Errorf("second invocation queued %vs with an idle container", recs[1].Breakdown.Queue)
	}
	if p.ColdStarts() != 1 {
		t.Errorf("cold starts = %d, want 1", p.ColdStarts())
	}
}

func TestIdleTimeoutReclaims(t *testing.T) {
	s, p := newPlatform(3)
	p.Register(workload.Float(), nil)
	s.At(1, func() { p.Invoke("float") })
	s.Run(30)
	if p.Containers("float") != 1 {
		t.Fatalf("containers = %d before timeout", p.Containers("float"))
	}
	s.Run(200) // well past the 60s idle timeout
	if p.Containers("float") != 0 {
		t.Errorf("containers = %d after idle timeout, want 0", p.Containers("float"))
	}
	if p.MemAllocatedMB() != 0 {
		t.Errorf("pool memory %vMB after reclaim, want 0", p.MemAllocatedMB())
	}
}

func TestReuseCancelsReclaim(t *testing.T) {
	s, p := newPlatform(4)
	p.Register(workload.Float(), nil)
	// Keep poking the container every 30s: it must survive far beyond 60s.
	for i := 1; i <= 10; i++ {
		tt := float64(i) * 30
		s.At(sim.Time(tt), func() { p.Invoke("float") })
	}
	s.Run(301)
	if p.Containers("float") != 1 {
		t.Errorf("containers = %d, want 1 continuously-reused container", p.Containers("float"))
	}
	if p.ColdStarts() != 1 {
		t.Errorf("cold starts = %d, want 1", p.ColdStarts())
	}
}

func TestPrewarmEliminatesColdStart(t *testing.T) {
	s, p := newPlatform(5)
	var recs []metrics.QueryRecord
	p.Register(workload.Float(), func(r metrics.QueryRecord) { recs = append(recs, r) })
	ready := false
	s.At(1, func() {
		n := p.Prewarm("float", 3, func() { ready = true })
		if n != 3 {
			t.Errorf("prewarmed %d, want 3", n)
		}
	})
	s.At(30, func() {
		if !ready {
			t.Error("prewarm not ready after 29s")
		}
		if p.IdleContainers("float") != 3 {
			t.Errorf("idle = %d after prewarm, want 3", p.IdleContainers("float"))
		}
		for i := 0; i < 3; i++ {
			p.Invoke("float")
		}
	})
	s.Run(100)
	if len(recs) != 3 {
		t.Fatalf("completed %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Breakdown.ColdStart != 0 {
			t.Errorf("query %d cold-started after prewarm", i)
		}
	}
}

func TestPrewarmRespectsNMax(t *testing.T) {
	s, p := newPlatform(6)
	p.Register(workload.Float(), nil, WithNMax(2))
	var started int
	s.At(1, func() { started = p.Prewarm("float", 10, nil) })
	s.Run(50)
	if started != 2 {
		t.Errorf("prewarm started %d, want nMax=2", started)
	}
	if p.Containers("float") != 2 {
		t.Errorf("containers = %d", p.Containers("float"))
	}
}

func TestQueueWhenAtNMax(t *testing.T) {
	s, p := newPlatform(7)
	var recs []metrics.QueryRecord
	p.Register(workload.Float(), func(r metrics.QueryRecord) { recs = append(recs, r) }, WithNMax(1))
	s.At(1, func() {
		p.Invoke("float")
		p.Invoke("float")
		p.Invoke("float")
	})
	s.At(5, func() {
		if p.Containers("float") != 1 {
			t.Errorf("containers = %d mid-burst, want 1 (nMax)", p.Containers("float"))
		}
	})
	s.Run(200)
	if len(recs) != 3 {
		t.Fatalf("completed %d, want 3", len(recs))
	}
	// The 2nd and 3rd must have queued behind the single container.
	if recs[1].Breakdown.Queue <= 0 || recs[2].Breakdown.Queue <= recs[1].Breakdown.Queue {
		t.Errorf("queue times not increasing: %v then %v",
			recs[1].Breakdown.Queue, recs[2].Breakdown.Queue)
	}
}

func TestContentionSlowsSensitiveService(t *testing.T) {
	// Run float alone vs float beside a heavy CPU hog; the hog must
	// inflate float's exec time.
	soloExec := func(seed uint64, withHog bool) float64 {
		s, p := newPlatform(seed)
		var execs []float64
		p.Register(workload.Float(), func(r metrics.QueryRecord) {
			execs = append(execs, r.Breakdown.Exec)
		})
		if withHog {
			hog := workload.Matmul()
			hog.Name = "hog"
			hog.Demand.CPU = 1.0
			p.Register(hog, nil, WithNMax(200))
			// 35 concurrent hog queries ≈ 35/40 CPU pressure.
			g := arrival.New(s, trace.Constant{QPS: 140}, func(sim.Time) { p.Invoke("hog") })
			g.Start()
		}
		gen := arrival.New(s, trace.Constant{QPS: 2}, func(sim.Time) { p.Invoke("float") })
		gen.Start()
		s.Run(600)
		sum := 0.0
		for _, e := range execs {
			sum += e
		}
		return sum / float64(len(execs))
	}
	alone := soloExec(8, false)
	contended := soloExec(8, true)
	if contended < alone*1.15 {
		t.Errorf("exec alone %v vs contended %v: CPU hog had <15%% effect", alone, contended)
	}
}

func TestInsensitiveServiceUnaffectedByWrongResource(t *testing.T) {
	// A pure-CPU service must not slow down under heavy *network*
	// pressure (§II-D's key observation).
	mean := func(seed uint64, withNetHog bool) float64 {
		s, p := newPlatform(seed)
		var execs []float64
		prof := workload.Float()
		prof.Sensitivity.Net = 0 // strictly CPU sensitive
		p.Register(prof, func(r metrics.QueryRecord) { execs = append(execs, r.Breakdown.Exec) })
		if withNetHog {
			hog := workload.CloudStor()
			hog.Name = "nethog"
			hog.Demand.CPU = 0.05 // negligible CPU
			hog.Demand.NetMbs = 2000
			p.Register(hog, nil, WithNMax(200))
			g := arrival.New(s, trace.Constant{QPS: 40}, func(sim.Time) { p.Invoke("nethog") })
			g.Start()
		}
		gen := arrival.New(s, trace.Constant{QPS: 2}, func(sim.Time) { p.Invoke(prof.Name) })
		gen.Start()
		s.Run(400)
		sum := 0.0
		for _, e := range execs {
			sum += e
		}
		return sum / float64(len(execs))
	}
	alone := mean(9, false)
	hogged := mean(9, true)
	if math.Abs(hogged-alone)/alone > 0.05 {
		t.Errorf("CPU-only service moved %v -> %v under net pressure", alone, hogged)
	}
}

func TestEvictionOfOtherFunctionsIdleContainers(t *testing.T) {
	s := sim.New(10)
	cfg := DefaultConfig()
	cfg.Node.MemMB = 600 // room for ~2 containers (with 10% reserve: 540MB)
	cfg.MemReserve = 0.0
	p := New(s, cfg)
	a := workload.Float()
	a.Name = "a"
	b := workload.Float()
	b.Name = "b"
	p.Register(a, nil)
	p.Register(b, nil)
	s.At(1, func() { p.Invoke("a") })
	s.At(1, func() { p.Invoke("a") })  // two containers of a, both idle later
	s.At(30, func() { p.Invoke("b") }) // must evict one idle a-container
	s.Run(59)                          // before idle timeout
	if p.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", p.Evictions())
	}
	if p.Containers("a") != 1 || p.Containers("b") != 1 {
		t.Errorf("containers a=%d b=%d, want 1/1", p.Containers("a"), p.Containers("b"))
	}
}

func TestMemoryAccounting(t *testing.T) {
	s, p := newPlatform(11)
	p.Register(workload.Float(), nil)
	s.At(1, func() { p.Invoke("float") })
	s.At(10, func() {
		if p.MemAllocatedMB() != 256 {
			t.Errorf("pool mem = %v, want 256", p.MemAllocatedMB())
		}
		if p.AllocFor("float").MemMB != 256 {
			t.Errorf("fn alloc = %v", p.AllocFor("float"))
		}
	})
	s.Run(300)
	// After reclaim the integral stays but the allocation is zero.
	if p.AllocFor("float").MemMB != 0 {
		t.Errorf("fn alloc after reclaim = %v", p.AllocFor("float"))
	}
	if p.UsageFor("float").MemMB <= 0 {
		t.Error("usage integral empty")
	}
}

func TestUsageCPUOnlyWhileBusy(t *testing.T) {
	s, p := newPlatform(12)
	p.Register(workload.Float(), nil)
	s.At(1, func() { p.Invoke("float") })
	s.Run(300)
	u := p.UsageFor("float")
	// One query: CPU-seconds ≈ demand.CPU × busy duration (~0.12s).
	if u.CPU < 0.05 || u.CPU > 0.5 {
		t.Errorf("CPU usage integral = %v core-s, want ~0.12", u.CPU)
	}
}

func TestThroughputUnderSteadyLoad(t *testing.T) {
	s, p := newPlatform(13)
	var n int
	p.Register(workload.Float(), func(metrics.QueryRecord) { n++ })
	g := arrival.New(s, trace.Constant{QPS: 20}, func(sim.Time) { p.Invoke("float") })
	g.Start()
	s.Run(500)
	want := 20.0 * 500
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Errorf("completed %d, want ~%v", n, want)
	}
	if p.QueueLength() > 10 {
		t.Errorf("queue backlog %d at moderate load", p.QueueLength())
	}
}

func TestReleaseIdle(t *testing.T) {
	s, p := newPlatform(14)
	p.Register(workload.Float(), nil)
	s.At(1, func() { p.Prewarm("float", 4, nil) })
	s.At(30, func() {
		if released := p.ReleaseIdle("float"); released != 4 {
			t.Errorf("released %d, want 4", released)
		}
		if p.Containers("float") != 0 {
			t.Errorf("containers = %d after release", p.Containers("float"))
		}
	})
	s.Run(40)
}

func TestPressureReflectsRunningBodies(t *testing.T) {
	s, p := newPlatform(15)
	prof := workload.Float()
	prof.ExecTime = 20 // long body so we can observe mid-flight
	prof.QoSTarget = 60
	p.Register(prof, nil, WithNMax(100))
	s.At(1, func() {
		for i := 0; i < 8; i++ {
			p.Invoke("float")
		}
	})
	s.At(10, func() {
		// 8 bodies × 1 core / 40 cores = 0.2 pressure.
		if pr := p.Pressure(); math.Abs(pr.CPU-0.2) > 0.01 {
			t.Errorf("CPU pressure = %v, want 0.2", pr.CPU)
		}
	})
	s.Run(60)
	if pr := p.Pressure(); pr.CPU != 0 {
		t.Errorf("pressure after completion = %v, want 0", pr.CPU)
	}
}

func TestUnknownFunctionPanics(t *testing.T) {
	_, p := newPlatform(16)
	defer func() {
		if recover() == nil {
			t.Error("Invoke of unknown function did not panic")
		}
	}()
	p.Invoke("ghost")
}

func TestDuplicateRegisterPanics(t *testing.T) {
	_, p := newPlatform(17)
	p.Register(workload.Float(), nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	p.Register(workload.Float(), nil)
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		s, p := newPlatform(99)
		var lats []float64
		p.Register(workload.DD(), func(r metrics.QueryRecord) { lats = append(lats, r.Latency()) })
		g := arrival.New(s, trace.Constant{QPS: 10}, func(sim.Time) { p.Invoke("dd") })
		g.Start()
		s.Run(200)
		return lats
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestZeroAllocSampleColdStart asserts the cold-start sampler is pure
// arithmetic at invocation time: the lognormal (mu, sigma) pair is fixed
// at New, so each sample is counter bump plus RNG draw.
//
//amoeba:alloctest serverless.Platform.sampleColdStart
func TestZeroAllocSampleColdStart(t *testing.T) {
	p := New(sim.New(9), DefaultConfig())
	allocs := testing.AllocsPerRun(1000, func() {
		if p.sampleColdStart() <= 0 {
			t.Fatal("non-positive cold-start sample")
		}
	})
	if allocs != 0 {
		t.Errorf("sampleColdStart allocates %.2f objects per call, want 0", allocs)
	}
}
