// Package controller implements the contention-aware deployment
// controller (§IV): per service, it estimates the current load, predicts
// the per-container processing capacity μ_n on the serverless platform
// from the quantified pressure and the service's latency surfaces
// (Eq. 6), evaluates the M/M/N discriminant (Eq. 5) for the admissible
// load λ(μ_n), and decides which deployment mode the service should be in.
package controller

import (
	"fmt"

	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/surfaces"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Predictor is the pure prediction core: given pressure, load, and
// calibrated weights it produces μ_n and the admissible load. It is
// deliberately side-effect free so Fig. 15 can evaluate it against
// enumerated ground truth.
type Predictor struct {
	Profile  workload.Profile
	Surfaces *surfaces.Set
	NMax     int
	// Quantile is the QoS latency quantile (0.95).
	Quantile units.Fraction
}

// NewPredictor builds a predictor, validating the profile, surfaces, and
// discriminant parameters — all of which trace back to user-supplied
// scenario configuration, so malformed inputs are reported as errors
// rather than aborting a whole experiment suite.
func NewPredictor(prof workload.Profile, set *surfaces.Set, nMax int, quantile units.Fraction) (*Predictor, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, fmt.Errorf("controller: nil surface set")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if set.Service != prof.Name {
		return nil, fmt.Errorf("controller: surfaces for %q used with profile %q", set.Service, prof.Name)
	}
	if nMax <= 0 {
		return nil, fmt.Errorf("controller: non-positive nMax %d", nMax)
	}
	if quantile <= 0 || quantile >= 1 {
		return nil, fmt.Errorf("controller: quantile %v out of (0,1)", quantile)
	}
	return &Predictor{Profile: prof, Surfaces: set, NMax: nMax, Quantile: quantile}, nil
}

// Features converts a pressure estimate and a load into the degradation
// features e_i = (L_i − base_i)/base_i of Eq. 6, where L_i is the surface
// lookup at (P_i, load) and base_i the same surface at zero pressure —
// isolating the contention effect from the service's own-load effect.
func (p *Predictor) Features(pressure [3]float64, load units.QPS) [3]float64 {
	var e [3]float64
	for i, sf := range p.Surfaces.Surfaces {
		base := sf.BaselineAt(load)
		l := sf.At(pressure[i], load)
		if base <= 0 {
			e[i] = 0
			continue
		}
		v := units.Ratio(l-base, base)
		if v < 0 {
			v = 0
		}
		e[i] = v
	}
	return e
}

// BaselineBody returns L₀(V_u): the mean body latency at the given load
// with zero ambient pressure — the service's own-load contention folded
// in, ambient contention excluded. Averaged over the three surfaces'
// zero-pressure rows (they estimate the same quantity independently).
func (p *Predictor) BaselineBody(load units.QPS) units.Seconds {
	s := units.Seconds(0)
	for _, sf := range p.Surfaces.Surfaces {
		s += sf.BaselineAt(load)
	}
	return s / 3
}

// Mu implements Eq. 6: μ_n = 1 / (L₀ · S + α) where S is the predicted
// ambient slowdown under the calibrated weights, L₀ the load-dependent
// baseline body time, and α the warm-path platform overheads. Both terms
// of the denominator are times (the slowdown S is dimensionless), so the
// reciprocal is a per-container rate.
func (p *Predictor) Mu(w monitor.Weights, pressure [3]float64, load units.QPS) units.ServiceRate {
	e := p.Features(pressure, load)
	s := w.Predict(e)
	l0 := p.BaselineBody(load)
	alpha := p.Profile.Overheads.Total()
	return units.ServiceRate(1 / (l0.Raw()*s + alpha))
}

// AdmissibleLoad returns λ(μ_n): the largest arrival rate the serverless
// platform can absorb for this service while keeping the QoS-quantile
// latency within target, given the current pressure. Because μ depends on
// the service's own load through the surfaces, the bound is found by a
// short fixed-point iteration.
func (p *Predictor) AdmissibleLoad(w monitor.Weights, pressure [3]float64) units.QPS {
	lambda := units.Scale(units.QPS(p.Profile.PeakQPS), 0.25) // starting guess
	for iter := 0; iter < 8; iter++ {
		mu := p.Mu(w, pressure, lambda)
		next := queueing.DiscriminantBisect(mu, p.NMax, units.Seconds(p.Profile.QoSTarget), p.Quantile)
		if next <= 0 {
			return 0
		}
		if diff := next - lambda; diff < 0.01 && diff > -0.01 {
			return next
		}
		lambda = next
	}
	return lambda
}

// ClosedFormAdmissibleLoad evaluates the paper's literal Eq. 5 at the
// operating point (used by the ablation comparing the closed form with
// the bisection).
func (p *Predictor) ClosedFormAdmissibleLoad(w monitor.Weights, pressure [3]float64, load units.QPS) units.QPS {
	mu := p.Mu(w, pressure, load)
	q := queueing.MMN{Lambda: load.Raw(), Mu: mu.Raw(), N: p.NMax}
	if !q.Stable() {
		return 0
	}
	return queueing.DiscriminantClosedForm(q, units.Seconds(p.Profile.QoSTarget), p.Quantile)
}

// Config tunes the deployment controller.
type Config struct {
	// DecisionPeriod is how often the controller re-evaluates.
	DecisionPeriod units.Seconds
	// LoadAlpha is the EWMA factor of the load estimator.
	LoadAlpha units.Fraction
	// SwitchInMargin: switch to serverless only when the load is below
	// this fraction of λ(μ_n) — hysteresis against flapping.
	//
	//amoeba:range (0,1]
	SwitchInMargin float64
	// SwitchOutMargin: switch back to IaaS when the load exceeds this
	// fraction of λ(μ_n). May exceed 1: running slightly past the
	// admissible load is how hysteresis avoids flapping.
	//
	//amoeba:range (0,1.5]
	SwitchOutMargin float64
	// MaxPostSwitchPressure bounds the predicted platform pressure after
	// a switch-in; above it the switch would endanger co-located services
	// (§III's safety rule).
	//
	//amoeba:range (0,2]
	MaxPostSwitchPressure float64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		DecisionPeriod:        20,
		LoadAlpha:             0.35,
		SwitchInMargin:        0.80,
		SwitchOutMargin:       0.95,
		MaxPostSwitchPressure: 0.90,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DecisionPeriod <= 0 {
		return fmt.Errorf("controller: non-positive decision period")
	}
	if c.LoadAlpha <= 0 || c.LoadAlpha > 1 {
		return fmt.Errorf("controller: load alpha %v out of (0,1]", c.LoadAlpha)
	}
	if c.SwitchInMargin <= 0 || c.SwitchInMargin >= c.SwitchOutMargin || c.SwitchOutMargin > 1.5 {
		return fmt.Errorf("controller: margins in=%v out=%v malformed (need 0 < in < out)",
			c.SwitchInMargin, c.SwitchOutMargin)
	}
	if c.MaxPostSwitchPressure <= 0 || c.MaxPostSwitchPressure > 2 {
		return fmt.Errorf("controller: max pressure %v out of (0,2]", c.MaxPostSwitchPressure)
	}
	return nil
}

// Decision is the controller's verdict for one period.
type Decision struct {
	At             units.Seconds
	Target         metrics.Backend
	LoadQPS        units.QPS
	AdmissibleQPS  units.QPS
	Mu             units.ServiceRate
	Pressure       [3]float64
	WeightsLearned bool
	// Blocked is set when a switch-in was indicated by load but vetoed by
	// the co-tenant safety check.
	Blocked bool
	// Verdict names the outcome and Reason spells out the comparison
	// that produced it — the decision-audit trail's payload.
	Verdict Verdict
	Reason  string
	// Trace/Span address the decision as an instant span in the causal
	// trace; the switch span it orders points back at Span. Zero when
	// the run is untraced.
	Trace obs.TraceID
	Span  obs.SpanID
}

// Verdict classifies the outcome of one decision period. The set is
// closed: every fold over verdicts must handle all six members.
//
//amoeba:enum
type Verdict string

// Verdict values. The engine substitutes VerdictDwellHold when an
// indicated switch is suppressed by the minimum-dwell hysteresis.
const (
	VerdictSwitchIn       Verdict = "switch-in"
	VerdictSwitchOut      Verdict = "switch-out"
	VerdictStayIaaS       Verdict = "stay-iaas"
	VerdictStayServerless Verdict = "stay-serverless"
	VerdictBlocked        Verdict = "blocked"
	VerdictDwellHold      Verdict = "dwell-hold"
)

// Valid reports whether v is one of the six declared verdicts; decoders
// of externally supplied event streams use it to reject unknown values.
func (v Verdict) Valid() bool {
	switch v {
	case VerdictSwitchIn, VerdictSwitchOut, VerdictStayIaaS,
		VerdictStayServerless, VerdictBlocked, VerdictDwellHold:
		return true
	default:
		return false
	}
}

// Controller drives the decision loop for one service. It is fed load
// observations and pressure/weight estimates by the runtime and emits
// target-mode decisions; the execution engine carries them out.
type Controller struct {
	cfg       Config
	predictor *Predictor
	loadEWMA  units.QPS
	loadInit  bool
	mode      metrics.Backend
	tracer    *obs.Tracer
	decisions []Decision
}

// New creates a controller starting in IaaS mode (the paper's step 1:
// IaaS by default to guarantee QoS). The configuration is user-supplied,
// so validation failures are reported as errors.
func New(cfg Config, pred *Predictor) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pred == nil {
		return nil, fmt.Errorf("controller: nil predictor")
	}
	return &Controller{cfg: cfg, predictor: pred, mode: metrics.BackendIaaS}, nil
}

// Predictor exposes the prediction core.
func (c *Controller) Predictor() *Predictor { return c.predictor }

// ObserveLoad folds a fresh arrival-rate measurement (QPS over the last
// period) into the load estimate.
func (c *Controller) ObserveLoad(qps units.QPS) {
	if !c.loadInit {
		c.loadEWMA, c.loadInit = qps, true
		return
	}
	a := c.cfg.LoadAlpha.Raw()
	c.loadEWMA = units.Scale(qps, a) + units.Scale(c.loadEWMA, 1-a)
}

// Load returns the current load estimate V_u.
func (c *Controller) Load() units.QPS { return c.loadEWMA }

// Mode returns the mode the controller currently targets.
func (c *Controller) Mode() metrics.Backend { return c.mode }

// SetMode overrides the tracked mode (the engine confirms transitions).
func (c *Controller) SetMode(m metrics.Backend) { c.mode = m }

// SetTracer attaches the causal tracer; every decision then carries a
// fresh trace and span ID. A nil tracer (the default) leaves decisions
// untraced.
func (c *Controller) SetTracer(t *obs.Tracer) { c.tracer = t }

// Decide runs one decision period. postSwitchPressure predicts the
// platform pressure if this service's serverless demand were added — the
// runtime computes it from the service's demand vector and the monitor's
// estimate; the controller vetoes switch-ins that would push any
// dimension past the safety bound. Decide panics if the tracked mode is
// outside the Backend enum — a decision from corrupted state must not
// reach the engine.
func (c *Controller) Decide(now units.Seconds, w monitor.Weights, pressure [3]float64,
	postSwitchPressure [3]float64) Decision {

	adm := c.predictor.AdmissibleLoad(w, pressure)
	mu := c.predictor.Mu(w, pressure, c.loadEWMA)
	d := Decision{
		At: now, LoadQPS: c.loadEWMA, AdmissibleQPS: adm, Mu: mu,
		Pressure: pressure, WeightsLearned: w.Learned, Target: c.mode,
		Trace: c.tracer.StartTrace(), Span: c.tracer.NextSpan(),
	}
	switch c.mode {
	case metrics.BackendIaaS:
		bound := units.Scale(adm, c.cfg.SwitchInMargin)
		if c.loadEWMA <= bound {
			unsafe, worst := -1, 0.0
			for i, p := range postSwitchPressure {
				if p > c.cfg.MaxPostSwitchPressure && p > worst {
					unsafe, worst = i, p
				}
			}
			if unsafe < 0 {
				d.Target = metrics.BackendServerless
				d.Verdict = VerdictSwitchIn
				d.Reason = fmt.Sprintf("load %.2f <= %.2f (%.0f%% of admissible %.2f), post-switch pressure within %.2f",
					c.loadEWMA.Raw(), bound.Raw(), c.cfg.SwitchInMargin*100, adm.Raw(), c.cfg.MaxPostSwitchPressure)
			} else {
				d.Blocked = true
				d.Verdict = VerdictBlocked
				d.Reason = fmt.Sprintf("post-switch %s pressure %.2f exceeds safety bound %.2f",
					resourceNames[unsafe], worst, c.cfg.MaxPostSwitchPressure)
			}
		} else {
			d.Verdict = VerdictStayIaaS
			d.Reason = fmt.Sprintf("load %.2f above switch-in bound %.2f (%.0f%% of admissible %.2f)",
				c.loadEWMA.Raw(), bound.Raw(), c.cfg.SwitchInMargin*100, adm.Raw())
		}
	case metrics.BackendServerless:
		bound := units.Scale(adm, c.cfg.SwitchOutMargin)
		if c.loadEWMA > bound {
			d.Target = metrics.BackendIaaS
			d.Verdict = VerdictSwitchOut
			d.Reason = fmt.Sprintf("load %.2f above switch-out bound %.2f (%.0f%% of admissible %.2f)",
				c.loadEWMA.Raw(), bound.Raw(), c.cfg.SwitchOutMargin*100, adm.Raw())
		} else {
			d.Verdict = VerdictStayServerless
			d.Reason = fmt.Sprintf("load %.2f within switch-out bound %.2f (%.0f%% of admissible %.2f)",
				c.loadEWMA.Raw(), bound.Raw(), c.cfg.SwitchOutMargin*100, adm.Raw())
		}
	default:
		panic(fmt.Sprintf("controller: invalid mode %v", c.mode))
	}
	c.decisions = append(c.decisions, d)
	return d
}

// resourceNames label the pressure dimensions in decision reasons.
var resourceNames = [3]string{"cpu", "io", "net"}

// Decisions returns the decision history.
func (c *Controller) Decisions() []Decision { return c.decisions }
