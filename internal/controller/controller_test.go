package controller

import (
	"math"
	"testing"

	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/surfaces"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// syntheticSet builds an analytic surface set: body latency inflates
// linearly with pressure on each resource, scaled by the profile's
// sensitivity, independent of load.
func syntheticSet(prof workload.Profile, slopes [3]float64) *surfaces.Set {
	set := &surfaces.Set{Service: prof.Name}
	grid := []float64{0, 0.25, 0.5, 0.75, 1.0}
	loads := []float64{prof.PeakQPS * 0.02, prof.PeakQPS * 0.3, prof.PeakQPS * 0.6}
	for r := 0; r < 3; r++ {
		lat := make([][]float64, len(grid))
		for i, p := range grid {
			lat[i] = make([]float64, len(loads))
			for j := range loads {
				lat[i][j] = prof.ExecTime * (1 + slopes[r]*p)
			}
		}
		set.Surfaces[r] = &surfaces.Surface{
			Service: prof.Name, Resource: r,
			Pressures: grid, Loads: loads, Lat: lat,
		}
	}
	return set
}

func testPredictor(t *testing.T) *Predictor {
	t.Helper()
	prof := workload.Float()
	p, err := NewPredictor(prof, syntheticSet(prof, [3]float64{0.6, 0.0, 0.1}), 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustNew(t *testing.T, cfg Config, pred *Predictor) *Controller {
	t.Helper()
	c, err := New(cfg, pred)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFeaturesFromSurfaces(t *testing.T) {
	p := testPredictor(t)
	e := p.Features([3]float64{0.5, 0.5, 0.5}, 10)
	if math.Abs(e[0]-0.3) > 1e-9 { // slope 0.6 × pressure 0.5
		t.Errorf("e[0] = %v, want 0.3", e[0])
	}
	if e[1] != 0 {
		t.Errorf("e[1] = %v, want 0 (insensitive)", e[1])
	}
	if math.Abs(e[2]-0.05) > 1e-9 {
		t.Errorf("e[2] = %v, want 0.05", e[2])
	}
	// Zero pressure → zero features.
	for _, v := range p.Features([3]float64{}, 10) {
		if v != 0 {
			t.Errorf("features at zero pressure: %v", v)
		}
	}
}

func TestMuEq6(t *testing.T) {
	p := testPredictor(t)
	prof := p.Profile
	// No contention, calibrated weights with no correction:
	// μ = 1/(L0 + α).
	neutral := monitor.Weights{W: [3]float64{1, 1, 1}, Learned: true}
	mu0 := p.Mu(neutral, [3]float64{}, 10)
	want := 1 / (prof.ExecTime + prof.Overheads.Total())
	if math.Abs(mu0.Raw()-want) > 1e-9 {
		t.Errorf("mu at zero pressure = %v, want %v", mu0, want)
	}
	// w0's safety floor lowers μ even without contention.
	if mu := p.Mu(monitor.InitialWeights(), [3]float64{}, 10); mu >= mu0 {
		t.Errorf("pessimistic w0 mu %v not below neutral mu %v", mu, mu0)
	}
	// Contention reduces μ monotonically.
	prev := mu0
	for _, pr := range []float64{0.2, 0.5, 0.8, 1.0} {
		mu := p.Mu(monitor.InitialWeights(), [3]float64{pr, 0, 0}, 10)
		if mu >= prev {
			t.Errorf("mu not decreasing in pressure at %v: %v >= %v", pr, mu, prev)
		}
		prev = mu
	}
}

func TestAdmissibleLoadDropsWithPressure(t *testing.T) {
	p := testPredictor(t)
	w := monitor.InitialWeights()
	free := p.AdmissibleLoad(w, [3]float64{})
	loaded := p.AdmissibleLoad(w, [3]float64{0.8, 0, 0})
	if free <= 0 {
		t.Fatalf("admissible load at zero pressure = %v", free)
	}
	if loaded >= free {
		t.Errorf("admissible load did not drop: %v -> %v", free, loaded)
	}
	// And the service becomes inadmissible when contention pushes the
	// bare latency past the QoS target.
	crushed := p.AdmissibleLoad(w, [3]float64{10, 0, 0})
	if crushed != 0 {
		t.Errorf("admissible load under crushing pressure = %v, want 0", crushed)
	}
}

func TestClosedFormNearBisection(t *testing.T) {
	p := testPredictor(t)
	w := monitor.InitialWeights()
	pressure := [3]float64{0.3, 0, 0}
	adm := p.AdmissibleLoad(w, pressure)
	cf := p.ClosedFormAdmissibleLoad(w, pressure, adm)
	if cf <= 0 {
		t.Fatalf("closed form = %v at the bisection threshold %v", cf, adm)
	}
	if rel := math.Abs(units.Ratio(cf-adm, adm)); rel > 0.25 {
		t.Errorf("closed form %v vs bisection %v (rel %v)", cf, adm, rel)
	}
}

func TestControllerStartsInIaaS(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	if c.Mode() != metrics.BackendIaaS {
		t.Errorf("initial mode = %v, want iaas (paper step 1)", c.Mode())
	}
}

func TestControllerSwitchInAtLowLoad(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	c.ObserveLoad(5) // far below λ*
	d := c.Decide(100, monitor.InitialWeights(), [3]float64{}, [3]float64{0.1, 0, 0})
	if d.Target != metrics.BackendServerless {
		t.Errorf("did not switch in at load 5 (adm %v)", d.AdmissibleQPS)
	}
	if d.Blocked {
		t.Error("decision marked blocked")
	}
}

func TestControllerSafetyVeto(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	c.ObserveLoad(5)
	// Post-switch pressure above the bound on one dimension: veto.
	d := c.Decide(100, monitor.InitialWeights(), [3]float64{}, [3]float64{0.1, 0.95, 0})
	if d.Target != metrics.BackendIaaS {
		t.Errorf("switched in despite co-tenant danger (target %v)", d.Target)
	}
	if !d.Blocked {
		t.Error("veto not recorded as blocked")
	}
}

func TestControllerSwitchOutAtHighLoad(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	c.SetMode(metrics.BackendServerless)
	adm := c.Predictor().AdmissibleLoad(monitor.InitialWeights(), [3]float64{})
	c.ObserveLoad(adm * 1.2)
	d := c.Decide(100, monitor.InitialWeights(), [3]float64{}, [3]float64{})
	if d.Target != metrics.BackendIaaS {
		t.Errorf("did not switch out at load %v > adm %v", c.Load(), adm)
	}
}

func TestControllerHysteresisBand(t *testing.T) {
	// Load between in-margin and out-margin: no switch from either mode.
	cfg := DefaultConfig()
	pred := testPredictor(t)
	adm := pred.AdmissibleLoad(monitor.InitialWeights(), [3]float64{})
	mid := units.Scale(adm, (cfg.SwitchInMargin+cfg.SwitchOutMargin)/2)

	c := mustNew(t, cfg, pred)
	c.ObserveLoad(mid)
	if d := c.Decide(0, monitor.InitialWeights(), [3]float64{}, [3]float64{}); d.Target != metrics.BackendIaaS {
		t.Error("switched in inside the hysteresis band")
	}
	c2 := mustNew(t, cfg, pred)
	c2.SetMode(metrics.BackendServerless)
	c2.ObserveLoad(mid)
	if d := c2.Decide(0, monitor.InitialWeights(), [3]float64{}, [3]float64{}); d.Target != metrics.BackendServerless {
		t.Error("switched out inside the hysteresis band")
	}
}

func TestObserveLoadEWMA(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	c.ObserveLoad(10)
	if c.Load() != 10 {
		t.Errorf("first observation = %v, want 10", c.Load())
	}
	c.ObserveLoad(20)
	want := 0.35*20 + 0.65*10
	if math.Abs(c.Load().Raw()-want) > 1e-12 {
		t.Errorf("EWMA = %v, want %v", c.Load(), want)
	}
}

func TestDecisionsRecorded(t *testing.T) {
	c := mustNew(t, DefaultConfig(), testPredictor(t))
	c.ObserveLoad(5)
	c.Decide(10, monitor.InitialWeights(), [3]float64{}, [3]float64{})
	c.Decide(20, monitor.InitialWeights(), [3]float64{}, [3]float64{})
	ds := c.Decisions()
	if len(ds) != 2 || ds[0].At != 10 || ds[1].At != 20 {
		t.Errorf("decisions = %+v", ds)
	}
}

func TestLearnedWeightsRaiseAdmissibleLoad(t *testing.T) {
	// The ablation's mechanism: sub-additive truth means learned weights
	// predict less slowdown than w0, so λ(μ_n) is higher and the switch
	// to serverless happens earlier (Fig. 14's resource savings).
	p, err := NewPredictor(workload.DD(), syntheticSet(workload.DD(), [3]float64{0.3, 0.8, 0.1}), 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	pressure := [3]float64{0.5, 0.5, 0.3}
	w0 := monitor.InitialWeights()
	learned := monitor.Weights{W: [3]float64{0.2, 0.7, 0.05}, Learned: true}
	admW0 := p.AdmissibleLoad(w0, pressure)
	admL := p.AdmissibleLoad(learned, pressure)
	if admL <= admW0 {
		t.Errorf("learned weights did not raise admissible load: %v vs %v", admL, admW0)
	}
}

func TestPredictorValidation(t *testing.T) {
	prof := workload.Float()
	set := syntheticSet(prof, [3]float64{0.5, 0, 0})
	cases := map[string]func() error{
		"nil set": func() error { _, err := NewPredictor(prof, nil, 10, 0.95); return err },
		"wrong service": func() error {
			s2 := syntheticSet(workload.DD(), [3]float64{0, 0, 0})
			_, err := NewPredictor(prof, s2, 10, 0.95)
			return err
		},
		"zero nmax":    func() error { _, err := NewPredictor(prof, set, 0, 0.95); return err },
		"bad quantile": func() error { _, err := NewPredictor(prof, set, 10, 1.0); return err },
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("%s accepted without error", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.SwitchInMargin = good.SwitchOutMargin // must be strictly below
	if bad.Validate() == nil {
		t.Error("in-margin == out-margin accepted")
	}
	bad = good
	bad.DecisionPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero decision period accepted")
	}
	bad = good
	bad.LoadAlpha = 1.5
	if bad.Validate() == nil {
		t.Error("alpha > 1 accepted")
	}
}
