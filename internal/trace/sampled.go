package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sampled is a trace defined by (time, QPS) samples with linear
// interpolation between them — the natural representation of a replayed
// production trace such as the Didi ride-request series the paper shapes
// its loads after. Outside the sampled range the rate clamps to the
// nearest endpoint.
type Sampled struct {
	times []float64
	rates []float64
	peak  float64
}

// NewSampled builds a sampled trace. Times must be strictly increasing
// and rates non-negative; at least two samples are required.
func NewSampled(times, rates []float64) (*Sampled, error) {
	if len(times) != len(rates) {
		return nil, fmt.Errorf("trace: %d times vs %d rates", len(times), len(rates))
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("trace: need at least 2 samples, got %d", len(times))
	}
	peak := 0.0
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("trace: times not strictly increasing at sample %d", i)
		}
		if rates[i] < 0 {
			return nil, fmt.Errorf("trace: negative rate %v at sample %d", rates[i], i)
		}
		if rates[i] > peak {
			peak = rates[i]
		}
	}
	return &Sampled{
		times: append([]float64(nil), times...),
		rates: append([]float64(nil), rates...),
		peak:  peak,
	}, nil
}

// Rate linearly interpolates the sampled series at t.
func (s *Sampled) Rate(t float64) float64 {
	n := len(s.times)
	if t <= s.times[0] {
		return s.rates[0]
	}
	if t >= s.times[n-1] {
		return s.rates[n-1]
	}
	i := sort.SearchFloat64s(s.times, t)
	// times[i-1] < t <= times[i]
	f := (t - s.times[i-1]) / (s.times[i] - s.times[i-1])
	return s.rates[i-1] + f*(s.rates[i]-s.rates[i-1])
}

// Peak returns the largest sampled rate (linear interpolation cannot
// exceed it).
func (s *Sampled) Peak() float64 { return s.peak }

// Len returns the number of samples.
func (s *Sampled) Len() int { return len(s.times) }

// Span returns the first and last sample times.
func (s *Sampled) Span() (from, to float64) {
	return s.times[0], s.times[len(s.times)-1]
}

// LoadCSV reads a two-column "time_seconds,qps" series (comments starting
// with '#' and a non-numeric header line are skipped) into a Sampled
// trace. This is the entry point for replaying production traces.
func LoadCSV(r io.Reader) (*Sampled, error) {
	var times, rates []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 columns, got %d", line, len(parts))
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		q, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			if len(times) == 0 {
				continue // tolerate one header line
			}
			return nil, fmt.Errorf("trace: line %d: not numeric: %q", line, text)
		}
		times = append(times, t)
		rates = append(rates, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSampled(times, rates)
}

// Resample evaluates any trace at n evenly spaced points over [from, to],
// producing a Sampled approximation — useful to freeze a stochastic trace
// for export or replay. It panics on an empty window or fewer than two
// points.
func Resample(tr Trace, from, to float64, n int) *Sampled {
	if n < 2 || to <= from {
		panic(fmt.Sprintf("trace: invalid resample window [%v, %v] x%d", from, to, n))
	}
	times := make([]float64, n)
	rates := make([]float64, n)
	for i := 0; i < n; i++ {
		t := from + (to-from)*float64(i)/float64(n-1)
		times[i] = t
		rates[i] = tr.Rate(t)
	}
	s, err := NewSampled(times, rates)
	if err != nil {
		panic(err)
	}
	return s
}
