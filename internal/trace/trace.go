// Package trace generates the load patterns that drive the evaluation.
// The paper shapes each benchmark's load after a ride-request trace from Didi
// (§II-A, §VII-A) and notes that "the actual fluctuate pattern does not
// affect the analysis": what matters is the diurnal swing — a deep night
// trough (the paper quotes low load below 30 % of peak) and one or two
// daytime peaks. The Didi-shaped generator reproduces exactly that
// structure synthetically.
package trace

import (
	"fmt"
	"math"

	"amoeba/internal/sim"
)

// Trace maps virtual time (seconds) to an instantaneous arrival rate in
// queries per second.
type Trace interface {
	// Rate returns the arrival rate at time t. Implementations must be
	// deterministic and non-negative.
	Rate(t float64) float64
	// Peak returns an upper bound on Rate over the horizon of interest —
	// used both for provisioning and for Poisson thinning.
	Peak() float64
}

// Constant is a flat trace.
type Constant struct{ QPS float64 }

func (c Constant) Rate(float64) float64 { return c.QPS }
func (c Constant) Peak() float64        { return c.QPS }

// Step switches from Before to After at time At.
type Step struct {
	Before, After float64
	At            float64
}

func (s Step) Rate(t float64) float64 {
	if t < s.At {
		return s.Before
	}
	return s.After
}

func (s Step) Peak() float64 { return math.Max(s.Before, s.After) }

// Diurnal is the Didi-shaped daily pattern: a base sinusoid with a morning
// and an evening peak, a deep night trough, multiplicative noise, and
// optional short bursts.
type Diurnal struct {
	PeakQPS   float64 // daytime peak arrival rate
	TroughQPS float64 // night trough (paper: < 30% of peak)
	DayLength float64 // seconds per simulated day
	// MorningPeak and EveningPeak are fractions of the day where the two
	// rush-hour bumps sit (Didi's trace peaks at commute hours).
	MorningPeak, EveningPeak float64
	// NoiseAmp is the multiplicative noise amplitude (0 disables).
	NoiseAmp float64
	// noise is a fixed random phase table so the trace stays
	// deterministic for a given seed.
	noise []float64
}

// NewDiurnal builds a Didi-shaped daily trace. dayLength is the virtual
// duration of one day; seed fixes the noise. It panics on a non-positive
// day length or an inverted peak/trough pair.
func NewDiurnal(peakQPS, troughQPS, dayLength float64, seed uint64) *Diurnal {
	if peakQPS <= 0 || troughQPS < 0 || troughQPS >= peakQPS {
		panic(fmt.Sprintf("trace: invalid diurnal peak=%v trough=%v", peakQPS, troughQPS))
	}
	if dayLength <= 0 {
		panic("trace: non-positive day length")
	}
	d := &Diurnal{
		PeakQPS:     peakQPS,
		TroughQPS:   troughQPS,
		DayLength:   dayLength,
		MorningPeak: 0.35, // ~8:24 on a 0..1 day
		EveningPeak: 0.75, // ~18:00
		NoiseAmp:    0.06,
	}
	rng := sim.NewRNG(seed)
	d.noise = make([]float64, 64)
	for i := range d.noise {
		d.noise[i] = rng.Uniform(0, 2*math.Pi)
	}
	return d
}

// Rate evaluates the diurnal curve at time t.
func (d *Diurnal) Rate(t float64) float64 {
	x := math.Mod(t/d.DayLength, 1)
	if x < 0 {
		x += 1
	}
	// Two Gaussian bumps over a cosine base that bottoms out at night.
	base := 0.5 - 0.5*math.Cos(2*math.Pi*x) // 0 at midnight, 1 at noon
	bump := func(center, width float64) float64 {
		dx := x - center
		// wrap-around distance
		if dx > 0.5 {
			dx -= 1
		}
		if dx < -0.5 {
			dx += 1
		}
		return math.Exp(-dx * dx / (2 * width * width))
	}
	shape := 0.55*base + 0.45*math.Max(bump(d.MorningPeak, 0.06), bump(d.EveningPeak, 0.07))

	// Deterministic multiplicative noise from a small Fourier series.
	noise := 0.0
	if d.NoiseAmp > 0 && len(d.noise) > 0 {
		for i := 1; i <= 6; i++ {
			noise += math.Sin(2*math.Pi*float64(i*3)*x+d.noise[i]) / float64(i)
		}
		noise *= d.NoiseAmp / 2
	}

	rate := d.TroughQPS + (d.PeakQPS-d.TroughQPS)*shape
	rate *= 1 + noise
	if rate < 0 {
		rate = 0
	}
	return rate
}

// Peak returns a safe upper bound on the rate.
func (d *Diurnal) Peak() float64 {
	// Shape <= 1 and noise <= NoiseAmp, so this bound holds; also scan a
	// day to tighten it.
	bound := d.PeakQPS * (1 + d.NoiseAmp)
	mx := 0.0
	for i := 0; i < 2000; i++ {
		if r := d.Rate(float64(i) / 2000 * d.DayLength); r > mx {
			mx = r
		}
	}
	if mx > bound {
		return mx
	}
	return mx * 1.02 // small headroom for points between scan samples
}

// Scaled wraps a trace, multiplying its rate by Factor.
type Scaled struct {
	Inner  Trace
	Factor float64
}

func (s Scaled) Rate(t float64) float64 { return s.Inner.Rate(t) * s.Factor }
func (s Scaled) Peak() float64          { return s.Inner.Peak() * s.Factor }

// Burst overlays a square burst of Extra QPS on Inner during [From, To).
type Burst struct {
	Inner    Trace
	Extra    float64
	From, To float64
}

func (b Burst) Rate(t float64) float64 {
	r := b.Inner.Rate(t)
	if t >= b.From && t < b.To {
		r += b.Extra
	}
	return r
}

func (b Burst) Peak() float64 { return b.Inner.Peak() + b.Extra }
