package trace

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant{QPS: 5}
	if c.Rate(0) != 5 || c.Rate(1e6) != 5 || c.Peak() != 5 {
		t.Error("constant trace not constant")
	}
}

func TestStep(t *testing.T) {
	s := Step{Before: 2, After: 8, At: 100}
	if s.Rate(99) != 2 || s.Rate(100) != 8 {
		t.Error("step trace wrong around boundary")
	}
	if s.Peak() != 8 {
		t.Errorf("peak = %v, want 8", s.Peak())
	}
}

func TestDiurnalShape(t *testing.T) {
	const day = 86400.0
	d := NewDiurnal(100, 20, day, 1)

	// The trough must occur near midnight and be well below the peak.
	night := d.Rate(0.02 * day)
	noon := d.Rate(d.MorningPeak * day)
	if night >= noon {
		t.Fatalf("night rate %v >= rush-hour rate %v", night, noon)
	}
	// Paper: low load below ~30%% of peak.
	min, max := math.Inf(1), 0.0
	for i := 0; i < 5000; i++ {
		r := d.Rate(float64(i) / 5000 * day)
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min/max > 0.35 {
		t.Errorf("trough/peak = %.2f, want < 0.35 (diurnal pattern)", min/max)
	}
	if max > d.Peak()+1e-9 {
		t.Errorf("observed max %v exceeds Peak() bound %v", max, d.Peak())
	}
	if max < 85 || max > 115 {
		t.Errorf("observed peak %v far from configured 100", max)
	}
}

func TestDiurnalNonNegativeAndPeriodic(t *testing.T) {
	d := NewDiurnal(50, 10, 3600, 7)
	for i := 0; i < 3000; i++ {
		tt := float64(i) * 3.7
		r := d.Rate(tt)
		if r < 0 {
			t.Fatalf("negative rate %v at t=%v", r, tt)
		}
		if r2 := d.Rate(tt + 3600); math.Abs(r-r2) > 1e-9 {
			t.Fatalf("trace not periodic: %v vs %v", r, r2)
		}
	}
}

func TestDiurnalDeterministicPerSeed(t *testing.T) {
	a := NewDiurnal(100, 20, 86400, 5)
	b := NewDiurnal(100, 20, 86400, 5)
	c := NewDiurnal(100, 20, 86400, 6)
	differ := false
	for i := 0; i < 100; i++ {
		tt := float64(i) * 777
		if a.Rate(tt) != b.Rate(tt) {
			t.Fatalf("same-seed traces differ at t=%v", tt)
		}
		if a.Rate(tt) != c.Rate(tt) {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical noise")
	}
}

func TestDiurnalInvalidPanics(t *testing.T) {
	cases := []func(){
		func() { NewDiurnal(0, 0, 100, 1) },
		func() { NewDiurnal(10, 10, 100, 1) }, // trough >= peak
		func() { NewDiurnal(10, 1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Inner: Constant{QPS: 4}, Factor: 2.5}
	if s.Rate(0) != 10 || s.Peak() != 10 {
		t.Error("scaled trace wrong")
	}
}

func TestBurst(t *testing.T) {
	b := Burst{Inner: Constant{QPS: 3}, Extra: 7, From: 10, To: 20}
	if b.Rate(5) != 3 || b.Rate(15) != 10 || b.Rate(20) != 3 {
		t.Error("burst trace wrong")
	}
	if b.Peak() != 10 {
		t.Errorf("burst peak = %v, want 10", b.Peak())
	}
}
