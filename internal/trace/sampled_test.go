package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampledInterpolation(t *testing.T) {
	s, err := NewSampled([]float64{0, 10, 20}, []float64{0, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 0}, {10, 100}, {20, 50}, {5, 50}, {15, 75},
		{-5, 0}, {100, 50}, // clamped outside the range
	}
	for _, c := range cases {
		if got := s.Rate(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.Peak() != 100 {
		t.Errorf("Peak = %v, want 100", s.Peak())
	}
	if from, to := s.Span(); from != 0 || to != 20 {
		t.Errorf("Span = %v..%v", from, to)
	}
}

func TestSampledValidation(t *testing.T) {
	if _, err := NewSampled([]float64{0}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := NewSampled([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := NewSampled([]float64{0, 1}, []float64{1, -2}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewSampled([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSampledRateWithinEnvelope(t *testing.T) {
	s, _ := NewSampled([]float64{0, 5, 10, 15}, []float64{10, 80, 30, 60})
	f := func(raw uint16) bool {
		tt := float64(raw) / 65535 * 20
		r := s.Rate(tt)
		return r >= 10-1e-9 && r <= s.Peak()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCSV(t *testing.T) {
	csv := `# Didi-shaped replay, one sample per 10 minutes
time_s,qps
0, 12
600, 48.5
1200, 80
1800, 30
`
	s, err := LoadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("parsed %d samples, want 4", s.Len())
	}
	if s.Rate(600) != 48.5 {
		t.Errorf("Rate(600) = %v", s.Rate(600))
	}
	if s.Peak() != 80 {
		t.Errorf("Peak = %v", s.Peak())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"three columns": "0,1,2\n1,2,3\n",
		"bad number":    "0,1\nxx,yy\n",
		"too short":     "0,5\n",
	}
	for name, csv := range cases {
		if _, err := LoadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestResampleApproximatesDiurnal(t *testing.T) {
	d := NewDiurnal(100, 20, 3600, 1)
	s := Resample(d, 0, 3600, 720)
	// Dense resampling must track the original closely.
	for _, tt := range []float64{0, 450, 900, 1800, 2700, 3599} {
		orig, got := d.Rate(tt), s.Rate(tt)
		if math.Abs(orig-got) > 0.05*(orig+1) {
			t.Errorf("Resample diverges at t=%v: %v vs %v", tt, got, orig)
		}
	}
	if s.Peak() > d.Peak()+1e-9 {
		t.Errorf("resampled peak %v above original bound %v", s.Peak(), d.Peak())
	}
}

func TestResampleInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid resample window did not panic")
		}
	}()
	Resample(Constant{QPS: 1}, 10, 10, 5)
}
