// Package surfaces implements the latency surfaces of §IV-B (Fig. 9): for
// one microservice and one shared resource, a 2-D grid mapping (pressure
// on that resource, the microservice's own load) to the microservice's
// mean body latency. The deployment controller looks surfaces up to
// predict the per-resource latencies L₁..L₃ that feed Eq. 6 — whose μ is
// a mean processing capacity, hence the mean statistic; queueing and tail
// behaviour are the M/M/N discriminant's job (Eq. 5).
package surfaces

import (
	"fmt"
	"sort"

	"amoeba/internal/units"
)

// Surface is one profiled latency surface.
type Surface struct {
	Service   string
	Resource  int       // meter index (0 = CPU, 1 = IO, 2 = Net)
	Pressures []float64 // strictly increasing grid on the pressure axis
	Loads     []float64 // strictly increasing grid on the load (QPS) axis
	// Lat[i][j] is the p95 latency at Pressures[i], Loads[j], in seconds.
	Lat [][]float64
}

// Validate reports malformed surfaces.
func (s *Surface) Validate() error {
	if len(s.Pressures) < 2 || len(s.Loads) < 2 {
		return fmt.Errorf("surfaces: %s/r%d grid too small (%dx%d)",
			s.Service, s.Resource, len(s.Pressures), len(s.Loads))
	}
	if len(s.Lat) != len(s.Pressures) {
		return fmt.Errorf("surfaces: %s/r%d has %d rows, want %d",
			s.Service, s.Resource, len(s.Lat), len(s.Pressures))
	}
	for i, row := range s.Lat {
		if len(row) != len(s.Loads) {
			return fmt.Errorf("surfaces: %s/r%d row %d has %d cols, want %d",
				s.Service, s.Resource, i, len(row), len(s.Loads))
		}
		for j, v := range row {
			if v <= 0 {
				return fmt.Errorf("surfaces: %s/r%d non-positive latency at (%d,%d)",
					s.Service, s.Resource, i, j)
			}
		}
	}
	for i := 1; i < len(s.Pressures); i++ {
		if s.Pressures[i] <= s.Pressures[i-1] {
			return fmt.Errorf("surfaces: pressures not increasing at %d", i)
		}
	}
	for j := 1; j < len(s.Loads); j++ {
		if s.Loads[j] <= s.Loads[j-1] {
			return fmt.Errorf("surfaces: loads not increasing at %d", j)
		}
	}
	return nil
}

// segment locates x on a grid, returning the lower index and the
// interpolation fraction, clamped to the grid's range.
func segment(grid []float64, x float64) (int, float64) {
	n := len(grid)
	if x <= grid[0] {
		return 0, 0
	}
	if x >= grid[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(grid, x)
	// grid[i-1] < x <= grid[i]
	f := (x - grid[i-1]) / (grid[i] - grid[i-1])
	return i - 1, f
}

// At returns the bilinearly interpolated p95 latency at (pressure, load),
// clamped to the profiled region.
func (s *Surface) At(pressure float64, load units.QPS) units.Seconds {
	pi, pf := segment(s.Pressures, pressure)
	li, lf := segment(s.Loads, load.Raw())
	a := s.Lat[pi][li]*(1-lf) + s.Lat[pi][li+1]*lf
	b := s.Lat[pi+1][li]*(1-lf) + s.Lat[pi+1][li+1]*lf
	return units.Seconds(a*(1-pf) + b*pf)
}

// BaselineAt returns the zero-pressure latency at the given load — the
// L₀(V_u) reference the controller divides by to turn an absolute
// latency into a degradation.
func (s *Surface) BaselineAt(load units.QPS) units.Seconds {
	return s.At(s.Pressures[0], load)
}

// Set is the complete per-service surface collection: one surface per
// meter resource.
type Set struct {
	Service  string
	Surfaces [3]*Surface
}

// Validate checks all three surfaces are present and well-formed.
func (s *Set) Validate() error {
	for i, sf := range s.Surfaces {
		if sf == nil {
			return fmt.Errorf("surfaces: %s missing surface %d", s.Service, i)
		}
		if sf.Resource != i {
			return fmt.Errorf("surfaces: %s surface %d labelled %d", s.Service, i, sf.Resource)
		}
		if err := sf.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// PredictLatencies returns L₁..L₃ at the given platform pressure and own
// load (§IV-B Measurement step).
func (s *Set) PredictLatencies(p [3]float64, load units.QPS) [3]units.Seconds {
	var out [3]units.Seconds
	for i, sf := range s.Surfaces {
		out[i] = sf.At(p[i], load)
	}
	return out
}
