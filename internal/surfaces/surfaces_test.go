package surfaces

import (
	"math"
	"testing"
	"testing/quick"

	"amoeba/internal/units"
)

func testSurface() *Surface {
	return &Surface{
		Service:   "float",
		Resource:  0,
		Pressures: []float64{0, 0.5, 1.0},
		Loads:     []float64{1, 10},
		Lat: [][]float64{
			{0.10, 0.12},
			{0.15, 0.18},
			{0.30, 0.40},
		},
	}
}

func TestValidate(t *testing.T) {
	s := testSurface()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid surface rejected: %v", err)
	}
	bad := testSurface()
	bad.Lat[1][0] = 0
	if bad.Validate() == nil {
		t.Error("zero latency accepted")
	}
	bad2 := testSurface()
	bad2.Pressures = []float64{0, 0, 1}
	if bad2.Validate() == nil {
		t.Error("non-increasing pressure grid accepted")
	}
	bad3 := testSurface()
	bad3.Lat = bad3.Lat[:2]
	if bad3.Validate() == nil {
		t.Error("ragged surface accepted")
	}
}

func TestAtGridPoints(t *testing.T) {
	s := testSurface()
	for i, p := range s.Pressures {
		for j, l := range s.Loads {
			if got := s.At(p, units.QPS(l)); math.Abs(got.Raw()-s.Lat[i][j]) > 1e-12 {
				t.Errorf("At(%v, %v) = %v, want %v", p, l, got, s.Lat[i][j])
			}
		}
	}
}

func TestAtBilinearMidpoint(t *testing.T) {
	s := testSurface()
	// Centre of the lower-left cell: mean of its four corners.
	want := (0.10 + 0.12 + 0.15 + 0.18) / 4
	if got := s.At(0.25, 5.5); math.Abs(got.Raw()-want) > 1e-12 {
		t.Errorf("At(0.25, 5.5) = %v, want %v", got, want)
	}
}

func TestAtClamps(t *testing.T) {
	s := testSurface()
	if got := s.At(-1, 0); got != 0.10 {
		t.Errorf("At below range = %v, want corner 0.10", got)
	}
	if got := s.At(5, 100); got != 0.40 {
		t.Errorf("At above range = %v, want corner 0.40", got)
	}
}

func TestAtWithinConvexHullProperty(t *testing.T) {
	s := testSurface()
	f := func(pRaw, lRaw uint8) bool {
		p := float64(pRaw) / 255
		l := 1 + float64(lRaw)/255*9
		v := s.At(p, units.QPS(l))
		return v >= 0.10-1e-12 && v <= 0.40+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineAt(t *testing.T) {
	s := testSurface()
	if got := s.BaselineAt(1); got != 0.10 {
		t.Errorf("BaselineAt(1) = %v, want 0.10", got)
	}
	if got := s.BaselineAt(10); got != 0.12 {
		t.Errorf("BaselineAt(10) = %v, want 0.12", got)
	}
}

func TestSetValidateAndPredict(t *testing.T) {
	mk := func(idx int, scale float64) *Surface {
		s := testSurface()
		s.Resource = idx
		for i := range s.Lat {
			for j := range s.Lat[i] {
				s.Lat[i][j] *= scale
			}
		}
		return s
	}
	set := &Set{Service: "float", Surfaces: [3]*Surface{mk(0, 1), mk(1, 2), mk(2, 3)}}
	if err := set.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	l := set.PredictLatencies([3]float64{0, 0, 0}, 1)
	for i, want := range []float64{0.10, 0.20, 0.30} {
		if math.Abs(l[i].Raw()-want) > 1e-12 {
			t.Errorf("PredictLatencies[%d] = %v, want %v", i, l[i], want)
		}
	}

	missing := &Set{Service: "x"}
	if missing.Validate() == nil {
		t.Error("set with missing surfaces accepted")
	}
	mislabelled := &Set{Service: "x", Surfaces: [3]*Surface{mk(0, 1), mk(0, 1), mk(2, 1)}}
	if mislabelled.Validate() == nil {
		t.Error("mislabelled set accepted")
	}
}
