// Package contention is the ground-truth interference model of the shared
// serverless platform (§II-D). Co-located containers contend for cores,
// disk-IO bandwidth, and network bandwidth; memory pressure does not slow
// execution down but bounds how many containers can run (handled by the
// pool's admission, not here).
//
// Two modelling decisions matter for reproducing the paper:
//
//  1. Per-resource slowdown is a convex function of pressure (demand over
//     capacity): negligible when the resource is underloaded, super-linear
//     as it saturates. This is what makes the meter profiling curves of
//     Fig. 8 hockey-stick shaped.
//
//  2. Slowdowns on different resources do NOT accumulate additively
//     (§II-E: "the performance degradation ... is not the simple
//     accumulation"). A query stalled on disk is not simultaneously
//     burning its full CPU share, so the joint effect is sub-additive. We
//     combine per-resource degradations with a q-norm (default q = 2).
//     The additive assumption (q = 1) is exactly what the Amoeba-NoM
//     ablation uses for *prediction*, which makes it pessimistic and late
//     to switch — reproducing Fig. 14/15 mechanically.
package contention

import (
	"fmt"
	"math"

	"amoeba/internal/resources"
)

// Curve maps a resource's pressure (aggregate demand / capacity) to a raw
// degradation factor h(p) >= 0. The form is piecewise:
//
//	h(p) = Quad · p²                      p <= 1   (interference regime)
//	h(p) = Quad + Overload · (p − 1)      p > 1    (fair-sharing regime)
//
// Below saturation, co-runners interfere quadratically (cache and queue
// effects compound as the resource fills). Beyond saturation the hardware
// shares bandwidth fairly, so each consumer slows in proportion to the
// oversubscription — linear, not explosive. Keeping the overload regime
// linear matters for stability: an explosive tail would let any
// open-loop workload near saturation death-spiral (slower bodies → more
// concurrency → more pressure), which real bandwidth-shared devices do
// not do.
//
// With Overload = 2·Quad the two pieces join with matching slope at
// p = 1, keeping h convex and monotone everywhere.
type Curve struct {
	Quad     float64 // quadratic interference coefficient
	Overload float64 // slope of the fair-sharing regime past p = 1
}

// DefaultCurve returns the per-resource degradation curve used across the
// repository: a maximally sensitive service slows ~1.6x when its resource
// reaches full utilisation, consistent with the degradations OpenWhisk
// exhibits in Fig. 10.
func DefaultCurve() Curve {
	return Curve{Quad: 0.6, Overload: 1.2}
}

// Eval returns h(p). Negative pressure panics: it indicates an accounting
// bug upstream.
func (c Curve) Eval(p float64) float64 {
	if p < 0 {
		panic(fmt.Sprintf("contention: negative pressure %v", p))
	}
	if p <= 1 {
		return c.Quad * p * p
	}
	return c.Quad + c.Overload*(p-1)
}

// Sensitivity is a service's susceptibility to contention on each
// resource, in [0, 1] per dimension (Table III). Memory sensitivity is
// carried for reporting but does not enter the slowdown (see package
// comment).
type Sensitivity struct {
	CPU float64
	IO  float64
	Net float64
}

// Validate reports out-of-range sensitivities.
func (s Sensitivity) Validate() error {
	for _, v := range []float64{s.CPU, s.IO, s.Net} {
		if v < 0 || v > 1.5 {
			return fmt.Errorf("contention: sensitivity %v out of [0, 1.5]", v)
		}
	}
	return nil
}

// Model is the platform-wide interference model.
type Model struct {
	Capacity resources.Vector // the serverless node's capacity
	CPUCurve Curve
	IOCurve  Curve
	NetCurve Curve
	// Norm is the exponent q of the q-norm combining per-resource
	// degradations. q = 2 (default) is the correlated ground truth;
	// q = 1 is the naive additive model.
	Norm float64
}

// NewModel returns the default model for a node with the given capacity.
func NewModel(capacity resources.Vector) *Model {
	return &Model{
		Capacity: capacity,
		CPUCurve: DefaultCurve(),
		IOCurve:  DefaultCurve(),
		NetCurve: DefaultCurve(),
		Norm:     2,
	}
}

// Pressure converts an aggregate demand into per-resource pressures.
// Tiny negative components (floating-point residue from incremental
// demand accounting) are clamped to zero; genuinely negative demand
// still panics downstream.
func (m *Model) Pressure(demand resources.Vector) Pressure {
	p := demand.DivideBy(m.Capacity)
	clamp := func(v float64) float64 {
		if v < 0 && v > -1e-9 {
			return 0
		}
		return v
	}
	return Pressure{CPU: clamp(p.CPU), IO: clamp(p.DiskMBs), Net: clamp(p.NetMbs)}
}

// Pressure is the quantified contention on the three meter-visible
// resources — the set P = {P_cpu, P_io, P_net} of §IV-B.
type Pressure struct {
	CPU float64
	IO  float64
	Net float64
}

// Get returns the component for the given meter resource index
// (0 = CPU, 1 = IO, 2 = Net), matching the L₁..L₃ ordering of Eq. 6.
// It panics if the index is outside [0, NumMeterResources).
func (p Pressure) Get(i int) float64 {
	switch i {
	case 0:
		return p.CPU
	case 1:
		return p.IO
	case 2:
		return p.Net
	}
	panic(fmt.Sprintf("contention: pressure index %d out of range", i))
}

// NumMeterResources is the number of contention-meter resource dimensions.
const NumMeterResources = 3

// Degradations returns the per-resource degradation terms
// e_i = s_i · h_i(p_i) for a service with the given sensitivities.
func (m *Model) Degradations(p Pressure, s Sensitivity) [NumMeterResources]float64 {
	return [NumMeterResources]float64{
		s.CPU * m.CPUCurve.Eval(p.CPU),
		s.IO * m.IOCurve.Eval(p.IO),
		s.Net * m.NetCurve.Eval(p.Net),
	}
}

// Slowdown returns the ground-truth latency multiplier (>= 1) for a
// service with sensitivities s under pressure p:
//
//	S = 1 + (Σ_i e_i^q)^(1/q)
func (m *Model) Slowdown(p Pressure, s Sensitivity) float64 {
	e := m.Degradations(p, s)
	return 1 + qNorm(e[:], m.Norm)
}

// AdditiveSlowdown returns the naive additive combination 1 + Σ e_i —
// the pessimistic assumption Amoeba-NoM is stuck with.
func (m *Model) AdditiveSlowdown(p Pressure, s Sensitivity) float64 {
	e := m.Degradations(p, s)
	return 1 + e[0] + e[1] + e[2]
}

// qNorm computes the q-norm of xs. It panics if the exponent is
// non-positive or any degradation term is negative — both indicate a
// corrupted Model, not bad user input.
func qNorm(xs []float64, q float64) float64 {
	if q <= 0 {
		panic(fmt.Sprintf("contention: invalid norm exponent %v", q))
	}
	if q == 1 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	s := 0.0
	for _, x := range xs {
		if x < 0 {
			panic(fmt.Sprintf("contention: negative degradation %v", x))
		}
		s += math.Pow(x, q)
	}
	return math.Pow(s, 1/q)
}
