package contention

import (
	"math"
	"testing"
	"testing/quick"

	"amoeba/internal/resources"
)

func testModel() *Model {
	return NewModel(resources.Vector{CPU: 40, MemMB: 256 * 1024, DiskMBs: 2000, NetMbs: 25000})
}

func TestCurveShape(t *testing.T) {
	c := DefaultCurve()
	if c.Eval(0) != 0 {
		t.Errorf("h(0) = %v, want 0", c.Eval(0))
	}
	// Convex and monotone up to and past the knee.
	prev, prevSlope := 0.0, 0.0
	for p := 0.1; p <= 1.0; p += 0.1 {
		v := c.Eval(p)
		if v <= prev {
			t.Fatalf("curve not strictly increasing at p=%v", p)
		}
		slope := v - prev
		if slope < prevSlope-1e-12 {
			t.Fatalf("curve not convex at p=%v", p)
		}
		prev, prevSlope = v, slope
	}
	// Overload is large but finite.
	if over := c.Eval(2); math.IsInf(over, 0) || over < c.Eval(1) {
		t.Errorf("h(2) = %v, want finite and > h(1)", over)
	}
}

func TestCurveNegativePressurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative pressure did not panic")
		}
	}()
	DefaultCurve().Eval(-0.1)
}

func TestPressureMapping(t *testing.T) {
	m := testModel()
	p := m.Pressure(resources.Vector{CPU: 20, DiskMBs: 1000, NetMbs: 12500})
	if p.CPU != 0.5 || p.IO != 0.5 || p.Net != 0.5 {
		t.Errorf("pressure = %+v, want all 0.5", p)
	}
}

func TestPressureGetOrdering(t *testing.T) {
	p := Pressure{CPU: 1, IO: 2, Net: 3}
	for i, want := range []float64{1, 2, 3} {
		if p.Get(i) != want {
			t.Errorf("Get(%d) = %v, want %v", i, p.Get(i), want)
		}
	}
}

func TestSlowdownNoContentionIsOne(t *testing.T) {
	m := testModel()
	s := Sensitivity{CPU: 1, IO: 1, Net: 1}
	if got := m.Slowdown(Pressure{}, s); got != 1 {
		t.Errorf("slowdown with zero pressure = %v, want 1", got)
	}
}

func TestSlowdownInsensitiveServiceUnaffected(t *testing.T) {
	m := testModel()
	p := Pressure{CPU: 0.9, IO: 0.9, Net: 0.9}
	if got := m.Slowdown(p, Sensitivity{}); got != 1 {
		t.Errorf("slowdown of insensitive service = %v, want 1", got)
	}
}

func TestSlowdownSelectiveSensitivity(t *testing.T) {
	// §II-D: a CPU-only-sensitive service is not degraded by pure network
	// contention.
	m := testModel()
	cpuOnly := Sensitivity{CPU: 0.9}
	netPressure := Pressure{Net: 0.95}
	if got := m.Slowdown(netPressure, cpuOnly); got != 1 {
		t.Errorf("CPU-sensitive service degraded %vx by net contention", got)
	}
	cpuPressure := Pressure{CPU: 0.95}
	if got := m.Slowdown(cpuPressure, cpuOnly); got <= 1.2 {
		t.Errorf("CPU-sensitive service only %vx under heavy CPU contention", got)
	}
}

func TestSubAdditiveCombination(t *testing.T) {
	// Ground truth (q=2) must never exceed the additive model, and must
	// be strictly below it when two resources are simultaneously loaded.
	m := testModel()
	s := Sensitivity{CPU: 0.8, IO: 0.8, Net: 0.3}
	p := Pressure{CPU: 0.7, IO: 0.7, Net: 0.4}
	truth := m.Slowdown(p, s)
	additive := m.AdditiveSlowdown(p, s)
	if truth > additive {
		t.Fatalf("q-norm slowdown %v exceeds additive %v", truth, additive)
	}
	if additive-truth < 0.05 {
		t.Fatalf("additive %v barely above truth %v; ablation would be vacuous", additive, truth)
	}
	// With a single loaded resource the two models coincide.
	p1 := Pressure{CPU: 0.8}
	if a, b := m.Slowdown(p1, s), m.AdditiveSlowdown(p1, s); math.Abs(a-b) > 1e-12 {
		t.Errorf("single-resource slowdowns differ: %v vs %v", a, b)
	}
}

func TestSlowdownMonotoneInPressure(t *testing.T) {
	m := testModel()
	s := Sensitivity{CPU: 0.5, IO: 0.5, Net: 0.5}
	prev := 0.0
	for p := 0.0; p <= 1.2; p += 0.05 {
		v := m.Slowdown(Pressure{CPU: p, IO: p, Net: p}, s)
		if v < prev {
			t.Fatalf("slowdown not monotone at p=%v", p)
		}
		prev = v
	}
}

func TestSlowdownProperty(t *testing.T) {
	m := testModel()
	f := func(pc, pi, pn, sc, si, sn uint8) bool {
		p := Pressure{CPU: float64(pc) / 128, IO: float64(pi) / 128, Net: float64(pn) / 128}
		s := Sensitivity{CPU: float64(sc) / 255, IO: float64(si) / 255, Net: float64(sn) / 255}
		truth := m.Slowdown(p, s)
		additive := m.AdditiveSlowdown(p, s)
		return truth >= 1 && additive >= truth-1e-12 && !math.IsNaN(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSensitivityValidate(t *testing.T) {
	if (Sensitivity{CPU: 0.5, IO: 1.0}).Validate() != nil {
		t.Error("valid sensitivity rejected")
	}
	if (Sensitivity{CPU: -0.1}).Validate() == nil {
		t.Error("negative sensitivity accepted")
	}
	if (Sensitivity{Net: 2}).Validate() == nil {
		t.Error("sensitivity 2 accepted")
	}
}

func TestDegradationsOrderingMatchesPressureGet(t *testing.T) {
	m := testModel()
	s := Sensitivity{CPU: 1, IO: 1, Net: 1}
	p := Pressure{CPU: 0.5}
	e := m.Degradations(p, s)
	if e[0] == 0 || e[1] != 0 || e[2] != 0 {
		t.Errorf("degradations %v: CPU pressure must hit index 0 only", e)
	}
}
