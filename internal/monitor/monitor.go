// Package monitor implements the multi-resource contention monitor
// (§VI): a daemon that runs the three contention meters on the serverless
// platform at a low rate (1 QPS each, §VII-E), inverts their profiling
// curves to quantify the platform pressure P = {P_cpu, P_io, P_net}, and
// calibrates the Eq. 6 weights from heartbeat samples with PCA regression.
//
// Weight calibration: every sample period the execution engine reports,
// per service, the degradation features e_i = L_i/L₀ − 1 predicted by the
// latency surfaces at the current pressure, together with the slowdown the
// service actually experienced. The monitor regresses observed slowdown on
// the features — in PCA component space, because the features are
// correlated — and hands the resulting weights w₁..w₃ back to the
// controller. Amoeba-NoM disables this and stays on the initial
// pessimistic weights w₀ = (1,1,1), the additive-accumulation assumption.
package monitor

import (
	"fmt"

	"amoeba/internal/linalg"
	"amoeba/internal/meters"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/pca"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/stats"
	"amoeba/internal/units"
)

// Weights is a calibrated Eq. 6 weight vector for one service.
type Weights struct {
	W         [3]float64
	Intercept float64
	Learned   bool // false until enough heartbeat samples arrived
}

// InitialWeights returns w₀ — the weights the controller must use before
// (or, for Amoeba-NoM, instead of) calibration. Uncalibrated predictions
// must never let a switch-in violate QoS, so w₀ is pessimistic on two
// axes (§VII-C: "Amoeba-NoM has to pessimistically assume that the QoS
// degradations ... are accumulated"):
//
//   - per-resource degradations fully accumulate AND carry a sampling
//     -uncertainty margin (w_i = 1.4 instead of the calibrated <1), and
//   - a baseline interference floor (the intercept) covers contention
//     below the meters' noise floor.
//
// PCA calibration replaces all of this with the fitted linear model,
// which is what makes Amoeba switch earlier than Amoeba-NoM (Fig. 14).
func InitialWeights() Weights {
	return Weights{W: [3]float64{1.4, 1.4, 1.4}, Intercept: 0.20}
}

// Predict returns the slowdown (>= 1) for the given degradation features.
// The prediction is clamped to at least the largest single-resource
// degradation: contention on several resources can never hurt less than
// the worst one alone.
func (w Weights) Predict(e [3]float64) float64 {
	s := w.Intercept
	floor := 0.0
	for i, x := range e {
		s += w.W[i] * x
		if x > floor {
			floor = x
		}
	}
	if s < floor {
		s = floor
	}
	return 1 + s
}

// Config tunes the monitor.
type Config struct {
	// MeterQPS is the probing rate per meter (paper: 1 QPS).
	MeterQPS units.QPS
	// SamplePeriod is the heartbeat/calibration period T (Eq. 8 decides
	// its floor; core computes it per deployment).
	SamplePeriod units.Seconds
	// Window is the number of heartbeat samples kept per service.
	Window int
	// MinSamples is how many samples are needed before PCA calibration
	// replaces w₀.
	MinSamples int
	// UsePCA enables weight calibration; false reproduces Amoeba-NoM.
	UsePCA bool
	// MeterEWMAAlpha smooths meter latencies between periods.
	MeterEWMAAlpha units.Fraction
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		MeterQPS:       1,
		SamplePeriod:   10,
		Window:         240,
		MinSamples:     12,
		UsePCA:         true,
		MeterEWMAAlpha: 0.12,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MeterQPS <= 0 || c.SamplePeriod <= 0 {
		return fmt.Errorf("monitor: non-positive rates/periods")
	}
	if c.Window < c.MinSamples || c.MinSamples < 4 {
		return fmt.Errorf("monitor: window %d / min samples %d malformed", c.Window, c.MinSamples)
	}
	if c.MeterEWMAAlpha <= 0 || c.MeterEWMAAlpha > 1 {
		return fmt.Errorf("monitor: EWMA alpha %v out of (0,1]", c.MeterEWMAAlpha)
	}
	return nil
}

type sampleWindow struct {
	features [][3]float64
	targets  []float64 // observed slowdown − 1
	weights  Weights
}

// Monitor is the contention-monitor daemon.
type Monitor struct {
	sim    *sim.Simulator
	pool   *serverless.Platform
	cfg    Config
	bus    *obs.Bus
	curves [3]*meters.Curve

	meterLat  [3]*stats.EWMA
	pressure  [3]float64
	services  map[string]*sampleWindow
	stop      []func()
	started   bool
	meterCPUs float64 // CPU-seconds consumed by meters (overhead tracking)

	tracer *obs.Tracer
	// lastMeterSpan is the span of the most recent MeterSample — the
	// causal source of every pressure reading handed downstream until
	// the next refresh.
	lastMeterSpan obs.SpanID
}

// New creates a monitor against the given platform. The meter functions
// are registered on the platform here; Start launches the probing.
// It panics if the config or any meter curve is missing or invalid.
func New(s *sim.Simulator, pool *serverless.Platform, curves [3]*meters.Curve, cfg Config) *Monitor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	for i, c := range curves {
		if c == nil {
			panic(fmt.Sprintf("monitor: missing curve %d", i))
		}
		if err := c.Validate(); err != nil {
			panic(err)
		}
	}
	m := &Monitor{
		sim:      s,
		pool:     pool,
		cfg:      cfg,
		curves:   curves,
		services: make(map[string]*sampleWindow),
	}
	for i := range m.meterLat {
		m.meterLat[i] = stats.NewEWMA(cfg.MeterEWMAAlpha.Raw())
	}
	for _, mt := range meters.All() {
		mt := mt
		m.pool.Register(mt.Profile, func(r metrics.QueryRecord) {
			if r.Breakdown.ColdStart > 0 {
				return // a stray cold start says nothing about contention
			}
			m.meterLat[mt.Index].Update(r.Latency())
			m.meterCPUs += mt.Profile.Demand.CPU * r.Breakdown.Exec
		})
	}
	return m
}

// NewReplica creates a shard-local monitor replica: it holds the
// heartbeat windows and PCA calibration state for the services of one
// shard, but runs no meters of its own — the daemon monitor on the
// reserved namespace-0 cell probes the contention, and the sharded
// runtime pushes its pressure estimate into every replica at each
// epoch barrier via PushSample (DESIGN.md §15). Between barriers the
// replica serves Pressure/WeightsFor/Heartbeat exactly like the
// daemon, so the execution engine is oblivious to the split.
// It panics if the config is invalid.
func NewReplica(s *sim.Simulator, cfg Config) *Monitor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Monitor{
		sim:      s,
		cfg:      cfg,
		services: make(map[string]*sampleWindow),
	}
	for i := range m.meterLat {
		m.meterLat[i] = stats.NewEWMA(cfg.MeterEWMAAlpha.Raw())
	}
	return m
}

// PushSample installs an externally measured pressure estimate and the
// meter span it derives from. The sharded runtime calls this on every
// replica at each epoch barrier with the daemon monitor's latest
// refresh, replacing the periodic self-refresh a daemon would run.
//
//amoeba:noalloc
func (m *Monitor) PushSample(pressure [3]float64, meterSpan obs.SpanID) {
	m.pressure = pressure
	if meterSpan != 0 {
		m.lastMeterSpan = meterSpan
	}
}

// SetBus attaches the telemetry bus; the monitor emits MeterSample on
// every pressure refresh and HeartbeatSample on every calibration
// sample. A nil bus (the default) keeps emission sites on their
// zero-cost path.
func (m *Monitor) SetBus(b *obs.Bus) { m.bus = b }

// SetTracer attaches the causal tracer; meter samples and heartbeats
// then carry trace/span IDs, with heartbeats causally linked to the
// meter sample their pressure inputs derived from. A nil tracer (the
// default) leaves them untraced.
func (m *Monitor) SetTracer(t *obs.Tracer) { m.tracer = t }

// LastMeterSpan returns the span ID of the most recent pressure
// refresh (0 when untraced or before the first refresh). Consumers of
// Pressure() use it as the causal edge back to the sample.
func (m *Monitor) LastMeterSpan() obs.SpanID { return m.lastMeterSpan }

// Start launches the meter probes and the periodic pressure update.
// It panics if called twice.
func (m *Monitor) Start() {
	if m.started {
		panic("monitor: Start called twice")
	}
	m.started = true
	period := m.cfg.MeterQPS.Period()
	for _, mt := range meters.All() {
		name := mt.Profile.Name
		// Keep one container warm per meter so probes measure contention,
		// not cold starts.
		m.pool.Prewarm(name, 1, nil)
		stop := m.sim.Every(period.Raw(), func() { m.pool.Invoke(name) })
		m.stop = append(m.stop, stop)
	}
	stop := m.sim.Every(m.cfg.SamplePeriod.Raw(), m.refresh)
	m.stop = append(m.stop, stop)
}

// Stop halts probing and refresh.
func (m *Monitor) Stop() {
	for _, fn := range m.stop {
		fn()
	}
	m.stop = nil
}

// refresh recomputes the pressure estimate from smoothed meter latencies.
func (m *Monitor) refresh() {
	for i := range m.pressure {
		if m.meterLat[i].Initialized() {
			m.pressure[i] = m.curves[i].PressureFor(units.Seconds(m.meterLat[i].Value()))
		}
	}
	if m.bus.Active() {
		trace := m.tracer.StartTrace()
		span := m.tracer.NextSpan()
		if span != 0 {
			m.lastMeterSpan = span
		}
		m.bus.Emit(&obs.MeterSample{
			At: units.Seconds(m.sim.Now()),
			Latency: [3]units.Seconds{
				units.Seconds(m.meterLat[0].Value()),
				units.Seconds(m.meterLat[1].Value()),
				units.Seconds(m.meterLat[2].Value()),
			},
			Pressure: m.pressure,
			Trace:    trace,
			Span:     span,
		})
	}
}

// Pressure returns the latest quantified pressure estimate
// P = {P_cpu, P_io, P_net} (§IV-B Measurement).
func (m *Monitor) Pressure() [3]float64 { return m.pressure }

// MeterLatency returns the smoothed latency of meter idx (0 before any
// probe completed).
func (m *Monitor) MeterLatency(idx int) units.Seconds {
	return units.Seconds(m.meterLat[idx].Value())
}

// MeterCPUSeconds returns the cumulative CPU consumed by the meter probes
// (§VII-E's overhead metric).
func (m *Monitor) MeterCPUSeconds() float64 { return m.meterCPUs }

// Heartbeat ingests one calibration sample for a service: the degradation
// features the surfaces predicted and the slowdown actually observed.
// This is the "heartbeat package ... sent from the execution engine to
// contention monitor" of §VI-A.
func (m *Monitor) Heartbeat(service string, features [3]float64, observedSlowdown float64) {
	if observedSlowdown < 1 {
		observedSlowdown = 1
	}
	win, ok := m.services[service]
	if !ok {
		win = &sampleWindow{weights: InitialWeights()}
		m.services[service] = win
	}
	win.features = append(win.features, features)
	win.targets = append(win.targets, observedSlowdown-1)
	if len(win.features) > m.cfg.Window {
		win.features = win.features[1:]
		win.targets = win.targets[1:]
	}
	if m.cfg.UsePCA && len(win.features) >= m.cfg.MinSamples {
		m.recalibrate(win)
	}
	if m.bus.Active() {
		m.bus.Emit(&obs.HeartbeatSample{
			At:        units.Seconds(m.sim.Now()),
			Service:   service,
			Features:  features,
			Observed:  observedSlowdown,
			Window:    len(win.features),
			Weights:   win.weights.W,
			Intercept: win.weights.Intercept,
			Learned:   win.weights.Learned,
			Trace:     m.tracer.StartTrace(),
			Span:      m.tracer.NextSpan(),
			MeterSpan: m.lastMeterSpan,
		})
	}
}

// recalibrate refits the PCA regression for one service's window,
// updating w₀ → w_n (§VI-A).
func (m *Monitor) recalibrate(win *sampleWindow) {
	rows := make([][]float64, len(win.features))
	informative := false
	for i, f := range win.features {
		rows[i] = []float64{f[0], f[1], f[2]}
		if f[0] > 1e-6 || f[1] > 1e-6 || f[2] > 1e-6 {
			informative = true
		}
	}
	if !informative {
		// All-zero features (no contention observed yet): keep w₀, any
		// fit would be degenerate.
		return
	}
	reg := pca.FitRegression(linalg.FromRows(rows), win.targets, 0)
	var w Weights
	copy(w.W[:], reg.Weights)
	w.Intercept = reg.Intercept
	// Clamp against wild extrapolation from a noisy window: weights far
	// outside [0, w0] have no physical reading (a resource cannot undo
	// more degradation than exists, nor amplify it several-fold).
	for i := range w.W {
		if w.W[i] < -0.5 {
			w.W[i] = -0.5
		}
		if w.W[i] > 2 {
			w.W[i] = 2
		}
	}
	if w.Intercept > 0.5 {
		w.Intercept = 0.5
	}
	if w.Intercept < -0.5 {
		w.Intercept = -0.5
	}
	w.Learned = true
	win.weights = w
}

// WeightsFor returns the calibrated weights for a service (w₀ until the
// window fills or when PCA is disabled).
func (m *Monitor) WeightsFor(service string) Weights {
	if win, ok := m.services[service]; ok {
		return win.weights
	}
	return InitialWeights()
}

// SampleCount returns the heartbeat samples currently windowed for a
// service.
func (m *Monitor) SampleCount(service string) int {
	if win, ok := m.services[service]; ok {
		return len(win.features)
	}
	return 0
}
