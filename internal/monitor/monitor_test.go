package monitor

import (
	"math"
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/contention"
	"amoeba/internal/meters"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// pressureAt adapts a [3]float64 estimate to the model's pressure type.
func pressureAt(p [3]float64) contention.Pressure {
	return contention.Pressure{CPU: p[0], IO: p[1], Net: p[2]}
}

func TestWeightsPredict(t *testing.T) {
	w := InitialWeights()
	// w0 carries a pessimism floor even with zero observed degradation.
	if got := w.Predict([3]float64{0, 0, 0}); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("no degradation predicts %v, want 1.2 (safety floor)", got)
	}
	// Pessimistic accumulation: 1 + 0.2 + 1.4·(0.1+0.2+0.3).
	if got := w.Predict([3]float64{0.1, 0.2, 0.3}); math.Abs(got-2.04) > 1e-12 {
		t.Errorf("w0 predict = %v, want 2.04", got)
	}
	// Learned weights are floored at the worst single resource.
	learned := Weights{W: [3]float64{0.01, 0.01, 0.01}, Learned: true}
	if got := learned.Predict([3]float64{0.5, 0, 0}); got < 1.5 {
		t.Errorf("prediction %v below single-resource floor 1.5", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.MeterQPS = 0
	if bad.Validate() == nil {
		t.Error("zero meter QPS accepted")
	}
	bad = good
	bad.MinSamples = 2
	if bad.Validate() == nil {
		t.Error("tiny MinSamples accepted")
	}
	bad = good
	bad.Window = good.MinSamples - 1
	if bad.Validate() == nil {
		t.Error("window < min samples accepted")
	}
}

func TestPressureEstimationTracksInjectedDemand(t *testing.T) {
	s := sim.New(2)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	curves := syntheticCurvesFromModel(pool, cfg)
	m := New(s, pool, curves, DefaultConfig())
	m.Start()

	// Hold CPU pressure at 0.5 and IO at 0.3.
	cap := cfg.Node.Capacity()
	pool.InjectDemand(resources.Vector{CPU: 0.5 * cap.CPU, DiskMBs: 0.3 * cap.DiskMBs})

	p := averageEstimate(s, m, 300)
	if math.Abs(p[0]-0.5) > 0.1 {
		t.Errorf("CPU pressure estimate %v, want ~0.5", p[0])
	}
	if math.Abs(p[1]-0.3) > 0.1 {
		t.Errorf("IO pressure estimate %v, want ~0.3", p[1])
	}
	if p[2] > 0.15 {
		t.Errorf("net pressure estimate %v, want ~0 (allowing meter self-noise)", p[2])
	}
}

// averageEstimate runs the simulation for the given duration and returns
// the time-averaged pressure estimate over the second half (the estimator
// tracks a stochastic signal, so point-in-time reads are noisy by design).
func averageEstimate(s *sim.Simulator, m *Monitor, duration float64) [3]float64 {
	var sum [3]float64
	n := 0
	s.Every(10, func() {
		if float64(s.Now()) < duration/2 {
			return
		}
		p := m.Pressure()
		for i := range sum {
			sum[i] += p[i]
		}
		n++
	})
	s.Run(sim.Time(duration))
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum
}

// syntheticCurvesFromModel builds exact curves from the pool's own model,
// including the meters' own ~probe-level contribution being negligible.
func syntheticCurvesFromModel(pool *serverless.Platform, cfg serverless.Config) [3]*meters.Curve {
	model := pool.Model()
	var out [3]*meters.Curve
	for _, mt := range meters.All() {
		grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
		lats := make([]float64, len(grid))
		for i, pr := range grid {
			var cp [3]float64
			cp[mt.Index] = pr
			slow := model.Slowdown(pressureAt(cp), mt.Profile.Sensitivity)
			lats[i] = mt.Profile.ExecTime*slow + mt.Profile.Overheads.Total()
		}
		out[mt.Index] = &meters.Curve{Meter: mt, Pressures: grid, Latencies: lats}
	}
	return out
}

func TestHeartbeatCalibrationConvergesToTruth(t *testing.T) {
	// Feed the monitor samples from a known sub-additive ground truth
	// (slowdown = 1 + sqrt(e1²+e2²+e3²)); calibrated weights must predict
	// far better than w0 on held-out points near the sampled region.
	s := sim.New(3)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), DefaultConfig())

	rng := sim.NewRNG(7)
	truth := func(e [3]float64) float64 {
		return 1 + math.Sqrt(e[0]*e[0]+e[1]*e[1]+e[2]*e[2])
	}
	var held [][3]float64
	for i := 0; i < 120; i++ {
		e := [3]float64{rng.Uniform(0, 0.5), rng.Uniform(0, 0.4), rng.Uniform(0, 0.2)}
		if i%10 == 0 {
			held = append(held, e)
			continue
		}
		m.Heartbeat("svc", e, truth(e))
	}
	w := m.WeightsFor("svc")
	if !w.Learned {
		t.Fatal("weights never calibrated")
	}
	w0 := InitialWeights()
	var errW, errW0 float64
	for _, e := range held {
		y := truth(e)
		errW += math.Abs(w.Predict(e) - y)
		errW0 += math.Abs(w0.Predict(e) - y)
	}
	if errW >= errW0 {
		t.Errorf("calibrated error %v not better than w0 error %v", errW, errW0)
	}
	// w0 is pessimistic: it must overestimate the sub-additive truth.
	overEst := 0
	for _, e := range held {
		if w0.Predict(e) >= truth(e) {
			overEst++
		}
	}
	if overEst < len(held) {
		t.Errorf("w0 overestimated only %d/%d held-out points", overEst, len(held))
	}
}

func TestNoPCAKeepsInitialWeights(t *testing.T) {
	s := sim.New(4)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	mcfg := DefaultConfig()
	mcfg.UsePCA = false // Amoeba-NoM
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), mcfg)
	for i := 0; i < 100; i++ {
		m.Heartbeat("svc", [3]float64{0.3, 0.2, 0.1}, 1.4)
	}
	w := m.WeightsFor("svc")
	if w.Learned {
		t.Error("NoM variant learned weights")
	}
	if w != InitialWeights() {
		t.Errorf("NoM weights %+v changed from w0", w)
	}
}

func TestHeartbeatWindowBounded(t *testing.T) {
	s := sim.New(5)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	mcfg := DefaultConfig()
	mcfg.Window = 20
	mcfg.MinSamples = 5
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), mcfg)
	for i := 0; i < 100; i++ {
		m.Heartbeat("svc", [3]float64{0.1 * float64(i%5), 0, 0}, 1.1)
	}
	if got := m.SampleCount("svc"); got != 20 {
		t.Errorf("window holds %d samples, want 20", got)
	}
}

func TestZeroFeatureWindowKeepsW0(t *testing.T) {
	// With no contention observed, recalibration must not produce a
	// degenerate fit.
	s := sim.New(6)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), DefaultConfig())
	for i := 0; i < 50; i++ {
		m.Heartbeat("svc", [3]float64{}, 1.0)
	}
	w := m.WeightsFor("svc")
	if w.Learned {
		t.Error("learned weights from all-zero features")
	}
}

func TestMeterOverheadTracked(t *testing.T) {
	s := sim.New(7)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), DefaultConfig())
	m.Start()
	s.Run(200)
	if m.MeterCPUSeconds() <= 0 {
		t.Error("meter CPU overhead not tracked")
	}
	// §VII-E: total meter overhead ≈ 1% of one node's CPU. Our three
	// meters at 1 QPS: CPU meter 1.0×0.05 + io 0.1×0.05 + net 0.05×0.05
	// ≈ 0.0575 core-s per second = 0.14% of 40 cores.
	frac := m.MeterCPUSeconds() / (200 * cfg.Node.Capacity().CPU)
	if frac > 0.011 {
		t.Errorf("meter overhead %.4f of platform CPU, want ~1%% or less", frac)
	}
}

func TestStartTwicePanics(t *testing.T) {
	s := sim.New(8)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), DefaultConfig())
	m.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	m.Start()
}

func TestMonitorWithLiveBackground(t *testing.T) {
	// End-to-end: background services generate contention; the monitor's
	// estimate must be positive on the loaded resource and near zero on
	// unloaded ones.
	s := sim.New(9)
	cfg := serverless.DefaultConfig()
	pool := serverless.New(s, cfg)
	m := New(s, pool, syntheticCurvesFromModel(pool, cfg), DefaultConfig())
	m.Start()

	hog := workload.Float()
	hog.Name = "hog"
	pool.Register(hog, nil, serverless.WithNMax(64))
	gen := arrival.New(s, trace.Constant{QPS: 100}, func(sim.Time) { pool.Invoke("hog") })
	gen.Start()

	p := averageEstimate(s, m, 400)
	// ~100 QPS × 0.11s × 1 core ≈ 11 cores ≈ 0.28 pressure.
	if p[0] < 0.12 || p[0] > 0.5 {
		t.Errorf("CPU pressure estimate %v, want ~0.28", p[0])
	}
	if p[1] > 0.12 {
		t.Errorf("IO pressure estimate %v for a CPU-only hog", p[1])
	}
}
