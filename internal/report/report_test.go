package report

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-long-name", 42)
	out := tab.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Errorf("row content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as long as the header.
	if len(lines[3]) < len(lines[1])-2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tab := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong arity did not panic")
		}
	}()
	tab.AddRow(1)
}

func TestFloatTrimming(t *testing.T) {
	cases := map[float64]string{
		1.0: "1", 1.5: "1.5", 0.125: "0.125", 0: "0", 2.100: "2.1",
	}
	for v, want := range cases {
		if got := formatCell(v); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title: "curve", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{2, 3}}},
	}
	out := f.String()
	if !strings.Contains(out, "series a") || !strings.Contains(out, "3.0000") {
		t.Errorf("figure render missing content:\n%s", out)
	}
}

func TestFigureRaggedSeriesPanics(t *testing.T) {
	f := &Figure{Series: []Series{{Name: "bad", X: []float64{1}, Y: nil}}}
	defer func() {
		if recover() == nil {
			t.Error("ragged series did not panic")
		}
	}()
	_ = f.String()
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render lowest glyph: %q", flat)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := NewTable("demo", "name", "qps")
	tab.AddRow("a,with,commas", 1.25)
	tab.AddRow("b", 3)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if recs[0][0] != "name" || recs[1][0] != "a,with,commas" || recs[2][1] != "3" {
		t.Errorf("CSV content wrong: %v", recs)
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		Title: "curve", XLabel: "pressure", YLabel: "latency",
		Series: []Series{
			{Name: "cpu", X: []float64{0, 0.5}, Y: []float64{0.09, 0.1}},
			{Name: "io", X: []float64{0}, Y: []float64{0.09}},
		},
	}
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 points
		t.Fatalf("%d records, want 4", len(recs))
	}
	if recs[0][1] != "pressure" || recs[1][0] != "cpu" || recs[3][0] != "io" {
		t.Errorf("long-form CSV wrong: %v", recs)
	}
}

func TestCSVName(t *testing.T) {
	if CSVName("fig11") != "fig11.csv" {
		t.Error("CSVName wrong")
	}
}
