// Package report renders experiment results as aligned ASCII tables and
// simple series listings — the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
// It panics if no columns are given.
func NewTable(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("report: table with no columns")
	}
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with %.3f.
// It panics if the value count differs from the column count.
func (t *Table) AddRow(values ...interface{}) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d values, table has %d columns",
			len(values), len(t.Columns)))
	}
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = formatCell(v)
	}
	t.rows = append(t.rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return trimFloat(x)
	case float32:
		return trimFloat(float64(x))
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named (x, y) sequence — a figure curve.
type Series struct {
	Name string
	X, Y []float64
}

// Validate reports malformed series.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as aligned columns, one block per series.
// It panics if a series fails validation.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (x: %s, y: %s)\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "  series %s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "    %12.4f  %12.4f\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Sparkline renders y-values as a coarse unicode sparkline, a quick visual
// check of a curve's shape in terminal output.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
