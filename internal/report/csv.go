package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises the table as RFC-4180 CSV (header row + data rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV serialises the figure in long form: series,x,y — one row per
// point, ready for any plotting tool.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return err
	}
	for _, s := range f.Series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVName derives a filesystem-friendly file name for an artifact id.
func CSVName(artifactID string) string {
	return fmt.Sprintf("%s.csv", artifactID)
}
