// Package workload defines the microservice benchmarks of the evaluation:
// the five FunctionBench workloads of Table III (float, matmul, linpack,
// dd, cloud_stor), their resource demands, contention sensitivities, QoS
// targets, and peak loads, plus the serverless per-query overhead anatomy
// of Fig. 4.
package workload

import (
	"fmt"

	"amoeba/internal/contention"
	"amoeba/internal/resources"
)

// Overheads is the serverless-path latency anatomy of a single query
// (Fig. 4): everything a FaaS platform adds around the function body.
// All values in seconds.
type Overheads struct {
	Processing  float64 // authentication, authorization, scheduling
	CodeLoadHot float64 // loading code into an already-warm container
	ResultPost  float64 // posting the result back through the gateway
}

// Total returns the warm-path overhead sum — the α of Eq. 6.
func (o Overheads) Total() float64 {
	return o.Processing + o.CodeLoadHot + o.ResultPost
}

// Profile fully describes one microservice benchmark.
type Profile struct {
	Name string

	// ExecTime is the solo-run function body duration L₀ in seconds on an
	// uncontended platform (service time, excluding platform overheads).
	ExecTime float64
	// ExecCV is the coefficient of variation of the body duration; the
	// simulator draws per-query times from a log-normal with this CV.
	ExecCV float64

	// QoSTarget is the end-to-end latency bound in seconds; the paper's
	// QoS metric is the 95%-ile latency staying under it.
	QoSTarget float64

	// Demand is the resource demand exerted while one query executes:
	// CPU in cores, Memory in MB (container working set), DiskIO in MB/s,
	// Network in Mb/s.
	Demand resources.Vector

	// Sensitivity is the Table III susceptibility to contention.
	Sensitivity contention.Sensitivity
	// MemSensitivity is Table III's memory column, kept for reporting.
	MemSensitivity float64

	// PeakQPS is the diurnal peak arrival rate the maintainer provisions
	// the IaaS deployment for.
	PeakQPS float64

	// Overheads is the serverless-path anatomy (Fig. 4).
	Overheads Overheads

	// VMCores and VMMemMB size one IaaS VM for this service; the platform
	// provisions ceil(peak demand / VM size) such VMs.
	VMCores int
	VMMemMB float64
}

// Validate reports profile configuration errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if p.ExecTime <= 0 {
		return fmt.Errorf("workload: %s has non-positive exec time %v", p.Name, p.ExecTime)
	}
	if p.ExecCV < 0 || p.ExecCV > 2 {
		return fmt.Errorf("workload: %s has exec CV %v out of [0,2]", p.Name, p.ExecCV)
	}
	if p.QoSTarget <= p.ExecTime {
		return fmt.Errorf("workload: %s QoS target %v not above exec time %v",
			p.Name, p.QoSTarget, p.ExecTime)
	}
	if !p.Demand.NonNegative() || p.Demand.CPU == 0 {
		return fmt.Errorf("workload: %s has invalid demand %v", p.Name, p.Demand)
	}
	if err := p.Sensitivity.Validate(); err != nil {
		return fmt.Errorf("workload: %s: %w", p.Name, err)
	}
	if p.PeakQPS <= 0 {
		return fmt.Errorf("workload: %s has non-positive peak load", p.Name)
	}
	if p.VMCores <= 0 || p.VMMemMB <= 0 {
		return fmt.Errorf("workload: %s has invalid VM shape", p.Name)
	}
	return nil
}

// ServiceDemandSeconds returns the CPU time one query consumes
// (cores × duration), used by provisioning math.
func (p Profile) ServiceDemandSeconds() float64 {
	return p.Demand.CPU * p.ExecTime
}

// ContainerMemMB is the serverless container size of Table II.
const ContainerMemMB = 256

// defaultOverheads builds the Fig. 4 anatomy scaled to a benchmark: the
// paper measures the extra overheads at 10–45 % of end-to-end latency.
func defaultOverheads(processing, codeLoad, post float64) Overheads {
	return Overheads{Processing: processing, CodeLoadHot: codeLoad, ResultPost: post}
}

// Float returns the float_operation benchmark: short pure-CPU bursts with
// a tight QoS target. The tight target is what keeps its IaaS utilisation
// low even at peak (Fig. 2's discussion).
func Float() Profile {
	return Profile{
		Name:           "float",
		ExecTime:       0.100,
		ExecCV:         0.10,
		QoSTarget:      0.180,
		Demand:         resources.Vector{CPU: 1.0, MemMB: 150, DiskMBs: 0, NetMbs: 10},
		Sensitivity:    contention.Sensitivity{CPU: 0.90, IO: 0.0, Net: 0.05},
		MemSensitivity: 0.9,
		PeakQPS:        55,
		Overheads:      defaultOverheads(0.008, 0.006, 0.006),
		VMCores:        4,
		VMMemMB:        8 * 1024,
	}
}

// Matmul returns the matrix-multiplication benchmark: longer CPU-bound
// queries with a looser relative target.
func Matmul() Profile {
	return Profile{
		Name:           "matmul",
		ExecTime:       0.250,
		ExecCV:         0.12,
		QoSTarget:      0.600,
		Demand:         resources.Vector{CPU: 1.0, MemMB: 220, DiskMBs: 0, NetMbs: 15},
		Sensitivity:    contention.Sensitivity{CPU: 0.85, IO: 0.0, Net: 0.05},
		MemSensitivity: 0.9,
		PeakQPS:        60,
		Overheads:      defaultOverheads(0.012, 0.010, 0.008),
		VMCores:        4,
		VMMemMB:        8 * 1024,
	}
}

// Linpack returns the linpack benchmark: the heaviest CPU-bound workload.
func Linpack() Profile {
	return Profile{
		Name:           "linpack",
		ExecTime:       0.300,
		ExecCV:         0.12,
		QoSTarget:      0.750,
		Demand:         resources.Vector{CPU: 1.0, MemMB: 230, DiskMBs: 0, NetMbs: 10},
		Sensitivity:    contention.Sensitivity{CPU: 0.85, IO: 0.0, Net: 0.05},
		MemSensitivity: 0.85,
		PeakQPS:        24,
		Overheads:      defaultOverheads(0.013, 0.012, 0.009),
		VMCores:        4,
		VMMemMB:        8 * 1024,
	}
}

// DD returns the dd benchmark: disk-IO-bound file copies with a medium
// CPU component.
func DD() Profile {
	return Profile{
		Name:           "dd",
		ExecTime:       0.150,
		ExecCV:         0.20,
		QoSTarget:      0.400,
		Demand:         resources.Vector{CPU: 0.45, MemMB: 200, DiskMBs: 180, NetMbs: 20},
		Sensitivity:    contention.Sensitivity{CPU: 0.40, IO: 0.90, Net: 0.05},
		MemSensitivity: 0.5,
		PeakQPS:        80,
		Overheads:      defaultOverheads(0.010, 0.008, 0.010),
		VMCores:        4,
		VMMemMB:        8 * 1024,
	}
}

// CloudStor returns the cloud_stor benchmark: object up/downloads bound by
// network bandwidth with a small CPU footprint. Its network bottleneck is
// the paper's example of a service whose IaaS CPU utilisation stays low
// even at peak (Fig. 2).
func CloudStor() Profile {
	return Profile{
		Name:           "cloud_stor",
		ExecTime:       0.220,
		ExecCV:         0.25,
		QoSTarget:      0.420,
		Demand:         resources.Vector{CPU: 0.25, MemMB: 180, DiskMBs: 40, NetMbs: 900},
		Sensitivity:    contention.Sensitivity{CPU: 0.15, IO: 0.50, Net: 0.90},
		MemSensitivity: 0.2,
		PeakQPS:        55,
		Overheads:      defaultOverheads(0.015, 0.010, 0.020),
		VMCores:        4,
		VMMemMB:        8 * 1024,
	}
}

// All returns the five benchmarks in the paper's Table III order.
func All() []Profile {
	return []Profile{Float(), Matmul(), Linpack(), DD(), CloudStor()}
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (valid: float, matmul, linpack, dd, cloud_stor)", name)
}
