package workload

import (
	"testing"

	"amoeba/internal/resources"
)

func TestAllProfilesValid(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d profiles, want 5", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestProfilesMatchTableIII(t *testing.T) {
	// Spot-check the sensitivity structure of Table III.
	f := Float()
	if f.Sensitivity.CPU < 0.8 || f.Sensitivity.IO != 0 {
		t.Errorf("float sensitivities %+v do not match Table III (CPU high, IO -)", f.Sensitivity)
	}
	d := DD()
	if d.Sensitivity.IO < 0.8 || d.Sensitivity.CPU > 0.6 {
		t.Errorf("dd sensitivities %+v do not match Table III (IO high, CPU medium)", d.Sensitivity)
	}
	c := CloudStor()
	if c.Sensitivity.Net < 0.8 || c.Sensitivity.CPU > 0.3 {
		t.Errorf("cloud_stor sensitivities %+v do not match Table III (Net high, CPU low)", c.Sensitivity)
	}
}

func TestProfilesFitContainer(t *testing.T) {
	for _, p := range All() {
		if p.Demand.MemMB > ContainerMemMB {
			t.Errorf("%s working set %vMB exceeds the %dMB container of Table II",
				p.Name, p.Demand.MemMB, ContainerMemMB)
		}
	}
}

func TestOverheadsWithinPaperRange(t *testing.T) {
	// Fig. 4: extra overheads are 10–45%% of a query's end-to-end latency.
	for _, p := range All() {
		frac := p.Overheads.Total() / (p.Overheads.Total() + p.ExecTime)
		if frac < 0.05 || frac > 0.45 {
			t.Errorf("%s overhead fraction %.2f outside Fig. 4's 10-45%% band", p.Name, frac)
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got.Name != want.Name {
			t.Errorf("ByName(%q) returned %q", want.Name, got.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName of unknown benchmark did not error")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := Float()
	cases := map[string]func(Profile) Profile{
		"empty name":    func(p Profile) Profile { p.Name = ""; return p },
		"zero exec":     func(p Profile) Profile { p.ExecTime = 0; return p },
		"qos <= exec":   func(p Profile) Profile { p.QoSTarget = p.ExecTime; return p },
		"zero cpu":      func(p Profile) Profile { p.Demand.CPU = 0; return p },
		"neg demand":    func(p Profile) Profile { p.Demand = resources.Vector{CPU: 1, MemMB: -5}; return p },
		"bad sens":      func(p Profile) Profile { p.Sensitivity.CPU = -1; return p },
		"zero peak":     func(p Profile) Profile { p.PeakQPS = 0; return p },
		"zero vm cores": func(p Profile) Profile { p.VMCores = 0; return p },
		"huge cv":       func(p Profile) Profile { p.ExecCV = 3; return p },
	}
	for name, mutate := range cases {
		if mutate(base).Validate() == nil {
			t.Errorf("Validate accepted profile with %s", name)
		}
	}
}

func TestServiceDemandSeconds(t *testing.T) {
	p := Profile{Demand: resources.Vector{CPU: 0.5}, ExecTime: 0.2}
	if got := p.ServiceDemandSeconds(); got != 0.1 {
		t.Errorf("ServiceDemandSeconds = %v, want 0.1", got)
	}
}

func TestQoSHeadroomOrdering(t *testing.T) {
	// float is the tight-QoS benchmark: its target/exec ratio must be the
	// smallest of the suite (this drives its low peak utilisation, Fig. 2).
	ratios := map[string]float64{}
	for _, p := range All() {
		ratios[p.Name] = p.QoSTarget / p.ExecTime
	}
	for name, r := range ratios {
		if name != "float" && r < ratios["float"] {
			t.Errorf("%s ratio %.2f below float's %.2f; float must be tightest", name, r, ratios["float"])
		}
	}
}
