package cost

import (
	"math"
	"testing"

	"amoeba/internal/core"
	"amoeba/internal/metrics"
	"amoeba/internal/resources"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func serviceResult(iaasCPU, iaasMemMB, slMemMBs float64, slQueries int) *core.ServiceResult {
	prof := workload.Float()
	coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
	for i := 0; i < slQueries; i++ {
		coll.Observe(metrics.QueryRecord{
			Service: prof.Name, Backend: metrics.BackendServerless,
			Breakdown: metrics.Breakdown{Exec: 0.1},
		})
	}
	return &core.ServiceResult{
		Profile:         prof,
		Collector:       coll,
		IaaSUsage:       resources.Vector{CPU: iaasCPU, MemMB: iaasMemMB},
		ServerlessUsage: resources.Vector{MemMB: slMemMBs},
	}
}

func TestBillArithmetic(t *testing.T) {
	p := Pricing{
		IaaSCoreSecond:       0.01,
		IaaSMemGBSecond:      0.001,
		ServerlessGBSecond:   0.002,
		ServerlessInvocation: 0.0001,
	}
	sr := serviceResult(100, 2048, 512, 50)
	b := ForService(p, sr)
	if math.Abs(b.IaaSCompute-1.0) > 1e-12 { // 100 core-s × 0.01
		t.Errorf("IaaSCompute = %v", b.IaaSCompute)
	}
	if math.Abs(b.IaaSMemory-0.002) > 1e-12 { // 2 GB-s × 0.001
		t.Errorf("IaaSMemory = %v", b.IaaSMemory)
	}
	if math.Abs(b.ServerlessCompute-0.001) > 1e-12 { // 0.5 GB-s × 0.002
		t.Errorf("ServerlessCompute = %v", b.ServerlessCompute)
	}
	if math.Abs(b.ServerlessInvocations-0.005) > 1e-12 { // 50 × 0.0001
		t.Errorf("ServerlessInvocations = %v", b.ServerlessInvocations)
	}
	want := 1.0 + 0.002 + 0.001 + 0.005
	if math.Abs(b.Total()-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", b.Total(), want)
	}
}

func TestDefaultPricingSane(t *testing.T) {
	p := DefaultPricing()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The structural fact behind the paper's economics: an idle rented
	// core costs real money; an idle serverless deployment costs nothing.
	idleIaaSHour := p.IaaSCoreSecond * 3600
	if idleIaaSHour <= 0 {
		t.Error("idle IaaS is free; the diurnal argument collapses")
	}
}

func TestCompareSavings(t *testing.T) {
	p := DefaultPricing()
	amoeba := serviceResult(1000, 100*1024, 50*1024, 1000) // part-time IaaS
	nameko := serviceResult(5000, 500*1024, 0, 0)          // always-on IaaS
	_, _, saved := Compare(p, amoeba, nameko)
	if saved <= 0 || saved >= 1 {
		t.Errorf("saving fraction %v out of (0,1)", saved)
	}
}

func TestValidateRejectsBadTariffs(t *testing.T) {
	bad := DefaultPricing()
	bad.IaaSCoreSecond = -1
	if bad.Validate() == nil {
		t.Error("negative price accepted")
	}
	if (Pricing{}).Validate() == nil {
		t.Error("all-zero tariff accepted")
	}
}

func TestForServicePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil result did not panic")
		}
	}()
	ForService(DefaultPricing(), nil)
}

// TestEndToEndCostSaving prices a real Amoeba run against Nameko: the
// paper's resource savings must survive translation into money.
func TestEndToEndCostSaving(t *testing.T) {
	prof := workload.Float()
	mk := func(v core.Variant) *core.ServiceResult {
		sc := core.Scenario{
			Variant: v,
			Services: []core.ServiceSpec{{
				Profile: prof,
				Trace:   trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*0.2, 3600, 31),
			}},
			Background: core.BackgroundTenants(3600, 31),
			Duration:   3600,
			Seed:       31,
		}
		return core.Run(sc).Services[prof.Name]
	}
	am, nk := mk(core.VariantAmoeba), mk(core.VariantNameko)
	billA, billN, saved := Compare(DefaultPricing(), am, nk)
	if saved <= 0.15 {
		t.Errorf("cost saving %.1f%% too small (amoeba $%.4f vs nameko $%.4f)",
			saved*100, billA.Total(), billN.Total())
	}
	if billN.ServerlessCompute != 0 || billN.ServerlessInvocations != 0 {
		t.Error("Nameko billed serverless components")
	}
	t.Logf("float day: amoeba $%.4f vs nameko $%.4f (saved %.1f%%)",
		billA.Total(), billN.Total(), 100*saved)
}
