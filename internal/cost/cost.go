// Package cost turns resource-usage integrals into money. The paper's
// motivation is economic — maintainers "pay for each function invocation
// instead of the whole infrastructure" (§I) — so a faithful release needs
// the bill, not just core-seconds. The model mirrors public-cloud
// pricing: IaaS bills rented VM time (cores + memory, whether used or
// not); serverless bills GB-seconds of container residency plus a
// per-invocation fee.
package cost

import (
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/metrics"
)

// Pricing holds the tariff. Defaults are in the ballpark of 2020-era
// public list prices, normalised to seconds; absolute values matter less
// than their ratio, which is what drives the crossover load between the
// two deployments (the Villamizar-style comparison the paper cites [27]).
type Pricing struct {
	// IaaSCoreSecond is the price of one rented core for one second
	// (bundled VM price attributed to cores).
	IaaSCoreSecond float64
	// IaaSMemGBSecond is the price of one rented GB for one second.
	IaaSMemGBSecond float64
	// ServerlessGBSecond is the FaaS compute price per GB-second of
	// container residency.
	ServerlessGBSecond float64
	// ServerlessInvocation is the flat per-request fee.
	ServerlessInvocation float64
}

// DefaultPricing returns a representative public-cloud tariff.
func DefaultPricing() Pricing {
	return Pricing{
		IaaSCoreSecond:       0.04 / 3600,    // ~$0.04 per core-hour
		IaaSMemGBSecond:      0.005 / 3600,   // ~$0.005 per GB-hour
		ServerlessGBSecond:   0.0000166667,   // classic $/GB-s list price
		ServerlessInvocation: 0.20 / 1000000, // $0.20 per million requests
	}
}

// Validate reports tariff errors.
func (p Pricing) Validate() error {
	for name, v := range map[string]float64{
		"IaaSCoreSecond": p.IaaSCoreSecond, "IaaSMemGBSecond": p.IaaSMemGBSecond,
		"ServerlessGBSecond": p.ServerlessGBSecond, "ServerlessInvocation": p.ServerlessInvocation,
	} {
		if v < 0 {
			return fmt.Errorf("cost: negative price %s", name)
		}
	}
	if p.IaaSCoreSecond == 0 && p.ServerlessGBSecond == 0 {
		return fmt.Errorf("cost: tariff prices nothing")
	}
	return nil
}

// Bill is the itemised cost of one service over one run.
type Bill struct {
	Service string
	// IaaS components: rented capacity integrated over VM lifetime.
	IaaSCompute float64
	IaaSMemory  float64
	// Serverless components.
	ServerlessCompute     float64 // GB-seconds of container residency
	ServerlessInvocations float64 // per-request fees
}

// Total returns the bill's sum.
func (b Bill) Total() float64 {
	return b.IaaSCompute + b.IaaSMemory + b.ServerlessCompute + b.ServerlessInvocations
}

// ForService prices one service's result under the tariff.
// It panics if the pricing fails validation or sr is nil.
func ForService(p Pricing, sr *core.ServiceResult) Bill {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if sr == nil {
		panic("cost: nil service result")
	}
	b := Bill{Service: sr.Profile.Name}
	b.IaaSCompute = sr.IaaSUsage.CPU * p.IaaSCoreSecond
	b.IaaSMemory = sr.IaaSUsage.MemMB / 1024 * p.IaaSMemGBSecond
	b.ServerlessCompute = sr.ServerlessUsage.MemMB / 1024 * p.ServerlessGBSecond
	b.ServerlessInvocations = float64(sr.Collector.BackendCount(metrics.BackendServerless)) * p.ServerlessInvocation
	return b
}

// Compare prices the same service under two system results (e.g. Amoeba
// vs Nameko) and returns the saving fraction of a relative to b.
func Compare(p Pricing, a, b *core.ServiceResult) (billA, billB Bill, savedFrac float64) {
	billA, billB = ForService(p, a), ForService(p, b)
	if billB.Total() > 0 {
		savedFrac = 1 - billA.Total()/billB.Total()
	}
	return billA, billB, savedFrac
}
