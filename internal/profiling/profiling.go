// Package profiling builds the contention-meter curves (Fig. 8) and the
// per-microservice latency surfaces (Fig. 9) by running controlled
// mini-simulations against the serverless platform: the probed function
// runs alone while the harness holds the pressure on one resource at an
// exact level, sweeping the grid.
//
// Every grid cell is an independent simulation with its own seed, so the
// sweep fans out across a worker pool — one goroutine per core — which is
// the one place this repository parallelises: across simulations, never
// inside one.
package profiling

import (
	"fmt"
	"runtime"
	"sync"

	"amoeba/internal/arrival"
	"amoeba/internal/meters"
	"amoeba/internal/metrics"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/stats"
	"amoeba/internal/surfaces"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// Options tunes the profiling harness.
type Options struct {
	// Duration is virtual seconds simulated per grid cell.
	Duration float64
	// ProbeQPS is the probe load used when profiling meter curves.
	ProbeQPS float64
	// Seed derives per-cell seeds.
	Seed uint64
	// Parallelism caps the worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Quantile is the latency quantile recorded into surfaces (0.95).
	Quantile float64
}

// DefaultOptions returns a configuration balancing precision and runtime.
func DefaultOptions() Options {
	return Options{
		Duration:    60,
		ProbeQPS:    2,
		Seed:        0xA0EBA,
		Parallelism: 0,
		Quantile:    0.95,
	}
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) validate() error {
	if o.Duration <= 0 || o.ProbeQPS <= 0 {
		return fmt.Errorf("profiling: non-positive duration/probe rate")
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return fmt.Errorf("profiling: quantile %v out of (0,1)", o.Quantile)
	}
	return nil
}

// injectionFor converts a pressure level on meter resource idx into a raw
// demand vector against the given capacity. It panics on an index outside
// the three meter resources — callers iterate a fixed range.
func injectionFor(idx int, pressure float64, capacity resources.Vector) resources.Vector {
	switch idx {
	case 0:
		return resources.Vector{CPU: pressure * capacity.CPU}
	case 1:
		return resources.Vector{DiskMBs: pressure * capacity.DiskMBs}
	case 2:
		return resources.Vector{NetMbs: pressure * capacity.NetMbs}
	}
	panic(fmt.Sprintf("profiling: meter index %d out of range", idx))
}

// measureCell runs one mini-simulation: the profile alone on a platform
// whose pressure on meter resource idx is pinned at the given level,
// driven at loadQPS, returning a latency quantile over warm queries.
//
// bodyOnly selects what is measured. Meter curves record the probe's full
// warm-path latency (a 1 QPS probe never queues, so the whole latency is
// contention signal). Latency surfaces record only the function body:
// queueing is the M/M/N discriminant's job, and folding it into the
// surfaces would double-count it in Eq. 6 — and blow the features up near
// saturation, where profiling-cell queues explode.
//
// It panics if the cell produced no warm samples, which would silently
// poison the surface grid.
func measureCell(prof workload.Profile, idx int, pressure, loadQPS float64,
	cfg serverless.Config, opts Options, seed uint64, bodyOnly bool) float64 {

	s := sim.New(seed)
	p := serverless.New(s, cfg)

	lat := stats.NewSample(1024)
	p.Register(prof, func(r metrics.QueryRecord) {
		if r.Breakdown.ColdStart != 0 {
			return // profiling measures the warm path
		}
		if bodyOnly {
			lat.Add(r.Breakdown.Exec)
		} else {
			lat.Add(r.Latency())
		}
	}, serverless.WithNMax(400))

	p.InjectDemand(injectionFor(idx, pressure, cfg.Node.Capacity()))

	// Prewarm enough containers that profiling measures contention, not
	// cold starts or queueing for capacity.
	warm := int(loadQPS*(prof.ExecTime*4+prof.Overheads.Total())) + 2
	p.Prewarm(prof.Name, warm, nil)

	gen := arrival.New(s, trace.Constant{QPS: loadQPS}, func(sim.Time) { p.Invoke(prof.Name) })
	// Start after the prewarm settles.
	s.At(6, func() { gen.Start() })
	s.Run(sim.Time(6 + opts.Duration))

	if lat.Len() == 0 {
		panic(fmt.Sprintf("profiling: no warm samples for %s at p=%v load=%v",
			prof.Name, pressure, loadQPS))
	}
	if bodyOnly {
		// Surfaces feed Eq. 6's μ — a mean processing capacity — so they
		// record the mean body latency. The runtime heartbeat compares
		// observed mean body time against the same statistic, keeping
		// features and calibration targets commensurable.
		return lat.Mean()
	}
	return lat.Quantile(opts.Quantile)
}

// MeterCurve profiles one contention meter (one panel of Fig. 8): its
// latency as the pressure on its resource sweeps the grid. The result is
// made monotone by isotonic (running-max) smoothing so the runtime
// inversion is well-defined.
// It panics if the options are invalid, the grid has fewer than two
// points, or the profiled curve fails validation.
func MeterCurve(m meters.Meter, cfg serverless.Config, pressures []float64, opts Options) *meters.Curve {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if len(pressures) < 2 {
		panic("profiling: need at least 2 pressure points")
	}
	lats := make([]float64, len(pressures))
	parallelFor(len(pressures), opts.workers(), func(i int) {
		seed := opts.Seed ^ (uint64(m.Index+1) << 32) ^ uint64(i)
		// Meters are profiled with the median (they probe, not serve).
		o := opts
		o.Quantile = 0.5
		lats[i] = measureCell(m.Profile, m.Index, pressures[i], opts.ProbeQPS, cfg, o, seed, false)
	})
	for i := 1; i < len(lats); i++ { // isotonic smoothing
		if lats[i] < lats[i-1] {
			lats[i] = lats[i-1]
		}
	}
	c := &meters.Curve{Meter: m, Pressures: append([]float64(nil), pressures...), Latencies: lats}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// AllMeterCurves profiles the three meters through the bounded pool,
// one worker per meter.
func AllMeterCurves(cfg serverless.Config, pressures []float64, opts Options) [3]*meters.Curve {
	var out [3]*meters.Curve
	ms := meters.All()
	parallelFor(len(ms), len(ms), func(i int) {
		out[ms[i].Index] = MeterCurve(ms[i], cfg, pressures, opts)
	})
	return out
}

// BuildSurface profiles one latency surface (one panel of Fig. 9): the
// service's p95 latency over (pressure on resource idx) × (own load).
// It panics if the options are invalid or the profiled surface fails
// validation.
func BuildSurface(prof workload.Profile, idx int, cfg serverless.Config,
	pressures, loads []float64, opts Options) *surfaces.Surface {

	if err := opts.validate(); err != nil {
		panic(err)
	}
	lat := make([][]float64, len(pressures))
	for i := range lat {
		lat[i] = make([]float64, len(loads))
	}
	cells := len(pressures) * len(loads)
	parallelFor(cells, opts.workers(), func(k int) {
		i, j := k/len(loads), k%len(loads)
		seed := opts.Seed ^ (uint64(idx+7) << 40) ^ uint64(k)<<8 ^ hashName(prof.Name)
		lat[i][j] = measureCell(prof, idx, pressures[i], loads[j], cfg, opts, seed, true)
	})
	// Isotonic smoothing along the pressure axis: physics says more
	// pressure never helps, so residual sampling noise is clamped.
	for j := range loads {
		for i := 1; i < len(pressures); i++ {
			if lat[i][j] < lat[i-1][j] {
				lat[i][j] = lat[i-1][j]
			}
		}
	}
	s := &surfaces.Surface{
		Service:   prof.Name,
		Resource:  idx,
		Pressures: append([]float64(nil), pressures...),
		Loads:     append([]float64(nil), loads...),
		Lat:       lat,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// BuildSet profiles all three surfaces of a service. It panics if the
// assembled set fails validation.
func BuildSet(prof workload.Profile, cfg serverless.Config,
	pressures, loads []float64, opts Options) *surfaces.Set {

	set := &surfaces.Set{Service: prof.Name}
	var wg sync.WaitGroup
	for idx := 0; idx < 3; idx++ {
		idx := idx
		wg.Add(1)
		go func() {
			defer wg.Done()
			set.Surfaces[idx] = BuildSurface(prof, idx, cfg, pressures, loads, opts)
		}()
	}
	wg.Wait()
	if err := set.Validate(); err != nil {
		panic(err)
	}
	return set
}

// DefaultPressureGrid returns the pressure sweep used across experiments.
func DefaultPressureGrid() []float64 {
	return []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
}

// DefaultLoadGrid returns the load sweep for a profile: fractions of its
// peak, covering the region where serverless deployment is plausible.
func DefaultLoadGrid(prof workload.Profile) []float64 {
	fracs := []float64{0.02, 0.10, 0.25, 0.45, 0.60}
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = prof.PeakQPS * f
	}
	return out
}

// parallelFor runs body(i) for i in [0, n) on up to workers goroutines.
func parallelFor(n, workers int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
