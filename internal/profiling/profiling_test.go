package profiling

import (
	"sync/atomic"
	"testing"

	"amoeba/internal/meters"
	"amoeba/internal/serverless"
	"amoeba/internal/workload"
)

func fastOpts() Options {
	o := DefaultOptions()
	o.Duration = 30
	o.ProbeQPS = 4
	return o
}

func TestMeterCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	cfg := serverless.DefaultConfig()
	c := MeterCurve(meters.CPUMeter(), cfg, []float64{0, 0.3, 0.6, 0.9}, fastOpts())
	if err := c.Validate(); err != nil {
		t.Fatalf("profiled curve invalid: %v", err)
	}
	// Convex rise: latency at 0.9 pressure well above the solo latency
	// (h(0.9) ≈ 0.49 for a fully sensitive probe → ~1.4x end to end).
	lo, hi := c.Latencies[0], c.Latencies[len(c.Latencies)-1]
	if hi < lo*1.30 {
		t.Errorf("CPU meter barely reacts to pressure: %v -> %v", lo, hi)
	}
	// Solo latency is near the meter's exec + overheads.
	m := meters.CPUMeter()
	want := m.Profile.ExecTime + m.Profile.Overheads.Total()
	if lo < want*0.8 || lo > want*1.3 {
		t.Errorf("solo meter latency %v far from %v", lo, want)
	}
}

func TestMeterCurveIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	// The IO meter must not react to CPU pressure: profile the IO meter
	// while injecting on resource 0 (CPU) via a manual sweep.
	cfg := serverless.DefaultConfig()
	opts := fastOpts()
	io := meters.IOMeter()
	base := measureCell(io.Profile, 0, 0, opts.ProbeQPS, cfg, opts, 1, false)
	loaded := measureCell(io.Profile, 0, 0.9, opts.ProbeQPS, cfg, opts, 2, false)
	if loaded > base*1.1 {
		t.Errorf("IO meter reacted to CPU pressure: %v -> %v", base, loaded)
	}
}

func TestBuildSurfaceMonotoneInPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	cfg := serverless.DefaultConfig()
	prof := workload.Float()
	s := BuildSurface(prof, 0, cfg, []float64{0, 0.5, 1.0}, []float64{2, 10}, fastOpts())
	if err := s.Validate(); err != nil {
		t.Fatalf("surface invalid: %v", err)
	}
	for j := range s.Loads {
		for i := 1; i < len(s.Pressures); i++ {
			if s.Lat[i][j] < s.Lat[i-1][j] {
				t.Errorf("surface decreasing in pressure at (%d,%d)", i, j)
			}
		}
	}
	// float is CPU sensitive: top of the CPU surface well above baseline.
	if s.Lat[2][0] < s.Lat[0][0]*1.3 {
		t.Errorf("CPU surface too flat for a CPU-bound service: %v vs %v", s.Lat[2][0], s.Lat[0][0])
	}
}

func TestBuildSetCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	cfg := serverless.DefaultConfig()
	prof := workload.CloudStor()
	set := BuildSet(prof, cfg, []float64{0, 0.6, 1.0}, []float64{1, 6}, fastOpts())
	if err := set.Validate(); err != nil {
		t.Fatalf("set invalid: %v", err)
	}
	// cloud_stor: network surface must react more than the CPU surface.
	cpuRise := set.Surfaces[0].Lat[2][0] / set.Surfaces[0].Lat[0][0]
	netRise := set.Surfaces[2].Lat[2][0] / set.Surfaces[2].Lat[0][0]
	if netRise <= cpuRise {
		t.Errorf("cloud_stor: net rise %v <= cpu rise %v", netRise, cpuRise)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	var mask [97]int32
	parallelFor(97, 8, func(i int) { atomic.AddInt32(&mask[i], 1) })
	for i, v := range mask {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Degenerate cases.
	count := int32(0)
	parallelFor(3, 1, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Errorf("serial fallback ran %d times", count)
	}
	parallelFor(0, 4, func(int) { t.Error("body called for n=0") })
}

func TestDefaultGrids(t *testing.T) {
	pg := DefaultPressureGrid()
	if pg[0] != 0 || pg[len(pg)-1] < 1.0 {
		t.Errorf("pressure grid %v must span [0, 1]", pg)
	}
	lg := DefaultLoadGrid(workload.Float())
	if len(lg) < 3 {
		t.Fatalf("load grid too small: %v", lg)
	}
	for i := 1; i < len(lg); i++ {
		if lg[i] <= lg[i-1] {
			t.Errorf("load grid not increasing: %v", lg)
		}
	}
	if lg[len(lg)-1] > workload.Float().PeakQPS {
		t.Errorf("load grid exceeds peak: %v", lg)
	}
}

func TestInjectionForPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad meter index did not panic")
		}
	}()
	injectionFor(3, 0.5, serverless.DefaultConfig().Node.Capacity())
}
