package profiling

import (
	"reflect"
	"sync/atomic"
	"testing"

	"amoeba/internal/serverless"
	"amoeba/internal/workload"
)

// TestParallelForWorkerCounts checks the worker pool dispatches every
// index exactly once whatever the worker count; under -race it also
// proves the pool itself introduces no shared-state races.
func TestParallelForWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]int32
		var calls int32
		parallelFor(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
			atomic.AddInt32(&calls, 1)
		})
		if calls != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls, n)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestBuildSurfaceWorkerCountIndependence profiles the same surface with
// a serial sweep and with a wide worker pool. Every grid cell derives its
// seed from the cell index alone, so the two grids must be bit-identical:
// a difference means a cell read state owned by another cell, i.e. the
// fan-out is not actually embarrassingly parallel.
func TestBuildSurfaceWorkerCountIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	cfg := serverless.DefaultConfig()
	prof := workload.Float()
	pressures := []float64{0, 0.4, 0.8}
	loads := []float64{2, 6}

	serial := fastOpts()
	serial.Parallelism = 1
	wide := fastOpts()
	wide.Parallelism = 8

	a := BuildSurface(prof, 0, cfg, pressures, loads, serial)
	b := BuildSurface(prof, 0, cfg, pressures, loads, wide)
	if !reflect.DeepEqual(a.Lat, b.Lat) {
		t.Errorf("surface depends on worker count:\nserial: %v\nwide:   %v", a.Lat, b.Lat)
	}
}

// TestBuildSetConcurrentSurfaces runs the three-surface fan-out of
// BuildSet, whose goroutines share the profile and config by value and
// the set by disjoint index. Under -race this is the regression test for
// that sharing pattern.
func TestBuildSetConcurrentSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep in -short mode")
	}
	cfg := serverless.DefaultConfig()
	set := BuildSet(workload.Float(), cfg, []float64{0, 0.5}, []float64{2, 4}, fastOpts())
	if err := set.Validate(); err != nil {
		t.Fatalf("concurrently built set invalid: %v", err)
	}
}
