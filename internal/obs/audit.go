package obs

import (
	"fmt"

	"amoeba/internal/report"
)

// AuditTable renders the decision-audit trail from an event stream: one
// row per DecisionEvent with the discriminant inputs (load, μ̂,
// admissible load, pressure) and the verdict with its reason — the
// "why did it switch at t=437s?" view, reconstructable from any sink
// that retained the events.
func AuditTable(events []Event) *report.Table {
	t := report.NewTable("decision audit",
		"t_s", "service", "mode", "load_qps", "mu", "admissible_qps",
		"p_cpu", "p_io", "p_net", "verdict", "reason")
	for _, ev := range events {
		d, ok := ev.(*DecisionEvent)
		if !ok {
			continue
		}
		t.AddRow(
			fmt.Sprintf("%.0f", d.At.Raw()),
			d.Service,
			d.Mode,
			fmt.Sprintf("%.2f", d.LoadQPS.Raw()),
			fmt.Sprintf("%.3f", d.Mu.Raw()),
			fmt.Sprintf("%.2f", d.AdmissibleQPS.Raw()),
			fmt.Sprintf("%.3f", d.Pressure[0]),
			fmt.Sprintf("%.3f", d.Pressure[1]),
			fmt.Sprintf("%.3f", d.Pressure[2]),
			d.Verdict,
			d.Reason,
		)
	}
	return t
}

// SwitchTable renders the switch-span trail: one row per SwitchSpan
// with the per-phase durations of the §V protocol.
func SwitchTable(events []Event) *report.Table {
	t := report.NewTable("switch spans",
		"start_s", "service", "from", "to", "prewarm_s", "drain_s",
		"total_s", "prewarmed", "aborted")
	for _, ev := range events {
		s, ok := ev.(*SwitchSpan)
		if !ok {
			continue
		}
		t.AddRow(
			fmt.Sprintf("%.0f", s.Start.Raw()),
			s.Service,
			s.From,
			s.To,
			fmt.Sprintf("%.2f", s.PrewarmS.Raw()),
			fmt.Sprintf("%.2f", s.DrainS.Raw()),
			fmt.Sprintf("%.2f", (s.End-s.Start).Raw()),
			s.Prewarmed,
			s.Aborted,
		)
	}
	return t
}
