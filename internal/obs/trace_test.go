package obs

import (
	"testing"

	"amoeba/internal/units"
)

func TestPhaseValid(t *testing.T) {
	for _, p := range []Phase{PhaseQueueWait, PhaseColdStart, PhaseExec, PhaseDrain, PhaseRetry} {
		if !p.Valid() {
			t.Errorf("%q not valid", p)
		}
	}
	if Phase("warmup").Valid() {
		t.Error("unknown phase reported valid")
	}
}

func TestTracerInactive(t *testing.T) {
	for name, tr := range map[string]*Tracer{
		"nil":     nil,
		"nil-bus": NewTracer(nil),
		"no-sink": NewTracer(NewBus()),
	} {
		if tr.Active() {
			t.Fatalf("%s tracer reports active", name)
		}
		if id := tr.StartTrace(); id != 0 {
			t.Errorf("%s: StartTrace = %d, want 0", name, id)
		}
		if id := tr.NextSpan(); id != 0 {
			t.Errorf("%s: NextSpan = %d, want 0", name, id)
		}
		if qt := tr.StartQuery("svc"); qt != (QueryTrace{}) {
			t.Errorf("%s: StartQuery = %+v, want zero", name, qt)
		}
		h := tr.Begin(1, 1, 0, 0, PhaseExec, "svc", "iaas")
		if h.Open() {
			t.Errorf("%s: Begin returned an open handle", name)
		}
		tr.End(2, h) // must be a no-op, not a panic
		if tr.OpenSpans() != 0 {
			t.Errorf("%s: %d open spans on an inactive tracer", name, tr.OpenSpans())
		}
	}
	// The nil tracer also absorbs the cause registry.
	var nilT *Tracer
	nilT.SetCause("svc", 9)
	nilT.ClearCause("svc", 9)
	if nilT.CauseFor("svc") != 0 {
		t.Error("nil tracer returned a cause")
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	bus := NewBus()
	ring := NewRing(16)
	bus.Attach(ring)
	tr := NewTracer(bus)

	qt := tr.StartQuery("dd")
	if qt.Trace == 0 || qt.Span == 0 {
		t.Fatalf("StartQuery on an active tracer returned %+v", qt)
	}
	if qt.Cause != 0 {
		t.Fatalf("cause %d with no switch registered", qt.Cause)
	}

	h := tr.Begin(10, qt.Trace, qt.Span, 0, PhaseQueueWait, "dd", "iaas")
	if !h.Open() {
		t.Fatal("Begin on an active tracer returned the inert handle")
	}
	if tr.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", tr.OpenSpans())
	}
	tr.End(12.5, h)
	if tr.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after End, want 0", tr.OpenSpans())
	}

	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events emitted, want 1", len(evs))
	}
	sp, ok := evs[0].(*PhaseSpan)
	if !ok {
		t.Fatalf("emitted %T, want *PhaseSpan", evs[0])
	}
	if sp.Kind != KindPhaseSpan {
		t.Errorf("kind %q not stamped", sp.Kind)
	}
	if sp.Trace != qt.Trace || sp.Parent != qt.Span || sp.Span == 0 {
		t.Errorf("span coordinates %+v do not link to query %+v", sp, qt)
	}
	if sp.Phase != PhaseQueueWait || sp.Service != "dd" || sp.Backend != "iaas" {
		t.Errorf("span identity fields wrong: %+v", sp)
	}
	if sp.Start != 10 || sp.End != 12.5 || sp.At != sp.End {
		t.Errorf("span interval wrong: %+v", sp)
	}
}

func TestTracerDropsZeroLengthSpans(t *testing.T) {
	bus := NewBus()
	ring := NewRing(16)
	bus.Attach(ring)
	tr := NewTracer(bus)

	h := tr.Begin(5, tr.StartTrace(), 0, 0, PhaseQueueWait, "dd", "iaas")
	tr.End(5, h) // zero queue wait: dropped, slot still recycled
	if n := len(ring.Events()); n != 0 {
		t.Fatalf("zero-length span emitted (%d events)", n)
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", tr.OpenSpans())
	}
}

func TestTracerDoubleEndPanics(t *testing.T) {
	bus := NewBus()
	bus.Attach(&discardSink{})
	tr := NewTracer(bus)
	h := tr.Begin(1, tr.StartTrace(), 0, 0, PhaseExec, "dd", "iaas")
	tr.End(2, h)
	defer func() {
		if recover() == nil {
			t.Fatal("double End did not panic")
		}
	}()
	tr.End(3, h)
}

func TestTracerCauseRegistry(t *testing.T) {
	bus := NewBus()
	bus.Attach(&discardSink{})
	tr := NewTracer(bus)

	tr.SetCause("dd", 41)
	if qt := tr.StartQuery("dd"); qt.Cause != 41 {
		t.Fatalf("query cause %d, want 41", qt.Cause)
	}
	if qt := tr.StartQuery("other"); qt.Cause != 0 {
		t.Fatalf("unrelated service inherited cause %d", qt.Cause)
	}
	// A newer overlapping switch keeps its own registration: clearing
	// the old span must not remove the new one.
	tr.SetCause("dd", 99)
	tr.ClearCause("dd", 41)
	if c := tr.CauseFor("dd"); c != 99 {
		t.Fatalf("CauseFor = %d after stale clear, want 99", c)
	}
	tr.ClearCause("dd", 99)
	if c := tr.CauseFor("dd"); c != 0 {
		t.Fatalf("CauseFor = %d after clear, want 0", c)
	}
}

// TestZeroAllocSpanPath pins the tracer's two cost contracts: the
// unobserved path (nil or sinkless tracer) is allocation-free end to
// end, and the active path's pooled bookkeeping is allocation-free in
// steady state — only the emitted PhaseSpan record itself allocates,
// which a same-instant End never constructs.
//
//amoeba:alloctest obs.Tracer.Active obs.Tracer.StartTrace obs.Tracer.NextSpan
//amoeba:alloctest obs.Tracer.CauseFor obs.Tracer.StartQuery obs.Tracer.Begin obs.Tracer.End
func TestZeroAllocSpanPath(t *testing.T) {
	var nilT *Tracer
	inactive := NewTracer(NewBus())
	if avg := testing.AllocsPerRun(1000, func() {
		_ = nilT.Active()
		_ = nilT.StartTrace()
		_ = nilT.NextSpan()
		_ = nilT.CauseFor("dd")
		qt := nilT.StartQuery("dd")
		h := nilT.Begin(1, qt.Trace, qt.Span, 0, PhaseExec, "dd", "iaas")
		nilT.End(2, h)
		qt = inactive.StartQuery("dd")
		h = inactive.Begin(1, qt.Trace, qt.Span, 0, PhaseExec, "dd", "iaas")
		inactive.End(2, h)
	}); avg != 0 {
		t.Fatalf("unobserved span path allocates %.1f per cycle, want 0", avg)
	}

	bus := NewBus()
	bus.Attach(&discardSink{})
	active := NewTracer(bus)
	cycle := func() {
		qt := active.StartQuery("dd")
		h := active.Begin(3, qt.Trace, qt.Span, 0, PhaseExec, "dd", "serverless")
		active.End(3, h) // same instant: recycled without emitting
	}
	cycle() // grow the slab and freelist once
	if avg := testing.AllocsPerRun(1000, cycle); avg != 0 {
		t.Fatalf("active span bookkeeping allocates %.1f per cycle in steady state, want 0", avg)
	}
}

// TestZeroAllocMetricsFold pins the metrics fold path: with every
// series interned after the first event of each shape, folding the full
// event taxonomy allocates nothing per event (the CI gate budget is
// ≤ 4 allocs/event; the steady state is 0).
//
//amoeba:alloctest obs.MetricsSink.Consume
func TestZeroAllocMetricsFold(t *testing.T) {
	sink := NewMetricsSink(NewRegistry())
	events := []Event{
		&QueryComplete{At: 1, Service: "dd", Backend: "serverless", Latency: 0.01, ColdStart: 0.5},
		&ColdStart{At: 2, Service: "dd", Delay: 0.8, Prewarm: true},
		&DecisionEvent{At: 3, Service: "dd", Verdict: "stay-iaas",
			Pressure: [3]float64{0.1, 0.2, 0.3}, LoadQPS: 5, AdmissibleQPS: 9, Mu: 2},
		&SwitchSpan{At: 4, Service: "dd", From: "iaas", To: "serverless", Start: 3, End: 4},
		&HeartbeatSample{At: 5, Service: "dd", Observed: 1.2},
		&MeterSample{At: 6, Latency: [3]units.Seconds{0.01, 0.02, 0.03}, Pressure: [3]float64{0.4, 0.5, 0.6}},
		&PhaseSpan{At: 7, Trace: 1, Span: 2, Phase: PhaseExec, Service: "dd", Start: 6, End: 7},
	}
	for _, ev := range events {
		stamp(ev)
		sink.Consume(ev) // intern every series this shape touches
	}
	avg := testing.AllocsPerRun(1000, func() {
		for _, ev := range events {
			sink.Consume(ev)
		}
	})
	if avg != 0 {
		t.Fatalf("metrics fold allocates %.2f per %d-event batch in steady state, want 0", avg, len(events))
	}
}
