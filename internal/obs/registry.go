package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n. It panics on a negative delta — counters only go up;
// use a Gauge for signed quantities.
func (c *Counter) Add(n int) {
	if n < 0 {
		panic("obs: negative counter delta")
	}
	c.v += uint64(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a last-value metric.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last set value.
func (g *Gauge) Value() float64 { return g.v }

// Registry holds named counters, gauges, and histograms and renders
// them in Prometheus text exposition format or as an expvar.Var. Names
// may carry a Prometheus label suffix (`name{k="v"}`, see Labeled);
// exposition sorts series lexicographically, so the output of a
// deterministic run is itself deterministic.
//
// Like the Bus, a registry belongs to one simulation goroutine and is
// not locked.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// LabelSet is an interned, pre-sorted Prometheus label suffix — the
// `{k="v",...}` block of a series name — built once and reused across
// every series sharing the label combination. Consumers that fold per
// event (MetricsSink) resolve a LabelSet once per label combination,
// cache the resulting metric pointers, and never format labels again.
// The zero LabelSet renders no suffix.
type LabelSet struct{ suffix string }

// NewLabelSet builds the sorted label block from alternating key/value
// pairs. It panics on an odd pair count — label lists are literals at
// call sites.
func NewLabelSet(kv ...string) LabelSet {
	if len(kv) == 0 {
		return LabelSet{}
	}
	if len(kv)%2 != 0 {
		panic("obs: NewLabelSet requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		//amoeba:allow hotpath Fprintf targets an in-memory strings.Builder: pure formatting, not writer I/O
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return LabelSet{suffix: b.String()}
}

// For renders the full series name for a metric under this label set.
func (ls LabelSet) For(name string) string { return name + ls.suffix }

// Labeled renders a metric name with sorted Prometheus labels from
// alternating key/value pairs — a one-shot NewLabelSet for call sites
// that don't retain the handle.
func Labeled(name string, kv ...string) string {
	return NewLabelSet(kv...).For(name)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// shape on first use (later calls reuse the existing one and ignore
// the shape).
func (r *Registry) Histogram(name string, lo, hi float64, sub int) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(lo, hi, sub)
		r.hists[name] = h
	}
	return h
}

// baseName strips a label suffix off a series name.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// labelSuffix returns the label block of a series name including the
// braces, or "".
func labelSuffix(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (sorted; histograms as cumulative le-buckets with _sum and
// _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := map[string]string{}
	var names []string
	collect := func(series, typ string) {
		names = append(names, series)
		base := baseName(series)
		if _, ok := typed[base]; !ok {
			typed[base] = typ
		}
	}
	for name := range r.counters {
		collect(name, "counter")
	}
	for name := range r.gauges {
		collect(name, "gauge")
	}
	for name := range r.hists {
		collect(name, "histogram")
	}
	sort.Strings(names)
	emittedType := map[string]bool{}
	for _, series := range names {
		base := baseName(series)
		if !emittedType[base] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typed[base]); err != nil {
				return err
			}
			emittedType[base] = true
		}
		switch {
		case r.counters[series] != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", series, r.counters[series].Value()); err != nil {
				return err
			}
		case r.gauges[series] != nil:
			if _, err := fmt.Fprintf(w, "%s %g\n", series, r.gauges[series].Value()); err != nil {
				return err
			}
		case r.hists[series] != nil:
			if err := writeHistogram(w, series, r.hists[series]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(w io.Writer, series string, h *Histogram) error {
	base, labels := baseName(series), labelSuffix(series)
	withLe := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket%s,le=%q}", base, labels[:len(labels)-1], le)
	}
	var cum uint64
	for _, b := range h.NonEmptyBuckets() {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s %d\n", withLe(fmt.Sprintf("%g", b.Upper)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
	return err
}

// Expvar returns the registry as an expvar.Func rendering the full
// Prometheus text block, suitable for expvar.Publish in a binary that
// serves /debug/vars. The registry itself never touches the process-
// global expvar namespace — publishing is the caller's choice.
func (r *Registry) Expvar() expvar.Func {
	return func() interface{} {
		var b strings.Builder
		_ = r.WritePrometheus(&b) // strings.Builder writes cannot fail
		return b.String()
	}
}
