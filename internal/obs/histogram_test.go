package obs

import (
	"math"
	"sort"
	"strings"
	"testing"

	"amoeba/internal/sim"
	"amoeba/internal/units"
)

func TestHistogramPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		sub    int
	}{
		{0, 1, 4}, {-1, 1, 4}, {1, 1, 4}, {2, 1, 4}, {1, 2, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v, %v, %d) did not panic", tc.lo, tc.hi, tc.sub)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.sub)
		}()
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1e-3, 100, 32)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram has non-zero summary stats")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(1e-3, 100, 32)
	vals := []float64{0.010, 0.020, 0.050, 1.5, 0.002}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Min() != 0.002 || h.Max() != 1.5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram(1e-3, 100, 32)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN was counted")
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0.001, 1, 8)
	h.Observe(1e-9) // below lo → bucket 0
	h.Observe(50)   // above hi → last bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1e-9 || h.Max() != 50 {
		t.Fatalf("exact extremes lost: %v/%v", h.Min(), h.Max())
	}
	// Quantiles degrade gracefully: answers stay inside the exact
	// observed [Min, Max] even though both values fell outside [lo, hi).
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < h.Min() || got > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", q, got, h.Min(), h.Max())
		}
	}
}

func TestHistogramQuantilePanicsOutOfRange(t *testing.T) {
	h := NewHistogram(1e-3, 100, 32)
	h.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	h.Quantile(1.5)
}

// TestHistogramQuantileAccuracy checks the bounded-relative-error claim
// against exact order statistics on deterministic pseudo-random data.
func TestHistogramQuantileAccuracy(t *testing.T) {
	s := sim.New(42)
	rng := s.RNG()
	h := NewHistogram(1e-3, 100, 32)
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [1ms, 10s): stresses every octave.
		v := 1e-3 * math.Pow(10, rng.Float64()*4)
		vals[i] = v
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(math.Ceil(q*float64(n)))-1]
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / exact
		// 1/sub = 3.1% bucket width; allow 2× for midpoint placement.
		if relErr > 2.0/32 {
			t.Errorf("q=%v: got %v, exact %v, rel err %.4f", q, got, exact, relErr)
		}
	}
}

func TestHistogramBounded(t *testing.T) {
	h := NewHistogram(1e-3, 100, 32)
	want := 17 * 32 // ceil(log2(1e5)) octaves × 32
	if h.Buckets() != want {
		t.Fatalf("Buckets = %d, want %d", h.Buckets(), want)
	}
	s := sim.New(7)
	rng := s.RNG()
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Float64() * 10)
	}
	if h.Buckets() != want {
		t.Fatal("bucket count grew with observations")
	}
}

func TestNonEmptyBucketsOrderedAndComplete(t *testing.T) {
	h := NewHistogram(0.001, 1, 4)
	for _, v := range []float64{0.002, 0.002, 0.5, 0.03} {
		h.Observe(v)
	}
	bs := h.NonEmptyBuckets()
	var total uint64
	last := 0.0
	for _, b := range bs {
		if b.Upper <= last {
			t.Fatalf("buckets out of order: %v after %v", b.Upper, last)
		}
		last = b.Upper
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, Count is %d", total, h.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(2)
	if r.Counter("c") != c || c.Value() != 3 {
		t.Fatal("counter identity or value wrong")
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if r.Gauge("g") != g || g.Value() != 1.5 {
		t.Fatal("gauge identity or value wrong")
	}
	h := r.Histogram("h", 1e-3, 1, 8)
	h.Observe(0.5)
	if r.Histogram("h", 1, 2, 4) != h {
		t.Fatal("histogram re-created despite existing name")
	}
}

func TestCounterPanicsOnNegativeAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestLabeledSortsKeys(t *testing.T) {
	got := Labeled("m", "z", "1", "a", "2")
	if got != `m{a="2",z="1"}` {
		t.Fatalf("Labeled = %s", got)
	}
	if Labeled("m") != "m" {
		t.Fatal("Labeled without pairs altered the name")
	}
}

func TestLabeledPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pair count did not panic")
		}
	}()
	Labeled("m", "k")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("amoeba_queries_total", "backend", "iaas")).Add(5)
	r.Counter(Labeled("amoeba_queries_total", "backend", "serverless")).Add(3)
	r.Gauge("amoeba_load_qps").Set(12.5)
	h := r.Histogram("amoeba_latency_seconds", 0.001, 10, 8)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE amoeba_queries_total counter",
		`amoeba_queries_total{backend="iaas"} 5`,
		`amoeba_queries_total{backend="serverless"} 3`,
		"# TYPE amoeba_load_qps gauge",
		"amoeba_load_qps 12.5",
		"# TYPE amoeba_latency_seconds histogram",
		`amoeba_latency_seconds_bucket{le="+Inf"} 3`,
		"amoeba_latency_seconds_sum 2.1",
		"amoeba_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE header appears once per base name even with two series.
	if strings.Count(out, "# TYPE amoeba_queries_total") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
	// Cumulative le-buckets are non-decreasing.
	if !lessInOutput(out, `amoeba_latency_seconds_bucket{le=`) {
		t.Fatalf("le buckets not cumulative:\n%s", out)
	}
	// Deterministic: rendering twice yields identical bytes.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("exposition is not deterministic across renders")
	}
}

// lessInOutput checks lines with the given prefix have non-decreasing
// trailing integer values.
func lessInOutput(out, prefix string) bool {
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v := 0
		for _, ch := range fields[len(fields)-1] {
			v = v*10 + int(ch-'0')
		}
		if v < last {
			return false
		}
		last = v
	}
	return true
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Inc()
	v := r.Expvar()()
	s, ok := v.(string)
	if !ok || !strings.Contains(s, "events 1") {
		t.Fatalf("Expvar() = %v", v)
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Labeled("lat", "svc", "dd"), 0.001, 1, 4)
	h.Observe(0.01)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Labelled histogram buckets must merge le into the existing block.
	if !strings.Contains(out, `lat_bucket{svc="dd",le="+Inf"} 1`) {
		t.Fatalf("labelled le merge wrong:\n%s", out)
	}
	if !strings.Contains(out, `lat_sum{svc="dd"} 0.01`) {
		t.Fatalf("labelled sum wrong:\n%s", out)
	}
}

func TestMetricsSink(t *testing.T) {
	reg := NewRegistry()
	b := NewBus()
	b.Attach(NewMetricsSink(reg))
	b.Emit(&QueryComplete{At: 1, Service: "dd", Backend: "iaas", Latency: 0.2})
	b.Emit(&QueryComplete{At: 2, Service: "dd", Backend: "serverless", Latency: 0.4})
	b.Emit(&ColdStart{At: 3, Service: "dd", Delay: 0.9, Prewarm: true})
	b.Emit(&ColdStart{At: 4, Service: "dd", Delay: 1.1})
	b.Emit(&DecisionEvent{At: 5, Service: "dd", Verdict: "stay-iaas",
		LoadQPS: 10, AdmissibleQPS: 20, Mu: 3, Pressure: [3]float64{0.1, 0.2, 0.3}})
	b.Emit(&SwitchSpan{At: 6, Service: "dd", To: "serverless", Start: 4, End: 6})
	b.Emit(&SwitchSpan{At: 7, Service: "dd", To: "iaas", Start: 6, End: 7, Aborted: true})
	b.Emit(&HeartbeatSample{At: 8, Service: "dd"})
	b.Emit(&MeterSample{At: 9, Latency: [3]units.Seconds{0.01, 0.02, 0.03},
		Pressure: [3]float64{0.5, 0.6, 0.7}})

	if got := reg.Counter(Labeled("amoeba_queries_total", "service", "dd", "backend", "iaas")).Value(); got != 1 {
		t.Fatalf("iaas queries = %d", got)
	}
	if got := reg.Counter(Labeled("amoeba_cold_starts_total", "service", "dd", "trigger", "prewarm")).Value(); got != 1 {
		t.Fatalf("prewarm cold starts = %d", got)
	}
	if got := reg.Counter(Labeled("amoeba_decisions_total", "service", "dd", "verdict", "stay-iaas")).Value(); got != 1 {
		t.Fatalf("decisions = %d", got)
	}
	if got := reg.Gauge(Labeled("amoeba_pressure", "resource", "net")).Value(); got != 0.3 {
		t.Fatalf("net pressure gauge = %v", got)
	}
	if got := reg.Counter(Labeled("amoeba_switches_total", "service", "dd", "to", "serverless")).Value(); got != 1 {
		t.Fatalf("switches = %d", got)
	}
	// Aborted switch counted but not timed.
	if got := reg.Histogram(Labeled("amoeba_switch_duration_seconds", "to", "serverless"),
		latencyLo, latencyHi, latencySub).Count(); got != 1 {
		t.Fatalf("switch durations = %d", got)
	}
	if got := reg.Gauge(Labeled("amoeba_meter_pressure", "meter", "cpu")).Value(); got != 0.5 {
		t.Fatalf("meter pressure = %v", got)
	}
}
