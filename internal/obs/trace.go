package obs

import "amoeba/internal/units"

// Causal query tracing. Every query gets a TraceID at admission; the
// phases of its life (queue wait, cold start, execution) and the
// control-plane activity that shaped it (drain of the old backend,
// dwell-hold retries) are typed spans inside that trace, linked by
// parent and cause edges:
//
//   - Parent links nest: a PhaseSpan's Parent is its query's root span
//     (the QueryComplete record) or, for drain phases, the SwitchSpan;
//     child intervals lie inside the parent interval.
//   - Cause links cross traces: a query displaced by an in-progress
//     switch carries the switch span's ID as its Cause, a SwitchSpan
//     carries the DecisionEvent span that ordered it, and a heartbeat
//     carries the meter sample its features derived from.
//
// IDs are densely allocated uint64 counters per Tracer (per run), never
// random: the stream stays a pure function of (scenario, seed), and two
// runs of the same seed produce byte-identical trace JSONL even under a
// parallel sweep, because each simulation owns its own Tracer.
//
// The open-span bookkeeping is pooled (slab + freelist + generation
// counters, the sim-kernel idiom): Begin/End on an inactive tracer is a
// guarded no-op costing one branch, and on an active tracer the only
// steady-state allocation is the emitted PhaseSpan record itself —
// sinks may retain events, so emitted records are never recycled.

// TraceID identifies one causal tree in the event stream. IDs count up
// from 1 per run; 0 means untraced.
type TraceID uint64

// SpanID identifies one span (interval or instant record) in the
// stream, unique across all traces of a run; 0 means none.
type SpanID uint64

// Phase names the typed phases of a query's life and of the control
// plane's switching machinery. The set is closed: every switch over
// phases must name all five members.
//
//amoeba:enum
type Phase string

const (
	// PhaseQueueWait is the interval from arrival to dispatch (placement
	// on a warm container, or VM slot acquisition).
	PhaseQueueWait Phase = "queue_wait"
	// PhaseColdStart is a container cold start a query (or prewarm)
	// waited on.
	PhaseColdStart Phase = "cold_start"
	// PhaseExec is the busy interval on the backend: RPC processing,
	// code load, execution, and postprocessing.
	PhaseExec Phase = "exec"
	// PhaseDrain is the old backend finishing in-flight queries after a
	// route flip (§V-B), parented to the SwitchSpan.
	PhaseDrain Phase = "drain"
	// PhaseRetry is a wanted switch held back by the dwell guard: the
	// interval from the first held decision to the switch (or to the
	// want disappearing).
	PhaseRetry Phase = "retry"
)

// Valid reports whether p is a member of the closed phase set.
func (p Phase) Valid() bool {
	switch p {
	case PhaseQueueWait, PhaseColdStart, PhaseExec, PhaseDrain, PhaseRetry:
		return true
	default:
		return false
	}
}

// PhaseSpan is one closed phase interval. It is emitted once, at the
// instant the phase ends (At == End); zero-length phases are dropped at
// End, so every serialized span has positive duration.
type PhaseSpan struct {
	Kind  Kind          `json:"kind"`
	At    units.Seconds `json:"at"`
	Trace TraceID       `json:"trace"`
	Span  SpanID        `json:"span"`
	// Parent is the enclosing span (the query's root span, or the
	// SwitchSpan for drain phases); 0 for a root-less phase such as a
	// prewarm cold start.
	Parent SpanID `json:"parent,omitempty"`
	// Cause is the cross-trace causal edge (the switch span that
	// displaced this work), 0 if none.
	Cause   SpanID        `json:"cause,omitempty"`
	Phase   Phase         `json:"phase"`
	Service string        `json:"service"`
	Backend string        `json:"backend,omitempty"`
	Start   units.Seconds `json:"start"`
	End     units.Seconds `json:"end"`
}

// EventKind implements Event.
func (*PhaseSpan) EventKind() Kind { return KindPhaseSpan }

// EventTime implements Event.
func (e *PhaseSpan) EventTime() units.Seconds { return e.At }

// QueryTrace is the trace context carried with one in-flight query: its
// trace, its root span (the SpanID the final QueryComplete record is
// serialized under), and the causal edge to the switch span that was
// displacing the service when the query arrived. The zero value means
// untraced.
type QueryTrace struct {
	Trace TraceID
	Span  SpanID
	Cause SpanID
}

// SpanHandle refers to one open span slot in the tracer's pool. The
// zero value is inert: End on it is a no-op, so call sites need no
// active-tracer guards of their own. Handles are generation-counted;
// ending one twice panics instead of corrupting a recycled slot.
type SpanHandle struct {
	slot int32 // 1-based slot index; 0 = inert
	gen  uint32
}

// Open reports whether the handle refers to an open span.
func (h SpanHandle) Open() bool { return h.slot != 0 }

// spanSlot is the pooled bookkeeping for one open span.
type spanSlot struct {
	gen     uint32
	inUse   bool
	trace   TraceID
	span    SpanID
	parent  SpanID
	cause   SpanID
	phase   Phase
	service string
	backend string
	start   units.Seconds
}

// Tracer allocates trace/span IDs and tracks open spans for one
// simulation. Like the Bus it fronts, a Tracer belongs to one
// simulation goroutine, and a nil *Tracer is valid and inert, so
// components hold one unconditionally.
//
// A tracer allocates from an ID namespace (ns, stride): the n-th trace
// or span ID it hands out is ns+1 + (n-1)·stride. The default namespace
// is (0, 1) — the dense 1, 2, 3, … sequence. The sharded runtime gives
// every shard-local component group its own namespace with a common
// stride, so IDs stay unique across concurrently advancing shards and —
// because the namespace is keyed to the service, not the shard — the
// merged stream is byte-identical for every shard count.
type Tracer struct {
	bus       *Bus
	nextTrace TraceID
	nextSpan  SpanID
	stride    uint64
	slots     []spanSlot
	free      []int32
	// causes maps service name → the switch span currently displacing
	// that service's queries (set at switch start, cleared at close).
	causes map[string]SpanID
}

// NewTracer returns a tracer emitting on bus, allocating IDs from the
// dense default namespace. A nil bus yields an always-inactive tracer.
func NewTracer(bus *Bus) *Tracer {
	return NewTracerNS(bus, 0, 1)
}

// NewTracerNS returns a tracer emitting on bus whose trace and span IDs
// are drawn from namespace ns of stride interleaved namespaces: the
// allocation sequence is ns+1, ns+1+stride, ns+1+2·stride, …  Distinct
// namespaces under one stride never collide, and no namespace ever
// allocates ID 0 (the untraced sentinel). It panics unless
// 0 ≤ ns < stride.
func NewTracerNS(bus *Bus, ns, stride int) *Tracer {
	if stride < 1 || ns < 0 || ns >= stride {
		panic("obs: tracer namespace requires 0 <= ns < stride")
	}
	// nextTrace/nextSpan hold the last allocated ID; pre-seed them one
	// stride below the namespace's first ID (unsigned wraparound is fine:
	// the first += stride lands exactly on ns+1).
	return &Tracer{
		bus:       bus,
		nextTrace: TraceID(uint64(ns+1) - uint64(stride)),
		nextSpan:  SpanID(uint64(ns+1) - uint64(stride)),
		stride:    uint64(stride),
		causes:    make(map[string]SpanID),
	}
}

// Active reports whether spans would reach any sink. ID allocation and
// span bookkeeping short-circuit when inactive, so an unobserved run
// pays one branch per call site.
//
//amoeba:noalloc
func (t *Tracer) Active() bool { return t != nil && t.bus.Active() }

// StartTrace allocates a fresh trace ID (0 when inactive).
//
//amoeba:noalloc
func (t *Tracer) StartTrace() TraceID {
	if !t.Active() {
		return 0
	}
	t.nextTrace += TraceID(t.stride)
	return t.nextTrace
}

// NextSpan allocates a fresh span ID (0 when inactive).
//
//amoeba:noalloc
func (t *Tracer) NextSpan() SpanID {
	if !t.Active() {
		return 0
	}
	t.nextSpan += SpanID(t.stride)
	return t.nextSpan
}

// CauseFor returns the switch span currently displacing the named
// service's work, 0 if none.
//
//amoeba:noalloc
func (t *Tracer) CauseFor(service string) SpanID {
	if t == nil {
		return 0
	}
	return t.causes[service]
}

// StartQuery opens the trace context for one admitted query: a fresh
// trace, its root span ID, and the causal edge to any in-progress
// switch on the service. Returns the zero QueryTrace when inactive.
//
//amoeba:noalloc
func (t *Tracer) StartQuery(service string) QueryTrace {
	if !t.Active() {
		return QueryTrace{}
	}
	t.nextTrace += TraceID(t.stride)
	t.nextSpan += SpanID(t.stride)
	return QueryTrace{Trace: t.nextTrace, Span: t.nextSpan, Cause: t.causes[service]}
}

// SetCause registers span as the switch currently displacing the named
// service's queries.
func (t *Tracer) SetCause(service string, span SpanID) {
	if t == nil {
		return
	}
	t.causes[service] = span
}

// ClearCause unregisters span if it is still the service's registered
// cause (a newer overlapping switch keeps its own registration).
func (t *Tracer) ClearCause(service string, span SpanID) {
	if t == nil {
		return
	}
	if t.causes[service] == span {
		delete(t.causes, service)
	}
}

// Begin opens a phase span at sim instant at. It allocates the span's
// ID, parks the bookkeeping in a pooled slot, and returns a handle for
// End. Inactive tracer or zero trace returns the inert handle; the
// fast path (freelist hit) performs no allocation.
//
//amoeba:noalloc
func (t *Tracer) Begin(at units.Seconds, trace TraceID, parent, cause SpanID, phase Phase, service, backend string) SpanHandle {
	if !t.Active() || trace == 0 {
		return SpanHandle{}
	}
	t.nextSpan += SpanID(t.stride)
	if len(t.free) == 0 {
		return t.beginSlow(at, trace, parent, cause, phase, service, backend)
	}
	idx := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	s := &t.slots[idx-1]
	s.inUse = true
	s.trace, s.span, s.parent, s.cause = trace, t.nextSpan, parent, cause
	s.phase, s.service, s.backend, s.start = phase, service, backend, at
	return SpanHandle{slot: idx, gen: s.gen}
}

// beginSlow grows the slab for a Begin that found the freelist empty.
func (t *Tracer) beginSlow(at units.Seconds, trace TraceID, parent, cause SpanID, phase Phase, service, backend string) SpanHandle {
	t.slots = append(t.slots, spanSlot{
		inUse: true, trace: trace, span: t.nextSpan, parent: parent,
		cause: cause, phase: phase, service: service, backend: backend, start: at,
	})
	return SpanHandle{slot: int32(len(t.slots)), gen: 0}
}

// End closes the span at sim instant at, emits its PhaseSpan record
// (unless the phase is zero-length — the breakdown fields on
// QueryComplete already record the zeros), and recycles the slot. End
// on the inert handle is a no-op; End on an already-ended handle
// panics.
//
//amoeba:noalloc
func (t *Tracer) End(at units.Seconds, h SpanHandle) {
	if h.slot == 0 {
		return
	}
	t.endSlow(at, h)
}

// endSlow is End's emit-and-recycle half, kept out of the annotated
// fast path: the emitted record is a fresh heap object by design
// (sinks may retain events), and the freelist push may grow. It panics
// on a handle that was already ended or belongs to a recycled slot —
// silently observing a stale handle would corrupt another span's
// bookkeeping.
func (t *Tracer) endSlow(at units.Seconds, h SpanHandle) {
	s := &t.slots[h.slot-1]
	if !s.inUse || s.gen != h.gen {
		panic("obs: span handle ended twice or stale")
	}
	if at > s.start {
		t.bus.Emit(&PhaseSpan{
			At: at, Trace: s.trace, Span: s.span, Parent: s.parent, Cause: s.cause,
			Phase: s.phase, Service: s.service, Backend: s.backend,
			Start: s.start, End: at,
		})
	}
	s.inUse = false
	s.gen++
	s.service, s.backend = "", ""
	t.free = append(t.free, h.slot)
}

// OpenSpans returns the number of spans currently open (diagnostic).
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.slots) - len(t.free)
}
