package obs

import "testing"

// activeNSTracer returns a namespaced tracer attached to a bus with a
// sink, so allocation actually advances.
func activeNSTracer(ns, stride int) *Tracer {
	bus := NewBus()
	bus.Attach(NewBuffer())
	return NewTracerNS(bus, ns, stride)
}

// TestTracerNamespaceSequences pins the strided allocation contract:
// namespace ns of stride N hands out ns+1, ns+1+N, ns+1+2N, … for both
// trace and span IDs, so distinct namespaces never collide and never
// allocate the untraced sentinel 0.
func TestTracerNamespaceSequences(t *testing.T) {
	const stride = 4
	seen := map[uint64]int{}
	for ns := 0; ns < stride; ns++ {
		tr := activeNSTracer(ns, stride)
		for i := 0; i < 3; i++ {
			want := uint64(ns+1) + uint64(i*stride)
			if got := tr.StartTrace(); uint64(got) != want {
				t.Fatalf("ns %d trace %d = %d, want %d", ns, i, got, want)
			}
			got := tr.NextSpan()
			if uint64(got) != want {
				t.Fatalf("ns %d span %d = %d, want %d", ns, i, got, want)
			}
			if got == 0 {
				t.Fatalf("ns %d allocated the untraced sentinel", ns)
			}
			if prev, dup := seen[uint64(got)]; dup {
				t.Fatalf("ns %d reallocated span %d of ns %d", ns, got, prev)
			}
			seen[uint64(got)] = ns
		}
	}
}

// TestTracerDefaultNamespaceIsDense asserts NewTracer still allocates
// the historical dense 1, 2, 3, … sequence — namespace (0, 1).
func TestTracerDefaultNamespaceIsDense(t *testing.T) {
	bus := NewBus()
	bus.Attach(NewBuffer())
	tr := NewTracer(bus)
	for want := uint64(1); want <= 3; want++ {
		if got := tr.StartTrace(); uint64(got) != want {
			t.Fatalf("default trace = %d, want %d", got, want)
		}
		if got := tr.NextSpan(); uint64(got) != want {
			t.Fatalf("default span = %d, want %d", got, want)
		}
	}
}

// TestTracerNamespaceValidation pins the constructor's domain check.
func TestTracerNamespaceValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 0}, {-1, 4}, {4, 4}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTracerNS(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			NewTracerNS(NewBus(), bad[0], bad[1])
		}()
	}
}

// TestBufferSink pins the epoch buffer: emission order retained, Reset
// drops references but keeps capacity.
func TestBufferSink(t *testing.T) {
	buf := NewBuffer()
	bus := NewBus()
	bus.Attach(buf)
	bus.Emit(&MeterSample{At: 1, Trace: 1, Span: 1})
	bus.Emit(&MeterSample{At: 2, Trace: 2, Span: 2})
	evs := buf.Events()
	if len(evs) != 2 {
		t.Fatalf("buffered %d events, want 2", len(evs))
	}
	if evs[0].EventTime() != 1 || evs[1].EventTime() != 2 {
		t.Fatal("buffer reordered events")
	}
	buf.Reset()
	if len(buf.Events()) != 0 {
		t.Fatal("Reset left events behind")
	}
	bus.Emit(&MeterSample{At: 3, Trace: 3, Span: 3})
	if len(buf.Events()) != 1 || buf.Events()[0].EventTime() != 3 {
		t.Fatal("buffer broken after Reset")
	}
}
