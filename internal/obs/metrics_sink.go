package obs

// Latency histogram shape shared by every latency-valued series: 1 ms
// to ~100 s at 32 sub-buckets per octave (~3% worst-case quantile
// error, 544 buckets).
const (
	latencyLo  = 1e-3
	latencyHi  = 100.0
	latencySub = 32
)

// MetricsSink folds the event stream into a Registry: query and
// cold-start counters, per-service latency histograms, decision and
// switch counters, and pressure/load gauges. Attach one to a Bus to get
// a scrape-able snapshot of a run at any point (amoeba-sim
// -metrics-dump renders it after the horizon).
type MetricsSink struct {
	reg *Registry
}

// NewMetricsSink builds a sink updating reg.
func NewMetricsSink(reg *Registry) *MetricsSink { return &MetricsSink{reg: reg} }

// Registry returns the registry the sink updates.
func (m *MetricsSink) Registry() *Registry { return m.reg }

// Consume implements Sink.
func (m *MetricsSink) Consume(ev Event) {
	switch e := ev.(type) {
	case *QueryComplete:
		m.reg.Counter(Labeled("amoeba_queries_total",
			"service", e.Service, "backend", e.Backend)).Inc()
		m.reg.Histogram(Labeled("amoeba_latency_seconds", "service", e.Service),
			latencyLo, latencyHi, latencySub).Observe(e.Latency.Raw())
	case *ColdStart:
		kind := "query"
		if e.Prewarm {
			kind = "prewarm"
		}
		m.reg.Counter(Labeled("amoeba_cold_starts_total",
			"service", e.Service, "trigger", kind)).Inc()
		m.reg.Histogram("amoeba_cold_start_seconds",
			latencyLo, latencyHi, latencySub).Observe(e.Delay.Raw())
	case *DecisionEvent:
		m.reg.Counter(Labeled("amoeba_decisions_total",
			"service", e.Service, "verdict", e.Verdict)).Inc()
		m.reg.Gauge(Labeled("amoeba_load_qps", "service", e.Service)).Set(e.LoadQPS.Raw())
		m.reg.Gauge(Labeled("amoeba_admissible_qps", "service", e.Service)).Set(e.AdmissibleQPS.Raw())
		m.reg.Gauge(Labeled("amoeba_mu", "service", e.Service)).Set(e.Mu.Raw())
		for i, res := range [...]string{"cpu", "io", "net"} {
			m.reg.Gauge(Labeled("amoeba_pressure", "resource", res)).Set(e.Pressure[i])
		}
	case *SwitchSpan:
		m.reg.Counter(Labeled("amoeba_switches_total",
			"service", e.Service, "to", e.To)).Inc()
		if !e.Aborted {
			m.reg.Histogram(Labeled("amoeba_switch_duration_seconds", "to", e.To),
				latencyLo, latencyHi, latencySub).Observe((e.End - e.Start).Raw())
		}
	case *HeartbeatSample:
		m.reg.Counter(Labeled("amoeba_heartbeats_total", "service", e.Service)).Inc()
	case *MeterSample:
		for i, res := range [...]string{"cpu", "io", "net"} {
			m.reg.Gauge(Labeled("amoeba_meter_latency_seconds", "meter", res)).Set(e.Latency[i].Raw())
			m.reg.Gauge(Labeled("amoeba_meter_pressure", "meter", res)).Set(e.Pressure[i])
		}
	default:
		m.reg.Counter(Labeled("amoeba_events_total",
			"kind", string(ev.EventKind()))).Inc()
	}
}
