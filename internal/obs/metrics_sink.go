package obs

// Latency histogram shape shared by every latency-valued series: 1 ms
// to ~100 s at 32 sub-buckets per octave (~3% worst-case quantile
// error, 544 buckets).
const (
	latencyLo  = 1e-3
	latencyHi  = 100.0
	latencySub = 32
)

// resources names the meter/pressure label values in meter order.
var resources = [...]string{"cpu", "io", "net"}

// svcSeries holds one service's interned metric handles. Every field
// is resolved at most once — on the first event that needs it — and
// folded through a direct pointer (or a small per-label-value map)
// thereafter, so the steady-state fold never formats a label key.
type svcSeries struct {
	ls         LabelSet            // {service="X"}, shared by the single-label series
	queries    map[string]*Counter // by backend
	latency    *Histogram
	coldQuery  *Counter
	coldPre    *Counter
	verdicts   map[string]*Counter // by verdict
	load       *Gauge
	admissible *Gauge
	mu         *Gauge
	switches   map[string]*Counter // by target mode
	heartbeats *Counter
	phases     map[Phase]*Histogram // by trace phase
}

// MetricsSink folds the event stream into a Registry: query and
// cold-start counters, per-service latency and phase histograms,
// decision and switch counters, and pressure/load gauges. Attach one
// to a Bus to get a scrape-able snapshot of a run at any point
// (amoeba-sim -metrics-dump renders it after the horizon).
//
// Label handling is interned: series handles are resolved once per
// (service, label-value) pair through pre-sorted LabelSet suffixes and
// cached, so the per-event fold path performs no label formatting and,
// in steady state, no allocation (histogram observation is
// allocation-free by construction).
type MetricsSink struct {
	reg        *Registry
	services   map[string]*svcSeries
	coldDelay  *Histogram
	switchDur  map[string]*Histogram // by target mode
	pressure   [3]*Gauge
	meterLat   [3]*Gauge
	meterPress [3]*Gauge
}

// NewMetricsSink builds a sink updating reg.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		reg:       reg,
		services:  make(map[string]*svcSeries),
		switchDur: make(map[string]*Histogram),
	}
}

// Registry returns the registry the sink updates.
func (m *MetricsSink) Registry() *Registry { return m.reg }

// Consume implements Sink. It panics on an event type outside the
// closed taxonomy — an unfolded event kind is an invariant violation,
// not a datum to count under a catch-all.
//
//amoeba:noalloc
func (m *MetricsSink) Consume(ev Event) {
	switch e := ev.(type) {
	case *QueryComplete:
		m.foldQuery(e)
	case *ColdStart:
		m.foldCold(e)
	case *DecisionEvent:
		m.foldDecision(e)
	case *SwitchSpan:
		m.foldSwitch(e)
	case *HeartbeatSample:
		m.foldHeartbeat(e)
	case *MeterSample:
		m.foldMeter(e)
	case *PhaseSpan:
		m.foldPhase(e)
	default:
		//amoeba:allowalloc(cold panic path: concat fires only on an event outside the closed taxonomy)
		panic("obs: event type outside the closed taxonomy: " + string(ev.EventKind()))
	}
}

// svc interns the per-service series block on first sight of a service.
func (m *MetricsSink) svc(service string) *svcSeries {
	if s, ok := m.services[service]; ok {
		return s
	}
	s := &svcSeries{ls: NewLabelSet("service", service)}
	m.services[service] = s
	return s
}

func (m *MetricsSink) foldQuery(e *QueryComplete) {
	s := m.svc(e.Service)
	c := s.queries[e.Backend]
	if c == nil {
		if s.queries == nil {
			s.queries = make(map[string]*Counter)
		}
		c = m.reg.Counter(Labeled("amoeba_queries_total",
			"service", e.Service, "backend", e.Backend))
		s.queries[e.Backend] = c
	}
	c.Inc()
	if s.latency == nil {
		s.latency = m.reg.Histogram(s.ls.For("amoeba_latency_seconds"),
			latencyLo, latencyHi, latencySub)
	}
	s.latency.Observe(e.Latency.Raw())
}

func (m *MetricsSink) foldCold(e *ColdStart) {
	s := m.svc(e.Service)
	slot, trigger := &s.coldQuery, "query"
	if e.Prewarm {
		slot, trigger = &s.coldPre, "prewarm"
	}
	if *slot == nil {
		*slot = m.reg.Counter(Labeled("amoeba_cold_starts_total",
			"service", e.Service, "trigger", trigger))
	}
	(*slot).Inc()
	if m.coldDelay == nil {
		m.coldDelay = m.reg.Histogram("amoeba_cold_start_seconds",
			latencyLo, latencyHi, latencySub)
	}
	m.coldDelay.Observe(e.Delay.Raw())
}

func (m *MetricsSink) foldDecision(e *DecisionEvent) {
	s := m.svc(e.Service)
	c := s.verdicts[e.Verdict]
	if c == nil {
		if s.verdicts == nil {
			s.verdicts = make(map[string]*Counter)
		}
		c = m.reg.Counter(Labeled("amoeba_decisions_total",
			"service", e.Service, "verdict", e.Verdict))
		s.verdicts[e.Verdict] = c
	}
	c.Inc()
	if s.load == nil {
		s.load = m.reg.Gauge(s.ls.For("amoeba_load_qps"))
		s.admissible = m.reg.Gauge(s.ls.For("amoeba_admissible_qps"))
		s.mu = m.reg.Gauge(s.ls.For("amoeba_mu"))
	}
	s.load.Set(e.LoadQPS.Raw())
	s.admissible.Set(e.AdmissibleQPS.Raw())
	s.mu.Set(e.Mu.Raw())
	if m.pressure[0] == nil {
		for i, res := range resources {
			m.pressure[i] = m.reg.Gauge(Labeled("amoeba_pressure", "resource", res))
		}
	}
	for i := range m.pressure {
		m.pressure[i].Set(e.Pressure[i])
	}
}

func (m *MetricsSink) foldSwitch(e *SwitchSpan) {
	s := m.svc(e.Service)
	c := s.switches[e.To]
	if c == nil {
		if s.switches == nil {
			s.switches = make(map[string]*Counter)
		}
		c = m.reg.Counter(Labeled("amoeba_switches_total",
			"service", e.Service, "to", e.To))
		s.switches[e.To] = c
	}
	c.Inc()
	if !e.Aborted {
		h := m.switchDur[e.To]
		if h == nil {
			h = m.reg.Histogram(Labeled("amoeba_switch_duration_seconds", "to", e.To),
				latencyLo, latencyHi, latencySub)
			m.switchDur[e.To] = h
		}
		h.Observe((e.End - e.Start).Raw())
	}
}

func (m *MetricsSink) foldHeartbeat(e *HeartbeatSample) {
	s := m.svc(e.Service)
	if s.heartbeats == nil {
		s.heartbeats = m.reg.Counter(s.ls.For("amoeba_heartbeats_total"))
	}
	s.heartbeats.Inc()
}

func (m *MetricsSink) foldMeter(e *MeterSample) {
	if m.meterLat[0] == nil {
		for i, res := range resources {
			m.meterLat[i] = m.reg.Gauge(Labeled("amoeba_meter_latency_seconds", "meter", res))
			m.meterPress[i] = m.reg.Gauge(Labeled("amoeba_meter_pressure", "meter", res))
		}
	}
	for i := range m.meterLat {
		m.meterLat[i].Set(e.Latency[i].Raw())
		m.meterPress[i].Set(e.Pressure[i])
	}
}

func (m *MetricsSink) foldPhase(e *PhaseSpan) {
	s := m.svc(e.Service)
	h := s.phases[e.Phase]
	if h == nil {
		if s.phases == nil {
			s.phases = make(map[Phase]*Histogram)
		}
		h = m.reg.Histogram(Labeled("amoeba_phase_seconds",
			"service", e.Service, "phase", string(e.Phase)),
			latencyLo, latencyHi, latencySub)
		s.phases[e.Phase] = h
	}
	h.Observe((e.End - e.Start).Raw())
}
