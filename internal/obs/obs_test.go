package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"amoeba/internal/units"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	// Must not panic.
	b.Emit(&ColdStart{At: 1})
}

func TestEmptyBusInactive(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("sink-less bus reports active")
	}
	b.Emit(&ColdStart{At: 1}) // no-op, must not panic
}

func TestEmitStampsKindAndFansOut(t *testing.T) {
	b := NewBus()
	r1, r2 := NewRing(8), NewRing(8)
	b.Attach(r1)
	b.Attach(r2)
	if !b.Active() {
		t.Fatal("bus with sinks reports inactive")
	}
	ev := &DecisionEvent{At: 5, Service: "svc"}
	b.Emit(ev)
	if ev.Kind != KindDecision {
		t.Fatalf("Kind not stamped: %q", ev.Kind)
	}
	if r1.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out missed a sink: %d, %d", r1.Len(), r2.Len())
	}
	if r1.Events()[0] != Event(ev) {
		t.Fatal("sink received a different event")
	}
}

func TestEventKindsRoundTrip(t *testing.T) {
	events := []Event{
		&QueryComplete{},
		&ColdStart{},
		&DecisionEvent{},
		&SwitchSpan{},
		&HeartbeatSample{},
		&MeterSample{},
		&PhaseSpan{},
	}
	b := NewBus()
	ring := NewRing(len(events))
	b.Attach(ring)
	seen := map[Kind]bool{}
	for _, ev := range events {
		b.Emit(ev)
	}
	for _, ev := range ring.Events() {
		k := ev.EventKind()
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
		// The stamped field must match the method for every type.
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var probe struct {
			Kind Kind `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		if probe.Kind != k {
			t.Fatalf("serialized kind %q != method kind %q", probe.Kind, k)
		}
	}
	if len(seen) != 7 {
		t.Fatalf("expected 7 distinct kinds, saw %d", len(seen))
	}
}

func TestJSONLWriterDeterministicBytes(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		b := NewBus()
		b.Attach(NewJSONLWriter(&buf))
		b.Emit(&QueryComplete{At: 1.5, Service: "a", Backend: "iaas", Latency: 0.25})
		b.Emit(&ColdStart{At: 2, Service: "a", Delay: 0.8, Prewarm: true})
		b.Emit(&DecisionEvent{At: 10, Service: "a", Verdict: "stay-iaas"})
		return buf.Bytes()
	}
	a, c := run(), run()
	if !bytes.Equal(a, c) {
		t.Fatalf("identical emissions produced different bytes:\n%s\n---\n%s", a, c)
	}
	lines := bytes.Split(bytes.TrimSpace(a), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	for _, ln := range lines {
		if !json.Valid(ln) {
			t.Fatalf("invalid JSON line: %s", ln)
		}
	}
	// kind must be the first field so streams are cheaply greppable.
	if !bytes.HasPrefix(lines[0], []byte(`{"kind":"query_complete"`)) {
		t.Fatalf("kind not first field: %s", lines[0])
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errWrite
	}
	f.after--
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "disk full" }

func TestJSONLWriterStickyError(t *testing.T) {
	j := NewJSONLWriter(&failWriter{after: 1})
	b := NewBus()
	b.Attach(j)
	b.Emit(&ColdStart{At: 1})
	b.Emit(&ColdStart{At: 2}) // fails
	b.Emit(&ColdStart{At: 3}) // dropped, must not panic
	if j.Count() != 1 {
		t.Fatalf("Count = %d, want 1", j.Count())
	}
	if j.Err() != errWrite {
		t.Fatalf("Err = %v, want sticky write error", j.Err())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Consume(&ColdStart{At: units.Seconds(i)})
	}
	if r.Seen() != 5 || r.Len() != 3 {
		t.Fatalf("Seen=%d Len=%d, want 5, 3", r.Seen(), r.Len())
	}
	got := r.Events()
	want := []units.Seconds{3, 4, 5}
	for i, ev := range got {
		if ev.EventTime() != want[i] {
			t.Fatalf("event %d at %v, want %v", i, ev.EventTime(), want[i])
		}
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	b := NewBus()
	b.Attach(r)
	b.Emit(&ColdStart{At: 1})
	b.Emit(&DecisionEvent{At: 2})
	b.Emit(&ColdStart{At: 3})
	cold := r.Filter(KindColdStart)
	if len(cold) != 2 || cold[0].EventTime() != 1 || cold[1].EventTime() != 3 {
		t.Fatalf("Filter(cold_start) = %v", cold)
	}
	if len(r.Filter(KindSwitchSpan)) != 0 {
		t.Fatal("Filter of absent kind not empty")
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

//amoeba:alloctest obs.Bus.Active obs.Bus.Emit
func TestEmitNoSinkZeroAlloc(t *testing.T) {
	var nilBus *Bus
	empty := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		// The guarded emission idiom used at every instrumentation site.
		if nilBus.Active() {
			nilBus.Emit(&QueryComplete{At: 1, Service: "s"})
		}
		if empty.Active() {
			empty.Emit(&QueryComplete{At: 1, Service: "s"})
		}
	})
	if allocs != 0 {
		t.Fatalf("no-sink emission allocates %.1f per event, want 0", allocs)
	}
}

// discardSink counts events and drops them — the cheapest possible
// consumer, isolating the bus's own dispatch cost.
type discardSink struct{ n int }

func (d *discardSink) Consume(Event) { d.n++ }

// TestEmitActiveZeroAlloc asserts the dispatch itself — kind stamping
// plus the sink fan-out — allocates nothing once the event exists. The
// event literal is hoisted: allocating it is the emission site's cost,
// governed by the Active() guard, not the bus's.
//
//amoeba:alloctest obs.Bus.Emit obs.stamp
func TestEmitActiveZeroAlloc(t *testing.T) {
	bus := NewBus()
	sink := &discardSink{}
	bus.Attach(sink)
	ev := &QueryComplete{At: 1, Service: "s"}
	allocs := testing.AllocsPerRun(1000, func() {
		bus.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("active emission allocates %.1f per event, want 0", allocs)
	}
	if sink.n == 0 {
		t.Fatal("sink saw no events")
	}
}

func TestAuditTable(t *testing.T) {
	events := []Event{
		&ColdStart{At: 1}, // skipped: not a decision
		&DecisionEvent{
			At: 60, Service: "dd", Mode: "iaas",
			LoadQPS: 12.5, Mu: 3.2, AdmissibleQPS: 40,
			Pressure: [3]float64{0.1, 0.2, 0.3},
			Verdict:  "stay-iaas", Reason: "load above margin",
		},
		&DecisionEvent{
			At: 120, Service: "dd", Mode: "iaas",
			Verdict: "switch-in", Reason: "load admissible",
		},
	}
	tbl := AuditTable(events)
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tbl.Rows())
	}
	out := tbl.String()
	for _, want := range []string{"verdict", "stay-iaas", "switch-in", "12.50", "0.300", "load above margin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit table missing %q:\n%s", want, out)
		}
	}
}

func TestSwitchTable(t *testing.T) {
	events := []Event{
		&SwitchSpan{
			At: 200, Service: "dd", From: "iaas", To: "serverless",
			Start: 180, FlipAt: 185, End: 200,
			PrewarmS: 5, DrainS: 10, Prewarmed: 4,
		},
		&SwitchSpan{
			At: 400, Service: "dd", From: "serverless", To: "iaas",
			Start: 390, End: 400, Aborted: true,
		},
	}
	tbl := SwitchTable(events)
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tbl.Rows())
	}
	out := tbl.String()
	for _, want := range []string{"serverless", "20.00", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("switch table missing %q:\n%s", want, out)
		}
	}
}
