package obs

import (
	"encoding/json"
	"io"
)

// JSONLWriter serializes every event as one JSON object per line, in
// emission order. Because events are structs (encoding/json emits
// struct fields in declaration order) and all timestamps come from the
// sim clock, the byte stream of a run is deterministic: identical
// scenario + seed ⇒ identical bytes.
//
// Write errors are sticky: the first one is retained, later events are
// dropped, and Err reports it. A sink must not panic mid-simulation —
// losing telemetry is better than losing the run.
type JSONLWriter struct {
	w   io.Writer
	err error
	n   int
}

// NewJSONLWriter wraps w. The caller owns buffering and closing.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// Consume implements Sink.
func (j *JSONLWriter) Consume(ev Event) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Count returns the number of events written so far.
func (j *JSONLWriter) Count() int { return j.n }

// Err returns the first write or marshal error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// Buffer is an unbounded in-memory sink retaining events in emission
// order. The sharded runtime attaches one per shard-local bus and
// drains them at every epoch barrier, merging the per-namespace
// sequences into the output stream in canonical order; the buffer
// therefore only ever holds one epoch's worth of events.
type Buffer struct {
	events []Event
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Consume implements Sink.
func (b *Buffer) Consume(ev Event) { b.events = append(b.events, ev) }

// Events returns the retained events in emission order. The slice is
// owned by the buffer and invalidated by Reset.
func (b *Buffer) Events() []Event { return b.events }

// Reset drops the retained events, keeping the backing capacity.
// Emitted events are never recycled (downstream sinks may retain them);
// only the buffer's references are released.
func (b *Buffer) Reset() {
	for i := range b.events {
		b.events[i] = nil
	}
	b.events = b.events[:0]
}

// Ring is a bounded in-memory sink keeping the most recent events. It
// is the cheap always-on option: a run can carry a few thousand events
// for post-mortem rendering (decision-audit tables, switch timelines)
// without unbounded growth on long horizons.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	seen    int
}

// NewRing returns a ring that retains the last n events. It panics if
// n is not positive.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, n)}
}

// Consume implements Sink.
func (r *Ring) Consume(ev Event) {
	r.buf[r.next] = ev
	r.next++
	r.seen++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Len returns the number of retained events (≤ capacity).
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Seen returns the total number of events consumed, including evicted
// ones.
func (r *Ring) Seen() int { return r.seen }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of one kind, oldest-first.
func (r *Ring) Filter(k Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.EventKind() == k {
			out = append(out, ev)
		}
	}
	return out
}
