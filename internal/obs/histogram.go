package obs

import (
	"fmt"
	"math"
)

// Histogram is a log-linear bounded histogram: the value range [lo, hi)
// is split into octaves (powers of two above lo), each octave into sub
// equal-width buckets. Quantile estimates carry a bounded relative
// error of at most 1/sub within the tracked range, at O(octaves·sub)
// memory — unlike stats.Sample, whose exact quantiles cost one float64
// per observation forever. With lo=1ms, hi=100s and sub=32 that is
// 17 octaves × 32 = 544 buckets (~4 KiB) for ~3% worst-case error on
// p95/p99, which is what the metric registry exposes for latencies.
//
// Out-of-range observations clamp into the edge buckets (their exact
// value still contributes to Sum/Min/Max), so quantiles degrade
// gracefully rather than failing when a latency spike exceeds hi.
type Histogram struct {
	lo, hi   float64
	sub      int
	counts   []uint64
	total    uint64
	sum      float64
	min, max float64
}

// NewHistogram creates a histogram covering [lo, hi) with sub linear
// buckets per octave. It panics unless 0 < lo < hi and sub ≥ 1 — the
// bounds are compile-time constants at every call site, so a violation
// is a programming bug, not bad input.
func NewHistogram(lo, hi float64, sub int) *Histogram {
	if lo <= 0 || hi <= lo || sub < 1 {
		panic(fmt.Sprintf("obs: invalid histogram shape lo=%v hi=%v sub=%d", lo, hi, sub))
	}
	octaves := int(math.Ceil(math.Log2(hi / lo)))
	if octaves < 1 {
		octaves = 1
	}
	return &Histogram{
		lo: lo, hi: hi, sub: sub,
		counts: make([]uint64, octaves*sub),
		min:    math.Inf(1), max: math.Inf(-1),
	}
}

// Buckets returns the number of allocated buckets — the memory bound.
func (h *Histogram) Buckets() int { return len(h.counts) }

// index maps a value to its bucket. Values below lo land in bucket 0,
// values at or above hi in the last bucket.
func (h *Histogram) index(v float64) int {
	if v < h.lo {
		return 0
	}
	oct := int(math.Floor(math.Log2(v / h.lo)))
	if oct < 0 {
		oct = 0
	}
	base := math.Ldexp(h.lo, oct) // lo · 2^oct, exact
	sb := int((v/base - 1) * float64(h.sub))
	if sb < 0 {
		sb = 0
	}
	if sb >= h.sub {
		sb = h.sub - 1
	}
	idx := oct*h.sub + sb
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// lower returns the inclusive lower bound of bucket idx.
func (h *Histogram) lower(idx int) float64 {
	oct, sb := idx/h.sub, idx%h.sub
	base := math.Ldexp(h.lo, oct)
	return base * (1 + float64(sb)/float64(h.sub))
}

// upper returns the exclusive upper bound of bucket idx.
func (h *Histogram) upper(idx int) float64 {
	oct, sb := idx/h.sub, idx%h.sub
	base := math.Ldexp(h.lo, oct)
	return base * (1 + float64(sb+1)/float64(h.sub))
}

// Observe records one value. NaN observations are dropped: they carry
// no quantile information and would poison Sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[h.index(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest exact observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest exact observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the midpoint of the
// bucket holding the rank, clamped to the exact observed [Min, Max]. It
// returns 0 on an empty histogram and panics if q is outside [0,1] —
// quantile arguments are literals at every call site.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("obs: quantile %v out of [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			mid := (h.lower(i) + h.upper(i)) / 2
			// The exact extremes beat the bucket resolution at the
			// edges (and cover clamped out-of-range observations).
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// P95 is shorthand for the 95th percentile, the paper's QoS quantile.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 is shorthand for the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Bucket is one non-empty histogram bucket for exposition.
type Bucket struct {
	Upper float64 // exclusive upper bound
	Count uint64  // observations in this bucket (not cumulative)
}

// NonEmptyBuckets returns the non-empty buckets in value order — the
// Prometheus-text expositor turns these into cumulative le-series.
func (h *Histogram) NonEmptyBuckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{Upper: h.upper(i), Count: c})
		}
	}
	return out
}
