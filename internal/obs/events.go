package obs

import "amoeba/internal/units"

// QueryComplete is one finished query with its full latency anatomy
// (the per-record view behind Fig. 4 and Fig. 10).
type QueryComplete struct {
	Kind    Kind          `json:"kind"`
	At      units.Seconds `json:"at"`
	Service string        `json:"service"`
	Backend string        `json:"backend"`
	// Arrived is the query's arrival instant; At - Arrived is the
	// end-to-end latency, also broken down below.
	Arrived units.Seconds `json:"arrived"`
	Latency units.Seconds `json:"latency_s"`
	// Latency anatomy, mirroring metrics.Breakdown.
	Queue      units.Seconds `json:"queue_s"`
	ColdStart  units.Seconds `json:"cold_start_s"`
	Processing units.Seconds `json:"processing_s"`
	CodeLoad   units.Seconds `json:"code_load_s"`
	Exec       units.Seconds `json:"exec_s"`
	Post       units.Seconds `json:"post_s"`
	// Trace/Span identify this record as the root span of its query's
	// trace (interval [Arrived, At]); phase spans parent to Span. Cause
	// is the switch span displacing the service when the query arrived.
	// All zero on an untraced run.
	Trace TraceID `json:"trace,omitempty"`
	Span  SpanID  `json:"span,omitempty"`
	Cause SpanID  `json:"cause,omitempty"`
}

// EventKind implements Event.
func (*QueryComplete) EventKind() Kind { return KindQueryComplete }

// EventTime implements Event.
func (e *QueryComplete) EventTime() units.Seconds { return e.At }

// ColdStart is one container start completing on the serverless
// platform. Prewarm distinguishes §V-A switch-triggered prewarming
// (the container warms idle) from a query-visible cold start (a query
// paid the delay).
type ColdStart struct {
	Kind    Kind          `json:"kind"`
	At      units.Seconds `json:"at"`
	Service string        `json:"service"`
	Delay   units.Seconds `json:"delay_s"`
	Prewarm bool          `json:"prewarm"`
}

// EventKind implements Event.
func (*ColdStart) EventKind() Kind { return KindColdStart }

// EventTime implements Event.
func (e *ColdStart) EventTime() units.Seconds { return e.At }

// DecisionEvent is one controller decision period, carrying the full
// Eq. 5 discriminant inputs and outputs: the load estimate λ, the
// predicted per-container capacity μ_n (Eq. 6), the admissible load
// λ(μ_n), the quantified per-resource pressure (current and predicted
// post-switch), the calibrated Eq. 6 weights, and the verdict with its
// human-readable reason. One row of the decision-audit trail.
type DecisionEvent struct {
	Kind    Kind          `json:"kind"`
	At      units.Seconds `json:"at"`
	Service string        `json:"service"`
	// Mode is the deployment mode the decision was taken in; Target is
	// the mode the controller wants (equal to Mode unless switching).
	Mode   string `json:"mode"`
	Target string `json:"target"`
	// LoadQPS is the EWMA load estimate V_u; AdmissibleQPS is λ(μ_n).
	LoadQPS       units.QPS `json:"load_qps"`
	AdmissibleQPS units.QPS `json:"admissible_qps"`
	// Mu is the predicted per-container capacity μ_n of Eq. 6.
	Mu units.ServiceRate `json:"mu"`
	// NMax is the per-tenant container cap N of the M/M/N discriminant.
	NMax int `json:"n_max"`
	// Pressure is the monitor's ambient estimate {P_cpu, P_io, P_net};
	// PostPressure adds this service's own predicted serverless demand
	// (the §III co-tenant safety input).
	Pressure     [3]float64 `json:"pressure"`
	PostPressure [3]float64 `json:"post_pressure"`
	// Weights are the calibrated Eq. 6 weights w_i with intercept;
	// WeightsLearned is false while w₀ is still in effect.
	Weights        [3]float64 `json:"weights"`
	Intercept      float64    `json:"intercept"`
	WeightsLearned bool       `json:"weights_learned"`
	// Blocked marks a load-indicated switch-in vetoed by the safety
	// check; Verdict/Reason explain the outcome in words.
	Blocked bool   `json:"blocked"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason"`
	// Trace/Span make the decision addressable as an instant span;
	// SwitchSpan.Decision and retry phases point back at Span. MeterSpan
	// is the causal edge to the monitor sample the pressure inputs came
	// from. All zero on an untraced run.
	Trace     TraceID `json:"trace,omitempty"`
	Span      SpanID  `json:"span,omitempty"`
	MeterSpan SpanID  `json:"meter_span,omitempty"`
}

// EventKind implements Event.
func (*DecisionEvent) EventKind() Kind { return KindDecision }

// EventTime implements Event.
func (e *DecisionEvent) EventTime() units.Seconds { return e.At }

// SwitchSpan is one deploy-mode transition as a span over the §V-B
// switch protocol, with one duration per phase:
//
//	prewarm  capacity preparation on the target backend (Eq. 7
//	         container prewarm for switch-in, VM boot for switch-out)
//	ack      readiness acknowledgement reaching the engine (this
//	         simulation delivers it in the same event as prewarm
//	         completion, so AckS is 0 by construction)
//	flip     the route flip (instantaneous in this model)
//	drain    old backend finishing its in-flight queries
//	release  old backend's resources actually freed
//
// The span is emitted when the release completes (At == End), or when
// the drain is abandoned because the engine switched back meanwhile
// (Aborted true, release never happened).
type SwitchSpan struct {
	Kind    Kind          `json:"kind"`
	At      units.Seconds `json:"at"`
	Service string        `json:"service"`
	From    string        `json:"from"`
	To      string        `json:"to"`
	// Start is the decision instant the protocol began; FlipAt is when
	// the route flipped (Timeline.RecordSwitch's timestamp); End is
	// when the old backend's resources were released (== At).
	Start  units.Seconds `json:"start"`
	FlipAt units.Seconds `json:"flip_at"`
	End    units.Seconds `json:"end"`
	// Per-phase durations; Start + Prewarm + Ack + Flip + Drain +
	// Release == End for a non-aborted span.
	PrewarmS units.Seconds `json:"prewarm_s"`
	AckS     units.Seconds `json:"ack_s"`
	FlipS    units.Seconds `json:"flip_s"`
	DrainS   units.Seconds `json:"drain_s"`
	ReleaseS units.Seconds `json:"release_s"`
	// LoadQPS is the load estimate the switch decision was taken at.
	LoadQPS units.QPS `json:"load_qps"`
	// Prewarmed counts containers started by the prewarm phase
	// (switch-in only).
	Prewarmed int `json:"prewarmed"`
	// Aborted marks a span whose drain was abandoned by a reverse
	// switch; the old backend kept its resources.
	Aborted bool `json:"aborted"`
	// Trace/Span address the switch as an interval span ([Start, End]);
	// drain phases parent to Span, and queries displaced while the
	// switch is in progress carry Span as their Cause. Decision is the
	// DecisionEvent span that ordered the switch. All zero on an
	// untraced run.
	Trace    TraceID `json:"trace,omitempty"`
	Span     SpanID  `json:"span,omitempty"`
	Decision SpanID  `json:"decision_span,omitempty"`
}

// EventKind implements Event.
func (*SwitchSpan) EventKind() Kind { return KindSwitchSpan }

// EventTime implements Event.
func (e *SwitchSpan) EventTime() units.Seconds { return e.At }

// HeartbeatSample is one engine→monitor calibration sample (§VI-A): the
// degradation features the latency surfaces predicted at the current
// pressure, the slowdown the service actually observed, and the Eq. 6
// weights in effect after folding the sample in.
type HeartbeatSample struct {
	Kind    Kind          `json:"kind"`
	At      units.Seconds `json:"at"`
	Service string        `json:"service"`
	// Features are the predicted degradations e_i of Eq. 6; Observed is
	// the measured slowdown (>= 1) they are regressed against.
	Features [3]float64 `json:"features"`
	Observed float64    `json:"observed"`
	// Window is the number of samples in the calibration window after
	// this one.
	Window int `json:"window"`
	// Weights/Intercept/Learned echo the post-recalibration state.
	Weights   [3]float64 `json:"weights"`
	Intercept float64    `json:"intercept"`
	Learned   bool       `json:"learned"`
	// Trace/Span address the sample as an instant span; MeterSpan is
	// the causal edge to the pressure refresh the degradation features
	// derived from. All zero on an untraced run.
	Trace     TraceID `json:"trace,omitempty"`
	Span      SpanID  `json:"span,omitempty"`
	MeterSpan SpanID  `json:"meter_span,omitempty"`
}

// EventKind implements Event.
func (*HeartbeatSample) EventKind() Kind { return KindHeartbeat }

// EventTime implements Event.
func (e *HeartbeatSample) EventTime() units.Seconds { return e.At }

// MeterSample is one monitor pressure refresh: the smoothed latency of
// each contention meter and the pressure obtained by inverting its
// profiling curve (§IV-B Measurement).
type MeterSample struct {
	Kind Kind          `json:"kind"`
	At   units.Seconds `json:"at"`
	// Latency holds the EWMA-smoothed meter latencies in meter order
	// (CPU, IO, net); Pressure the curve-inverted estimates.
	Latency  [3]units.Seconds `json:"latency_s"`
	Pressure [3]float64       `json:"pressure"`
	// Trace/Span address the refresh as an instant span that downstream
	// decisions and heartbeats point at via their MeterSpan edges. Zero
	// on an untraced run.
	Trace TraceID `json:"trace,omitempty"`
	Span  SpanID  `json:"span,omitempty"`
}

// EventKind implements Event.
func (*MeterSample) EventKind() Kind { return KindMeterSample }

// EventTime implements Event.
func (e *MeterSample) EventTime() units.Seconds { return e.At }
