// Package obs is the unified telemetry layer: a deterministic,
// sim-clock-driven event bus with pluggable sinks, plus a bounded
// metric registry for counter/gauge/histogram exposition.
//
// Amoeba's whole value is a runtime decision — the §IV discriminant
// (Eq. 5) fed by the predicted per-container capacity μ_n (Eq. 6) — and
// this package makes every such decision, every switch-protocol phase
// (§V prewarm → ack → flip → drain → release), and every platform signal
// (cold starts, meter probes, heartbeat calibrations, completed queries)
// observable after the fact. The answer to "why did it switch at
// t=437s?" is one DecisionEvent plus one SwitchSpan in the event log,
// not a debugger session.
//
// Determinism contract: every event timestamp comes from the simulation
// clock — never the wall clock — and events are emitted from within
// simulator callbacks on a single goroutine, so the event stream of a
// run is a pure function of (scenario, seed). Two identical-seed runs
// produce byte-identical JSONL streams; the nodeterminism analyzer
// machine-checks the no-wall-clock half of the contract.
//
// Overhead contract: emission sites guard with Bus.Active() before
// constructing an event, so an unobserved run (nil bus or no sinks)
// pays one nil check and one branch per site — zero allocations,
// benchmarked by BenchmarkEventEmit and pinned by a zero-alloc test.
package obs

import "amoeba/internal/units"

// Kind discriminates event types in the serialized stream. The set is
// closed: every switch over kinds must name all seven members, so
// adding an eighth kind breaks the build at every decode and fold site
// instead of silently dropping events.
//
//amoeba:enum
type Kind string

// The event taxonomy. Each kind corresponds to exactly one concrete
// event struct in this package.
const (
	// KindQueryComplete is one finished query with its latency anatomy.
	KindQueryComplete Kind = "query_complete"
	// KindColdStart is one container start completing (cold or prewarm).
	KindColdStart Kind = "cold_start"
	// KindDecision is one controller decision period with the full
	// Eq. 5 discriminant inputs and outputs.
	KindDecision Kind = "decision"
	// KindSwitchSpan is one deploy-mode transition with per-phase
	// durations of the §V switch protocol.
	KindSwitchSpan Kind = "switch_span"
	// KindHeartbeat is one engine→monitor calibration sample (§VI-A).
	KindHeartbeat Kind = "heartbeat"
	// KindMeterSample is one monitor pressure refresh from the three
	// contention meters (§IV-B).
	KindMeterSample Kind = "meter_sample"
	// KindPhaseSpan is one closed phase interval of a traced query or
	// switch (queue wait, cold start, exec, drain, retry).
	KindPhaseSpan Kind = "phase_span"
)

// Event is one telemetry record. Concrete events are emitted as
// pointers; EventTime returns the sim-clock instant the event was
// emitted at, which is non-decreasing over a run's stream. The
// implementing types form a closed set mirroring the Kind taxonomy;
// type switches over Event must cover every one of them.
//
//amoeba:enum
type Event interface {
	EventKind() Kind
	EventTime() units.Seconds
}

// Sink consumes emitted events. Sinks run synchronously inside the
// simulation event that emitted, so they must not re-enter the
// simulator; they may retain the event (events are never mutated after
// emission).
type Sink interface {
	Consume(Event)
}

// Bus fans emitted events out to its sinks. A nil *Bus is valid and
// inert, so components can hold one unconditionally. The zero value is
// an active bus with no sinks.
//
// The bus is not safe for concurrent use — like the simulator it serves,
// it lives on one goroutine; parallel experiment sweeps attach one bus
// per simulation.
type Bus struct {
	sinks []Sink
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach adds a sink. Events emitted before the first Attach are lost by
// design: observation is opt-in per run.
func (b *Bus) Attach(s Sink) {
	b.sinks = append(b.sinks, s)
}

// Active reports whether emitting would reach any sink. Emission sites
// must guard with it before constructing an event — that guard is the
// zero-overhead fast path of the package contract.
//
//amoeba:noalloc
func (b *Bus) Active() bool { return b != nil && len(b.sinks) > 0 }

// Emit stamps the event's Kind field and hands it to every sink in
// attach order. Emitting on an inactive bus is a no-op.
//
//amoeba:noalloc
func (b *Bus) Emit(ev Event) {
	if !b.Active() {
		return
	}
	stamp(ev)
	for _, s := range b.sinks {
		s.Consume(ev)
	}
}

// stamp fills the serialized kind discriminator on the concrete struct.
// Doing it here keeps emission sites free of redundant Kind fields. It
// panics on an event type outside the closed taxonomy — an event that
// would serialize without a kind is an invariant violation, not a datum
// to drop silently.
//
//amoeba:noalloc
func stamp(ev Event) {
	switch e := ev.(type) {
	case *QueryComplete:
		e.Kind = KindQueryComplete
	case *ColdStart:
		e.Kind = KindColdStart
	case *DecisionEvent:
		e.Kind = KindDecision
	case *SwitchSpan:
		e.Kind = KindSwitchSpan
	case *HeartbeatSample:
		e.Kind = KindHeartbeat
	case *MeterSample:
		e.Kind = KindMeterSample
	case *PhaseSpan:
		e.Kind = KindPhaseSpan
	default:
		//amoeba:allowalloc(cold panic path: concat fires only on an event outside the closed taxonomy)
		panic("obs: event type outside the closed taxonomy: " + string(ev.EventKind()))
	}
}
