package sim

import (
	"testing"
)

// --- Cancellation accounting ---

func TestCancelledCounter(t *testing.T) {
	s := New(1)
	h1 := s.At(1, func() {})
	h2 := s.At(2, func() {})
	s.At(3, func() {})

	h1.Cancel()
	if s.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d after one cancel, want 1", s.Cancelled())
	}
	h1.Cancel() // double-cancel is a no-op
	if s.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d after double cancel, want 1", s.Cancelled())
	}
	s.Run(10)
	h2.Cancel() // already fired: no-op
	if s.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d after cancelling a fired event, want 1", s.Cancelled())
	}
	if s.Events() != 2 {
		t.Fatalf("Events() = %d, want 2 (one of three was cancelled)", s.Events())
	}

	var zero EventHandle
	zero.Cancel() // zero handle cancels nothing
	if s.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d after zero-handle cancel, want 1", s.Cancelled())
	}
}

// TestStaleHandleAfterSlotReuse pins the ABA safety: a handle whose slot
// has been released and reallocated to a new event must not cancel the
// new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	s := New(1)
	stale := s.At(1, func() {})
	s.Run(2) // fires; the slot goes back on the free list

	fired := false
	s.At(3, func() { fired = true }) // reuses the slot
	stale.Cancel()                   // must be a no-op: generation advanced
	s.Run(4)
	if !fired {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if s.Cancelled() != 0 {
		t.Fatalf("Cancelled() = %d, want 0 (stale cancel must not count)", s.Cancelled())
	}
}

// TestPendingBoundedUnderCancelChurn drives a pathological
// schedule-then-cancel loop and checks the lazy compaction sweep keeps
// both the queue and the slab bounded. Without the sweep, every
// cancelled event would sit in the heap until its firing time.
func TestPendingBoundedUnderCancelChurn(t *testing.T) {
	s := New(1)
	fn := func() {}

	// A few live events pin the heap to prove the sweep keeps them.
	for i := 0; i < 4; i++ {
		s.At(Time(1e6+float64(i)), fn)
	}

	const churn = 100000
	maxPending := 0
	for i := 0; i < churn; i++ {
		h := s.At(Time(100+float64(i%977)), fn)
		h.Cancel()
		if p := s.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// The sweep triggers once dead events reach 16 and outnumber the
	// live half; with 4 live events the queue can never grow past ~2x
	// the threshold.
	if maxPending > 64 {
		t.Errorf("Pending() peaked at %d under cancel churn, want bounded (<= 64)", maxPending)
	}
	if len(s.slab) > 128 {
		t.Errorf("slab grew to %d slots under cancel churn, want bounded reuse", len(s.slab))
	}
	if s.Cancelled() != churn {
		t.Errorf("Cancelled() = %d, want %d", s.Cancelled(), churn)
	}
	// The live events survived every sweep.
	if got := s.Run(2e6); got != 4 {
		t.Errorf("fired %d events after churn, want the 4 live ones", got)
	}
}

// --- Differential test against a reference kernel ---

// kernelAPI is the surface both implementations expose to the random
// script: scheduling, cancellation, tickers, halting, and running.
type kernelAPI interface {
	KNow() float64
	KAt(at float64, fn func()) (cancel func())
	KEvery(period float64, fn func()) (stop func())
	KRun(horizon float64)
	KHalt()
}

// simKernel adapts the real Simulator.
type simKernel struct{ s *Simulator }

func (k simKernel) KNow() float64 { return float64(k.s.Now()) }
func (k simKernel) KAt(at float64, fn func()) func() {
	h := k.s.At(Time(at), fn)
	return h.Cancel
}
func (k simKernel) KEvery(period float64, fn func()) func() { return k.s.Every(period, fn) }
func (k simKernel) KRun(horizon float64)                    { k.s.Run(Time(horizon)) }
func (k simKernel) KHalt()                                  { k.s.Halt() }

// refEvent and refKernel are a deliberately naive reimplementation of
// the kernel's documented semantics: an unsorted slice scanned for the
// (at, seq) minimum. O(n²) and allocation-happy, but obviously correct —
// the slab/heap kernel must match its visible behaviour exactly.
type refEvent struct {
	at     float64
	seq    uint64
	fn     func()
	period float64
	dead   bool
}

type refKernel struct {
	now    float64
	seq    uint64
	halted bool
	queue  []*refEvent
}

func (k *refKernel) KNow() float64 { return k.now }

func (k *refKernel) KAt(at float64, fn func()) func() {
	ev := &refEvent{at: at, seq: k.seq, fn: fn}
	k.seq++
	k.queue = append(k.queue, ev)
	return func() { ev.dead = true }
}

func (k *refKernel) KEvery(period float64, fn func()) func() {
	ev := &refEvent{at: k.now + period, seq: k.seq, fn: fn, period: period}
	k.seq++
	k.queue = append(k.queue, ev)
	return func() { ev.dead = true }
}

func (k *refKernel) KHalt() { k.halted = true }

func (k *refKernel) KRun(horizon float64) {
	k.halted = false
	for !k.halted {
		best := -1
		for i, ev := range k.queue {
			if ev.dead {
				continue
			}
			if best == -1 || ev.at < k.queue[best].at ||
				(ev.at == k.queue[best].at && ev.seq < k.queue[best].seq) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		ev := k.queue[best]
		if ev.at > horizon {
			break
		}
		k.queue = append(k.queue[:best], k.queue[best+1:]...)
		k.now = ev.at
		ev.fn()
		if ev.period > 0 && !ev.dead {
			// Reschedule with a seq drawn after fn ran, like the real
			// kernel's ticker re-queue.
			ev.at = k.now + ev.period
			ev.seq = k.seq
			k.seq++
			k.queue = append(k.queue, ev)
		}
	}
	if k.now < horizon && !k.halted {
		k.now = horizon
	}
}

type logEntry struct {
	id int
	at float64
}

// driveKernel runs one seeded random script against a kernel and returns
// the observable trajectory: every firing (id, time) plus the clock after
// each Run. The script exercises same-time FIFO bursts, mid-flight
// cancellation (including of already-fired handles, which must no-op),
// self-stopping Every tickers, Halt, and horizon clamping with resume.
func driveKernel(k kernelAPI, seed uint64) []logEntry {
	rng := NewRNG(seed)
	var log []logEntry
	var cancels []func()
	nextID := 1000
	fired := 0

	var body func(id int) func()
	body = func(id int) func() {
		return func() {
			log = append(log, logEntry{id, k.KNow()})
			fired++
			switch rng.Intn(10) {
			case 0, 1, 2: // spawn future events
				n := 1 + rng.Intn(2)
				for j := 0; j < n; j++ {
					id := nextID
					nextID++
					cancels = append(cancels, k.KAt(k.KNow()+rng.Exp(2.0), body(id)))
				}
			case 3: // same-time burst: must fire in schedule order
				for j := 0; j < 3; j++ {
					id := nextID
					nextID++
					cancels = append(cancels, k.KAt(k.KNow(), body(id)))
				}
			case 4, 5: // cancel a random outstanding handle (possibly fired)
				if len(cancels) > 0 {
					cancels[rng.Intn(len(cancels))]()
				}
			case 6: // halt mid-run once the script has warmed up
				if fired > 40 {
					k.KHalt()
				}
			}
		}
	}

	for i := 0; i < 8; i++ {
		id := nextID
		nextID++
		cancels = append(cancels, k.KAt(rng.Exp(1.0), body(id)))
	}
	for i := 0; i < 3; i++ { // same-time seeds at t=0.5
		id := nextID
		nextID++
		cancels = append(cancels, k.KAt(0.5, body(id)))
	}
	// Ticker 0 stops itself after 12 ticks; ticker 1 outlives the first
	// horizon to prove clamped Runs leave pending events intact.
	for i := 0; i < 2; i++ {
		id := i
		remaining := 12
		if i == 1 {
			remaining = 1 << 30
		}
		var stop func()
		stop = k.KEvery(0.3+0.45*float64(i), func() {
			log = append(log, logEntry{id, k.KNow()})
			remaining--
			if remaining == 0 {
				stop()
			}
		})
	}

	k.KRun(7)
	log = append(log, logEntry{-1, k.KNow()})
	k.KRun(7) // immediate re-run at the same horizon: nothing new fires
	log = append(log, logEntry{-2, k.KNow()})
	k.KRun(15)
	log = append(log, logEntry{-3, k.KNow()})
	return log
}

func TestKernelDifferentialRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		got := driveKernel(simKernel{New(999)}, seed)
		want := driveKernel(&refKernel{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trajectory lengths differ: kernel %d vs reference %d",
				seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: trajectories diverge at step %d: kernel %+v vs reference %+v",
					seed, i, got[i], want[i])
			}
		}
	}
}

// --- Zero-allocation contracts (DESIGN.md §10) ---

// TestZeroAllocSchedule asserts the steady-state schedule+fire path
// allocates nothing: slot from the free list, heap in place, callback
// invoked, slot released.
//
//amoeba:alloctest sim.Simulator.At sim.Simulator.After sim.Simulator.schedule
//amoeba:alloctest sim.Simulator.Run sim.Simulator.alloc sim.Simulator.release
//amoeba:alloctest sim.Simulator.before sim.Simulator.push sim.Simulator.popMin
//amoeba:alloctest sim.Simulator.siftUp sim.Simulator.siftDown
func TestZeroAllocSchedule(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 256; i++ { // warm the slab, free list and heap
		s.After(1, fn)
	}
	s.Run(1e6)

	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, fn)
		s.At(s.Now()+2, fn)
		s.Run(s.Now() + 3)
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %.1f objects per event in steady state, want 0", allocs)
	}
}

// TestZeroAllocEveryTick asserts a recurring ticker's firings reuse its
// slot: ticks cost no allocation after the initial schedule. The ticker
// re-queue path shares Run/push/siftDown with the one-shot test above.
//
//amoeba:alloctest sim.Simulator.Run
func TestZeroAllocEveryTick(t *testing.T) {
	s := New(1)
	stop := s.Every(1, func() {})
	defer stop()
	s.Run(64) // warm up: heap sized, slot in place

	horizon := s.Now()
	allocs := testing.AllocsPerRun(100, func() {
		horizon += 16
		s.Run(horizon)
	})
	if allocs != 0 {
		t.Errorf("Every ticks allocate %.3f objects per 16 ticks, want 0", allocs)
	}
}

// TestZeroAllocCancel asserts the cancel path is allocation-free in
// steady state, including the bulk compaction sweep: cancelling 64 of 64
// queued events trips maybeCompact's dead-majority threshold on every
// run, so compact's heap rebuild and slot releases execute inside the
// AllocsPerRun window.
//
//amoeba:alloctest sim.EventHandle.Cancel sim.Simulator.maybeCompact sim.Simulator.compact
func TestZeroAllocCancel(t *testing.T) {
	s := New(1)
	fn := func() {}
	var handles [64]EventHandle
	churn := func() {
		for i := range handles {
			handles[i] = s.After(float64(i+1), fn)
		}
		for i := range handles {
			handles[i].Cancel()
		}
		s.Run(s.Now() + 128)
	}
	for i := 0; i < 4; i++ { // warm slab, free list and heap capacity
		churn()
	}
	if s.Cancelled() == 0 {
		t.Fatal("warm-up cancelled nothing; the churn harness is broken")
	}

	allocs := testing.AllocsPerRun(100, churn)
	if allocs != 0 {
		t.Errorf("schedule+cancel+compact allocates %.2f objects per 64-event batch, want 0", allocs)
	}
}
