package sim

import "testing"

// Kernel micro-benchmarks. These are the smoke-gated set pinned in
// BENCH_sim.json: schedule/fire throughput, cancel throughput, recurring
// tick cost, and a dense mixed queue. They use a shared no-capture
// callback so the numbers measure the kernel, not the caller's closures,
// and run in steady state (bounded queue) so allocs/op reflects the
// per-event cost rather than one-time slab growth.

var benchFired int

func benchFn() { benchFired++ }

// BenchmarkSchedule measures the At+fire round trip: events scheduled at
// spread offsets, drained in batches of 1024.
func BenchmarkSchedule(b *testing.B) {
	s := New(1)
	var offs [1024]float64
	rng := NewRNG(3)
	for i := range offs {
		offs[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	pending := 0
	for n := 0; n < b.N; n++ {
		s.At(s.Now()+Time(offs[n&1023]), benchFn)
		if pending++; pending == 1024 {
			s.Run(s.Now() + 200)
			pending = 0
		}
	}
	s.Run(s.Now() + 200)
}

// BenchmarkCancel measures schedule+cancel pairs. The kernel must keep
// the queue bounded (lazy compaction) even though nothing ever fires.
func BenchmarkCancel(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h := s.At(s.Now()+1, benchFn)
		h.Cancel()
	}
	s.Run(s.Now() + 2)
}

// BenchmarkEvery measures the recurring-tick path: one ticker, b.N ticks.
func BenchmarkEvery(b *testing.B) {
	s := New(1)
	stop := s.Every(1, benchFn)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(Time(b.N))
}

// BenchmarkRunDense measures a dense mixed queue: batches of 4096 events
// at pseudo-random offsets, the shape the platform models produce at
// high load.
func BenchmarkRunDense(b *testing.B) {
	const batch = 4096
	s := New(1)
	rng := NewRNG(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < batch; j++ {
			s.At(base+Time(rng.Float64()*100), benchFn)
		}
		s.Run(base + 200)
	}
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}
