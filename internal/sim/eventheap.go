package sim

// Event storage and priority queue. Events live in a flat slab indexed by
// int32 with an explicit free list; the pending queue is an intrusive
// 4-ary min-heap over slab indices ordered by (at, seq). Nothing here
// allocates in steady state: slab, free list and heap all reuse their
// backing arrays, so the per-event cost is a few cache lines of sifting
// instead of an allocation plus interface-dispatched container/heap
// calls. See DESIGN.md §10 for the invariants.

// event is one slab slot. A slot is exactly one of: free (on the free
// list), queued (in the heap), or mid-fire (popped, fn running). gen
// increments every time the slot is released, which is what makes stale
// EventHandles (the ABA problem of slot reuse) harmless.
type event struct {
	at     Time
	seq    uint64 // tie-break so equal-time events fire in schedule order
	fn     func()
	period float64 // seconds; > 0 marks a recurring (Every) event
	gen    uint32
	queued bool // in the heap
	dead   bool // cancelled; released when reached (or compacted away)
	free   bool // on the free list
}

// alloc takes a slot from the free list (or grows the slab) and
// initialises it as a queued event. The slot's generation is preserved:
// it only advances on release.
//
//amoeba:noalloc
func (s *Simulator) alloc(at Time, fn func(), period float64) int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slab = append(s.slab, event{}) //amoeba:allowalloc(slab growth is amortised; steady state reuses the free list)
		idx = int32(len(s.slab) - 1)
	}
	ev := &s.slab[idx]
	ev.at = at
	ev.seq = s.seq
	s.seq++
	ev.fn = fn
	ev.period = period
	ev.queued = true
	ev.dead = false
	ev.free = false
	return idx
}

// release returns a slot to the free list and bumps its generation so
// outstanding handles to the old occupant become no-ops. The callback is
// dropped so the slab does not retain dead closures.
//
//amoeba:noalloc
func (s *Simulator) release(idx int32) {
	ev := &s.slab[idx]
	ev.fn = nil
	ev.period = 0
	ev.queued = false
	ev.dead = false
	ev.free = true
	ev.gen++
	s.free = append(s.free, idx) //amoeba:allowalloc(free-list capacity tracks the slab; growth is amortised)
}

// before reports whether slab[a] fires before slab[b]: earlier time
// first, schedule order (seq) breaking ties.
//
//amoeba:noalloc
func (s *Simulator) before(a, b int32) bool {
	ea, eb := &s.slab[a], &s.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push inserts a slab index into the heap.
//
//amoeba:noalloc
func (s *Simulator) push(idx int32) {
	s.heap = append(s.heap, idx) //amoeba:allowalloc(heap capacity tracks peak pending events; growth is amortised)
	s.siftUp(len(s.heap) - 1)
}

// popMin removes and returns the heap root. The caller must have checked
// the heap is non-empty.
//
//amoeba:noalloc
func (s *Simulator) popMin() int32 {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return top
}

// siftUp restores the heap property upward from position i, moving the
// hole rather than swapping (one write per level).
//
//amoeba:noalloc
func (s *Simulator) siftUp(i int) {
	h := s.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !s.before(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = idx
}

// siftDown restores the heap property downward from position i. The
// 4-ary layout halves the tree depth of a binary heap; the extra child
// comparisons stay within one or two cache lines of int32s.
//
//amoeba:noalloc
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	idx := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.before(h[c], h[best]) {
				best = c
			}
		}
		if !s.before(h[best], idx) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = idx
}

// maybeCompact sweeps cancelled events out of the heap once they exceed
// half of it. Cancel is O(1) (a dead mark); the sweep keeps a
// pathological schedule/cancel workload from growing the queue without
// bound while costing amortised O(1) per cancellation.
//
//amoeba:noalloc
func (s *Simulator) maybeCompact() {
	if s.deadQueued >= 16 && s.deadQueued*2 > len(s.heap) {
		s.compact()
	}
}

// compact rebuilds the heap without its dead entries, releasing their
// slots. Pop order is unaffected: it is fully determined by the (at, seq)
// total order, not by the heap's internal layout.
//
//amoeba:noalloc
func (s *Simulator) compact() {
	live := s.heap[:0]
	for _, idx := range s.heap {
		if s.slab[idx].dead {
			s.release(idx)
		} else {
			live = append(live, idx) //amoeba:allowalloc(appends into heap[:0]; live set never exceeds existing capacity)
		}
	}
	s.heap = live
	for i := (len(live) - 2) >> 2; i >= 0; i-- {
		s.siftDown(i)
	}
	s.deadQueued = 0
}
