package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random number generator based
// on splitmix64. Simulations must be reproducible across runs and across
// machines, so all stochastic components draw from an explicitly seeded RNG
// rather than from math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator. The child stream is
// decorrelated from the parent by mixing the parent's next output.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
// The reduction uses Lemire's multiply-shift method with rejection: a
// plain modulo maps 2^64 inputs onto n buckets unevenly whenever n does
// not divide 2^64, biasing small buckets by up to n/2^64. The widening
// multiply picks the bucket, and the rare draws that land in the uneven
// remainder zone (fewer than n of 2^64 values) are redrawn.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) mod n: first unbiased low word
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
