package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child streams coincide %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	const rate = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for name, fn := range map[string]func(){
		"Intn": func() { r.Intn(0) },
		"Exp":  func() { r.Exp(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid argument did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRNGUniformRangeProperty(t *testing.T) {
	r := NewRNG(11)
	f := func(loRaw, span uint16) bool {
		lo := float64(loRaw)
		hi := lo + float64(span) + 1
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v after Run(10), want 10", s.Now())
	}
}

func TestSimulatorEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSimulatorHorizon(t *testing.T) {
	s := New(1)
	fired := false
	s.At(100, func() { fired = true })
	n := s.Run(50)
	if fired || n != 0 {
		t.Fatal("event beyond horizon fired")
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	// Continuing the run past the event's time must fire it.
	s.Run(200)
	if !fired {
		t.Fatal("event did not fire on second Run")
	}
}

func TestSimulatorCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.At(5, func() { fired = true })
	h.Cancel()
	s.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSimulatorAfterAndNesting(t *testing.T) {
	s := New(1)
	var times []Time
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested scheduling produced %v, want [1 3]", times)
	}
}

func TestSimulatorPastPanics(t *testing.T) {
	s := New(1)
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run(10)
}

func TestSimulatorHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(Time(i), func() {
			count++
			if i == 3 {
				s.Halt()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Fatalf("fired %d events after Halt at 3rd, want 3", count)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v after halt, want 3", s.Now())
	}
}

func TestSimulatorEvery(t *testing.T) {
	s := New(1)
	var ticks []Time
	stop := s.Every(2, func() { ticks = append(ticks, s.Now()) })
	s.At(7, func() { stop() })
	s.Run(20)
	want := []Time{2, 4, 6}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestSimulatorDeterminismProperty(t *testing.T) {
	// The same seed and schedule must produce the same trajectory.
	run := func(seed uint64) []float64 {
		s := New(seed)
		var out []float64
		var spawn func()
		spawn = func() {
			v := s.RNG().Exp(1.0)
			out = append(out, float64(s.Now()), v)
			if len(out) < 40 {
				s.After(v, spawn)
			}
		}
		s.After(0.1, spawn)
		s.Run(1e9)
		return out
	}
	a, b := run(1234), run(1234)
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkSimulatorSchedule(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Time(i), func() {})
	}
	s.Run(Time(b.N + 1))
}
