// Package sim provides a deterministic discrete-event simulation kernel.
//
// All platform models in this repository (the serverless container pool,
// the IaaS VM groups, arrival processes, the contention monitor's sampling
// daemon, ...) are expressed as events on a single virtual clock. The
// kernel is single-threaded and deterministic: given the same seed and the
// same event schedule it produces bit-identical results, which is what
// makes the paper's experiments reproducible as tests and benchmarks.
// Parallelism in this repository happens *across* simulations (parameter
// sweeps fan out one simulation per goroutine), never inside one.
//
// The kernel is allocation-free in steady state: events live in a
// generation-counted slab behind an intrusive 4-ary index heap
// (eventheap.go), recurring tickers reuse their slot across ticks, and
// cancellation is an O(1) dead mark with a lazy compaction sweep. The
// performance contracts are documented in DESIGN.md §10 and pinned by
// BENCH_sim.json.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration converts a virtual duration in seconds to time.Duration for
// human-readable reporting.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("%.3fs", float64(t))
}

// EventHandle allows a scheduled event to be cancelled before it fires.
// The zero value is valid and cancels nothing. A handle is made ABA-safe
// by the slot's generation counter: once its event has fired (or been
// cancelled) and the slot is reused, the stale handle no-ops.
type EventHandle struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is O(1): the event is
// marked dead in place and skipped (or swept out in bulk) later.
//
//amoeba:noalloc
func (h EventHandle) Cancel() {
	s := h.s
	if s == nil {
		return
	}
	ev := &s.slab[h.idx]
	if ev.gen != h.gen || ev.free || ev.dead {
		return
	}
	ev.dead = true
	s.cancelled++
	if ev.queued {
		s.deadQueued++
		s.maybeCompact()
	}
}

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now  Time
	slab []event // all event slots; indexed by the heap and the free list
	free []int32 // released slots available for reuse
	heap []int32 // pending events, 4-ary min-heap by (at, seq)
	seq  uint64
	rng  *RNG

	fired      uint64
	cancelled  uint64
	deadQueued int // cancelled events still occupying heap entries
	halted     bool
}

// New returns a simulator with its clock at zero, seeded with seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// RNG returns the simulator's root random source. Components should call
// Split to derive private streams so that adding a component does not
// perturb the draws seen by the others.
func (s *Simulator) RNG() *RNG { return s.rng }

// Events returns the number of events fired so far.
func (s *Simulator) Events() uint64 { return s.fired }

// Cancelled returns the number of events cancelled so far (effective
// cancels only; no-op cancels of fired or already-dead events don't
// count).
func (s *Simulator) Cancelled() uint64 { return s.cancelled }

// schedule validates the firing time and enqueues one event. period > 0
// marks it recurring. It panics if at precedes the clock or is not
// finite — both always indicate a model bug.
//
//amoeba:noalloc
func (s *Simulator) schedule(at Time, fn func(), period float64) EventHandle {
	if at < s.now {
		//amoeba:allowalloc(cold panic path: message boxing fires only on a broken model invariant)
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		//amoeba:allowalloc(cold panic path: message boxing fires only on a broken model invariant)
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", float64(at)))
	}
	idx := s.alloc(at, fn, period)
	s.push(idx)
	return EventHandle{s: s, idx: idx, gen: s.slab[idx].gen}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it always indicates a model bug.
//
//amoeba:noalloc
func (s *Simulator) At(at Time, fn func()) EventHandle {
	return s.schedule(at, fn, 0)
}

// After schedules fn to run delay seconds from now. It panics if the
// delay is negative.
//
//amoeba:noalloc
func (s *Simulator) After(delay float64, fn func()) EventHandle {
	if delay < 0 {
		//amoeba:allowalloc(cold panic path: message boxing fires only on a broken model invariant)
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.schedule(s.now+Time(delay), fn, 0)
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run fires events in time order until the queue is empty or the clock
// would pass horizon. It returns the number of events fired during the
// call. The clock is left at min(horizon, time of last event); events
// scheduled beyond the horizon remain queued. It panics if a recurring
// event's next firing time overflows to a non-finite value.
//
//amoeba:noalloc
func (s *Simulator) Run(horizon Time) uint64 {
	var fired uint64
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		top := s.heap[0]
		ev := &s.slab[top]
		if ev.at > horizon {
			break
		}
		s.popMin()
		ev.queued = false
		if ev.dead {
			s.deadQueued--
			s.release(top)
			continue
		}
		s.now = ev.at
		fn := ev.fn
		fn()
		fired++
		s.fired++
		// fn may have scheduled events and grown the slab: re-resolve the
		// slot before touching it again.
		ev = &s.slab[top]
		if ev.period > 0 && !ev.dead {
			// Recurring ticker: reuse the slot, fresh (at, seq). The seq is
			// assigned after fn ran, so events fn scheduled fire before the
			// next tick at equal times — exactly the order the old
			// closure-based ticker produced.
			at := s.now + Time(ev.period)
			if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
				//amoeba:allowalloc(cold panic path: message boxing fires only on a broken model invariant)
				panic(fmt.Sprintf("sim: scheduling at non-finite time %v", float64(at)))
			}
			ev.at = at
			ev.seq = s.seq
			s.seq++
			ev.queued = true
			s.push(top)
		} else {
			s.release(top)
		}
	}
	if s.now < horizon && !s.halted {
		s.now = horizon
	}
	return fired
}

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.heap) }

// Every schedules fn at the given period, starting one period from now,
// until the returned stop function is called. fn observes the simulator's
// clock. The ticker owns a single event slot for its whole lifetime: each
// firing re-queues the same slot with a fresh (at, seq), so a tick costs
// no allocation. It panics if the period is not positive.
func (s *Simulator) Every(period float64, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	h := s.schedule(s.now+Time(period), fn, period)
	return h.Cancel
}
