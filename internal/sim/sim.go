// Package sim provides a deterministic discrete-event simulation kernel.
//
// All platform models in this repository (the serverless container pool,
// the IaaS VM groups, arrival processes, the contention monitor's sampling
// daemon, ...) are expressed as events on a single virtual clock. The
// kernel is single-threaded and deterministic: given the same seed and the
// same event schedule it produces bit-identical results, which is what
// makes the paper's experiments reproducible as tests and benchmarks.
// Parallelism in this repository happens *across* simulations (parameter
// sweeps fan out one simulation per goroutine), never inside one.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration converts a virtual duration in seconds to time.Duration for
// human-readable reporting.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("%.3fs", float64(t))
}

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events fire in schedule order
	fn   func()
	dead bool
}

// EventHandle allows a scheduled event to be cancelled before it fires.
type EventHandle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h EventHandle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *RNG
	fired  uint64
	halted bool
}

// New returns a simulator with its clock at zero, seeded with seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// RNG returns the simulator's root random source. Components should call
// Split to derive private streams so that adding a component does not
// perturb the draws seen by the others.
func (s *Simulator) RNG() *RNG { return s.rng }

// Events returns the number of events fired so far.
func (s *Simulator) Events() uint64 { return s.fired }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: it always indicates a model bug.
func (s *Simulator) At(at Time, fn func()) EventHandle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", float64(at)))
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventHandle{ev: ev}
}

// After schedules fn to run delay seconds from now. It panics if the
// delay is negative.
func (s *Simulator) After(delay float64, fn func()) EventHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+Time(delay), fn)
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run fires events in time order until the queue is empty or the clock
// would pass horizon. It returns the number of events fired during the
// call. The clock is left at min(horizon, time of last event); events
// scheduled beyond the horizon remain queued.
func (s *Simulator) Run(horizon Time) uint64 {
	var fired uint64
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		if next.dead {
			continue
		}
		s.now = next.at
		next.fn()
		fired++
		s.fired++
	}
	if s.now < horizon && !s.halted {
		s.now = horizon
	}
	return fired
}

// Pending returns the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Every schedules fn at the given period, starting one period from now,
// until the returned stop function is called. fn observes the simulator's
// clock; the ticker reschedules itself after each firing.
// It panics if the period is not positive.
func (s *Simulator) Every(period float64, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	stopped := false
	var tick func()
	var handle EventHandle
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			handle = s.After(period, tick)
		}
	}
	handle = s.After(period, tick)
	return func() {
		stopped = true
		handle.Cancel()
	}
}
