package sim

import "testing"

// The golden streams pin the generator's exact output for seed 42. Any
// change to the splitmix64 core or the Intn reduction shifts every
// simulation result in the repo, so a drift here must be a deliberate,
// reviewed decision — update the constants only alongside an explanation
// of why the stream moved.

func TestGoldenUint64Stream(t *testing.T) {
	want := []uint64{
		0xbdd732262feb6e95,
		0x28efe333b266f103,
		0x47526757130f9f52,
		0x581ce1ff0e4ae394,
		0x09bc585a244823f2,
		0xde4431fa3c80db06,
		0x37e9671c45376d5d,
		0xccf635ee9e9e2fa4,
	}
	r := NewRNG(42)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 draw %d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestGoldenIntnStream(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{10, []int{7, 1, 2, 3, 0, 8, 2, 8, 3, 6, 2, 4, 5, 5, 6, 2}},
		{7, []int{5, 1, 1, 2, 0, 6, 1, 5, 2, 4, 1, 3, 3, 3, 4, 1}},
	}
	for _, c := range cases {
		r := NewRNG(42)
		for i, w := range c.want {
			if got := r.Intn(c.n); got != w {
				t.Fatalf("Intn(%d) draw %d = %d, want %d", c.n, i, got, w)
			}
		}
	}
}

// TestIntnRange exercises the rejection path's bounds across sizes that
// stress the reduction: tiny n, a power of two, a Mersenne-like odd n,
// and values near the int32/int64 boundaries.
func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 7, 64, 1 << 31, (1 << 62) + 1} {
		for i := 0; i < 2000; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

// TestIntnUniform is a chi-square goodness-of-fit check on Intn(k). The
// old modulo reduction's bias (~n/2^64) is far too small to trip any
// sample-based test; what this protects against is a botched rejection
// loop that skews whole buckets.
func TestIntnUniform(t *testing.T) {
	const k = 13
	const draws = 130000
	var counts [k]int
	r := NewRNG(12345)
	for i := 0; i < draws; i++ {
		counts[r.Intn(k)]++
	}
	expected := float64(draws) / k
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9th percentile of chi-square with k-1 = 12 degrees of freedom.
	// A correct generator fails this roughly once per thousand seeds; the
	// seed is fixed, so a failure means the reduction is broken.
	if chi2 > 32.909 {
		t.Fatalf("chi-square = %v over 32.909 (counts %v)", chi2, counts)
	}
}
