package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/report"
)

// Fig14Row compares Amoeba and Amoeba-NoM resource usage for one
// benchmark, both normalised to Nameko.
type Fig14Row struct {
	Benchmark string
	// CPU and memory usage relative to Nameko.
	AmoebaCPU, NoMCPU float64
	AmoebaMem, NoMMem float64
	// Increase factors NoM/Amoeba (the paper quotes up to 1.77x CPU and
	// 2.38x memory).
	CPUIncrease, MemIncrease float64
	BothMeetQoS              bool
}

// Fig14Result reproduces paper Fig. 14: disabling the PCA correction
// (Amoeba-NoM) keeps the pessimistic additive weights w₀, which delays
// the switch to serverless and raises resource usage.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 runs the experiment on the suite.
func Fig14(s *Suite) *Fig14Result {
	s.Prefetch(core.VariantAmoeba, core.VariantAmoebaNoM, core.VariantNameko)
	res := &Fig14Result{}
	for _, prof := range s.Cfg.benchmarks() {
		am := s.Service(prof, core.VariantAmoeba)
		nom := s.Service(prof, core.VariantAmoebaNoM)
		nk := s.Service(prof, core.VariantNameko)
		row := Fig14Row{
			Benchmark:   prof.Name,
			AmoebaCPU:   ratio(am.TotalUsage().CPU, nk.TotalUsage().CPU),
			NoMCPU:      ratio(nom.TotalUsage().CPU, nk.TotalUsage().CPU),
			AmoebaMem:   ratio(am.TotalUsage().MemMB, nk.TotalUsage().MemMB),
			NoMMem:      ratio(nom.TotalUsage().MemMB, nk.TotalUsage().MemMB),
			BothMeetQoS: am.Collector.QoSMet() && nom.Collector.QoSMet(),
		}
		row.CPUIncrease = ratio(row.NoMCPU, row.AmoebaCPU)
		row.MemIncrease = ratio(row.NoMMem, row.AmoebaMem)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result as a table.
func (r *Fig14Result) Render() *report.Table {
	t := report.NewTable("Fig. 14: Amoeba vs Amoeba-NoM usage (normalised to Nameko)",
		"benchmark", "amoeba_cpu", "nom_cpu", "cpu_increase", "amoeba_mem", "nom_mem", "mem_increase", "qos_met")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.AmoebaCPU, row.NoMCPU, row.CPUIncrease,
			row.AmoebaMem, row.NoMMem, row.MemIncrease, row.BothMeetQoS)
	}
	return t
}
