package experiments

import (
	"strings"
	"testing"

	"amoeba/internal/workload"
)

func TestDecisionAudit(t *testing.T) {
	skipIfRace(t)
	cfg := quickCfg()
	cfg.DayLength = 900
	r := DecisionAudit(cfg, workload.DD())
	if r.Events == 0 {
		t.Fatal("audit run emitted no events")
	}
	if r.Decisions.Rows() == 0 {
		t.Error("decision-audit table is empty")
	}
	if r.Switches.Rows() == 0 {
		t.Error("switch-span table is empty over a diurnal day")
	}
	out := r.Decisions.String()
	for _, col := range []string{"verdict", "reason", "mu", "admissible_qps"} {
		if !strings.Contains(out, col) {
			t.Errorf("decision table missing column %q", col)
		}
	}
}
