package experiments

import (
	"amoeba/internal/arrival"
	"amoeba/internal/metrics"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// Fig04Row is one benchmark's warm-path latency anatomy on the serverless
// platform, as fractions of end-to-end latency.
type Fig04Row struct {
	Benchmark    string
	Mean         metrics.Breakdown // absolute seconds
	ProcessingF  float64
	CodeLoadF    float64
	ExecF        float64
	PostF        float64
	OverheadFrac float64 // everything but Exec — the paper's 10–45%
}

// Fig04Result reproduces paper Fig. 4: the latency breakdown of queries
// executed on the serverless platform (queueing and cold start excluded,
// exactly as the paper's measurement).
type Fig04Result struct {
	Rows []Fig04Row
}

// Fig04 runs the experiment. It panics if the config fails validation.
func Fig04(cfg Config) *Fig04Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	res := &Fig04Result{}
	for _, prof := range cfg.benchmarks() {
		res.Rows = append(res.Rows, fig04One(cfg, prof))
	}
	return res
}

func fig04One(cfg Config, prof workload.Profile) Fig04Row {
	s := sim.New(cfg.Seed ^ hash(prof.Name+"/fig4"))
	pool := serverless.New(s, serverless.DefaultConfig())
	coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
	pool.Register(prof, func(r metrics.QueryRecord) {
		if r.Breakdown.ColdStart == 0 && r.Breakdown.Queue == 0 {
			coll.Observe(r) // warm, un-queued path only (paper's setup)
		}
	}, serverless.WithNMax(64))

	load := prof.PeakQPS * 0.3
	pool.Prewarm(prof.Name, int(load*prof.ExecTime*3)+2, nil)
	gen := arrival.New(s, trace.Constant{QPS: load}, func(sim.Time) { pool.Invoke(prof.Name) })
	s.At(8, func() { gen.Start() })
	dur := 180.0
	if cfg.Quick {
		dur = 90
	}
	s.Run(sim.Time(8 + dur))

	mb := coll.MeanBreakdown()
	total := mb.Total()
	return Fig04Row{
		Benchmark:    prof.Name,
		Mean:         mb,
		ProcessingF:  mb.Processing / total,
		CodeLoadF:    mb.CodeLoad / total,
		ExecF:        mb.Exec / total,
		PostF:        mb.Post / total,
		OverheadFrac: (total - mb.Exec) / total,
	}
}

// Render formats the result as a table.
func (r *Fig04Result) Render() *report.Table {
	t := report.NewTable("Fig. 4: latency breakdown on the serverless platform",
		"benchmark", "processing", "code_load", "execution", "result_post", "overhead_total")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, pct(row.ProcessingF), pct(row.CodeLoadF),
			pct(row.ExecF), pct(row.PostF), pct(row.OverheadFrac))
	}
	return t
}
