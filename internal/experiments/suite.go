package experiments

import (
	"fmt"
	"sync"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// Suite memoises full scenario runs per (benchmark, variant) so the
// figures that share runs (Fig. 10/11 share Amoeba+Nameko+OpenWhisk;
// Fig. 12/13 reuse the Amoeba runs; Fig. 14 adds Amoeba-NoM) do not
// re-simulate.
//
// Concurrent callers of the same key are single-flighted: the first
// claims an in-flight latch and simulates, the rest block on the latch
// and reuse its result. Without the latch, two goroutines racing past
// the memo check would both run the (seconds-long) simulation and one
// result would be discarded.
type Suite struct {
	Cfg Config

	mu       sync.Mutex
	runs     map[string]*core.Result
	inflight map[string]chan struct{}

	// run performs one simulation; tests substitute it to count
	// invocations. Defaults to core.Run.
	run func(core.Scenario) *core.Result
}

// NewSuite creates an empty suite. It panics if the config fails
// validation.
func NewSuite(cfg Config) *Suite {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Suite{
		Cfg:      cfg,
		runs:     make(map[string]*core.Result),
		inflight: make(map[string]chan struct{}),
		run:      core.Run,
	}
}

// Run returns the (memoised) result of one benchmark under one variant.
func (s *Suite) Run(prof workload.Profile, v core.Variant) *core.Result {
	key := fmt.Sprintf("%s|%d", prof.Name, v)
	s.mu.Lock()
	for {
		if r, ok := s.runs[key]; ok {
			s.mu.Unlock()
			return r
		}
		ch, busy := s.inflight[key]
		if !busy {
			break
		}
		// Another goroutine is simulating this key: wait for its latch,
		// then re-check the memo (it holds the result — unless the
		// runner panicked, in which case this goroutine takes over).
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	ch := make(chan struct{})
	s.inflight[key] = ch
	s.mu.Unlock()

	var r *core.Result
	defer func() {
		// Release the latch even if the run panics, so waiters retry
		// instead of blocking forever.
		s.mu.Lock()
		if r != nil {
			s.runs[key] = r
		}
		delete(s.inflight, key)
		s.mu.Unlock()
		close(ch)
	}()

	// Profiles are memoised globally; the run itself is sequential and
	// deterministic. Simulate outside the lock so concurrent callers can
	// work on different keys.
	r = s.run(s.Cfg.scenario(prof, v))
	return r
}

// Service extracts the benchmark's own result from a run.
func (s *Suite) Service(prof workload.Profile, v core.Variant) *core.ServiceResult {
	return s.Run(prof, v).Services[prof.Name]
}

// Prefetch runs the given variants for every benchmark concurrently, one
// goroutine per (benchmark, variant) — simulations are independent.
func (s *Suite) Prefetch(variants ...core.Variant) {
	var wg sync.WaitGroup
	for _, prof := range s.Cfg.benchmarks() {
		for _, v := range variants {
			prof, v := prof, v
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Run(prof, v)
			}()
		}
	}
	wg.Wait()
}
