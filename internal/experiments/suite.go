package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// sweepQueueCap bounds the sweep driver's job and result queues. The
// full evaluation is |benchmarks| x |variants| ~ two dozen keys, so one
// named constant comfortably holds a whole sweep without the feeder
// ever blocking on a slow worker.
const sweepQueueCap = 64

// Suite memoises full scenario runs per (benchmark, variant) so the
// figures that share runs (Fig. 10/11 share Amoeba+Nameko+OpenWhisk;
// Fig. 12/13 reuse the Amoeba runs; Fig. 14 adds Amoeba-NoM) do not
// re-simulate.
//
// Concurrent callers of the same key are single-flighted: the first
// claims the flight and simulates, the rest block on the flight's latch
// and share its outcome. A panicking run is latched too — the panic is
// captured as an error naming the key and memoised, so waiters (and
// every later caller) observe the failure instead of retrying a
// simulation that just proved it can crash or deadlocking on a latch
// nobody will release.
//
// Parallelism lives strictly above the kernel: each simulation is
// sequential and deterministic, the sweep driver only spreads distinct
// keys across workers, and results land in a keyed memo — so every
// table, CSV, and JSONL artifact is byte-identical for a given seed
// whatever the worker count.
type Suite struct {
	Cfg Config

	// Parallel is the sweep worker count; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Parallel int

	// Shards, when positive, runs every simulation on the sharded
	// kernel (core.RunSharded) with that worker count instead of the
	// sequential core.Run. Sharded results are deterministic per seed
	// and identical for every shard count, but not byte-comparable to
	// sequential runs (the cells couple only at epoch barriers), so a
	// suite must keep one mode for its whole lifetime.
	Shards int

	mu      sync.Mutex
	flights map[string]*flight

	// run performs one simulation; tests substitute it to count
	// invocations. Defaults to core.Run.
	run func(core.Scenario) *core.Result
}

// flight is one single-flighted simulation: a latch plus the memoised
// outcome, valid to read once done is closed.
type flight struct {
	done chan struct{}
	r    *core.Result
	err  error
}

// NewSuite creates an empty suite. It panics if the config fails
// validation.
func NewSuite(cfg Config) *Suite {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Suite{
		Cfg:     cfg,
		flights: make(map[string]*flight),
		run:     core.Run,
	}
}

// Run returns the (memoised) result of one benchmark under one variant.
// If the simulation fails, Run panics with the memoised keyed error;
// the table drivers treat a crashed simulation as fatal. Use result for
// the error-returning form.
func (s *Suite) Run(prof workload.Profile, v core.Variant) *core.Result {
	r, err := s.result(prof, v)
	if err != nil {
		panic(err)
	}
	return r
}

// result is the singleflight core: one flight per key, its outcome —
// result or captured panic — memoised for waiters and later callers
// alike.
//
// The latch and memo are audited for cross-shard safety: the mutex
// guards only map access, never a blocking operation (lockcheck), and
// the flight latch is written once before close and read only after
// (the close is the happens-before edge). Sweep workers are the
// concurrent callers.
//
//amoeba:shardsafe singleflight latch audited: mutex never held across a block, flight fields sealed by close(done)
func (s *Suite) result(prof workload.Profile, v core.Variant) (*core.Result, error) {
	key := fmt.Sprintf("%s|%d", prof.Name, v)
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.r, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	func() {
		defer func() {
			if p := recover(); p != nil {
				f.err = fmt.Errorf("experiments: run %s panicked: %v", key, p)
			}
			close(f.done)
		}()
		// Profiles are memoised globally; the run itself is sequential
		// and deterministic. Simulate outside the lock so concurrent
		// callers can work on different keys.
		if s.Shards > 0 {
			f.r = core.RunSharded(s.Cfg.scenario(prof, v), s.Shards)
		} else {
			f.r = s.run(s.Cfg.scenario(prof, v))
		}
	}()
	return f.r, f.err
}

// Service extracts the benchmark's own result from a run.
func (s *Suite) Service(prof workload.Profile, v core.Variant) *core.ServiceResult {
	return s.Run(prof, v).Services[prof.Name]
}

// sweepJob is one (benchmark, variant) key, tagged with its canonical
// position so outcomes can be merged in sweep order.
type sweepJob struct {
	idx  int
	prof workload.Profile
	v    core.Variant
}

// sweepOutcome is one worker's report for one job.
type sweepOutcome struct {
	idx int
	err error
}

// Sweep runs every benchmark under every given variant through a
// bounded worker pool and reports the failures, joined in canonical
// (benchmark x variant) order with each error naming its key. The
// worker count is Parallel (default GOMAXPROCS), capped at the job
// count; results land in the keyed memo, so the artifacts rendered from
// a swept suite are byte-identical to a sequential run.
func (s *Suite) Sweep(variants ...core.Variant) error {
	var all []sweepJob
	for _, prof := range s.Cfg.benchmarks() {
		for _, v := range variants {
			all = append(all, sweepJob{idx: len(all), prof: prof, v: v})
		}
	}
	if len(all) == 0 {
		return nil
	}
	workers := s.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(all) {
		workers = len(all)
	}

	jobs := make(chan sweepJob, sweepQueueCap)
	results := make(chan sweepOutcome, sweepQueueCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.sweepWorker(jobs, results)
		}()
	}
	go func() {
		for _, j := range all {
			jobs <- j
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	errs := make([]error, len(all))
	for out := range results {
		errs[out.idx] = out.err
	}
	return errors.Join(errs...) // nil errors are dropped; order is canonical
}

// sweepWorker drains the job queue through the singleflight memo. It is
// a shard: all shared state it touches sits behind the audited
// singleflight boundary, and its only channels are the bounded queues
// the driver handed it.
//
//amoeba:shard
//amoeba:bounded jobs results
func (s *Suite) sweepWorker(jobs <-chan sweepJob, results chan<- sweepOutcome) {
	for j := range jobs {
		_, err := s.result(j.prof, j.v)
		results <- sweepOutcome{idx: j.idx, err: err}
	}
}

// Prefetch warms the memo for the given variants across every benchmark
// via the sweep driver, preserving its historical contract of panicking
// on a failed run; use Sweep for the error-returning form.
func (s *Suite) Prefetch(variants ...core.Variant) {
	if err := s.Sweep(variants...); err != nil {
		panic(err)
	}
}
