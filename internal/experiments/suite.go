package experiments

import (
	"fmt"
	"sync"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// Suite memoises full scenario runs per (benchmark, variant) so the
// figures that share runs (Fig. 10/11 share Amoeba+Nameko+OpenWhisk;
// Fig. 12/13 reuse the Amoeba runs; Fig. 14 adds Amoeba-NoM) do not
// re-simulate.
type Suite struct {
	Cfg Config

	mu   sync.Mutex
	runs map[string]*core.Result
}

// NewSuite creates an empty suite. It panics if the config fails
// validation.
func NewSuite(cfg Config) *Suite {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Suite{Cfg: cfg, runs: make(map[string]*core.Result)}
}

// Run returns the (memoised) result of one benchmark under one variant.
func (s *Suite) Run(prof workload.Profile, v core.Variant) *core.Result {
	key := fmt.Sprintf("%s|%d", prof.Name, v)
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	// Profiles are memoised globally; the run itself is sequential and
	// deterministic. Build outside the lock so concurrent callers can
	// work on different keys.
	r := core.Run(s.Cfg.scenario(prof, v))

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.runs[key]; ok {
		return prev
	}
	s.runs[key] = r
	return r
}

// Service extracts the benchmark's own result from a run.
func (s *Suite) Service(prof workload.Profile, v core.Variant) *core.ServiceResult {
	return s.Run(prof, v).Services[prof.Name]
}

// Prefetch runs the given variants for every benchmark concurrently, one
// goroutine per (benchmark, variant) — simulations are independent.
func (s *Suite) Prefetch(variants ...core.Variant) {
	var wg sync.WaitGroup
	for _, prof := range s.Cfg.benchmarks() {
		for _, v := range variants {
			prof, v := prof, v
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Run(prof, v)
			}()
		}
	}
	wg.Wait()
}
