package experiments

import (
	"amoeba/internal/arrival"
	"amoeba/internal/iaas"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Fig03Row is one benchmark's sustainable peak loads.
type Fig03Row struct {
	Benchmark      string
	IaaSPeakQPS    float64
	SvlessPeakQPS  float64
	Ratio          float64 // serverless / IaaS, the paper's 73.9%–89.2%
	EqualResources int     // slots == containers used for both platforms
}

// Fig03Result reproduces paper Fig. 3: the achievable peak load of each
// benchmark under serverless deployment normalised to IaaS with the same
// resources. Both peaks are found by bisection on a constant-rate load:
// the largest QPS whose 95%-ile latency stays within the QoS target.
type Fig03Result struct {
	Rows []Fig03Row
}

// Fig03 runs the experiment. It panics if the config fails validation.
func Fig03(cfg Config) *Fig03Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	res := &Fig03Result{}
	for _, prof := range cfg.benchmarks() {
		res.Rows = append(res.Rows, fig03One(cfg, prof))
	}
	return res
}

func fig03One(cfg Config, prof workload.Profile) Fig03Row {
	// Equalise resources: the serverless side gets exactly as many
	// containers as the IaaS side has worker slots.
	slots := iaas.ProvisionSlots(prof, units.Fraction(0.95), 1.0)
	dur := 240.0
	if cfg.Quick {
		dur = 120
	}

	iaasOK := func(qps float64) bool {
		s := sim.New(cfg.Seed ^ hash(prof.Name+"/iaas"))
		vms := iaas.New(s, iaas.DefaultConfig())
		q := newQoSCheck(prof)
		vms.Deploy(prof, q.observe)
		gen := arrival.New(s, trace.Constant{QPS: qps}, func(sim.Time) { vms.Invoke(prof.Name) })
		gen.Start()
		s.Run(sim.Time(dur))
		return q.met()
	}
	svlessOK := func(qps float64) bool {
		s := sim.New(cfg.Seed ^ hash(prof.Name+"/svless"))
		pool := serverless.New(s, serverless.DefaultConfig())
		q := newQoSCheck(prof)
		pool.Register(prof, q.observe, serverless.WithNMax(slots))
		// Warm the pool first: peak-load capability is a warm-path
		// question; Fig. 4 accounts the overheads separately.
		pool.Prewarm(prof.Name, slots, nil)
		gen := arrival.New(s, trace.Constant{QPS: qps}, func(sim.Time) { pool.Invoke(prof.Name) })
		started := false
		s.At(8, func() { gen.Start(); started = true })
		s.Run(sim.Time(8 + dur))
		if !started {
			// The generator must have started inside the horizon, or the
			// QoS check below trivially passes on zero queries.
			//amoeba:allow panic a simulator that drops a scheduled event is a bug, not a config error
			panic("fig03: load generator never started before the run horizon")
		}
		return q.met()
	}

	hi := prof.PeakQPS * 3
	iaasPeak := bisectPeak(iaasOK, hi)
	svlessPeak := bisectPeak(svlessOK, hi)
	ratio := 0.0
	if iaasPeak > 0 {
		ratio = svlessPeak / iaasPeak
	}
	return Fig03Row{
		Benchmark:      prof.Name,
		IaaSPeakQPS:    iaasPeak,
		SvlessPeakQPS:  svlessPeak,
		Ratio:          ratio,
		EqualResources: slots,
	}
}

// bisectPeak finds the largest admissible QPS in (0, hi] for a monotone
// predicate within ~2% relative precision.
func bisectPeak(ok func(qps float64) bool, hi float64) float64 {
	lo := 0.0
	if !ok(hi * 0.01) {
		return 0
	}
	lo = hi * 0.01
	if ok(hi) {
		return hi
	}
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Render formats the result as a table.
func (r *Fig03Result) Render() *report.Table {
	t := report.NewTable("Fig. 3: serverless peak load normalised to IaaS (same resources)",
		"benchmark", "resources", "iaas_peak_qps", "serverless_peak_qps", "ratio")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.EqualResources, row.IaaSPeakQPS, row.SvlessPeakQPS, pct(row.Ratio))
	}
	return t
}
