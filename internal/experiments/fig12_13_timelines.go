package experiments

import (
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/metrics"
	"amoeba/internal/report"
	"amoeba/internal/workload"
)

// TimelineResult carries one benchmark's Amoeba run timeline: the switch
// events of Fig. 12 and the resource-usage snapshots of Fig. 13.
type TimelineResult struct {
	Benchmark string
	Switches  []metrics.SwitchEvent
	Snapshots []metrics.Snapshot
	// ToServerless / ToIaaS count the transitions in each direction.
	ToServerless, ToIaaS int
}

// Fig12Result reproduces paper Fig. 12: the deploy-mode switch timeline
// of the two representative benchmarks (float and dd).
type Fig12Result struct {
	Timelines []TimelineResult
}

// fig12Benchmarks returns the paper's two representative services.
func fig12Benchmarks() []workload.Profile {
	return []workload.Profile{workload.Float(), workload.DD()}
}

// Fig12 runs the experiment on the suite.
func Fig12(s *Suite) *Fig12Result {
	res := &Fig12Result{}
	for _, prof := range fig12Benchmarks() {
		sr := s.Service(prof, core.VariantAmoeba)
		res.Timelines = append(res.Timelines, TimelineResult{
			Benchmark:    prof.Name,
			Switches:     sr.Timeline.Switches,
			Snapshots:    sr.Timeline.Snapshots,
			ToServerless: sr.Timeline.SwitchCount(metrics.BackendServerless),
			ToIaaS:       sr.Timeline.SwitchCount(metrics.BackendIaaS),
		})
	}
	return res
}

// Render formats the switch events.
func (r *Fig12Result) Render() *report.Table {
	t := report.NewTable("Fig. 12: deploy-mode switch timeline",
		"benchmark", "t_seconds", "switch_to", "load_qps")
	for _, tl := range r.Timelines {
		for _, sw := range tl.Switches {
			t.AddRow(tl.Benchmark, fmt.Sprintf("%.0f", sw.At), sw.To.String(),
				fmt.Sprintf("%.1f", sw.LoadQPS))
		}
	}
	return t
}

// Fig13Result reproduces paper Fig. 13: the resource-usage timeline of
// float and dd with Amoeba (instantaneous allocated CPU and memory).
type Fig13Result struct {
	Timelines []TimelineResult
}

// Fig13 runs the experiment on the suite (same runs as Fig. 12).
func Fig13(s *Suite) *Fig13Result {
	f12 := Fig12(s)
	return &Fig13Result{Timelines: f12.Timelines}
}

// Render formats the usage timelines as figures (one per benchmark).
func (r *Fig13Result) Render() []*report.Figure {
	var out []*report.Figure
	for _, tl := range r.Timelines {
		f := &report.Figure{
			Title:  fmt.Sprintf("Fig. 13: resource usage timeline of %s with Amoeba", tl.Benchmark),
			XLabel: "time (s)",
			YLabel: "allocated cores / load QPS / memory GB",
		}
		var ts, cpu, mem, load []float64
		for _, sn := range tl.Snapshots {
			ts = append(ts, sn.At)
			cpu = append(cpu, sn.Alloc.CPU)
			mem = append(mem, sn.Alloc.MemMB/1024)
			load = append(load, sn.LoadQPS)
		}
		f.Series = append(f.Series,
			report.Series{Name: "alloc_cpu_cores", X: ts, Y: cpu},
			report.Series{Name: "alloc_mem_gb", X: ts, Y: mem},
			report.Series{Name: "load_qps", X: ts, Y: load},
		)
		out = append(out, f)
	}
	return out
}
