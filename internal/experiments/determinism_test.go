package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"amoeba/internal/core"
	"amoeba/internal/obs"
	"amoeba/internal/report"
)

// sweepArtifacts runs a full sweep at the given worker count and renders
// every artifact class the repository ships: the per-key JSONL event
// stream (captured through a bus attached inside the run seam), the
// summary table, and its CSV. Everything is returned as raw bytes so the
// caller can demand bit-for-bit equality.
func sweepArtifacts(t *testing.T, parallel int) (streams map[string]string, table, csv string) {
	t.Helper()
	cfg := raceCfg()
	s := NewSuite(cfg)
	s.Parallel = parallel

	var mu sync.Mutex
	bufs := map[string]*bytes.Buffer{}
	s.run = func(sc core.Scenario) *core.Result {
		buf := &bytes.Buffer{}
		bus := obs.NewBus()
		bus.Attach(obs.NewJSONLWriter(buf))
		sc.Bus = bus
		r := core.Run(sc)
		key := fmt.Sprintf("%s|%d", sc.Services[0].Profile.Name, sc.Variant)
		mu.Lock()
		bufs[key] = buf
		mu.Unlock()
		return r
	}

	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko}
	if err := s.Sweep(variants...); err != nil {
		t.Fatal(err)
	}

	tab := report.NewTable("sweep determinism", "benchmark", "variant", "violation fraction")
	for _, prof := range cfg.benchmarks() {
		for _, v := range variants {
			tab.AddRow(prof.Name, int(v), s.Service(prof, v).Collector.ViolationFraction())
		}
	}
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}

	streams = map[string]string{}
	for k, b := range bufs {
		streams[k] = b.String()
	}
	return streams, tab.String(), csvBuf.String()
}

// TestSweepDeterministicAcrossParallelism is the driver's core promise:
// the rendered table, its CSV, and the per-run JSONL event streams are
// byte-identical whether the sweep ran on one worker or eight. Each
// simulation is sequential and seeded; parallelism only spreads distinct
// keys, so any byte of divergence means goroutine scheduling leaked into
// a result.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps in -short mode")
	}
	s1, t1, c1 := sweepArtifacts(t, 1)
	s8, t8, c8 := sweepArtifacts(t, 8)

	if t1 != t8 {
		t.Errorf("table differs between -parallel 1 and -parallel 8:\n--- 1 ---\n%s--- 8 ---\n%s", t1, t8)
	}
	if c1 != c8 {
		t.Errorf("CSV differs between -parallel 1 and -parallel 8:\n--- 1 ---\n%s--- 8 ---\n%s", c1, c8)
	}
	if len(s1) != len(s8) {
		t.Fatalf("run count differs: %d keys at -parallel 1, %d at -parallel 8", len(s1), len(s8))
	}
	for key, b1 := range s1 {
		b8, ok := s8[key]
		if !ok {
			t.Errorf("key %s simulated at -parallel 1 but not at -parallel 8", key)
			continue
		}
		if b1 != b8 {
			t.Errorf("JSONL stream for %s differs between -parallel 1 and -parallel 8 "+
				"(%d vs %d bytes)", key, len(b1), len(b8))
		}
		if len(b1) == 0 {
			t.Errorf("JSONL stream for %s is empty: the bus was not attached", key)
		}
	}
}
