package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// TestSuiteSingleFlight proves the in-flight latch: many goroutines
// racing on the same key trigger exactly one simulation. The stub run
// function sleeps long enough that, without the latch, every goroutine
// would pass the memo check before the first result lands — the
// pre-latch Suite ran the simulation once per caller and kept one.
func TestSuiteSingleFlight(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	s.run = func(core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		time.Sleep(20 * time.Millisecond) // hold the latch across the race window
		return &core.Result{}
	}

	prof := workload.Float()
	const callers = 16
	results := make([]*core.Result, callers)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait() // release all callers into Run together
			results[i] = s.Run(prof, core.VariantAmoeba)
		}()
	}
	start.Done()
	wg.Wait()

	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("%d concurrent callers ran the simulation %d times, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d observed a different result pointer", i)
		}
	}
	// The memo must serve later callers without re-running.
	if r := s.Run(prof, core.VariantAmoeba); r != results[0] || atomic.LoadInt32(&calls) != 1 {
		t.Fatal("memoised result not reused after the flight completed")
	}
}

// TestSuiteSingleFlightDistinctKeys checks that the latch is per-key:
// different (benchmark, variant) pairs simulate concurrently, once each.
func TestSuiteSingleFlightDistinctKeys(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	s.run = func(core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		time.Sleep(5 * time.Millisecond)
		return &core.Result{}
	}

	prof := workload.Float()
	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko, core.VariantOpenWhisk}
	var wg sync.WaitGroup
	for _, v := range variants {
		v := v
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Run(prof, v)
			}()
		}
	}
	wg.Wait()
	if got, want := atomic.LoadInt32(&calls), int32(len(variants)); got != want {
		t.Fatalf("ran %d simulations for %d distinct keys, want one each", got, want)
	}
}

// TestSuiteSingleFlightPanicRecovers checks the latch is released when a
// run panics: waiters take over instead of deadlocking.
func TestSuiteSingleFlightPanicRecovers(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	firstIn := make(chan struct{})
	s.run = func(core.Scenario) *core.Result {
		if atomic.AddInt32(&calls, 1) == 1 {
			close(firstIn)
			time.Sleep(5 * time.Millisecond)
			panic("injected run failure")
		}
		return &core.Result{}
	}

	prof := workload.Float()
	done := make(chan *core.Result, 1)
	go func() {
		defer func() { recover() }()
		s.Run(prof, core.VariantAmoeba)
		done <- nil // unreachable: the first run panics
	}()
	// The latch is claimed before s.run is entered, so once firstIn
	// closes the second caller is guaranteed to wait on it, then take
	// over after the panic releases it.
	<-firstIn
	r := s.Run(prof, core.VariantAmoeba)
	if r == nil {
		t.Fatal("takeover run returned nil")
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("run called %d times, want 2 (panicked flight + takeover)", got)
	}
	select {
	case <-done:
		t.Fatal("panicked caller produced a result")
	default:
	}
}
