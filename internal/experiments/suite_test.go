package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// TestSuiteSingleFlight proves the in-flight latch: many goroutines
// racing on the same key trigger exactly one simulation. The stub run
// function sleeps long enough that, without the latch, every goroutine
// would pass the memo check before the first result lands — the
// pre-latch Suite ran the simulation once per caller and kept one.
func TestSuiteSingleFlight(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	s.run = func(core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		time.Sleep(20 * time.Millisecond) // hold the latch across the race window
		return &core.Result{}
	}

	prof := workload.Float()
	const callers = 16
	results := make([]*core.Result, callers)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait() // release all callers into Run together
			results[i] = s.Run(prof, core.VariantAmoeba)
		}()
	}
	start.Done()
	wg.Wait()

	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("%d concurrent callers ran the simulation %d times, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d observed a different result pointer", i)
		}
	}
	// The memo must serve later callers without re-running.
	if r := s.Run(prof, core.VariantAmoeba); r != results[0] || atomic.LoadInt32(&calls) != 1 {
		t.Fatal("memoised result not reused after the flight completed")
	}
}

// TestSuiteSingleFlightDistinctKeys checks that the latch is per-key:
// different (benchmark, variant) pairs simulate concurrently, once each.
func TestSuiteSingleFlightDistinctKeys(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	s.run = func(core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		time.Sleep(5 * time.Millisecond)
		return &core.Result{}
	}

	prof := workload.Float()
	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko, core.VariantOpenWhisk}
	var wg sync.WaitGroup
	for _, v := range variants {
		v := v
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Run(prof, v)
			}()
		}
	}
	wg.Wait()
	if got, want := atomic.LoadInt32(&calls), int32(len(variants)); got != want {
		t.Fatalf("ran %d simulations for %d distinct keys, want one each", got, want)
	}
}

// TestSuiteSingleFlightPanicPropagates checks that a panicking run is
// captured as a keyed, memoised error: the flight's waiters observe the
// failure instead of retrying the simulation (or deadlocking on an
// unreleased latch), and so does every later caller of the same key.
func TestSuiteSingleFlightPanicPropagates(t *testing.T) {
	s := NewSuite(quickCfg())
	var calls int32
	firstIn := make(chan struct{})
	s.run = func(core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		close(firstIn)
		time.Sleep(5 * time.Millisecond)
		panic("injected run failure")
	}

	prof := workload.Float()
	firstErr := make(chan error, 1)
	go func() {
		firstErr <- recoveredErr(func() { s.Run(prof, core.VariantAmoeba) })
	}()
	// The flight is claimed before s.run is entered, so once firstIn
	// closes the second caller is guaranteed to wait on the latch and
	// receive the captured panic as its outcome.
	<-firstIn
	for _, caller := range []string{"waiter", "first", "later"} {
		var err error
		if caller == "first" {
			err = <-firstErr
		} else {
			err = recoveredErr(func() { s.Run(prof, core.VariantAmoeba) })
		}
		if err == nil {
			t.Fatalf("%s caller: run panic not propagated", caller)
		}
		for _, frag := range []string{prof.Name, "panicked", "injected run failure"} {
			if !strings.Contains(err.Error(), frag) {
				t.Fatalf("%s caller: error %q does not name %q", caller, err, frag)
			}
		}
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("run called %d times, want 1 (the failure is memoised, never retried)", got)
	}
}

// TestSuiteSweepPropagatesPanics checks the driver-level contract: Sweep
// returns the keyed errors of failed runs while the healthy keys still
// land in the memo.
func TestSuiteSweepPropagatesPanics(t *testing.T) {
	s := NewSuite(quickCfg())
	s.Parallel = 4
	bad := workload.Float().Name
	var calls int32
	s.run = func(sc core.Scenario) *core.Result {
		atomic.AddInt32(&calls, 1)
		if sc.Services[0].Profile.Name == bad {
			panic("injected run failure")
		}
		return &core.Result{}
	}

	err := s.Sweep(core.VariantAmoeba)
	if err == nil {
		t.Fatal("Sweep swallowed a panicked run")
	}
	for _, frag := range []string{bad, "panicked", "injected run failure"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("Sweep error %q does not name %q", err, frag)
		}
	}
	if got, want := atomic.LoadInt32(&calls), int32(len(quickCfg().benchmarks())); got != want {
		t.Fatalf("Sweep ran %d simulations, want %d", got, want)
	}
	// The healthy keys are memoised despite the sibling failure.
	for _, prof := range quickCfg().benchmarks() {
		if prof.Name == bad {
			continue
		}
		if r := s.Run(prof, core.VariantAmoeba); r == nil {
			t.Fatalf("healthy key %s not served from the memo", prof.Name)
		}
	}
	if got, want := atomic.LoadInt32(&calls), int32(len(quickCfg().benchmarks())); got != want {
		t.Fatalf("memoised keys re-ran: %d simulations after re-reads, want %d", got, want)
	}
}

// recoveredErr runs f and converts a panic into an error (nil when f
// returns normally).
func recoveredErr(f func()) (err error) {
	defer func() {
		switch p := recover().(type) {
		case nil:
		case error:
			err = p
		default:
			err = fmt.Errorf("%v", p)
		}
	}()
	f()
	return nil
}
