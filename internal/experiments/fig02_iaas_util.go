package experiments

import (
	"math"

	"amoeba/internal/arrival"
	"amoeba/internal/iaas"
	"amoeba/internal/report"
	"amoeba/internal/sim"
	"amoeba/internal/workload"
)

// Fig02Row is one benchmark's CPU utilisation under IaaS deployment.
type Fig02Row struct {
	Benchmark     string
	Slots         int
	Lowest        float64
	Average       float64
	Highest       float64
	QoSMet        bool
	P95OverTarget float64
}

// Fig02Result reproduces paper Fig. 2: the lowest/average/highest CPU
// utilisation of each benchmark deployed on just-enough IaaS under the
// diurnal load. Utilisation is consumed cores over allocated cores,
// sampled in windows.
type Fig02Result struct {
	Rows []Fig02Row
}

// Fig02 runs the experiment. It panics if the config fails validation.
func Fig02(cfg Config) *Fig02Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	res := &Fig02Result{}
	for _, prof := range cfg.benchmarks() {
		res.Rows = append(res.Rows, fig02One(cfg, prof))
	}
	return res
}

func fig02One(cfg Config, prof workload.Profile) Fig02Row {
	s := sim.New(cfg.Seed ^ hash(prof.Name))
	vms := iaas.New(s, iaas.DefaultConfig())
	lat := newQoSCheck(prof)
	vms.Deploy(prof, lat.observe)

	gen := arrival.New(s, cfg.diurnalFor(prof), func(sim.Time) { vms.Invoke(prof.Name) })
	gen.Start()

	// Sample windowed utilisation: consumed core-seconds per window over
	// the constant allocation.
	window := 60.0
	lastConsumed := 0.0
	lo, hi, sum := math.Inf(1), 0.0, 0.0
	n := 0
	s.Every(window, func() {
		consumed := vms.ConsumedCPUSeconds(prof.Name)
		alloc := vms.AllocFor(prof.Name).CPU
		u := (consumed - lastConsumed) / (alloc * window)
		lastConsumed = consumed
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
		sum += u
		n++
	})
	s.Run(sim.Time(cfg.horizon()))

	return Fig02Row{
		Benchmark:     prof.Name,
		Slots:         vms.Slots(prof.Name),
		Lowest:        lo,
		Average:       sum / float64(n),
		Highest:       hi,
		QoSMet:        lat.met(),
		P95OverTarget: lat.p95() / prof.QoSTarget,
	}
}

// Render formats the result as a table.
func (r *Fig02Result) Render() *report.Table {
	t := report.NewTable("Fig. 2: CPU utilisation with IaaS-based deployment",
		"benchmark", "slots", "lowest", "average", "highest", "qos_met")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Slots, pct(row.Lowest), pct(row.Average), pct(row.Highest), row.QoSMet)
	}
	return t
}
