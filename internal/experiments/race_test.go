package experiments

import (
	"sync"
	"testing"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// raceCfg shrinks the virtual day so the suite's concurrency can be
// exercised under the race detector's ~10x slowdown without hitting the
// test timeout. The figures' accuracy does not matter here — only that
// the same configuration yields bit-identical results on every schedule.
func raceCfg() Config {
	cfg := quickCfg()
	cfg.DayLength = 600
	return cfg
}

// TestSuiteConcurrentRunSameKey hammers one memoisation key from many
// goroutines. Under -race this proves the lock discipline in Suite.Run;
// the pointer comparison proves that exactly one result wins and every
// caller observes it, however the goroutines interleave.
func TestSuiteConcurrentRunSameKey(t *testing.T) {
	s := NewSuite(raceCfg())
	prof := workload.Float()

	const callers = 8
	results := make([]*core.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = s.Run(prof, core.VariantAmoeba)
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d observed a different memoised result", i)
		}
	}
}

// TestSuiteSweepRaceParallel drives the bounded pool at eight workers
// while an overlapping caller walks the same keys through Run. Under
// -race this proves the lock discipline of the sweep driver and the
// flight latch together: workers and the outside caller share flights,
// so no key simulates twice and no write to a flight races a read.
func TestSuiteSweepRaceParallel(t *testing.T) {
	cfg := raceCfg()
	s := NewSuite(cfg)
	s.Parallel = 8
	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, prof := range cfg.benchmarks() {
			for _, v := range variants {
				s.Run(prof, v)
			}
		}
	}()
	if err := s.Sweep(variants...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestSuitePrefetchMatchesSequential runs the same configuration through
// the concurrent Prefetch fan-out and through plain sequential Run calls,
// then compares the QoS outcome of every (benchmark, variant) pair. The
// simulations are seeded and single-threaded internally, so any
// divergence means goroutine scheduling leaked into a result.
func TestSuitePrefetchMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite runs in -short mode")
	}
	cfg := raceCfg()
	variants := []core.Variant{core.VariantAmoeba, core.VariantNameko}

	par := NewSuite(cfg)
	par.Prefetch(variants...)

	seq := NewSuite(cfg)
	for _, prof := range cfg.benchmarks() {
		for _, v := range variants {
			seq.Run(prof, v)
		}
	}

	for _, prof := range cfg.benchmarks() {
		for _, v := range variants {
			a := par.Service(prof, v).Collector.ViolationFraction()
			b := seq.Service(prof, v).Collector.ViolationFraction()
			if a != b {
				t.Errorf("%s/%d: prefetch violation fraction %v != sequential %v",
					prof.Name, v, a, b)
			}
		}
	}
}
