package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/report"
)

// Fig11Row is one benchmark's resource usage under Amoeba normalised to
// Nameko.
type Fig11Row struct {
	Benchmark    string
	CPURel       float64 // Amoeba CPU-time / Nameko CPU-time
	MemRel       float64
	CPUSavedFrac float64 // 1 − CPURel, the paper's 29.1%–72.9%
	MemSavedFrac float64 // 1 − MemRel, the paper's 30.2%–84.9%
	QoSMet       bool
}

// Fig11Result reproduces paper Fig. 11: the normalised CPU and memory
// usage of the benchmarks with Amoeba compared with Nameko.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 runs the experiment on the given suite (reusing Fig. 10's runs).
func Fig11(s *Suite) *Fig11Result {
	s.Prefetch(core.VariantAmoeba, core.VariantNameko)
	res := &Fig11Result{}
	for _, prof := range s.Cfg.benchmarks() {
		am := s.Service(prof, core.VariantAmoeba)
		nk := s.Service(prof, core.VariantNameko)
		cpuRel := ratio(am.TotalUsage().CPU, nk.TotalUsage().CPU)
		memRel := ratio(am.TotalUsage().MemMB, nk.TotalUsage().MemMB)
		res.Rows = append(res.Rows, Fig11Row{
			Benchmark:    prof.Name,
			CPURel:       cpuRel,
			MemRel:       memRel,
			CPUSavedFrac: 1 - cpuRel,
			MemSavedFrac: 1 - memRel,
			QoSMet:       am.Collector.QoSMet(),
		})
	}
	return res
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Render formats the result as a table.
func (r *Fig11Result) Render() *report.Table {
	t := report.NewTable("Fig. 11: Amoeba resource usage normalised to Nameko",
		"benchmark", "cpu_rel", "mem_rel", "cpu_saved", "mem_saved", "qos_met")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.CPURel, row.MemRel,
			pct(row.CPUSavedFrac), pct(row.MemSavedFrac), row.QoSMet)
	}
	return t
}
