package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/obs"
	"amoeba/internal/report"
	"amoeba/internal/workload"
)

// DecisionAuditResult is the telemetry-backed audit of one Amoeba run:
// every controller verdict with its Eq. 5 inputs and reason, and every
// deploy-mode switch with its §V-B phase durations.
type DecisionAuditResult struct {
	Decisions *report.Table
	Switches  *report.Table
	// Events is the total event count the run emitted into the ring.
	Events int
}

// DecisionAudit runs one benchmark under full Amoeba with a telemetry
// ring attached and renders the decision-audit and switch-span tables —
// the "why did it switch at t=437s?" answer, derived from the event
// stream alone. It deliberately runs a fresh scenario rather than a
// Suite-memoised one: memoised results are shared across figures (and
// prefetched concurrently), so they run unobserved.
func DecisionAudit(cfg Config, prof workload.Profile) *DecisionAuditResult {
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 18)
	bus.Attach(ring)
	sc := cfg.scenario(prof, core.VariantAmoeba)
	sc.Bus = bus
	core.Run(sc)
	evs := ring.Events()
	return &DecisionAuditResult{
		Decisions: obs.AuditTable(evs),
		Switches:  obs.SwitchTable(evs),
		Events:    len(evs),
	}
}
