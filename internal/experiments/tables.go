package experiments

import (
	"fmt"

	"amoeba/internal/cluster"
	"amoeba/internal/report"
	"amoeba/internal/workload"
)

// TableII renders the hardware/software setup (paper Table II).
func TableII() *report.Table {
	n := cluster.DefaultNode("node")
	t := report.NewTable("Table II: hardware and software setup", "item", "configuration")
	t.AddRow("CPU", "Intel Xeon Platinum 8163 @ 2.50GHz (simulated)")
	t.AddRow("Cores", n.Cores)
	t.AddRow("DRAM", formatGB(n.MemMB))
	t.AddRow("Disk", formatMBs(n.DiskMBps)+" NVMe SSD (simulated)")
	t.AddRow("NIC", formatMbs(n.NetMbps))
	t.AddRow("IaaS deployment", "VM + Nameko (simulated, internal/iaas)")
	t.AddRow("Serverless deployment", "OpenWhisk (simulated, internal/serverless)")
	t.AddRow("Container memory", formatMB(float64(workload.ContainerMemMB)))
	return t
}

// TableIII renders the benchmark sensitivity matrix (paper Table III).
func TableIII() *report.Table {
	t := report.NewTable("Table III: benchmark load sensitivities",
		"name", "cpu", "memory", "disk_io", "network", "exec_s", "qos_s", "peak_qps")
	for _, p := range workload.All() {
		t.AddRow(p.Name,
			level(p.Sensitivity.CPU), level(p.MemSensitivity),
			level(p.Sensitivity.IO), level(p.Sensitivity.Net),
			p.ExecTime, p.QoSTarget, p.PeakQPS)
	}
	return t
}

// level maps a numeric sensitivity onto the paper's high/medium/low/"-".
func level(s float64) string {
	switch {
	case s >= 0.7:
		return "high"
	case s >= 0.3:
		return "medium"
	case s > 0.05:
		return "low"
	default:
		return "-"
	}
}

func formatGB(mb float64) string { return fmt.Sprintf("%gGB", mb/1024) }
func formatMB(mb float64) string { return fmt.Sprintf("%gMB", mb) }
func formatMBs(v float64) string { return fmt.Sprintf("%gMB/s", v) }
func formatMbs(v float64) string { return fmt.Sprintf("%gMb/s", v) }
