package experiments

import "testing"

func TestElasticityShape(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r := Elasticity(s)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if !row.AmoebaQoSMet {
			t.Errorf("%s: Amoeba violated QoS", row.Benchmark)
		}
		// Both elastic systems beat static Nameko on CPU.
		if row.AmoebaCPURel >= 1 || row.AutoscaleCPURel >= 1 {
			t.Errorf("%s: elasticity saved nothing (amoeba %v, autoscale %v)",
				row.Benchmark, row.AmoebaCPURel, row.AutoscaleCPURel)
		}
		// The autoscaler buys savings with strictly more QoS risk.
		if row.AutoscaleViolations <= row.AmoebaViolations {
			t.Errorf("%s: autoscaler violations %v not above Amoeba %v",
				row.Benchmark, row.AutoscaleViolations, row.AmoebaViolations)
		}
		// And money follows the resource integrals.
		if row.AmoebaCost >= row.NamekoCost {
			t.Errorf("%s: Amoeba bill %v not below Nameko %v",
				row.Benchmark, row.AmoebaCost, row.NamekoCost)
		}
	}
	if r.Render().Rows() != len(r.Rows) {
		t.Error("render row mismatch")
	}
}
