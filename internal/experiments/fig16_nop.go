package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/report"
)

// Fig16Row is one benchmark's QoS violation rate without prewarming.
type Fig16Row struct {
	Benchmark string
	// ViolationFrac is the fraction of queries over the QoS target with
	// Amoeba-NoP (paper: 29.9%–69.1%).
	ViolationFrac float64
	// AmoebaViolationFrac is the same with prewarming, for contrast.
	AmoebaViolationFrac float64
	Switches            int
	// WorstWindowFrac is the violation rate of NoP's worst 60s window —
	// the time-resolved view showing that cold-start damage concentrates
	// right after switches.
	WorstWindowFrac float64
}

// Fig16Result reproduces paper Fig. 16: disabling the container prewarm
// module routes queries into cold starts at every switch to serverless,
// violating the QoS of a large fraction of queries.
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16 runs the experiment on the suite.
func Fig16(s *Suite) *Fig16Result {
	s.Prefetch(core.VariantAmoeba, core.VariantAmoebaNoP)
	res := &Fig16Result{}
	for _, prof := range s.Cfg.benchmarks() {
		nop := s.Service(prof, core.VariantAmoebaNoP)
		am := s.Service(prof, core.VariantAmoeba)
		worst := 0.0
		for _, w := range nop.ViolationWindows {
			if w.Rate() > worst {
				worst = w.Rate()
			}
		}
		res.Rows = append(res.Rows, Fig16Row{
			Benchmark:           prof.Name,
			ViolationFrac:       nop.Collector.ViolationFraction(),
			AmoebaViolationFrac: am.Collector.ViolationFraction(),
			Switches:            len(nop.Timeline.Switches),
			WorstWindowFrac:     worst,
		})
	}
	return res
}

// Render formats the result as a table.
func (r *Fig16Result) Render() *report.Table {
	t := report.NewTable("Fig. 16: QoS violations with Amoeba-NoP (no prewarm)",
		"benchmark", "nop_violations", "nop_worst_60s_window", "amoeba_violations", "switches")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, pct(row.ViolationFrac), pct(row.WorstWindowFrac),
			pct(row.AmoebaViolationFrac), row.Switches)
	}
	return t
}
