package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/meters"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
)

// Fig08Result reproduces paper Fig. 8: the latency-vs-pressure profiling
// curve of each contention meter.
type Fig08Result struct {
	Curves [3]*meters.Curve
}

// Fig08 runs the experiment (profiled curves are memoised process-wide).
// It panics if the config fails validation.
func Fig08(cfg Config) *Fig08Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fig08Result{Curves: core.MeterCurves(serverless.DefaultConfig())}
}

// Render formats the curves as one figure with three series.
func (r *Fig08Result) Render() *report.Figure {
	f := &report.Figure{
		Title:  "Fig. 8: contention meter profiling curves",
		XLabel: "pressure on the meter's resource",
		YLabel: "meter latency (s)",
	}
	for _, c := range r.Curves {
		f.Series = append(f.Series, report.Series{
			Name: c.Meter.Profile.Name,
			X:    c.Pressures,
			Y:    c.Latencies,
		})
	}
	return f
}
