// Package experiments implements one driver per table and figure of the
// paper's evaluation (§VII). Each driver returns a typed result with the
// measured rows/series and can render itself through internal/report.
// The per-experiment index — paper artifact → driver → bench target —
// lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Config scopes every experiment run.
type Config struct {
	// DayLength is the virtual length of one diurnal day, seconds. The
	// paper runs wall-clock days; the simulation compresses a day so the
	// controller still sees dozens of decision periods per load level.
	DayLength units.Seconds
	// Days is the horizon in days.
	Days float64
	// TroughFraction is the night trough as a fraction of peak
	// (paper: low load < 30% of peak).
	TroughFraction units.Fraction
	// Seed fixes all randomness.
	Seed uint64
	// Quick shrinks durations for tests; results get noisier.
	Quick bool
}

// DefaultConfig returns the standard evaluation configuration.
func DefaultConfig() Config {
	return Config{
		DayLength:      3600,
		Days:           1,
		TroughFraction: 0.2,
		Seed:           0xA0EBA,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DayLength <= 0 || c.Days <= 0 {
		return fmt.Errorf("experiments: non-positive horizon")
	}
	if c.TroughFraction <= 0 || c.TroughFraction >= 1 {
		return fmt.Errorf("experiments: trough fraction %v out of (0,1)", c.TroughFraction)
	}
	return nil
}

func (c Config) horizon() units.Seconds {
	h := units.Scale(c.DayLength, c.Days)
	if c.Quick {
		h = c.DayLength // quick mode: exactly one day
	}
	return h
}

// diurnalFor builds the benchmark's day-shaped trace.
func (c Config) diurnalFor(prof workload.Profile) trace.Trace {
	return trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*c.TroughFraction.Raw(), c.DayLength.Raw(), c.Seed^hash(prof.Name))
}

// scenario builds the standard single-benchmark scenario of §VII-A: the
// benchmark under a diurnal load plus the three background tenants.
func (c Config) scenario(prof workload.Profile, v core.Variant) core.Scenario {
	return core.Scenario{
		Variant:    v,
		Services:   []core.ServiceSpec{{Profile: prof, Trace: c.diurnalFor(prof)}},
		Background: core.BackgroundTenants(c.DayLength, c.Seed+7),
		Duration:   c.horizon(),
		Seed:       c.Seed ^ hash(prof.Name) ^ uint64(v)<<13,
	}
}

func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// benchmarks returns the evaluation suite, trimmed in quick mode.
func (c Config) benchmarks() []workload.Profile {
	if c.Quick {
		return []workload.Profile{workload.Float(), workload.DD()}
	}
	return workload.All()
}
