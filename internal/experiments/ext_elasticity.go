package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/cost"
	"amoeba/internal/report"
)

// ElasticityRow compares one benchmark across the three elastic
// strategies, all normalised to static Nameko.
type ElasticityRow struct {
	Benchmark string
	// CPURel: CPU-time relative to Nameko, per system.
	AmoebaCPURel    float64
	AutoscaleCPURel float64
	// Violation fractions (QoS risk each strategy takes for its savings).
	AmoebaViolations    float64
	AutoscaleViolations float64
	AmoebaQoSMet        bool
	AutoscaleQoSMet     bool
	// Dollar bills under the default tariff.
	AmoebaCost    float64
	AutoscaleCost float64
	NamekoCost    float64
}

// ElasticityResult is an extension experiment beyond the paper: Amoeba's
// deployment switching versus a Kubernetes-style VM autoscaler (related
// work [25]) under the same diurnal load. Both cut the static deployment's
// idle cost; the question is what each pays in QoS. The autoscaler reacts
// to load it has already failed to serve and boots VMs on the latency
// path; Amoeba predicts with the discriminant and prewarms before
// flipping the route.
type ElasticityResult struct {
	Rows []ElasticityRow
}

// Elasticity runs the comparison on the suite.
func Elasticity(s *Suite) *ElasticityResult {
	s.Prefetch(core.VariantAmoeba, core.VariantAutoscale, core.VariantNameko)
	pricing := cost.DefaultPricing()
	res := &ElasticityResult{}
	for _, prof := range s.Cfg.benchmarks() {
		am := s.Service(prof, core.VariantAmoeba)
		as := s.Service(prof, core.VariantAutoscale)
		nk := s.Service(prof, core.VariantNameko)
		row := ElasticityRow{
			Benchmark:           prof.Name,
			AmoebaCPURel:        ratio(am.TotalUsage().CPU, nk.TotalUsage().CPU),
			AutoscaleCPURel:     ratio(as.TotalUsage().CPU, nk.TotalUsage().CPU),
			AmoebaViolations:    am.Collector.ViolationFraction(),
			AutoscaleViolations: as.Collector.ViolationFraction(),
			AmoebaQoSMet:        am.Collector.QoSMet(),
			AutoscaleQoSMet:     as.Collector.QoSMet(),
			AmoebaCost:          cost.ForService(pricing, am).Total(),
			AutoscaleCost:       cost.ForService(pricing, as).Total(),
			NamekoCost:          cost.ForService(pricing, nk).Total(),
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result as a table.
func (r *ElasticityResult) Render() *report.Table {
	t := report.NewTable("Extension: Amoeba vs VM autoscaler (normalised to Nameko)",
		"benchmark", "amoeba_cpu", "autoscale_cpu",
		"amoeba_qos", "autoscale_qos", "amoeba_viol", "autoscale_viol",
		"amoeba_$", "autoscale_$", "nameko_$")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.AmoebaCPURel, row.AutoscaleCPURel,
			row.AmoebaQoSMet, row.AutoscaleQoSMet,
			pct(row.AmoebaViolations), pct(row.AutoscaleViolations),
			row.AmoebaCost, row.AutoscaleCost, row.NamekoCost)
	}
	return t
}
