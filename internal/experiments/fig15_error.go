package experiments

import (
	"math"

	"amoeba/internal/arrival"
	"amoeba/internal/controller"
	"amoeba/internal/core"
	"amoeba/internal/monitor"
	"amoeba/internal/report"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Fig15Row is one benchmark's discriminant error.
type Fig15Row struct {
	Benchmark string
	// Mean relative error |λ(μ_n) − λ_real| / λ_real over the probed
	// contention points, for calibrated (Amoeba) and additive (NoM)
	// weights. The paper reports 2.8–8.3% vs 9.1–25.8%.
	AmoebaErr float64
	NoMErr    float64
	// Per-point detail.
	Points []Fig15Point
}

// Fig15Point is one ambient-contention operating point.
type Fig15Point struct {
	Pressure  [3]float64
	RealQPS   float64
	AmoebaQPS float64
	NoMQPS    float64
}

// Fig15Result reproduces paper Fig. 15: the average error of the
// discriminant function λ(μ_n) against the real switch point λ_real
// found by enumeration, with and without the PCA correction.
type Fig15Result struct {
	Rows []Fig15Row
}

// fig15Pressures are the ambient contention points probed per benchmark.
func fig15Pressures() [][3]float64 {
	return [][3]float64{
		{0.10, 0.10, 0.05},
		{0.25, 0.25, 0.15},
		{0.10, 0.40, 0.10},
	}
}

// Fig15 runs the experiment. Calibrated weights come from the suite's
// Amoeba runs (the monitor's state at the end of a full day).
func Fig15(s *Suite) *Fig15Result {
	res := &Fig15Result{}
	for _, prof := range s.Cfg.benchmarks() {
		res.Rows = append(res.Rows, fig15One(s, prof))
	}
	return res
}

func fig15One(s *Suite, prof workload.Profile) Fig15Row {
	slCfg := serverless.DefaultConfig()
	set := core.SurfaceSet(prof, slCfg)
	nMax := nMaxFor(slCfg)
	pred, err := controller.NewPredictor(prof, set, nMax, units.Fraction(0.95))
	if err != nil {
		//amoeba:allow panic suite config was validated by NewSuite
		panic(err)
	}

	calibrated := s.Service(prof, core.VariantAmoeba).FinalWeights
	w0 := monitor.InitialWeights()

	row := Fig15Row{Benchmark: prof.Name}
	var errA, errN float64
	n := 0
	for _, p := range fig15Pressures() {
		real := fig15RealSwitchPoint(s.Cfg, prof, slCfg, nMax, p)
		if real <= 0 {
			continue // QoS unreachable at this point; no error defined
		}
		pt := Fig15Point{
			Pressure:  p,
			RealQPS:   real,
			AmoebaQPS: pred.AdmissibleLoad(calibrated, p).Raw(),
			NoMQPS:    pred.AdmissibleLoad(w0, p).Raw(),
		}
		row.Points = append(row.Points, pt)
		errA += math.Abs(pt.AmoebaQPS-real) / real
		errN += math.Abs(pt.NoMQPS-real) / real
		n++
	}
	if n > 0 {
		row.AmoebaErr = errA / float64(n)
		row.NoMErr = errN / float64(n)
	}
	return row
}

// nMaxFor mirrors the pool's per-tenant cap for the default config.
func nMaxFor(cfg serverless.Config) int {
	return int(math.Min(1/cfg.Delta.Raw(), cfg.Node.MemMB*(1-cfg.MemReserve.Raw())/cfg.ContainerMemMB.Raw()))
}

// fig15RealSwitchPoint enumerates λ_real: the largest constant QPS whose
// end-to-end p95 stays within the QoS target on the serverless platform
// under the given ambient pressure.
func fig15RealSwitchPoint(cfg Config, prof workload.Profile, slCfg serverless.Config,
	nMax int, pressure [3]float64) float64 {

	dur := 240.0
	if cfg.Quick {
		dur = 120
	}
	cap := slCfg.Node.Capacity()
	ok := func(qps float64) bool {
		s := sim.New(cfg.Seed ^ hash(prof.Name+"/fig15"))
		pool := serverless.New(s, slCfg)
		q := newQoSCheck(prof)
		pool.Register(prof, q.observe, serverless.WithNMax(nMax))
		pool.InjectDemand(resources.Vector{
			CPU:     pressure[0] * cap.CPU,
			DiskMBs: pressure[1] * cap.DiskMBs,
			NetMbs:  pressure[2] * cap.NetMbs,
		})
		pool.Prewarm(prof.Name, nMax, nil)
		gen := arrival.New(s, trace.Constant{QPS: qps}, func(sim.Time) { pool.Invoke(prof.Name) })
		s.At(8, func() { gen.Start() })
		s.Run(sim.Time(8 + dur))
		return q.count() > 0 && q.met()
	}
	return bisectPeak(ok, prof.PeakQPS*2)
}

// Render formats the result as a table.
func (r *Fig15Result) Render() *report.Table {
	t := report.NewTable("Fig. 15: discriminant error vs enumerated switch point (smaller is better)",
		"benchmark", "amoeba_err", "nom_err", "points")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, pct(row.AmoebaErr), pct(row.NoMErr), len(row.Points))
	}
	return t
}
