package experiments

import (
	"fmt"

	"amoeba/internal/metrics"
	"amoeba/internal/stats"
	"amoeba/internal/workload"
)

// qosCheck is a lightweight latency recorder for single-platform runs.
type qosCheck struct {
	target float64
	sample *stats.Sample
}

func newQoSCheck(prof workload.Profile) *qosCheck {
	return &qosCheck{target: prof.QoSTarget, sample: stats.NewSample(4096)}
}

func (q *qosCheck) observe(r metrics.QueryRecord) { q.sample.Add(r.Latency()) }

func (q *qosCheck) p95() float64 {
	if q.sample.Len() == 0 {
		return 0
	}
	return q.sample.P95()
}

func (q *qosCheck) met() bool { return q.sample.Len() > 0 && q.p95() <= q.target }

func (q *qosCheck) count() int { return q.sample.Len() }

// pct renders a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
