package experiments

import (
	"amoeba/internal/core"
	"amoeba/internal/meters"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
	"amoeba/internal/workload"
)

// OverheadRow is one meter's CPU overhead.
type OverheadRow struct {
	Meter string
	// AnalyticFrac is demand × exec × QPS over the node's cores — the
	// per-meter overhead at 1 QPS (the paper reports 1.1% / 0.5% / 0.6%).
	AnalyticFrac float64
}

// OverheadResult reproduces §VII-E: the CPU overhead of running the
// contention meters on the serverless platform at 1 QPS each, plus the
// measured total from a full Amoeba run.
type OverheadResult struct {
	Rows []OverheadRow
	// MeasuredTotalFrac is the meters' measured CPU over the run's
	// duration × node cores from a real Amoeba run.
	MeasuredTotalFrac float64
}

// Overhead runs the experiment on the suite.
func Overhead(s *Suite) *OverheadResult {
	res := &OverheadResult{}
	cores := serverless.DefaultConfig().Node.Capacity().CPU
	for _, m := range meters.All() {
		res.Rows = append(res.Rows, OverheadRow{
			Meter:        m.Profile.Name,
			AnalyticFrac: m.Profile.Demand.CPU * m.Profile.ExecTime * 1.0 / cores,
		})
	}
	run := s.Run(workload.Float(), core.VariantAmoeba)
	res.MeasuredTotalFrac = run.MeterCPUSeconds / (run.Duration.Raw() * cores)
	return res
}

// Render formats the result as a table.
func (r *OverheadResult) Render() *report.Table {
	t := report.NewTable("§VII-E: contention meter CPU overhead at 1 QPS",
		"meter", "overhead")
	for _, row := range r.Rows {
		t.AddRow(row.Meter, pct(row.AnalyticFrac))
	}
	t.AddRow("measured total (full run)", pct(r.MeasuredTotalFrac))
	return t
}
