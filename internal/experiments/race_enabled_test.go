//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// figure-reproduction tests each run full (quick-mode) day simulations;
// under the detector's ~10x slowdown the package would exceed the test
// timeout, so those skip and the dedicated race tests — which exercise
// the same concurrency on a shorter horizon — carry the -race coverage.
const raceEnabled = true
