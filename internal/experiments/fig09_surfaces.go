package experiments

import (
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
	"amoeba/internal/surfaces"
	"amoeba/internal/workload"
)

// Fig09Result reproduces paper Fig. 9: the three latency surfaces of an
// example microservice — its p95 body latency as (pressure, own load)
// sweep a grid, one surface per shared resource.
type Fig09Result struct {
	Benchmark string
	Set       *surfaces.Set
}

// Fig09 profiles the surfaces of the given benchmark (the paper shows one
// example microservice; dd makes the IO sensitivity visible).
// It panics if the config fails validation.
func Fig09(cfg Config, prof workload.Profile) *Fig09Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fig09Result{
		Benchmark: prof.Name,
		Set:       core.SurfaceSet(prof, serverless.DefaultConfig()),
	}
}

// Fig09Default profiles the paper's style example using dd.
func Fig09Default(cfg Config) *Fig09Result { return Fig09(cfg, workload.DD()) }

// Render formats the surfaces as one table per resource.
func (r *Fig09Result) Render() []*report.Table {
	names := []string{"CPU", "IO", "network"}
	var out []*report.Table
	for idx, sf := range r.Set.Surfaces {
		cols := []string{"pressure \\ load_qps"}
		for _, l := range sf.Loads {
			cols = append(cols, fmt.Sprintf("%.1f", l))
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 9(%c): %s sensitivity surface of %s (p95 body latency, s)",
				'a'+idx, names[idx], r.Benchmark), cols...)
		for i, p := range sf.Pressures {
			row := []interface{}{fmt.Sprintf("%.2f", p)}
			for j := range sf.Loads {
				row = append(row, sf.Lat[i][j])
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}
