package experiments

import (
	"testing"

	"amoeba/internal/core"
	"amoeba/internal/workload"
)

// quickCfg returns the reduced-scale configuration used across tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Quick = true
	return cfg
}

// skipIfRace skips the full figure-reproduction simulations when the race
// detector is on; race_test.go covers the concurrency on a short horizon.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("full-suite simulation skipped under -race; see race_test.go")
	}
}

var sharedSuite = NewSuite(quickCfg())

func TestTables(t *testing.T) {
	t2 := TableII()
	if t2.Rows() < 6 {
		t.Errorf("Table II has %d rows", t2.Rows())
	}
	t3 := TableIII()
	if t3.Rows() != 5 {
		t.Errorf("Table III has %d rows, want 5", t3.Rows())
	}
	if t2.String() == "" || t3.String() == "" {
		t.Error("empty render")
	}
}

func TestLevelMapping(t *testing.T) {
	cases := map[float64]string{0.9: "high", 0.5: "medium", 0.1: "low", 0.0: "-"}
	for v, want := range cases {
		if got := level(v); got != want {
			t.Errorf("level(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFig02Shape(t *testing.T) {
	skipIfRace(t)
	r := Fig02(quickCfg())
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		// Diurnal pattern: the trough utilisation is far below the peak
		// (the paper's core motivation).
		if row.Lowest >= row.Average || row.Average >= row.Highest {
			t.Errorf("%s: min/avg/max not ordered: %v/%v/%v",
				row.Benchmark, row.Lowest, row.Average, row.Highest)
		}
		if row.Lowest > 0.40 {
			t.Errorf("%s: trough utilisation %v too high for a diurnal load", row.Benchmark, row.Lowest)
		}
		if !row.QoSMet {
			t.Errorf("%s: just-enough IaaS violated QoS (p95/target %v)",
				row.Benchmark, row.P95OverTarget)
		}
		if row.Highest > 1.0 {
			t.Errorf("%s: utilisation above 1: %v", row.Benchmark, row.Highest)
		}
	}
}

func TestFig03Shape(t *testing.T) {
	skipIfRace(t)
	r := Fig03(quickCfg())
	for _, row := range r.Rows {
		// Paper: serverless sustains 73.9%–89.2% of the IaaS peak. Allow
		// a generous band, but the ordering (serverless < IaaS) and a
		// non-trivial serverless capability must hold.
		if row.Ratio <= 0.4 || row.Ratio >= 1.0 {
			t.Errorf("%s: serverless/IaaS peak ratio %v outside (0.4, 1.0)",
				row.Benchmark, row.Ratio)
		}
		if row.SvlessPeakQPS >= row.IaaSPeakQPS {
			t.Errorf("%s: serverless peak %v >= IaaS peak %v",
				row.Benchmark, row.SvlessPeakQPS, row.IaaSPeakQPS)
		}
	}
}

func TestFig04Shape(t *testing.T) {
	skipIfRace(t)
	r := Fig04(quickCfg())
	for _, row := range r.Rows {
		if row.OverheadFrac < 0.05 || row.OverheadFrac > 0.45 {
			t.Errorf("%s: overhead fraction %v outside the paper's 10-45%% band",
				row.Benchmark, row.OverheadFrac)
		}
		sum := row.ProcessingF + row.CodeLoadF + row.ExecF + row.PostF
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: breakdown fractions sum to %v", row.Benchmark, sum)
		}
	}
}

func TestFig08Shape(t *testing.T) {
	skipIfRace(t)
	r := Fig08(quickCfg())
	for i, c := range r.Curves {
		if err := c.Validate(); err != nil {
			t.Fatalf("curve %d invalid: %v", i, err)
		}
		lo, hi := c.Latencies[0], c.Latencies[len(c.Latencies)-1]
		if hi <= lo {
			t.Errorf("curve %d flat: %v -> %v", i, lo, hi)
		}
	}
	if r.Render().String() == "" {
		t.Error("empty figure render")
	}
}

func TestFig09Shape(t *testing.T) {
	skipIfRace(t)
	r := Fig09(quickCfg(), workload.DD())
	if err := r.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	// dd is IO-dominant: its IO surface must rise more than its net one.
	ioRise := r.Set.Surfaces[1].Lat[len(r.Set.Surfaces[1].Pressures)-1][0] /
		r.Set.Surfaces[1].Lat[0][0]
	netRise := r.Set.Surfaces[2].Lat[len(r.Set.Surfaces[2].Pressures)-1][0] /
		r.Set.Surfaces[2].Lat[0][0]
	if ioRise <= netRise {
		t.Errorf("dd IO rise %v <= net rise %v", ioRise, netRise)
	}
	if tabs := r.Render(); len(tabs) != 3 {
		t.Errorf("rendered %d surface tables, want 3", len(tabs))
	}
}

func TestFig10And11Shapes(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r10 := Fig10(s)
	byKey := map[string]Fig10Entry{}
	for _, e := range r10.Entries {
		byKey[e.Benchmark+"/"+e.System.String()] = e
	}
	for _, prof := range quickCfg().benchmarks() {
		am := byKey[prof.Name+"/amoeba"]
		nk := byKey[prof.Name+"/nameko"]
		if !am.QoSMet {
			t.Errorf("%s: Amoeba violated QoS (p95/target %v)", prof.Name, am.P95OverTarget)
		}
		if !nk.QoSMet {
			t.Errorf("%s: Nameko violated QoS (p95/target %v)", prof.Name, nk.P95OverTarget)
		}
	}
	// dd's peak exceeds its serverless capacity: OpenWhisk must violate.
	if ow := byKey["dd/openwhisk"]; ow.QoSMet {
		t.Errorf("dd under OpenWhisk met QoS (p95/target %v); expected violation", ow.P95OverTarget)
	}

	r11 := Fig11(s)
	for _, row := range r11.Rows {
		if !row.QoSMet {
			t.Errorf("%s: Amoeba violated QoS in Fig11", row.Benchmark)
		}
		if row.CPUSavedFrac <= 0.10 {
			t.Errorf("%s: CPU savings %v too small", row.Benchmark, row.CPUSavedFrac)
		}
		if row.MemSavedFrac <= 0.10 {
			t.Errorf("%s: memory savings %v too small", row.Benchmark, row.MemSavedFrac)
		}
	}
}

func TestFig12And13Shapes(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r12 := Fig12(s)
	for _, tl := range r12.Timelines {
		if tl.ToServerless == 0 {
			t.Errorf("%s: never switched to serverless", tl.Benchmark)
		}
		if len(tl.Snapshots) < 10 {
			t.Errorf("%s: only %d snapshots", tl.Benchmark, len(tl.Snapshots))
		}
	}
	// dd must switch both ways within a day (Fig. 12's lower panel).
	for _, tl := range r12.Timelines {
		if tl.Benchmark == "dd" && tl.ToIaaS == 0 {
			t.Error("dd never switched back to IaaS at peak")
		}
	}
	r13 := Fig13(s)
	figs := r13.Render()
	if len(figs) != 2 {
		t.Fatalf("rendered %d figures, want 2", len(figs))
	}
}

func TestFig14Shape(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r := Fig14(s)
	atLeastOneWorse := false
	for _, row := range r.Rows {
		if !row.BothMeetQoS {
			t.Errorf("%s: QoS violated by Amoeba or NoM", row.Benchmark)
		}
		if row.CPUIncrease >= 1.02 || row.MemIncrease >= 1.02 {
			atLeastOneWorse = true
		}
		if row.CPUIncrease < 0.85 {
			t.Errorf("%s: NoM used markedly less CPU than Amoeba (%vx)", row.Benchmark, row.CPUIncrease)
		}
	}
	if !atLeastOneWorse {
		t.Error("NoM never increased resource usage; PCA correction is vacuous")
	}
}

func TestFig15Shape(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r := Fig15(s)
	for _, row := range r.Rows {
		if len(row.Points) == 0 {
			t.Errorf("%s: no valid contention points", row.Benchmark)
			continue
		}
		if row.AmoebaErr > row.NoMErr+0.02 {
			t.Errorf("%s: Amoeba error %v above NoM error %v",
				row.Benchmark, row.AmoebaErr, row.NoMErr)
		}
		if row.AmoebaErr > 0.5 {
			t.Errorf("%s: Amoeba discriminant error %v implausibly large", row.Benchmark, row.AmoebaErr)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r := Fig16(s)
	for _, row := range r.Rows {
		if row.Switches == 0 {
			continue // no switch happened: NoP cannot be punished
		}
		if row.ViolationFrac <= row.AmoebaViolationFrac {
			t.Errorf("%s: NoP violations %v not above Amoeba's %v",
				row.Benchmark, row.ViolationFrac, row.AmoebaViolationFrac)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	skipIfRace(t)
	s := sharedSuite
	r := Overhead(s)
	if len(r.Rows) != 3 {
		t.Fatalf("%d meter rows, want 3", len(r.Rows))
	}
	total := 0.0
	for _, row := range r.Rows {
		if row.AnalyticFrac <= 0 || row.AnalyticFrac > 0.02 {
			t.Errorf("%s: analytic overhead %v outside (0, 2%%]", row.Meter, row.AnalyticFrac)
		}
		total += row.AnalyticFrac
	}
	// §VII-E: the meters together cost ~1% of the platform's CPU.
	if total > 0.015 {
		t.Errorf("total meter overhead %v above ~1%%", total)
	}
	if r.MeasuredTotalFrac <= 0 || r.MeasuredTotalFrac > 0.02 {
		t.Errorf("measured overhead %v implausible", r.MeasuredTotalFrac)
	}
}

func TestSuiteMemoisation(t *testing.T) {
	skipIfRace(t)
	s := NewSuite(quickCfg())
	a := s.Run(workload.Float(), core.VariantNameko)
	b := s.Run(workload.Float(), core.VariantNameko)
	if a != b {
		t.Error("suite re-ran an identical scenario")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.DayLength = 0
	if bad.Validate() == nil {
		t.Error("zero day length accepted")
	}
	bad = DefaultConfig()
	bad.TroughFraction = 1.0
	if bad.Validate() == nil {
		t.Error("trough fraction 1 accepted")
	}
}
