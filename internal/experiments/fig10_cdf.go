package experiments

import (
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/report"
)

// Fig10Entry is one (benchmark, system) latency distribution.
type Fig10Entry struct {
	Benchmark string
	System    core.Variant
	// CDF of latency normalised to the QoS target (Fig. 10's axes).
	X, F []float64
	// P95OverTarget < 1 means the QoS is met.
	P95OverTarget float64
	QoSMet        bool
	Queries       int
}

// Fig10Result reproduces paper Fig. 10: the cumulative distribution of
// each benchmark's latencies normalised to its QoS target under Amoeba,
// Nameko (pure IaaS) and OpenWhisk (pure serverless).
type Fig10Result struct {
	Entries []Fig10Entry
}

var fig10Systems = []core.Variant{core.VariantAmoeba, core.VariantNameko, core.VariantOpenWhisk}

// Fig10 runs the experiment on the given suite.
func Fig10(s *Suite) *Fig10Result {
	s.Prefetch(fig10Systems...)
	res := &Fig10Result{}
	for _, prof := range s.Cfg.benchmarks() {
		for _, v := range fig10Systems {
			sr := s.Service(prof, v)
			xs, fs := sr.Collector.NormalizedCDF(40)
			res.Entries = append(res.Entries, Fig10Entry{
				Benchmark:     prof.Name,
				System:        v,
				X:             xs,
				F:             fs,
				P95OverTarget: sr.Collector.P95() / prof.QoSTarget,
				QoSMet:        sr.Collector.QoSMet(),
				Queries:       sr.Collector.Count(),
			})
		}
	}
	return res
}

// Render summarises the distributions as a table (the per-curve CDFs are
// in the Entries for plotting).
func (r *Fig10Result) Render() *report.Table {
	t := report.NewTable("Fig. 10: p95 latency / QoS target (CDF summary; <1 meets QoS)",
		"benchmark", "system", "p95/target", "qos_met", "queries", "shape")
	for _, e := range r.Entries {
		t.AddRow(e.Benchmark, e.System.String(),
			fmt.Sprintf("%.2f", e.P95OverTarget), e.QoSMet, e.Queries,
			report.Sparkline(e.F))
	}
	return t
}
