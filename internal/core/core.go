// Package core assembles the Amoeba runtime (§III): per managed service,
// a contention-aware deployment controller, a hybrid execution engine, and
// one shared multi-resource contention monitor, all running against the
// simulated serverless pool and IaaS platform. It also provides the
// evaluation's baselines and ablations:
//
//	VariantAmoeba      — the full system
//	VariantAmoebaNoM   — PCA calibration disabled (§VII-C)
//	VariantAmoebaNoP   — container prewarm disabled (§VII-D)
//	VariantNameko      — pure IaaS deployment (the paper's Nameko)
//	VariantOpenWhisk   — pure serverless deployment
package core

import (
	"fmt"

	"amoeba/internal/arrival"
	"amoeba/internal/autoscale"
	"amoeba/internal/controller"
	"amoeba/internal/engine"
	"amoeba/internal/iaas"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Variant selects the system under evaluation.
type Variant int

const (
	VariantAmoeba Variant = iota
	VariantAmoebaNoM
	VariantAmoebaNoP
	VariantNameko
	VariantOpenWhisk
	// VariantAutoscale is an extension baseline beyond the paper: a
	// Kubernetes-style horizontal VM autoscaler on the IaaS platform
	// (related work [25]) — elastic like Amoeba, but it pays VM boot
	// delay on the latency path when the load ramps.
	VariantAutoscale
)

var variantNames = map[Variant]string{
	VariantAmoeba:    "amoeba",
	VariantAmoebaNoM: "amoeba-nom",
	VariantAmoebaNoP: "amoeba-nop",
	VariantNameko:    "nameko",
	VariantOpenWhisk: "openwhisk",
	VariantAutoscale: "autoscale",
}

func (v Variant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ServiceSpec is one service under study with its load pattern.
type ServiceSpec struct {
	Profile workload.Profile
	Trace   trace.Trace
}

// Scenario describes one evaluation run.
type Scenario struct {
	Variant    Variant
	Services   []ServiceSpec // managed services (the benchmarks)
	Background []ServiceSpec // co-tenants pinned to the serverless pool
	Duration   units.Seconds // virtual seconds
	Seed       uint64

	// Serverless overrides the pool config (nil = DefaultConfig).
	Serverless *serverless.Config
	// IaaS overrides the VM platform config (nil = DefaultConfig).
	IaaS *iaas.Config
	// AllowedError is Eq. 8's e, deciding the sample period.
	AllowedError units.Fraction
	// SnapshotPeriod densifies the timeline for Fig. 12/13 (0 = engine
	// sample period only).
	SnapshotPeriod units.Seconds
	// Bus is the telemetry bus events are emitted on (nil = unobserved;
	// every emission site stays on its zero-cost path). Attach sinks
	// before Run — the bus is wired into the platforms, the monitor, and
	// every engine.
	Bus *obs.Bus
}

// Validate reports scenario errors.
func (sc *Scenario) Validate() error {
	if len(sc.Services) == 0 {
		return fmt.Errorf("core: scenario with no services")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("core: non-positive duration")
	}
	seen := map[string]bool{}
	for _, group := range [2][]ServiceSpec{sc.Services, sc.Background} {
		for _, s := range group {
			if err := s.Profile.Validate(); err != nil {
				return err
			}
			if s.Trace == nil {
				return fmt.Errorf("core: service %s has no trace", s.Profile.Name)
			}
			if seen[s.Profile.Name] {
				return fmt.Errorf("core: duplicate service name %q", s.Profile.Name)
			}
			seen[s.Profile.Name] = true
		}
	}
	return nil
}

func (sc *Scenario) serverlessConfig() serverless.Config {
	if sc.Serverless != nil {
		return *sc.Serverless
	}
	return serverless.DefaultConfig()
}

func (sc *Scenario) iaasConfig() iaas.Config {
	if sc.IaaS != nil {
		return *sc.IaaS
	}
	return iaas.DefaultConfig()
}

func (sc *Scenario) allowedError() units.Fraction {
	if sc.AllowedError > 0 {
		return sc.AllowedError
	}
	return 0.10
}

// ServiceResult is the outcome for one managed service.
type ServiceResult struct {
	Profile   workload.Profile
	Collector *metrics.Collector
	Timeline  *metrics.Timeline

	// Usage integrals over the run (resource·seconds).
	IaaSUsage       resources.Vector
	ServerlessUsage resources.Vector

	// ConsumedCPUSeconds is the CPU actually burned on the IaaS side
	// (Fig. 2's numerator).
	ConsumedCPUSeconds float64

	Decisions       []controller.Decision
	BlockedSwitches int
	// FinalWeights is the Eq. 6 weight vector at the end of the run
	// (w₀ for non-Amoeba variants and Amoeba-NoM).
	FinalWeights monitor.Weights
	// ViolationWindows is the 60s-windowed violation-rate series (Amoeba
	// variants only; nil for the baselines).
	ViolationWindows []metrics.ViolationWindow
}

// TotalUsage returns the combined resource-time integral.
func (r *ServiceResult) TotalUsage() resources.Vector {
	return r.IaaSUsage.Add(r.ServerlessUsage)
}

// Result is the outcome of one scenario run.
type Result struct {
	Variant    Variant
	Duration   units.Seconds
	Services   map[string]*ServiceResult
	Background map[string]*metrics.Collector
	// MeterCPUSeconds is the monitor probes' CPU cost (§VII-E).
	MeterCPUSeconds float64
	Events          uint64
}

// Run executes the scenario to completion. It panics if the scenario
// fails validation: experiment drivers construct scenarios from
// already-validated configs, and a malformed one aborting the run is the
// correct failure mode mid-suite.
func Run(sc Scenario) *Result {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	s := sim.New(sc.Seed ^ 0x5eed)
	slCfg := sc.serverlessConfig()
	pool := serverless.New(s, slCfg)
	vms := iaas.New(s, sc.iaasConfig())
	// One tracer per run: trace/span IDs are dense counters, so two runs
	// of the same seed produce byte-identical trace streams even when a
	// sweep executes runs in parallel.
	var tracer *obs.Tracer
	if sc.Bus != nil {
		tracer = obs.NewTracer(sc.Bus)
		pool.SetBus(sc.Bus)
		pool.SetTracer(tracer)
		vms.SetBus(sc.Bus)
		vms.SetTracer(tracer)
	}

	res := &Result{
		Variant:    sc.Variant,
		Duration:   sc.Duration,
		Services:   make(map[string]*ServiceResult),
		Background: make(map[string]*metrics.Collector),
	}

	// Background tenants always run serverless (the paper's §VII-A
	// setup). They are not Amoeba-managed, so the per-tenant share bound
	// does not apply to them — give them room to breathe.
	for _, bg := range sc.Background {
		coll := metrics.NewCollector(bg.Profile.Name, bg.Profile.QoSTarget)
		res.Background[bg.Profile.Name] = coll
		pool.Register(bg.Profile, coll.Observe, serverless.WithNMax(64))
		gen := arrival.New(s, bg.Trace, invoker(pool, bg.Profile.Name))
		gen.Start()
	}

	var mon *monitor.Monitor
	amoebaLike := sc.Variant == VariantAmoeba || sc.Variant == VariantAmoebaNoM || sc.Variant == VariantAmoebaNoP
	if amoebaLike {
		monCfg := monitor.DefaultConfig()
		monCfg.UsePCA = sc.Variant != VariantAmoebaNoM
		mon = monitor.New(s, pool, MeterCurves(slCfg), monCfg)
		if sc.Bus != nil {
			mon.SetBus(sc.Bus)
			mon.SetTracer(tracer)
		}
		mon.Start()
	}

	type wiring struct {
		eng  *engine.Engine
		coll *metrics.Collector
	}
	wired := map[string]*wiring{}

	for _, svc := range sc.Services {
		prof := svc.Profile
		switch sc.Variant {
		case VariantNameko:
			coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
			wired[prof.Name] = &wiring{coll: coll}
			vms.Deploy(prof, coll.Observe)
			gen := arrival.New(s, svc.Trace, invoker(vms, prof.Name))
			gen.Start()

		case VariantOpenWhisk:
			coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
			wired[prof.Name] = &wiring{coll: coll}
			pool.Register(prof, coll.Observe)
			gen := arrival.New(s, svc.Trace, invoker(pool, prof.Name))
			gen.Start()

		case VariantAutoscale:
			coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
			wired[prof.Name] = &wiring{coll: coll}
			asCfg := autoscale.DefaultConfig()
			vms.DeployWithVMs(prof, asCfg.MinVMs, coll.Observe)
			scaler := autoscale.New(s, vms, prof, asCfg)
			scaler.Start()
			gen := arrival.New(s, svc.Trace, invoker(vms, prof.Name))
			gen.Start()

		default: // the Amoeba variants
			w := &wiring{}
			wired[prof.Name] = w
			// Register the primary function; the engine exists a moment
			// later, so indirect through the wiring struct.
			pool.Register(prof, func(r metrics.QueryRecord) {
				w.eng.OnServerlessComplete(r)
			})
			vms.Deploy(prof, func(r metrics.QueryRecord) {
				w.eng.OnIaaSComplete(r)
			})

			set := SurfaceSet(prof, slCfg)
			pred, err := controller.NewPredictor(prof, set, pool.NMax(prof.Name), units.Fraction(0.95))
			if err != nil {
				panic(err) // scenario validation already vouched for these inputs
			}
			ctrl, err := controller.New(controller.DefaultConfig(), pred)
			if err != nil {
				panic(err) // DefaultConfig is always valid
			}

			engCfg := engine.DefaultConfig(slCfg.Node.Capacity())
			engCfg.SamplePeriod, err = queueing.SamplePeriod(
				slCfg.ColdStartMean, units.Seconds(prof.QoSTarget),
				units.Seconds(prof.ExecTime), sc.allowedError(), units.Seconds(10))
			if err != nil {
				panic(err) // scenario validation bounds the QoS target and error
			}
			engCfg.Prewarm = sc.Variant != VariantAmoebaNoP
			w.eng = engine.New(s, pool, vms, prof, ctrl, mon, engCfg)
			if sc.Bus != nil {
				w.eng.SetBus(sc.Bus)
				w.eng.SetTracer(tracer)
				ctrl.SetTracer(tracer)
			}
			w.coll = w.eng.Collector
			w.eng.Start()

			gen := arrival.New(s, svc.Trace, func(sim.Time) { w.eng.HandleQuery() })
			gen.Start()

			if sc.SnapshotPeriod > 0 {
				eng := w.eng
				s.Every(sc.SnapshotPeriod.Raw(), func() {
					eng.Timeline.RecordSnapshot(metrics.Snapshot{
						At:   float64(s.Now()),
						Mode: eng.Mode(),
					})
				})
			}
		}
	}

	s.Run(sim.Time(sc.Duration.Raw()))

	for _, svc := range sc.Services {
		prof := svc.Profile
		w := wired[prof.Name]
		sr := &ServiceResult{Profile: prof, Collector: w.coll, FinalWeights: monitor.InitialWeights()}
		switch sc.Variant {
		case VariantNameko, VariantAutoscale:
			sr.IaaSUsage = vms.UsageFor(prof.Name)
			sr.ConsumedCPUSeconds = vms.ConsumedCPUSeconds(prof.Name)
			sr.Timeline = &metrics.Timeline{}
		case VariantOpenWhisk:
			sr.ServerlessUsage = pool.UsageFor(prof.Name)
			sr.Timeline = &metrics.Timeline{}
		default:
			sr.IaaSUsage = vms.UsageFor(prof.Name)
			sr.ConsumedCPUSeconds = vms.ConsumedCPUSeconds(prof.Name)
			sr.ServerlessUsage = pool.UsageFor(prof.Name)
			sr.ServerlessUsage = sr.ServerlessUsage.Add(pool.UsageFor(prof.Name + engine.ShadowSuffix))
			sr.Timeline = w.eng.Timeline
			sr.Decisions = w.eng.Controller().Decisions()
			sr.BlockedSwitches = w.eng.BlockedSwitches()
			sr.FinalWeights = mon.WeightsFor(prof.Name)
			sr.ViolationWindows = w.eng.Windowed.Windows(float64(s.Now()))
		}
		res.Services[prof.Name] = sr
	}
	if mon != nil {
		res.MeterCPUSeconds = mon.MeterCPUSeconds()
	}
	res.Events = s.Events()
	return res
}

// invoker adapts a platform Invoke method to an arrival callback.
func invoker(p interface{ Invoke(string) }, name string) func(sim.Time) {
	return func(sim.Time) { p.Invoke(name) }
}

// BackgroundTenants returns the paper's §VII-A co-tenant setup: float, dd
// and cloud_stor running on the shared pool with their own diurnal
// pattern "to add a slight pressure ... on serverless". The peaks are
// calibrated so midday pressure sits around 0.25–0.30 on each of CPU,
// disk and network — clearly visible to the meters and strong enough to
// move the admissible load λ(μ_n) across the day (which is what makes the
// switch points non-identical, Fig. 12), yet far from saturating any
// resource (a saturated pool death-spirals: pressure inflates busy time,
// which inflates pressure).
func BackgroundTenants(dayLength units.Seconds, seed uint64) []ServiceSpec {
	specs := []struct {
		prof    workload.Profile
		peakQPS float64
	}{
		{workload.Float(), 90},     // ~9.5 cores midday → P_cpu ≈ 0.25
		{workload.DD(), 20},        // ~600 MB/s midday → P_io ≈ 0.30
		{workload.CloudStor(), 25}, // ~6.1 Gb/s midday → P_net ≈ 0.25
	}
	var bgs []ServiceSpec
	for i, s := range specs {
		prof := s.prof
		prof.Name = "bg_" + prof.Name
		prof.QoSTarget *= 4 // background tenants have loose targets
		bgs = append(bgs, ServiceSpec{
			Profile: prof,
			Trace:   trace.NewDiurnal(s.peakQPS, s.peakQPS*0.25, dayLength.Raw(), seed+uint64(i)),
		})
	}
	return bgs
}
