//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Each
// scenario test here simulates a full compressed day; under the
// detector's ~10x slowdown the package brushes the test timeout, so the
// full-day tests skip. core.Run is single-threaded by design — its
// -race coverage comes from internal/experiments' race tests, which run
// the same code path concurrently on a short horizon.
const raceEnabled = true
