// Sharded execution (DESIGN.md §15): RunSharded partitions a scenario's
// services across K lockstep worker shards, each advancing its own set
// of isolated simulation cells on a private event heap, with cross-cell
// coupling confined to an epoch barrier every monitor sample period T.
//
// The cell is the isolation unit, not the shard: every managed service,
// every background tenant, and the contention-monitor daemon runs in
// its own cell with a private sim.Simulator (and RNG lineage), private
// serverless pool and IaaS platform, and a private telemetry bus whose
// events carry trace/span IDs from a per-cell namespace. Because a
// cell's behaviour depends only on its own seed and the pressure pushed
// at barriers — never on which worker ran it or which cells ran beside
// it — the merged output stream and the Result tables are identical for
// every K, including K=1.
//
// At each barrier the runtime sums the per-cell serverless demand in
// canonical namespace order, converts it into one pressure sample via
// the shared contention model (exactly the granularity the monitor
// observes, Eq. 8), freezes that pressure into every cell's pool for
// the next epoch, and relays the daemon monitor's estimate to each
// service cell's monitor replica. Telemetry buffers are drained at the
// same boundary and merged in (timestamp, namespace, sequence) order.
package core

import (
	"fmt"
	"sort"
	"sync"

	"amoeba/internal/arrival"
	"amoeba/internal/autoscale"
	"amoeba/internal/contention"
	"amoeba/internal/controller"
	"amoeba/internal/engine"
	"amoeba/internal/iaas"
	"amoeba/internal/metrics"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/resources"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/units"
)

const (
	// shardJobCap bounds the epoch job and completion queues. One job per
	// worker is in flight per epoch, and MaxShards caps the worker count
	// at the queue capacity, so the barrier loop never blocks mid-send.
	shardJobCap = 64
	// MaxShards is the largest accepted worker count; requests beyond it
	// (or beyond the cell count) are clamped.
	MaxShards = shardJobCap
)

// shardCell is one isolated simulation cell: a service, a background
// tenant, or the monitor daemon, with its own event heap, platforms,
// and telemetry namespace.
type shardCell struct {
	ns   int // telemetry namespace; also the canonical merge rank
	sim  *sim.Simulator
	pool *serverless.Platform
	vms  *iaas.Platform
	bus  *obs.Bus    // cell-local bus (nil when the run is unobserved)
	buf  *obs.Buffer // drained at every epoch barrier
	mon  *monitor.Monitor

	// Result wiring for service cells (nil/zero elsewhere).
	eng  *engine.Engine
	coll *metrics.Collector
}

// shardJob asks a worker to advance one group of cells to the epoch
// horizon.
type shardJob struct {
	cells   []*shardCell
	horizon sim.Time
}

// mergedEvent is one buffered telemetry event tagged with its merge key.
type mergedEvent struct {
	ev  obs.Event
	ns  int
	seq int
}

// shardRun is the barrier-loop state of one sharded execution.
type shardRun struct {
	cells  []*shardCell
	daemon *shardCell // the ns-0 monitor cell; nil for non-Amoeba variants
	model  *contention.Model
	merge  []mergedEvent // scratch, reused across epochs
}

// shardSeed derives a cell's simulator seed from the scenario seed and
// the cell namespace (splitmix64 finalizer). It depends only on (seed,
// ns), never on the shard count, so cell RNG lineages are identical for
// every K.
func shardSeed(seed uint64, ns int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(ns+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// observe equips the cell with a private bus, an epoch buffer, and a
// namespaced tracer. Unobserved runs (nil scenario bus) skip all three
// so emission sites stay on their zero-cost path.
func (c *shardCell) observe(stride int) *obs.Tracer {
	c.bus = obs.NewBus()
	c.buf = obs.NewBuffer()
	c.bus.Attach(c.buf)
	return obs.NewTracerNS(c.bus, c.ns, stride)
}

// barrier performs the epoch synchronization: aggregate the per-cell
// serverless demand in canonical namespace order, freeze the resulting
// pressure into every cell's pool for the next epoch, and relay the
// daemon monitor's latest estimate to each service cell's replica. It
// runs once per simulated sample period on the quiesced cell set — the
// shard hot loop the CI zero-alloc gate covers.
//
//amoeba:noalloc
func (r *shardRun) barrier() {
	var total resources.Vector
	for _, c := range r.cells {
		total = total.Add(c.pool.DemandNow())
	}
	pr := r.model.Pressure(total)
	for _, c := range r.cells {
		c.pool.SetSharedPressure(pr)
	}
	if r.daemon != nil {
		p := r.daemon.mon.Pressure()
		span := r.daemon.mon.LastMeterSpan()
		for _, c := range r.cells {
			if c.mon != nil && c != r.daemon {
				c.mon.PushSample(p, span)
			}
		}
	}
}

// flush drains every cell's telemetry buffer onto the scenario bus in
// canonical (timestamp, namespace, sequence) order. Within a cell the
// buffer is already time-ordered (the sim clock is non-decreasing), and
// successive epochs emit at strictly increasing times, so the merged
// stream is globally ordered — and identical for every shard count,
// because both the events and the key depend only on the cell, not on
// the worker that ran it.
func (r *shardRun) flush(bus *obs.Bus) {
	if bus == nil {
		return
	}
	r.merge = r.merge[:0]
	for _, c := range r.cells {
		for seq, ev := range c.buf.Events() {
			r.merge = append(r.merge, mergedEvent{ev: ev, ns: c.ns, seq: seq})
		}
	}
	sort.Slice(r.merge, func(i, j int) bool {
		a, b := r.merge[i], r.merge[j]
		if at, bt := a.ev.EventTime(), b.ev.EventTime(); at != bt {
			return at < bt
		}
		if a.ns != b.ns {
			return a.ns < b.ns
		}
		return a.seq < b.seq
	})
	for _, m := range r.merge {
		bus.Emit(m.ev)
	}
	for _, c := range r.cells {
		c.buf.Reset()
	}
}

// shardWorker drains epoch jobs, advancing each job's cells to the
// epoch horizon in turn. It is a shard: every mutable structure it
// touches is owned by the cells handed to it through the job, workers
// share nothing, and its only channels are the bounded queues the
// barrier loop passed in.
//
//amoeba:shard
//amoeba:bounded jobs done
func shardWorker(jobs <-chan shardJob, done chan<- struct{}) {
	for j := range jobs {
		for _, c := range j.cells {
			c.sim.Run(j.horizon)
		}
		done <- struct{}{}
	}
}

// RunSharded executes the scenario to completion on a K-worker sharded
// kernel. Output — Result tables and the merged telemetry stream on
// sc.Bus — is identical for every shards value, including shards=1;
// shards is clamped to [1, min(cells, MaxShards)]. It panics if the
// scenario fails validation or shards is not positive.
//
// Semantics differ from Run in one declared way: cells couple through
// the shared pool pressure only at epoch boundaries (period T, the
// monitor sample period), and each cell owns a private pool and IaaS
// platform, so per-run byte streams are not comparable between Run and
// RunSharded — only across shard counts.
func RunSharded(sc Scenario, shards int) *Result {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if shards < 1 {
		panic(fmt.Sprintf("core: RunSharded needs a positive shard count, got %d", shards))
	}

	slCfg := sc.serverlessConfig()
	iaasCfg := sc.iaasConfig()
	monCfg := monitor.DefaultConfig()
	monCfg.UsePCA = sc.Variant != VariantAmoebaNoM
	epoch := monCfg.SamplePeriod.Raw() // Eq. 8's T is the natural barrier period
	amoebaLike := sc.Variant == VariantAmoeba || sc.Variant == VariantAmoebaNoM || sc.Variant == VariantAmoebaNoP
	observed := sc.Bus != nil
	// Namespace layout: 0 is the monitor daemon (reserved even when the
	// variant runs none), 1..S the managed services in scenario order,
	// S+1..S+B the background tenants.
	stride := 1 + len(sc.Services) + len(sc.Background)

	res := &Result{
		Variant:    sc.Variant,
		Duration:   sc.Duration,
		Services:   make(map[string]*ServiceResult),
		Background: make(map[string]*metrics.Collector),
	}
	r := &shardRun{model: contention.NewModel(slCfg.Node.Capacity())}

	newCell := func(ns int) *shardCell {
		c := &shardCell{ns: ns, sim: sim.New(shardSeed(sc.Seed, ns))}
		c.pool = serverless.New(c.sim, slCfg)
		c.pool.SetSharedPressure(contention.Pressure{})
		r.cells = append(r.cells, c)
		return c
	}

	if amoebaLike {
		c := newCell(0)
		var tracer *obs.Tracer
		if observed {
			tracer = c.observe(stride)
			c.pool.SetBus(c.bus)
			c.pool.SetTracer(tracer)
		}
		c.mon = monitor.New(c.sim, c.pool, MeterCurves(slCfg), monCfg)
		if observed {
			c.mon.SetBus(c.bus)
			c.mon.SetTracer(tracer)
		}
		c.mon.Start()
		r.daemon = c
	}

	serviceCells := make([]*shardCell, len(sc.Services))
	for i, svc := range sc.Services {
		prof := svc.Profile
		c := newCell(1 + i)
		serviceCells[i] = c
		c.vms = iaas.New(c.sim, iaasCfg)
		var tracer *obs.Tracer
		if observed {
			tracer = c.observe(stride)
			c.pool.SetBus(c.bus)
			c.pool.SetTracer(tracer)
			c.vms.SetBus(c.bus)
			c.vms.SetTracer(tracer)
		}

		switch sc.Variant {
		case VariantNameko:
			c.coll = metrics.NewCollector(prof.Name, prof.QoSTarget)
			c.vms.Deploy(prof, c.coll.Observe)
			arrival.New(c.sim, svc.Trace, invoker(c.vms, prof.Name)).Start()

		case VariantOpenWhisk:
			c.coll = metrics.NewCollector(prof.Name, prof.QoSTarget)
			c.pool.Register(prof, c.coll.Observe)
			arrival.New(c.sim, svc.Trace, invoker(c.pool, prof.Name)).Start()

		case VariantAutoscale:
			c.coll = metrics.NewCollector(prof.Name, prof.QoSTarget)
			asCfg := autoscale.DefaultConfig()
			c.vms.DeployWithVMs(prof, asCfg.MinVMs, c.coll.Observe)
			autoscale.New(c.sim, c.vms, prof, asCfg).Start()
			arrival.New(c.sim, svc.Trace, invoker(c.vms, prof.Name)).Start()

		default: // the Amoeba variants
			c.mon = monitor.NewReplica(c.sim, monCfg)
			cc := c // the completion callbacks outlive this iteration
			c.pool.Register(prof, func(rec metrics.QueryRecord) {
				cc.eng.OnServerlessComplete(rec)
			})
			c.vms.Deploy(prof, func(rec metrics.QueryRecord) {
				cc.eng.OnIaaSComplete(rec)
			})

			set := SurfaceSet(prof, slCfg)
			pred, err := controller.NewPredictor(prof, set, c.pool.NMax(prof.Name), units.Fraction(0.95))
			if err != nil {
				panic(err) // scenario validation already vouched for these inputs
			}
			ctrl, err := controller.New(controller.DefaultConfig(), pred)
			if err != nil {
				panic(err) // DefaultConfig is always valid
			}

			engCfg := engine.DefaultConfig(slCfg.Node.Capacity())
			engCfg.SamplePeriod, err = queueing.SamplePeriod(
				slCfg.ColdStartMean, units.Seconds(prof.QoSTarget),
				units.Seconds(prof.ExecTime), sc.allowedError(), units.Seconds(10))
			if err != nil {
				panic(err) // scenario validation bounds the QoS target and error
			}
			engCfg.Prewarm = sc.Variant != VariantAmoebaNoP
			c.eng = engine.New(c.sim, c.pool, c.vms, prof, ctrl, c.mon, engCfg)
			if observed {
				c.eng.SetBus(c.bus)
				c.eng.SetTracer(tracer)
				ctrl.SetTracer(tracer)
			}
			c.coll = c.eng.Collector
			c.eng.Start()

			arrival.New(c.sim, svc.Trace, func(sim.Time) { cc.eng.HandleQuery() }).Start()

			if sc.SnapshotPeriod > 0 {
				c.sim.Every(sc.SnapshotPeriod.Raw(), func() {
					cc.eng.Timeline.RecordSnapshot(metrics.Snapshot{
						At:   float64(cc.sim.Now()),
						Mode: cc.eng.Mode(),
					})
				})
			}
		}
	}

	for i, bg := range sc.Background {
		c := newCell(1 + len(sc.Services) + i)
		if observed {
			tracer := c.observe(stride)
			c.pool.SetBus(c.bus)
			c.pool.SetTracer(tracer)
		}
		coll := metrics.NewCollector(bg.Profile.Name, bg.Profile.QoSTarget)
		res.Background[bg.Profile.Name] = coll
		c.pool.Register(bg.Profile, coll.Observe, serverless.WithNMax(64))
		arrival.New(c.sim, bg.Trace, invoker(c.pool, bg.Profile.Name)).Start()
	}

	if shards > len(r.cells) {
		shards = len(r.cells)
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	// Round-robin the cells into one group per worker. The grouping
	// balances load but cannot influence output: cells are isolated, so
	// any assignment yields the same per-cell trajectories.
	groups := make([][]*shardCell, shards)
	for i, c := range r.cells {
		groups[i%shards] = append(groups[i%shards], c)
	}

	jobs := make(chan shardJob, shardJobCap)
	done := make(chan struct{}, shardJobCap)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shardWorker(jobs, done)
		}()
	}

	// The barrier loop: advance every cell to the next epoch horizon,
	// then synchronize. The done-channel receives are the happens-before
	// edges that quiesce the cells before the barrier touches them; the
	// next round of job sends publishes the barrier's writes back.
	end := sim.Time(sc.Duration.Raw())
	for now := sim.Time(0); now < end; {
		next := now + sim.Time(epoch)
		if next > end {
			next = end
		}
		for _, g := range groups {
			jobs <- shardJob{cells: g, horizon: next}
		}
		for range groups {
			<-done
		}
		r.barrier()
		r.flush(sc.Bus)
		now = next
	}
	close(jobs)
	wg.Wait()

	for i, svc := range sc.Services {
		prof := svc.Profile
		c := serviceCells[i]
		sr := &ServiceResult{Profile: prof, Collector: c.coll, FinalWeights: monitor.InitialWeights()}
		switch sc.Variant {
		case VariantNameko, VariantAutoscale:
			sr.IaaSUsage = c.vms.UsageFor(prof.Name)
			sr.ConsumedCPUSeconds = c.vms.ConsumedCPUSeconds(prof.Name)
			sr.Timeline = &metrics.Timeline{}
		case VariantOpenWhisk:
			sr.ServerlessUsage = c.pool.UsageFor(prof.Name)
			sr.Timeline = &metrics.Timeline{}
		default:
			sr.IaaSUsage = c.vms.UsageFor(prof.Name)
			sr.ConsumedCPUSeconds = c.vms.ConsumedCPUSeconds(prof.Name)
			sr.ServerlessUsage = c.pool.UsageFor(prof.Name)
			sr.ServerlessUsage = sr.ServerlessUsage.Add(c.pool.UsageFor(prof.Name + engine.ShadowSuffix))
			sr.Timeline = c.eng.Timeline
			sr.Decisions = c.eng.Controller().Decisions()
			sr.BlockedSwitches = c.eng.BlockedSwitches()
			sr.FinalWeights = c.mon.WeightsFor(prof.Name)
			sr.ViolationWindows = c.eng.Windowed.Windows(float64(c.sim.Now()))
		}
		res.Services[prof.Name] = sr
	}
	if r.daemon != nil {
		res.MeterCPUSeconds = r.daemon.mon.MeterCPUSeconds()
	}
	for _, c := range r.cells {
		res.Events += c.sim.Events()
	}
	return res
}
