package core

import (
	"bytes"
	"testing"

	"amoeba/internal/controller"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// eventDay is a compressed 900-second day: short enough to keep the
// telemetry tests fast, long enough that amoeba switches modes (the
// amoeba-sim smoke configuration).
const eventDay = 900.0

func eventScenario(seed uint64, bus *obs.Bus) Scenario {
	prof := workload.DD()
	return Scenario{
		Variant:    VariantAmoeba,
		Services:   []ServiceSpec{{Profile: prof, Trace: trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*0.2, eventDay, seed)}},
		Background: BackgroundTenants(eventDay, seed+7),
		Duration:   eventDay,
		Seed:       seed,
		Bus:        bus,
	}
}

// TestEventStreamDeterministic is the determinism contract end to end:
// two runs of the identical scenario and seed must serialize to
// byte-identical JSONL streams.
func TestEventStreamDeterministic(t *testing.T) {
	skipIfRace(t)
	run := func() []byte {
		var buf bytes.Buffer
		bus := obs.NewBus()
		w := obs.NewJSONLWriter(&buf)
		bus.Attach(w)
		Run(eventScenario(0xA0EBA, bus))
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		if w.Count() == 0 {
			t.Fatal("run emitted no events")
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("identical-seed runs diverge at byte %d (lengths %d vs %d)", i, len(a), len(b))
	}
}

// TestEventStreamOrderedAndComplete checks the stream invariants the
// amoeba-events validator enforces: timestamps are non-decreasing and
// every expected kind appears for a scenario that switches modes.
func TestEventStreamOrderedAndComplete(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 18)
	bus.Attach(ring)
	Run(eventScenario(0xA0EBA, bus))

	last := units.Seconds(0)
	kinds := map[obs.Kind]int{}
	for _, ev := range ring.Events() {
		if at := ev.EventTime(); at < last {
			t.Fatalf("event at %v after one at %v", at, last)
		} else {
			last = at
		}
		kinds[ev.EventKind()]++
	}
	for _, k := range []obs.Kind{
		obs.KindQueryComplete, obs.KindColdStart, obs.KindDecision,
		obs.KindSwitchSpan, obs.KindHeartbeat, obs.KindMeterSample,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in a switching run", k)
		}
	}
}

// TestSwitchTimelineFromEvents is the acceptance check that every mode
// switch is explainable from the event log alone: the Fig. 12 switch
// timeline reconstructed purely from SwitchSpan records must match the
// engine's Timeline, and each switch must be preceded by a DecisionEvent
// whose verdict ordered it.
func TestSwitchTimelineFromEvents(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 18)
	bus.Attach(ring)
	prof := workload.DD()
	res := Run(eventScenario(0xA0EBA, bus))
	sr := res.Services[prof.Name]
	if len(sr.Timeline.Switches) == 0 {
		t.Fatal("scenario produced no switches; the reconstruction test needs some")
	}

	var spans []*obs.SwitchSpan
	var decisions []*obs.DecisionEvent
	for _, ev := range ring.Events() {
		switch e := ev.(type) {
		case *obs.SwitchSpan:
			if e.Service == prof.Name {
				spans = append(spans, e)
			}
		case *obs.DecisionEvent:
			if e.Service == prof.Name {
				decisions = append(decisions, e)
			}
		}
	}

	// Reconstruct the timeline: one entry per span, at the route-flip
	// instant. Spans are emitted at release, so re-sort by FlipAt.
	type flip struct {
		at   float64
		to   string
		load float64
	}
	var rebuilt []flip
	for _, sp := range spans {
		rebuilt = append(rebuilt, flip{at: sp.FlipAt.Raw(), to: sp.To, load: sp.LoadQPS.Raw()})
	}
	for i := 1; i < len(rebuilt); i++ {
		if rebuilt[i].at < rebuilt[i-1].at {
			rebuilt[i], rebuilt[i-1] = rebuilt[i-1], rebuilt[i]
		}
	}

	if len(rebuilt) != len(sr.Timeline.Switches) {
		t.Fatalf("event log has %d switch spans, timeline has %d switches",
			len(rebuilt), len(sr.Timeline.Switches))
	}
	for i, sw := range sr.Timeline.Switches {
		got := rebuilt[i]
		if got.at != sw.At || got.to != sw.To.String() || got.load != sw.LoadQPS {
			t.Errorf("switch %d: events say (t=%.1f to=%s load=%.2f), timeline says (t=%.1f to=%s load=%.2f)",
				i, got.at, got.to, got.load, sw.At, sw.To.String(), sw.LoadQPS)
		}
	}

	// Every span must be ordered by a switch-verdict decision at its
	// start instant (the audit-trail completeness property).
	for _, sp := range spans {
		found := false
		for _, d := range decisions {
			v := controller.Verdict(d.Verdict)
			if d.At == sp.Start &&
				(v == controller.VerdictSwitchIn || v == controller.VerdictSwitchOut) &&
				d.Target == sp.To {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("switch span starting at %v to %s has no ordering DecisionEvent", sp.Start, sp.To)
		}
	}

	// Span phase accounting: a non-aborted span's phases tile [Start, End].
	for _, sp := range spans {
		if sp.Aborted {
			continue
		}
		sum := sp.Start + sp.PrewarmS + sp.AckS + sp.FlipS + sp.DrainS + sp.ReleaseS
		if diff := (sum - sp.End).Raw(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("span at %v: phases sum to %v, End is %v", sp.Start, sum, sp.End)
		}
		if sp.End < sp.FlipAt || sp.FlipAt < sp.Start {
			t.Errorf("span at %v: Start/FlipAt/End out of order", sp.Start)
		}
	}
}

// TestMetricsSinkMatchesCollector cross-checks the registry sink against
// the run's own collector: both count the same completed queries.
func TestMetricsSinkMatchesCollector(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	bus.Attach(obs.NewMetricsSink(reg))
	prof := workload.DD()
	res := Run(eventScenario(0xA0EBA, bus))
	sr := res.Services[prof.Name]

	got := reg.Counter(obs.Labeled("amoeba_queries_total",
		"service", prof.Name, "backend", metrics.BackendIaaS.String())).Value() +
		reg.Counter(obs.Labeled("amoeba_queries_total",
			"service", prof.Name, "backend", metrics.BackendServerless.String())).Value()
	if int(got) != sr.Collector.Count() {
		t.Errorf("registry counted %d %s queries, collector %d", got, prof.Name, sr.Collector.Count())
	}

	h := reg.Histogram(obs.Labeled("amoeba_latency_seconds", "service", prof.Name), 1e-3, 100, 32)
	if int(h.Count()) != sr.Collector.Count() {
		t.Errorf("latency histogram has %d observations, collector %d", h.Count(), sr.Collector.Count())
	}
	// The bounded histogram's p95 must sit within its error bound of the
	// collector's exact p95.
	exact := sr.Collector.P95()
	if exact > 0 {
		rel := (h.P95() - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		if rel > 2.0/32 {
			t.Errorf("histogram p95 %.4f vs exact %.4f: rel err %.3f", h.P95(), exact, rel)
		}
	}
}
