package core

import (
	"bytes"
	"sync"
	"testing"

	"amoeba/internal/controller"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/stats"
	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// eventDay is a compressed 900-second day: short enough to keep the
// telemetry tests fast, long enough that amoeba switches modes (the
// amoeba-sim smoke configuration).
const eventDay = 900.0

func eventScenario(seed uint64, bus *obs.Bus) Scenario {
	prof := workload.DD()
	return Scenario{
		Variant:    VariantAmoeba,
		Services:   []ServiceSpec{{Profile: prof, Trace: trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*0.2, eventDay, seed)}},
		Background: BackgroundTenants(eventDay, seed+7),
		Duration:   eventDay,
		Seed:       seed,
		Bus:        bus,
	}
}

// TestEventStreamDeterministic is the determinism contract end to end:
// two runs of the identical scenario and seed must serialize to
// byte-identical JSONL streams.
func TestEventStreamDeterministic(t *testing.T) {
	skipIfRace(t)
	run := func() []byte {
		var buf bytes.Buffer
		bus := obs.NewBus()
		w := obs.NewJSONLWriter(&buf)
		bus.Attach(w)
		Run(eventScenario(0xA0EBA, bus))
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		if w.Count() == 0 {
			t.Fatal("run emitted no events")
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("identical-seed runs diverge at byte %d (lengths %d vs %d)", i, len(a), len(b))
	}
}

// TestEventStreamOrderedAndComplete checks the stream invariants the
// amoeba-events validator enforces: timestamps are non-decreasing and
// every expected kind appears for a scenario that switches modes.
func TestEventStreamOrderedAndComplete(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 18)
	bus.Attach(ring)
	Run(eventScenario(0xA0EBA, bus))

	last := units.Seconds(0)
	kinds := map[obs.Kind]int{}
	for _, ev := range ring.Events() {
		if at := ev.EventTime(); at < last {
			t.Fatalf("event at %v after one at %v", at, last)
		} else {
			last = at
		}
		kinds[ev.EventKind()]++
	}
	for _, k := range []obs.Kind{
		obs.KindQueryComplete, obs.KindColdStart, obs.KindDecision,
		obs.KindSwitchSpan, obs.KindHeartbeat, obs.KindMeterSample,
		obs.KindPhaseSpan,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in a switching run", k)
		}
	}
}

// TestSwitchTimelineFromEvents is the acceptance check that every mode
// switch is explainable from the event log alone: the Fig. 12 switch
// timeline reconstructed purely from SwitchSpan records must match the
// engine's Timeline, and each switch must be preceded by a DecisionEvent
// whose verdict ordered it.
func TestSwitchTimelineFromEvents(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 18)
	bus.Attach(ring)
	prof := workload.DD()
	res := Run(eventScenario(0xA0EBA, bus))
	sr := res.Services[prof.Name]
	if len(sr.Timeline.Switches) == 0 {
		t.Fatal("scenario produced no switches; the reconstruction test needs some")
	}

	var spans []*obs.SwitchSpan
	var decisions []*obs.DecisionEvent
	for _, ev := range ring.Events() {
		switch e := ev.(type) {
		case *obs.SwitchSpan:
			if e.Service == prof.Name {
				spans = append(spans, e)
			}
		case *obs.DecisionEvent:
			if e.Service == prof.Name {
				decisions = append(decisions, e)
			}
		}
	}

	// Reconstruct the timeline: one entry per span, at the route-flip
	// instant. Spans are emitted at release, so re-sort by FlipAt.
	type flip struct {
		at   float64
		to   string
		load float64
	}
	var rebuilt []flip
	for _, sp := range spans {
		rebuilt = append(rebuilt, flip{at: sp.FlipAt.Raw(), to: sp.To, load: sp.LoadQPS.Raw()})
	}
	for i := 1; i < len(rebuilt); i++ {
		if rebuilt[i].at < rebuilt[i-1].at {
			rebuilt[i], rebuilt[i-1] = rebuilt[i-1], rebuilt[i]
		}
	}

	if len(rebuilt) != len(sr.Timeline.Switches) {
		t.Fatalf("event log has %d switch spans, timeline has %d switches",
			len(rebuilt), len(sr.Timeline.Switches))
	}
	for i, sw := range sr.Timeline.Switches {
		got := rebuilt[i]
		if got.at != sw.At || got.to != sw.To.String() || got.load != sw.LoadQPS {
			t.Errorf("switch %d: events say (t=%.1f to=%s load=%.2f), timeline says (t=%.1f to=%s load=%.2f)",
				i, got.at, got.to, got.load, sw.At, sw.To.String(), sw.LoadQPS)
		}
	}

	// Every span must be ordered by a switch-verdict decision at its
	// start instant (the audit-trail completeness property).
	for _, sp := range spans {
		found := false
		for _, d := range decisions {
			v := controller.Verdict(d.Verdict)
			if d.At == sp.Start &&
				(v == controller.VerdictSwitchIn || v == controller.VerdictSwitchOut) &&
				d.Target == sp.To {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("switch span starting at %v to %s has no ordering DecisionEvent", sp.Start, sp.To)
		}
	}

	// Span phase accounting: a non-aborted span's phases tile [Start, End].
	for _, sp := range spans {
		if sp.Aborted {
			continue
		}
		sum := sp.Start + sp.PrewarmS + sp.AckS + sp.FlipS + sp.DrainS + sp.ReleaseS
		if diff := (sum - sp.End).Raw(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("span at %v: phases sum to %v, End is %v", sp.Start, sum, sp.End)
		}
		if sp.End < sp.FlipAt || sp.FlipAt < sp.Start {
			t.Errorf("span at %v: Start/FlipAt/End out of order", sp.Start)
		}
	}
}

// TestTraceDAGReconstruction is the tentpole acceptance check: the
// latency anatomy of a traced run must be reconstructable from spans
// alone. Every completed query is a traced root; its phase children
// tile the root interval exactly; the p95 and the per-60s-window QoS
// violation tallies recomputed purely from root spans match the
// engine's own Collector and WindowedViolations.
func TestTraceDAGReconstruction(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 20)
	bus.Attach(ring)
	prof := workload.DD()
	res := Run(eventScenario(0xA0EBA, bus))
	sr := res.Services[prof.Name]

	children := map[obs.SpanID][]*obs.PhaseSpan{}
	var roots []*obs.QueryComplete
	for _, ev := range ring.Events() {
		switch e := ev.(type) {
		case *obs.PhaseSpan:
			if e.Parent != 0 {
				children[e.Parent] = append(children[e.Parent], e)
			}
		case *obs.QueryComplete:
			if e.Service == prof.Name {
				roots = append(roots, e)
			}
		}
	}
	if len(roots) == 0 {
		t.Fatal("no query roots in the stream")
	}
	if len(roots) != sr.Collector.Count() {
		t.Fatalf("%d query roots, collector observed %d", len(roots), sr.Collector.Count())
	}

	lat := stats.NewSample(len(roots))
	windows := map[float64]*metrics.ViolationWindow{}
	for _, qc := range roots {
		if qc.Trace == 0 || qc.Span == 0 {
			t.Fatalf("untraced query root at %v on a traced run", qc.At)
		}
		// The root interval is the latency; its phase children tile it
		// (zero-length phases are dropped and contribute zero).
		l := (qc.At - qc.Arrived).Raw()
		var sum float64
		for _, ph := range children[qc.Span] {
			if ph.Trace != qc.Trace {
				t.Fatalf("phase span %d crosses from trace %d into %d", ph.Span, ph.Trace, qc.Trace)
			}
			if ph.Start < qc.Arrived || ph.End > qc.At {
				t.Fatalf("phase %q [%v, %v] escapes root [%v, %v]",
					ph.Phase, ph.Start, ph.End, qc.Arrived, qc.At)
			}
			sum += (ph.End - ph.Start).Raw()
		}
		if diff := sum - l; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("query at %v: phases sum to %v, root interval is %v", qc.At, sum, l)
		}
		lat.Add(l)
		start := float64(int(qc.At.Raw()/60)) * 60
		w := windows[start]
		if w == nil {
			w = &metrics.ViolationWindow{Start: start}
			windows[start] = w
		}
		w.Queries++
		if l > prof.QoSTarget {
			w.Violations++
		}
	}

	exact := sr.Collector.P95()
	rebuilt := lat.P95()
	rel := (rebuilt - exact) / exact
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-6 {
		t.Errorf("span-reconstructed p95 %.9f vs collector %.9f (rel err %.2e)", rebuilt, exact, rel)
	}

	if len(sr.ViolationWindows) == 0 {
		t.Fatal("run closed no violation windows")
	}
	for _, w := range sr.ViolationWindows {
		got := windows[w.Start]
		if got == nil {
			if w.Queries != 0 {
				t.Errorf("window @%v: engine saw %d queries, spans saw none", w.Start, w.Queries)
			}
			continue
		}
		if got.Queries != w.Queries || got.Violations != w.Violations {
			t.Errorf("window @%v: spans say %d/%d violations, engine says %d/%d",
				w.Start, got.Violations, got.Queries, w.Violations, w.Queries)
		}
	}
}

// TestTraceCausalEdges checks the cross-trace edges: queries displaced
// while a switch is in flight carry the switch span as their Cause,
// drain phases parent to the switch span, the switch points back at the
// ordering decision, and decisions point at the meter sample their
// pressure inputs came from.
func TestTraceCausalEdges(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	ring := obs.NewRing(1 << 20)
	bus.Attach(ring)
	Run(eventScenario(0xA0EBA, bus))

	spans := map[obs.SpanID]obs.Kind{}
	var switches []*obs.SwitchSpan
	var caused []*obs.QueryComplete
	var drains []*obs.PhaseSpan
	var decisions []*obs.DecisionEvent
	for _, ev := range ring.Events() {
		switch e := ev.(type) {
		case *obs.SwitchSpan:
			spans[e.Span] = e.EventKind()
			switches = append(switches, e)
		case *obs.DecisionEvent:
			spans[e.Span] = e.EventKind()
			decisions = append(decisions, e)
		case *obs.MeterSample:
			spans[e.Span] = e.EventKind()
		case *obs.QueryComplete:
			if e.Cause != 0 {
				caused = append(caused, e)
			}
		case *obs.PhaseSpan:
			if e.Phase == obs.PhaseDrain {
				drains = append(drains, e)
			}
		}
	}
	if len(switches) == 0 {
		t.Fatal("scenario produced no switches")
	}
	if len(caused) == 0 {
		t.Fatal("no queries were displaced by a switch — the causal-edge path never ran")
	}
	for _, qc := range caused {
		if spans[qc.Cause] != obs.KindSwitchSpan {
			t.Fatalf("query cause %d resolves to %q, want a switch span", qc.Cause, spans[qc.Cause])
		}
	}
	if len(drains) == 0 {
		t.Fatal("no drain phase spans in a switching run")
	}
	for _, d := range drains {
		if spans[d.Parent] != obs.KindSwitchSpan {
			t.Fatalf("drain parent %d resolves to %q, want a switch span", d.Parent, spans[d.Parent])
		}
	}
	for _, sp := range switches {
		if sp.Decision == 0 || spans[sp.Decision] != obs.KindDecision {
			t.Fatalf("switch span %d decision edge %d resolves to %q, want a decision",
				sp.Span, sp.Decision, spans[sp.Decision])
		}
	}
	meterEdges := 0
	for _, d := range decisions {
		if d.MeterSpan != 0 {
			if spans[d.MeterSpan] != obs.KindMeterSample {
				t.Fatalf("decision meter edge %d resolves to %q, want a meter sample",
					d.MeterSpan, spans[d.MeterSpan])
			}
			meterEdges++
		}
	}
	if meterEdges == 0 {
		t.Fatal("no decision carries a meter-sample edge")
	}
}

// TestTraceStreamParallelDeterministic runs the traced scenario
// concurrently — each run with its own bus and tracer, the sweep
// driver's configuration — and requires every stream byte-identical to
// a sequential run. Dense per-run ID counters, not global ones, are
// what this pins.
func TestTraceStreamParallelDeterministic(t *testing.T) {
	skipIfRace(t)
	run := func() []byte {
		var buf bytes.Buffer
		bus := obs.NewBus()
		w := obs.NewJSONLWriter(&buf)
		bus.Attach(w)
		Run(eventScenario(0xA0EBA, bus))
		return buf.Bytes()
	}
	want := run()
	const n = 3
	got := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if !bytes.Equal(g, want) {
			j := 0
			for j < len(g) && j < len(want) && g[j] == want[j] {
				j++
			}
			t.Fatalf("parallel run %d diverges from sequential at byte %d", i, j)
		}
	}
}

// TestMetricsSinkMatchesCollector cross-checks the registry sink against
// the run's own collector: both count the same completed queries.
func TestMetricsSinkMatchesCollector(t *testing.T) {
	skipIfRace(t)
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	bus.Attach(obs.NewMetricsSink(reg))
	prof := workload.DD()
	res := Run(eventScenario(0xA0EBA, bus))
	sr := res.Services[prof.Name]

	got := reg.Counter(obs.Labeled("amoeba_queries_total",
		"service", prof.Name, "backend", metrics.BackendIaaS.String())).Value() +
		reg.Counter(obs.Labeled("amoeba_queries_total",
			"service", prof.Name, "backend", metrics.BackendServerless.String())).Value()
	if int(got) != sr.Collector.Count() {
		t.Errorf("registry counted %d %s queries, collector %d", got, prof.Name, sr.Collector.Count())
	}

	h := reg.Histogram(obs.Labeled("amoeba_latency_seconds", "service", prof.Name), 1e-3, 100, 32)
	if int(h.Count()) != sr.Collector.Count() {
		t.Errorf("latency histogram has %d observations, collector %d", h.Count(), sr.Collector.Count())
	}
	// The bounded histogram's p95 must sit within its error bound of the
	// collector's exact p95.
	exact := sr.Collector.P95()
	if exact > 0 {
		rel := (h.P95() - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		if rel > 2.0/32 {
			t.Errorf("histogram p95 %.4f vs exact %.4f: rel err %.3f", h.P95(), exact, rel)
		}
	}
}
