package core

import (
	"fmt"

	"amoeba/internal/trace"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// SyntheticFleet generates an O(n)-service fleet-shaped scenario input:
// n managed services cycling through the five profiled archetypes, with
// per-service diurnal arrival rates skewed Zipf-style (service i's peak
// scales as 1/(1+i mod 10), plus seeded jitter) so a few services carry
// most of the load — the shape a fleet-scale scheduler actually sees.
// Profiles keep their archetype's numeric content (only the name
// changes), so provisioning and the memoised latency surfaces are
// shared across clones; the skew lives entirely in the arrival traces.
//
// The fleet is deterministic in (n, seed) and independent of shard
// count; the sharded benchmarks and determinism tests build their
// scenarios from it. It panics if n is not positive.
func SyntheticFleet(n int, seed uint64) []ServiceSpec {
	if n < 1 {
		panic(fmt.Sprintf("core: SyntheticFleet needs a positive service count, got %d", n))
	}
	archetypes := []workload.Profile{
		workload.Float(),
		workload.Matmul(),
		workload.Linpack(),
		workload.DD(),
		workload.CloudStor(),
	}
	const dayLength = 3600.0 // one compressed diurnal day, in seconds
	specs := make([]ServiceSpec, 0, n)
	for i := 0; i < n; i++ {
		prof := archetypes[i%len(archetypes)]
		prof.Name = fmt.Sprintf("svc_%03d_%s", i, prof.Name)
		// Zipf-ish skew over the fleet index, folded at 10 so every
		// archetype gets both hot and cold instances, with a seeded
		// jitter in [0.75, 1.25) so equal ranks still differ.
		rank := i%10 + 1
		jitter := 0.75 + 0.5*float64(shardSeed(seed, i)%1024)/1024
		peak := prof.PeakQPS * jitter / float64(rank)
		specs = append(specs, ServiceSpec{
			Profile: prof,
			Trace:   trace.NewDiurnal(peak, peak*0.25, dayLength, seed+uint64(i)),
		})
	}
	return specs
}

// FleetScenario wraps a SyntheticFleet into a runnable scenario with
// the standard background tenants, for benchmarks and tests that need a
// large fleet without hand-assembly.
func FleetScenario(n int, seed uint64, duration units.Seconds) Scenario {
	return Scenario{
		Variant:    VariantAmoeba,
		Services:   SyntheticFleet(n, seed),
		Background: BackgroundTenants(duration, seed),
		Duration:   duration,
		Seed:       seed,
	}
}
