package core

import (
	"fmt"
	"sync"

	"amoeba/internal/meters"
	"amoeba/internal/profiling"
	"amoeba/internal/serverless"
	"amoeba/internal/surfaces"
	"amoeba/internal/workload"
)

// Profiling (meter curves, latency surfaces) is an offline step the paper
// performs once per microservice ("for a long-running microservice, it is
// acceptable to profile it", §IV-B). Experiments re-run many scenarios
// over the same profiles, so the results are memoised process-wide, keyed
// by the platform configuration they were measured under.

var (
	cacheMu      sync.Mutex
	curveCache   = map[string][3]*meters.Curve{}
	surfaceCache = map[string]*surfaces.Set{}
)

// fingerprint captures every config field that influences profiled
// latencies.
func fingerprint(cfg serverless.Config) string {
	return fmt.Sprintf("%v|%v|%v|%v|%v|%v",
		cfg.Node.Capacity(), cfg.ColdStartMean, cfg.CodeLoadColdFactor,
		cfg.IdleTimeout, cfg.ContainerMemMB, cfg.MemReserve)
}

// MeterCurves returns the profiled Fig. 8 curves for the three contention
// meters under the given platform configuration, building them on first
// use.
func MeterCurves(cfg serverless.Config) [3]*meters.Curve {
	key := fingerprint(cfg)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if c, ok := curveCache[key]; ok {
		return c
	}
	c := profiling.AllMeterCurves(cfg, profiling.DefaultPressureGrid(), profiling.DefaultOptions())
	curveCache[key] = c
	return c
}

// profileFingerprint captures every profile field that influences the
// profiled surfaces — everything except the name. Keying the memo by
// content instead of name lets fleets of renamed archetype clones
// (core.SyntheticFleet) share the five archetype builds instead of
// re-profiling per clone.
func profileFingerprint(p workload.Profile) string {
	return fmt.Sprintf("%v|%v|%v|%v|%v|%v|%v|%v|%v|%v",
		p.ExecTime, p.ExecCV, p.QoSTarget, p.Demand, p.Sensitivity,
		p.MemSensitivity, p.PeakQPS, p.Overheads, p.VMCores, p.VMMemMB)
}

// SurfaceSet returns the profiled Fig. 9 latency surfaces for a service
// under the given platform configuration, building them on first use.
// The memo key is the profile's numeric content, not its name: two
// profiles differing only in name share one build.
func SurfaceSet(prof workload.Profile, cfg serverless.Config) *surfaces.Set {
	key := profileFingerprint(prof) + "§" + fingerprint(cfg)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	set, ok := surfaceCache[key]
	if !ok {
		set = profiling.BuildSet(prof, cfg,
			profiling.DefaultPressureGrid(), profiling.DefaultLoadGrid(prof), profiling.DefaultOptions())
		surfaceCache[key] = set
	}
	if set.Service != prof.Name {
		// A renamed clone of a cached build: the surfaces themselves are
		// immutable after profiling, so share them and rebind the label.
		return &surfaces.Set{Service: prof.Name, Surfaces: set.Surfaces}
	}
	return set
}

// ResetProfileCache clears the memoised profiling results (tests use it to
// exercise rebuilds).
func ResetProfileCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	curveCache = map[string][3]*meters.Curve{}
	surfaceCache = map[string]*surfaces.Set{}
}
