package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"amoeba/internal/contention"
	"amoeba/internal/monitor"
	"amoeba/internal/obs"
	"amoeba/internal/serverless"
	"amoeba/internal/sim"
	"amoeba/internal/units"
)

// shardedStream runs a fleet scenario on the sharded kernel and returns
// its JSONL event stream and result.
func shardedStream(t *testing.T, n int, seed uint64, duration units.Seconds, shards int) ([]byte, *Result) {
	t.Helper()
	sc := FleetScenario(n, seed, duration)
	var buf bytes.Buffer
	bus := obs.NewBus()
	w := obs.NewJSONLWriter(&buf)
	bus.Attach(w)
	sc.Bus = bus
	res := RunSharded(sc, shards)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Count() == 0 {
		t.Fatal("sharded run emitted no events")
	}
	return buf.Bytes(), res
}

// resultTable projects a Result onto a comparable string: every field
// the acceptance contract covers, per service in canonical order.
func resultTable(res *Result) string {
	var b bytes.Buffer
	names := make([]string, 0, len(res.Services))
	for name := range res.Services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sr := res.Services[name]
		fmt.Fprintf(&b, "%s n=%d p95=%.9f viol=%.9f iaas=%v sl=%v cpu=%.9f dec=%d blocked=%d w=%v\n",
			name, sr.Collector.Count(), sr.Collector.P95(), sr.Collector.ViolationFraction(),
			sr.IaaSUsage, sr.ServerlessUsage, sr.ConsumedCPUSeconds,
			len(sr.Decisions), sr.BlockedSwitches, sr.FinalWeights)
	}
	bgNames := make([]string, 0, len(res.Background))
	for name := range res.Background {
		bgNames = append(bgNames, name)
	}
	sort.Strings(bgNames)
	for _, name := range bgNames {
		coll := res.Background[name]
		fmt.Fprintf(&b, "bg %s n=%d p95=%.9f\n", name, coll.Count(), coll.P95())
	}
	fmt.Fprintf(&b, "meter=%.9f events=%d\n", res.MeterCPUSeconds, res.Events)
	return b.String()
}

// TestRunShardedDeterministicAcrossShardCounts is the tentpole's
// acceptance contract: for each seed, the JSONL event stream and the
// Result tables must be identical for every shard count, including
// K=1 — the worker partitioning must be invisible in the output.
func TestRunShardedDeterministicAcrossShardCounts(t *testing.T) {
	skipIfRace(t)
	for _, seed := range []uint64{3, 11, 42} {
		refStream, refRes := shardedStream(t, 10, seed, 120, 1)
		refTable := resultTable(refRes)
		for _, k := range []int{2, 4, 8} {
			stream, res := shardedStream(t, 10, seed, 120, k)
			if !bytes.Equal(refStream, stream) {
				t.Fatalf("seed %d: JSONL stream at shards=%d differs from shards=1", seed, k)
			}
			if table := resultTable(res); table != refTable {
				t.Fatalf("seed %d: result table at shards=%d differs from shards=1:\n%s\nvs\n%s",
					seed, k, table, refTable)
			}
		}
	}
}

// TestRunShardedRaceShort is the -race variant of the determinism
// contract: a short horizon with enough cells that every worker owns
// several, exercising the job hand-off and barrier happens-before
// edges under the detector.
func TestRunShardedRaceShort(t *testing.T) {
	a, resA := shardedStream(t, 6, 7, 60, 4)
	b, resB := shardedStream(t, 6, 7, 60, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("short-horizon streams differ between shards=4 and shards=2")
	}
	if resultTable(resA) != resultTable(resB) {
		t.Fatal("short-horizon result tables differ between shards=4 and shards=2")
	}
}

// TestRunShardedClampsAndRejects pins the shard-count edge cases: a
// non-positive count panics, a count beyond the cell count is clamped
// (and still deterministic against K=1).
func TestRunShardedClampsAndRejects(t *testing.T) {
	skipIfRace(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RunSharded(0) did not panic")
			}
		}()
		RunSharded(FleetScenario(2, 1, 30), 0)
	}()

	ref, _ := shardedStream(t, 2, 9, 60, 1)
	big, _ := shardedStream(t, 2, 9, 60, 1000) // 6 cells; clamps to 6
	if !bytes.Equal(ref, big) {
		t.Fatal("clamped oversized shard count changed the stream")
	}
}

// TestRunShardedVariants checks the sharded kernel wires every variant:
// the baselines run without a monitor daemon, the ablations with one.
func TestRunShardedVariants(t *testing.T) {
	skipIfRace(t)
	for _, v := range []Variant{VariantAmoebaNoM, VariantAmoebaNoP, VariantNameko, VariantOpenWhisk, VariantAutoscale} {
		sc := FleetScenario(4, 5, 60)
		sc.Variant = v
		res := RunSharded(sc, 3)
		if len(res.Services) != 4 {
			t.Fatalf("%v: %d service results, want 4", v, len(res.Services))
		}
		for name, sr := range res.Services {
			if sr.Collector == nil || sr.Collector.Count() == 0 {
				t.Fatalf("%v: service %s served no queries", v, name)
			}
		}
		amoebaLike := v == VariantAmoebaNoM || v == VariantAmoebaNoP
		if amoebaLike && res.MeterCPUSeconds == 0 {
			t.Fatalf("%v: no meter overhead recorded", v)
		}
		if !amoebaLike && res.MeterCPUSeconds != 0 {
			t.Fatalf("%v: unexpected meter overhead %v", v, res.MeterCPUSeconds)
		}
	}
}

// barrierFixture assembles a minimal shardRun — a daemon-sized replica
// cell plus two service-like replica cells — for the hot-loop alloc
// contract. Monitor replicas stand in for the daemon: the barrier only
// reads Pressure/LastMeterSpan, which replicas serve identically.
func barrierFixture() *shardRun {
	slCfg := serverless.DefaultConfig()
	monCfg := monitor.DefaultConfig()
	r := &shardRun{model: contention.NewModel(slCfg.Node.Capacity())}
	for ns := 0; ns < 3; ns++ {
		c := &shardCell{ns: ns, sim: sim.New(shardSeed(1, ns))}
		c.pool = serverless.New(c.sim, slCfg)
		c.pool.SetSharedPressure(contention.Pressure{})
		c.mon = monitor.NewReplica(c.sim, monCfg)
		r.cells = append(r.cells, c)
	}
	r.daemon = r.cells[0]
	return r
}

// TestShardBarrierZeroAlloc asserts the epoch barrier — demand
// aggregation, pressure freeze, and monitor relay — allocates nothing,
// backing the //amoeba:noalloc annotations on the shard hot loop.
//
//amoeba:alloctest core.shardRun.barrier serverless.Platform.SetSharedPressure
//amoeba:alloctest serverless.Platform.currentPressure monitor.Monitor.PushSample
func TestShardBarrierZeroAlloc(t *testing.T) {
	r := barrierFixture()
	if allocs := testing.AllocsPerRun(200, func() {
		r.barrier()
		_ = r.cells[1].pool.Pressure() // currentPressure in shared mode
	}); allocs != 0 {
		t.Fatalf("epoch barrier allocates %.1f times per run, want 0", allocs)
	}
}

// TestSharedPressureFreezesSlowdownInput pins the shared-pressure mode:
// once installed, the platform reports the external pressure regardless
// of its own demand, until the next install.
func TestSharedPressureFreezesSlowdownInput(t *testing.T) {
	s := sim.New(1)
	p := serverless.New(s, serverless.DefaultConfig())
	if got := p.Pressure(); got != (contention.Pressure{}) {
		t.Fatalf("idle platform pressure = %+v, want zero", got)
	}
	want := contention.Pressure{CPU: 0.25, IO: 0.5, Net: 0.125}
	p.SetSharedPressure(want)
	if got := p.Pressure(); got != want {
		t.Fatalf("shared pressure = %+v, want %+v", got, want)
	}
	// Self-derived demand no longer feeds the reading.
	p.InjectDemand(serverless.DefaultConfig().Node.Capacity().Scale(0.5))
	if got := p.Pressure(); got != want {
		t.Fatalf("pressure after demand injection = %+v, want frozen %+v", got, want)
	}
	next := contention.Pressure{CPU: 0.75}
	p.SetSharedPressure(next)
	if got := p.Pressure(); got != next {
		t.Fatalf("refreshed shared pressure = %+v, want %+v", got, next)
	}
}

// TestMonitorReplicaRelay pins the replica half of the split monitor:
// PushSample installs the daemon's estimate and meter span, heartbeats
// calibrate locally, and the zero-span guard keeps the last causal
// edge.
func TestMonitorReplicaRelay(t *testing.T) {
	m := monitor.NewReplica(sim.New(1), monitor.DefaultConfig())
	if got := m.Pressure(); got != [3]float64{} {
		t.Fatalf("fresh replica pressure = %v, want zero", got)
	}
	m.PushSample([3]float64{0.1, 0.2, 0.3}, 42)
	if got := m.Pressure(); got != [3]float64{0.1, 0.2, 0.3} {
		t.Fatalf("pressure = %v after push", got)
	}
	if got := m.LastMeterSpan(); got != 42 {
		t.Fatalf("meter span = %d, want 42", got)
	}
	m.PushSample([3]float64{0.4, 0.5, 0.6}, 0) // untraced daemon: span kept
	if got := m.LastMeterSpan(); got != 42 {
		t.Fatalf("meter span = %d after zero push, want 42", got)
	}
	cfg := monitor.DefaultConfig()
	for i := 0; i < cfg.MinSamples+1; i++ {
		m.Heartbeat("svc", [3]float64{0.2, 0.1, 0.05}, 1.3)
	}
	if w := m.WeightsFor("svc"); !w.Learned {
		t.Fatal("replica did not calibrate from heartbeats")
	}
}

// TestSyntheticFleet pins the fleet generator: deterministic in (n,
// seed), validating as a scenario, skewed across services, and panicking
// on a non-positive count.
func TestSyntheticFleet(t *testing.T) {
	a := SyntheticFleet(100, 7)
	b := SyntheticFleet(100, 7)
	if len(a) != 100 {
		t.Fatalf("fleet size %d, want 100", len(a))
	}
	sc := Scenario{Variant: VariantAmoeba, Services: a, Duration: 60, Seed: 7}
	if err := sc.Validate(); err != nil {
		t.Fatalf("fleet scenario invalid: %v", err)
	}
	peaks := make(map[float64]bool)
	for i := range a {
		if a[i].Profile.Name != b[i].Profile.Name {
			t.Fatalf("service %d name differs across identical seeds", i)
		}
		if pa, pb := a[i].Trace.Peak(), b[i].Trace.Peak(); pa != pb {
			t.Fatalf("service %d peak %v != %v across identical seeds", i, pa, pb)
		}
		peaks[a[i].Trace.Peak()] = true
	}
	if len(peaks) < 50 {
		t.Fatalf("only %d distinct peak rates across 100 services — skew missing", len(peaks))
	}
	if c := SyntheticFleet(100, 8); a[0].Trace.Peak() == c[0].Trace.Peak() {
		t.Fatal("different seeds produced identical first-service peaks")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SyntheticFleet(0) did not panic")
			}
		}()
		SyntheticFleet(0, 1)
	}()
}

// TestSurfaceSetSharedAcrossRenamedClones pins the content-keyed memo:
// two profiles differing only in name share one profiled build (same
// surface pointers) while each keeps its own service label.
func TestSurfaceSetSharedAcrossRenamedClones(t *testing.T) {
	skipIfRace(t)
	cfg := serverless.DefaultConfig()
	fleet := SyntheticFleet(10, 3)
	base, clone := fleet[0].Profile, fleet[5].Profile // same archetype, different names
	if base.Name == clone.Name {
		t.Fatalf("fixture broken: %q == %q", base.Name, clone.Name)
	}
	sa := SurfaceSet(base, cfg)
	sb := SurfaceSet(clone, cfg)
	if sa.Service != base.Name || sb.Service != clone.Name {
		t.Fatalf("service labels %q/%q, want %q/%q", sa.Service, sb.Service, base.Name, clone.Name)
	}
	if sa.Surfaces != sb.Surfaces {
		t.Fatal("renamed clone re-profiled instead of sharing the cached surfaces")
	}
}
