package core

import (
	"testing"

	"amoeba/internal/metrics"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func TestNoMUsesAtLeastAsMuchAsAmoeba(t *testing.T) {
	skipIfRace(t)
	prof := workload.Float()
	am := Run(scenarioFor(prof, VariantAmoeba, 21)).Services[prof.Name]
	nom := Run(scenarioFor(prof, VariantAmoebaNoM, 21)).Services[prof.Name]
	if !nom.Collector.QoSMet() {
		t.Error("NoM violated QoS; pessimism must be safe")
	}
	if nom.TotalUsage().CPU < am.TotalUsage().CPU*0.98 {
		t.Errorf("NoM CPU %v markedly below Amoeba %v",
			nom.TotalUsage().CPU, am.TotalUsage().CPU)
	}
	if nom.FinalWeights.Learned {
		t.Error("NoM reported learned weights")
	}
	if !am.FinalWeights.Learned {
		t.Error("Amoeba never calibrated over a full day")
	}
}

func TestNoPViolatesMoreThanAmoeba(t *testing.T) {
	skipIfRace(t)
	prof := workload.CloudStor()
	am := Run(scenarioFor(prof, VariantAmoeba, 22)).Services[prof.Name]
	nop := Run(scenarioFor(prof, VariantAmoebaNoP, 22)).Services[prof.Name]
	if len(nop.Timeline.Switches) == 0 {
		t.Skip("no switches this seed; NoP indistinguishable")
	}
	if nop.Collector.ViolationFraction() <= am.Collector.ViolationFraction() {
		t.Errorf("NoP violations %v not above Amoeba %v",
			nop.Collector.ViolationFraction(), am.Collector.ViolationFraction())
	}
}

func TestBurstForcesSwitchOut(t *testing.T) {
	skipIfRace(t)
	// A service cruising on serverless gets hit by a sustained burst well
	// beyond its admissible load: Amoeba must retreat to IaaS and keep
	// the 95%-ile intact over the whole run.
	prof := workload.DD()
	low := prof.PeakQPS * 0.2
	sc := Scenario{
		Variant: VariantAmoeba,
		Services: []ServiceSpec{{
			Profile: prof,
			Trace: trace.Burst{
				Inner: trace.Constant{QPS: low},
				Extra: prof.PeakQPS - low,
				From:  1200, To: 2800,
			},
		}},
		Background: background(23),
		Duration:   testDay,
		Seed:       23,
	}
	res := Run(sc)
	sr := res.Services[prof.Name]
	if sr.Timeline.SwitchCount(metrics.BackendIaaS) == 0 {
		t.Fatal("burst did not force a switch to IaaS")
	}
	if !sr.Collector.QoSMet() {
		t.Errorf("QoS violated across the burst: p95 %v > %v (violations %.2f%%)",
			sr.Collector.P95(), prof.QoSTarget, 100*sr.Collector.ViolationFraction())
	}
	// After the burst it must come back to serverless.
	last := sr.Timeline.Switches[len(sr.Timeline.Switches)-1]
	if last.To != metrics.BackendServerless || last.At < 2800 {
		t.Errorf("did not return to serverless after the burst: last switch %+v", last)
	}
}

func TestMultiDayRunStable(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("multi-day run in -short mode")
	}
	prof := workload.Float()
	sc := scenarioFor(prof, VariantAmoeba, 24)
	sc.Duration = 3 * testDay
	res := Run(sc)
	sr := res.Services[prof.Name]
	if !sr.Collector.QoSMet() {
		t.Errorf("QoS violated over 3 days: p95 %v", sr.Collector.P95())
	}
	// The pattern must repeat: at least one switch-in per day on average.
	if got := sr.Timeline.SwitchCount(metrics.BackendServerless); got < 2 {
		t.Errorf("only %d switch-ins over 3 days", got)
	}
	// No runaway growth in decisions or events.
	if res.Events > 30_000_000 {
		t.Errorf("event count exploded: %d", res.Events)
	}
}

func TestMultiServiceScenario(t *testing.T) {
	skipIfRace(t)
	day := testDay
	sc := Scenario{
		Variant: VariantAmoeba,
		Services: []ServiceSpec{
			{Profile: workload.Float(), Trace: trace.NewDiurnal(workload.Float().PeakQPS, workload.Float().PeakQPS*0.2, day, 1)},
			{Profile: workload.DD(), Trace: trace.NewDiurnal(workload.DD().PeakQPS, workload.DD().PeakQPS*0.2, day, 2)},
		},
		Background: background(25),
		Duration:   testDay,
		Seed:       25,
	}
	res := Run(sc)
	if len(res.Services) != 2 {
		t.Fatalf("%d service results, want 2", len(res.Services))
	}
	for name, sr := range res.Services {
		if !sr.Collector.QoSMet() {
			t.Errorf("%s violated QoS in the multi-service run (p95 %v)", name, sr.Collector.P95())
		}
		if sr.Timeline.SwitchCount(metrics.BackendServerless) == 0 {
			t.Errorf("%s never used the pool", name)
		}
	}
}

func TestBackgroundTenantsWellFormed(t *testing.T) {
	bgs := BackgroundTenants(3600, 1)
	if len(bgs) != 3 {
		t.Fatalf("%d background tenants, want 3 (float, dd, cloud_stor)", len(bgs))
	}
	names := map[string]bool{}
	for _, bg := range bgs {
		if err := bg.Profile.Validate(); err != nil {
			t.Errorf("background %s invalid: %v", bg.Profile.Name, err)
		}
		names[bg.Profile.Name] = true
		// Background peaks are far below the main benchmarks' peaks
		// relative to capacity: "slight pressure".
		if bg.Trace.Peak() <= 0 {
			t.Errorf("background %s has no load", bg.Profile.Name)
		}
	}
	for _, want := range []string{"bg_float", "bg_dd", "bg_cloud_stor"} {
		if !names[want] {
			t.Errorf("missing background tenant %s", want)
		}
	}
}

func TestMeterOverheadReportedForAmoebaVariants(t *testing.T) {
	skipIfRace(t)
	res := Run(scenarioFor(workload.Float(), VariantAmoeba, 26))
	if res.MeterCPUSeconds <= 0 {
		t.Error("no meter overhead recorded for Amoeba")
	}
	res2 := Run(scenarioFor(workload.Float(), VariantNameko, 26))
	if res2.MeterCPUSeconds != 0 {
		t.Error("meter overhead recorded for a baseline without a monitor")
	}
}

func TestProfileCacheReuse(t *testing.T) {
	skipIfRace(t)
	// Two runs with the same config must reuse the memoised surfaces.
	ResetProfileCache()
	Run(scenarioFor(workload.Float(), VariantAmoeba, 27))
	before := testingCacheSizes()
	Run(scenarioFor(workload.Float(), VariantAmoeba, 28))
	after := testingCacheSizes()
	if before != after {
		t.Errorf("cache grew across identical runs: %v -> %v", before, after)
	}
}

func testingCacheSizes() [2]int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return [2]int{len(curveCache), len(surfaceCache)}
}
