package core

import (
	"testing"

	"amoeba/internal/metrics"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

// testDay is the compressed virtual day used in tests: long enough for
// several controller periods per load level, short enough to keep tests
// fast.
const testDay = 3600.0

// skipIfRace skips the full-day scenario simulations when the race
// detector is on; see race_enabled_test.go.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("full-day simulation skipped under -race; see race_enabled_test.go")
	}
}

func background(seed uint64) []ServiceSpec {
	return BackgroundTenants(testDay, seed)
}

func scenarioFor(prof workload.Profile, v Variant, seed uint64) Scenario {
	return Scenario{
		Variant:    v,
		Services:   []ServiceSpec{{Profile: prof, Trace: trace.NewDiurnal(prof.PeakQPS, prof.PeakQPS*0.2, testDay, seed)}},
		Background: background(seed + 100),
		Duration:   testDay,
		Seed:       seed,
	}
}

func TestNamekoMeetsQoS(t *testing.T) {
	skipIfRace(t)
	for _, prof := range []workload.Profile{workload.Float(), workload.DD()} {
		res := Run(scenarioFor(prof, VariantNameko, 1))
		sr := res.Services[prof.Name]
		if sr.Collector.Count() < 1000 {
			t.Fatalf("%s: only %d queries", prof.Name, sr.Collector.Count())
		}
		if !sr.Collector.QoSMet() {
			t.Errorf("%s under Nameko: p95 %v > target %v",
				prof.Name, sr.Collector.P95(), prof.QoSTarget)
		}
		// Pure IaaS allocates for the whole run.
		wantCPU := sr.IaaSUsage.CPU / res.Duration.Raw()
		if wantCPU <= 0 {
			t.Errorf("%s: no IaaS allocation recorded", prof.Name)
		}
		if sr.ServerlessUsage.CPU != 0 {
			t.Errorf("%s: Nameko used serverless CPU %v", prof.Name, sr.ServerlessUsage.CPU)
		}
	}
}

func TestOpenWhiskViolatesOverloadedBenchmarks(t *testing.T) {
	skipIfRace(t)
	// matmul's peak exceeds its serverless capacity: pure serverless must
	// blow through the QoS target (Fig. 10).
	prof := workload.Matmul()
	res := Run(scenarioFor(prof, VariantOpenWhisk, 2))
	sr := res.Services[prof.Name]
	if sr.Collector.QoSMet() {
		t.Errorf("matmul under OpenWhisk met QoS (p95 %v <= %v); expected violation",
			sr.Collector.P95(), prof.QoSTarget)
	}
}

func TestAmoebaMeetsQoSAndSavesResources(t *testing.T) {
	skipIfRace(t)
	prof := workload.Float()
	amoeba := Run(scenarioFor(prof, VariantAmoeba, 3))
	nameko := Run(scenarioFor(prof, VariantNameko, 3))

	as := amoeba.Services[prof.Name]
	ns := nameko.Services[prof.Name]

	if !as.Collector.QoSMet() {
		t.Errorf("Amoeba p95 %v > target %v (violations %.1f%%)",
			as.Collector.P95(), prof.QoSTarget, 100*as.Collector.ViolationFraction())
	}
	aCPU, nCPU := as.TotalUsage().CPU, ns.TotalUsage().CPU
	aMem, nMem := as.TotalUsage().MemMB, ns.TotalUsage().MemMB
	if aCPU >= nCPU {
		t.Errorf("Amoeba CPU usage %v >= Nameko %v: no savings", aCPU, nCPU)
	}
	if aMem >= nMem {
		t.Errorf("Amoeba memory usage %v >= Nameko %v: no savings", aMem, nMem)
	}
	t.Logf("float: CPU saved %.1f%%, mem saved %.1f%%, switches=%d/%d, p95/target=%.2f",
		100*(1-aCPU/nCPU), 100*(1-aMem/nMem),
		as.Timeline.SwitchCount(metrics.BackendServerless),
		as.Timeline.SwitchCount(metrics.BackendIaaS),
		as.Collector.P95()/prof.QoSTarget)
}

func TestAmoebaSwitchesBothWays(t *testing.T) {
	skipIfRace(t)
	prof := workload.DD()
	res := Run(scenarioFor(prof, VariantAmoeba, 4))
	sr := res.Services[prof.Name]
	if sr.Timeline.SwitchCount(metrics.BackendServerless) == 0 {
		t.Error("never switched to serverless at low load")
	}
	if sr.Timeline.SwitchCount(metrics.BackendIaaS) == 0 {
		t.Error("never switched back to IaaS at high load")
	}
	// Both backends must have served real traffic.
	if sr.Collector.BackendCount(metrics.BackendIaaS) == 0 ||
		sr.Collector.BackendCount(metrics.BackendServerless) == 0 {
		t.Errorf("backend counts iaas=%d serverless=%d",
			sr.Collector.BackendCount(metrics.BackendIaaS),
			sr.Collector.BackendCount(metrics.BackendServerless))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	skipIfRace(t)
	a := Run(scenarioFor(workload.Float(), VariantAmoeba, 7))
	b := Run(scenarioFor(workload.Float(), VariantAmoeba, 7))
	as, bs := a.Services["float"], b.Services["float"]
	if as.Collector.Count() != bs.Collector.Count() {
		t.Fatalf("query counts differ: %d vs %d", as.Collector.Count(), bs.Collector.Count())
	}
	if as.Collector.P95() != bs.Collector.P95() {
		t.Fatalf("p95 differs: %v vs %v", as.Collector.P95(), bs.Collector.P95())
	}
	if as.TotalUsage() != bs.TotalUsage() {
		t.Fatalf("usage differs: %v vs %v", as.TotalUsage(), bs.TotalUsage())
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Duration: 100}, // no services
		{Services: scenarioFor(workload.Float(), VariantAmoeba, 1).Services}, // no duration
	}
	for i, sc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scenario %d did not panic", i)
				}
			}()
			Run(sc)
		}()
	}
	// Duplicate names.
	sc := scenarioFor(workload.Float(), VariantAmoeba, 1)
	sc.Services = append(sc.Services, sc.Services[0])
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate service name did not panic")
			}
		}()
		Run(sc)
	}()
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		VariantAmoeba: "amoeba", VariantAmoebaNoM: "amoeba-nom",
		VariantAmoebaNoP: "amoeba-nop", VariantNameko: "nameko",
		VariantOpenWhisk: "openwhisk", VariantAutoscale: "autoscale",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}
