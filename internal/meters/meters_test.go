package meters

import (
	"math"
	"testing"
	"testing/quick"

	"amoeba/internal/resources"
)

func TestAllMetersWellFormed(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d meters, want 3", len(all))
	}
	wantKinds := []resources.Kind{resources.CPU, resources.DiskIO, resources.Network}
	for i, m := range all {
		if m.Index != i {
			t.Errorf("meter %d has index %d", i, m.Index)
		}
		if m.Resource != wantKinds[i] {
			t.Errorf("meter %d measures %v, want %v", i, m.Resource, wantKinds[i])
		}
		if err := m.Profile.Validate(); err != nil {
			t.Errorf("meter %d profile invalid: %v", i, err)
		}
	}
}

func TestMetersAreSingleResourceSensitive(t *testing.T) {
	// Each meter must be sensitive to exactly its own resource, so its
	// latency isolates that resource's pressure.
	cpu, io, net := CPUMeter(), IOMeter(), NetMeter()
	if cpu.Profile.Sensitivity.CPU != 1 || cpu.Profile.Sensitivity.IO != 0 || cpu.Profile.Sensitivity.Net != 0 {
		t.Errorf("cpu meter sensitivity %+v", cpu.Profile.Sensitivity)
	}
	if io.Profile.Sensitivity.IO != 1 || io.Profile.Sensitivity.CPU != 0 {
		t.Errorf("io meter sensitivity %+v", io.Profile.Sensitivity)
	}
	if net.Profile.Sensitivity.Net != 1 || net.Profile.Sensitivity.CPU != 0 {
		t.Errorf("net meter sensitivity %+v", net.Profile.Sensitivity)
	}
}

func testCurve() *Curve {
	return &Curve{
		Meter:     CPUMeter(),
		Pressures: []float64{0, 0.25, 0.5, 0.75, 1.0},
		Latencies: []float64{0.060, 0.065, 0.080, 0.120, 0.200},
	}
}

func TestCurveValidate(t *testing.T) {
	c := testCurve()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := &Curve{Pressures: []float64{0, 0.5, 0.5}, Latencies: []float64{1, 2, 3}}
	if bad.Validate() == nil {
		t.Error("non-increasing pressures accepted")
	}
	bad2 := &Curve{Pressures: []float64{0, 0.5, 1}, Latencies: []float64{1, 3, 2}}
	if bad2.Validate() == nil {
		t.Error("decreasing latencies accepted")
	}
	bad3 := &Curve{Pressures: []float64{0}, Latencies: []float64{1}}
	if bad3.Validate() == nil {
		t.Error("single-point curve accepted")
	}
}

func TestCurveLatencyAt(t *testing.T) {
	c := testCurve()
	// Exact grid points.
	for i, p := range c.Pressures {
		if got := c.LatencyAt(p); math.Abs(got.Raw()-c.Latencies[i]) > 1e-12 {
			t.Errorf("LatencyAt(%v) = %v, want %v", p, got, c.Latencies[i])
		}
	}
	// Midpoint interpolation.
	if got := c.LatencyAt(0.125); math.Abs(got.Raw()-0.0625) > 1e-12 {
		t.Errorf("LatencyAt(0.125) = %v, want 0.0625", got)
	}
	// Clamping.
	if c.LatencyAt(-1) != 0.060 || c.LatencyAt(5) != 0.200 {
		t.Error("LatencyAt does not clamp outside the profiled range")
	}
}

func TestCurvePressureForInvertsLatencyAt(t *testing.T) {
	c := testCurve()
	f := func(raw uint8) bool {
		p := float64(raw) / 255 // within [0, 1]
		lat := c.LatencyAt(p)
		back := c.PressureFor(lat)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCurvePressureForClamps(t *testing.T) {
	c := testCurve()
	if c.PressureFor(0.001) != 0 {
		t.Error("latency below curve should clamp to min pressure")
	}
	if c.PressureFor(10) != 1.0 {
		t.Error("latency above curve should clamp to max pressure")
	}
}

func TestCurvePressureForFlatSegment(t *testing.T) {
	// A flat segment (after isotonic smoothing) must invert to its left
	// edge rather than dividing by zero.
	c := &Curve{
		Meter:     IOMeter(),
		Pressures: []float64{0, 0.5, 1.0},
		Latencies: []float64{0.06, 0.06, 0.10},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := c.PressureFor(0.06)
	if got != 0 {
		t.Errorf("PressureFor on flat segment = %v, want 0", got)
	}
}
