// Package meters implements the contention meters of §IV-B: three
// delicately shaped probe functions — one per shared resource (CPU,
// disk-IO bandwidth, network bandwidth) — that the monitor runs on the
// serverless platform to quantify contention it cannot observe directly.
//
// Each meter is maximally sensitive to exactly one resource and exerts a
// known demand on it. Profiling (Fig. 8) records the meter's latency as
// the pressure on its resource rises; at runtime the monitor runs the
// meter at 1 QPS, observes its latency, and inverts the profiling curve to
// recover the current pressure from all co-located microservices.
package meters

import (
	"fmt"
	"sort"

	"amoeba/internal/contention"
	"amoeba/internal/resources"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Meter is one contention probe.
type Meter struct {
	Profile  workload.Profile
	Resource resources.Kind // the single resource this meter measures
	// Index is the position in the pressure/weight vectors (0 = CPU,
	// 1 = IO, 2 = Net), matching contention.Pressure.Get.
	Index int
}

// CPUMeter returns the CPU-and-memory contention meter: a short pure
// compute kernel pinned to one core.
func CPUMeter() Meter {
	return Meter{
		Resource: resources.CPU,
		Index:    0,
		Profile: workload.Profile{
			Name:        "meter_cpu",
			ExecTime:    0.080,
			ExecCV:      0.01,
			QoSTarget:   10, // meters have no QoS of their own
			Demand:      resources.Vector{CPU: 1.0, MemMB: 64},
			Sensitivity: contention.Sensitivity{CPU: 1.0},
			PeakQPS:     1,
			Overheads:   workload.Overheads{Processing: 0.004, CodeLoadHot: 0.003, ResultPost: 0.003},
			VMCores:     1,
			VMMemMB:     1024,
		},
	}
}

// IOMeter returns the disk-bandwidth contention meter: a sequential
// read/write burst.
func IOMeter() Meter {
	return Meter{
		Resource: resources.DiskIO,
		Index:    1,
		Profile: workload.Profile{
			Name:        "meter_io",
			ExecTime:    0.080,
			ExecCV:      0.01,
			QoSTarget:   10,
			Demand:      resources.Vector{CPU: 0.1, MemMB: 64, DiskMBs: 120},
			Sensitivity: contention.Sensitivity{IO: 1.0},
			PeakQPS:     1,
			Overheads:   workload.Overheads{Processing: 0.004, CodeLoadHot: 0.003, ResultPost: 0.003},
			VMCores:     1,
			VMMemMB:     1024,
		},
	}
}

// NetMeter returns the network-bandwidth contention meter: a fixed-size
// transfer through the NIC.
func NetMeter() Meter {
	return Meter{
		Resource: resources.Network,
		Index:    2,
		Profile: workload.Profile{
			Name:        "meter_net",
			ExecTime:    0.080,
			ExecCV:      0.01,
			QoSTarget:   10,
			Demand:      resources.Vector{CPU: 0.05, MemMB: 64, NetMbs: 600},
			Sensitivity: contention.Sensitivity{Net: 1.0},
			PeakQPS:     1,
			Overheads:   workload.Overheads{Processing: 0.004, CodeLoadHot: 0.003, ResultPost: 0.003},
			VMCores:     1,
			VMMemMB:     1024,
		},
	}
}

// All returns the three meters in index order.
func All() []Meter {
	return []Meter{CPUMeter(), IOMeter(), NetMeter()}
}

// Curve is a profiled latency-vs-pressure table for one meter (one panel
// of Fig. 8). Points must be strictly increasing in pressure; latency is
// non-decreasing because the contention curves are monotone.
type Curve struct {
	Meter     Meter
	Pressures []float64
	Latencies []float64
}

// Validate reports malformed curves.
func (c *Curve) Validate() error {
	if len(c.Pressures) != len(c.Latencies) {
		return fmt.Errorf("meters: curve length mismatch %d vs %d", len(c.Pressures), len(c.Latencies))
	}
	if len(c.Pressures) < 2 {
		return fmt.Errorf("meters: curve needs at least 2 points")
	}
	for i := 1; i < len(c.Pressures); i++ {
		if c.Pressures[i] <= c.Pressures[i-1] {
			return fmt.Errorf("meters: pressures not strictly increasing at %d", i)
		}
		if c.Latencies[i] < c.Latencies[i-1] {
			return fmt.Errorf("meters: latencies decreasing at %d (%v < %v)",
				i, c.Latencies[i], c.Latencies[i-1])
		}
	}
	return nil
}

// LatencyAt interpolates the meter latency at the given pressure,
// clamping outside the profiled range.
func (c *Curve) LatencyAt(p float64) units.Seconds {
	n := len(c.Pressures)
	if p <= c.Pressures[0] {
		return units.Seconds(c.Latencies[0])
	}
	if p >= c.Pressures[n-1] {
		return units.Seconds(c.Latencies[n-1])
	}
	i := sort.SearchFloat64s(c.Pressures, p)
	// Pressures[i-1] < p <= Pressures[i]
	x0, x1 := c.Pressures[i-1], c.Pressures[i]
	y0, y1 := c.Latencies[i-1], c.Latencies[i]
	f := (p - x0) / (x1 - x0)
	return units.Seconds(y0 + f*(y1-y0))
}

// PressureFor inverts the curve: the pressure whose profiled latency
// matches the observed one, clamped to the profiled range. This is the
// monitor's Measurement step (§IV-B step 2).
func (c *Curve) PressureFor(latency units.Seconds) float64 {
	lat := latency.Raw()
	n := len(c.Latencies)
	if lat <= c.Latencies[0] {
		return c.Pressures[0]
	}
	if lat >= c.Latencies[n-1] {
		return c.Pressures[n-1]
	}
	// Latencies are non-decreasing: binary search the segment.
	i := sort.SearchFloat64s(c.Latencies, lat)
	if i == 0 {
		return c.Pressures[0]
	}
	y0, y1 := c.Latencies[i-1], c.Latencies[i]
	x0, x1 := c.Pressures[i-1], c.Pressures[i]
	if y1 == y0 {
		return x0
	}
	f := (lat - y0) / (y1 - y0)
	return x0 + f*(x1-x0)
}
