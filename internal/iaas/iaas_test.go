package iaas

import (
	"math"
	"testing"

	"amoeba/internal/arrival"
	"amoeba/internal/metrics"
	"amoeba/internal/queueing"
	"amoeba/internal/sim"
	"amoeba/internal/trace"
	"amoeba/internal/workload"
)

func newPlatform(seed uint64) (*sim.Simulator, *Platform) {
	s := sim.New(seed)
	return s, New(s, DefaultConfig())
}

func TestProvisionSlotsSatisfiesQoSAnalytically(t *testing.T) {
	for _, prof := range workload.All() {
		slots := ProvisionSlots(prof, 0.95, 1.0)
		mu := 1 / (prof.ExecTime + prof.Overheads.Processing)
		q := queueing.MMN{Lambda: prof.PeakQPS, Mu: mu, N: slots}
		if !q.Stable() {
			t.Errorf("%s: %d slots unstable at peak", prof.Name, slots)
			continue
		}
		if !q.QoSSatisfied(prof.QoSTarget, 0.95) {
			t.Errorf("%s: %d slots violate QoS analytically (q95=%v > %v)",
				prof.Name, slots, q.ResponseQuantile(0.95), prof.QoSTarget)
		}
		// Just-enough: one fewer slot must fail (or be unstable).
		if slots > 1 {
			q1 := queueing.MMN{Lambda: prof.PeakQPS, Mu: mu, N: slots - 1}
			if q1.Stable() && q1.QoSSatisfied(prof.QoSTarget, 0.95) {
				t.Errorf("%s: provisioning not minimal (%d slots)", prof.Name, slots)
			}
		}
	}
}

func TestDeployAndServe(t *testing.T) {
	s, p := newPlatform(1)
	var recs []metrics.QueryRecord
	p.Deploy(workload.Float(), func(r metrics.QueryRecord) { recs = append(recs, r) })
	if !p.Running("float") {
		t.Fatal("service not running after Deploy")
	}
	s.At(1, func() { p.Invoke("float") })
	s.Run(10)
	if len(recs) != 1 {
		t.Fatalf("completed %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Backend != metrics.BackendIaaS {
		t.Errorf("backend = %v", r.Backend)
	}
	if r.Breakdown.ColdStart != 0 || r.Breakdown.CodeLoad != 0 {
		t.Error("IaaS query paid serverless overheads")
	}
	if r.Breakdown.Queue != 0 {
		t.Errorf("queue = %v on an idle service", r.Breakdown.Queue)
	}
}

func TestQoSHeldAtPeakLoad(t *testing.T) {
	for _, prof := range []workload.Profile{workload.Float(), workload.DD()} {
		s, p := newPlatform(2)
		coll := metrics.NewCollector(prof.Name, prof.QoSTarget)
		p.Deploy(prof, coll.Observe)
		g := arrival.New(s, trace.Constant{QPS: prof.PeakQPS}, func(sim.Time) { p.Invoke(prof.Name) })
		g.Start()
		s.Run(400)
		if coll.Count() < 1000 {
			t.Fatalf("%s: only %d queries", prof.Name, coll.Count())
		}
		if !coll.QoSMet() {
			t.Errorf("%s: p95 %v exceeds target %v at peak on just-enough IaaS",
				prof.Name, coll.P95(), prof.QoSTarget)
		}
	}
}

func TestQueueingWhenSlotsExhausted(t *testing.T) {
	s, p := newPlatform(3)
	var recs []metrics.QueryRecord
	prof := workload.Float()
	prof.PeakQPS = 5 // small provisioning
	p.Deploy(prof, func(r metrics.QueryRecord) { recs = append(recs, r) })
	slots := p.Slots("float")
	s.At(1, func() {
		for i := 0; i < slots+3; i++ {
			p.Invoke("float")
		}
	})
	s.Run(60)
	if len(recs) != slots+3 {
		t.Fatalf("completed %d, want %d", len(recs), slots+3)
	}
	queued := 0
	for _, r := range recs {
		if r.Breakdown.Queue > 0 {
			queued++
		}
	}
	if queued != 3 {
		t.Errorf("%d queries queued, want 3", queued)
	}
}

func TestAllocationIndependentOfLoad(t *testing.T) {
	// The defining IaaS property: rented resources accrue with or without
	// traffic.
	s, p := newPlatform(4)
	p.Deploy(workload.Float(), nil)
	alloc := p.AllocFor("float")
	if alloc.CPU <= 0 || alloc.MemMB <= 0 {
		t.Fatalf("allocation = %v", alloc)
	}
	s.Run(1000) // zero queries
	u := p.UsageFor("float")
	if math.Abs(u.CPU-alloc.CPU*1000) > 1e-6 {
		t.Errorf("idle CPU usage integral = %v, want %v", u.CPU, alloc.CPU*1000)
	}
	if p.ConsumedCPUSeconds("float") != 0 {
		t.Errorf("consumed CPU = %v with no queries", p.ConsumedCPUSeconds("float"))
	}
}

func TestUtilizationLowAtTrough(t *testing.T) {
	// Fig. 2's point: at 20% of peak load the consumed/allocated ratio is
	// far below 1.
	s, p := newPlatform(5)
	prof := workload.Float()
	p.Deploy(prof, nil)
	g := arrival.New(s, trace.Constant{QPS: prof.PeakQPS * 0.2}, func(sim.Time) { p.Invoke(prof.Name) })
	g.Start()
	s.Run(500)
	allocated := p.UsageFor(prof.Name).CPU
	consumed := p.ConsumedCPUSeconds(prof.Name)
	util := consumed / allocated
	if util > 0.35 {
		t.Errorf("utilization at trough = %v, want well below peak", util)
	}
	if util <= 0 {
		t.Error("consumed nothing at 20% load")
	}
}

func TestStopDrainsAndReleases(t *testing.T) {
	s, p := newPlatform(6)
	var done int
	p.Deploy(workload.Float(), func(metrics.QueryRecord) { done++ })
	s.At(1, func() {
		for i := 0; i < 5; i++ {
			p.Invoke("float")
		}
	})
	stopped := false
	s.At(1.01, func() {
		p.Stop("float", func() { stopped = true })
	})
	s.Run(60)
	if done != 5 {
		t.Fatalf("in-flight queries lost on Stop: %d/5 done", done)
	}
	if !stopped {
		t.Fatal("Stop callback never fired")
	}
	if alloc := p.AllocFor("float"); !alloc.IsZero() {
		t.Errorf("allocation after stop = %v", alloc)
	}
	if p.Running("float") {
		t.Error("service reports running after Stop")
	}
}

func TestStartPaysBootDelay(t *testing.T) {
	s, p := newPlatform(7)
	p.Deploy(workload.Float(), nil)
	s.At(1, func() { p.Stop("float", nil) })
	var readyAt float64
	s.At(10, func() {
		p.Start("float", func() { readyAt = float64(s.Now()) })
	})
	s.Run(100)
	if math.Abs(readyAt-40) > 1e-9 { // 10 + 30s boot
		t.Errorf("ready at %v, want 40", readyAt)
	}
	if !p.Running("float") {
		t.Error("not running after Start")
	}
}

func TestStartAllocatesDuringBoot(t *testing.T) {
	s, p := newPlatform(8)
	p.Deploy(workload.Float(), nil)
	s.At(1, func() { p.Stop("float", nil) })
	s.At(10, func() { p.Start("float", nil) })
	s.At(25, func() { // mid-boot
		if p.AllocFor("float").CPU == 0 {
			t.Error("booting VMs hold no allocation")
		}
		if p.Running("float") {
			t.Error("running mid-boot")
		}
	})
	s.Run(100)
}

func TestInvokeStoppedPanics(t *testing.T) {
	s, p := newPlatform(9)
	p.Deploy(workload.Float(), nil)
	s.At(1, func() { p.Stop("float", nil) })
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("Invoke on stopped service did not panic")
			}
		}()
		p.Invoke("float")
	})
	s.Run(10)
}

func TestStartOnRunningIsIdempotent(t *testing.T) {
	s, p := newPlatform(10)
	p.Deploy(workload.Float(), nil)
	called := false
	s.At(1, func() { p.Start("float", func() { called = true }) })
	s.Run(10)
	if !called {
		t.Error("Start on running service never reported ready")
	}
}

func TestVMGroupGeometry(t *testing.T) {
	_, p := newPlatform(11)
	prof := workload.Matmul()
	p.Deploy(prof, nil)
	slots, vms := p.Slots(prof.Name), p.VMs(prof.Name)
	if vms*prof.VMCores != slots {
		t.Errorf("slots %d != vms %d × cores %d", slots, vms, prof.VMCores)
	}
	if alloc := p.AllocFor(prof.Name); alloc.MemMB != float64(vms)*prof.VMMemMB {
		t.Errorf("mem alloc %v, want %v", alloc.MemMB, float64(vms)*prof.VMMemMB)
	}
}
