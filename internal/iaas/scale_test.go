package iaas

import (
	"testing"

	"amoeba/internal/metrics"
	"amoeba/internal/sim"
	"amoeba/internal/workload"
)

func TestScaleOutPaysBootDelayThenAddsSlots(t *testing.T) {
	s := sim.New(1)
	p := New(s, DefaultConfig())
	prof := workload.Float()
	p.DeployWithVMs(prof, 1, nil)
	if p.Slots(prof.Name) != prof.VMCores {
		t.Fatalf("initial slots %d", p.Slots(prof.Name))
	}
	var readyAt float64
	s.At(10, func() {
		p.Scale(prof.Name, 3, func() { readyAt = float64(s.Now()) })
	})
	s.At(20, func() { // mid-boot: allocation up, slots not yet
		if p.VMs(prof.Name) != 3 {
			t.Errorf("VMs = %d mid-boot, want 3 (reservation holds)", p.VMs(prof.Name))
		}
		if p.Slots(prof.Name) != prof.VMCores {
			t.Errorf("slots = %d mid-boot, want still %d", p.Slots(prof.Name), prof.VMCores)
		}
		if p.AllocFor(prof.Name).CPU != float64(3*prof.VMCores) {
			t.Errorf("alloc = %v mid-boot", p.AllocFor(prof.Name).CPU)
		}
	})
	s.Run(100)
	if readyAt != 40 { // 10 + 30s boot
		t.Errorf("ready at %v, want 40", readyAt)
	}
	if p.Slots(prof.Name) != 3*prof.VMCores {
		t.Errorf("slots = %d after boot", p.Slots(prof.Name))
	}
}

func TestScaleInImmediateAndInFlightFinish(t *testing.T) {
	s := sim.New(2)
	p := New(s, DefaultConfig())
	prof := workload.Float()
	prof.ExecTime = 5 // long queries so they outlive the scale-in
	prof.QoSTarget = 20
	done := 0
	p.DeployWithVMs(prof, 3, func(metrics.QueryRecord) { done++ })
	s.At(1, func() {
		for i := 0; i < 12; i++ { // fill all 12 slots
			p.Invoke(prof.Name)
		}
	})
	s.At(2, func() { p.Scale(prof.Name, 1, nil) })
	s.At(3, func() {
		if p.Slots(prof.Name) != prof.VMCores {
			t.Errorf("slots = %d after scale-in, want %d", p.Slots(prof.Name), prof.VMCores)
		}
		if p.Busy(prof.Name) != 12 {
			t.Errorf("busy = %d; in-flight queries must survive scale-in", p.Busy(prof.Name))
		}
		if p.AllocFor(prof.Name).CPU != float64(prof.VMCores) {
			t.Errorf("allocation %v not reduced immediately", p.AllocFor(prof.Name).CPU)
		}
	})
	s.Run(60)
	if done != 12 {
		t.Errorf("%d/12 queries completed after scale-in", done)
	}
}

func TestScaleOutDrainsBacklog(t *testing.T) {
	s := sim.New(3)
	p := New(s, DefaultConfig())
	prof := workload.Float()
	prof.ExecTime = 2
	prof.QoSTarget = 60
	done := 0
	p.DeployWithVMs(prof, 1, func(metrics.QueryRecord) { done++ })
	s.At(1, func() {
		for i := 0; i < 20; i++ { // 4 run, 16 queue
			p.Invoke(prof.Name)
		}
	})
	s.At(2, func() { p.Scale(prof.Name, 5, nil) })
	// With 20 slots after boot (t=32), the backlog drains immediately.
	s.Run(40)
	if p.QueueLength(prof.Name) != 0 {
		t.Errorf("queue = %d after capacity arrived", p.QueueLength(prof.Name))
	}
	s.Run(120)
	if done != 20 {
		t.Errorf("%d/20 completed", done)
	}
}

func TestScaleValidation(t *testing.T) {
	s := sim.New(4)
	p := New(s, DefaultConfig())
	prof := workload.Float()
	p.DeployWithVMs(prof, 2, nil)
	for name, fn := range map[string]func(){
		"zero VMs":        func() { p.Scale(prof.Name, 0, nil) },
		"unknown service": func() { p.Scale("ghost", 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Scaling a stopped service panics too.
	s.At(1, func() { p.Stop(prof.Name, nil) })
	s.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("scaling a stopped service did not panic")
		}
	}()
	p.Scale(prof.Name, 3, nil)
}

func TestDeployWithVMsValidation(t *testing.T) {
	s := sim.New(5)
	p := New(s, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("zero-VM deploy did not panic")
		}
	}()
	p.DeployWithVMs(workload.Float(), 0, nil)
}
