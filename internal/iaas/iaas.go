// Package iaas simulates the traditional IaaS-based deployment (the
// paper's Nameko-on-VMs setup, §II-B): each microservice owns a group of
// long-running virtual machines sized "just enough" for its peak load
// under the QoS target. The rented resources are allocated for the whole
// VM lifetime whether queries arrive or not — which is precisely the
// waste Fig. 2 quantifies — but queries see no cold start and no
// cross-tenant contention.
//
// Processing model: a service with k total worker cores behaves as an
// FCFS M/G/k system — one query per worker at a time, a shared queue.
package iaas

import (
	"fmt"
	"math"

	"amoeba/internal/cluster"
	"amoeba/internal/metrics"
	"amoeba/internal/obs"
	"amoeba/internal/queueing"
	"amoeba/internal/resources"
	"amoeba/internal/sim"
	"amoeba/internal/units"
	"amoeba/internal/workload"
)

// Config tunes the platform.
type Config struct {
	Node cluster.Node

	// BootDelay is the VM boot time paid before a switched-in service can
	// take traffic (§V-B's engine boots VMs before routing).
	BootDelay float64

	// RPCOverhead is the constant per-query cost of the Nameko RPC path.
	RPCOverhead float64

	// QoSQuantile is the latency quantile provisioning targets (0.95).
	QoSQuantile units.Fraction

	// Headroom multiplies the provisioned core count for safety margin.
	Headroom float64
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Node:        cluster.DefaultNode("iaas"),
		BootDelay:   30,
		RPCOverhead: 0.004,
		QoSQuantile: 0.95,
		Headroom:    1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if c.BootDelay < 0 || c.RPCOverhead < 0 {
		return fmt.Errorf("iaas: negative delay in config")
	}
	if c.QoSQuantile <= 0 || c.QoSQuantile >= 1 {
		return fmt.Errorf("iaas: QoS quantile %v out of (0,1)", c.QoSQuantile)
	}
	if c.Headroom < 1 {
		return fmt.Errorf("iaas: headroom %v below 1", c.Headroom)
	}
	return nil
}

// pending is one waiting query: its arrival instant plus the trace
// context and open queue-wait span carried to dispatch.
type pending struct {
	arrived sim.Time
	qt      obs.QueryTrace
	queueH  obs.SpanHandle
}

type service struct {
	profile    workload.Profile
	vms        int // VM count in the group
	slots      int // total worker slots (vms × VMCores)
	busy       int
	queue      []pending // waiting queries in arrival order
	running    bool      // VMs up and taking traffic
	inflight   int
	usage      *resources.Usage // allocated (rented) resources
	busyUsage  *resources.Usage // consumed CPU: demand of executing queries
	onComplete func(metrics.QueryRecord)
}

// Platform hosts per-service VM groups.
type Platform struct {
	sim      *sim.Simulator
	cfg      Config
	rng      *sim.RNG
	bus      *obs.Bus
	tracer   *obs.Tracer
	services map[string]*service
}

// New creates an IaaS platform on the simulator. It panics if the
// config fails validation.
func New(s *sim.Simulator, cfg Config) *Platform {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Platform{
		sim:      s,
		cfg:      cfg,
		rng:      s.RNG().Split(),
		services: make(map[string]*service),
	}
}

// SetBus attaches the telemetry bus; the platform emits QueryComplete on
// every finished query. A nil bus (the default) keeps emission sites on
// their zero-cost path.
func (p *Platform) SetBus(b *obs.Bus) { p.bus = b }

// SetTracer attaches the causal tracer; every invocation then opens a
// trace with queue-wait/exec phase spans. A nil tracer (the default)
// keeps every span site on its zero-cost guarded path.
func (p *Platform) SetTracer(t *obs.Tracer) { p.tracer = t }

// ProvisionSlots returns the "just-enough" worker count for a profile: the
// minimum slots keeping the QoS-quantile response of an M/M/k at peak
// load within target, then headroom.
func ProvisionSlots(profile workload.Profile, quantile units.Fraction, headroom float64) int {
	// Worker service rate: one query's body plus the processing overhead.
	mu := units.ServiceRate(1 / (profile.ExecTime + profile.Overheads.Processing))
	slots, err := queueing.MinContainers(units.QPS(profile.PeakQPS), mu,
		units.Seconds(profile.QoSTarget), quantile, 100000)
	if err != nil {
		//amoeba:allow panic the search cap is a positive literal above
		panic(err)
	}
	slots = int(math.Ceil(float64(slots) * headroom))
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Deploy provisions a VM group for the profile sized for its peak load and
// starts it immediately (no boot delay at initial deployment: the paper's
// maintainers stand services up before taking traffic). onComplete
// receives every finished query (may be nil).
func (p *Platform) Deploy(profile workload.Profile, onComplete func(metrics.QueryRecord)) {
	slots := ProvisionSlots(profile, p.cfg.QoSQuantile, p.cfg.Headroom)
	vms := (slots + profile.VMCores - 1) / profile.VMCores
	p.DeployWithVMs(profile, vms, onComplete)
}

// DeployWithVMs provisions an explicit VM count (autoscaling baselines
// start small and let their controller grow the group).
// It panics if the profile is invalid, the VM count is below one, or the
// service is already deployed.
func (p *Platform) DeployWithVMs(profile workload.Profile, vms int, onComplete func(metrics.QueryRecord)) {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	if vms < 1 {
		panic(fmt.Sprintf("iaas: deploying %q with %d VMs", profile.Name, vms))
	}
	if _, dup := p.services[profile.Name]; dup {
		panic(fmt.Sprintf("iaas: duplicate service %q", profile.Name))
	}
	svc := &service{
		profile:    profile,
		vms:        vms,
		slots:      vms * profile.VMCores,
		usage:      resources.NewUsage(float64(p.sim.Now())),
		busyUsage:  resources.NewUsage(float64(p.sim.Now())),
		onComplete: onComplete,
	}
	p.services[profile.Name] = svc
	p.allocate(svc)
	svc.running = true
}

func (p *Platform) allocate(svc *service) {
	svc.usage.Record(float64(p.sim.Now()), p.groupAlloc(svc))
}

func (p *Platform) groupAlloc(svc *service) resources.Vector {
	return resources.Vector{
		CPU:   float64(svc.vms * svc.profile.VMCores),
		MemMB: float64(svc.vms) * svc.profile.VMMemMB,
	}
}

// mustSvc looks up a deployed service. It panics on an unknown name:
// routing to a service that was never deployed is a wiring bug.
func (p *Platform) mustSvc(name string) *service {
	svc, ok := p.services[name]
	if !ok {
		panic(fmt.Sprintf("iaas: unknown service %q", name))
	}
	return svc
}

// Invoke submits one query to the named service. Invoking a stopped
// service panics: the execution engine must only route to a running
// backend.
func (p *Platform) Invoke(name string) {
	svc := p.mustSvc(name)
	if !svc.running {
		panic(fmt.Sprintf("iaas: invoke on stopped service %q", name))
	}
	svc.inflight++
	now := p.sim.Now()
	q := pending{arrived: now, qt: p.tracer.StartQuery(name)}
	q.queueH = p.tracer.Begin(units.Seconds(now), q.qt.Trace, q.qt.Span, 0,
		obs.PhaseQueueWait, name, metrics.BackendIaaS.String())
	if svc.busy < svc.slots {
		p.startQuery(svc, q)
	} else {
		svc.queue = append(svc.queue, q)
	}
}

func (p *Platform) startQuery(svc *service, q pending) {
	svc.busy++
	prof := svc.profile
	arrived := q.arrived
	mu, sigma := lognormalParams(prof.ExecTime, prof.ExecCV)
	body := p.rng.LogNormal(mu, sigma)
	bd := metrics.Breakdown{
		Queue:      float64(p.sim.Now() - arrived),
		Processing: p.cfg.RPCOverhead,
		Exec:       body,
	}
	nowS := units.Seconds(p.sim.Now())
	p.tracer.End(nowS, q.queueH)
	qt := q.qt
	execH := p.tracer.Begin(nowS, qt.Trace, qt.Span, 0,
		obs.PhaseExec, prof.Name, metrics.BackendIaaS.String())
	consumed := resources.Vector{CPU: prof.Demand.CPU}
	svc.busyUsage.Adjust(float64(p.sim.Now()), consumed)
	p.sim.After(bd.Processing+bd.Exec, func() {
		svc.busy--
		svc.inflight--
		svc.busyUsage.Adjust(float64(p.sim.Now()), consumed.Scale(-1))
		p.tracer.End(units.Seconds(p.sim.Now()), execH)
		if p.bus.Active() {
			p.bus.Emit(&obs.QueryComplete{
				At:         units.Seconds(p.sim.Now()),
				Service:    prof.Name,
				Backend:    metrics.BackendIaaS.String(),
				Arrived:    units.Seconds(arrived),
				Latency:    units.Seconds(p.sim.Now() - arrived),
				Queue:      units.Seconds(bd.Queue),
				Processing: units.Seconds(bd.Processing),
				Exec:       units.Seconds(bd.Exec),
				Trace:      qt.Trace,
				Span:       qt.Span,
				Cause:      qt.Cause,
			})
		}
		if svc.onComplete != nil {
			svc.onComplete(metrics.QueryRecord{
				Service:   prof.Name,
				Backend:   metrics.BackendIaaS,
				ArrivedAt: float64(arrived),
				Breakdown: bd,
			})
		}
		// After a scale-in, busy can exceed slots until the excess
		// drains; only then does the queue resume.
		if len(svc.queue) > 0 && svc.busy < svc.slots {
			next := svc.queue[0]
			svc.queue = svc.queue[1:]
			p.startQuery(svc, next)
		}
	})
}

// Scale resizes a running service's VM group to the given count (an
// elastic-IaaS primitive for autoscaling baselines). Scale-out allocates
// the new VMs immediately — booting VMs hold their reservation — and
// brings their worker slots online after BootDelay; onReady fires then.
// Scale-in takes effect immediately: the allocation and slot count drop,
// and queries already running on removed workers finish undisturbed.
// It panics if the target count is below one or the service is stopped.
func (p *Platform) Scale(name string, vms int, onReady func()) {
	svc := p.mustSvc(name)
	if vms < 1 {
		panic(fmt.Sprintf("iaas: scaling %q to %d VMs", name, vms))
	}
	if !svc.running {
		panic(fmt.Sprintf("iaas: scaling stopped service %q", name))
	}
	prev := svc.vms
	svc.vms = vms
	p.allocate(svc)
	if vms > prev {
		p.sim.After(p.cfg.BootDelay, func() {
			svc.slots = svc.vms * svc.profile.VMCores
			// Newly online workers drain any backlog.
			for len(svc.queue) > 0 && svc.busy < svc.slots {
				next := svc.queue[0]
				svc.queue = svc.queue[1:]
				p.startQuery(svc, next)
			}
			if onReady != nil {
				onReady()
			}
		})
		return
	}
	svc.slots = svc.vms * svc.profile.VMCores
	if onReady != nil {
		p.sim.After(0, onReady)
	}
}

// Stop releases the service's VMs once in-flight queries drain. New
// queries must not be routed here afterwards. onStopped fires when the
// resources are actually released.
func (p *Platform) Stop(name string, onStopped func()) {
	svc := p.mustSvc(name)
	if !svc.running {
		if onStopped != nil {
			p.sim.After(0, onStopped)
		}
		return
	}
	svc.running = false
	var drain func()
	drain = func() {
		if svc.inflight == 0 {
			svc.usage.Record(float64(p.sim.Now()), resources.Vector{})
			if onStopped != nil {
				onStopped()
			}
			return
		}
		p.sim.After(0.5, drain)
	}
	drain()
}

// Start boots the service's VM group; queries may be routed after
// onReady fires (BootDelay later). Starting a running service is a no-op
// that still reports readiness.
func (p *Platform) Start(name string, onReady func()) {
	svc := p.mustSvc(name)
	if svc.running {
		if onReady != nil {
			p.sim.After(0, onReady)
		}
		return
	}
	// Resources are allocated from boot, not from readiness: booting VMs
	// already occupy their reservation.
	p.allocate(svc)
	p.sim.After(p.cfg.BootDelay, func() {
		svc.running = true
		if onReady != nil {
			onReady()
		}
	})
}

// Running reports whether the service can take traffic.
func (p *Platform) Running(name string) bool { return p.mustSvc(name).running }

// Slots returns the service's provisioned worker count.
func (p *Platform) Slots(name string) int { return p.mustSvc(name).slots }

// VMs returns the service's VM count.
func (p *Platform) VMs(name string) int { return p.mustSvc(name).vms }

// Busy returns the number of occupied workers.
func (p *Platform) Busy(name string) int { return p.mustSvc(name).busy }

// QueueLength returns the waiting queries of the service.
func (p *Platform) QueueLength(name string) int { return len(p.mustSvc(name).queue) }

// Inflight returns submitted-but-incomplete queries of the service.
func (p *Platform) Inflight(name string) int { return p.mustSvc(name).inflight }

// Utilization returns busy/slots right now.
func (p *Platform) Utilization(name string) float64 {
	svc := p.mustSvc(name)
	if svc.slots == 0 {
		return 0
	}
	return float64(svc.busy) / float64(svc.slots)
}

// UsageFor returns the service's accumulated allocated resource-time: the
// rented cores and memory integrated over the time its VMs were up.
func (p *Platform) UsageFor(name string) resources.Vector {
	return p.mustSvc(name).usage.TotalAt(float64(p.sim.Now()))
}

// ConsumedCPUSeconds returns the core-seconds actually burned by executing
// queries — the numerator of Fig. 2's CPU utilisation.
func (p *Platform) ConsumedCPUSeconds(name string) float64 {
	return p.mustSvc(name).busyUsage.TotalAt(float64(p.sim.Now())).CPU
}

// InstantConsumedCPU returns the cores being burned right now.
func (p *Platform) InstantConsumedCPU(name string) float64 {
	return p.mustSvc(name).busyUsage.Current().CPU
}

// AllocFor returns the service's instantaneous allocation.
func (p *Platform) AllocFor(name string) resources.Vector {
	return p.mustSvc(name).usage.Current()
}

// lognormalParams converts a mean/CV pair to lognormal parameters.
// It panics if the mean is non-positive; Config.Validate rules that out
// for every caller.
func lognormalParams(mean, cv float64) (muLN, sigma float64) {
	if mean <= 0 {
		panic(fmt.Sprintf("iaas: non-positive lognormal mean %v", mean))
	}
	if cv <= 0 {
		return math.Log(mean), 0
	}
	s2 := math.Log(1 + cv*cv)
	return math.Log(mean) - s2/2, math.Sqrt(s2)
}
