package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amoeba/internal/analysis"
)

// TestStaleAudit runs the audit machinery over the staleuser fixture:
// every annotation whose reason text contains "stale:" must be reported
// stale, every other one must be credited as live. The fixture covers
// all three audited kinds — //amoeba:allow, //amoeba:allowalloc, and
// //amoeba:shardsafe boundaries.
func TestStaleAudit(t *testing.T) {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(path string) (string, bool) {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	loader := analysis.NewLoader(resolve)
	used, err := analysis.RunAudit(loader, []string{"staleuser"}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	inventory, err := staleInventory(resolve, []string{"staleuser"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inventory) != 6 {
		t.Fatalf("inventory has %d annotations, want 6: %+v", len(inventory), inventory)
	}
	sources := make(map[string][]string)
	for _, s := range inventory {
		lines, ok := sources[s.pos.Filename]
		if !ok {
			data, err := os.ReadFile(s.pos.Filename)
			if err != nil {
				t.Fatal(err)
			}
			lines = strings.Split(string(data), "\n")
			sources[s.pos.Filename] = lines
		}
		wantStale := strings.Contains(lines[s.pos.Line-1], "stale:")
		gotStale := !used[s.pos.Filename][s.pos.Line]
		if wantStale != gotStale {
			t.Errorf("%s:%d (%s): stale = %v, want %v",
				s.pos.Filename, s.pos.Line, s.kind, gotStale, wantStale)
		}
	}
}
