package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"amoeba/internal/analysis"
)

// staleEntry is one suppression annotation whose liveness the audit
// checks: an //amoeba:allow <analyzer>, an //amoeba:allowalloc(reason),
// or an //amoeba:shardsafe boundary.
type staleEntry struct {
	pos  token.Position
	kind string
}

// reportStale re-runs the analyzers in audit mode over the selected
// packages, collects the set of suppression annotations that still
// suppress (or shield) at least one finding, and reports the inventory
// remainder — annotations that have gone stale. A non-empty remainder
// exits 1 so CI can gate on a clean inventory.
//
// The inventory covers only files the analyzers see: non-test Go files
// of the selected packages. Declarative contract markers (//amoeba:shard,
// //amoeba:bounded) are enforced, not suppressive, and are not audited.
func reportStale(patterns []string) error {
	modRoot, modPath, paths, err := modulePackages(patterns)
	if err != nil {
		return err
	}
	resolve := analysis.ModuleResolver(modRoot, modPath)
	loader := analysis.NewLoader(resolve)
	used, err := analysis.RunAudit(loader, paths, analyzers)
	if err != nil {
		return err
	}
	inventory, err := staleInventory(resolve, paths)
	if err != nil {
		return err
	}
	// allowalloc annotations may suppress compiler-proven allocations
	// that alloccheck's syntactic audit never fires on, so the escape
	// pipeline gets a crediting pass of its own. When the pinned
	// toolchain is unavailable the pass is skipped and allowalloc
	// staleness is left unjudged rather than misreported.
	escUsed, escOK, err := escapeAllowsUsed(modRoot, patterns)
	if err != nil {
		return err
	}
	var stale []staleEntry
	for _, s := range inventory {
		if used[s.pos.Filename][s.pos.Line] {
			continue
		}
		if s.kind == "//amoeba:allowalloc" {
			if !escOK || escUsed[s.pos.Filename][s.pos.Line] {
				continue
			}
		}
		stale = append(stale, s)
	}
	for _, s := range stale {
		fmt.Printf("%s:%d: stale %s: suppresses no current finding; delete it\n",
			s.pos.Filename, s.pos.Line, s.kind)
	}
	fmt.Printf("%d annotation(s) audited, %d stale\n", len(inventory), len(stale))
	if len(stale) > 0 {
		os.Exit(1)
	}
	return nil
}

// staleInventory parses the non-test Go files of each package and
// collects every suppression annotation, sorted by position.
func staleInventory(resolve func(string) (string, bool), paths []string) ([]staleEntry, error) {
	fset := token.NewFileSet()
	var inventory []staleEntry
	for _, path := range paths {
		dir, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("cannot resolve package %q", path)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Pos())
					if aname, _, ok := analysis.ParseAllow(c.Text); ok {
						inventory = append(inventory, staleEntry{pos: pos, kind: "//amoeba:allow " + aname})
						continue
					}
					if _, ok := analysis.ParseAllowAlloc(c.Text); ok {
						inventory = append(inventory, staleEntry{pos: pos, kind: "//amoeba:allowalloc"})
						continue
					}
					if _, ok := markerNote(c.Text, analysis.AnnotShardSafe); ok {
						inventory = append(inventory, staleEntry{pos: pos, kind: "//amoeba:shardsafe"})
					}
				}
			}
		}
	}
	sort.Slice(inventory, func(i, j int) bool {
		a, b := inventory[i].pos, inventory[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return inventory, nil
}
