package main

import (
	"testing"

	"amoeba/internal/analysis"
)

// BenchmarkAmoebaVetRepo times a full-module amoeba-vet sweep. The
// devirt sub-bench is the shipping configuration (devirtualization and
// the field-flow layer both on); fieldflow-off isolates the cost of the
// field-sensitive func-value index; baseline disables the whole
// devirtualization layer to measure the pre-index walk on the same
// hardware, so CI can gate on the ratio (devirt must stay within 2x
// baseline) instead of a machine-dependent absolute time. Pinned
// numbers live in BENCH_vet.json. Each iteration also asserts the
// sweep is clean, doubling as the zero-findings regression check.
func BenchmarkAmoebaVetRepo(b *testing.B) {
	sweep := func(b *testing.B) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			diags, _, err := runAmoebaAnalyzers([]string{"./..."})
			if err != nil {
				b.Fatal(err)
			}
			if len(diags) != 0 {
				b.Fatalf("repo sweep must be clean, got %d finding(s), first: %s",
					len(diags), diags[0])
			}
		}
	}
	b.Run("devirt", sweep)
	b.Run("fieldflow-off", func(b *testing.B) {
		analysis.FieldFlowEnabled = false
		defer func() { analysis.FieldFlowEnabled = true }()
		sweep(b)
	})
	b.Run("baseline", func(b *testing.B) {
		analysis.DevirtEnabled = false
		defer func() { analysis.DevirtEnabled = true }()
		sweep(b)
	})
}
