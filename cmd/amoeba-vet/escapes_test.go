package main

import (
	"encoding/json"
	"go/token"
	"testing"

	"amoeba/internal/analysis"
)

// TestAnalyzerJSON pins the machine-readable finding shape: paths are
// module-relative with forward slashes, the via chain survives, and the
// suppression template names the right analyzer.
func TestAnalyzerJSON(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "hotpath",
		Pos:      token.Position{Filename: "/mod/internal/sim/sim.go", Line: 7, Column: 3},
		Message:  "call to time.Now via field engine.onDrain => drain",
		Via:      []string{"engine.onDrain", "drain"},
	}
	f := analyzerJSON("/mod", d)
	data, err := marshalFinding(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"hotpath","file":"internal/sim/sim.go","line":7,"col":3,` +
		`"message":"call to time.Now via field engine.onDrain => drain",` +
		`"via":["engine.onDrain","drain"],"suppress_with":"//amoeba:allow hotpath <reason>"}`
	if string(data) != want {
		t.Errorf("analyzerJSON marshals to\n%s\nwant\n%s", data, want)
	}

	// Site-local finding: via omitted entirely.
	d.Via = nil
	data, err = marshalFinding(analyzerJSON("/mod", d))
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if _, present := round["via"]; present {
		t.Errorf("empty via chain must be omitted, got %s", data)
	}
}
