// Command amoeba-vet is the repository's static-analysis multichecker: it
// runs the standard `go vet` suite followed by the twelve amoeba-specific
// analyzers that machine-check the determinism, concurrency, dimensional,
// and hot-path invariants the reproduction depends on:
//
//	nodeterminism  no wall-clock or global-rand calls in simulation code
//	seedflow       sim.RNG provenance: explicit seeds, no copies, no sharing
//	paniccheck     library panics must be errors, contracts, or invariants
//	lockcheck      no mutex held across sends, Wait, or goroutine spawns
//	unitcheck      dimensional soundness of internal/units arithmetic,
//	               conversions, and call sites
//	boundscheck    constants must respect //amoeba:range annotations
//	alloccheck     //amoeba:noalloc functions hold no allocation-inducing
//	               constructs (//amoeba:allowalloc(reason) escapes audited)
//	hotpath        forbidden APIs (wall clock, global rand, mutexes, I/O)
//	               unreachable from kernel roots and simulator callbacks
//	exhaustive     switches over //amoeba:enum types name every member
//	shardsafe      //amoeba:shard workers reach no shared mutable state
//	               (stops at audited //amoeba:shardsafe boundaries)
//	goroleak       every go statement lifetime-bounded; per-element spawns
//	               need a pool or semaphore
//	chancheck      close by sender once, no send-after-close, and
//	               named-constant capacities at //amoeba:bounded params
//
// Two further checks round the count out to fourteen: the field-flow
// layer (internal/analysis/fieldflow.go) that hotpath, shardsafe, and
// alloccheck walk through — func values stored in struct fields resolve
// to their stored callees, reported with "via field owner.field => ..."
// chains — and escapecheck, the -escapes mode below, which cross-checks
// //amoeba:noalloc bodies against the compiler's own escape analysis.
//
// Usage:
//
//	go run ./cmd/amoeba-vet [-no-govet] [-json] [-escapes] [-suppressions] [-stale] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax
// restricted to this module. Exit codes are uniform across modes:
// 0 clean, 1 findings (or a failed audit), 2 internal error — so CI can
// gate on them. Findings are suppressed site-by-site with
// //amoeba:allow <analyzer> <reason> annotations (see internal/analysis).
//
// The -json flag emits findings as newline-delimited JSON instead of
// text, one object per finding with analyzer, file (module-relative),
// line, col, message, the via call chain when the analyzer tracked one,
// and the suppression annotation that would silence it. -json implies
// -no-govet: the standard suite has no structured output to merge.
//
// The -escapes mode runs the escapecheck cross-check instead of the
// in-process analyzers: it compiles the selected packages with
// `go build -gcflags=-m=2`, parses the compiler's heap-allocation
// diagnostics, and reports every allocation the compiler proves inside
// an //amoeba:noalloc body — the strict superset of what alloccheck's
// syntactic screen can see. //amoeba:allowalloc(reason) suppresses a
// finding on its line or the next, and the suppressed count is reported
// for the audit trail. Because the diagnostic wording is tied to one
// compiler release, -escapes runs only under the toolchain go.mod pins
// and skips with a warning (exit 0) under any other.
//
// The -suppressions mode audits those annotations instead of running the
// analyzers: it lists every //amoeba:allow and //amoeba:allowalloc(reason)
// in the selected packages — test files included — with its analyzer and
// justification, and exits non-zero if any annotation lacks a reason. It
// also inventories the declarative concurrency markers — //amoeba:shard,
// //amoeba:shardsafe, and //amoeba:bounded — whose trailing text is a
// note (or, for bounded, the parameter list) rather than a mandatory
// reason: shard and bounded declare contracts the analyzers enforce, and
// shardsafe records an audited boundary whose note says who vouches for
// it. The inventory is the other half of the invariant contract: every
// escape hatch and every trusted boundary must be listable in one pass.
//
// The -stale mode closes the loop on that inventory: it re-runs the
// analyzers in audit mode, crediting every suppression annotation that
// still suppresses a finding (//amoeba:allow, //amoeba:allowalloc) or
// still shields one (//amoeba:shardsafe boundaries are walked through
// to test whether anything behind them would fire), then reports the
// remainder — annotations that no longer suppress anything and are dead
// weight to delete. Test files are excluded from the stale inventory:
// the analyzers never parse them, so their annotations cannot be
// audited. Run -stale over the whole module (./...): an annotation is
// credited by whichever pass reaches it, so narrowing the package set
// can misreport live annotations as stale. CI gates on zero stale
// markers.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"amoeba/internal/analysis"
	"amoeba/internal/analysis/alloccheck"
	"amoeba/internal/analysis/boundscheck"
	"amoeba/internal/analysis/chancheck"
	"amoeba/internal/analysis/exhaustive"
	"amoeba/internal/analysis/goroleak"
	"amoeba/internal/analysis/hotpath"
	"amoeba/internal/analysis/lockcheck"
	"amoeba/internal/analysis/nodeterminism"
	"amoeba/internal/analysis/paniccheck"
	"amoeba/internal/analysis/seedflow"
	"amoeba/internal/analysis/shardsafe"
	"amoeba/internal/analysis/unitcheck"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	seedflow.Analyzer,
	paniccheck.Analyzer,
	lockcheck.Analyzer,
	unitcheck.Analyzer,
	boundscheck.Analyzer,
	alloccheck.Analyzer,
	hotpath.Analyzer,
	exhaustive.Analyzer,
	shardsafe.Analyzer,
	goroleak.Analyzer,
	chancheck.Analyzer,
}

func main() {
	noGovet := flag.Bool("no-govet", false, "skip running the standard `go vet` suite first")
	list := flag.Bool("list", false, "list the amoeba analyzers and exit")
	suppressions := flag.Bool("suppressions", false,
		"list every //amoeba:allow annotation with its reason; fail on missing reasons")
	stale := flag.Bool("stale", false,
		"audit suppression annotations against the analyzers and fail on ones that no longer suppress any finding")
	escapes := flag.Bool("escapes", false,
		"cross-check //amoeba:noalloc bodies against the compiler's escape analysis (go build -gcflags=-m=2)")
	jsonOut := flag.Bool("json", false,
		"emit findings as newline-delimited JSON (implies -no-govet)")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *suppressions {
		if err := reportSuppressions(patterns); err != nil {
			fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
			os.Exit(2)
		}
		return
	}

	if *stale {
		if err := reportStale(patterns); err != nil {
			fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
			os.Exit(2)
		}
		return
	}

	if *escapes {
		os.Exit(runEscapes(patterns, *jsonOut))
	}

	failed := false
	if !*noGovet && !*jsonOut {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	diags, modRoot, err := runAmoebaAnalyzers(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if *jsonOut {
			emitJSON(analyzerJSON(modRoot, d))
		} else {
			fmt.Println(d)
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// modulePackages expands the package patterns against the enclosing
// module, returning the module root, module path, and import paths.
func modulePackages(patterns []string) (modRoot, modPath string, paths []string, err error) {
	wd, err := os.Getwd()
	if err != nil {
		return "", "", nil, err
	}
	modRoot, err = analysis.FindModuleRoot(wd)
	if err != nil {
		return "", "", nil, err
	}
	modPath, err = analysis.ModulePath(modRoot)
	if err != nil {
		return "", "", nil, err
	}
	paths, err = analysis.ExpandPatterns(modRoot, modPath, patterns)
	return modRoot, modPath, paths, err
}

func runAmoebaAnalyzers(patterns []string) ([]analysis.Diagnostic, string, error) {
	modRoot, modPath, paths, err := modulePackages(patterns)
	if err != nil {
		return nil, "", err
	}
	loader := analysis.NewLoader(analysis.ModuleResolver(modRoot, modPath))
	diags, err := analysis.Run(loader, paths, analyzers)
	return diags, modRoot, err
}

// suppression is one inventoried annotation: an //amoeba:allow or
// //amoeba:allowalloc escape (reason mandatory), or a declarative
// concurrency marker — shard, shardsafe, bounded — whose trailing text
// is an optional note.
type suppression struct {
	pos      token.Position
	analyzer string
	reason   string
	declared bool // declarative marker: an empty reason is not an error
}

// markerNote parses a declarative marker comment, returning the trailing
// note. ok follows the exact-prefix rule: //amoeba:shardX is not
// //amoeba:shard.
func markerNote(text, marker string) (note string, ok bool) {
	body, found := strings.CutPrefix(text, marker)
	if !found {
		return "", false
	}
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// reportSuppressions scans every Go file — tests included, since
// suppressions in tests gate invariants just the same — of the selected
// packages and prints the suppression inventory. Annotations without a
// justification fail the audit.
func reportSuppressions(patterns []string) error {
	modRoot, modPath, paths, err := modulePackages(patterns)
	if err != nil {
		return err
	}
	resolve := analysis.ModuleResolver(modRoot, modPath)
	fset := token.NewFileSet()
	var all []suppression
	for _, path := range paths {
		dir, ok := resolve(path)
		if !ok {
			return fmt.Errorf("cannot resolve package %q", path)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Pos())
					if aname, reason, ok := analysis.ParseAllow(c.Text); ok {
						all = append(all, suppression{pos: pos, analyzer: aname, reason: reason})
						continue
					}
					if reason, ok := analysis.ParseAllowAlloc(c.Text); ok {
						all = append(all, suppression{pos: pos, analyzer: "allowalloc", reason: reason})
						continue
					}
					if params, ok := analysis.ParseBounded(c.Text); ok {
						all = append(all, suppression{pos: pos, analyzer: "bounded",
							reason: strings.Join(params, " "), declared: true})
						continue
					}
					// shardsafe before shard: the boundary rule keeps the
					// shorter marker from matching the longer one, but the
					// order makes the intent explicit.
					if note, ok := markerNote(c.Text, analysis.AnnotShardSafe); ok {
						all = append(all, suppression{pos: pos, analyzer: "shardsafe",
							reason: note, declared: true})
						continue
					}
					if note, ok := markerNote(c.Text, analysis.AnnotShard); ok {
						all = append(all, suppression{pos: pos, analyzer: "shard",
							reason: note, declared: true})
					}
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	missing := 0
	for _, s := range all {
		reason := s.reason
		if reason == "" {
			if s.declared {
				reason = "(declared)"
			} else {
				reason = "<MISSING REASON>"
				missing++
			}
		}
		fmt.Printf("%s:%d: %-15s %s\n", s.pos.Filename, s.pos.Line, s.analyzer, reason)
	}
	fmt.Printf("%d annotation(s)\n", len(all))
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "amoeba-vet: %d suppression(s) lack a reason\n", missing)
		os.Exit(1)
	}
	return nil
}
