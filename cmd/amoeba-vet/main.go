// Command amoeba-vet is the repository's static-analysis multichecker: it
// runs the standard `go vet` suite followed by the four amoeba-specific
// analyzers that machine-check the determinism and concurrency invariants
// the reproduction depends on:
//
//	nodeterminism  no wall-clock or global-rand calls in simulation code
//	seedflow       sim.RNG provenance: explicit seeds, no copies, no sharing
//	paniccheck     library panics must be errors, contracts, or invariants
//	lockcheck      no mutex held across sends, Wait, or goroutine spawns
//
// Usage:
//
//	go run ./cmd/amoeba-vet [-no-govet] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax
// restricted to this module. The exit status is non-zero when any
// analyzer reports a finding, so CI can gate on it. Findings are
// suppressed site-by-site with //amoeba:allow <analyzer> <reason>
// annotations (see internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"amoeba/internal/analysis"
	"amoeba/internal/analysis/lockcheck"
	"amoeba/internal/analysis/nodeterminism"
	"amoeba/internal/analysis/paniccheck"
	"amoeba/internal/analysis/seedflow"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	seedflow.Analyzer,
	paniccheck.Analyzer,
	lockcheck.Analyzer,
}

func main() {
	noGovet := flag.Bool("no-govet", false, "skip running the standard `go vet` suite first")
	list := flag.Bool("list", false, "list the amoeba analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*noGovet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	diags, err := runAmoebaAnalyzers(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

func runAmoebaAnalyzers(patterns []string) ([]analysis.Diagnostic, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	modPath, err := analysis.ModulePath(modRoot)
	if err != nil {
		return nil, err
	}
	paths, err := analysis.ExpandPatterns(modRoot, modPath, patterns)
	if err != nil {
		return nil, err
	}
	loader := analysis.NewLoader(analysis.ModuleResolver(modRoot, modPath))
	return analysis.Run(loader, paths, analyzers)
}
