// Package staleuser exercises amoeba-vet -stale: annotations whose
// reason text starts with "stale:" suppress nothing and must be
// reported; the others are live and must be credited. The test reads
// that convention back out of this file.
package staleuser

import (
	"sync"
	"time"
)

var (
	mu    sync.Mutex
	total int
)

// Hot is a hot-path root with one deliberately suppressed violation.
//
//amoeba:hotpath
func Hot() int64 {
	//amoeba:allow hotpath live: deliberate coarse timestamp
	return time.Now().UnixNano()
}

// Cold carries an annotation with nothing to suppress.
func Cold() int {
	//amoeba:allow hotpath stale: nothing on this line violates anything
	return 1
}

// NoAlloc amortises growth behind a live allowalloc.
//
//amoeba:noalloc
func NoAlloc(dst []int, v int) []int {
	//amoeba:allowalloc(live: amortised backing-array growth)
	dst = append(dst, v)
	return dst
}

// coldAlloc is not a noalloc function, so its annotation is dead.
func coldAlloc() []int {
	//amoeba:allowalloc(stale: not inside a noalloc function)
	return append([]int(nil), 1)
}

// guarded is an audited boundary that still shields a real lock.
//
//amoeba:shardsafe live: lock held briefly around the shared total
func guarded(x int) int {
	mu.Lock()
	defer mu.Unlock()
	total += x
	return total
}

// harmless carries a boundary marker that shields nothing.
//
//amoeba:shardsafe stale: nothing inside needs the boundary
func harmless(x int) int { return x * 2 }

// worker is the shard root that reaches both boundaries.
//
//amoeba:shard
func worker(jobs <-chan int, out chan<- int) {
	for j := range jobs {
		out <- guarded(j) + harmless(j)
	}
}

var _ = coldAlloc
var _ = worker
