package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"amoeba/internal/analysis"
	"amoeba/internal/analysis/escapecheck"
)

// A jsonFinding is the machine-readable form of one finding, emitted as
// newline-delimited JSON by -json. File paths are module-root-relative
// with forward slashes so CI can map them onto the checkout.
type jsonFinding struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Via      []string `json:"via,omitempty"`
	// SuppressWith is the annotation that would suppress this finding at
	// its site, with <reason> left for the author to justify.
	SuppressWith string `json:"suppress_with"`
}

// marshalFinding renders one finding without HTML escaping: via chains
// ("=>") and suppression templates ("<reason>") must read verbatim in
// terminals and CI annotations.
func marshalFinding(f jsonFinding) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

func emitJSON(f jsonFinding) {
	data, err := marshalFinding(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
		os.Exit(2)
	}
	fmt.Println(string(data))
}

// analyzerJSON converts an in-process analyzer diagnostic, relativizing
// its absolute position against the module root.
func analyzerJSON(modRoot string, d analysis.Diagnostic) jsonFinding {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(modRoot, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return jsonFinding{
		Analyzer:     d.Analyzer,
		File:         file,
		Line:         d.Pos.Line,
		Col:          d.Pos.Column,
		Message:      d.Message,
		Via:          d.Via,
		SuppressWith: fmt.Sprintf("//amoeba:allow %s <reason>", d.Analyzer),
	}
}

// escapeAllowsUsed runs the escapecheck pipeline for the -stale audit
// and returns the //amoeba:allowalloc annotation positions (absolute
// file -> line) that suppress a live compiler diagnostic. ok is false
// when the running toolchain is not the pinned one: compiler crediting
// is then unavailable and allowalloc staleness cannot be judged.
func escapeAllowsUsed(modRoot string, patterns []string) (used map[string]map[int]bool, ok bool, err error) {
	pinned, err := escapecheck.GoModToolchain(modRoot)
	if err != nil {
		return nil, false, err
	}
	if running, match := escapecheck.RunningMatches(pinned); !match {
		fmt.Fprintf(os.Stderr,
			"amoeba-vet: allowalloc staleness not audited: running toolchain %s is not the pinned %s\n",
			running, pinned)
		return nil, false, nil
	}
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, false, fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, out)
	}
	src, err := escapecheck.LoadSource(modRoot)
	if err != nil {
		return nil, false, err
	}
	relUsed := src.UsedAllows(escapecheck.ParseDiags(string(out)))
	used = make(map[string]map[int]bool, len(relUsed))
	for rel, lines := range relUsed {
		used[filepath.Join(modRoot, filepath.FromSlash(rel))] = lines
	}
	return used, true, nil
}

// runEscapes is the -escapes mode: compile the selected packages with
// -gcflags=-m=2 under the go.mod-pinned toolchain and report every
// compiler-proven heap allocation inside an //amoeba:noalloc body that
// an //amoeba:allowalloc annotation does not cover. Returns the process
// exit code (0 clean or skipped on toolchain mismatch, 1 findings, 2
// internal error).
func runEscapes(patterns []string, jsonOut bool) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "amoeba-vet:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	modRoot, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return fail(err)
	}
	pinned, err := escapecheck.GoModToolchain(modRoot)
	if err != nil {
		return fail(err)
	}
	if running, ok := escapecheck.RunningMatches(pinned); !ok {
		// The escape wording belongs to one compiler release; checking it
		// with another toolchain would gate on diagnostics the parser was
		// never validated against.
		fmt.Fprintf(os.Stderr,
			"amoeba-vet: -escapes skipped: running toolchain %s is not the pinned %s\n",
			running, pinned)
		return 0
	}
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "amoeba-vet: go build -gcflags=-m=2: %v\n%s", err, out)
		return 2
	}
	diags := escapecheck.ParseDiags(string(out))
	src, err := escapecheck.LoadSource(modRoot)
	if err != nil {
		return fail(err)
	}
	findings, suppressed := src.Check(diags)
	for _, f := range findings {
		msg := fmt.Sprintf("compiler-proven allocation in //amoeba:noalloc %s: %s",
			f.Func, f.Diag.Message)
		if jsonOut {
			emitJSON(jsonFinding{
				Analyzer:     "escapecheck",
				File:         f.Diag.File,
				Line:         f.Diag.Line,
				Col:          f.Diag.Col,
				Message:      msg,
				SuppressWith: "//amoeba:allowalloc(<reason>)",
			})
		} else {
			fmt.Printf("%s:%d:%d: %s [escapecheck]\n", f.Diag.File, f.Diag.Line, f.Diag.Col, msg)
		}
	}
	fmt.Fprintf(os.Stderr,
		"amoeba-vet: escapecheck: %d noalloc range(s), %d heap diagnostic(s), %d finding(s), %d suppressed\n",
		len(src.Ranges), len(diags), len(findings), suppressed)
	if len(findings) > 0 {
		return 1
	}
	return 0
}
