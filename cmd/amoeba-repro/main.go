// Command amoeba-repro regenerates the paper's evaluation artifacts: every
// table and figure of §VII, printed as ASCII tables/series and optionally
// exported as CSV for plotting.
//
// Usage:
//
//	amoeba-repro                 # everything (full-scale, minutes)
//	amoeba-repro -quick          # reduced scale (seconds to a minute)
//	amoeba-repro -exp fig11      # one artifact
//	amoeba-repro -parallel 8     # sweep workers (0 = GOMAXPROCS)
//	amoeba-repro -shards 8       # sharded kernel per simulation
//	amoeba-repro -csv out/       # also write out/<artifact>.csv
//	amoeba-repro -list           # list artifact ids
//
// Parallelism spreads independent (benchmark, variant) simulations over
// a bounded worker pool; each simulation stays sequential and
// deterministic, so the rendered artifacts are byte-identical for a
// given seed whatever -parallel is set to.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"amoeba/internal/experiments"
	"amoeba/internal/report"
	"amoeba/internal/workload"
)

// renderable is anything an artifact produces: both report.Table and
// report.Figure satisfy it.
type renderable interface {
	String() string
	WriteCSV(w io.Writer) error
}

type artifact struct {
	id   string
	desc string
	make func(cfg experiments.Config, suite *experiments.Suite) []renderable
}

func one(r renderable) []renderable { return []renderable{r} }

func artifacts() []artifact {
	return []artifact{
		{"tab2", "Table II: hardware and software setup",
			func(experiments.Config, *experiments.Suite) []renderable { return one(experiments.TableII()) }},
		{"tab3", "Table III: benchmark sensitivities",
			func(experiments.Config, *experiments.Suite) []renderable { return one(experiments.TableIII()) }},
		{"fig2", "Fig. 2: IaaS CPU utilisation",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				return one(experiments.Fig02(cfg).Render())
			}},
		{"fig3", "Fig. 3: serverless vs IaaS peak load",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				return one(experiments.Fig03(cfg).Render())
			}},
		{"fig4", "Fig. 4: serverless latency breakdown",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				return one(experiments.Fig04(cfg).Render())
			}},
		{"fig8", "Fig. 8: contention meter curves",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				return one(experiments.Fig08(cfg).Render())
			}},
		{"fig9", "Fig. 9: latency surfaces (dd)",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				var out []renderable
				for _, t := range experiments.Fig09Default(cfg).Render() {
					out = append(out, t)
				}
				return out
			}},
		{"fig10", "Fig. 10: latency CDF, Amoeba vs Nameko vs OpenWhisk",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig10(s).Render())
			}},
		{"fig11", "Fig. 11: resource usage vs Nameko",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig11(s).Render())
			}},
		{"fig12", "Fig. 12: deploy-mode switch timeline",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig12(s).Render())
			}},
		{"fig13", "Fig. 13: resource usage timeline",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				var out []renderable
				for _, f := range experiments.Fig13(s).Render() {
					out = append(out, f)
				}
				return out
			}},
		{"fig14", "Fig. 14: Amoeba vs Amoeba-NoM",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig14(s).Render())
			}},
		{"fig15", "Fig. 15: discriminant error",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig15(s).Render())
			}},
		{"fig16", "Fig. 16: QoS violations without prewarm",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Fig16(s).Render())
			}},
		{"overhead", "§VII-E: contention meter overhead",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Overhead(s).Render())
			}},
		{"elasticity", "Extension: Amoeba vs VM autoscaler (usage, QoS, cost)",
			func(_ experiments.Config, s *experiments.Suite) []renderable {
				return one(experiments.Elasticity(s).Render())
			}},
		{"audit", "Decision audit: telemetry-backed verdict and switch-span tables (dd)",
			func(cfg experiments.Config, _ *experiments.Suite) []renderable {
				r := experiments.DecisionAudit(cfg, workload.DD())
				return []renderable{r.Decisions, r.Switches}
			}},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated artifact ids, or 'all'")
		quick    = flag.Bool("quick", false, "reduced scale (fewer benchmarks, shorter runs)")
		list     = flag.Bool("list", false, "list artifact ids and exit")
		seed     = flag.Uint64("seed", 0xA0EBA, "simulation seed")
		csvDir   = flag.String("csv", "", "directory to export <artifact>.csv files into")
		parallel = flag.Int("parallel", 0, "sweep worker count; 0 means GOMAXPROCS")
		shards   = flag.Int("shards", 0, "run each simulation on the sharded kernel with this many workers (0 = sequential kernel)")
	)
	flag.Parse()

	all := artifacts()
	if *list {
		for _, a := range all {
			fmt.Printf("%-9s %s\n", a.id, a.desc)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	suite := experiments.NewSuite(cfg)
	suite.Parallel = *parallel
	suite.Shards = *shards

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, a := range all {
			known[a.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown artifact(s): %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	for _, a := range all {
		if len(want) > 0 && !want[a.id] {
			continue
		}
		fmt.Printf("==> %s — %s\n", a.id, a.desc)
		start := time.Now()
		outs := a.make(cfg, suite)
		for _, r := range outs {
			fmt.Print(r.String())
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, a.id, outs); err != nil {
				fmt.Fprintf(os.Stderr, "csv export of %s failed: %v\n", a.id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
	}
}

func exportCSV(dir, id string, outs []renderable) error {
	for i, r := range outs {
		name := report.CSVName(id)
		if len(outs) > 1 {
			name = report.CSVName(fmt.Sprintf("%s_%c", id, 'a'+i))
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := r.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
