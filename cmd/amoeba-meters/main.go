// Command amoeba-meters profiles the contention meters (Fig. 8) and,
// optionally, a benchmark's latency surfaces (Fig. 9) and prints the
// resulting curves/grids.
//
// Usage:
//
//	amoeba-meters                 # the three meter curves
//	amoeba-meters -surfaces dd    # plus dd's three latency surfaces
package main

import (
	"flag"
	"fmt"
	"os"

	"amoeba/internal/core"
	"amoeba/internal/experiments"
	"amoeba/internal/report"
	"amoeba/internal/serverless"
	"amoeba/internal/workload"
)

func main() {
	var (
		surfacesFor = flag.String("surfaces", "", "also profile this benchmark's latency surfaces")
	)
	flag.Parse()

	cfg := serverless.DefaultConfig()
	fmt.Println("profiling contention meters (Fig. 8)...")
	curves := core.MeterCurves(cfg)
	fig := &report.Figure{
		Title:  "Fig. 8: contention meter profiling curves",
		XLabel: "pressure", YLabel: "meter latency (s)",
	}
	for _, c := range curves {
		fig.Series = append(fig.Series, report.Series{
			Name: c.Meter.Profile.Name, X: c.Pressures, Y: c.Latencies,
		})
		fmt.Printf("  %-10s %s\n", c.Meter.Profile.Name, report.Sparkline(c.Latencies))
	}
	fmt.Print(fig.String())

	if *surfacesFor != "" {
		prof, err := workload.ByName(*surfacesFor)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("profiling latency surfaces of %s (Fig. 9)...\n", prof.Name)
		res := experiments.Fig09(experiments.DefaultConfig(), prof)
		for _, t := range res.Render() {
			fmt.Print(t.String())
		}
	}
}
